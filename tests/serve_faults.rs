//! Robustness battery for `glova-serve`: cancellation, budgets,
//! deterministic fault injection, priority scheduling, shed-load
//! backpressure and registry eviction.
//!
//! The contracts under test:
//!
//! - **Budget exactness** — a `max_sims` budget is a hard cap checked
//!   before every dispatch, so a budgeted job's simulation count never
//!   exceeds it, and the trajectory it did record is a bitwise prefix of
//!   the unbudgeted run (the control checks consume no RNG).
//! - **Cancellation** — queued jobs cancel immediately to a terminal
//!   status without running; running jobs stop cooperatively with their
//!   partial trajectory preserved.
//! - **Fault isolation** — an injected panic fails only its own job;
//!   injected non-convergence degrades observations without unwinding;
//!   neither perturbs a concurrent clean job's trajectory by a single
//!   bit, even with a shared evaluation cache (injected outcomes bypass
//!   it by construction).
//! - **Eviction** — LRU-bounded registries hold ≤ `max_entries` across a
//!   1000-distinct-key churn, and forced expiry re-primes exactly once
//!   while outstanding handles stay alive.

use glova::cache::{CacheRegistry, EvalCacheConfig, RegistryConfig};
use glova::campaign::{CampaignConfig, CampaignResult, CampaignStep, CampaignTermination};
use glova::fault::{FaultKind, FaultPlan};
use glova::prelude::*;
use glova_circuits::FailureStats;
use glova_serve::{
    CampaignServer, CircuitSpec, JobBudget, JobPriority, JobStatus, ServeError, SizingRequest,
};
use glova_spice::mna::NewtonOptions;
use glova_spice::netlist::rc_ladder;
use glova_spice::registry::SolverRegistry;
use std::sync::Arc;
use std::time::{Duration, Instant};

fn quick_config() -> CampaignConfig {
    CampaignConfig::quick(VerificationMethod::Corner)
        .with_max_steps(5)
        .with_cache(EvalCacheConfig::default())
}

fn chain_request(seed: u64) -> SizingRequest {
    SizingRequest::new(CircuitSpec::InverterChain { stages: 2 }, quick_config(), seed)
}

fn step_bits(s: &CampaignStep) -> (usize, usize, usize, u64, u64, u64, u64, bool) {
    (
        s.step,
        s.active_corners,
        s.corner_count,
        s.sims,
        s.worst_reward.to_bits(),
        s.best_reward.to_bits(),
        s.pass_fraction.to_bits(),
        s.full_grid,
    )
}

fn design_bits(x: &[f64]) -> Vec<u64> {
    x.iter().map(|v| v.to_bits()).collect()
}

fn assert_same_trajectory(a: &CampaignResult, b: &CampaignResult) {
    assert_eq!(a.success, b.success);
    assert_eq!(
        a.final_design.as_deref().map(design_bits),
        b.final_design.as_deref().map(design_bits)
    );
    assert_eq!(design_bits(&a.best_design), design_bits(&b.best_design));
    assert_eq!(a.best_reward.to_bits(), b.best_reward.to_bits());
    assert_eq!(a.init_sims, b.init_sims);
    assert_eq!(a.total_sims, b.total_sims);
    assert_eq!(a.steps.len(), b.steps.len());
    for (sa, sb) in a.steps.iter().zip(&b.steps) {
        assert_eq!(step_bits(sa), step_bits(sb), "step {} diverged", sa.step);
    }
}

/// Fault-free single-job reference run.
fn reference_run(request: SizingRequest) -> CampaignResult {
    let server = CampaignServer::new(1);
    let id = server.submit(request).unwrap();
    let snapshot = server.wait(id).unwrap();
    assert_eq!(snapshot.status, JobStatus::Done);
    snapshot.result.unwrap()
}

/// Polls until the job leaves `Queued` (it is running or terminal).
fn wait_until_started(server: &CampaignServer, id: glova_serve::JobId) {
    loop {
        if server.snapshot(id).unwrap().status != JobStatus::Queued {
            return;
        }
        std::thread::sleep(Duration::from_millis(2));
    }
}

#[test]
fn budget_caps_sims_exactly_and_preserves_a_bitwise_prefix() {
    let reference = reference_run(chain_request(1));
    assert_eq!(reference.termination, CampaignTermination::Completed);
    assert_eq!(reference.failures, FailureStats::default(), "clean run has a clean ledger");
    assert!(
        reference.total_sims > reference.init_sims,
        "reference must run policy steps for the budget to bite"
    );
    // Cap the budget midway through the policy phase.
    let cap = reference.init_sims + (reference.total_sims - reference.init_sims) / 2;

    let server = CampaignServer::new(1);
    let id = server
        .submit(chain_request(1).with_budget(JobBudget::unlimited().with_max_sims(cap)))
        .unwrap();
    let snapshot = server.wait(id).unwrap();
    assert_eq!(snapshot.status, JobStatus::BudgetExhausted);
    let partial = snapshot.result.expect("budget exhaustion preserves the partial result");
    assert_eq!(partial.termination, CampaignTermination::BudgetExhausted);
    assert!(
        partial.total_sims <= cap,
        "budget is exact: {} sims ran against a cap of {cap}",
        partial.total_sims
    );
    assert!(!partial.steps.is_empty(), "partial trajectory must be preserved");
    assert_eq!(snapshot.steps.len(), partial.steps.len(), "streamed steps match the result");
    // Control checks consume no RNG, so every *fully completed* step is
    // bitwise identical to the unbudgeted run. (The final recorded step
    // may legitimately differ if the budget interrupted its
    // confirmation sweep, so it is excluded from the prefix.)
    let confirmed_prefix = partial.steps.len() - 1;
    for (sa, sb) in partial.steps[..confirmed_prefix].iter().zip(&reference.steps) {
        assert_eq!(step_bits(sa), step_bits(sb), "budgeted step {} diverged", sa.step);
    }
    assert_eq!(partial.init_sims, reference.init_sims);
    let report = server.shutdown();
    assert_eq!(report.jobs_budget_exhausted, 1);
}

#[test]
fn cancelling_a_running_job_stops_it_with_partial_trajectory() {
    // Slow faults stretch the run so the cancel reliably lands while
    // the campaign is in flight.
    let plan = Arc::new(FaultPlan::seeded(7, 4000, 60, FaultKind::Slow(Duration::from_millis(10))));
    let server = CampaignServer::new(1);
    let id = server.submit(chain_request(1).with_fault_plan(plan)).unwrap();
    wait_until_started(&server, id);
    let cancelled_at = Instant::now();
    server.cancel(id).unwrap();
    let snapshot = server.wait(id).unwrap();
    let latency = cancelled_at.elapsed();
    assert_eq!(snapshot.status, JobStatus::Cancelled);
    let partial = snapshot.result.expect("running-cancel preserves the partial result");
    assert_eq!(partial.termination, CampaignTermination::Cancelled);
    assert!(
        latency < Duration::from_secs(30),
        "cooperative cancel took {latency:?} — the control check is per dispatch, not per job"
    );
    // Cancelling again is a harmless no-op.
    server.cancel(id).unwrap();
    assert_eq!(server.wait(id).unwrap().status, JobStatus::Cancelled);
    let report = server.shutdown();
    assert_eq!(report.jobs_cancelled, 1);
}

#[test]
fn cancelling_a_queued_job_is_immediate_and_it_never_runs() {
    let slow = Arc::new(FaultPlan::seeded(3, 4000, 60, FaultKind::Slow(Duration::from_millis(10))));
    let server = CampaignServer::new(1);
    let running = server.submit(chain_request(1).with_fault_plan(slow)).unwrap();
    wait_until_started(&server, running);
    let queued = server.submit(chain_request(2)).unwrap();
    assert_eq!(server.queue_depth(), 1);
    server.cancel(queued).unwrap();
    // No wait needed: a queued cancel is terminal immediately.
    let snapshot = server.snapshot(queued).unwrap();
    assert_eq!(snapshot.status, JobStatus::Cancelled);
    assert!(snapshot.result.is_none(), "a job that never ran has no result");
    assert!(snapshot.steps.is_empty());
    assert_eq!(server.queue_depth(), 0);
    server.cancel(running).unwrap();
    let report = server.shutdown();
    assert_eq!(report.jobs_cancelled, 2);
}

#[test]
fn injected_panic_fails_one_job_and_leaves_neighbours_bitwise_intact() {
    let clean_a = reference_run(chain_request(1));
    let clean_b = reference_run(chain_request(3));

    let server = CampaignServer::new(2);
    let a = server.submit(chain_request(1)).unwrap();
    let poisoned = server
        .submit(
            chain_request(2)
                .with_fault_plan(Arc::new(FaultPlan::new().with_fault(120, FaultKind::Panic))),
        )
        .unwrap();
    let b = server.submit(chain_request(3)).unwrap();

    let failed = server.wait(poisoned).unwrap();
    assert_eq!(failed.status, JobStatus::Failed);
    assert!(
        failed.error.as_deref().unwrap_or("").contains("injected fault"),
        "panic message must surface in the snapshot"
    );
    // The neighbours — same topology, same shared cache — are untouched.
    assert_same_trajectory(&clean_a, &server.wait(a).unwrap().result.unwrap());
    assert_same_trajectory(&clean_b, &server.wait(b).unwrap().result.unwrap());
    let report = server.shutdown();
    assert_eq!((report.jobs_completed, report.jobs_failed), (2, 1));
}

#[test]
fn injected_nonconvergence_degrades_without_unwinding_or_polluting_the_cache() {
    let reference = reference_run(chain_request(5));
    let server = CampaignServer::new(1);
    // Degrade a handful of early evaluations: the campaign must absorb
    // them as worst-reward observations and still terminate normally.
    let faulted = server
        .submit(chain_request(5).with_fault_plan(Arc::new(FaultPlan::seeded(
            11,
            400,
            5,
            FaultKind::NonConvergence,
        ))))
        .unwrap();
    let snapshot = server.wait(faulted).unwrap();
    assert_eq!(snapshot.status, JobStatus::Done, "degraded observations must not unwind the job");
    let degraded = snapshot.result.unwrap();
    assert_eq!(degraded.termination, CampaignTermination::Completed);
    assert_eq!(degraded.total_sims, reference.total_sims, "accounting counts requests, not faults");

    // The same request fault-free on the same (warm, shared-cache)
    // server must replay the clean reference exactly: injected outcomes
    // bypass the cache, so none of the NaN degradations leaked into it.
    let clean = server.submit(chain_request(5)).unwrap();
    assert_same_trajectory(&reference, &server.wait(clean).unwrap().result.unwrap());
    server.shutdown();
}

#[test]
fn slow_faults_change_wall_time_only() {
    let reference = reference_run(chain_request(1));
    let slowed = {
        let server = CampaignServer::new(1);
        let id = server
            .submit(chain_request(1).with_fault_plan(Arc::new(FaultPlan::seeded(
                9,
                1000,
                20,
                FaultKind::Slow(Duration::from_millis(2)),
            ))))
            .unwrap();
        let snapshot = server.wait(id).unwrap();
        assert_eq!(snapshot.status, JobStatus::Done);
        snapshot.result.unwrap()
    };
    assert_same_trajectory(&reference, &slowed);
}

#[test]
fn interactive_jobs_overtake_queued_batch_work() {
    let slow = Arc::new(FaultPlan::seeded(5, 4000, 60, FaultKind::Slow(Duration::from_millis(10))));
    let server = CampaignServer::new(1);
    let running = server.submit(chain_request(1).with_fault_plan(slow)).unwrap();
    wait_until_started(&server, running);
    // Batch submitted first, interactive second — the worker must pop
    // the interactive job first anyway.
    let batch = server.submit(chain_request(2)).unwrap();
    let interactive =
        server.submit(chain_request(3).with_priority(JobPriority::Interactive)).unwrap();
    assert_eq!(server.queue_depth(), 2);
    server.cancel(running).unwrap();
    let probe = server.wait(interactive).unwrap();
    assert_eq!(probe.status, JobStatus::Done);
    // The single worker ran the interactive probe to completion before
    // even starting the batch job, so the batch job cannot be terminal
    // yet.
    assert!(
        !server.snapshot(batch).unwrap().status.is_terminal(),
        "batch job must not finish before the later-submitted interactive probe"
    );
    assert_eq!(server.wait(batch).unwrap().status, JobStatus::Done);
    server.shutdown();
}

#[test]
fn full_queue_sheds_load_and_reports_high_water() {
    let slow =
        Arc::new(FaultPlan::seeded(13, 4000, 60, FaultKind::Slow(Duration::from_millis(10))));
    let server = CampaignServer::new(1).with_queue_capacity(2);
    let running = server.submit(chain_request(1).with_fault_plan(slow)).unwrap();
    wait_until_started(&server, running);
    let q1 = server.submit(chain_request(2)).unwrap();
    let q2 = server.submit(chain_request(3)).unwrap();
    assert_eq!(server.queue_depth(), 2);
    match server.submit(chain_request(4)) {
        Err(ServeError::QueueFull { capacity }) => assert_eq!(capacity, 2),
        other => panic!("expected QueueFull, got {other:?}"),
    }
    // Shed load is a fast-fail, not a silent drop: nothing was enqueued.
    assert_eq!(server.queue_depth(), 2);
    // Immediate shutdown drains the queued jobs into terminal Cancelled
    // (no silent disappearance) and cancels the running one.
    let report = server.shutdown_now();
    assert_eq!(report.jobs_cancelled, 3, "running + two queued jobs all land in Cancelled");
    assert_eq!(report.jobs_completed, 0);
    assert_eq!(report.queue_high_water, 2);
    let _ = (q1, q2);
}

#[test]
fn forced_registry_expiry_reprimes_once_and_changes_nothing() {
    let solvers = Arc::new(SolverRegistry::new());
    let caches = Arc::new(CacheRegistry::new());
    let server = CampaignServer::with_registries(1, solvers.clone(), caches.clone());
    let first = server.submit(chain_request(4)).unwrap();
    let cold = server.wait(first).unwrap().result.unwrap();
    assert_eq!(solvers.primes(), 1);

    // Expire everything while the server (and any in-flight circuit)
    // may still hold Arc handles — the next request re-primes exactly
    // once and replays the identical trajectory.
    solvers.force_expire_all();
    caches.force_expire_all();
    let second = server.submit(chain_request(4)).unwrap();
    let warm = server.wait(second).unwrap().result.unwrap();
    assert_same_trajectory(&cold, &warm);
    assert_eq!(solvers.primes(), 2, "exactly one re-prime after expiry");
    assert_eq!(solvers.evictions(), 1);
    assert_eq!(caches.creations(), 2, "exactly one cache re-create after expiry");
    server.shutdown();
}

#[test]
fn bounded_registries_hold_max_entries_across_thousand_key_churn() {
    // Solver registry: 1000 distinct (topology × options) keys via
    // distinct Newton tolerances on one tiny ladder — cheap primes,
    // genuine distinct entries.
    let solvers = SolverRegistry::with_config(RegistryConfig::default().with_max_entries(8));
    let ladder = rc_ladder(2, 1e3, 1e-12);
    for i in 0..1000u32 {
        let options = NewtonOptions {
            tolerance: 1e-9 * (1.0 + f64::from(i) * 1e-3),
            ..NewtonOptions::default()
        };
        solvers.pool_for(&ladder, options).unwrap();
        assert!(solvers.len() <= 8, "solver registry cap must hold at every step");
    }
    assert_eq!(solvers.len(), 8);
    assert_eq!(solvers.evictions(), 992);

    // Cache registry: 1000 distinct identities.
    let caches = CacheRegistry::with_config(RegistryConfig::default().with_max_entries(8));
    for i in 0..1000u64 {
        caches.cache_for(&[i], EvalCacheConfig::default());
        assert!(caches.len() <= 8, "cache registry cap must hold at every step");
    }
    assert_eq!(caches.len(), 8);
    assert_eq!(caches.evictions(), 992);
}
