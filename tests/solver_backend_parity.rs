//! Correctness contract of the sparse solver backend: on every analysis
//! (DC, AC, transient), every Jacobian strategy and every circuit size,
//! the sparse backend must land on the same solutions as the dense
//! reference to well within the Newton tolerance — the dense path stays
//! the parity oracle while the sparse path carries the scaling.

use glova_spice::ac::{ac_sweep_with_backend, log_sweep};
use glova_spice::dc::{operating_point_with_options, OpSolver};
use glova_spice::mna::{JacobianStrategy, NewtonOptions, SolverBackend};
use glova_spice::netlist::{inverter_chain, rc_ladder};
use glova_spice::transient::{transient_from_with_options, TransientSpec};

/// Max |dense − sparse| over all unknowns.
fn max_gap(dense: &[f64], sparse: &[f64]) -> f64 {
    dense.iter().zip(sparse).map(|(d, s)| (d - s).abs()).fold(0.0f64, f64::max)
}

#[test]
fn operating_points_match_across_backends_and_strategies() {
    // inv_chain4 sits below the Auto threshold, inv_chain24 above it —
    // both are forced through each backend explicitly, under both the
    // chord default and full Newton.
    for stages in [4, 24] {
        let netlist = inverter_chain(stages);
        let x0 = vec![0.0; netlist.unknown_count()];
        for strategy in [JacobianStrategy::CHORD_DEFAULT, JacobianStrategy::Full] {
            let solve = |backend| {
                let options = NewtonOptions { strategy, backend, ..NewtonOptions::default() };
                operating_point_with_options(&netlist, &x0, &options)
                    .unwrap_or_else(|e| panic!("inv_chain{stages} {backend} {strategy:?}: {e}"))
            };
            let dense = solve(SolverBackend::Dense);
            let sparse = solve(SolverBackend::Sparse);
            let gap = max_gap(dense.raw(), sparse.raw());
            assert!(
                gap < 1e-9,
                "inv_chain{stages} {strategy:?}: dense vs sparse node voltages \
                 diverge by {gap:.3e}"
            );
        }
    }
}

#[test]
fn op_solver_sweep_reuse_is_result_identical() {
    // The persistent OpSolver (symbolic factorization reused across
    // solves) must return the same operating point on every repeat as
    // the one-shot API.
    let netlist = inverter_chain(24);
    let x0 = vec![0.0; netlist.unknown_count()];
    for backend in [SolverBackend::Dense, SolverBackend::Sparse] {
        let options = NewtonOptions::default().with_backend(backend);
        let oneshot = operating_point_with_options(&netlist, &x0, &options).unwrap();
        let mut solver = OpSolver::new(&netlist, options);
        assert_eq!(solver.is_sparse(), backend == SolverBackend::Sparse);
        for repeat in 0..3 {
            let swept = solver.solve().unwrap();
            let gap = max_gap(oneshot.raw(), swept.raw());
            assert!(
                gap < 1e-12,
                "{backend} repeat {repeat}: OpSolver drifted from one-shot by {gap:.3e}"
            );
        }
    }
}

#[test]
fn rc_ladder_dc_matches_analytic_and_both_backends() {
    // No DC current flows in the ladder (capacitors are open), so every
    // node must sit at the source voltage — an absolute reference on top
    // of the cross-backend agreement.
    let netlist = rc_ladder(64, 1e3, 1e-12);
    let x0 = vec![0.0; netlist.unknown_count()];
    let mut results = Vec::new();
    for backend in [SolverBackend::Dense, SolverBackend::Sparse] {
        let options = NewtonOptions::default().with_backend(backend);
        let op = operating_point_with_options(&netlist, &x0, &options).unwrap();
        let n_nodes = netlist.node_count() - 1;
        for i in 0..n_nodes {
            // The gmin regularization leaks ~1e-12 A per node through up
            // to 64 kΩ of ladder, so "equal" means within a few µV.
            assert!(
                (op.raw()[i] - 1.0).abs() < 1e-4,
                "{backend}: ladder node {i} at {} V, expected 1.0",
                op.raw()[i]
            );
        }
        results.push(op);
    }
    let gap = max_gap(results[0].raw(), results[1].raw());
    assert!(gap < 1e-9, "ladder backends diverge by {gap:.3e}");
}

#[test]
fn large_chain_auto_selects_sparse_and_converges() {
    // 64 stages (68 unknowns) is far past the Auto threshold; the
    // auto-selected backend must agree with forced-sparse bitwise (it
    // *is* the sparse backend) and produce a physically sane chain:
    // railed outputs alternating within the supply.
    let netlist = inverter_chain(64);
    let x0 = vec![0.0; netlist.unknown_count()];
    let auto = operating_point_with_options(&netlist, &x0, &NewtonOptions::default()).unwrap();
    let forced = operating_point_with_options(
        &netlist,
        &x0,
        &NewtonOptions::default().with_backend(SolverBackend::Sparse),
    )
    .unwrap();
    assert_eq!(auto.raw(), forced.raw(), "auto at 68 unknowns must be the sparse backend");
    for v in &auto.raw()[..netlist.node_count() - 1] {
        assert!((-1e-6..=0.9 + 1e-6).contains(v), "node voltage {v} outside the supply");
    }
}

#[test]
fn ac_sweep_backends_agree_on_magnitude_and_phase() {
    // A 24-stage chain AC sweep: complex sparse solves with the pattern
    // reused across the whole sweep vs the dense complex LU.
    let netlist = inverter_chain(24);
    let freqs = log_sweep(1e3, 1e8, 4);
    let out = {
        // Recover the final stage's node id by rebuilding the name.
        let mut nl = inverter_chain(24);
        nl.node("n23")
    };
    let dense = ac_sweep_with_backend(&netlist, "VIN", &freqs, SolverBackend::Dense).unwrap();
    let sparse = ac_sweep_with_backend(&netlist, "VIN", &freqs, SolverBackend::Sparse).unwrap();
    for i in 0..freqs.len() {
        let d = dense.voltage(out, i);
        let s = sparse.voltage(out, i);
        assert!(
            (d - s).abs() < 1e-9 * (1.0 + d.abs()),
            "f = {:.3e}: dense {d:?} vs sparse {s:?}",
            freqs[i]
        );
    }
}

#[test]
fn transient_backends_agree_on_rc_ladder_step() {
    // Backward-Euler steps exercise the capacitor companion stamps in
    // the sparse template; the waveforms must track the dense reference.
    // A distributed RC line's delay is ~½·n²·R·C ≈ 50 ns here, so the
    // 200 ns window settles the far end.
    let netlist = rc_ladder(32, 1e3, 1e-13);
    let spec = TransientSpec { dt: 1e-9, t_stop: 2e-7, start_from_dc: false };
    let n = netlist.unknown_count();
    let run = |backend| {
        transient_from_with_options(
            &netlist,
            &spec,
            vec![0.0; n],
            &NewtonOptions::default().with_backend(backend),
        )
        .unwrap()
    };
    let dense = run(SolverBackend::Dense);
    let sparse = run(SolverBackend::Sparse);
    let out = {
        let mut nl = rc_ladder(32, 1e3, 1e-13);
        nl.node("out")
    };
    assert_eq!(dense.len(), sparse.len());
    for i in 0..dense.len() {
        let (d, s) = (dense.voltage_at(out, i), sparse.voltage_at(out, i));
        assert!((d - s).abs() < 1e-9, "step {i}: dense {d} vs sparse {s}");
    }
    // The ladder must actually charge toward the source.
    let settled = dense.voltage_at(out, dense.len() - 1);
    assert!(settled > 0.5, "ladder end should charge toward 1 V, got {settled}");
}
