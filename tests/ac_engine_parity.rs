//! AC sweeps through the engine layer: sequential == threaded bitwise.
//!
//! The frequency points of `glova::ac_sweep_with_engine` fan out over
//! `EvalEngine` workers, each holding a pooled per-worker point solver
//! cloned from one primed complex-symbolic prototype
//! (`glova_spice::ac::AcSolverPool`). This battery locks in the
//! determinism contract: results are bitwise independent of the engine,
//! the worker count and the backend-internal pooling, and identical to
//! the plain `ac_sweep_with_backend` reference.

use glova::engine::EngineSpec;
use glova::sweep::ac_sweep_with_engine;
use glova_spice::ac::log_sweep;
use glova_spice::mna::SolverBackend;
use glova_spice::netlist::{inverter_chain_with_load, ota_two_stage, OtaParams};
use glova_spice::{ac_sweep_with_backend, Complex};

/// Collects every node voltage of a sweep as raw bits.
fn sweep_bits(
    netlist: &glova_spice::Netlist,
    probes: &[glova_spice::NodeId],
    backend: SolverBackend,
    engine: EngineSpec,
    freqs: &[f64],
) -> Vec<(u64, u64)> {
    let ac =
        ac_sweep_with_engine(netlist, "VINP", freqs, backend, engine.build().as_ref()).unwrap();
    let mut bits = Vec::new();
    for i in 0..freqs.len() {
        for &node in probes {
            let v: Complex = ac.voltage(node, i);
            bits.push((v.re.to_bits(), v.im.to_bits()));
        }
    }
    bits
}

#[test]
fn ac_sweep_bitwise_parity_across_engines_and_backends() {
    let mut nl = ota_two_stage(&OtaParams::nominal());
    let probes = [nl.node("o1"), nl.node("out"), nl.node("mir"), nl.node("tail")];
    let freqs = log_sweep(1e3, 1e9, 4);
    for backend in [SolverBackend::Dense, SolverBackend::Sparse, SolverBackend::Auto] {
        let reference = sweep_bits(&nl, &probes, backend, EngineSpec::Sequential, &freqs);
        for workers in [1, 2, 4, 8] {
            let threaded = sweep_bits(&nl, &probes, backend, EngineSpec::Threaded(workers), &freqs);
            assert_eq!(
                reference, threaded,
                "{backend} backend, {workers} workers: threaded AC sweep diverged"
            );
        }
        // The engine entry point must also match the plain sweep the
        // SPICE layer exposes (same pool, sequential drive).
        let direct = ac_sweep_with_backend(&nl, "VINP", &freqs, backend).unwrap();
        let mut direct_bits = Vec::new();
        for i in 0..freqs.len() {
            for &node in &probes {
                let v = direct.voltage(node, i);
                direct_bits.push((v.re.to_bits(), v.im.to_bits()));
            }
        }
        assert_eq!(reference, direct_bits, "{backend}: engine path vs direct sweep");
    }
}

#[test]
fn ac_sweep_threads_on_a_large_sparse_system() {
    // 64-stage chain (68 unknowns, sparse under Auto): one symbolic
    // analysis primed at the first frequency, every worker refactoring —
    // and the excitation source is VIN here, exercising the branch
    // selection.
    let mut nl = inverter_chain_with_load(64, Some(10e3));
    let out = nl.node("n63");
    let freqs = log_sweep(1e4, 1e8, 3);
    let reference = ac_sweep_with_backend(&nl, "VIN", &freqs, SolverBackend::Auto).unwrap();
    let threaded = ac_sweep_with_engine(
        &nl,
        "VIN",
        &freqs,
        SolverBackend::Auto,
        EngineSpec::Threaded(4).build().as_ref(),
    )
    .unwrap();
    for i in 0..freqs.len() {
        let a = reference.voltage(out, i);
        let b = threaded.voltage(out, i);
        assert_eq!(a.re.to_bits(), b.re.to_bits(), "point {i}");
        assert_eq!(a.im.to_bits(), b.im.to_bits(), "point {i}");
    }
}
