//! Campaign determinism and pruning-parity battery.
//!
//! The campaign layer promises two things the in-crate unit tests only
//! spot-check:
//!
//! 1. **Engine-independence** — a campaign's full trajectory (per-step
//!    worst rewards, simulation counts, corner selections, the final
//!    design) is bitwise-identical whether the batched dispatches run on
//!    the sequential engine or a threaded one at any worker count. The
//!    determinism is by construction (conditions pre-sampled corner-major
//!    before dispatch, index-ordered collection, order-independent
//!    NaN-propagating reductions) — this battery checks the construction
//!    end-to-end on a SPICE-backed circuit, where every point is a real
//!    DC operating-point solve through per-worker solver pools.
//! 2. **Pruning parity** — RobustAnalog-style corner-set pruning may only
//!    change *which corners are simulated*, never what "success" means: a
//!    pruned campaign's final design must satisfy the goal spec at every
//!    corner of the full grid, re-checked here independently of the
//!    campaign's own confirmation dispatch.

use glova::cache::EvalCacheConfig;
use glova::campaign::{CampaignConfig, CampaignResult, PruningConfig, SizingCampaign};
use glova::engine::EngineSpec;
use glova_circuits::Circuit;
use glova_variation::config::VerificationMethod;
use glova_variation::sampler::MismatchVector;
use std::sync::Arc;

fn chain() -> Arc<dyn Circuit> {
    Arc::new(glova_circuits::SpiceInverterChain::new(8))
}

/// The perfsuite gate's inverter-chain goal: tight enough that the LHS
/// seeds fail and the policy loop actually runs.
fn config() -> CampaignConfig {
    CampaignConfig::quick(VerificationMethod::Corner)
        .with_cache(EvalCacheConfig::default())
        .with_goal(vec![0.44, 1.25, 0.4])
        .with_max_steps(60)
        .with_pruning(PruningConfig::new(5, 10))
}

fn run_with(engine: EngineSpec, seed: u64) -> CampaignResult {
    SizingCampaign::new(chain(), config().with_engine(engine)).run(seed)
}

/// Asserts two trajectories are bitwise-identical, step by step.
fn assert_trajectories_identical(a: &CampaignResult, b: &CampaignResult, label: &str) {
    assert_eq!(a.success, b.success, "{label}: success mismatch");
    assert_eq!(a.final_design, b.final_design, "{label}: final design mismatch");
    assert_eq!(a.best_reward.to_bits(), b.best_reward.to_bits(), "{label}: best reward");
    assert_eq!(a.init_sims, b.init_sims, "{label}: init sims");
    assert_eq!(a.sims_to_success, b.sims_to_success, "{label}: sims to success");
    assert_eq!(a.total_sims, b.total_sims, "{label}: total sims");
    assert_eq!(a.pruning, b.pruning, "{label}: pruning counters");
    assert_eq!(a.steps.len(), b.steps.len(), "{label}: step count");
    for (sa, sb) in a.steps.iter().zip(&b.steps) {
        assert_eq!(
            sa.worst_reward.to_bits(),
            sb.worst_reward.to_bits(),
            "{label}: step {} worst reward",
            sa.step
        );
        assert_eq!(
            sa.best_reward.to_bits(),
            sb.best_reward.to_bits(),
            "{label}: step {} best reward",
            sa.step
        );
        assert_eq!(sa.sims, sb.sims, "{label}: step {} sims", sa.step);
        assert_eq!(
            sa.active_corners, sb.active_corners,
            "{label}: step {} corner selection",
            sa.step
        );
        assert_eq!(sa.full_grid, sb.full_grid, "{label}: step {} coverage", sa.step);
        assert_eq!(
            sa.pass_fraction.to_bits(),
            sb.pass_fraction.to_bits(),
            "{label}: step {} pass fraction",
            sa.step
        );
    }
}

#[test]
fn spice_campaign_trajectory_is_engine_invariant() {
    let seq = run_with(EngineSpec::Sequential, 1);
    assert!(seq.success, "reference campaign must solve the gate goal");
    assert!(!seq.steps.is_empty(), "goal must force the policy loop to run");
    for workers in [2usize, 4] {
        let thr = run_with(EngineSpec::Threaded(workers), 1);
        assert_trajectories_identical(&seq, &thr, &format!("threaded:{workers}"));
    }
}

#[test]
fn engine_invariance_holds_on_a_failing_campaign() {
    // An unreachable goal exercises the full step budget — stagnation
    // restarts, re-rank cadence, noise resets — with no early exit.
    let hard = config().with_goal(vec![0.05, 1.25, 0.4]).with_max_steps(25);
    let mk = |engine| SizingCampaign::new(chain(), hard.clone().with_engine(engine)).run(3);
    let seq = mk(EngineSpec::Sequential);
    assert!(!seq.success, "goal chosen to be unreachable");
    assert_eq!(seq.steps.len(), 25, "failing campaign runs the whole budget");
    let thr = mk(EngineSpec::Threaded(4));
    assert_trajectories_identical(&seq, &thr, "failing campaign");
}

#[test]
fn pruned_final_design_is_feasible_on_the_full_grid() {
    let campaign = SizingCampaign::new(chain(), config());
    let result = campaign.run(1);
    assert!(result.success);
    assert!(result.pruning.pruned_steps > 0, "campaign must actually have pruned corner sets");
    assert!(
        result.steps.last().is_some_and(|s| s.full_grid),
        "the success step must have confirmed full-grid coverage"
    );

    // Independent re-check: the goal-scaled spec holds at every corner
    // of the grid, nominal mismatch.
    let x = result.final_design.expect("successful campaign carries a design");
    let goal_spec = campaign
        .problem()
        .circuit()
        .spec()
        .with_scaled_limits(result.goal_factors.as_ref().expect("goal campaign"));
    let corners = campaign.problem().config().corners.clone();
    for ci in 0..corners.len() {
        let h = MismatchVector::nominal(campaign.problem().circuit().mismatch_domain(&x).dim());
        let outcome = campaign.problem().simulate(&x, &corners.corner(ci), &h);
        assert!(
            goal_spec.satisfied(&outcome.metrics),
            "pruned-campaign design violates the goal spec at corner {ci}: {:?}",
            outcome.metrics
        );
    }
}

#[test]
fn pruning_only_changes_corner_selection_not_the_grid() {
    // Structural parity between the arms: identical seeding phase
    // (same sims before the first policy step) and identical corner
    // grid; the pruned arm's per-step simulations never exceed the full
    // arm's grid size times N'.
    let full =
        SizingCampaign::new(chain(), config().with_pruning(PruningConfig::new(30, 1))).run(1);
    let pruned = SizingCampaign::new(chain(), config()).run(1);
    assert_eq!(full.init_sims, pruned.init_sims, "seeding phase is pruning-independent");
    let grid = full.steps.first().map(|s| s.corner_count);
    assert_eq!(grid, pruned.steps.first().map(|s| s.corner_count));
    assert!(pruned.pruning.pruned_fraction() > 0.0);
    assert_eq!(full.pruning.pruned_fraction(), 0.0, "k = grid disables pruning");
    for s in &pruned.steps {
        assert!(s.active_corners <= s.corner_count);
        assert!(s.full_grid || s.active_corners == 5, "pruned plans use k corners");
    }
}
