//! Statistical integrity of the variation pipeline end to end: the
//! mismatch conditions reaching the circuits must carry exactly the
//! Pelgrom statistics the domain declares, through the `SizingProblem`
//! layer used by the optimizer.

use glova::SizingProblem;
use glova_circuits::{Circuit, StrongArmLatch};
use glova_stats::descriptive::RunningStats;
use glova_stats::rng::seeded;
use glova_variation::config::VerificationMethod;
use std::sync::Arc;

#[test]
fn problem_level_sampling_matches_pelgrom_sigma() {
    let circuit: Arc<dyn Circuit> = Arc::new(StrongArmLatch::new());
    let x = StrongArmLatch::new().reference_design();
    let problem = SizingProblem::new(circuit.clone(), VerificationMethod::CornerLocalMc);
    let sigmas = circuit.mismatch_domain(&x).local_sigmas();

    let mut rng = seeded(31);
    let mut stats = vec![RunningStats::new(); sigmas.len()];
    for _ in 0..4000 {
        for h in problem.sample_conditions(&x, 1, &mut rng) {
            for (s, &v) in stats.iter_mut().zip(h.values()) {
                s.push(v);
            }
        }
    }
    for (i, (s, &expected)) in stats.iter().zip(&sigmas).enumerate() {
        assert!(
            (s.std_dev() - expected).abs() < 0.08 * expected,
            "component {i}: measured {} vs expected {expected}",
            s.std_dev()
        );
        assert!(s.mean().abs() < 0.1 * expected, "component {i} biased: {}", s.mean());
    }
}

#[test]
fn corner_only_problems_never_sample_mismatch() {
    let circuit: Arc<dyn Circuit> = Arc::new(StrongArmLatch::new());
    let x = StrongArmLatch::new().reference_design();
    let problem = SizingProblem::new(circuit, VerificationMethod::Corner);
    let mut rng = seeded(32);
    for h in problem.sample_conditions(&x, 16, &mut rng) {
        assert!(h.is_nominal());
    }
}

#[test]
fn global_local_sampling_adds_die_level_component() {
    let circuit: Arc<dyn Circuit> = Arc::new(StrongArmLatch::new());
    let x = StrongArmLatch::new().reference_design();
    let local = SizingProblem::new(circuit.clone(), VerificationMethod::CornerLocalMc);
    let both = SizingProblem::new(circuit.clone(), VerificationMethod::CornerGlobalLocalMc);

    // Variance of the first component (ΔV_th of the input pair) across
    // independent dies must exceed the local-only variance.
    let mut rng = seeded(33);
    let collect = |p: &SizingProblem, rng: &mut glova_stats::rng::Rng64| -> f64 {
        let mut stats = RunningStats::new();
        for h in p.sample_conditions_independent(&x, 3000, rng) {
            stats.push(h.values()[0]);
        }
        stats.std_dev()
    };
    let sd_local = collect(&local, &mut rng);
    let sd_both = collect(&both, &mut rng);
    let sigma_g = 0.012; // PelgromModel::cmos28 global V_th sigma
    let expected = (sd_local * sd_local + sigma_g * sigma_g).sqrt();
    assert!(
        (sd_both - expected).abs() < 0.1 * expected,
        "compound sigma {sd_both} vs expected {expected}"
    );
}

#[test]
fn eq3_sets_share_their_die_but_independent_sets_do_not() {
    let circuit: Arc<dyn Circuit> = Arc::new(StrongArmLatch::new());
    let x = StrongArmLatch::new().reference_design();
    let problem = SizingProblem::new(circuit, VerificationMethod::CornerGlobalLocalMc);
    let mut rng = seeded(34);

    // Within an Eq.-3 set, the shared global offset correlates samples.
    let mut within_corr = Vec::new();
    for _ in 0..600 {
        let set = problem.sample_conditions(&x, 2, &mut rng);
        within_corr.push((set[0].values()[0], set[1].values()[0]));
    }
    let a: Vec<f64> = within_corr.iter().map(|p| p.0).collect();
    let b: Vec<f64> = within_corr.iter().map(|p| p.1).collect();
    let rho_within = glova_stats::correlation::pearson(&a, &b);
    assert!(rho_within > 0.1, "Eq.-3 samples should correlate: {rho_within}");

    // Independent (fresh-die) samples must not.
    let mut pairs = Vec::new();
    for _ in 0..600 {
        let set = problem.sample_conditions_independent(&x, 2, &mut rng);
        pairs.push((set[0].values()[0], set[1].values()[0]));
    }
    let a: Vec<f64> = pairs.iter().map(|p| p.0).collect();
    let b: Vec<f64> = pairs.iter().map(|p| p.1).collect();
    let rho_indep = glova_stats::correlation::pearson(&a, &b);
    assert!(rho_indep.abs() < 0.12, "fresh dies should not correlate: {rho_indep}");
}
