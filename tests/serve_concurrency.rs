//! Concurrent-campaign determinism battery for `glova-serve`.
//!
//! The serving contract: a campaign's trajectory is **bitwise
//! identical** whether it runs alone or beside K concurrent campaigns —
//! sharing solver pools through a `SolverRegistry` and evaluation
//! caches through a `CacheRegistry` must be unobservable in the
//! results. Each scenario runs the same seed-1 request on a solo server
//! and again on a multi-worker server saturated with neighbours, then
//! compares the full trajectory and result bit-for-bit (wall-clock
//! timings excluded — they are the one field allowed to differ).

use glova::campaign::{
    CampaignConfig, CampaignResult, CampaignStep, PruningConfig, SizingCampaign,
};
use glova::prelude::*;
use glova_serve::{CampaignServer, CircuitSpec, JobStatus, SizingRequest};
use glova_spice::registry::SolverRegistry;
use std::sync::Arc;

fn quick_config() -> CampaignConfig {
    CampaignConfig::quick(VerificationMethod::Corner)
        .with_max_steps(5)
        .with_cache(glova::cache::EvalCacheConfig::default())
        .with_pruning(PruningConfig::new(2, 3))
}

fn chain_request(seed: u64) -> SizingRequest {
    SizingRequest::new(CircuitSpec::InverterChain { stages: 2 }, quick_config(), seed)
}

/// Everything observable about a step except its wall-clock time, with
/// floats captured as bits (bitwise identity, not approximate).
fn step_bits(s: &CampaignStep) -> (usize, usize, usize, u64, u64, u64, u64, bool) {
    (
        s.step,
        s.active_corners,
        s.corner_count,
        s.sims,
        s.worst_reward.to_bits(),
        s.best_reward.to_bits(),
        s.pass_fraction.to_bits(),
        s.full_grid,
    )
}

fn design_bits(x: &[f64]) -> Vec<u64> {
    x.iter().map(|v| v.to_bits()).collect()
}

fn assert_same_trajectory(a: &CampaignResult, b: &CampaignResult) {
    assert_eq!(a.success, b.success);
    assert_eq!(
        a.final_design.as_deref().map(design_bits),
        b.final_design.as_deref().map(design_bits)
    );
    assert_eq!(design_bits(&a.best_design), design_bits(&b.best_design));
    assert_eq!(a.best_reward.to_bits(), b.best_reward.to_bits());
    assert_eq!(a.init_sims, b.init_sims);
    assert_eq!(a.sims_to_success, b.sims_to_success);
    assert_eq!(a.total_sims, b.total_sims);
    assert_eq!(a.pruning, b.pruning);
    assert_eq!(a.steps.len(), b.steps.len());
    for (sa, sb) in a.steps.iter().zip(&b.steps) {
        assert_eq!(step_bits(sa), step_bits(sb), "step {} diverged", sa.step);
    }
}

fn run_solo(request: SizingRequest) -> CampaignResult {
    let server = CampaignServer::new(1);
    let id = server.submit(request).unwrap();
    let snapshot = server.wait(id).unwrap();
    assert_eq!(snapshot.status, JobStatus::Done);
    snapshot.result.unwrap()
}

#[test]
fn served_campaign_matches_direct_library_run() {
    // Serving is a transport, not a semantics change: the same request
    // through the server must reproduce a direct SizingCampaign run.
    let registry = SolverRegistry::new();
    let circuit = Arc::new(glova_circuits::SpiceInverterChain::from_registry(2, &registry));
    let direct = SizingCampaign::new(circuit, quick_config()).run(1);
    let served = run_solo(chain_request(1));
    assert_same_trajectory(&direct, &served);
}

#[test]
fn trajectory_is_identical_beside_concurrent_same_topology() {
    let reference = run_solo(chain_request(1));
    // Same request again, now racing three same-topology neighbours on
    // a four-worker fleet — shared pool, shared cache.
    let server = CampaignServer::new(4);
    let target = server.submit(chain_request(1)).unwrap();
    let neighbours: Vec<_> =
        (2..=4).map(|seed| server.submit(chain_request(seed)).unwrap()).collect();
    let crowded = server.wait(target).unwrap();
    assert_eq!(crowded.status, JobStatus::Done);
    for id in neighbours {
        assert_eq!(server.wait(id).unwrap().status, JobStatus::Done);
    }
    assert_eq!(
        server.solver_registry().primes(),
        1,
        "four same-topology campaigns must share one symbolic prime"
    );
    assert_same_trajectory(&reference, &crowded.result.unwrap());
    server.shutdown();
}

#[test]
fn trajectory_is_identical_beside_concurrent_different_topologies() {
    let reference = run_solo(chain_request(1));
    // The same seed-1 chain now races an OTA, a sense-amp array, and a
    // longer chain — distinct topologies, distinct pools and caches,
    // one shared registry pair.
    let server = CampaignServer::new(4);
    let target = server.submit(chain_request(1)).unwrap();
    let neighbours = vec![
        server.submit(SizingRequest::new(CircuitSpec::Ota, quick_config(), 2)).unwrap(),
        server
            .submit(SizingRequest::new(
                CircuitSpec::SenseAmpArray { rows: 3, cols: 3 },
                quick_config(),
                3,
            ))
            .unwrap(),
        server
            .submit(SizingRequest::new(CircuitSpec::InverterChain { stages: 3 }, quick_config(), 4))
            .unwrap(),
    ];
    let crowded = server.wait(target).unwrap();
    assert_eq!(crowded.status, JobStatus::Done);
    for id in neighbours {
        assert_eq!(server.wait(id).unwrap().status, JobStatus::Done);
    }
    assert_eq!(server.solver_registry().primes(), 4, "four distinct topologies, four primes");
    assert_eq!(server.cache_registry().len(), 4, "distinct identities never share a cache");
    assert_same_trajectory(&reference, &crowded.result.unwrap());
    server.shutdown();
}

#[test]
fn repeated_requests_replay_identically_from_a_warm_registry() {
    // A long-lived server answers the same request twice: the second
    // run hits warm solver pools and a warm cache, and must still
    // replay the identical trajectory.
    let server = CampaignServer::new(2);
    let first = server.submit(chain_request(9)).unwrap();
    let cold = server.wait(first).unwrap().result.unwrap();
    let second = server.submit(chain_request(9)).unwrap();
    let warm = server.wait(second).unwrap().result.unwrap();
    assert_same_trajectory(&cold, &warm);
    assert_eq!(server.solver_registry().primes(), 1);
    server.shutdown();
}
