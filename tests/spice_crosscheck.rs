//! Cross-checks between the MNA SPICE engine and the analytic
//! device-physics layer used by the testcase circuits: both are built on
//! the same corner-aware model cards, so their qualitative predictions
//! must agree.

use glova_circuits::{Circuit, DramCoreSense};
use glova_spice::analysis::{crossing_time, Edge};
use glova_spice::model::MosModel;
use glova_spice::netlist::{sense_amp_array_with, Netlist, SenseAmpParams, SourceWaveform, GROUND};
use glova_spice::transient::{transient, TransientSpec};
use glova_variation::corner::{CornerSet, ProcessCorner, PvtCorner};
use glova_variation::sampler::MismatchVector;

/// Simulated propagation delay of a loaded CMOS inverter at a corner.
fn inverter_tphl(corner: &PvtCorner) -> f64 {
    let mut nl = Netlist::new();
    let vdd = nl.node("vdd");
    let vin = nl.node("vin");
    let out = nl.node("out");
    nl.vsource("VDD", vdd, GROUND, corner.vdd);
    nl.vsource_waveform(
        "VIN",
        vin,
        GROUND,
        SourceWaveform::Pulse {
            low: 0.0,
            high: corner.vdd,
            delay: 0.1e-9,
            rise: 10e-12,
            fall: 10e-12,
            width: 3e-9,
        },
    );
    nl.mosfet("MP", out, vin, vdd, MosModel::pmos_28nm().at_corner(corner), 2.0, 0.05);
    nl.mosfet("MN", out, vin, GROUND, MosModel::nmos_28nm().at_corner(corner), 1.0, 0.05);
    nl.capacitor("CL", out, GROUND, 5e-15);
    let result = transient(&nl, &TransientSpec::new(2e-12, 1.5e-9)).expect("transient converges");
    let t_in = crossing_time(
        result.times(),
        &result.voltage_waveform(vin),
        corner.vdd / 2.0,
        Edge::Rising,
    )
    .expect("input edge");
    let t_out = crossing_time(
        result.times(),
        &result.voltage_waveform(out),
        corner.vdd / 2.0,
        Edge::Falling,
    )
    .expect("output edge");
    t_out - t_in
}

#[test]
fn spice_corner_delay_ordering_matches_model_cards() {
    // SS must be slower than TT must be slower than FF — the same ordering
    // the analytic circuit models inherit from MosModel::at_corner.
    let base = PvtCorner::typical();
    let tphl_ss = inverter_tphl(&PvtCorner { process: ProcessCorner::Ss, ..base });
    let tphl_tt = inverter_tphl(&base);
    let tphl_ff = inverter_tphl(&PvtCorner { process: ProcessCorner::Ff, ..base });
    assert!(
        tphl_ss > tphl_tt && tphl_tt > tphl_ff,
        "corner ordering broken: SS {tphl_ss:.2e}, TT {tphl_tt:.2e}, FF {tphl_ff:.2e}"
    );
}

#[test]
fn spice_low_supply_is_slower() {
    let nominal = inverter_tphl(&PvtCorner::typical());
    let low_v = inverter_tphl(&PvtCorner { vdd: 0.8, ..PvtCorner::typical() });
    assert!(low_v > nominal, "0.8 V should be slower: {low_v:.2e} vs {nominal:.2e}");
}

#[test]
fn spice_dc_solves_across_all_30_corners() {
    // The DC solver must converge for the inverter at every industrial
    // corner — the same corner set the sizing loop sweeps.
    for corner in CornerSet::industrial_30().iter() {
        let mut nl = Netlist::new();
        let vdd = nl.node("vdd");
        let vin = nl.node("vin");
        let out = nl.node("out");
        nl.vsource("VDD", vdd, GROUND, corner.vdd);
        nl.vsource("VIN", vin, GROUND, corner.vdd / 2.0);
        nl.mosfet("MP", out, vin, vdd, MosModel::pmos_28nm().at_corner(corner), 2.0, 0.05);
        nl.mosfet("MN", out, vin, GROUND, MosModel::nmos_28nm().at_corner(corner), 1.0, 0.05);
        let op = glova_spice::dc::operating_point(&nl)
            .unwrap_or_else(|e| panic!("DC failed at {corner}: {e}"));
        let v = op.voltage(out);
        assert!((0.0..=corner.vdd + 1e-9).contains(&v), "out of rails at {corner}: {v}");
    }
}

#[test]
fn mismatch_shifts_spice_inverter_trip_point() {
    // A +30 mV NMOS threshold shift must raise the inverter trip point —
    // the same mechanism the DRAM model uses for its latch trip asymmetry.
    let corner = PvtCorner::typical();
    let trip = |dvth: f64| -> f64 {
        // Bisection on the input voltage for v_out = vdd/2.
        let mut lo = 0.0;
        let mut hi = corner.vdd;
        for _ in 0..30 {
            let mid = 0.5 * (lo + hi);
            let mut nl = Netlist::new();
            let vdd = nl.node("vdd");
            let vin = nl.node("vin");
            let out = nl.node("out");
            nl.vsource("VDD", vdd, GROUND, corner.vdd);
            nl.vsource("VIN", vin, GROUND, mid);
            nl.mosfet("MP", out, vin, vdd, MosModel::pmos_28nm().at_corner(&corner), 2.0, 0.05);
            nl.mosfet(
                "MN",
                out,
                vin,
                GROUND,
                MosModel::nmos_28nm().at_corner(&corner).with_mismatch(dvth, 0.0),
                1.0,
                0.05,
            );
            let op = glova_spice::dc::operating_point(&nl).expect("dc converges");
            if op.voltage(out) > corner.vdd / 2.0 {
                lo = mid;
            } else {
                hi = mid;
            }
        }
        0.5 * (lo + hi)
    };
    let trip_nominal = trip(0.0);
    let trip_shifted = trip(0.030);
    assert!(
        trip_shifted > trip_nominal + 0.005,
        "trip should rise with NMOS vth: {trip_nominal:.4} -> {trip_shifted:.4}"
    );
}

/// Pre-sensing bitline differential of a small sense-amp array, volts.
fn sense_amp_differential(p: &SenseAmpParams) -> f64 {
    let mut nl = sense_amp_array_with(4, 3, p);
    let op = glova_spice::dc::operating_point(&nl).expect("array DC converges");
    let bl = nl.node("bl1");
    let blb = nl.node("blb1");
    op.voltage(blb) - op.voltage(bl)
}

#[test]
fn sense_amp_array_shares_dram_core_charge_budget() {
    // The MNA sense-amp array carries the same storage/bitline
    // capacitances as the analytic OCSA + subhole model (10 fF cell over
    // an 85 fF open bitline), so both imply the same charge-sharing
    // signal V_sig = (V_DD/2)·C_S/(C_S+C_BL) ≈ 47 mV — the quantity the
    // DRAM testcase's sensing margins are built from.
    let p = SenseAmpParams::default();
    assert_eq!(p.c_cell_f, 10e-15, "cell capacitance diverged from the DRAM model");
    assert_eq!(p.c_bitline_f, 85e-15, "bitline capacitance diverged from the DRAM model");
    let v_sig = 0.5 * p.vdd * p.c_cell_f / (p.c_cell_f + p.c_bitline_f);
    assert!((v_sig - 47.4e-3).abs() < 1e-3, "charge-sharing signal off: {v_sig:.4e}");
}

#[test]
fn sense_amp_low_supply_shrinks_differential_like_dram_margin() {
    // Both engines agree on the supply sensitivity of sensing margin:
    // lowering VDD shrinks the MNA array's pre-sensing bitline
    // differential AND the analytic DRAM model's dv0 sensing margin.
    let nominal = sense_amp_differential(&SenseAmpParams::default());
    let low = sense_amp_differential(&SenseAmpParams { vdd: 0.75, ..SenseAmpParams::default() });
    assert!(
        nominal > 0.0 && low > 0.0 && low < nominal - 1e-3,
        "SPICE differential should shrink at low VDD: {low:.4} vs {nominal:.4}"
    );

    let dram = DramCoreSense::new();
    let x = dram.reference_design();
    let h = MismatchVector::nominal(dram.mismatch_domain(&x).dim());
    let m_nom = dram.evaluate(&x, &PvtCorner::typical(), &h);
    let low_v = PvtCorner { vdd: 0.75, ..PvtCorner::typical() };
    let m_low = dram.evaluate(&x, &low_v, &h);
    assert!(
        m_low[0] < m_nom[0],
        "analytic dv0 should shrink at low VDD: {} vs {}",
        m_low[0],
        m_nom[0]
    );
}
