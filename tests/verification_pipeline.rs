//! Cross-crate behaviour of the verification phase (Algorithm 2):
//! budgets, early abort, reuse accounting and ablation contrast.

use glova::verification::{ReusableSamples, Verifier};
use glova::SizingProblem;
use glova_circuits::ToyQuadratic;
use glova_stats::rng::seeded;
use glova_variation::config::VerificationMethod;
use std::sync::Arc;

fn toy_problem(method: VerificationMethod) -> SizingProblem {
    SizingProblem::new(Arc::new(ToyQuadratic::standard().with_mismatch_sensitivity(0.05)), method)
}

fn natural(p: &SizingProblem) -> Vec<usize> {
    (0..p.config().corners.len()).collect()
}

#[test]
fn full_verification_budgets_match_table_one() {
    // Passing designs must consume exactly the Table-I budget.
    let optimum = ToyQuadratic::standard().optimum().to_vec();
    for (method, expected) in [
        (VerificationMethod::Corner, 30u64),
        (VerificationMethod::CornerLocalMc, 3000),
        (VerificationMethod::CornerGlobalLocalMc, 6000),
    ] {
        let p = toy_problem(method);
        let mut rng = seeded(1);
        let outcome = Verifier::new(&p, 4.0).verify(&optimum, &natural(&p), None, &mut rng);
        assert!(outcome.passed, "{method}: optimum should verify");
        assert_eq!(outcome.simulations_used, expected, "{method}: wrong full-verification budget");
    }
}

#[test]
fn early_abort_saves_simulations_on_bad_designs() {
    let p = toy_problem(VerificationMethod::CornerLocalMc);
    let bad = vec![0.05; 4];
    let mut rng = seeded(2);
    let outcome = Verifier::new(&p, 4.0).verify(&bad, &natural(&p), None, &mut rng);
    assert!(!outcome.passed);
    assert!(
        outcome.simulations_used < 100,
        "bad design should abort early, used {}",
        outcome.simulations_used
    );
}

#[test]
fn reuse_reduces_simulation_count_exactly() {
    let p = toy_problem(VerificationMethod::CornerLocalMc);
    let optimum = ToyQuadratic::standard().optimum().to_vec();
    let n_prime = p.config().optim_samples as u64;

    let mut rng = seeded(3);
    let conditions = p.sample_conditions(&optimum, n_prime as usize, &mut rng);
    let corner = p.config().corners.corner(4);
    let (outcomes, _) = p.simulate_conditions(&optimum, &corner, &conditions);
    let reuse = ReusableSamples { corner_index: 4, conditions, outcomes };

    let sims_before = p.simulations();
    let outcome = Verifier::new(&p, 4.0).verify(&optimum, &natural(&p), Some(&reuse), &mut rng);
    assert!(outcome.passed);
    assert_eq!(p.simulations() - sims_before, 3000 - n_prime);
}

#[test]
fn corner_hint_order_is_respected_in_failure_attribution() {
    // A design failing everywhere should be rejected at the hinted first
    // corner when reordering is on.
    let p = toy_problem(VerificationMethod::CornerLocalMc);
    let bad = vec![0.0; 4];
    let mut hint = natural(&p);
    hint.rotate_left(13); // corner 13 first
    let mut rng = seeded(4);
    let outcome = Verifier::new(&p, 4.0).verify(&bad, &hint, None, &mut rng);
    assert_eq!(outcome.failed_corner, Some(13));
}

#[test]
fn mu_sigma_ablation_changes_rejection_behaviour() {
    // Statistical contrast over seeds: the µ-σ verifier must reject
    // marginal designs at least as often as the sample-only verifier.
    let p = toy_problem(VerificationMethod::CornerLocalMc);
    let mut marginal = ToyQuadratic::standard().optimum().to_vec();
    marginal[0] += 0.16;
    let mut strict_rejects = 0;
    let mut lax_rejects = 0;
    for seed in 0..10 {
        let mut rng = seeded(100 + seed);
        if !Verifier::new(&p, 4.0).verify(&marginal, &natural(&p), None, &mut rng).passed {
            strict_rejects += 1;
        }
        let mut rng = seeded(100 + seed);
        if !Verifier::new(&p, 4.0)
            .without_mu_sigma()
            .verify(&marginal, &natural(&p), None, &mut rng)
            .passed
        {
            lax_rejects += 1;
        }
    }
    assert!(
        strict_rejects >= lax_rejects,
        "µ-σ should reject at least as often: {strict_rejects} vs {lax_rejects}"
    );
}

#[test]
fn per_corner_worst_covers_all_corners_on_pass() {
    let p = toy_problem(VerificationMethod::Corner);
    let optimum = ToyQuadratic::standard().optimum().to_vec();
    let mut rng = seeded(5);
    let outcome = Verifier::new(&p, 4.0).verify(&optimum, &natural(&p), None, &mut rng);
    assert!(outcome.passed);
    let mut seen: Vec<usize> = outcome.per_corner_worst.iter().map(|&(c, _)| c).collect();
    seen.sort_unstable();
    seen.dedup();
    assert_eq!(seen.len(), 30, "every corner must report a worst reward");
}
