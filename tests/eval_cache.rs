//! Correctness contract of the speed layers added for the perf
//! subsystem: the evaluation cache must never change results (only wall
//! time), and the chord-Newton LU reuse must land on the same operating
//! points as full Newton.

use glova::cache::{CachePolicy, EvalCacheConfig};
use glova::engine::EngineSpec;
use glova::optimizer::{GlovaConfig, GlovaOptimizer};
use glova::problem::SizingProblem;
use glova::report::RunResult;
use glova::verification::Verifier;
use glova_circuits::{Circuit, ToyQuadratic};
use glova_spice::dc::operating_point_with_options;
use glova_spice::mna::NewtonOptions;
use glova_spice::model::MosModel;
use glova_spice::netlist::{Netlist, GROUND};
use glova_stats::rng::seeded;
use glova_variation::config::VerificationMethod;
use std::sync::Arc;
use std::time::Duration;

// ---------------------------------------------------------------------
// Cache accounting through the problem layer
// ---------------------------------------------------------------------

#[test]
fn repeated_sweeps_hit_the_cache_and_counters_stay_request_based() {
    let toy: Arc<dyn Circuit> = Arc::new(ToyQuadratic::standard().with_mismatch_sensitivity(0.05));
    // `CachePolicy::On` pins memoization: the counter assertions below
    // must not depend on what the Auto cost probe decides for a cheap
    // analytic circuit.
    let problem = SizingProblem::new(toy, VerificationMethod::CornerLocalMc)
        .with_cache(EvalCacheConfig::with_policy(CachePolicy::On));
    let x = vec![0.5; 4];
    let corner = problem.config().corners.corner(0);
    let mut rng = seeded(3);
    let conditions = problem.sample_conditions(&x, 20, &mut rng);

    let (first, worst_first) = problem.simulate_conditions(&x, &corner, &conditions);
    let stats = problem.cache_stats().unwrap();
    assert_eq!(stats.hits, 0, "cold cache has no hits");
    assert_eq!(stats.misses, 20);

    let (second, worst_second) = problem.simulate_conditions(&x, &corner, &conditions);
    let stats = problem.cache_stats().unwrap();
    assert_eq!(stats.hits, 20, "identical sweep must be fully cached");
    assert_eq!(stats.misses, 20);
    assert!(stats.hit_rate() > 0.0);

    // Outcomes are bitwise-identical and the counter counts *requests*
    // (cache-independent accounting).
    assert_eq!(first, second);
    assert_eq!(worst_first.to_bits(), worst_second.to_bits());
    assert_eq!(problem.simulations(), 40);
}

#[test]
fn lru_bound_caps_residency_and_counts_evictions() {
    let toy: Arc<dyn Circuit> = Arc::new(ToyQuadratic::standard().with_mismatch_sensitivity(0.05));
    let problem = SizingProblem::new(toy, VerificationMethod::CornerLocalMc)
        .with_cache(EvalCacheConfig { capacity: 8, policy: CachePolicy::On, shards: 1 });
    let x = vec![0.5; 4];
    let corner = problem.config().corners.corner(0);
    let mut rng = seeded(4);
    let conditions = problem.sample_conditions(&x, 30, &mut rng);
    let _ = problem.simulate_conditions(&x, &corner, &conditions);

    let cache = problem.cache().unwrap();
    assert_eq!(cache.len(), 8, "residency must respect the LRU bound");
    let stats = cache.stats();
    assert_eq!(stats.evictions, 30 - 8);
    assert_eq!(stats.misses, 30);
}

// ---------------------------------------------------------------------
// End-to-end identity: cache on/off × both engines
// ---------------------------------------------------------------------

/// Strips the only legitimately nondeterministic field.
fn normalized(mut result: RunResult) -> RunResult {
    result.wall_time = Duration::ZERO;
    result
}

#[test]
fn run_results_identical_with_cache_on_and_off_across_engines() {
    let reference: Option<RunResult> = None;
    let mut reference = reference;
    for engine in [EngineSpec::Sequential, EngineSpec::Threaded(4)] {
        for cached in [false, true] {
            let mut config =
                GlovaConfig::quick(VerificationMethod::CornerLocalMc).with_engine(engine);
            if cached {
                config = config.with_cache(EvalCacheConfig::default());
            }
            let circuit = Arc::new(ToyQuadratic::standard().with_mismatch_sensitivity(0.05));
            let result = normalized(GlovaOptimizer::new(circuit, config).run(42));
            match &reference {
                None => reference = Some(result),
                Some(expect) => assert_eq!(
                    expect, &result,
                    "engine {engine} cached={cached} diverged from reference"
                ),
            }
        }
    }
    assert!(reference.expect("ran").success, "quick run on the toy should succeed");
}

#[test]
fn verification_outcome_identical_with_cache_under_both_engines() {
    let x = ToyQuadratic::standard().optimum().to_vec();
    let mut outcomes = Vec::new();
    for engine in [EngineSpec::Sequential, EngineSpec::Threaded(3)] {
        for cached in [false, true] {
            let toy: Arc<dyn Circuit> =
                Arc::new(ToyQuadratic::standard().with_mismatch_sensitivity(0.05));
            let mut problem =
                SizingProblem::with_engine(toy, VerificationMethod::CornerLocalMc, engine.build());
            if cached {
                problem = problem.with_cache(EvalCacheConfig::default());
            }
            let order: Vec<usize> = (0..problem.config().corners.len()).collect();
            let mut rng = seeded(11);
            let outcome = Verifier::new(&problem, 4.0).verify(&x, &order, None, &mut rng);
            assert!(outcome.passed);
            outcomes.push(outcome);
        }
    }
    for other in &outcomes[1..] {
        assert_eq!(&outcomes[0], other);
    }
}

// ---------------------------------------------------------------------
// Chord-Newton vs full Newton on testcase-shaped operating points
// ---------------------------------------------------------------------

/// The ToyQuadratic analogue in SPICE terms: a square-law (quadratic)
/// diode-connected device against a current source — the simplest
/// nonlinear operating point.
fn toy_quadratic_netlist() -> Netlist {
    let mut nl = Netlist::new();
    let d = nl.node("d");
    nl.isource("I1", GROUND, d, 100e-6);
    nl.mosfet("M1", d, d, GROUND, MosModel::nmos_28nm(), 10.0, 0.1);
    nl
}

/// The StrongArm latch core: cross-coupled NMOS pair with resistive
/// loads and an input-imbalance current — the regenerative
/// (positive-feedback) operating point the SAL testcase is built
/// around, and the hardest DC topology in the suite.
fn strongarm_latch_netlist() -> Netlist {
    let mut nl = Netlist::new();
    let vdd = nl.node("vdd");
    let a = nl.node("outp");
    let b = nl.node("outn");
    nl.vsource("VDD", vdd, GROUND, 0.9);
    nl.resistor("RA", vdd, a, 20e3);
    nl.resistor("RB", vdd, b, 20e3);
    nl.mosfet("MA", a, b, GROUND, MosModel::nmos_28nm(), 2.0, 0.05);
    nl.mosfet("MB", b, a, GROUND, MosModel::nmos_28nm(), 2.0, 0.05);
    nl.isource("IIN", GROUND, a, 1e-6);
    nl
}

#[test]
fn chord_newton_matches_full_newton_on_testcase_operating_points() {
    for (name, netlist) in
        [("ToyQuadratic", toy_quadratic_netlist()), ("StrongArmLatch", strongarm_latch_netlist())]
    {
        let zeros = vec![0.0; netlist.unknown_count()];
        let full = operating_point_with_options(&netlist, &zeros, &NewtonOptions::full_newton())
            .unwrap_or_else(|e| panic!("{name}: full Newton failed: {e}"));
        let chord = operating_point_with_options(&netlist, &zeros, &NewtonOptions::default())
            .unwrap_or_else(|e| panic!("{name}: chord Newton failed: {e}"));
        assert_eq!(full.raw().len(), chord.raw().len());
        for (i, (f, c)) in full.raw().iter().zip(chord.raw()).enumerate() {
            assert!(
                (f - c).abs() < 1e-9,
                "{name} unknown {i}: chord {c} vs full {f} (|Δ| = {:.3e})",
                (f - c).abs()
            );
        }
    }
}
