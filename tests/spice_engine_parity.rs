//! The SPICE × engine determinism battery.
//!
//! PR-level contract: routing SPICE-backed evaluation through the
//! [`EvalEngine`](glova::engine::EvalEngine) layer — with every worker
//! thread owning its own `OpSolver` cloned from one primed prototype —
//! must be a pure performance knob. Sequential and threaded sweeps, on
//! every solver backend (Dense / Sparse / Auto), every worker count
//! {1, 2, 4, 8} and every cache policy {On, Off, Auto}, must produce
//! **bitwise-identical** yield grids and verification outcomes, with
//! identical simulation accounting.
//!
//! Threading a Newton/LU pipeline is exactly where silent nondeterminism
//! creeps in (shared factorization state, stale numeric storage,
//! worker-order-dependent symbolic analyses), so this suite is the
//! foregrounded deliverable riding along the threaded-sweep work.

use glova::cache::{CachePolicy, EvalCacheConfig};
use glova::engine::{map_indexed, EngineSpec};
use glova::problem::SizingProblem;
use glova::verification::Verifier;
use glova::yield_est::{estimate_yield, YieldEstimate};
use glova_circuits::{Circuit, SpiceInverterChain};
use glova_spice::dc::{OpSolver, OpSolverPool};
use glova_spice::mna::{NewtonOptions, SolverBackend};
use glova_spice::netlist::inverter_chain_with_load;
use glova_stats::rng::seeded;
use glova_variation::config::VerificationMethod;
use std::sync::Arc;

const WORKER_COUNTS: [usize; 4] = [1, 2, 4, 8];
const CACHE_POLICIES: [Option<CachePolicy>; 3] =
    [Some(CachePolicy::On), Some(CachePolicy::Off), Some(CachePolicy::Auto)];

/// 18 stages → 22 unknowns: above the `Auto` sparse threshold, so the
/// three backend arms genuinely run dense, sparse and (auto-resolved)
/// sparse code paths on the same circuit.
const GRID_STAGES: usize = 18;

fn problem(
    circuit: &Arc<dyn Circuit>,
    engine: EngineSpec,
    cache: Option<CachePolicy>,
) -> SizingProblem {
    let p = SizingProblem::with_engine(
        circuit.clone(),
        VerificationMethod::CornerLocalMc,
        engine.build(),
    );
    match cache {
        Some(policy) => p.with_cache(EvalCacheConfig::with_policy(policy)),
        None => p,
    }
}

fn assert_estimates_bitwise_equal(a: &YieldEstimate, b: &YieldEstimate, what: &str) {
    assert_eq!(a, b, "{what}");
    assert_eq!(a.yield_point.to_bits(), b.yield_point.to_bits(), "{what}: yield bits");
    assert_eq!(
        a.confidence_interval.0.to_bits(),
        b.confidence_interval.0.to_bits(),
        "{what}: CI lower bits"
    );
    assert_eq!(
        a.confidence_interval.1.to_bits(),
        b.confidence_interval.1.to_bits(),
        "{what}: CI upper bits"
    );
}

/// One SPICE-backed yield grid (the engine-dispatched
/// `simulate_corner_grid_independent` fan-out) for a fixed seed.
fn yield_grid(
    circuit: &Arc<dyn Circuit>,
    engine: EngineSpec,
    cache: Option<CachePolicy>,
) -> (YieldEstimate, u64) {
    let p = problem(circuit, engine, cache);
    let x = vec![0.5; circuit.dim()];
    let mut rng = seeded(2025);
    let est = estimate_yield(&p, &x, 3, 0.95, &mut rng);
    (est, p.simulations())
}

fn yield_grid_battery(backend: SolverBackend) {
    let circuit: Arc<dyn Circuit> =
        Arc::new(SpiceInverterChain::with_backend(GRID_STAGES, backend));
    let (reference, ref_sims) = yield_grid(&circuit, EngineSpec::Sequential, None);
    assert_eq!(ref_sims, 30 * 3, "full corner × sample grid simulated");
    for workers in WORKER_COUNTS {
        for cache in CACHE_POLICIES {
            let (est, sims) = yield_grid(&circuit, EngineSpec::Threaded(workers), cache);
            let what = format!("{backend} workers={workers} cache={cache:?}");
            assert_estimates_bitwise_equal(&reference, &est, &what);
            assert_eq!(sims, ref_sims, "{what}: simulation accounting");
        }
    }
}

#[test]
fn yield_grid_bitwise_parity_dense() {
    yield_grid_battery(SolverBackend::Dense);
}

#[test]
fn yield_grid_bitwise_parity_sparse() {
    yield_grid_battery(SolverBackend::Sparse);
}

#[test]
fn yield_grid_bitwise_parity_auto() {
    yield_grid_battery(SolverBackend::Auto);
}

/// The verifier's phase-2 re-sweep: two identically seeded Algorithm-2
/// runs per configuration (the second replays the first's points — the
/// cache-hit pattern), across engines and cache policies. Outcomes,
/// per-corner worst rewards and simulation spend must match the
/// sequential cache-off reference bitwise, on both verification passes.
#[test]
fn verifier_resweep_bitwise_parity() {
    // 6 stages → 10 unknowns (Auto resolves dense): keeps the full
    // 3 000-simulation pass affordable in debug builds.
    let circuit: Arc<dyn Circuit> = Arc::new(SpiceInverterChain::new(6));
    // One design that verifies clean and one far corner of the design
    // space that fails (wide, short-channel devices blow the power
    // budget) — the failing arm exercises the deterministic early-abort
    // block boundaries under threading.
    let designs = [vec![0.5; 4], vec![1.0, 1.0, 0.0, 0.0]];
    for (di, x) in designs.iter().enumerate() {
        let verify_twice = |engine: EngineSpec, cache: Option<CachePolicy>| {
            let p = problem(&circuit, engine, cache);
            let hint: Vec<usize> = (0..p.config().corners.len()).collect();
            let verifier = Verifier::new(&p, 4.0);
            let outcomes: Vec<_> = (0..2)
                .map(|_| {
                    let mut rng = seeded(900 + di as u64);
                    verifier.verify(x, &hint, None, &mut rng)
                })
                .collect();
            (outcomes, p.simulations())
        };
        let (ref_outcomes, ref_sims) = verify_twice(EngineSpec::Sequential, Some(CachePolicy::Off));
        assert_eq!(
            ref_outcomes[0], ref_outcomes[1],
            "design {di}: identically seeded re-sweep must reproduce"
        );
        for (engine, cache) in [
            (EngineSpec::Sequential, Some(CachePolicy::On)),
            (EngineSpec::Threaded(4), Some(CachePolicy::Off)),
            (EngineSpec::Threaded(4), Some(CachePolicy::On)),
            (EngineSpec::Threaded(8), Some(CachePolicy::Auto)),
        ] {
            let (outcomes, sims) = verify_twice(engine, cache);
            assert_eq!(
                outcomes, ref_outcomes,
                "design {di} {engine} cache={cache:?}: verification outcomes"
            );
            assert_eq!(sims, ref_sims, "design {di} {engine} cache={cache:?}: simulation spend");
            for (o, r) in outcomes.iter().zip(&ref_outcomes) {
                for ((ci, w), (rci, rw)) in o.per_corner_worst.iter().zip(&r.per_corner_worst) {
                    assert_eq!(ci, rci);
                    assert_eq!(w.to_bits(), rw.to_bits(), "per-corner worst bits");
                }
            }
        }
    }
}

/// The pool primitive itself: a threaded retarget/solve sweep through
/// one `OpSolverPool` must match both a sequential sweep through the
/// same pool and per-point fresh `OpSolver`s, bitwise, on every backend.
#[test]
fn solver_pool_sweep_matches_fresh_solvers_bitwise() {
    let points = 48;
    for backend in [SolverBackend::Dense, SolverBackend::Sparse] {
        let options = NewtonOptions::default().with_backend(backend);
        // Same topology, different values per point — the sweep shape a
        // corner/mismatch campaign presents to the pool.
        let netlist_at = |i: usize| inverter_chain_with_load(12, Some(8e3 + 200.0 * i as f64));
        let fresh: Vec<Vec<f64>> = (0..points)
            .map(|i| {
                let nl = netlist_at(i);
                OpSolver::new(&nl, options).solve().expect("converges").raw().to_vec()
            })
            .collect();

        let pool = OpSolverPool::new(&netlist_at(0), options).expect("primes");
        let sweep = |engine: EngineSpec| -> Vec<Vec<f64>> {
            map_indexed(engine.build().as_ref(), points, |i| {
                pool.with_solver(|solver| {
                    solver.retarget(&netlist_at(i));
                    solver.solve().expect("converges").raw().to_vec()
                })
            })
        };
        let sequential = sweep(EngineSpec::Sequential);
        let threaded = sweep(EngineSpec::Threaded(4));
        for i in 0..points {
            for ((s, t), f) in sequential[i].iter().zip(&threaded[i]).zip(&fresh[i]) {
                assert_eq!(
                    s.to_bits(),
                    t.to_bits(),
                    "{backend} point {i}: sequential vs threaded pool"
                );
                assert_eq!(s.to_bits(), f.to_bits(), "{backend} point {i}: pool vs fresh solver");
            }
        }
        assert!(
            (1..=5).contains(&pool.solvers_spawned()),
            "{backend}: pool must materialize between 1 and workers+1 solvers, got {}",
            pool.solvers_spawned()
        );
    }
}

/// Pool solvers spawned under an engine-dispatched circuit evaluation
/// stay bounded by the worker count — per-worker ownership, not
/// per-point allocation.
#[test]
fn per_worker_solver_ownership_is_bounded() {
    let chain = Arc::new(SpiceInverterChain::new(8));
    let circuit: Arc<dyn Circuit> = chain.clone();
    let p = SizingProblem::with_engine(
        circuit.clone(),
        VerificationMethod::CornerLocalMc,
        EngineSpec::Threaded(4).build(),
    );
    let x = vec![0.5; circuit.dim()];
    let mut rng = seeded(11);
    let _ = estimate_yield(&p, &x, 4, 0.95, &mut rng);
    let spawned = chain.solver_pool().solvers_spawned();
    assert!(
        (1..=4).contains(&spawned),
        "4-worker sweep must materialize at most 4 solvers, got {spawned}"
    );
}

/// Dense-robustness regression (ROADMAP "Dense robustness" item): the
/// previously-failing 80-stage *unloaded* mid-rail chain — cutoff
/// devices leave node rows at `gmin` scale and border-block cancellation
/// used to read as a singular matrix — must now solve on the dense
/// backend and agree with the sparse backend, keeping the dense path a
/// parity oracle over the sparse backend's whole range.
#[test]
fn dense_oracle_covers_80_stage_unloaded_chain() {
    let nl = inverter_chain_with_load(80, None);
    let x0 = vec![0.0; nl.unknown_count()];
    let solve = |backend| {
        let options = NewtonOptions::default().with_backend(backend);
        glova_spice::dc::operating_point_with_options(&nl, &x0, &options)
            .unwrap_or_else(|e| panic!("80-stage unloaded chain must solve on {backend}: {e}"))
    };
    let dense = solve(SolverBackend::Dense);
    let sparse = solve(SolverBackend::Sparse);
    let gap =
        dense.raw().iter().zip(sparse.raw()).map(|(d, s)| (d - s).abs()).fold(0.0f64, f64::max);
    assert!(gap < 1e-9, "dense vs sparse diverge by {gap:.3e} on the unloaded chain");
    // Mid-rail chain with no loads: node voltages must stay inside the
    // supply (sanity that the recovered solve is physical, not garbage).
    for v in &dense.raw()[..nl.node_count() - 1] {
        assert!((-1e-6..=0.9 + 1e-6).contains(v), "node voltage {v} outside the supply");
    }
}
