//! End-to-end sizing campaigns: the full GLOVA pipeline (TuRBO init →
//! risk-sensitive RL → µ-σ gate → Algorithm-2 verification) on the real
//! testcase circuits.

use glova::prelude::*;
use glova_variation::sampler::MismatchVector;
use std::sync::Arc;

/// Verifies the returned design really is corner-feasible, independently
/// of the optimizer's own bookkeeping.
fn assert_design_corner_feasible(circuit: &Arc<dyn Circuit>, x: &[f64]) {
    let h = MismatchVector::nominal(circuit.mismatch_domain(x).dim());
    for corner in glova_variation::corner::CornerSet::industrial_30().iter() {
        let metrics = circuit.evaluate(x, corner, &h);
        assert!(
            circuit.spec().satisfied(&metrics),
            "returned design infeasible at {corner}: {metrics:?}"
        );
    }
}

#[test]
fn sal_corner_campaign_returns_verified_design() {
    let circuit: Arc<dyn Circuit> = Arc::new(glova_circuits::StrongArmLatch::new());
    let mut opt =
        GlovaOptimizer::new(circuit.clone(), GlovaConfig::paper(VerificationMethod::Corner));
    let result = opt.run(42);
    assert!(result.success, "SAL corner campaign failed: {result}");
    let x = result.final_design.expect("success carries a design");
    assert_design_corner_feasible(&circuit, &x);
    // Accounting sanity: a successful corner run includes the final
    // 30-simulation verification.
    assert!(result.simulations >= 30);
    assert!(result.verification_attempts >= 1);
}

#[test]
fn fia_corner_campaign_returns_verified_design() {
    let circuit: Arc<dyn Circuit> = Arc::new(glova_circuits::FloatingInverterAmp::new());
    let mut opt =
        GlovaOptimizer::new(circuit.clone(), GlovaConfig::paper(VerificationMethod::Corner));
    let result = opt.run(7);
    assert!(result.success, "FIA corner campaign failed: {result}");
    assert_design_corner_feasible(&circuit, &result.final_design.unwrap());
}

#[test]
fn dram_corner_campaign_returns_verified_design() {
    let circuit: Arc<dyn Circuit> = Arc::new(glova_circuits::DramCoreSense::new());
    let mut config = GlovaConfig::paper(VerificationMethod::Corner);
    config.max_iterations = 800;
    let mut opt = GlovaOptimizer::new(circuit.clone(), config);
    let result = opt.run(5);
    assert!(result.success, "DRAM corner campaign failed: {result}");
    assert_design_corner_feasible(&circuit, &result.final_design.unwrap());
}

#[test]
fn sal_local_mc_campaign_survives_fresh_monte_carlo() {
    // The verified design must hold up under a *fresh* local MC with a
    // different seed than anything the optimizer saw.
    let circuit: Arc<dyn Circuit> = Arc::new(glova_circuits::StrongArmLatch::new());
    let mut opt =
        GlovaOptimizer::new(circuit.clone(), GlovaConfig::paper(VerificationMethod::CornerLocalMc));
    let result = opt.run(42);
    assert!(result.success, "SAL C-MCL campaign failed: {result}");
    let x = result.final_design.unwrap();

    let problem = glova::SizingProblem::new(circuit.clone(), VerificationMethod::CornerLocalMc);
    let mut rng = glova_stats::rng::seeded(987_654);
    let mut failures = 0u32;
    let mut total = 0u32;
    for corner in problem.config().corners.clone().iter() {
        for h in problem.sample_conditions_independent(&x, 40, &mut rng) {
            let outcome = problem.simulate(&x, corner, &h);
            total += 1;
            if outcome.reward != glova_circuits::spec::SATISFIED_REWARD {
                failures += 1;
            }
        }
    }
    let rate = failures as f64 / total as f64;
    assert!(rate < 0.01, "fresh MC failure rate too high: {failures}/{total}");
}

#[test]
fn iteration_counts_grow_with_verification_strictness() {
    // Table-II shape: C ≤ C-MC_L in RL iterations for the same circuit and
    // seed family (averaged over a few seeds to damp noise).
    let circuit: Arc<dyn Circuit> = Arc::new(glova_circuits::StrongArmLatch::new());
    let mean_iters = |method: VerificationMethod| -> f64 {
        let mut total = 0.0f64;
        let mut n = 0.0f64;
        for seed in [1u64, 2, 3] {
            let mut opt = GlovaOptimizer::new(circuit.clone(), GlovaConfig::paper(method));
            let r = opt.run(seed);
            if r.success {
                total += r.rl_iterations as f64;
                n += 1.0;
            }
        }
        total / n.max(1.0)
    };
    let c = mean_iters(VerificationMethod::Corner);
    let mcl = mean_iters(VerificationMethod::CornerLocalMc);
    assert!(c > 0.0 && mcl > 0.0, "campaigns must succeed");
    assert!(mcl >= c, "local MC should not need fewer iterations than corner-only: {mcl} vs {c}");
}
