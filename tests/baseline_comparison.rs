//! Framework-versus-framework behaviour — the algorithmic contrasts that
//! Table II quantifies, checked qualitatively on the fast toy circuit.

use glova::optimizer::{GlovaConfig, GlovaOptimizer};
use glova_baselines::pvtsizing::{PvtSizing, PvtSizingConfig};
use glova_baselines::robustanalog::{RobustAnalog, RobustAnalogConfig};
use glova_circuits::{Circuit, ToyQuadratic};
use glova_variation::config::VerificationMethod;
use std::sync::Arc;

fn toy() -> Arc<dyn Circuit> {
    Arc::new(ToyQuadratic::standard().with_mismatch_sensitivity(0.05))
}

#[test]
fn glova_uses_fewer_simulations_than_pvtsizing_on_average() {
    // GLOVA simulates only the worst corner per iteration; PVTSizing all 30.
    let seeds = [1u64, 2, 3];
    let mut glova_sims = 0.0;
    let mut pvt_sims = 0.0;
    let mut glova_ok = 0;
    let mut pvt_ok = 0;
    for &seed in &seeds {
        let mut g = GlovaOptimizer::new(toy(), GlovaConfig::paper(VerificationMethod::Corner));
        let rg = g.run(seed);
        if rg.success {
            glova_sims += rg.simulations as f64;
            glova_ok += 1;
        }
        let mut p = PvtSizing::new(toy(), PvtSizingConfig::new(VerificationMethod::Corner));
        let rp = p.run(seed);
        if rp.success {
            pvt_sims += rp.simulations as f64;
            pvt_ok += 1;
        }
    }
    assert!(glova_ok >= 2, "GLOVA should succeed on most seeds");
    assert!(pvt_ok >= 1, "PVTSizing should succeed on some seeds");
    let glova_mean = glova_sims / glova_ok as f64;
    let pvt_mean = pvt_sims / pvt_ok as f64;
    assert!(
        glova_mean < pvt_mean,
        "GLOVA should be more sample-efficient: {glova_mean} vs {pvt_mean}"
    );
}

#[test]
fn robustanalog_runs_and_can_succeed_on_easy_problem() {
    let mut config = RobustAnalogConfig::new(VerificationMethod::Corner);
    config.max_iterations = 400;
    let mut opt = RobustAnalog::new(toy(), config);
    let mut successes = 0;
    for seed in [1u64, 2, 3] {
        if opt.run(seed).success {
            successes += 1;
        }
    }
    assert!(successes >= 1, "RobustAnalog should solve the toy at least once");
}

#[test]
fn robustanalog_spends_fewer_sims_per_iteration_than_pvtsizing() {
    // Corner clustering means RobustAnalog simulates ~n_clusters corners
    // per iteration vs PVTSizing's full 30 — per *iteration*, not total.
    let hard_seed = 424242; // unlikely to converge quickly for either
    let mut p_cfg = PvtSizingConfig::new(VerificationMethod::Corner);
    p_cfg.max_iterations = 20;
    p_cfg.turbo_budget = 20;
    let mut p = PvtSizing::new(toy(), p_cfg);
    let rp = p.run(hard_seed);

    let mut r_cfg = RobustAnalogConfig::new(VerificationMethod::Corner);
    r_cfg.max_iterations = 20;
    r_cfg.random_budget = 20;
    let mut r = RobustAnalog::new(toy(), r_cfg);
    let rr = r.run(hard_seed);

    if !rp.success && !rr.success {
        let p_per_iter = rp.simulations as f64 / rp.rl_iterations as f64;
        let r_per_iter = rr.simulations as f64 / rr.rl_iterations as f64;
        assert!(
            r_per_iter < p_per_iter,
            "clustered corners should cost less per iteration: {r_per_iter} vs {p_per_iter}"
        );
    }
}

#[test]
fn all_frameworks_count_simulations_consistently() {
    // Simulation counters must start at zero and be monotone across runs.
    let mut g = GlovaOptimizer::new(toy(), GlovaConfig::quick(VerificationMethod::Corner));
    let r1 = g.run(1);
    assert!(r1.simulations > 0);
    let r2 = g.run(2);
    // Counter resets between runs: r2 counts only its own work.
    assert!(r2.simulations > 0);
    assert!(r2.simulations < r1.simulations + 100_000);
}
