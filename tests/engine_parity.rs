//! Engine parity: the threaded evaluation engine must be a pure
//! performance knob — every observable result (designs, rewards,
//! simulation counts, verification outcomes, yield estimates) must be
//! bitwise-identical to the sequential reference for the same seed.

use glova::engine::{map_indexed, EngineSpec, EvalEngine, Threaded};
use glova::prelude::*;
use glova::problem::SizingProblem;
use glova::yield_est::estimate_yield;
use glova_stats::rng::seeded;
use glova_variation::corner::PvtCorner;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

fn toy() -> Arc<dyn Circuit> {
    Arc::new(glova_circuits::ToyQuadratic::standard().with_mismatch_sensitivity(0.05))
}

/// SPICE-backed testcase: the StrongARM latch sits on the 28 nm device
/// cards of `glova-spice`.
fn sal() -> Arc<dyn Circuit> {
    Arc::new(glova_circuits::StrongArmLatch::new())
}

fn assert_runs_identical(a: &RunResult, b: &RunResult) {
    assert_eq!(a.success, b.success);
    assert_eq!(a.rl_iterations, b.rl_iterations);
    assert_eq!(a.simulations, b.simulations);
    assert_eq!(a.verification_attempts, b.verification_attempts);
    assert_eq!(a.final_design, b.final_design);
    // Bitwise, not just `==`: rule out sign/NaN drift in the designs.
    if let (Some(xa), Some(xb)) = (&a.final_design, &b.final_design) {
        for (va, vb) in xa.iter().zip(xb) {
            assert_eq!(va.to_bits(), vb.to_bits());
        }
    }
}

fn run_with(
    circuit: Arc<dyn Circuit>,
    method: VerificationMethod,
    engine: EngineSpec,
) -> RunResult {
    let config = GlovaConfig::quick(method).with_engine(engine);
    GlovaOptimizer::new(circuit, config).run(7)
}

#[test]
fn toy_campaign_identical_across_engines() {
    for method in [VerificationMethod::Corner, VerificationMethod::CornerLocalMc] {
        let seq = run_with(toy(), method, EngineSpec::Sequential);
        for workers in [2, 5] {
            let thr = run_with(toy(), method, EngineSpec::Threaded(workers));
            assert_runs_identical(&seq, &thr);
        }
    }
}

#[test]
fn spice_backed_campaign_identical_across_engines() {
    // Short campaign on the SPICE-card-backed StrongARM latch: budget is
    // capped so the test stays fast whether or not the run succeeds —
    // parity must hold either way.
    let mut config = GlovaConfig::quick(VerificationMethod::Corner);
    config.max_iterations = 25;
    config.turbo_budget = 40;
    let seq = GlovaOptimizer::new(sal(), config.clone()).run(13);
    let thr_config = config.with_engine(EngineSpec::Threaded(4));
    let thr = GlovaOptimizer::new(sal(), thr_config).run(13);
    assert_runs_identical(&seq, &thr);
}

#[test]
fn verifier_outcomes_identical_across_engines() {
    // A marginal design exercises the phase-2 early-abort path, where
    // block boundaries and reduction order could diverge between engines.
    let toy_circuit = glova_circuits::ToyQuadratic::standard().with_mismatch_sensitivity(3.0);
    let mut x = toy_circuit.optimum().to_vec();
    x[0] += 0.13;
    let circuit: Arc<dyn Circuit> = Arc::new(toy_circuit);
    for seed in 0..6 {
        let run = |engine: EngineSpec| {
            let problem = SizingProblem::with_engine(
                circuit.clone(),
                VerificationMethod::CornerLocalMc,
                engine.build(),
            );
            let hint: Vec<usize> = (0..problem.config().corners.len()).collect();
            let mut rng = seeded(300 + seed);
            let outcome =
                glova::verification::Verifier::new(&problem, 4.0).verify(&x, &hint, None, &mut rng);
            (outcome, problem.simulations())
        };
        let (seq_outcome, seq_sims) = run(EngineSpec::Sequential);
        let (thr_outcome, thr_sims) = run(EngineSpec::Threaded(4));
        assert_eq!(seq_outcome, thr_outcome, "seed {seed}");
        assert_eq!(seq_sims, thr_sims, "seed {seed}");
    }
}

#[test]
fn yield_estimates_identical_across_engines() {
    let circuit = sal();
    let x = vec![0.5; circuit.dim()];
    let estimate = |engine: EngineSpec| {
        let problem = SizingProblem::with_engine(
            circuit.clone(),
            VerificationMethod::CornerLocalMc,
            engine.build(),
        );
        let mut rng = seeded(77);
        estimate_yield(&problem, &x, 40, 0.95, &mut rng)
    };
    let seq = estimate(EngineSpec::Sequential);
    let thr = estimate(EngineSpec::Threaded(6));
    assert_eq!(seq, thr);
    assert_eq!(seq.yield_point.to_bits(), thr.yield_point.to_bits());
}

#[test]
fn simulation_counter_is_exact_under_concurrency() {
    // Hammer the AtomicU64 counter from many worker threads: every
    // simulate() call must be counted exactly once.
    let circuit = toy();
    let problem = Arc::new(SizingProblem::with_engine(
        circuit.clone(),
        VerificationMethod::CornerLocalMc,
        Arc::new(Threaded::new(8)),
    ));
    let x = vec![0.5; circuit.dim()];
    let mut rng = seeded(5);
    let n = 1000;
    let conditions = problem.sample_conditions_independent(&x, n, &mut rng);
    let (outcomes, _) = problem.simulate_conditions(&x, &PvtCorner::typical(), &conditions);
    assert_eq!(outcomes.len(), n);
    assert_eq!(problem.simulations(), n as u64);

    // And the raw engine primitive: concurrent increments never lost.
    let engine = Threaded::new(8);
    let counter = AtomicU64::new(0);
    engine.run(10_000, &|_| {
        counter.fetch_add(1, Ordering::Relaxed);
    });
    assert_eq!(counter.load(Ordering::Relaxed), 10_000);
}

#[test]
fn map_indexed_preserves_index_order() {
    let engine = Threaded::new(4);
    let out = map_indexed(&engine, 256, |i| i * i);
    assert_eq!(out, (0..256).map(|i| i * i).collect::<Vec<_>>());
}
