//! Size the DRAM-core OCSA + subhole testcase under the strictest
//! verification method (corner + global-local Monte Carlo) — the hardest
//! scenario of the paper's Table II.
//!
//! Run with:
//!
//! ```sh
//! cargo run --release -p glova --example dram_core_sizing
//! ```

use glova::prelude::*;
use std::sync::Arc;

fn main() {
    let circuit = Arc::new(glova_circuits::DramCoreSense::new());
    println!(
        "=== DRAM core (OCSA + SH) under C-MCG-L: {} parameters, targets dv0/dv1 >= 85 mV, E/bit <= 30 fJ ===",
        circuit.dim()
    );

    // The hardest Table-II cell: expect hundreds of iterations (the paper
    // reports 129 on its substrate; see EXPERIMENTS.md).
    let mut config = GlovaConfig::paper(VerificationMethod::CornerGlobalLocalMc);
    config.max_iterations = 1200;
    let mut optimizer = GlovaOptimizer::new(circuit.clone(), config);
    let result = optimizer.run(1);

    println!("{result}");
    match &result.final_design {
        Some(x) => {
            let phys = circuit.denormalize(x);
            println!("\nverified sizing (µm):");
            for (name, value) in circuit.parameter_names().iter().zip(&phys) {
                println!("  {name:<12} = {value:.4}");
            }
            println!(
                "\nconflicting-metric check at typical (dv0 vs dv1 trade through the latch trip point):"
            );
            let h =
                glova_variation::sampler::MismatchVector::nominal(circuit.mismatch_domain(x).dim());
            let metrics = circuit.evaluate(x, &glova_variation::corner::PvtCorner::typical(), &h);
            for (m, v) in circuit.spec().metrics().iter().zip(&metrics) {
                println!("  {:<10} = {v:.2}", m.name);
            }
        }
        None => println!("no verified design within the iteration budget — try more iterations"),
    }
}
