//! Size the floating inverter amplifier under corner + local Monte Carlo,
//! then characterize the verified design's metric distributions with a
//! larger MC run — the kind of sign-off sweep a designer would do next.
//!
//! Run with:
//!
//! ```sh
//! cargo run --release -p glova --example fia_monte_carlo
//! ```

use glova::prelude::*;
use glova_stats::descriptive::Summary;
use glova_variation::sampler::{MismatchSampler, VarianceLayers};
use std::sync::Arc;

fn main() {
    let circuit = Arc::new(glova_circuits::FloatingInverterAmp::new());
    println!("=== FIA under C-MC_L: energy <= 0.1 pJ, noise <= 130 mV ===");

    let mut config = GlovaConfig::paper(VerificationMethod::CornerLocalMc);
    config.max_iterations = 300;
    let mut optimizer = GlovaOptimizer::new(circuit.clone(), config);
    let result = optimizer.run(31);
    println!("{result}");

    let Some(x) = &result.final_design else {
        println!("no verified design found — increase max_iterations");
        return;
    };

    // Post-sign-off characterization: 2000 local-MC samples at the worst
    // corner family.
    let mut rng = glova_stats::rng::seeded(99);
    let sampler = MismatchSampler::new(circuit.mismatch_domain(x), VarianceLayers::LOCAL);
    let corner = glova_variation::corner::PvtCorner {
        process: glova_variation::corner::ProcessCorner::Ss,
        vdd: 0.8,
        temp_c: 80.0,
    };
    let conditions = sampler.sample_set(&mut rng, 2000);
    let mut energy = Vec::with_capacity(conditions.len());
    let mut noise = Vec::with_capacity(conditions.len());
    let mut failures = 0u32;
    for h in &conditions {
        let m = circuit.evaluate(x, &corner, h);
        if !circuit.spec().satisfied(&m) {
            failures += 1;
        }
        energy.push(m[0]);
        noise.push(m[1]);
    }
    println!("\n2000-sample local MC at {corner}:");
    println!("  energy_pj: {}", Summary::of(&energy));
    println!("  noise_mv : {}", Summary::of(&noise));
    println!("  failures : {failures} / {}", conditions.len());

    let mut hist = glova_stats::Histogram::new(
        noise.iter().cloned().fold(f64::INFINITY, f64::min),
        noise.iter().cloned().fold(f64::NEG_INFINITY, f64::max) + 1e-9,
        12,
    );
    hist.extend_from_slice(&noise);
    println!("\nnoise distribution (mV):\n{}", hist.render(40));
}
