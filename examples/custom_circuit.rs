//! Bring your own circuit: implement the [`Circuit`] trait for a custom
//! analog block and size it with GLOVA.
//!
//! The example models a two-stage RC-loaded amplifier with a
//! gain-bandwidth / power tradeoff — deliberately simple so the trait
//! surface stays in focus.
//!
//! Run with:
//!
//! ```sh
//! cargo run --release -p glova --example custom_circuit
//! ```

use glova::prelude::*;
use glova_circuits::{DesignSpec, MetricSpec};
use glova_variation::corner::PvtCorner;
use glova_variation::mismatch::{DeviceSpec, MismatchDomain, PelgromModel};
use glova_variation::sampler::MismatchVector;
use std::sync::Arc;

/// A toy two-stage amplifier: parameters are the two stage
/// transconductances (normalized) and a compensation cap.
#[derive(Debug)]
struct TwoStageAmp {
    spec: DesignSpec,
}

impl TwoStageAmp {
    fn new() -> Self {
        Self {
            spec: DesignSpec::new(vec![
                MetricSpec::above("gain_db", 60.0),
                MetricSpec::above("ugbw_mhz", 50.0),
                MetricSpec::below("power_uw", 260.0),
            ]),
        }
    }
}

impl Circuit for TwoStageAmp {
    fn name(&self) -> &str {
        "2STAGE"
    }

    fn dim(&self) -> usize {
        3
    }

    fn bounds(&self) -> Vec<(f64, f64)> {
        vec![(0.1, 10.0), (0.1, 10.0), (0.1, 5.0)] // gm1 mS, gm2 mS, Cc pF
    }

    fn parameter_names(&self) -> Vec<String> {
        vec!["gm1_ms".into(), "gm2_ms".into(), "cc_pf".into()]
    }

    fn spec(&self) -> &DesignSpec {
        &self.spec
    }

    fn mismatch_domain(&self, x_norm: &[f64]) -> MismatchDomain {
        // Scale device area with transconductance: bigger gm = bigger
        // devices = better matching.
        let p = self.denormalize(x_norm);
        MismatchDomain::new(
            vec![
                DeviceSpec::nmos("gm1", p[0], 0.1),
                DeviceSpec::nmos("gm1b", p[0], 0.1),
                DeviceSpec::pmos("gm2", p[1] * 2.0, 0.1),
            ],
            PelgromModel::cmos28(),
        )
    }

    fn evaluate(&self, x_norm: &[f64], corner: &PvtCorner, h: &MismatchVector) -> Vec<f64> {
        let p = self.denormalize(x_norm);
        let (gm1, gm2, cc) = (p[0] * 1e-3, p[1] * 1e-3, p[2] * 1e-12);
        // Corner effects: transconductance tracks process skew and supply.
        let skew = 1.0 + 0.08 * corner.process.nmos_skew();
        let supply = corner.vdd / 0.9;
        let beta_err = 1.0 + 0.5 * (h.values()[1] + h.values()[3]);
        let gm1_eff = gm1 * skew * supply * beta_err;
        let gm2_eff = gm2 * skew * supply;

        let ro = 150e3 / supply; // output resistance drops with supply
        let gain_db = 20.0 * (gm1_eff * ro * gm2_eff * ro).log10();
        let ugbw_mhz = gm1_eff / (2.0 * std::f64::consts::PI * cc) / 1e6;
        // Input-pair offset wastes headroom → modeled as a gain penalty.
        let offset_penalty = 50.0 * (h.values()[0] - h.values()[2]).abs();
        let power_uw = (gm1_eff + gm2_eff) * 0.3 * corner.vdd * 1e6;
        vec![gain_db - offset_penalty, ugbw_mhz, power_uw]
    }
}

fn main() {
    let circuit = Arc::new(TwoStageAmp::new());
    println!("=== custom circuit: {} ===", circuit.name());
    let mut config = GlovaConfig::paper(VerificationMethod::CornerLocalMc);
    config.max_iterations = 200;
    let mut optimizer = GlovaOptimizer::new(circuit.clone(), config);
    let result = optimizer.run(5);
    println!("{result}");
    if let Some(x) = &result.final_design {
        let phys = circuit.denormalize(x);
        for (name, v) in circuit.parameter_names().iter().zip(&phys) {
            println!("  {name:<8} = {v:.3}");
        }
    }
}
