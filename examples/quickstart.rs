//! Quickstart: size the StrongARM latch under corner verification.
//!
//! Run with:
//!
//! ```sh
//! cargo run --release -p glova --example quickstart
//! ```

use glova::prelude::*;
use std::sync::Arc;

fn main() {
    let circuit = Arc::new(glova_circuits::StrongArmLatch::new());
    let spec = circuit.spec().clone();
    let parameter_names = circuit.parameter_names();

    println!("=== GLOVA quickstart: {} ({} parameters) ===", circuit.name(), circuit.dim());
    println!("targets:");
    for m in spec.metrics() {
        println!(
            "  {:<14} {} {}",
            m.name,
            if m.goal == glova_circuits::Goal::Below { "<=" } else { ">=" },
            m.limit
        );
    }

    let config = GlovaConfig::paper(VerificationMethod::Corner);
    let mut optimizer = GlovaOptimizer::new(circuit.clone(), config);
    let result = optimizer.run(2025);

    println!("\n{result}");
    if let Some(x) = &result.final_design {
        let phys = circuit.denormalize(x);
        println!("\nverified sizing:");
        for (name, value) in parameter_names.iter().zip(&phys) {
            println!("  {name:<10} = {value:.4e}");
        }
        let h = glova_variation::sampler::MismatchVector::nominal(circuit.mismatch_domain(x).dim());
        let metrics = circuit.evaluate(x, &glova_variation::corner::PvtCorner::typical(), &h);
        println!("\ntypical-condition metrics:");
        for (m, v) in spec.metrics().iter().zip(&metrics) {
            println!("  {:<14} = {v:.3} (limit {})", m.name, m.limit);
        }
    }
}
