//! Reproduce the structure of the paper's Fig. 1: global (die-to-die) vs
//! local (within-die) variation on a wafer.
//!
//! Samples many dies with the hierarchical Eq.-3 sampler and shows that
//! die medians scatter with σ_Global while devices scatter around their
//! die median with σ_Local.
//!
//! Run with:
//!
//! ```sh
//! cargo run --release -p glova --example wafer_variation
//! ```

use glova_stats::descriptive::{mean, std_dev};
use glova_variation::mismatch::{DeviceSpec, MismatchDomain, PelgromModel};
use glova_variation::sampler::{MismatchSampler, VarianceLayers};

fn main() {
    // One representative NMOS device type, replicated across each die.
    let domain =
        MismatchDomain::new(vec![DeviceSpec::nmos("m", 1.0, 0.05)], PelgromModel::cmos28());
    let local_sigma = domain.local_sigmas()[0];
    let global_sigma = domain.model().global_vth_sigma;

    let sampler = MismatchSampler::new(domain, VarianceLayers::GLOBAL_LOCAL);
    let mut rng = glova_stats::rng::seeded(1);

    const DIES: usize = 24;
    const DEVICES_PER_DIE: usize = 400;
    let wafer = sampler.sample_wafer(&mut rng, DIES, DEVICES_PER_DIE);

    println!("=== wafer variation structure (Fig. 1): ΔV_th of a 1.0×0.05 µm NMOS ===\n");
    println!(
        "model: σ_Global = {:.1} mV, σ_Local = {:.1} mV\n",
        global_sigma * 1e3,
        local_sigma * 1e3
    );
    println!("{:>4} {:>12} {:>12}", "die", "median (mV)", "spread (mV)");

    let mut die_medians = Vec::with_capacity(DIES);
    for (d, die) in wafer.iter().enumerate() {
        let vths: Vec<f64> = die.iter().map(|h| h.values()[0] * 1e3).collect();
        let median = glova_stats::descriptive::quantile(&vths, 0.5);
        let spread = std_dev(&vths);
        die_medians.push(median);
        if d < 8 {
            println!("{d:>4} {median:>12.2} {spread:>12.2}");
        }
    }
    println!("  ... ({} dies total)\n", DIES);

    let measured_global = std_dev(&die_medians);
    let within: Vec<f64> = wafer
        .iter()
        .zip(&die_medians)
        .flat_map(|(die, &median)| die.iter().map(move |h| h.values()[0] * 1e3 - median))
        .collect();
    let measured_local = std_dev(&within);

    println!(
        "die-to-die σ of medians : {measured_global:.2} mV (model σ_Global = {:.2} mV)",
        global_sigma * 1e3
    );
    println!(
        "within-die σ            : {measured_local:.2} mV (model σ_Local  = {:.2} mV)",
        local_sigma * 1e3
    );
    println!("grand mean              : {:.3} mV (expected ≈ 0)", mean(&die_medians));

    // ASCII wafer picture: each die's median as a deviation bar.
    println!("\ndie medians across the wafer (each row = one die):");
    for (d, &median) in die_medians.iter().enumerate() {
        let offset = (median / (2.0 * global_sigma * 1e3) * 20.0).round() as i64;
        let pos = (20 + offset).clamp(0, 40) as usize;
        let mut row = [' '; 41];
        row[20] = '|';
        row[pos] = '#';
        println!("  die {d:>2} {}", row.iter().collect::<String>());
    }
}
