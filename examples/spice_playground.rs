//! Drive the MNA SPICE engine directly: DC sweeps and transients of a
//! CMOS inverter across PVT corners.
//!
//! Run with:
//!
//! ```sh
//! cargo run --release -p glova --example spice_playground
//! ```

use glova_spice::analysis::{crossing_time, Edge};
use glova_spice::model::MosModel;
use glova_spice::netlist::{Netlist, SourceWaveform, GROUND};
use glova_spice::transient::{transient, TransientSpec};
use glova_variation::corner::{CornerSet, ProcessCorner, PvtCorner};

fn inverter(corner: &PvtCorner, vin_value: f64) -> (Netlist, glova_spice::netlist::NodeId) {
    let mut nl = Netlist::new();
    let vdd = nl.node("vdd");
    let vin = nl.node("vin");
    let out = nl.node("out");
    nl.vsource("VDD", vdd, GROUND, corner.vdd);
    nl.vsource("VIN", vin, GROUND, vin_value);
    nl.mosfet("MP", out, vin, vdd, MosModel::pmos_28nm().at_corner(corner), 2.0, 0.05);
    nl.mosfet("MN", out, vin, GROUND, MosModel::nmos_28nm().at_corner(corner), 1.0, 0.05);
    (nl, out)
}

fn main() {
    println!("=== CMOS inverter VTC at the typical corner ===");
    let typical = PvtCorner::typical();
    println!("{:>8} {:>10}", "vin (V)", "vout (V)");
    for i in 0..=10 {
        let vin = typical.vdd * i as f64 / 10.0;
        let (nl, out) = inverter(&typical, vin);
        let op = glova_spice::dc::operating_point(&nl).expect("dc converges");
        println!("{vin:>8.2} {:>10.4}", op.voltage(out));
    }

    println!("\n=== propagation delay across process corners (falling output) ===");
    for process in [ProcessCorner::Ss, ProcessCorner::Tt, ProcessCorner::Ff] {
        let corner = PvtCorner { process, ..typical };
        let mut nl = Netlist::new();
        let vdd = nl.node("vdd");
        let vin = nl.node("vin");
        let out = nl.node("out");
        nl.vsource("VDD", vdd, GROUND, corner.vdd);
        nl.vsource_waveform(
            "VIN",
            vin,
            GROUND,
            SourceWaveform::Pulse {
                low: 0.0,
                high: corner.vdd,
                delay: 0.2e-9,
                rise: 20e-12,
                fall: 20e-12,
                width: 3e-9,
            },
        );
        nl.mosfet("MP", out, vin, vdd, MosModel::pmos_28nm().at_corner(&corner), 2.0, 0.05);
        nl.mosfet("MN", out, vin, GROUND, MosModel::nmos_28nm().at_corner(&corner), 1.0, 0.05);
        nl.capacitor("CL", out, GROUND, 5e-15);
        let result = transient(&nl, &TransientSpec::new(5e-12, 2e-9)).expect("transient runs");
        let t_in = crossing_time(
            result.times(),
            &result.voltage_waveform(vin),
            corner.vdd / 2.0,
            Edge::Rising,
        )
        .expect("input crosses");
        let t_out = crossing_time(
            result.times(),
            &result.voltage_waveform(out),
            corner.vdd / 2.0,
            Edge::Falling,
        )
        .expect("output crosses");
        println!("  {process}: tpHL = {:.1} ps", (t_out - t_in) * 1e12);
    }

    println!("\n=== supply sensitivity across the 6 VT corners ===");
    for corner in CornerSet::vt_6().iter() {
        let (nl, out) = inverter(corner, corner.vdd / 2.0);
        let op = glova_spice::dc::operating_point(&nl).expect("dc converges");
        println!("  {corner}: V(out) at V_DD/2 input = {:.3} V", op.voltage(out));
    }

    println!("\n=== AC response of a common-source stage ===");
    let mut nl = Netlist::new();
    let vdd = nl.node("vdd");
    let vin = nl.node("in");
    let out = nl.node("out");
    nl.vsource("VDD", vdd, GROUND, 0.9);
    nl.vsource("VIN", vin, GROUND, 0.5);
    nl.resistor("RL", vdd, out, 20e3);
    nl.mosfet("M1", out, vin, GROUND, MosModel::nmos_28nm(), 2.0, 0.2);
    nl.capacitor("CL", out, GROUND, 0.5e-12);
    let freqs = glova_spice::log_sweep(1e4, 1e10, 4);
    let ac = glova_spice::ac_sweep(&nl, "VIN", &freqs).expect("ac solves");
    println!("{:>12} {:>10} {:>10}", "freq (Hz)", "gain (dB)", "phase (deg)");
    for (i, &f) in ac.frequencies().iter().enumerate().step_by(4) {
        let v = ac.voltage(out, i);
        println!("{f:>12.3e} {:>10.2} {:>10.1}", 20.0 * v.abs().log10(), v.arg().to_degrees());
    }
    if let Some(bw) = ac.bandwidth_3db(out) {
        println!("  -3 dB bandwidth: {bw:.3e} Hz");
    }
}
