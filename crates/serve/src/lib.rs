//! # glova-serve — sizing as a service
//!
//! A long-running process answering sizing requests needs more than the
//! one-shot [`SizingCampaign`] API: requests arrive concurrently, each
//! with its own circuit / verification method / goal, and clients want
//! to watch progress while a campaign is still running. This crate is
//! that serving layer, built entirely on `std` (no async runtime, no
//! network — the transport is whatever embeds the server):
//!
//! - [`CampaignServer`] — a fixed fleet of worker threads multiplexing
//!   any number of queued [`SizingRequest`]s; submission returns a
//!   [`JobId`] immediately.
//! - [`JobSnapshot`] — a pollable point-in-time view of one job: its
//!   [`JobStatus`], every [`CampaignStep`] completed so far (streamed by
//!   the campaign's step observer the moment each step finishes), and
//!   the final [`CampaignResult`] once done.
//! - Process-wide sharing: circuits resolve their solver pools through a
//!   [`SolverRegistry`] and their evaluation caches through a
//!   [`CacheRegistry`], so N concurrent campaigns on one topology pay
//!   **one** symbolic prime (instead of N) and answer each other's
//!   repeated evaluation points.
//!
//! # Determinism
//!
//! A campaign's trajectory is bitwise identical whether it runs alone or
//! beside K concurrent campaigns, on any worker-fleet size. The chain of
//! custody: every evaluation is a pure function of
//! `(design, corner, mismatch)`; registry-shared solver pools clone one
//! canonical primed prototype and retire non-canonical solvers (see
//! [`SolverRegistry`]); shared cache hits return bitwise-identical
//! `SimOutcome`s keyed by the full identity of the evaluation semantics
//! (see [`CacheRegistry`]); and each campaign draws from its own
//! seed-derived RNG streams, never from shared state. Which worker runs
//! a job — and what runs beside it — is therefore unobservable in the
//! results. `tests/serve_concurrency.rs` is the battery that locks this
//! in.
//!
//! # Quickstart
//!
//! ```
//! use glova::prelude::*;
//! use glova_serve::{CampaignServer, CircuitSpec, SizingRequest};
//!
//! let server = CampaignServer::new(2);
//! let request = SizingRequest::new(
//!     CircuitSpec::InverterChain { stages: 2 },
//!     CampaignConfig::quick(VerificationMethod::Corner).with_max_steps(5),
//!     42,
//! );
//! let id = server.submit(request).unwrap();
//! let snapshot = server.wait(id).unwrap();
//! assert!(snapshot.status.is_terminal());
//! let report = server.shutdown();
//! assert_eq!(report.jobs_completed, 1);
//! ```

use glova::cache::CacheRegistry;
use glova::campaign::{CampaignConfig, CampaignResult, CampaignStep, SizingCampaign};
use glova_circuits::{Circuit, SpiceInverterChain, SpiceOta, SpiceSenseAmpArray};
use glova_spice::registry::SolverRegistry;
use std::collections::{HashMap, VecDeque};
use std::fmt;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;

/// Which circuit a request sizes — the serving-layer catalogue of the
/// SPICE-backed testcases (each resolves its solver pool through the
/// server's [`SolverRegistry`], so topology-sharing requests share one
/// primed symbolic analysis).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CircuitSpec {
    /// [`SpiceInverterChain`] with the given stage count (`stages ≥ 2`).
    InverterChain {
        /// Number of inverter stages.
        stages: usize,
    },
    /// The two-stage [`SpiceOta`].
    Ota,
    /// [`SpiceSenseAmpArray`] with the given shape (both sides `> 0`).
    SenseAmpArray {
        /// Word lines.
        rows: usize,
        /// Bit-line columns.
        cols: usize,
    },
}

impl CircuitSpec {
    /// Rejects shapes the circuit constructors would panic on.
    fn validate(&self) -> Result<(), ServeError> {
        match *self {
            CircuitSpec::InverterChain { stages } if stages < 2 => Err(ServeError::InvalidRequest(
                format!("inverter chain needs at least 2 stages, got {stages}"),
            )),
            CircuitSpec::SenseAmpArray { rows, cols } if rows == 0 || cols == 0 => {
                Err(ServeError::InvalidRequest(format!(
                    "sense-amp array needs a non-empty shape, got {rows}×{cols}"
                )))
            }
            _ => Ok(()),
        }
    }

    /// Builds the circuit on a registry-shared pool, returning it with
    /// its topology fingerprint (one of the cache identity words).
    fn build(&self, solvers: &SolverRegistry) -> (Arc<dyn Circuit>, u64) {
        match *self {
            CircuitSpec::InverterChain { stages } => {
                let c = SpiceInverterChain::from_registry(stages, solvers);
                let fp = c.topology_fingerprint();
                (Arc::new(c), fp)
            }
            CircuitSpec::Ota => {
                let c = SpiceOta::from_registry(solvers);
                let fp = c.topology_fingerprint();
                (Arc::new(c), fp)
            }
            CircuitSpec::SenseAmpArray { rows, cols } => {
                let c = SpiceSenseAmpArray::from_registry(rows, cols, solvers);
                let fp = c.topology_fingerprint();
                (Arc::new(c), fp)
            }
        }
    }

    /// The identity words a shared evaluation cache is keyed by.
    ///
    /// Cached `SimOutcome`s bake in the circuit's metric extraction and
    /// base-spec reward, so the identity must pin everything those
    /// depend on: the catalogue variant, its shape parameters (which fix
    /// the spec thresholds), and the evaluated topology. Verification
    /// method, engine, and goal factors deliberately do **not**
    /// participate — they select *which* points are evaluated (and goal
    /// rewards are re-derived from cached raw metrics), so requests
    /// differing only in those share one cache. That sharing is the
    /// serving win.
    fn cache_identity(&self, fingerprint: u64) -> Vec<u64> {
        match *self {
            CircuitSpec::InverterChain { stages } => vec![1, stages as u64, fingerprint],
            CircuitSpec::Ota => vec![2, fingerprint],
            CircuitSpec::SenseAmpArray { rows, cols } => {
                vec![3, rows as u64, cols as u64, fingerprint]
            }
        }
    }
}

/// One sizing job: a circuit, a full campaign configuration (method,
/// engine, cache, pruning, goal factors, budgets — per request), and the
/// campaign seed.
#[derive(Debug, Clone)]
pub struct SizingRequest {
    /// Circuit to size.
    pub circuit: CircuitSpec,
    /// Campaign configuration. `config.cache` selects the shared-cache
    /// configuration this job resolves through the server's
    /// [`CacheRegistry`] (`None` runs uncached).
    pub config: CampaignConfig,
    /// Campaign seed — with the same `circuit` and `config`, the seed
    /// fully determines the trajectory, no matter what else the server
    /// is running.
    pub seed: u64,
}

impl SizingRequest {
    /// Bundles a request.
    pub fn new(circuit: CircuitSpec, config: CampaignConfig, seed: u64) -> Self {
        Self { circuit, config, seed }
    }
}

/// Serving-layer errors.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ServeError {
    /// The request can never run (bad circuit shape, empty config).
    InvalidRequest(String),
    /// No job with the given id was ever submitted to this server.
    UnknownJob(JobId),
    /// The server is shutting down and no longer accepts submissions.
    ShuttingDown,
}

impl fmt::Display for ServeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ServeError::InvalidRequest(why) => write!(f, "invalid sizing request: {why}"),
            ServeError::UnknownJob(id) => write!(f, "unknown job {id:?}"),
            ServeError::ShuttingDown => write!(f, "server is shutting down"),
        }
    }
}

impl std::error::Error for ServeError {}

/// Opaque handle to a submitted job (process-unique per server).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct JobId(u64);

/// Lifecycle of a job.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum JobStatus {
    /// Accepted, waiting for a worker.
    Queued,
    /// A worker is running the campaign.
    Running,
    /// The campaign finished; the snapshot carries its result.
    Done,
    /// The campaign panicked; the snapshot carries the panic message.
    /// The worker survives — one poisoned request cannot take down the
    /// fleet.
    Failed,
}

impl JobStatus {
    /// Whether the job has finished (successfully or not).
    pub fn is_terminal(self) -> bool {
        matches!(self, JobStatus::Done | JobStatus::Failed)
    }
}

/// Point-in-time view of one job, cheap to poll while it runs.
#[derive(Debug, Clone)]
pub struct JobSnapshot {
    /// The job this snapshot describes.
    pub id: JobId,
    /// Lifecycle state at snapshot time.
    pub status: JobStatus,
    /// Every campaign step completed so far, streamed in step order the
    /// moment each completes (the full trajectory once `Done`).
    pub steps: Vec<CampaignStep>,
    /// The campaign result (populated once `Done`).
    pub result: Option<CampaignResult>,
    /// The panic message (populated once `Failed`).
    pub error: Option<String>,
}

/// Final tally returned by [`CampaignServer::shutdown`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ShutdownReport {
    /// Jobs that reached [`JobStatus::Done`].
    pub jobs_completed: u64,
    /// Jobs that reached [`JobStatus::Failed`].
    pub jobs_failed: u64,
}

#[derive(Debug)]
struct JobState {
    status: JobStatus,
    steps: Vec<CampaignStep>,
    result: Option<CampaignResult>,
    error: Option<String>,
}

#[derive(Debug)]
struct Job {
    id: JobId,
    request: SizingRequest,
    state: Mutex<JobState>,
    /// Signalled when the job reaches a terminal status.
    done: Condvar,
}

impl Job {
    fn snapshot(&self) -> JobSnapshot {
        let state = self.state.lock().expect("job state poisoned");
        JobSnapshot {
            id: self.id,
            status: state.status,
            steps: state.steps.clone(),
            result: state.result.clone(),
            error: state.error.clone(),
        }
    }
}

#[derive(Debug, Default)]
struct QueueState {
    pending: VecDeque<Arc<Job>>,
    shutting_down: bool,
}

#[derive(Debug)]
struct ServerShared {
    queue: Mutex<QueueState>,
    /// Signalled on submission and on shutdown.
    work_available: Condvar,
    jobs: Mutex<HashMap<JobId, Arc<Job>>>,
    solvers: Arc<SolverRegistry>,
    caches: Arc<CacheRegistry>,
}

/// A fixed worker fleet multiplexing queued sizing campaigns (see the
/// [crate docs](self)).
///
/// Dropping the server without calling [`shutdown`](Self::shutdown)
/// also drains the queue and joins the workers.
#[derive(Debug)]
pub struct CampaignServer {
    shared: Arc<ServerShared>,
    workers: Vec<JoinHandle<()>>,
    next_id: Mutex<u64>,
}

impl CampaignServer {
    /// Spawns a server with `workers` worker threads and its own (fresh)
    /// solver and cache registries.
    ///
    /// # Panics
    ///
    /// Panics if `workers == 0`.
    pub fn new(workers: usize) -> Self {
        Self::with_registries(
            workers,
            Arc::new(SolverRegistry::new()),
            Arc::new(CacheRegistry::new()),
        )
    }

    /// Spawns a server resolving solver pools and evaluation caches
    /// through the given registries — the hook for sharing registries
    /// across servers (or with non-served library code) and for
    /// inspecting registry counters in tests and benches.
    ///
    /// # Panics
    ///
    /// Panics if `workers == 0`.
    pub fn with_registries(
        workers: usize,
        solvers: Arc<SolverRegistry>,
        caches: Arc<CacheRegistry>,
    ) -> Self {
        assert!(workers > 0, "a server needs at least one worker");
        let shared = Arc::new(ServerShared {
            queue: Mutex::new(QueueState::default()),
            work_available: Condvar::new(),
            jobs: Mutex::new(HashMap::new()),
            solvers,
            caches,
        });
        let handles = (0..workers)
            .map(|i| {
                let shared = shared.clone();
                std::thread::Builder::new()
                    .name(format!("glova-serve-{i}"))
                    .spawn(move || worker_loop(&shared))
                    .expect("worker thread spawn")
            })
            .collect();
        Self { shared, workers: handles, next_id: Mutex::new(0) }
    }

    /// Number of worker threads.
    pub fn worker_count(&self) -> usize {
        self.workers.len()
    }

    /// The solver registry this server resolves pools through.
    pub fn solver_registry(&self) -> &SolverRegistry {
        &self.shared.solvers
    }

    /// The cache registry this server resolves evaluation caches
    /// through.
    pub fn cache_registry(&self) -> &CacheRegistry {
        &self.shared.caches
    }

    /// Validates and enqueues a request, returning its job id
    /// immediately.
    ///
    /// # Errors
    ///
    /// [`ServeError::InvalidRequest`] for shapes the circuit
    /// constructors reject or an empty seeding phase;
    /// [`ServeError::ShuttingDown`] after [`shutdown`](Self::shutdown)
    /// has begun.
    pub fn submit(&self, request: SizingRequest) -> Result<JobId, ServeError> {
        request.circuit.validate()?;
        if request.config.init_designs == 0 {
            return Err(ServeError::InvalidRequest("init_designs must be positive".into()));
        }
        let id = {
            let mut next = self.next_id.lock().expect("id counter poisoned");
            *next += 1;
            JobId(*next)
        };
        let job = Arc::new(Job {
            id,
            request,
            state: Mutex::new(JobState {
                status: JobStatus::Queued,
                steps: Vec::new(),
                result: None,
                error: None,
            }),
            done: Condvar::new(),
        });
        {
            let mut queue = self.shared.queue.lock().expect("queue poisoned");
            if queue.shutting_down {
                return Err(ServeError::ShuttingDown);
            }
            queue.pending.push_back(job.clone());
        }
        self.shared.jobs.lock().expect("job table poisoned").insert(id, job);
        self.shared.work_available.notify_one();
        Ok(id)
    }

    /// A point-in-time view of the job (non-blocking).
    ///
    /// # Errors
    ///
    /// [`ServeError::UnknownJob`] if the id was never issued.
    pub fn snapshot(&self, id: JobId) -> Result<JobSnapshot, ServeError> {
        Ok(self.job(id)?.snapshot())
    }

    /// Blocks until the job reaches a terminal status, returning its
    /// final snapshot.
    ///
    /// # Errors
    ///
    /// [`ServeError::UnknownJob`] if the id was never issued.
    pub fn wait(&self, id: JobId) -> Result<JobSnapshot, ServeError> {
        let job = self.job(id)?;
        let mut state = job.state.lock().expect("job state poisoned");
        while !state.status.is_terminal() {
            state = job.done.wait(state).expect("job state poisoned");
        }
        drop(state);
        Ok(job.snapshot())
    }

    /// Graceful shutdown: stops accepting submissions, drains every
    /// queued job, joins the workers, and tallies the outcomes.
    pub fn shutdown(mut self) -> ShutdownReport {
        self.begin_shutdown();
        for handle in self.workers.drain(..) {
            let _ = handle.join();
        }
        let jobs = self.shared.jobs.lock().expect("job table poisoned");
        let mut report = ShutdownReport { jobs_completed: 0, jobs_failed: 0 };
        for job in jobs.values() {
            match job.state.lock().expect("job state poisoned").status {
                JobStatus::Done => report.jobs_completed += 1,
                JobStatus::Failed => report.jobs_failed += 1,
                JobStatus::Queued | JobStatus::Running => {
                    unreachable!("drained shutdown left a live job")
                }
            }
        }
        report
    }

    fn begin_shutdown(&self) {
        self.shared.queue.lock().expect("queue poisoned").shutting_down = true;
        self.shared.work_available.notify_all();
    }

    fn job(&self, id: JobId) -> Result<Arc<Job>, ServeError> {
        self.shared
            .jobs
            .lock()
            .expect("job table poisoned")
            .get(&id)
            .cloned()
            .ok_or(ServeError::UnknownJob(id))
    }
}

impl Drop for CampaignServer {
    fn drop(&mut self) {
        self.begin_shutdown();
        for handle in self.workers.drain(..) {
            let _ = handle.join();
        }
    }
}

fn worker_loop(shared: &ServerShared) {
    loop {
        let job = {
            let mut queue = shared.queue.lock().expect("queue poisoned");
            loop {
                if let Some(job) = queue.pending.pop_front() {
                    break job;
                }
                if queue.shutting_down {
                    return;
                }
                queue = shared.work_available.wait(queue).expect("queue poisoned");
            }
        };
        run_job(shared, &job);
    }
}

fn run_job(shared: &ServerShared, job: &Job) {
    job.state.lock().expect("job state poisoned").status = JobStatus::Running;
    // A panicking campaign (solver assertion, config mismatch the cheap
    // validation missed) fails its own job, never the fleet.
    let outcome = catch_unwind(AssertUnwindSafe(|| execute(shared, job)));
    let mut state = job.state.lock().expect("job state poisoned");
    match outcome {
        Ok(result) => {
            state.result = Some(result);
            state.status = JobStatus::Done;
        }
        Err(payload) => {
            state.error = Some(panic_message(payload.as_ref()));
            state.status = JobStatus::Failed;
        }
    }
    drop(state);
    job.done.notify_all();
}

fn execute(shared: &ServerShared, job: &Job) -> CampaignResult {
    let request = &job.request;
    let (circuit, fingerprint) = request.circuit.build(&shared.solvers);
    let campaign = match request.config.cache {
        Some(cache_config) => {
            let identity = request.circuit.cache_identity(fingerprint);
            let cache = shared.caches.cache_for(&identity, cache_config);
            SizingCampaign::with_shared_cache(circuit, request.config.clone(), cache)
        }
        None => SizingCampaign::new(circuit, request.config.clone()),
    };
    campaign.run_with(request.seed, &mut |step| {
        job.state.lock().expect("job state poisoned").steps.push(step.clone());
    })
}

fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "campaign panicked".to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use glova_variation::config::VerificationMethod;

    fn quick_request(seed: u64) -> SizingRequest {
        SizingRequest::new(
            CircuitSpec::InverterChain { stages: 2 },
            CampaignConfig::quick(VerificationMethod::Corner)
                .with_max_steps(4)
                .with_cache(glova::cache::EvalCacheConfig::default()),
            seed,
        )
    }

    #[test]
    fn submit_poll_wait_roundtrip() {
        let server = CampaignServer::new(2);
        let id = server.submit(quick_request(42)).unwrap();
        // Snapshots are valid at any point in the lifecycle.
        let early = server.snapshot(id).unwrap();
        assert!(matches!(early.status, JobStatus::Queued | JobStatus::Running | JobStatus::Done));
        let done = server.wait(id).unwrap();
        assert_eq!(done.status, JobStatus::Done);
        let result = done.result.expect("done job carries its result");
        assert_eq!(done.steps, result.steps, "streamed steps are the trajectory");
        let report = server.shutdown();
        assert_eq!(report, ShutdownReport { jobs_completed: 1, jobs_failed: 0 });
    }

    #[test]
    fn invalid_shapes_are_rejected_at_submission() {
        let server = CampaignServer::new(1);
        let bad_chain = SizingRequest::new(
            CircuitSpec::InverterChain { stages: 1 },
            CampaignConfig::quick(VerificationMethod::Corner),
            1,
        );
        assert!(matches!(server.submit(bad_chain), Err(ServeError::InvalidRequest(_))));
        let bad_array = SizingRequest::new(
            CircuitSpec::SenseAmpArray { rows: 0, cols: 4 },
            CampaignConfig::quick(VerificationMethod::Corner),
            1,
        );
        assert!(matches!(server.submit(bad_array), Err(ServeError::InvalidRequest(_))));
        let mut empty_init = quick_request(1);
        empty_init.config.init_designs = 0;
        assert!(matches!(server.submit(empty_init), Err(ServeError::InvalidRequest(_))));
    }

    #[test]
    fn unknown_job_is_an_error() {
        let server = CampaignServer::new(1);
        let bogus = JobId(999);
        match server.snapshot(bogus) {
            Err(ServeError::UnknownJob(id)) => assert_eq!(id, bogus),
            other => panic!("expected UnknownJob, got {other:?}"),
        }
        match server.wait(bogus) {
            Err(ServeError::UnknownJob(id)) => assert_eq!(id, bogus),
            other => panic!("expected UnknownJob, got {other:?}"),
        }
    }

    #[test]
    fn panicking_job_fails_without_killing_the_fleet() {
        let server = CampaignServer::new(1);
        // A goal-factor count that does not match the 3-metric spec
        // passes the cheap submission validation but panics inside the
        // campaign constructor — the worker must absorb it.
        let mut poisoned = quick_request(7);
        poisoned.config.goal_factors = Some(vec![1.0]);
        let bad = server.submit(poisoned).unwrap();
        let failed = server.wait(bad).unwrap();
        assert_eq!(failed.status, JobStatus::Failed);
        assert!(failed.error.is_some());
        // The same (sole) worker then serves a healthy job.
        let good = server.submit(quick_request(42)).unwrap();
        assert_eq!(server.wait(good).unwrap().status, JobStatus::Done);
        let report = server.shutdown();
        assert_eq!(report, ShutdownReport { jobs_completed: 1, jobs_failed: 1 });
    }

    #[test]
    fn shutdown_drains_queued_jobs_and_blocks_new_ones() {
        // One worker, several jobs: shutdown must finish them all.
        let server = CampaignServer::new(1);
        let ids: Vec<_> = (0..3).map(|s| server.submit(quick_request(s)).unwrap()).collect();
        let shared = server.shared.clone();
        let report = server.shutdown();
        assert_eq!(report.jobs_completed, 3);
        assert_eq!(report.jobs_failed, 0);
        let jobs = shared.jobs.lock().unwrap();
        for id in ids {
            assert_eq!(jobs[&id].state.lock().unwrap().status, JobStatus::Done);
        }
    }

    #[test]
    fn concurrent_same_topology_jobs_share_one_prime_and_one_cache() {
        let solvers = Arc::new(SolverRegistry::new());
        let caches = Arc::new(CacheRegistry::new());
        let server = CampaignServer::with_registries(4, solvers.clone(), caches.clone());
        let ids: Vec<_> = (0..4).map(|s| server.submit(quick_request(100 + s)).unwrap()).collect();
        for id in ids {
            assert_eq!(server.wait(id).unwrap().status, JobStatus::Done);
        }
        assert_eq!(solvers.primes(), 1, "four same-topology jobs share one symbolic prime");
        assert_eq!(solvers.hits(), 3);
        assert_eq!(caches.len(), 1, "one shared cache for one circuit identity");
        drop(server);
    }
}
