//! # glova-serve — sizing as a service
//!
//! A long-running process answering sizing requests needs more than the
//! one-shot [`SizingCampaign`] API: requests arrive concurrently, each
//! with its own circuit / verification method / goal, and clients want
//! to watch progress while a campaign is still running. This crate is
//! that serving layer, built entirely on `std` (no async runtime, no
//! network — the transport is whatever embeds the server):
//!
//! - [`CampaignServer`] — a fixed fleet of worker threads multiplexing
//!   any number of queued [`SizingRequest`]s; submission returns a
//!   [`JobId`] immediately.
//! - [`JobSnapshot`] — a pollable point-in-time view of one job: its
//!   [`JobStatus`], every [`CampaignStep`] completed so far (streamed by
//!   the campaign's step observer the moment each step finishes), and
//!   the final [`CampaignResult`] once done.
//! - Process-wide sharing: circuits resolve their solver pools through a
//!   [`SolverRegistry`] and their evaluation caches through a
//!   [`CacheRegistry`], so N concurrent campaigns on one topology pay
//!   **one** symbolic prime (instead of N) and answer each other's
//!   repeated evaluation points.
//!
//! # Determinism
//!
//! A campaign's trajectory is bitwise identical whether it runs alone or
//! beside K concurrent campaigns, on any worker-fleet size. The chain of
//! custody: every evaluation is a pure function of
//! `(design, corner, mismatch)`; registry-shared solver pools clone one
//! canonical primed prototype and retire non-canonical solvers (see
//! [`SolverRegistry`]); shared cache hits return bitwise-identical
//! `SimOutcome`s keyed by the full identity of the evaluation semantics
//! (see [`CacheRegistry`]); and each campaign draws from its own
//! seed-derived RNG streams, never from shared state. Which worker runs
//! a job — and what runs beside it — is therefore unobservable in the
//! results. `tests/serve_concurrency.rs` is the battery that locks this
//! in.
//!
//! # Quickstart
//!
//! ```
//! use glova::prelude::*;
//! use glova_serve::{CampaignServer, CircuitSpec, JobBudget, SizingRequest};
//!
//! let server = CampaignServer::new(2);
//! // A budgeted submit: the campaign stops cooperatively before it
//! // would exceed 4000 simulations, keeping its partial trajectory.
//! let request = SizingRequest::new(
//!     CircuitSpec::InverterChain { stages: 2 },
//!     CampaignConfig::quick(VerificationMethod::Corner).with_max_steps(5),
//!     42,
//! )
//! .with_budget(JobBudget::unlimited().with_max_sims(4000));
//! let id = server.submit(request).unwrap();
//! let snapshot = server.wait(id).unwrap();
//! assert!(snapshot.status.is_terminal());
//! let result = snapshot.result.expect("budgeted jobs keep their result");
//! assert!(result.total_sims <= 4000);
//! let report = server.shutdown();
//! assert_eq!(report.jobs_completed + report.jobs_budget_exhausted, 1);
//! ```

use glova::cache::CacheRegistry;
use glova::campaign::{
    CampaignConfig, CampaignControl, CampaignResult, CampaignStep, CampaignTermination,
    SizingCampaign,
};
use glova::fault::FaultPlan;
use glova_circuits::{Circuit, SpiceInverterChain, SpiceOta, SpiceSenseAmpArray};
use glova_spice::registry::SolverRegistry;
use std::collections::{HashMap, VecDeque};
use std::fmt;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Which circuit a request sizes — the serving-layer catalogue of the
/// SPICE-backed testcases (each resolves its solver pool through the
/// server's [`SolverRegistry`], so topology-sharing requests share one
/// primed symbolic analysis).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CircuitSpec {
    /// [`SpiceInverterChain`] with the given stage count (`stages ≥ 2`).
    InverterChain {
        /// Number of inverter stages.
        stages: usize,
    },
    /// The two-stage [`SpiceOta`].
    Ota,
    /// [`SpiceSenseAmpArray`] with the given shape (both sides `> 0`).
    SenseAmpArray {
        /// Word lines.
        rows: usize,
        /// Bit-line columns.
        cols: usize,
    },
}

impl CircuitSpec {
    /// Rejects shapes the circuit constructors would panic on.
    fn validate(&self) -> Result<(), ServeError> {
        match *self {
            CircuitSpec::InverterChain { stages } if stages < 2 => Err(ServeError::InvalidRequest(
                format!("inverter chain needs at least 2 stages, got {stages}"),
            )),
            CircuitSpec::SenseAmpArray { rows, cols } if rows == 0 || cols == 0 => {
                Err(ServeError::InvalidRequest(format!(
                    "sense-amp array needs a non-empty shape, got {rows}×{cols}"
                )))
            }
            _ => Ok(()),
        }
    }

    /// Builds the circuit on a registry-shared pool, returning it with
    /// its topology fingerprint (one of the cache identity words).
    fn build(&self, solvers: &SolverRegistry) -> (Arc<dyn Circuit>, u64) {
        match *self {
            CircuitSpec::InverterChain { stages } => {
                let c = SpiceInverterChain::from_registry(stages, solvers);
                let fp = c.topology_fingerprint();
                (Arc::new(c), fp)
            }
            CircuitSpec::Ota => {
                let c = SpiceOta::from_registry(solvers);
                let fp = c.topology_fingerprint();
                (Arc::new(c), fp)
            }
            CircuitSpec::SenseAmpArray { rows, cols } => {
                let c = SpiceSenseAmpArray::from_registry(rows, cols, solvers);
                let fp = c.topology_fingerprint();
                (Arc::new(c), fp)
            }
        }
    }

    /// The identity words a shared evaluation cache is keyed by.
    ///
    /// Cached `SimOutcome`s bake in the circuit's metric extraction and
    /// base-spec reward, so the identity must pin everything those
    /// depend on: the catalogue variant, its shape parameters (which fix
    /// the spec thresholds), and the evaluated topology. Verification
    /// method, engine, and goal factors deliberately do **not**
    /// participate — they select *which* points are evaluated (and goal
    /// rewards are re-derived from cached raw metrics), so requests
    /// differing only in those share one cache. That sharing is the
    /// serving win.
    fn cache_identity(&self, fingerprint: u64) -> Vec<u64> {
        match *self {
            CircuitSpec::InverterChain { stages } => vec![1, stages as u64, fingerprint],
            CircuitSpec::Ota => vec![2, fingerprint],
            CircuitSpec::SenseAmpArray { rows, cols } => {
                vec![3, rows as u64, cols as u64, fingerprint]
            }
        }
    }
}

/// Scheduling class of a job. Workers always pop the interactive queue
/// first, so an interactive probe submitted behind a long batch backlog
/// overtakes every queued batch job (it never preempts one already
/// running — priorities order the queue, they don't interrupt work).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub enum JobPriority {
    /// Latency-sensitive probes: popped before any queued batch job.
    Interactive,
    /// Throughput work (family sweeps, parameter studies) — the default.
    #[default]
    Batch,
}

/// Per-job resource budget, enforced cooperatively by the campaign loop
/// (checked before every simulation dispatch, so `max_sims` is **exact**:
/// a budgeted job never runs a simulation past the cap).
///
/// A budget violation terminates the job with
/// [`JobStatus::BudgetExhausted`]; everything computed up to that point —
/// trajectory steps, incumbent design, accounting — is preserved in the
/// snapshot's partial [`CampaignResult`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct JobBudget {
    /// Hard cap on simulations. `None` = unlimited.
    pub max_sims: Option<u64>,
    /// Wall-clock allowance measured from the moment the job **starts
    /// running** (queue time excluded). `None` = unlimited.
    pub max_wall: Option<Duration>,
    /// Absolute deadline (queue time included). `None` = no deadline.
    pub deadline: Option<Instant>,
}

impl JobBudget {
    /// No limits (the default).
    pub fn unlimited() -> Self {
        Self::default()
    }

    /// Caps total simulations (builder style).
    pub fn with_max_sims(mut self, max_sims: u64) -> Self {
        self.max_sims = Some(max_sims);
        self
    }

    /// Caps running wall time (builder style).
    pub fn with_max_wall(mut self, max_wall: Duration) -> Self {
        self.max_wall = Some(max_wall);
        self
    }

    /// Sets an absolute deadline (builder style).
    pub fn with_deadline(mut self, deadline: Instant) -> Self {
        self.deadline = Some(deadline);
        self
    }
}

/// One sizing job: a circuit, a full campaign configuration (method,
/// engine, cache, pruning, goal factors, budgets — per request), and the
/// campaign seed.
#[derive(Debug, Clone)]
pub struct SizingRequest {
    /// Circuit to size.
    pub circuit: CircuitSpec,
    /// Campaign configuration. `config.cache` selects the shared-cache
    /// configuration this job resolves through the server's
    /// [`CacheRegistry`] (`None` runs uncached).
    pub config: CampaignConfig,
    /// Campaign seed — with the same `circuit` and `config`, the seed
    /// fully determines the trajectory, no matter what else the server
    /// is running.
    pub seed: u64,
    /// Resource budget (default: unlimited).
    pub budget: JobBudget,
    /// Scheduling class (default: [`JobPriority::Batch`]).
    pub priority: JobPriority,
    /// Deterministic fault-injection schedule (default: none). A plan
    /// applies only to this job's own simulation stream — injected
    /// outcomes bypass the shared cache, so they can never leak into a
    /// concurrent job (see [`glova::fault`]).
    pub fault_plan: Option<Arc<FaultPlan>>,
}

impl SizingRequest {
    /// Bundles a request with no budget, batch priority and no faults.
    pub fn new(circuit: CircuitSpec, config: CampaignConfig, seed: u64) -> Self {
        Self {
            circuit,
            config,
            seed,
            budget: JobBudget::default(),
            priority: JobPriority::default(),
            fault_plan: None,
        }
    }

    /// Attaches a resource budget (builder style).
    pub fn with_budget(mut self, budget: JobBudget) -> Self {
        self.budget = budget;
        self
    }

    /// Sets the scheduling class (builder style).
    pub fn with_priority(mut self, priority: JobPriority) -> Self {
        self.priority = priority;
        self
    }

    /// Attaches a deterministic fault plan (builder style; test/bench
    /// harness hook).
    pub fn with_fault_plan(mut self, plan: Arc<FaultPlan>) -> Self {
        self.fault_plan = Some(plan);
        self
    }
}

/// Serving-layer errors.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ServeError {
    /// The request can never run (bad circuit shape, empty config).
    InvalidRequest(String),
    /// No job with the given id was ever submitted to this server.
    UnknownJob(JobId),
    /// The server is shutting down and no longer accepts submissions.
    ShuttingDown,
    /// The bounded queue is full — shed-load backpressure. The request
    /// was **not** enqueued; clients retry later or submit elsewhere.
    QueueFull {
        /// The configured queue bound that was hit.
        capacity: usize,
    },
}

impl fmt::Display for ServeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ServeError::InvalidRequest(why) => write!(f, "invalid sizing request: {why}"),
            ServeError::UnknownJob(id) => write!(f, "unknown job {id:?}"),
            ServeError::ShuttingDown => write!(f, "server is shutting down"),
            ServeError::QueueFull { capacity } => {
                write!(f, "submit queue is full (capacity {capacity})")
            }
        }
    }
}

impl std::error::Error for ServeError {}

/// Opaque handle to a submitted job (process-unique per server).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct JobId(u64);

/// Lifecycle of a job.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum JobStatus {
    /// Accepted, waiting for a worker.
    Queued,
    /// A worker is running the campaign.
    Running,
    /// The campaign finished; the snapshot carries its result.
    Done,
    /// The campaign panicked; the snapshot carries the panic message.
    /// The worker survives — one poisoned request cannot take down the
    /// fleet.
    Failed,
    /// The job was cancelled — by [`CampaignServer::cancel`] or by
    /// [`CampaignServer::shutdown_now`]/`Drop`. A job cancelled while
    /// running keeps its partial trajectory and partial
    /// [`CampaignResult`] in the snapshot; a job cancelled while queued
    /// has neither (it never ran).
    Cancelled,
    /// The job hit its [`JobBudget`] (`max_sims`, `max_wall` or
    /// `deadline`). The snapshot carries the partial trajectory and
    /// partial result; simulations never exceed `max_sims`.
    BudgetExhausted,
}

impl JobStatus {
    /// Whether the job has finished (successfully or not).
    pub fn is_terminal(self) -> bool {
        matches!(
            self,
            JobStatus::Done | JobStatus::Failed | JobStatus::Cancelled | JobStatus::BudgetExhausted
        )
    }
}

/// Point-in-time view of one job, cheap to poll while it runs.
#[derive(Debug, Clone)]
pub struct JobSnapshot {
    /// The job this snapshot describes.
    pub id: JobId,
    /// Lifecycle state at snapshot time.
    pub status: JobStatus,
    /// Every campaign step completed so far, streamed in step order the
    /// moment each completes (the full trajectory once `Done`).
    pub steps: Vec<CampaignStep>,
    /// The campaign result (populated once `Done`).
    pub result: Option<CampaignResult>,
    /// The panic message (populated once `Failed`).
    pub error: Option<String>,
}

/// Final tally returned by [`CampaignServer::shutdown`] and
/// [`CampaignServer::shutdown_now`].
///
/// Every job ever submitted appears in exactly one terminal bucket —
/// nothing is silently dropped: graceful [`shutdown`] runs every queued
/// job to completion, while [`shutdown_now`] drains queued-but-unstarted
/// jobs into a terminal [`JobStatus::Cancelled`] (still visible through
/// any snapshot handle held by a client).
///
/// [`shutdown`]: CampaignServer::shutdown
/// [`shutdown_now`]: CampaignServer::shutdown_now
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ShutdownReport {
    /// Jobs that reached [`JobStatus::Done`].
    pub jobs_completed: u64,
    /// Jobs that reached [`JobStatus::Failed`].
    pub jobs_failed: u64,
    /// Jobs that reached [`JobStatus::Cancelled`].
    pub jobs_cancelled: u64,
    /// Jobs that reached [`JobStatus::BudgetExhausted`].
    pub jobs_budget_exhausted: u64,
    /// Peak queue depth ever observed (both priority classes combined).
    pub queue_high_water: usize,
}

#[derive(Debug)]
struct JobState {
    status: JobStatus,
    steps: Vec<CampaignStep>,
    result: Option<CampaignResult>,
    error: Option<String>,
}

#[derive(Debug)]
struct Job {
    id: JobId,
    request: SizingRequest,
    state: Mutex<JobState>,
    /// Signalled when the job reaches a terminal status.
    done: Condvar,
    /// Cooperative cancellation/budget token, checked by the campaign
    /// loop before every dispatch.
    control: Arc<CampaignControl>,
}

impl Job {
    fn snapshot(&self) -> JobSnapshot {
        let state = self.state.lock().expect("job state poisoned");
        JobSnapshot {
            id: self.id,
            status: state.status,
            steps: state.steps.clone(),
            result: state.result.clone(),
            error: state.error.clone(),
        }
    }
}

#[derive(Debug, Default)]
struct QueueState {
    /// Interactive jobs — always popped before any batch job.
    interactive: VecDeque<Arc<Job>>,
    /// Batch jobs — popped only when no interactive job waits.
    batch: VecDeque<Arc<Job>>,
    /// Peak combined depth ever observed (reported at shutdown).
    high_water: usize,
    shutting_down: bool,
}

impl QueueState {
    fn depth(&self) -> usize {
        self.interactive.len() + self.batch.len()
    }

    fn pop(&mut self) -> Option<Arc<Job>> {
        self.interactive.pop_front().or_else(|| self.batch.pop_front())
    }
}

#[derive(Debug)]
struct ServerShared {
    queue: Mutex<QueueState>,
    /// Signalled on submission and on shutdown.
    work_available: Condvar,
    jobs: Mutex<HashMap<JobId, Arc<Job>>>,
    /// Queue bound for shed-load backpressure (`usize::MAX` = unbounded).
    queue_capacity: AtomicUsize,
    solvers: Arc<SolverRegistry>,
    caches: Arc<CacheRegistry>,
}

/// A fixed worker fleet multiplexing queued sizing campaigns (see the
/// [crate docs](self)).
///
/// Dropping the server without calling [`shutdown`](Self::shutdown)
/// also drains the queue and joins the workers.
#[derive(Debug)]
pub struct CampaignServer {
    shared: Arc<ServerShared>,
    workers: Vec<JoinHandle<()>>,
    next_id: Mutex<u64>,
}

impl CampaignServer {
    /// Spawns a server with `workers` worker threads and its own (fresh)
    /// solver and cache registries.
    ///
    /// # Panics
    ///
    /// Panics if `workers == 0`.
    pub fn new(workers: usize) -> Self {
        Self::with_registries(
            workers,
            Arc::new(SolverRegistry::new()),
            Arc::new(CacheRegistry::new()),
        )
    }

    /// Spawns a server resolving solver pools and evaluation caches
    /// through the given registries — the hook for sharing registries
    /// across servers (or with non-served library code) and for
    /// inspecting registry counters in tests and benches.
    ///
    /// # Panics
    ///
    /// Panics if `workers == 0`.
    pub fn with_registries(
        workers: usize,
        solvers: Arc<SolverRegistry>,
        caches: Arc<CacheRegistry>,
    ) -> Self {
        assert!(workers > 0, "a server needs at least one worker");
        let shared = Arc::new(ServerShared {
            queue: Mutex::new(QueueState::default()),
            work_available: Condvar::new(),
            jobs: Mutex::new(HashMap::new()),
            queue_capacity: AtomicUsize::new(usize::MAX),
            solvers,
            caches,
        });
        let handles = (0..workers)
            .map(|i| {
                let shared = shared.clone();
                std::thread::Builder::new()
                    .name(format!("glova-serve-{i}"))
                    .spawn(move || worker_loop(&shared))
                    .expect("worker thread spawn")
            })
            .collect();
        Self { shared, workers: handles, next_id: Mutex::new(0) }
    }

    /// Bounds the submit queue (builder style): once `capacity` jobs are
    /// queued (both priority classes combined, running jobs excluded),
    /// further submissions fail fast with [`ServeError::QueueFull`]
    /// instead of growing the backlog without bound. Clamped to ≥ 1.
    pub fn with_queue_capacity(self, capacity: usize) -> Self {
        self.shared.queue_capacity.store(capacity.max(1), Ordering::Relaxed);
        self
    }

    /// Number of worker threads.
    pub fn worker_count(&self) -> usize {
        self.workers.len()
    }

    /// Jobs currently queued (both priority classes, running excluded).
    pub fn queue_depth(&self) -> usize {
        self.shared.queue.lock().expect("queue poisoned").depth()
    }

    /// The solver registry this server resolves pools through.
    pub fn solver_registry(&self) -> &SolverRegistry {
        &self.shared.solvers
    }

    /// The cache registry this server resolves evaluation caches
    /// through.
    pub fn cache_registry(&self) -> &CacheRegistry {
        &self.shared.caches
    }

    /// Validates and enqueues a request, returning its job id
    /// immediately.
    ///
    /// # Errors
    ///
    /// [`ServeError::InvalidRequest`] for shapes the circuit
    /// constructors reject or an empty seeding phase;
    /// [`ServeError::ShuttingDown`] after [`shutdown`](Self::shutdown)
    /// has begun (checked under the queue lock, so a submit racing a
    /// concurrent shutdown either lands in the drain or fails fast —
    /// never limbo); [`ServeError::QueueFull`] when a configured
    /// [queue bound](Self::with_queue_capacity) is hit (the request is
    /// not enqueued).
    pub fn submit(&self, request: SizingRequest) -> Result<JobId, ServeError> {
        request.circuit.validate()?;
        if request.config.init_designs == 0 {
            return Err(ServeError::InvalidRequest("init_designs must be positive".into()));
        }
        let mut control = CampaignControl::new();
        if let Some(max_sims) = request.budget.max_sims {
            control = control.with_max_sims(max_sims);
        }
        if let Some(deadline) = request.budget.deadline {
            control = control.with_deadline(deadline);
        }
        let id = {
            let mut next = self.next_id.lock().expect("id counter poisoned");
            *next += 1;
            JobId(*next)
        };
        let priority = request.priority;
        let job = Arc::new(Job {
            id,
            request,
            state: Mutex::new(JobState {
                status: JobStatus::Queued,
                steps: Vec::new(),
                result: None,
                error: None,
            }),
            done: Condvar::new(),
            control: Arc::new(control),
        });
        {
            // Job-table insertion happens under the queue lock, so a
            // concurrent shutdown that observes the queue also observes
            // every job that will ever be in it — the shutdown tally can
            // never miss a submit that raced it.
            let mut queue = self.shared.queue.lock().expect("queue poisoned");
            if queue.shutting_down {
                return Err(ServeError::ShuttingDown);
            }
            let capacity = self.shared.queue_capacity.load(Ordering::Relaxed);
            if queue.depth() >= capacity {
                return Err(ServeError::QueueFull { capacity });
            }
            self.shared.jobs.lock().expect("job table poisoned").insert(id, job.clone());
            match priority {
                JobPriority::Interactive => queue.interactive.push_back(job),
                JobPriority::Batch => queue.batch.push_back(job),
            }
            queue.high_water = queue.high_water.max(queue.depth());
        }
        self.shared.work_available.notify_one();
        Ok(id)
    }

    /// Cancels a job. Queued jobs transition to a terminal
    /// [`JobStatus::Cancelled`] immediately and never run; running jobs
    /// stop cooperatively at the campaign loop's next control check,
    /// preserving the partial trajectory in the snapshot. Cancelling an
    /// already-terminal job is a no-op.
    ///
    /// # Errors
    ///
    /// [`ServeError::UnknownJob`] if the id was never issued.
    pub fn cancel(&self, id: JobId) -> Result<(), ServeError> {
        let job = self.job(id)?;
        job.control.cancel();
        // Remove it from the queue (if still there) under the queue
        // lock, then finalize: a job a worker already popped is Running
        // or about to be — its own control check finishes the cancel.
        let was_queued = {
            let mut queue = self.shared.queue.lock().expect("queue poisoned");
            let before = queue.depth();
            queue.interactive.retain(|j| j.id != id);
            queue.batch.retain(|j| j.id != id);
            queue.depth() != before
        };
        if was_queued {
            let mut state = job.state.lock().expect("job state poisoned");
            if state.status == JobStatus::Queued {
                state.status = JobStatus::Cancelled;
                drop(state);
                job.done.notify_all();
            }
        }
        Ok(())
    }

    /// A point-in-time view of the job (non-blocking).
    ///
    /// # Errors
    ///
    /// [`ServeError::UnknownJob`] if the id was never issued.
    pub fn snapshot(&self, id: JobId) -> Result<JobSnapshot, ServeError> {
        Ok(self.job(id)?.snapshot())
    }

    /// Blocks until the job reaches a terminal status, returning its
    /// final snapshot.
    ///
    /// # Errors
    ///
    /// [`ServeError::UnknownJob`] if the id was never issued.
    pub fn wait(&self, id: JobId) -> Result<JobSnapshot, ServeError> {
        let job = self.job(id)?;
        let mut state = job.state.lock().expect("job state poisoned");
        while !state.status.is_terminal() {
            state = job.done.wait(state).expect("job state poisoned");
        }
        drop(state);
        Ok(job.snapshot())
    }

    /// Graceful shutdown: stops accepting submissions, **runs every
    /// queued job to completion**, joins the workers, and tallies the
    /// outcomes. Every job ever submitted lands in exactly one terminal
    /// bucket of the report.
    pub fn shutdown(mut self) -> ShutdownReport {
        self.begin_shutdown();
        for handle in self.workers.drain(..) {
            let _ = handle.join();
        }
        self.tally()
    }

    /// Immediate shutdown: stops accepting submissions, drains
    /// queued-but-unstarted jobs into a terminal [`JobStatus::Cancelled`]
    /// (visible through any held snapshot handle), cooperatively cancels
    /// running jobs (they keep their partial trajectories), joins the
    /// workers, and tallies. `Drop` uses the same semantics.
    pub fn shutdown_now(mut self) -> ShutdownReport {
        self.cancel_pending_and_running();
        for handle in self.workers.drain(..) {
            let _ = handle.join();
        }
        self.tally()
    }

    fn tally(&self) -> ShutdownReport {
        let high_water = self.shared.queue.lock().expect("queue poisoned").high_water;
        let jobs = self.shared.jobs.lock().expect("job table poisoned");
        let mut report = ShutdownReport {
            jobs_completed: 0,
            jobs_failed: 0,
            jobs_cancelled: 0,
            jobs_budget_exhausted: 0,
            queue_high_water: high_water,
        };
        for job in jobs.values() {
            match job.state.lock().expect("job state poisoned").status {
                JobStatus::Done => report.jobs_completed += 1,
                JobStatus::Failed => report.jobs_failed += 1,
                JobStatus::Cancelled => report.jobs_cancelled += 1,
                JobStatus::BudgetExhausted => report.jobs_budget_exhausted += 1,
                JobStatus::Queued | JobStatus::Running => {
                    unreachable!("drained shutdown left a live job")
                }
            }
        }
        report
    }

    fn begin_shutdown(&self) {
        self.shared.queue.lock().expect("queue poisoned").shutting_down = true;
        self.shared.work_available.notify_all();
    }

    /// Flips the server into shutdown, drains the queue into terminal
    /// `Cancelled` states, and cancels every live job's control token.
    fn cancel_pending_and_running(&self) {
        let drained: Vec<Arc<Job>> = {
            let mut queue = self.shared.queue.lock().expect("queue poisoned");
            queue.shutting_down = true;
            let mut drained: Vec<Arc<Job>> = queue.interactive.drain(..).collect();
            drained.extend(queue.batch.drain(..));
            drained
        };
        self.shared.work_available.notify_all();
        for job in &drained {
            job.control.cancel();
            let mut state = job.state.lock().expect("job state poisoned");
            if state.status == JobStatus::Queued {
                state.status = JobStatus::Cancelled;
                drop(state);
                job.done.notify_all();
            }
        }
        // Jobs a worker already picked up stop cooperatively at their
        // next control check (terminal jobs ignore the stale flag).
        for job in self.shared.jobs.lock().expect("job table poisoned").values() {
            if !job.state.lock().expect("job state poisoned").status.is_terminal() {
                job.control.cancel();
            }
        }
    }

    fn job(&self, id: JobId) -> Result<Arc<Job>, ServeError> {
        self.shared
            .jobs
            .lock()
            .expect("job table poisoned")
            .get(&id)
            .cloned()
            .ok_or(ServeError::UnknownJob(id))
    }
}

impl Drop for CampaignServer {
    fn drop(&mut self) {
        // Drop is the impatient path (shutdown_now semantics): queued
        // jobs are drained to terminal `Cancelled`, running jobs stop at
        // their next control check. Call `shutdown()` for a graceful
        // full drain.
        self.cancel_pending_and_running();
        for handle in self.workers.drain(..) {
            let _ = handle.join();
        }
    }
}

fn worker_loop(shared: &ServerShared) {
    loop {
        let job = {
            let mut queue = shared.queue.lock().expect("queue poisoned");
            loop {
                if let Some(job) = queue.pop() {
                    break job;
                }
                if queue.shutting_down {
                    return;
                }
                queue = shared.work_available.wait(queue).expect("queue poisoned");
            }
        };
        run_job(shared, &job);
    }
}

fn run_job(shared: &ServerShared, job: &Job) {
    {
        let mut state = job.state.lock().expect("job state poisoned");
        // A cancel may have landed between the queue pop and here (or
        // the cancel lost the queue-removal race) — honor it before
        // spending any work.
        if job.control.is_cancelled() {
            state.status = JobStatus::Cancelled;
            drop(state);
            job.done.notify_all();
            return;
        }
        state.status = JobStatus::Running;
    }
    // `max_wall` is measured from run start (queue time excluded):
    // translate it to an absolute deadline now, tightening any absolute
    // deadline already on the control.
    if let Some(max_wall) = job.request.budget.max_wall {
        job.control.tighten_deadline(Instant::now() + max_wall);
    }
    // A panicking campaign (solver assertion, config mismatch the cheap
    // validation missed) fails its own job, never the fleet.
    let outcome = catch_unwind(AssertUnwindSafe(|| execute(shared, job)));
    let mut state = job.state.lock().expect("job state poisoned");
    match outcome {
        Ok(result) => {
            // An interrupted campaign still returns a (partial) result —
            // trajectory, incumbent and accounting survive in the
            // snapshot whatever the terminal status.
            state.status = match result.termination {
                CampaignTermination::Completed => JobStatus::Done,
                CampaignTermination::Cancelled => JobStatus::Cancelled,
                CampaignTermination::BudgetExhausted => JobStatus::BudgetExhausted,
            };
            state.result = Some(result);
        }
        Err(payload) => {
            state.error = Some(panic_message(payload.as_ref()));
            state.status = JobStatus::Failed;
        }
    }
    drop(state);
    job.done.notify_all();
}

fn execute(shared: &ServerShared, job: &Job) -> CampaignResult {
    let request = &job.request;
    let (circuit, fingerprint) = request.circuit.build(&shared.solvers);
    let mut campaign = match request.config.cache {
        Some(cache_config) => {
            let identity = request.circuit.cache_identity(fingerprint);
            let cache = shared.caches.cache_for(&identity, cache_config);
            SizingCampaign::with_shared_cache(circuit, request.config.clone(), cache)
        }
        None => SizingCampaign::new(circuit, request.config.clone()),
    };
    if let Some(plan) = &request.fault_plan {
        campaign = campaign.with_fault_plan(plan.clone());
    }
    campaign.run_controlled(request.seed, &job.control, &mut |step| {
        job.state.lock().expect("job state poisoned").steps.push(step.clone());
    })
}

fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "campaign panicked".to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use glova_variation::config::VerificationMethod;

    fn quick_request(seed: u64) -> SizingRequest {
        SizingRequest::new(
            CircuitSpec::InverterChain { stages: 2 },
            CampaignConfig::quick(VerificationMethod::Corner)
                .with_max_steps(4)
                .with_cache(glova::cache::EvalCacheConfig::default()),
            seed,
        )
    }

    #[test]
    fn submit_poll_wait_roundtrip() {
        let server = CampaignServer::new(2);
        let id = server.submit(quick_request(42)).unwrap();
        // Snapshots are valid at any point in the lifecycle.
        let early = server.snapshot(id).unwrap();
        assert!(matches!(early.status, JobStatus::Queued | JobStatus::Running | JobStatus::Done));
        let done = server.wait(id).unwrap();
        assert_eq!(done.status, JobStatus::Done);
        let result = done.result.expect("done job carries its result");
        assert_eq!(done.steps, result.steps, "streamed steps are the trajectory");
        let report = server.shutdown();
        assert_eq!(
            report,
            ShutdownReport {
                jobs_completed: 1,
                jobs_failed: 0,
                jobs_cancelled: 0,
                jobs_budget_exhausted: 0,
                queue_high_water: 1,
            }
        );
    }

    #[test]
    fn invalid_shapes_are_rejected_at_submission() {
        let server = CampaignServer::new(1);
        let bad_chain = SizingRequest::new(
            CircuitSpec::InverterChain { stages: 1 },
            CampaignConfig::quick(VerificationMethod::Corner),
            1,
        );
        assert!(matches!(server.submit(bad_chain), Err(ServeError::InvalidRequest(_))));
        let bad_array = SizingRequest::new(
            CircuitSpec::SenseAmpArray { rows: 0, cols: 4 },
            CampaignConfig::quick(VerificationMethod::Corner),
            1,
        );
        assert!(matches!(server.submit(bad_array), Err(ServeError::InvalidRequest(_))));
        let mut empty_init = quick_request(1);
        empty_init.config.init_designs = 0;
        assert!(matches!(server.submit(empty_init), Err(ServeError::InvalidRequest(_))));
    }

    #[test]
    fn unknown_job_is_an_error() {
        let server = CampaignServer::new(1);
        let bogus = JobId(999);
        match server.snapshot(bogus) {
            Err(ServeError::UnknownJob(id)) => assert_eq!(id, bogus),
            other => panic!("expected UnknownJob, got {other:?}"),
        }
        match server.wait(bogus) {
            Err(ServeError::UnknownJob(id)) => assert_eq!(id, bogus),
            other => panic!("expected UnknownJob, got {other:?}"),
        }
    }

    #[test]
    fn panicking_job_fails_without_killing_the_fleet() {
        let server = CampaignServer::new(1);
        // A goal-factor count that does not match the 3-metric spec
        // passes the cheap submission validation but panics inside the
        // campaign constructor — the worker must absorb it.
        let mut poisoned = quick_request(7);
        poisoned.config.goal_factors = Some(vec![1.0]);
        let bad = server.submit(poisoned).unwrap();
        let failed = server.wait(bad).unwrap();
        assert_eq!(failed.status, JobStatus::Failed);
        assert!(failed.error.is_some());
        // The same (sole) worker then serves a healthy job.
        let good = server.submit(quick_request(42)).unwrap();
        assert_eq!(server.wait(good).unwrap().status, JobStatus::Done);
        let report = server.shutdown();
        assert_eq!(report.jobs_completed, 1);
        assert_eq!(report.jobs_failed, 1);
        assert_eq!(report.jobs_cancelled, 0);
    }

    #[test]
    fn shutdown_drains_queued_jobs_and_blocks_new_ones() {
        // One worker, several jobs: shutdown must finish them all.
        let server = CampaignServer::new(1);
        let ids: Vec<_> = (0..3).map(|s| server.submit(quick_request(s)).unwrap()).collect();
        let shared = server.shared.clone();
        let report = server.shutdown();
        assert_eq!(report.jobs_completed, 3);
        assert_eq!(report.jobs_failed, 0);
        let jobs = shared.jobs.lock().unwrap();
        for id in ids {
            assert_eq!(jobs[&id].state.lock().unwrap().status, JobStatus::Done);
        }
    }

    #[test]
    fn concurrent_same_topology_jobs_share_one_prime_and_one_cache() {
        let solvers = Arc::new(SolverRegistry::new());
        let caches = Arc::new(CacheRegistry::new());
        let server = CampaignServer::with_registries(4, solvers.clone(), caches.clone());
        let ids: Vec<_> = (0..4).map(|s| server.submit(quick_request(100 + s)).unwrap()).collect();
        for id in ids {
            assert_eq!(server.wait(id).unwrap().status, JobStatus::Done);
        }
        assert_eq!(solvers.primes(), 1, "four same-topology jobs share one symbolic prime");
        assert_eq!(solvers.hits(), 3);
        assert_eq!(caches.len(), 1, "one shared cache for one circuit identity");
        drop(server);
    }
}
