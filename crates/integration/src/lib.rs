//! Placeholder library: this crate exists to host the repository-root
//! `tests/` integration suite (see `Cargo.toml` `[[test]]` entries).
