//! Engine-dispatched SPICE sweeps: frequency points (and, through the
//! problem layer, corner/mismatch points) fanned out over an
//! [`EvalEngine`] workers with per-worker pooled solver state.
//!
//! DC corner/mismatch sweeps already thread end to end through
//! [`SizingProblem`](crate::problem::SizingProblem) and
//! `glova_spice::dc::OpSolverPool`; this module gives AC sweeps the same
//! per-worker pooled-state treatment. The pool
//! ([`glova_spice::ac::AcSolverPool`]) computes the DC linearization
//! point and the complex symbolic analysis once; each engine worker then
//! checks a per-worker point solver out (a clone of the primed
//! prototype), so every frequency point anywhere in the sweep pays only
//! a value restamp plus a numeric-only complex refactorization.
//!
//! # Determinism
//!
//! Each point solve is a pure function of `(netlist, operating point,
//! frequency)` over the canonical symbolic analysis, and results are
//! collected in index order — sequential and threaded sweeps are bitwise
//! identical (`tests/ac_engine_parity.rs`).

use crate::engine::{map_indexed, EvalEngine};
use glova_spice::ac::{AcResult, AcSolverPool};
use glova_spice::mna::SolverBackend;
use glova_spice::netlist::Netlist;
use glova_spice::{Complex, SpiceError};

/// [`glova_spice::ac_sweep_with_backend`] with the frequency points
/// dispatched over `engine`: each worker owns a pooled per-worker point
/// solver sharing one complex symbolic analysis. Results are bitwise
/// identical to the sequential sweep on every engine.
///
/// # Errors
///
/// See [`glova_spice::ac_sweep`]; when several points fail, the error of
/// the lowest-indexed failing frequency is reported (index-order
/// collection keeps this deterministic under any engine).
pub fn ac_sweep_with_engine(
    netlist: &Netlist,
    ac_source_name: &str,
    frequencies: &[f64],
    backend: SolverBackend,
    engine: &dyn EvalEngine,
) -> Result<AcResult, SpiceError> {
    let pool = AcSolverPool::new(netlist, ac_source_name, frequencies, backend)?;
    let points: Vec<Result<Vec<Complex>, SpiceError>> =
        map_indexed(engine, frequencies.len(), |i| pool.solve_point(frequencies[i]));
    let mut solutions = Vec::with_capacity(points.len());
    for point in points {
        solutions.push(point?);
    }
    Ok(AcResult::from_parts(frequencies.to_vec(), solutions, pool.n_nodes()))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::{Sequential, Threaded};
    use glova_spice::netlist::{ota_two_stage, OtaParams};
    use glova_spice::{ac_sweep_with_backend, log_sweep};

    #[test]
    fn engine_dispatched_sweep_matches_direct_sweep_bitwise() {
        let mut nl = ota_two_stage(&OtaParams::nominal());
        let probes = [nl.node("o1"), nl.node("out"), nl.node("tail")];
        let freqs = log_sweep(1e3, 1e8, 3);
        for backend in [SolverBackend::Dense, SolverBackend::Sparse] {
            let direct = ac_sweep_with_backend(&nl, "VINP", &freqs, backend).unwrap();
            for engine in [&Sequential as &dyn EvalEngine, &Threaded::new(4)] {
                let swept = ac_sweep_with_engine(&nl, "VINP", &freqs, backend, engine).unwrap();
                assert_eq!(swept.len(), direct.len());
                for i in 0..freqs.len() {
                    for &node in &probes {
                        let a = direct.voltage(node, i);
                        let b = swept.voltage(node, i);
                        assert_eq!(a.re.to_bits(), b.re.to_bits());
                        assert_eq!(a.im.to_bits(), b.im.to_bits());
                    }
                }
            }
        }
    }
}
