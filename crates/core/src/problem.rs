//! The sizing problem: circuit × verification method, with simulation
//! accounting.

use glova_circuits::Circuit;
use glova_stats::rng::Rng64;
use glova_variation::config::{OperatingConfig, VerificationMethod};
use glova_variation::corner::PvtCorner;
use glova_variation::sampler::{MismatchSampler, MismatchVector};
use std::cell::Cell;
use std::sync::Arc;

/// One simulation outcome.
#[derive(Debug, Clone, PartialEq)]
pub struct SimOutcome {
    /// Raw metrics in spec order.
    pub metrics: Vec<f64>,
    /// The consolidated reward (paper Eq. 4–5).
    pub reward: f64,
}

/// A sizing problem: the circuit under a chosen verification method.
///
/// Every call to [`SizingProblem::simulate`] increments the simulation
/// counter — the `# Simulation` column of the paper's Table II.
#[derive(Clone)]
pub struct SizingProblem {
    circuit: Arc<dyn Circuit>,
    config: OperatingConfig,
    simulations: Cell<u64>,
}

impl std::fmt::Debug for SizingProblem {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SizingProblem")
            .field("circuit", &self.circuit.name())
            .field("method", &self.config.method)
            .field("simulations", &self.simulations.get())
            .finish()
    }
}

impl SizingProblem {
    /// Creates a problem for `circuit` under `method`.
    pub fn new(circuit: Arc<dyn Circuit>, method: VerificationMethod) -> Self {
        Self { circuit, config: method.operating_config(), simulations: Cell::new(0) }
    }

    /// The circuit.
    pub fn circuit(&self) -> &Arc<dyn Circuit> {
        &self.circuit
    }

    /// The operating configuration (Table I row).
    pub fn config(&self) -> &OperatingConfig {
        &self.config
    }

    /// Design-space dimension.
    pub fn dim(&self) -> usize {
        self.circuit.dim()
    }

    /// Total simulations run so far.
    pub fn simulations(&self) -> u64 {
        self.simulations.get()
    }

    /// Resets the simulation counter (between experiment arms).
    pub fn reset_simulations(&self) {
        self.simulations.set(0);
    }

    /// Runs one simulation: metrics + consolidated reward.
    pub fn simulate(&self, x: &[f64], corner: &PvtCorner, h: &MismatchVector) -> SimOutcome {
        self.simulations.set(self.simulations.get() + 1);
        let metrics = self.circuit.evaluate(x, corner, h);
        let reward = self.circuit.spec().reward(&metrics);
        SimOutcome { metrics, reward }
    }

    /// Simulates under the typical condition without mismatch (initial
    /// TuRBO sampling target).
    pub fn simulate_typical(&self, x: &[f64]) -> SimOutcome {
        let h = MismatchVector::nominal(self.circuit.mismatch_domain(x).dim());
        self.simulate(x, &PvtCorner::typical(), &h)
    }

    /// Samples `n` mismatch conditions for design `x` per Eq. 3 under this
    /// problem's variance layers (one shared global draw — a single die).
    pub fn sample_conditions(&self, x: &[f64], n: usize, rng: &mut Rng64) -> Vec<MismatchVector> {
        let sampler =
            MismatchSampler::new(self.circuit.mismatch_domain(x), self.config.variance_layers());
        sampler.sample_set(rng, n)
    }

    /// Samples `n` mismatch conditions with a fresh global draw per sample
    /// (one die per Monte-Carlo point) — used by full verification, where
    /// each sign-off sample models an independent die.
    pub fn sample_conditions_independent(
        &self,
        x: &[f64],
        n: usize,
        rng: &mut Rng64,
    ) -> Vec<MismatchVector> {
        let sampler =
            MismatchSampler::new(self.circuit.mismatch_domain(x), self.config.variance_layers());
        sampler.sample_independent(rng, n)
    }

    /// Simulates `x` under one corner across a set of mismatch conditions;
    /// returns the per-condition outcomes and the worst reward.
    pub fn simulate_conditions(
        &self,
        x: &[f64],
        corner: &PvtCorner,
        conditions: &[MismatchVector],
    ) -> (Vec<SimOutcome>, f64) {
        let outcomes: Vec<SimOutcome> =
            conditions.iter().map(|h| self.simulate(x, corner, h)).collect();
        let worst =
            outcomes.iter().map(|o| o.reward).fold(f64::INFINITY, f64::min);
        (outcomes, worst)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use glova_circuits::ToyQuadratic;
    use glova_stats::rng::seeded;

    fn problem(method: VerificationMethod) -> SizingProblem {
        SizingProblem::new(Arc::new(ToyQuadratic::standard()), method)
    }

    #[test]
    fn simulation_counter_counts() {
        let p = problem(VerificationMethod::Corner);
        let x = vec![0.5; 4];
        let h = MismatchVector::nominal(p.circuit().mismatch_domain(&x).dim());
        assert_eq!(p.simulations(), 0);
        p.simulate(&x, &PvtCorner::typical(), &h);
        p.simulate(&x, &PvtCorner::typical(), &h);
        assert_eq!(p.simulations(), 2);
        p.reset_simulations();
        assert_eq!(p.simulations(), 0);
    }

    #[test]
    fn corner_method_samples_nominal_conditions() {
        let p = problem(VerificationMethod::Corner);
        let mut rng = seeded(1);
        let conditions = p.sample_conditions(&vec![0.5; 4], 3, &mut rng);
        assert_eq!(conditions.len(), 3);
        assert!(conditions.iter().all(MismatchVector::is_nominal));
    }

    #[test]
    fn mc_methods_sample_nonzero_conditions() {
        let p = problem(VerificationMethod::CornerLocalMc);
        let mut rng = seeded(2);
        let conditions = p.sample_conditions(&vec![0.5; 4], 3, &mut rng);
        assert!(conditions.iter().all(|c| !c.is_nominal()));
    }

    #[test]
    fn worst_reward_is_minimum() {
        let p = problem(VerificationMethod::CornerLocalMc);
        let mut rng = seeded(3);
        let x = vec![0.5; 4];
        let conditions = p.sample_conditions(&x, 5, &mut rng);
        let (outcomes, worst) = p.simulate_conditions(&x, &PvtCorner::typical(), &conditions);
        let min = outcomes.iter().map(|o| o.reward).fold(f64::INFINITY, f64::min);
        assert_eq!(worst, min);
        assert_eq!(p.simulations(), 5);
    }

    #[test]
    fn feasible_design_earns_satisfied_reward() {
        let toy = ToyQuadratic::standard();
        let optimum = toy.optimum().to_vec();
        let p = SizingProblem::new(Arc::new(toy), VerificationMethod::Corner);
        let outcome = p.simulate_typical(&optimum);
        assert_eq!(outcome.reward, glova_circuits::spec::SATISFIED_REWARD);
    }
}
