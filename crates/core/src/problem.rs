//! The sizing problem: circuit × verification method, with simulation
//! accounting and engine-driven batch evaluation.

use crate::cache::{CacheStats, EvalCache, EvalCacheConfig};
use crate::engine::{map_indexed, EvalEngine, Sequential};
use crate::fault::{FaultKind, FaultPlan};
use glova_circuits::Circuit;
use glova_stats::reduce;
use glova_stats::rng::Rng64;
use glova_variation::config::{OperatingConfig, VerificationMethod};
use glova_variation::corner::PvtCorner;
use glova_variation::sampler::{MismatchSampler, MismatchVector};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// One simulation outcome.
#[derive(Debug, Clone, PartialEq)]
pub struct SimOutcome {
    /// Raw metrics in spec order.
    pub metrics: Vec<f64>,
    /// The consolidated reward (paper Eq. 4–5).
    pub reward: f64,
}

/// A sizing problem: the circuit under a chosen verification method.
///
/// Every call to [`SizingProblem::simulate`] increments the simulation
/// counter — the `# Simulation` column of the paper's Table II. The
/// counter is atomic, and [`Circuit`] implementations are `Send + Sync`
/// by trait bound, so a problem can be shared across the worker threads
/// of a [`Threaded`](crate::engine::Threaded) engine; batch entry points
/// ([`simulate_conditions`](Self::simulate_conditions)) fan out through
/// the problem's [`EvalEngine`].
///
/// This includes SPICE-backed circuits
/// (`glova_circuits::SpiceInverterChain`): their `evaluate` checks a
/// per-worker DC solver out of a shared pool, so corner/mismatch sweeps,
/// verifier phase-2 re-sweeps and yield grids all thread through the
/// engine layer end to end instead of looping over netlist solves
/// inline — with `tests/spice_engine_parity.rs` holding
/// sequential == threaded bitwise.
pub struct SizingProblem {
    circuit: Arc<dyn Circuit>,
    config: OperatingConfig,
    engine: Arc<dyn EvalEngine>,
    cache: Option<Arc<EvalCache>>,
    fault_plan: Option<Arc<FaultPlan>>,
    simulations: AtomicU64,
}

impl Clone for SizingProblem {
    fn clone(&self) -> Self {
        Self {
            circuit: self.circuit.clone(),
            config: self.config.clone(),
            engine: self.engine.clone(),
            cache: self.cache.clone(),
            fault_plan: self.fault_plan.clone(),
            simulations: AtomicU64::new(self.simulations()),
        }
    }
}

impl std::fmt::Debug for SizingProblem {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SizingProblem")
            .field("circuit", &self.circuit.name())
            .field("method", &self.config.method)
            .field("engine", &self.engine.name())
            .field("cache", &self.cache.as_ref().map(|c| c.stats()))
            .field("fault_plan", &self.fault_plan.as_ref().map(|p| p.len()))
            .field("simulations", &self.simulations())
            .finish()
    }
}

impl SizingProblem {
    /// Creates a problem for `circuit` under `method`, evaluating batches
    /// sequentially.
    pub fn new(circuit: Arc<dyn Circuit>, method: VerificationMethod) -> Self {
        Self::with_engine(circuit, method, Arc::new(Sequential))
    }

    /// Creates a problem whose batch evaluations run on `engine`.
    pub fn with_engine(
        circuit: Arc<dyn Circuit>,
        method: VerificationMethod,
        engine: Arc<dyn EvalEngine>,
    ) -> Self {
        Self {
            circuit,
            config: method.operating_config(),
            engine,
            cache: None,
            fault_plan: None,
            simulations: AtomicU64::new(0),
        }
    }

    /// Attaches an [`EvalCache`] (builder style): repeated
    /// `(design, corner, mismatch)` points are answered from memory with
    /// bitwise-identical outcomes. The simulation counter keeps counting
    /// *requests*, so accounting is unchanged; [`Self::cache_stats`]
    /// reports the evaluations actually saved.
    pub fn with_cache(mut self, config: EvalCacheConfig) -> Self {
        self.cache = Some(Arc::new(EvalCache::new(config)));
        self
    }

    /// Attaches an **existing** [`EvalCache`] handle (builder style) —
    /// the sharing entry point behind the process-wide
    /// [`CacheRegistry`](crate::cache::CacheRegistry): concurrent
    /// campaigns on the same circuit answer each other's repeated points.
    /// Outcomes are unchanged by sharing (a hit is bitwise-identical to a
    /// recompute), so per-problem accounting and trajectories stay
    /// exactly as with a private cache.
    pub fn with_cache_handle(mut self, cache: Arc<EvalCache>) -> Self {
        self.cache = Some(cache);
        self
    }

    /// Attaches a deterministic [`FaultPlan`] (builder style): simulation
    /// ordinals named by the plan are forced to fail, panic or stall (see
    /// [`crate::fault`]). Production problems carry no plan and pay one
    /// pointer check per simulation.
    pub fn with_fault_plan(mut self, plan: Arc<FaultPlan>) -> Self {
        self.fault_plan = Some(plan);
        self
    }

    /// The evaluation cache, if one is attached.
    pub fn cache(&self) -> Option<&Arc<EvalCache>> {
        self.cache.as_ref()
    }

    /// Cache counters (`None` when no cache is attached).
    pub fn cache_stats(&self) -> Option<CacheStats> {
        self.cache.as_ref().map(|c| c.stats())
    }

    /// The circuit.
    pub fn circuit(&self) -> &Arc<dyn Circuit> {
        &self.circuit
    }

    /// The operating configuration (Table I row).
    pub fn config(&self) -> &OperatingConfig {
        &self.config
    }

    /// The evaluation engine batch entry points dispatch through.
    pub fn engine(&self) -> &Arc<dyn EvalEngine> {
        &self.engine
    }

    /// Design-space dimension.
    pub fn dim(&self) -> usize {
        self.circuit.dim()
    }

    /// Total simulations run so far.
    pub fn simulations(&self) -> u64 {
        self.simulations.load(Ordering::Relaxed)
    }

    /// Resets the simulation counter (between experiment arms).
    pub fn reset_simulations(&self) {
        self.simulations.store(0, Ordering::Relaxed);
    }

    /// Runs one simulation: metrics + consolidated reward.
    ///
    /// With an attached [`EvalCache`], a previously evaluated point is
    /// answered from memory (bitwise-identical outcome, the counter still
    /// increments); the circuit is only consulted on misses.
    pub fn simulate(&self, x: &[f64], corner: &PvtCorner, h: &MismatchVector) -> SimOutcome {
        let ordinal = self.simulations.fetch_add(1, Ordering::Relaxed);
        if let Some(kind) = self.fault_plan.as_ref().and_then(|p| p.fault_at(ordinal)) {
            match kind {
                FaultKind::Panic => panic!("injected fault: panic at simulation {ordinal}"),
                FaultKind::Slow(pause) => std::thread::sleep(*pause),
                FaultKind::NonConvergence => {
                    // Degrade exactly as an unrecovered solve would —
                    // and bypass the cache, so the injected outcome can
                    // never alias a clean result for a campaign sharing
                    // this cache.
                    let metrics = vec![f64::NAN; self.circuit.spec().len()];
                    let reward = self.circuit.spec().reward(&metrics);
                    return SimOutcome { metrics, reward };
                }
            }
        }
        if let Some(cache) = &self.cache {
            return cache.get_or_compute(x, corner, h, || self.evaluate_uncached(x, corner, h));
        }
        self.evaluate_uncached(x, corner, h)
    }

    fn evaluate_uncached(&self, x: &[f64], corner: &PvtCorner, h: &MismatchVector) -> SimOutcome {
        let metrics = self.circuit.evaluate(x, corner, h);
        let reward = self.circuit.spec().reward(&metrics);
        SimOutcome { metrics, reward }
    }

    /// Simulates under the typical condition without mismatch (initial
    /// TuRBO sampling target).
    pub fn simulate_typical(&self, x: &[f64]) -> SimOutcome {
        let h = MismatchVector::nominal(self.circuit.mismatch_domain(x).dim());
        self.simulate(x, &PvtCorner::typical(), &h)
    }

    /// Samples `n` mismatch conditions for design `x` per Eq. 3 under this
    /// problem's variance layers (one shared global draw — a single die).
    pub fn sample_conditions(&self, x: &[f64], n: usize, rng: &mut Rng64) -> Vec<MismatchVector> {
        let sampler =
            MismatchSampler::new(self.circuit.mismatch_domain(x), self.config.variance_layers());
        sampler.sample_set(rng, n)
    }

    /// Samples `n` mismatch conditions with a fresh global draw per sample
    /// (one die per Monte-Carlo point) — used by full verification, where
    /// each sign-off sample models an independent die.
    pub fn sample_conditions_independent(
        &self,
        x: &[f64],
        n: usize,
        rng: &mut Rng64,
    ) -> Vec<MismatchVector> {
        let sampler =
            MismatchSampler::new(self.circuit.mismatch_domain(x), self.config.variance_layers());
        sampler.sample_independent(rng, n)
    }

    /// Simulates `x` under one corner across a set of pre-sampled mismatch
    /// conditions; returns the per-condition outcomes (in condition order)
    /// and the worst reward.
    ///
    /// The batch is dispatched through the problem's [`EvalEngine`]: each
    /// condition is an independent job, results are collected in index
    /// order, and the worst-reward fold is NaN-propagating and
    /// order-independent ([`glova_stats::reduce::worst`]) — so every
    /// engine produces identical outcomes.
    pub fn simulate_conditions(
        &self,
        x: &[f64],
        corner: &PvtCorner,
        conditions: &[MismatchVector],
    ) -> (Vec<SimOutcome>, f64) {
        let outcomes = map_indexed(self.engine.as_ref(), conditions.len(), |i| {
            self.simulate(x, corner, &conditions[i])
        });
        let worst = reduce::worst(outcomes.iter().map(|o| o.reward));
        (outcomes, worst)
    }

    /// Samples `n` shared-die conditions per corner (Eq. 3) and
    /// simulates the full corner × condition grid through the engine.
    /// Returns the outcomes grouped per corner, in corner order.
    ///
    /// Used by the full-grid sweeps (initial dataset) where no early
    /// abort applies and the whole grid can fan out at once. The RNG is
    /// consumed corner-major *before* dispatch — the determinism-critical
    /// invariant behind engine parity lives here, in one place.
    pub fn simulate_corner_grid(
        &self,
        x: &[f64],
        n: usize,
        rng: &mut Rng64,
    ) -> Vec<Vec<SimOutcome>> {
        self.grid_over_corners(x, n, rng, Self::sample_conditions)
    }

    /// [`simulate_corner_grid`](Self::simulate_corner_grid) with a fresh
    /// global draw per sample (independent dies — yield estimation).
    pub fn simulate_corner_grid_independent(
        &self,
        x: &[f64],
        n: usize,
        rng: &mut Rng64,
    ) -> Vec<Vec<SimOutcome>> {
        self.grid_over_corners(x, n, rng, Self::sample_conditions_independent)
    }

    /// Simulates `x` over an arbitrary subset of this problem's corners —
    /// `corner_indices[j]` paired with the pre-sampled `conditions[j]` —
    /// in **one** engine dispatch, returning outcomes grouped per selected
    /// corner in the given order.
    ///
    /// This is the campaign fast path behind corner-set pruning
    /// ([`crate::campaign`]): a policy step's candidate × active-corner ×
    /// mismatch grid flattens into a single [`map_indexed`] batch, so a
    /// threaded engine keeps its per-worker SPICE solvers hot instead of
    /// draining between per-corner mini-batches. Conditions are sampled by
    /// the caller *before* dispatch (the engine-parity invariant); results
    /// are bitwise-identical across engines.
    ///
    /// # Panics
    ///
    /// Panics if the two slices differ in length or a corner index is out
    /// of range.
    pub fn simulate_selected_corners(
        &self,
        x: &[f64],
        corner_indices: &[usize],
        conditions: &[Vec<MismatchVector>],
    ) -> Vec<Vec<SimOutcome>> {
        assert_eq!(corner_indices.len(), conditions.len(), "one condition set per corner");
        let selected: Vec<PvtCorner> =
            corner_indices.iter().map(|&ci| self.config.corners.corner(ci)).collect();
        let pairs: Vec<(&PvtCorner, &MismatchVector)> = selected
            .iter()
            .zip(conditions)
            .flat_map(|(corner, hs)| hs.iter().map(move |h| (corner, h)))
            .collect();
        let outcomes = map_indexed(self.engine.as_ref(), pairs.len(), |i| {
            let (corner, h) = pairs[i];
            self.simulate(x, corner, h)
        });
        let mut grouped = Vec::with_capacity(conditions.len());
        let mut offset = 0;
        for hs in conditions {
            grouped.push(outcomes[offset..offset + hs.len()].to_vec());
            offset += hs.len();
        }
        grouped
    }

    fn grid_over_corners(
        &self,
        x: &[f64],
        n: usize,
        rng: &mut Rng64,
        sample: fn(&Self, &[f64], usize, &mut Rng64) -> Vec<MismatchVector>,
    ) -> Vec<Vec<SimOutcome>> {
        let corners = &self.config.corners;
        let conditions: Vec<Vec<MismatchVector>> =
            corners.iter().map(|_| sample(self, x, n, rng)).collect();
        let pairs: Vec<(&PvtCorner, &MismatchVector)> = corners
            .iter()
            .zip(&conditions)
            .flat_map(|(corner, hs)| hs.iter().map(move |h| (corner, h)))
            .collect();
        let outcomes = map_indexed(self.engine.as_ref(), pairs.len(), |i| {
            let (corner, h) = pairs[i];
            self.simulate(x, corner, h)
        });
        outcomes.chunks(n.max(1)).map(<[SimOutcome]>::to_vec).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::Threaded;
    use glova_circuits::ToyQuadratic;
    use glova_stats::rng::seeded;

    fn problem(method: VerificationMethod) -> SizingProblem {
        SizingProblem::new(Arc::new(ToyQuadratic::standard()), method)
    }

    #[test]
    fn simulation_counter_counts() {
        let p = problem(VerificationMethod::Corner);
        let x = vec![0.5; 4];
        let h = MismatchVector::nominal(p.circuit().mismatch_domain(&x).dim());
        assert_eq!(p.simulations(), 0);
        p.simulate(&x, &PvtCorner::typical(), &h);
        p.simulate(&x, &PvtCorner::typical(), &h);
        assert_eq!(p.simulations(), 2);
        p.reset_simulations();
        assert_eq!(p.simulations(), 0);
    }

    #[test]
    fn corner_method_samples_nominal_conditions() {
        let p = problem(VerificationMethod::Corner);
        let mut rng = seeded(1);
        let conditions = p.sample_conditions(&[0.5; 4], 3, &mut rng);
        assert_eq!(conditions.len(), 3);
        assert!(conditions.iter().all(MismatchVector::is_nominal));
    }

    #[test]
    fn mc_methods_sample_nonzero_conditions() {
        let p = problem(VerificationMethod::CornerLocalMc);
        let mut rng = seeded(2);
        let conditions = p.sample_conditions(&[0.5; 4], 3, &mut rng);
        assert!(conditions.iter().all(|c| !c.is_nominal()));
    }

    #[test]
    fn worst_reward_is_minimum() {
        let p = problem(VerificationMethod::CornerLocalMc);
        let mut rng = seeded(3);
        let x = vec![0.5; 4];
        let conditions = p.sample_conditions(&x, 5, &mut rng);
        let (outcomes, worst) = p.simulate_conditions(&x, &PvtCorner::typical(), &conditions);
        let min = outcomes.iter().map(|o| o.reward).fold(f64::INFINITY, f64::min);
        assert_eq!(worst, min);
        assert_eq!(p.simulations(), 5);
    }

    #[test]
    fn feasible_design_earns_satisfied_reward() {
        let toy = ToyQuadratic::standard();
        let optimum = toy.optimum().to_vec();
        let p = SizingProblem::new(Arc::new(toy), VerificationMethod::Corner);
        let outcome = p.simulate_typical(&optimum);
        assert_eq!(outcome.reward, glova_circuits::spec::SATISFIED_REWARD);
    }

    #[test]
    fn threaded_conditions_match_sequential() {
        let toy = Arc::new(ToyQuadratic::standard());
        let seq = SizingProblem::new(toy.clone(), VerificationMethod::CornerLocalMc);
        let thr = SizingProblem::with_engine(
            toy,
            VerificationMethod::CornerLocalMc,
            Arc::new(Threaded::new(4)),
        );
        let x = vec![0.4; 4];
        let mut rng = seeded(9);
        let conditions = seq.sample_conditions(&x, 24, &mut rng);
        let corner = PvtCorner::typical();
        let (outcomes_s, worst_s) = seq.simulate_conditions(&x, &corner, &conditions);
        let (outcomes_t, worst_t) = thr.simulate_conditions(&x, &corner, &conditions);
        assert_eq!(outcomes_s, outcomes_t);
        assert_eq!(worst_s.to_bits(), worst_t.to_bits());
        assert_eq!(seq.simulations(), 24);
        assert_eq!(thr.simulations(), 24);
    }

    #[test]
    fn selected_corner_subset_matches_per_corner_batches() {
        let p = problem(VerificationMethod::CornerLocalMc);
        let x = vec![0.45; 4];
        let mut rng = seeded(21);
        let indices = [4usize, 0, 2];
        let conditions: Vec<Vec<MismatchVector>> =
            indices.iter().map(|_| p.sample_conditions(&x, 3, &mut rng)).collect();
        let grouped = p.simulate_selected_corners(&x, &indices, &conditions);
        assert_eq!(grouped.len(), 3);
        for (j, &ci) in indices.iter().enumerate() {
            let corner = p.config().corners.corner(ci);
            let (reference, _) = p.simulate_conditions(&x, &corner, &conditions[j]);
            assert_eq!(grouped[j], reference, "corner {ci} diverged from per-corner dispatch");
        }
    }

    #[test]
    fn selected_corner_subset_is_engine_invariant() {
        let toy = Arc::new(ToyQuadratic::standard());
        let seq = SizingProblem::new(toy.clone(), VerificationMethod::CornerLocalMc);
        let thr = SizingProblem::with_engine(
            toy,
            VerificationMethod::CornerLocalMc,
            Arc::new(Threaded::new(4)),
        );
        let x = vec![0.6; 4];
        let mut rng = seeded(22);
        let indices = [1usize, 3, 5, 2];
        let conditions: Vec<Vec<MismatchVector>> =
            indices.iter().map(|_| seq.sample_conditions(&x, 6, &mut rng)).collect();
        let a = seq.simulate_selected_corners(&x, &indices, &conditions);
        let b = thr.simulate_selected_corners(&x, &indices, &conditions);
        assert_eq!(a, b);
        assert_eq!(seq.simulations(), 24);
        assert_eq!(thr.simulations(), 24);
    }

    #[test]
    #[should_panic(expected = "one condition set per corner")]
    fn selected_corner_subset_requires_matching_lengths() {
        let p = problem(VerificationMethod::Corner);
        p.simulate_selected_corners(&[0.5; 4], &[0, 1], &[]);
    }

    #[test]
    fn counter_is_accurate_under_concurrency() {
        let p = Arc::new(SizingProblem::with_engine(
            Arc::new(ToyQuadratic::standard()),
            VerificationMethod::CornerLocalMc,
            Arc::new(Threaded::new(8)),
        ));
        let x = vec![0.5; 4];
        let mut rng = seeded(10);
        let conditions = p.sample_conditions(&x, 250, &mut rng);
        let (outcomes, _) = p.simulate_conditions(&x, &PvtCorner::typical(), &conditions);
        assert_eq!(outcomes.len(), 250);
        assert_eq!(p.simulations(), 250, "atomic counter must not drop increments");
    }
}
