//! The evaluation engine — deterministic, optionally parallel fan-out of
//! independent simulations.
//!
//! GLOVA's cost model is dominated by Monte-Carlo mismatch simulations
//! swept across PVT corners (paper §V, Table I): within one corner the
//! `N'` (optimization) or `N` (verification) mismatch conditions are
//! evaluated independently, and yield estimation fans out whole
//! corner × sample grids. An [`EvalEngine`] abstracts *how* such an
//! index-addressed batch is executed:
//!
//! - [`Sequential`] runs jobs in index order on the calling thread;
//! - [`Threaded`] distributes jobs over a scoped pool of `std` threads.
//!
//! # Determinism contract
//!
//! Engines only decide *where* a job runs, never *what* it computes or
//! whether it runs. Callers pre-sample every stochastic input (mismatch
//! conditions are drawn from the RNG **before** dispatch, in index
//! order) so each job is a pure function of its index; reductions over
//! job outputs are performed in index order (or are order-independent,
//! like [`glova_stats::reduce::nan_min`]). Under this contract every
//! engine produces bitwise-identical results — `tests/engine_parity.rs`
//! locks this in across the optimizer, verifier and yield estimator.
//!
//! Jobs that need expensive per-thread state follow the **worker-pool
//! pattern** rather than thread-locals (engine workers are anonymous
//! scoped threads): a shared pool hands each concurrent job a checked-out
//! instance and takes it back afterwards, so at most `parallelism()`
//! instances ever materialize. The SPICE stack's
//! `glova_spice::dc::OpSolverPool` is the canonical example — per-worker
//! DC solvers cloned from one primed prototype, keeping every worker on
//! the same symbolic factorization so results stay independent of which
//! worker ran which job (`tests/spice_engine_parity.rs` is the battery).
//!
//! # Related speed knobs
//!
//! Engines decide *where* jobs run; two orthogonal knobs shrink the work
//! itself, both result-preserving:
//!
//! - the [`EvalCache`](crate::cache::EvalCache)
//!   ([`GlovaConfig::cache`](crate::optimizer::GlovaConfig)) memoizes
//!   repeated `(design, corner, mismatch)` points with exact-bit
//!   validation (`tests/eval_cache.rs` proves bitwise identity on/off);
//! - the SPICE layer's chord-Newton iteration
//!   (`glova_spice::mna::JacobianStrategy`, the default) reuses the LU
//!   factorization across Newton iterations, re-factoring only on slow
//!   convergence.

use std::fmt;
use std::num::NonZeroUsize;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};

/// Executes index-addressed batches of independent jobs.
///
/// `run` must invoke `job(i)` exactly once for every `i in 0..n` and
/// return only after all jobs completed. Implementations may run jobs in
/// any order and on any thread.
pub trait EvalEngine: Send + Sync + fmt::Debug {
    /// Short engine name for reports and flags (e.g. `"sequential"`).
    fn name(&self) -> &'static str;

    /// Upper bound on concurrently running jobs (1 for sequential).
    fn parallelism(&self) -> usize;

    /// Whether a batch of `n` jobs would execute inline on the calling
    /// thread. Lets callers skip cross-thread result plumbing for
    /// batches the engine would serialize anyway.
    fn runs_inline(&self, n: usize) -> bool {
        self.parallelism() <= 1 || n <= 1
    }

    /// Runs `job(0..n)` to completion.
    fn run(&self, n: usize, job: &(dyn Fn(usize) + Sync));
}

/// Collects `f(0..n)` into a vector, in index order, using `engine` for
/// the evaluation.
///
/// # Panics
///
/// Panics if the engine violates its contract and skips an index.
pub fn map_indexed<T, F>(engine: &dyn EvalEngine, n: usize, f: F) -> Vec<T>
where
    T: Send,
    F: Fn(usize) -> T + Sync,
{
    // Batches the engine would serialize anyway collect directly — no
    // slot allocation or locking on the sequential hot path.
    if engine.runs_inline(n) {
        return (0..n).map(f).collect();
    }
    let slots: Vec<Mutex<Option<T>>> = (0..n).map(|_| Mutex::new(None)).collect();
    engine.run(n, &|i| {
        *slots[i].lock().expect("result slot poisoned") = Some(f(i));
    });
    slots
        .into_iter()
        .map(|slot| {
            slot.into_inner().expect("result slot poisoned").expect("engine skipped an index")
        })
        .collect()
}

/// In-order execution on the calling thread — the reference semantics.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Sequential;

impl EvalEngine for Sequential {
    fn name(&self) -> &'static str {
        "sequential"
    }

    fn parallelism(&self) -> usize {
        1
    }

    fn run(&self, n: usize, job: &(dyn Fn(usize) + Sync)) {
        for i in 0..n {
            job(i);
        }
    }
}

/// Work-stealing execution over scoped `std` threads.
///
/// Each `run` call spawns up to `workers` scoped threads that pull job
/// indices from a shared atomic counter. Scoped threads keep the engine
/// free of `unsafe` and of job-lifetime erasure; for the batch sizes the
/// pipeline dispatches (corner sweeps, MC blocks, yield grids) the spawn
/// cost is negligible against simulation cost. Tiny batches are run
/// inline.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Threaded {
    workers: usize,
}

impl Threaded {
    /// Batches smaller than this run inline: scoped-thread spawn costs
    /// tens of microseconds per worker, so small batches of cheap
    /// analytic simulations (e.g. the verifier's first phase-2 blocks)
    /// are faster on the calling thread. Inlining never changes results,
    /// only where the jobs run.
    const INLINE_THRESHOLD: usize = 16;

    /// Creates an engine with a fixed worker count (clamped to ≥ 1).
    pub fn new(workers: usize) -> Self {
        Self { workers: workers.max(1) }
    }

    /// Creates an engine sized to the machine's available parallelism.
    pub fn auto() -> Self {
        Self::new(std::thread::available_parallelism().map_or(1, NonZeroUsize::get))
    }
}

impl EvalEngine for Threaded {
    fn name(&self) -> &'static str {
        "threaded"
    }

    fn parallelism(&self) -> usize {
        self.workers
    }

    fn runs_inline(&self, n: usize) -> bool {
        self.workers.min(n) <= 1 || n < Self::INLINE_THRESHOLD
    }

    fn run(&self, n: usize, job: &(dyn Fn(usize) + Sync)) {
        if self.runs_inline(n) {
            Sequential.run(n, job);
            return;
        }
        let workers = self.workers.min(n);
        let next = AtomicUsize::new(0);
        std::thread::scope(|scope| {
            for _ in 0..workers {
                scope.spawn(|| loop {
                    let i = next.fetch_add(1, Ordering::Relaxed);
                    if i >= n {
                        break;
                    }
                    job(i);
                });
            }
        });
    }
}

/// Engine selection carried in configurations and CLI flags.
///
/// A plain-data stand-in for `Arc<dyn EvalEngine>` that keeps
/// [`GlovaConfig`](crate::optimizer::GlovaConfig) `Clone + PartialEq`
/// and gives bench bins a parseable `--engine` value.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub enum EngineSpec {
    /// In-order execution ([`Sequential`]).
    #[default]
    Sequential,
    /// Scoped-thread execution with the given worker count; `0` means
    /// "size to the machine" ([`Threaded::auto`]).
    Threaded(usize),
}

impl EngineSpec {
    /// Instantiates the engine this spec describes.
    pub fn build(self) -> Arc<dyn EvalEngine> {
        match self {
            Self::Sequential => Arc::new(Sequential),
            Self::Threaded(0) => Arc::new(Threaded::auto()),
            Self::Threaded(workers) => Arc::new(Threaded::new(workers)),
        }
    }

    /// The concrete worker count this spec resolves to: 1 for
    /// [`Sequential`], [`Threaded::auto`]'s sizing for `Threaded(0)`,
    /// `N` otherwise. Bench bins print this so an auto-sized
    /// `--engine threaded` (or an explicit `threaded:0`) shows the
    /// thread count it actually runs with; delegating to the engine
    /// constructors keeps this the same number [`build`](Self::build)
    /// produces.
    pub fn resolved_workers(self) -> usize {
        match self {
            Self::Sequential => 1,
            spec => spec.build().parallelism(),
        }
    }

    /// Parses a CLI flag value: `sequential`, `threaded` (auto-sized) or
    /// `threaded:N`.
    ///
    /// # Errors
    ///
    /// Returns a description of the expected syntax on malformed input.
    pub fn parse(s: &str) -> Result<Self, String> {
        match s {
            "sequential" | "seq" => Ok(Self::Sequential),
            "threaded" => Ok(Self::Threaded(0)),
            _ => match s.strip_prefix("threaded:").map(str::parse) {
                Some(Ok(workers)) => Ok(Self::Threaded(workers)),
                _ => Err(format!(
                    "invalid engine `{s}`: expected `sequential`, `threaded` or `threaded:N`"
                )),
            },
        }
    }
}

impl fmt::Display for EngineSpec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::Sequential => f.write_str("sequential"),
            Self::Threaded(0) => f.write_str("threaded"),
            Self::Threaded(n) => write!(f, "threaded:{n}"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU64;

    #[test]
    fn sequential_runs_in_index_order() {
        let log = Mutex::new(Vec::new());
        Sequential.run(5, &|i| log.lock().unwrap().push(i));
        assert_eq!(*log.lock().unwrap(), vec![0, 1, 2, 3, 4]);
    }

    #[test]
    fn threaded_runs_every_index_exactly_once() {
        for workers in [1, 2, 3, 8] {
            let engine = Threaded::new(workers);
            let counts: Vec<AtomicU64> = (0..97).map(|_| AtomicU64::new(0)).collect();
            engine.run(97, &|i| {
                counts[i].fetch_add(1, Ordering::Relaxed);
            });
            assert!(counts.iter().all(|c| c.load(Ordering::Relaxed) == 1), "workers = {workers}");
        }
    }

    #[test]
    fn map_indexed_matches_across_engines() {
        let f = |i: usize| (i as f64).sqrt() * 3.0 - 1.0;
        let seq = map_indexed(&Sequential, 64, f);
        for workers in [2, 4, 7] {
            let thr = map_indexed(&Threaded::new(workers), 64, f);
            assert_eq!(seq, thr, "workers = {workers}");
        }
    }

    #[test]
    fn map_indexed_empty_batch() {
        let out: Vec<u32> = map_indexed(&Threaded::new(4), 0, |_| unreachable!());
        assert!(out.is_empty());
    }

    #[test]
    fn worker_counts_are_clamped() {
        assert_eq!(Threaded::new(0).parallelism(), 1);
        assert!(Threaded::auto().parallelism() >= 1);
    }

    #[test]
    fn spec_parses_and_displays() {
        assert_eq!(EngineSpec::parse("sequential"), Ok(EngineSpec::Sequential));
        assert_eq!(EngineSpec::parse("seq"), Ok(EngineSpec::Sequential));
        assert_eq!(EngineSpec::parse("threaded"), Ok(EngineSpec::Threaded(0)));
        assert_eq!(EngineSpec::parse("threaded:6"), Ok(EngineSpec::Threaded(6)));
        assert!(EngineSpec::parse("gpu").is_err());
        assert!(EngineSpec::parse("threaded:x").is_err());
        assert_eq!(EngineSpec::Threaded(6).to_string(), "threaded:6");
        assert_eq!(EngineSpec::default().to_string(), "sequential");
    }

    #[test]
    fn spec_builds_matching_engines() {
        assert_eq!(EngineSpec::Sequential.build().name(), "sequential");
        let engine = EngineSpec::Threaded(3).build();
        assert_eq!(engine.name(), "threaded");
        assert_eq!(engine.parallelism(), 3);
    }
}
