//! Post-sign-off Monte-Carlo yield estimation with confidence bounds.
//!
//! Full verification (Algorithm 2) is a pass/fail gate; after a design
//! passes, a designer typically wants a *yield number* — "what fraction of
//! dies meet spec, and how sure are we?" This module runs an independent
//! fresh-die MC campaign over the problem's corners and reports the
//! Clopper–Pearson confidence interval on the pass proportion.

use crate::problem::SizingProblem;
use glova_circuits::spec::SATISFIED_REWARD;
use glova_stats::binomial::clopper_pearson;
use glova_stats::rng::Rng64;

/// Result of a yield-estimation campaign.
#[derive(Debug, Clone, PartialEq)]
pub struct YieldEstimate {
    /// Total Monte-Carlo samples simulated (across all corners).
    pub samples: u64,
    /// Samples that met every constraint.
    pub passes: u64,
    /// Point estimate of yield (pass proportion).
    pub yield_point: f64,
    /// Clopper–Pearson confidence interval at the requested level.
    pub confidence_interval: (f64, f64),
    /// The confidence level used (e.g. 0.95).
    pub confidence: f64,
    /// Worst corner index by per-corner pass rate.
    pub worst_corner: usize,
    /// Pass rate at the worst corner.
    pub worst_corner_yield: f64,
}

impl std::fmt::Display for YieldEstimate {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "yield {:.3}% [{:.3}%, {:.3}%] at {:.0}% confidence ({} / {} samples)",
            self.yield_point * 100.0,
            self.confidence_interval.0 * 100.0,
            self.confidence_interval.1 * 100.0,
            self.confidence * 100.0,
            self.passes,
            self.samples
        )
    }
}

/// Estimates the yield of design `x` with `samples_per_corner` fresh-die
/// MC samples on every corner of the problem's configuration.
///
/// The full `corner × sample` grid is pre-sampled in deterministic order
/// and fanned out through the problem's
/// [`EvalEngine`](crate::engine::EvalEngine) in one batch — the sweep has
/// no early abort, so it parallelizes across the entire campaign and the
/// estimate is engine-independent.
///
/// # Panics
///
/// Panics if `samples_per_corner == 0` or `confidence` is outside `(0,1)`.
pub fn estimate_yield(
    problem: &SizingProblem,
    x: &[f64],
    samples_per_corner: usize,
    confidence: f64,
    rng: &mut Rng64,
) -> YieldEstimate {
    assert!(samples_per_corner > 0, "need at least one sample per corner");
    assert!(confidence > 0.0 && confidence < 1.0, "confidence must be in (0, 1)");
    let per_corner = problem.simulate_corner_grid_independent(x, samples_per_corner, rng);

    let mut passes = 0u64;
    let mut total = 0u64;
    let mut worst_corner = 0usize;
    let mut worst_rate = f64::INFINITY;
    for (ci, outcomes) in per_corner.iter().enumerate() {
        let corner_passes = outcomes.iter().filter(|o| o.reward == SATISFIED_REWARD).count() as u64;
        total += outcomes.len() as u64;
        passes += corner_passes;
        let rate = corner_passes as f64 / samples_per_corner as f64;
        if rate < worst_rate {
            worst_rate = rate;
            worst_corner = ci;
        }
    }
    let (lo, hi) = clopper_pearson(passes, total, 1.0 - confidence);
    YieldEstimate {
        samples: total,
        passes,
        yield_point: passes as f64 / total as f64,
        confidence_interval: (lo, hi),
        confidence,
        worst_corner,
        worst_corner_yield: worst_rate,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use glova_circuits::ToyQuadratic;
    use glova_stats::rng::seeded;
    use glova_variation::config::VerificationMethod;
    use std::sync::Arc;

    fn problem() -> SizingProblem {
        SizingProblem::new(
            Arc::new(ToyQuadratic::standard().with_mismatch_sensitivity(0.05)),
            VerificationMethod::CornerLocalMc,
        )
    }

    #[test]
    fn optimum_yields_near_one() {
        let p = problem();
        let x = ToyQuadratic::standard().optimum().to_vec();
        let mut rng = seeded(1);
        let est = estimate_yield(&p, &x, 30, 0.95, &mut rng);
        assert_eq!(est.samples, 30 * 30);
        assert!(est.yield_point > 0.98, "{est}");
        assert!(est.confidence_interval.0 > 0.9);
        assert!(est.confidence_interval.0 <= est.yield_point);
        assert!(est.confidence_interval.1 >= est.yield_point);
    }

    #[test]
    fn far_design_yields_near_zero() {
        let p = problem();
        let x = vec![0.0; 4];
        let mut rng = seeded(2);
        let est = estimate_yield(&p, &x, 10, 0.95, &mut rng);
        assert!(est.yield_point < 0.05, "{est}");
    }

    #[test]
    fn marginal_design_identifies_worst_corner() {
        // A design offset toward the corner-penalty direction: the worst
        // corner must be one of the SS/0.8V family (the largest penalty).
        let p = problem();
        let mut x = ToyQuadratic::standard().optimum().to_vec();
        x[0] += 0.14;
        let mut rng = seeded(3);
        let est = estimate_yield(&p, &x, 40, 0.95, &mut rng);
        assert!(est.yield_point < 1.0, "design should be marginal: {est}");
        let corner = p.config().corners.corner(est.worst_corner);
        assert!(
            est.worst_corner_yield <= est.yield_point + 1e-12,
            "worst corner rate must not exceed overall"
        );
        // Worst corner must be a low-voltage one for this toy.
        assert!(corner.vdd < 0.85, "unexpected worst corner {corner}");
    }

    #[test]
    fn display_is_informative() {
        let p = problem();
        let x = ToyQuadratic::standard().optimum().to_vec();
        let mut rng = seeded(4);
        let est = estimate_yield(&p, &x, 5, 0.9, &mut rng);
        let s = est.to_string();
        assert!(s.contains("yield"));
        assert!(s.contains("confidence"));
    }
}
