//! Run reports: the quantities the paper's tables and figures are built
//! from.

use std::time::Duration;

/// Per-iteration trace record — the series behind the paper's Fig. 3
/// (reliability-bound estimation over RL iterations).
#[derive(Debug, Clone, PartialEq)]
pub struct IterationTrace {
    /// RL iteration number (1-based).
    pub iteration: usize,
    /// Ensemble-mean critic prediction at the proposed design.
    pub critic_mean: f64,
    /// Risk-sensitive reliability bound `E[Q] + β₁σ[Q]` (Eq. 6).
    pub critic_bound: f64,
    /// Worst-case reward actually sampled this iteration.
    pub sampled_worst: f64,
    /// Corner index the iteration simulated (the current worst corner).
    pub corner_index: usize,
}

/// Outcome of one sizing run.
#[derive(Debug, Clone, PartialEq)]
pub struct RunResult {
    /// Whether full verification passed within the iteration budget.
    pub success: bool,
    /// RL iterations consumed (Table II row "RL Iteration").
    pub rl_iterations: usize,
    /// Total simulations consumed, including initial sampling and
    /// verification (Table II row "# Simulation").
    pub simulations: u64,
    /// Number of full-verification attempts made.
    pub verification_attempts: usize,
    /// Wall-clock time of the run (Table II row "Norm. Runtime" before
    /// normalization).
    pub wall_time: Duration,
    /// The final (verified) design, normalized coordinates.
    pub final_design: Option<Vec<f64>>,
    /// Per-iteration trace (empty unless tracing was enabled).
    pub trace: Vec<IterationTrace>,
}

impl RunResult {
    /// A failed run with the given accounting.
    pub fn failed(rl_iterations: usize, simulations: u64, wall_time: Duration) -> Self {
        Self {
            success: false,
            rl_iterations,
            simulations,
            verification_attempts: 0,
            wall_time,
            final_design: None,
            trace: Vec::new(),
        }
    }
}

impl std::fmt::Display for RunResult {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{status}: {iters} RL iterations, {sims} simulations, {attempts} verification attempts, {ms:.1} ms",
            status = if self.success { "success" } else { "failure" },
            iters = self.rl_iterations,
            sims = self.simulations,
            attempts = self.verification_attempts,
            ms = self.wall_time.as_secs_f64() * 1e3,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn failed_constructor() {
        let r = RunResult::failed(10, 500, Duration::from_millis(20));
        assert!(!r.success);
        assert_eq!(r.rl_iterations, 10);
        assert_eq!(r.simulations, 500);
        assert!(r.final_design.is_none());
    }

    #[test]
    fn display_contains_counts() {
        let r = RunResult::failed(3, 77, Duration::from_millis(5));
        let s = r.to_string();
        assert!(s.contains("failure"));
        assert!(s.contains("77 simulations"));
    }
}
