//! Memoization of simulation outcomes — the evaluation cache.
//!
//! GLOVA's pipeline re-simulates identical `(design, corner, mismatch)`
//! points more often than it first appears: the verifier's phase-2
//! re-sweeps after a failed attempt replay the same seeded condition
//! stream, engine-parity and ablation arms re-run identical campaigns,
//! and yield grids revisit points already visited during verification.
//! [`EvalCache`] memoizes those points with an LRU bound.
//!
//! # Correctness contract
//!
//! A hit returns a **bitwise-identical** clone of the outcome the circuit
//! produced on the original miss. Keys are a word-FNV digest of the
//! exact bit patterns of the design vector, corner and mismatch
//! condition, and every entry additionally stores those input bits — a
//! lookup only hits when they match exactly, so a digest collision is a
//! miss, never an aliased answer. (Keying on a *quantized* design vector
//! was considered and rejected: with exact-bit validation required
//! anyway, coarser keys cannot produce extra hits — they can only make
//! distinct near-identical points fight over one map slot.) The cache
//! can change wall time, never results. `tests/eval_cache.rs` locks
//! this in.
//!
//! The [simulation counter](crate::problem::SizingProblem::simulations)
//! counts *requests* and is unaffected by caching — accounting stays
//! identical across engines and cache configurations, while
//! [`CacheStats::misses`] counts the circuit evaluations actually paid
//! for.

use crate::problem::SimOutcome;
use glova_stats::hash::Fnv1a;
use glova_variation::corner::{ProcessCorner, PvtCorner};
use glova_variation::sampler::MismatchVector;
use std::collections::HashMap;
use std::hash::{BuildHasherDefault, Hasher};
use std::sync::atomic::{AtomicU64, AtomicU8, Ordering};
use std::sync::Mutex;

/// Pass-through hasher: cache keys are already 64-bit FNV digests, so
/// running them through SipHash again would only burn lookup-path cycles.
#[derive(Debug, Default, Clone, Copy)]
struct IdentityHasher(u64);

impl Hasher for IdentityHasher {
    fn finish(&self) -> u64 {
        self.0
    }

    fn write(&mut self, _bytes: &[u8]) {
        unreachable!("cache keys hash via write_u64");
    }

    fn write_u64(&mut self, v: u64) {
        self.0 = v;
    }
}

type KeyMap = HashMap<u64, Entry, BuildHasherDefault<IdentityHasher>>;

/// When the cache actually memoizes.
///
/// Memoization is only a win when one circuit evaluation costs more than
/// the digest + locked-map traffic of a lookup/insert round trip. The
/// analytic testcase models evaluate in ~1 µs — hashing them costs more
/// than recomputing (measured 0.84× on `verify_resweep` with the cache
/// unconditionally on), while SPICE-backed evaluations cost hundreds of
/// µs and cache handsomely.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum CachePolicy {
    /// Measure the first few evaluations, then keep memoizing only when
    /// the mean evaluation cost clears
    /// [`EvalCache::AUTO_MIN_COMPUTE_NANOS`]; cheap problems degrade to
    /// pass-through (no digest, no lock).
    #[default]
    Auto,
    /// Always memoize (the pre-policy behavior; what the hit-rate
    /// scenarios measure).
    On,
    /// Never memoize: [`EvalCache::get_or_compute`] evaluates directly.
    Off,
}

/// Evaluation-cache tuning knobs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EvalCacheConfig {
    /// Maximum resident entries before LRU eviction.
    pub capacity: usize,
    /// Memoization policy (cost-probing [`CachePolicy::Auto`] by
    /// default).
    pub policy: CachePolicy,
}

impl EvalCacheConfig {
    /// Default bound: generous for verification sweeps (a full 30-corner
    /// × 100-sample campaign is 3 000 points) without unbounded growth.
    pub const DEFAULT_CAPACITY: usize = 8192;

    /// Default config with an explicit policy.
    pub fn with_policy(policy: CachePolicy) -> Self {
        Self { policy, ..Self::default() }
    }
}

impl Default for EvalCacheConfig {
    fn default() -> Self {
        Self { capacity: Self::DEFAULT_CAPACITY, policy: CachePolicy::default() }
    }
}

/// Hit/miss/eviction counters (monotonic over the cache's lifetime).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct CacheStats {
    /// Lookups answered from the cache.
    pub hits: u64,
    /// Lookups that fell through to a circuit evaluation.
    pub misses: u64,
    /// Entries displaced by the LRU bound.
    pub evictions: u64,
}

impl CacheStats {
    /// Total lookups.
    pub fn lookups(&self) -> u64 {
        self.hits + self.misses
    }

    /// Fraction of lookups answered from the cache (0 when none).
    pub fn hit_rate(&self) -> f64 {
        if self.lookups() == 0 {
            0.0
        } else {
            self.hits as f64 / self.lookups() as f64
        }
    }
}

/// Resident entry: the exact inputs it was computed from, the outcome,
/// and its last-use tick. The map key is the 64-bit word-FNV of
/// (design bits, corner bits, mismatch bits); a digest collision between
/// distinct points is caught by the exact-bits validation below and
/// treated as a miss (the newer point overwrites on insert).
#[derive(Debug, Clone)]
struct Entry {
    x_bits: Box<[u64]>,
    h_bits: Box<[u64]>,
    process: ProcessCorner,
    vdd_bits: u64,
    temp_bits: u64,
    outcome: SimOutcome,
    tick: u64,
}

impl Entry {
    fn matches(&self, x: &[f64], corner: &PvtCorner, h: &MismatchVector) -> bool {
        self.process == corner.process
            && self.vdd_bits == corner.vdd.to_bits()
            && self.temp_bits == corner.temp_c.to_bits()
            && self.x_bits.iter().copied().eq(x.iter().map(|v| v.to_bits()))
            && self.h_bits.iter().copied().eq(h.values().iter().map(|v| v.to_bits()))
    }
}

/// Resolved memoization modes for the `EvalCache::mode` atomic:
/// probing ([`CachePolicy::Auto`] before its decision), memoize, or
/// pass-through.
const MODE_PROBING: u8 = 0;
const MODE_ON: u8 = 1;
const MODE_OFF: u8 = 2;

/// A bounded, thread-safe memo table over simulation points.
///
/// Shared by every worker of a [`Threaded`](crate::engine::Threaded)
/// engine; lookups and inserts take a single mutex, while circuit
/// evaluations (the expensive part) happen outside it — two threads
/// racing on the same point at worst both evaluate and insert the same
/// deterministic value.
///
/// # Per-worker safety under SPICE-backed circuits
///
/// With SPICE-backed circuits the closure passed to
/// [`get_or_compute`](Self::get_or_compute) checks a per-worker solver
/// out of the circuit's `OpSolverPool`; because the evaluation runs
/// outside the cache lock, a worker holding a solver never blocks on
/// another worker's lookup, and the lock-ordering is always
/// cache-then-pool (never nested the other way), so the two mutexes
/// cannot deadlock. The [`CachePolicy::Auto`] probe's timing votes are
/// aggregated atomically across workers; the probe's on/off *decision*
/// may differ run to run under scheduler noise, but outcomes never do —
/// a hit returns the bitwise-identical outcome a recompute would
/// produce, which is what keeps the parity batteries green across every
/// `CachePolicy` × engine combination.
#[derive(Debug)]
pub struct EvalCache {
    map: Mutex<KeyMap>,
    capacity: usize,
    tick: AtomicU64,
    hits: AtomicU64,
    misses: AtomicU64,
    evictions: AtomicU64,
    /// Resolved memoization mode (`MODE_*`); starts at `MODE_PROBING`
    /// only under [`CachePolicy::Auto`].
    mode: AtomicU8,
    /// Auto-probe accounting: evaluations timed so far and their summed
    /// cost.
    probe_count: AtomicU64,
    probe_nanos: AtomicU64,
}

impl EvalCache {
    /// Memoization pays when one evaluation costs at least this much —
    /// below it, the FNV digest plus the locked map round trip rivals
    /// the evaluation itself (analytic circuits evaluate in ~1 µs).
    pub const AUTO_MIN_COMPUTE_NANOS: u64 = 2_000;

    /// Evaluations the [`CachePolicy::Auto`] probe times before
    /// deciding. During the probe the cache memoizes normally, so the
    /// decision costs nothing beyond a few clock reads.
    pub const AUTO_PROBE_EVALS: u64 = 32;

    /// Creates an empty cache (capacity clamped to ≥ 1).
    pub fn new(config: EvalCacheConfig) -> Self {
        let mode = match config.policy {
            CachePolicy::Auto => MODE_PROBING,
            CachePolicy::On => MODE_ON,
            CachePolicy::Off => MODE_OFF,
        };
        Self {
            map: Mutex::new(KeyMap::default()),
            capacity: config.capacity.max(1),
            tick: AtomicU64::new(0),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            evictions: AtomicU64::new(0),
            mode: AtomicU8::new(mode),
            probe_count: AtomicU64::new(0),
            probe_nanos: AtomicU64::new(0),
        }
    }

    /// The configured LRU bound.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Whether [`Self::get_or_compute`] currently memoizes (`false` once
    /// an [`CachePolicy::Auto`] probe has measured evaluations too cheap
    /// to be worth hashing).
    pub fn memoizing(&self) -> bool {
        self.mode.load(Ordering::Relaxed) != MODE_OFF
    }

    /// Resident entries.
    pub fn len(&self) -> usize {
        self.map.lock().expect("cache poisoned").len()
    }

    /// Whether the cache holds no entries.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Counter snapshot.
    pub fn stats(&self) -> CacheStats {
        CacheStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            evictions: self.evictions.load(Ordering::Relaxed),
        }
    }

    /// One allocation-free word-FNV pass over the exact bit patterns of
    /// (design, corner, mismatch).
    fn key(&self, x: &[f64], corner: &PvtCorner, h: &MismatchVector) -> u64 {
        let mut hasher = Fnv1a::new();
        for &v in x {
            hasher.write_word(v.to_bits());
        }
        hasher.write_word(corner.process as u64);
        hasher.write_word(corner.vdd.to_bits());
        hasher.write_word(corner.temp_c.to_bits());
        for &v in h.values() {
            hasher.write_word(v.to_bits());
        }
        hasher.finish()
    }

    /// Looks up a point, counting the hit or miss.
    pub fn lookup(&self, x: &[f64], corner: &PvtCorner, h: &MismatchVector) -> Option<SimOutcome> {
        self.lookup_keyed(self.key(x, corner, h), x, corner, h)
    }

    fn lookup_keyed(
        &self,
        key: u64,
        x: &[f64],
        corner: &PvtCorner,
        h: &MismatchVector,
    ) -> Option<SimOutcome> {
        let mut map = self.map.lock().expect("cache poisoned");
        if let Some(entry) = map.get_mut(&key) {
            // Exact-bits validation: a digest collision is a miss, never
            // an aliased answer.
            if entry.matches(x, corner, h) {
                entry.tick = self.tick.fetch_add(1, Ordering::Relaxed) + 1;
                self.hits.fetch_add(1, Ordering::Relaxed);
                return Some(entry.outcome.clone());
            }
        }
        self.misses.fetch_add(1, Ordering::Relaxed);
        None
    }

    /// Inserts (or replaces) a point, evicting the least-recently-used
    /// entry when full.
    pub fn insert(&self, x: &[f64], corner: &PvtCorner, h: &MismatchVector, outcome: SimOutcome) {
        self.insert_keyed(self.key(x, corner, h), x, corner, h, outcome);
    }

    fn insert_keyed(
        &self,
        key: u64,
        x: &[f64],
        corner: &PvtCorner,
        h: &MismatchVector,
        outcome: SimOutcome,
    ) {
        let entry = Entry {
            x_bits: x.iter().map(|v| v.to_bits()).collect(),
            h_bits: h.values().iter().map(|v| v.to_bits()).collect(),
            process: corner.process,
            vdd_bits: corner.vdd.to_bits(),
            temp_bits: corner.temp_c.to_bits(),
            outcome,
            tick: self.tick.fetch_add(1, Ordering::Relaxed) + 1,
        };
        let mut map = self.map.lock().expect("cache poisoned");
        if map.len() >= self.capacity && !map.contains_key(&key) {
            // O(n) LRU scan: eviction is rare relative to the simulation
            // cost a resident entry amortizes, so a linked-list LRU isn't
            // worth the per-hit bookkeeping.
            if let Some(&oldest) = map.iter().min_by_key(|(_, e)| e.tick).map(|(k, _)| k) {
                map.remove(&oldest);
                self.evictions.fetch_add(1, Ordering::Relaxed);
            }
        }
        map.insert(key, entry);
    }

    /// The memoizing entry point: one key computation, `compute` only on
    /// a miss (and outside the lock, so concurrent workers never block on
    /// a simulation).
    ///
    /// Under [`CachePolicy::Auto`] the first
    /// [`AUTO_PROBE_EVALS`](Self::AUTO_PROBE_EVALS) evaluations are
    /// timed (while memoizing normally); once the probe shows the mean
    /// evaluation under
    /// [`AUTO_MIN_COMPUTE_NANOS`](Self::AUTO_MIN_COMPUTE_NANOS) the
    /// cache degrades to pass-through — no digest, no lock, the
    /// evaluation still counted as a miss so
    /// [`CacheStats::misses`] keeps meaning "circuit evaluations
    /// actually executed". Outcomes are identical under every mode; only
    /// wall time changes.
    pub fn get_or_compute(
        &self,
        x: &[f64],
        corner: &PvtCorner,
        h: &MismatchVector,
        compute: impl FnOnce() -> SimOutcome,
    ) -> SimOutcome {
        match self.mode.load(Ordering::Relaxed) {
            MODE_OFF => {
                self.misses.fetch_add(1, Ordering::Relaxed);
                compute()
            }
            MODE_PROBING => {
                let key = self.key(x, corner, h);
                if let Some(outcome) = self.lookup_keyed(key, x, corner, h) {
                    return outcome;
                }
                let start = std::time::Instant::now();
                let outcome = compute();
                let nanos = start.elapsed().as_nanos().min(u128::from(u64::MAX)) as u64;
                self.probe_nanos.fetch_add(nanos, Ordering::Relaxed);
                let timed = self.probe_count.fetch_add(1, Ordering::Relaxed) + 1;
                if timed >= Self::AUTO_PROBE_EVALS {
                    let mean = self.probe_nanos.load(Ordering::Relaxed) / timed;
                    let decided =
                        if mean < Self::AUTO_MIN_COMPUTE_NANOS { MODE_OFF } else { MODE_ON };
                    // Racing probers agree on direction within noise; a
                    // compare_exchange keeps the first decision.
                    let _ = self.mode.compare_exchange(
                        MODE_PROBING,
                        decided,
                        Ordering::Relaxed,
                        Ordering::Relaxed,
                    );
                }
                self.insert_keyed(key, x, corner, h, outcome.clone());
                outcome
            }
            _ => {
                let key = self.key(x, corner, h);
                if let Some(outcome) = self.lookup_keyed(key, x, corner, h) {
                    return outcome;
                }
                let outcome = compute();
                self.insert_keyed(key, x, corner, h, outcome.clone());
                outcome
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn outcome(v: f64) -> SimOutcome {
        SimOutcome { metrics: vec![v, v + 1.0], reward: -v }
    }

    fn corner() -> PvtCorner {
        PvtCorner::typical()
    }

    #[test]
    fn miss_then_hit_roundtrips_exact_outcome() {
        let cache = EvalCache::new(EvalCacheConfig::default());
        let x = [0.25, 0.75];
        let h = MismatchVector::from_values(vec![1e-3, -2e-3]);
        assert!(cache.lookup(&x, &corner(), &h).is_none());
        cache.insert(&x, &corner(), &h, outcome(3.5));
        assert_eq!(cache.lookup(&x, &corner(), &h), Some(outcome(3.5)));
        let stats = cache.stats();
        assert_eq!((stats.hits, stats.misses), (1, 1));
        assert_eq!(stats.hit_rate(), 0.5);
    }

    #[test]
    fn near_identical_designs_are_distinct_points() {
        // Designs differing in a single bit are distinct cache points:
        // the second must miss, and must not displace the first.
        let cache = EvalCache::new(EvalCacheConfig { capacity: 16, ..Default::default() });
        let h = MismatchVector::nominal(2);
        let x_a = [0.5, 0.5];
        let x_b = [0.5 + 1e-16, 0.5];
        cache.insert(&x_a, &corner(), &h, outcome(1.0));
        assert!(cache.lookup(&x_b, &corner(), &h).is_none());
        cache.insert(&x_b, &corner(), &h, outcome(2.0));
        assert_eq!(cache.lookup(&x_a, &corner(), &h), Some(outcome(1.0)));
        assert_eq!(cache.lookup(&x_b, &corner(), &h), Some(outcome(2.0)));
        assert_eq!(cache.len(), 2);
    }

    #[test]
    fn distinct_corners_and_mismatch_are_distinct_points() {
        let cache = EvalCache::new(EvalCacheConfig::default());
        let x = [0.4];
        let h0 = MismatchVector::nominal(1);
        let h1 = MismatchVector::from_values(vec![1e-3]);
        cache.insert(&x, &corner(), &h0, outcome(1.0));
        let other = PvtCorner { vdd: 0.8, ..corner() };
        assert!(cache.lookup(&x, &other, &h0).is_none());
        assert!(cache.lookup(&x, &corner(), &h1).is_none());
        assert_eq!(cache.lookup(&x, &corner(), &h0), Some(outcome(1.0)));
    }

    #[test]
    fn lru_evicts_least_recently_used() {
        let cache = EvalCache::new(EvalCacheConfig { capacity: 2, ..Default::default() });
        let h = MismatchVector::nominal(1);
        cache.insert(&[0.1], &corner(), &h, outcome(1.0));
        cache.insert(&[0.2], &corner(), &h, outcome(2.0));
        // Touch 0.1 so 0.2 becomes the LRU entry.
        assert!(cache.lookup(&[0.1], &corner(), &h).is_some());
        cache.insert(&[0.3], &corner(), &h, outcome(3.0));
        assert_eq!(cache.len(), 2);
        assert_eq!(cache.stats().evictions, 1);
        assert!(cache.lookup(&[0.2], &corner(), &h).is_none(), "LRU entry evicted");
        assert!(cache.lookup(&[0.1], &corner(), &h).is_some());
        assert!(cache.lookup(&[0.3], &corner(), &h).is_some());
    }

    #[test]
    fn capacity_clamped_to_one() {
        let cache = EvalCache::new(EvalCacheConfig { capacity: 0, ..Default::default() });
        assert_eq!(cache.capacity(), 1);
        let h = MismatchVector::nominal(1);
        cache.insert(&[0.1], &corner(), &h, outcome(1.0));
        cache.insert(&[0.2], &corner(), &h, outcome(2.0));
        assert_eq!(cache.len(), 1);
    }

    #[test]
    fn empty_stats_are_zero() {
        let cache = EvalCache::new(EvalCacheConfig::default());
        assert!(cache.is_empty());
        assert_eq!(cache.stats().hit_rate(), 0.0);
        assert_eq!(cache.stats().lookups(), 0);
    }

    #[test]
    fn policy_off_bypasses_but_counts_evaluations() {
        let cache = EvalCache::new(EvalCacheConfig::with_policy(CachePolicy::Off));
        assert!(!cache.memoizing());
        let h = MismatchVector::nominal(1);
        let mut evals = 0;
        for _ in 0..3 {
            let got = cache.get_or_compute(&[0.5], &corner(), &h, || {
                evals += 1;
                outcome(1.0)
            });
            assert_eq!(got, outcome(1.0));
        }
        assert_eq!(evals, 3, "pass-through recomputes every time");
        assert!(cache.is_empty(), "nothing is memoized");
        let stats = cache.stats();
        assert_eq!(stats.misses, 3, "misses still count executed evaluations");
        assert_eq!(stats.hits, 0);
    }

    #[test]
    fn policy_on_always_memoizes() {
        let cache = EvalCache::new(EvalCacheConfig::with_policy(CachePolicy::On));
        assert!(cache.memoizing());
        let h = MismatchVector::nominal(1);
        let mut evals = 0;
        for _ in 0..3 {
            cache.get_or_compute(&[0.5], &corner(), &h, || {
                evals += 1;
                outcome(1.0)
            });
        }
        assert_eq!(evals, 1, "one miss, then hits");
        assert_eq!(cache.stats().hits, 2);
    }

    #[test]
    fn auto_probe_turns_off_for_cheap_evaluations() {
        // Instant-returning closures are far below the nanos floor, so
        // once the probe window closes the cache must degrade to
        // pass-through.
        let cache = EvalCache::new(EvalCacheConfig::default());
        let h = MismatchVector::nominal(1);
        for i in 0..EvalCache::AUTO_PROBE_EVALS {
            let x = [i as f64];
            cache.get_or_compute(&x, &corner(), &h, || outcome(i as f64));
        }
        assert!(!cache.memoizing(), "cheap problem must stop memoizing after the probe");
        // Previously cached points are no longer consulted; the closure
        // runs again.
        let mut reran = false;
        cache.get_or_compute(&[0.0], &corner(), &h, || {
            reran = true;
            outcome(0.0)
        });
        assert!(reran);
    }

    #[test]
    fn auto_probe_keeps_memoizing_expensive_evaluations() {
        let cache = EvalCache::new(EvalCacheConfig::default());
        let h = MismatchVector::nominal(1);
        let cost = std::time::Duration::from_nanos(4 * EvalCache::AUTO_MIN_COMPUTE_NANOS);
        for i in 0..EvalCache::AUTO_PROBE_EVALS {
            let x = [i as f64];
            cache.get_or_compute(&x, &corner(), &h, || {
                std::thread::sleep(cost);
                outcome(i as f64)
            });
        }
        assert!(cache.memoizing(), "expensive problem keeps the cache on");
        let mut reran = false;
        cache.get_or_compute(&[0.0], &corner(), &h, || {
            reran = true;
            outcome(0.0)
        });
        assert!(!reran, "memoized point must hit");
    }
}
