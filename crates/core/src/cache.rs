//! Memoization of simulation outcomes — the evaluation cache.
//!
//! GLOVA's pipeline re-simulates identical `(design, corner, mismatch)`
//! points more often than it first appears: the verifier's phase-2
//! re-sweeps after a failed attempt replay the same seeded condition
//! stream, engine-parity and ablation arms re-run identical campaigns,
//! and yield grids revisit points already visited during verification.
//! [`EvalCache`] memoizes those points with an LRU bound.
//!
//! # Correctness contract
//!
//! A hit returns a **bitwise-identical** clone of the outcome the circuit
//! produced on the original miss. Keys are a word-FNV digest of the
//! exact bit patterns of the design vector, corner and mismatch
//! condition, and every entry additionally stores those input bits — a
//! lookup only hits when they match exactly, so a digest collision is a
//! miss, never an aliased answer. (Keying on a *quantized* design vector
//! was considered and rejected: with exact-bit validation required
//! anyway, coarser keys cannot produce extra hits — they can only make
//! distinct near-identical points fight over one map slot.) The cache
//! can change wall time, never results. `tests/eval_cache.rs` locks
//! this in.
//!
//! The [simulation counter](crate::problem::SizingProblem::simulations)
//! counts *requests* and is unaffected by caching — accounting stays
//! identical across engines and cache configurations, while
//! [`CacheStats::misses`] counts the circuit evaluations actually paid
//! for.

use crate::problem::SimOutcome;
pub use glova_spice::registry::RegistryConfig;
use glova_stats::hash::Fnv1a;
use glova_variation::corner::{ProcessCorner, PvtCorner};
use glova_variation::sampler::MismatchVector;
use std::collections::HashMap;
use std::hash::{BuildHasherDefault, Hasher};
use std::sync::atomic::{AtomicU64, AtomicU8, Ordering};
use std::sync::{Arc, Mutex, OnceLock};
use std::time::Instant;

/// Pass-through hasher: cache keys are already 64-bit FNV digests, so
/// running them through SipHash again would only burn lookup-path cycles.
#[derive(Debug, Default, Clone, Copy)]
struct IdentityHasher(u64);

impl Hasher for IdentityHasher {
    fn finish(&self) -> u64 {
        self.0
    }

    fn write(&mut self, _bytes: &[u8]) {
        unreachable!("cache keys hash via write_u64");
    }

    fn write_u64(&mut self, v: u64) {
        self.0 = v;
    }
}

type KeyMap = HashMap<u64, Entry, BuildHasherDefault<IdentityHasher>>;

/// When the cache actually memoizes.
///
/// Memoization is only a win when one circuit evaluation costs more than
/// the digest + locked-map traffic of a lookup/insert round trip. The
/// analytic testcase models evaluate in ~1 µs — hashing them costs more
/// than recomputing (measured 0.84× on `verify_resweep` with the cache
/// unconditionally on), while SPICE-backed evaluations cost hundreds of
/// µs and cache handsomely.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum CachePolicy {
    /// Measure the first few evaluations, then keep memoizing only when
    /// the mean evaluation cost clears
    /// [`EvalCache::AUTO_MIN_COMPUTE_NANOS`]; cheap problems degrade to
    /// pass-through (no digest, no lock).
    #[default]
    Auto,
    /// Always memoize (the pre-policy behavior; what the hit-rate
    /// scenarios measure).
    On,
    /// Never memoize: [`EvalCache::get_or_compute`] evaluates directly.
    Off,
}

/// Evaluation-cache tuning knobs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EvalCacheConfig {
    /// Maximum resident entries before LRU eviction (summed over shards).
    pub capacity: usize,
    /// Memoization policy (cost-probing [`CachePolicy::Auto`] by
    /// default).
    pub policy: CachePolicy,
    /// Lock shards the key space is striped over (clamped to
    /// `1..=capacity`). One shard recovers the strict global-LRU order;
    /// the default spreads concurrent lookups over
    /// [`Self::DEFAULT_SHARDS`] independent mutexes.
    pub shards: usize,
}

impl EvalCacheConfig {
    /// Default bound: generous for verification sweeps (a full 30-corner
    /// × 100-sample campaign is 3 000 points) without unbounded growth.
    pub const DEFAULT_CAPACITY: usize = 8192;

    /// Default shard count. A single coarse map mutex serializes every
    /// lookup of every worker of every concurrent campaign once the
    /// cache is a process-wide registry resident; 8 shards keep the
    /// critical sections disjoint for typical fleet widths while the
    /// per-shard LRU stays a good approximation of the global one.
    pub const DEFAULT_SHARDS: usize = 8;

    /// Default config with an explicit policy.
    pub fn with_policy(policy: CachePolicy) -> Self {
        Self { policy, ..Self::default() }
    }

    /// Overrides the shard count (builder style).
    pub fn with_shards(mut self, shards: usize) -> Self {
        self.shards = shards;
        self
    }
}

impl Default for EvalCacheConfig {
    fn default() -> Self {
        Self {
            capacity: Self::DEFAULT_CAPACITY,
            policy: CachePolicy::default(),
            shards: Self::DEFAULT_SHARDS,
        }
    }
}

/// Hit/miss/eviction counters (monotonic over the cache's lifetime).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct CacheStats {
    /// Lookups answered from the cache.
    pub hits: u64,
    /// Lookups that fell through to a circuit evaluation.
    pub misses: u64,
    /// Entries displaced by the LRU bound.
    pub evictions: u64,
}

impl CacheStats {
    /// Total lookups.
    pub fn lookups(&self) -> u64 {
        self.hits + self.misses
    }

    /// Fraction of lookups answered from the cache (0 when none).
    pub fn hit_rate(&self) -> f64 {
        if self.lookups() == 0 {
            0.0
        } else {
            self.hits as f64 / self.lookups() as f64
        }
    }
}

/// Resident entry: the exact inputs it was computed from, the outcome,
/// and its last-use tick. The map key is the 64-bit word-FNV of
/// (design bits, corner bits, mismatch bits); a digest collision between
/// distinct points is caught by the exact-bits validation below and
/// treated as a miss (the newer point overwrites on insert).
#[derive(Debug, Clone)]
struct Entry {
    x_bits: Box<[u64]>,
    h_bits: Box<[u64]>,
    process: ProcessCorner,
    vdd_bits: u64,
    temp_bits: u64,
    outcome: SimOutcome,
    tick: u64,
}

impl Entry {
    fn matches(&self, x: &[f64], corner: &PvtCorner, h: &MismatchVector) -> bool {
        self.process == corner.process
            && self.vdd_bits == corner.vdd.to_bits()
            && self.temp_bits == corner.temp_c.to_bits()
            && self.x_bits.iter().copied().eq(x.iter().map(|v| v.to_bits()))
            && self.h_bits.iter().copied().eq(h.values().iter().map(|v| v.to_bits()))
    }
}

/// Resolved memoization modes for the `EvalCache::mode` atomic:
/// probing ([`CachePolicy::Auto`] before its decision), memoize, or
/// pass-through.
const MODE_PROBING: u8 = 0;
const MODE_ON: u8 = 1;
const MODE_OFF: u8 = 2;

/// A bounded, thread-safe memo table over simulation points.
///
/// Shared by every worker of a [`Threaded`](crate::engine::Threaded)
/// engine — and, when resident in the process-wide
/// [`CacheRegistry`], by every worker of every concurrent campaign on
/// the same circuit. The key space is striped over
/// [`EvalCacheConfig::shards`] independently locked shards (selected by
/// key bits, so a given point always resolves to the same shard);
/// lookups and inserts lock only their shard, while circuit evaluations
/// (the expensive part) happen outside any lock — two threads racing on
/// the same point at worst both evaluate and insert the same
/// deterministic value. Each shard runs its own LRU bound of
/// `capacity / shards`; with one shard this degenerates to the exact
/// global LRU order.
///
/// # Counter accuracy (the `Relaxed` audit)
///
/// `tick`, `hits`, `misses` and `evictions` are `AtomicU64`s updated
/// with `fetch_add(Relaxed)`. A relaxed atomic RMW cannot lose updates —
/// every `fetch_add` is serialized on the cell — so the counters are
/// exact under any concurrency; `Relaxed` only waives ordering *between*
/// cells, which nothing here relies on ([`Self::stats`] reads the three
/// counters non-atomically, so a snapshot taken mid-lookup may be torn
/// by one in-flight event — a display artifact, not drift; totals are
/// exact once the dispatch quiesces, which is what the accounting tests
/// assert). The LRU `tick` is allocated from the same atomic, so ticks
/// are unique across shards and recency comparisons stay globally
/// meaningful.
///
/// # Per-worker safety under SPICE-backed circuits
///
/// With SPICE-backed circuits the closure passed to
/// [`get_or_compute`](Self::get_or_compute) checks a per-worker solver
/// out of the circuit's `OpSolverPool`; because the evaluation runs
/// outside the cache lock, a worker holding a solver never blocks on
/// another worker's lookup, and the lock-ordering is always
/// cache-then-pool (never nested the other way), so the two mutexes
/// cannot deadlock. The [`CachePolicy::Auto`] probe's timing votes are
/// aggregated atomically across workers; the probe's on/off *decision*
/// may differ run to run under scheduler noise, but outcomes never do —
/// a hit returns the bitwise-identical outcome a recompute would
/// produce, which is what keeps the parity batteries green across every
/// `CachePolicy` × engine combination.
#[derive(Debug)]
pub struct EvalCache {
    shards: Box<[Mutex<KeyMap>]>,
    /// LRU bound per shard; the total bound is `shards.len() ×` this.
    shard_capacity: usize,
    capacity: usize,
    tick: AtomicU64,
    hits: AtomicU64,
    misses: AtomicU64,
    evictions: AtomicU64,
    /// Resolved memoization mode (`MODE_*`); starts at `MODE_PROBING`
    /// only under [`CachePolicy::Auto`].
    mode: AtomicU8,
    /// Auto-probe accounting: evaluations timed so far and their summed
    /// cost.
    probe_count: AtomicU64,
    probe_nanos: AtomicU64,
}

impl EvalCache {
    /// Memoization pays when one evaluation costs at least this much —
    /// below it, the FNV digest plus the locked map round trip rivals
    /// the evaluation itself (analytic circuits evaluate in ~1 µs).
    pub const AUTO_MIN_COMPUTE_NANOS: u64 = 2_000;

    /// Evaluations the [`CachePolicy::Auto`] probe times before
    /// deciding. During the probe the cache memoizes normally, so the
    /// decision costs nothing beyond a few clock reads.
    pub const AUTO_PROBE_EVALS: u64 = 32;

    /// Creates an empty cache (capacity clamped to ≥ 1, shard count
    /// clamped to `1..=capacity` so per-shard capacities stay ≥ 1).
    pub fn new(config: EvalCacheConfig) -> Self {
        let mode = match config.policy {
            CachePolicy::Auto => MODE_PROBING,
            CachePolicy::On => MODE_ON,
            CachePolicy::Off => MODE_OFF,
        };
        let capacity = config.capacity.max(1);
        let shard_count = config.shards.clamp(1, capacity);
        Self {
            shards: (0..shard_count).map(|_| Mutex::new(KeyMap::default())).collect(),
            shard_capacity: capacity.div_ceil(shard_count),
            capacity,
            tick: AtomicU64::new(0),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            evictions: AtomicU64::new(0),
            mode: AtomicU8::new(mode),
            probe_count: AtomicU64::new(0),
            probe_nanos: AtomicU64::new(0),
        }
    }

    /// The configured LRU bound (summed over shards).
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// The resolved shard count.
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// The shard a key is striped to. The map's `IdentityHasher` feeds
    /// the key's *low* bits to the bucket index, so the stripe reads the
    /// *high* bits — shard choice and in-shard placement stay
    /// uncorrelated.
    fn shard(&self, key: u64) -> &Mutex<KeyMap> {
        &self.shards[(key >> 48) as usize % self.shards.len()]
    }

    /// Whether [`Self::get_or_compute`] currently memoizes (`false` once
    /// an [`CachePolicy::Auto`] probe has measured evaluations too cheap
    /// to be worth hashing).
    pub fn memoizing(&self) -> bool {
        self.mode.load(Ordering::Relaxed) != MODE_OFF
    }

    /// Resident entries (summed over shards).
    pub fn len(&self) -> usize {
        self.shards.iter().map(|s| s.lock().expect("cache poisoned").len()).sum()
    }

    /// Whether the cache holds no entries.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Drops every resident entry (counters are untouched).
    pub fn clear(&self) {
        for shard in &self.shards {
            shard.lock().expect("cache poisoned").clear();
        }
    }

    /// Counter snapshot.
    pub fn stats(&self) -> CacheStats {
        CacheStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            evictions: self.evictions.load(Ordering::Relaxed),
        }
    }

    /// One allocation-free word-FNV pass over the exact bit patterns of
    /// (design, corner, mismatch).
    fn key(&self, x: &[f64], corner: &PvtCorner, h: &MismatchVector) -> u64 {
        let mut hasher = Fnv1a::new();
        for &v in x {
            hasher.write_word(v.to_bits());
        }
        hasher.write_word(corner.process as u64);
        hasher.write_word(corner.vdd.to_bits());
        hasher.write_word(corner.temp_c.to_bits());
        for &v in h.values() {
            hasher.write_word(v.to_bits());
        }
        hasher.finish()
    }

    /// Looks up a point, counting the hit or miss.
    pub fn lookup(&self, x: &[f64], corner: &PvtCorner, h: &MismatchVector) -> Option<SimOutcome> {
        self.lookup_keyed(self.key(x, corner, h), x, corner, h)
    }

    fn lookup_keyed(
        &self,
        key: u64,
        x: &[f64],
        corner: &PvtCorner,
        h: &MismatchVector,
    ) -> Option<SimOutcome> {
        let mut map = self.shard(key).lock().expect("cache poisoned");
        if let Some(entry) = map.get_mut(&key) {
            // Exact-bits validation: a digest collision is a miss, never
            // an aliased answer.
            if entry.matches(x, corner, h) {
                entry.tick = self.tick.fetch_add(1, Ordering::Relaxed) + 1;
                self.hits.fetch_add(1, Ordering::Relaxed);
                return Some(entry.outcome.clone());
            }
        }
        self.misses.fetch_add(1, Ordering::Relaxed);
        None
    }

    /// Inserts (or replaces) a point, evicting the least-recently-used
    /// entry when full.
    pub fn insert(&self, x: &[f64], corner: &PvtCorner, h: &MismatchVector, outcome: SimOutcome) {
        self.insert_keyed(self.key(x, corner, h), x, corner, h, outcome);
    }

    fn insert_keyed(
        &self,
        key: u64,
        x: &[f64],
        corner: &PvtCorner,
        h: &MismatchVector,
        outcome: SimOutcome,
    ) {
        let entry = Entry {
            x_bits: x.iter().map(|v| v.to_bits()).collect(),
            h_bits: h.values().iter().map(|v| v.to_bits()).collect(),
            process: corner.process,
            vdd_bits: corner.vdd.to_bits(),
            temp_bits: corner.temp_c.to_bits(),
            outcome,
            tick: self.tick.fetch_add(1, Ordering::Relaxed) + 1,
        };
        let mut map = self.shard(key).lock().expect("cache poisoned");
        if map.len() >= self.shard_capacity && !map.contains_key(&key) {
            // O(n) LRU scan over the shard: eviction is rare relative to
            // the simulation cost a resident entry amortizes, so a
            // linked-list LRU isn't worth the per-hit bookkeeping.
            if let Some(&oldest) = map.iter().min_by_key(|(_, e)| e.tick).map(|(k, _)| k) {
                map.remove(&oldest);
                self.evictions.fetch_add(1, Ordering::Relaxed);
            }
        }
        map.insert(key, entry);
    }

    /// The memoizing entry point: one key computation, `compute` only on
    /// a miss (and outside the lock, so concurrent workers never block on
    /// a simulation).
    ///
    /// Under [`CachePolicy::Auto`] the first
    /// [`AUTO_PROBE_EVALS`](Self::AUTO_PROBE_EVALS) evaluations are
    /// timed (while memoizing normally); once the probe shows the mean
    /// evaluation under
    /// [`AUTO_MIN_COMPUTE_NANOS`](Self::AUTO_MIN_COMPUTE_NANOS) the
    /// cache degrades to pass-through — no digest, no lock, the
    /// evaluation still counted as a miss so
    /// [`CacheStats::misses`] keeps meaning "circuit evaluations
    /// actually executed". Outcomes are identical under every mode; only
    /// wall time changes.
    pub fn get_or_compute(
        &self,
        x: &[f64],
        corner: &PvtCorner,
        h: &MismatchVector,
        compute: impl FnOnce() -> SimOutcome,
    ) -> SimOutcome {
        match self.mode.load(Ordering::Relaxed) {
            MODE_OFF => {
                self.misses.fetch_add(1, Ordering::Relaxed);
                compute()
            }
            MODE_PROBING => {
                let key = self.key(x, corner, h);
                if let Some(outcome) = self.lookup_keyed(key, x, corner, h) {
                    return outcome;
                }
                let start = std::time::Instant::now();
                let outcome = compute();
                let nanos = start.elapsed().as_nanos().min(u128::from(u64::MAX)) as u64;
                self.probe_nanos.fetch_add(nanos, Ordering::Relaxed);
                let timed = self.probe_count.fetch_add(1, Ordering::Relaxed) + 1;
                if timed >= Self::AUTO_PROBE_EVALS {
                    let mean = self.probe_nanos.load(Ordering::Relaxed) / timed;
                    let decided =
                        if mean < Self::AUTO_MIN_COMPUTE_NANOS { MODE_OFF } else { MODE_ON };
                    // Racing probers agree on direction within noise; a
                    // compare_exchange keeps the first decision.
                    let won = self
                        .mode
                        .compare_exchange(
                            MODE_PROBING,
                            decided,
                            Ordering::Relaxed,
                            Ordering::Relaxed,
                        )
                        .is_ok();
                    if decided == MODE_OFF {
                        // Pass-through never consults the map again, so
                        // entries memoized during the probe would sit
                        // stranded for the cache's lifetime — a real leak
                        // once caches are long-lived registry residents.
                        // Drop them (and skip the insert below); stragglers
                        // who lost the race or were still mid-evaluation
                        // fall through to the insert, so the winner's
                        // clear is followed by at most a probe-window's
                        // worth of stragglers — bounded, not a leak.
                        if won {
                            self.clear();
                        }
                        return outcome;
                    }
                }
                // Re-check the mode: a racer may have flipped to OFF (and
                // cleared) while this evaluation ran — inserting now would
                // re-strand an entry behind the pass-through fast path.
                if self.mode.load(Ordering::Relaxed) != MODE_OFF {
                    self.insert_keyed(key, x, corner, h, outcome.clone());
                }
                outcome
            }
            _ => {
                let key = self.key(x, corner, h);
                if let Some(outcome) = self.lookup_keyed(key, x, corner, h) {
                    return outcome;
                }
                let outcome = compute();
                self.insert_keyed(key, x, corner, h, outcome.clone());
                outcome
            }
        }
    }
}

/// One registered cache: the full identity it was created for plus the
/// shared cache itself.
#[derive(Debug)]
struct CacheRegistryEntry {
    identity: Vec<u64>,
    config: EvalCacheConfig,
    cache: Arc<EvalCache>,
    last_used: Instant,
    expired: bool,
}

/// A process-wide map from circuit identity to a shared [`EvalCache`] —
/// the memo-table sibling of `glova_spice::SolverRegistry`.
///
/// Concurrent campaigns on the same circuit revisit each other's
/// `(design, corner, mismatch)` points (seed grids, confirmation sweeps,
/// goal families re-deriving rewards from the same raw metrics), so a
/// server should hand them **one** cache per circuit instead of a cold
/// private cache per request.
///
/// # Identity, not topology
///
/// Keying by netlist topology alone would be wrong for caches: a
/// [`SimOutcome`] bakes in the circuit's metric extraction and base-spec
/// reward, so two *different* circuits sharing one topology must not
/// share memoized outcomes. Callers therefore present a full **identity
/// word sequence** — circuit name, dimension, bounds bits, spec digest,
/// topology fingerprint, whatever distinguishes evaluation semantics
/// (`glova-serve` builds this per circuit). Like the solver registry,
/// hits confirm the entire sequence against the stored one, so a digest
/// collision creates a separate entry and can never alias outcomes; the
/// cache *config* is part of the match too, so requests with different
/// capacity or policy get distinct caches rather than surprising each
/// other.
///
/// Goal conditioning stays safe under sharing: campaigns re-derive
/// goal-spec rewards from the cached raw metrics, so one cache serves a
/// whole goal family (see [`crate::campaign`]).
#[derive(Debug, Default)]
pub struct CacheRegistry {
    /// Digest → entries; multiple entries under one digest only on a
    /// genuine collision or a config difference.
    buckets: Mutex<HashMap<u64, Vec<CacheRegistryEntry>>>,
    config: RegistryConfig,
    creations: AtomicU64,
    hits: AtomicU64,
    collisions: AtomicU64,
    evictions: AtomicU64,
}

impl CacheRegistry {
    /// Creates an empty registry (tests and scoped servers; production
    /// code normally shares [`Self::global`]).
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates an empty registry under an eviction policy (shared
    /// [`RegistryConfig`] from `glova_spice` — the same LRU/TTL semantics
    /// as the solver registry, and the same `Arc`-safety: an evicted
    /// cache stays alive for in-flight holders, the registry merely
    /// re-creates on the next miss).
    pub fn with_config(config: RegistryConfig) -> Self {
        Self { config, ..Self::default() }
    }

    /// The process-wide registry instance.
    pub fn global() -> &'static CacheRegistry {
        static GLOBAL: OnceLock<CacheRegistry> = OnceLock::new();
        GLOBAL.get_or_init(CacheRegistry::new)
    }

    /// Returns the shared cache for `identity` under `config`, creating
    /// (and registering) one if no confirmed entry exists. Hits confirm
    /// the full identity sequence and the config; a digest collision
    /// creates a separate entry, it never aliases.
    pub fn cache_for(&self, identity: &[u64], config: EvalCacheConfig) -> Arc<EvalCache> {
        let mut hasher = Fnv1a::new();
        for &w in identity {
            hasher.write_word(w);
        }
        self.cache_for_keyed(hasher.finish(), identity, config)
    }

    /// [`Self::cache_for`] with a caller-supplied digest — internal seam
    /// for the collision-confirm test.
    fn cache_for_keyed(
        &self,
        digest: u64,
        identity: &[u64],
        config: EvalCacheConfig,
    ) -> Arc<EvalCache> {
        let mut buckets = self.buckets.lock().expect("cache registry poisoned");
        self.sweep_expired(&mut buckets);
        let bucket = buckets.entry(digest).or_default();
        if let Some(entry) =
            bucket.iter_mut().find(|e| e.config == config && e.identity == identity)
        {
            entry.last_used = Instant::now();
            self.hits.fetch_add(1, Ordering::Relaxed);
            return entry.cache.clone();
        }
        if bucket.iter().any(|e| e.identity != identity) {
            self.collisions.fetch_add(1, Ordering::Relaxed);
        }
        let cache = Arc::new(EvalCache::new(config));
        self.creations.fetch_add(1, Ordering::Relaxed);
        bucket.push(CacheRegistryEntry {
            identity: identity.to_vec(),
            config,
            cache: cache.clone(),
            last_used: Instant::now(),
            expired: false,
        });
        self.enforce_capacity(&mut buckets);
        cache
    }

    /// Drops TTL-expired and force-expired entries (lock held by caller).
    fn sweep_expired(&self, buckets: &mut HashMap<u64, Vec<CacheRegistryEntry>>) {
        let ttl = self.config.ttl;
        let now = Instant::now();
        let mut evicted = 0u64;
        buckets.retain(|_, bucket| {
            bucket.retain(|e| {
                let stale =
                    e.expired || ttl.is_some_and(|ttl| now.duration_since(e.last_used) >= ttl);
                if stale {
                    evicted += 1;
                }
                !stale
            });
            !bucket.is_empty()
        });
        if evicted > 0 {
            self.evictions.fetch_add(evicted, Ordering::Relaxed);
        }
    }

    /// Evicts globally-LRU entries until `max_entries` holds (lock held
    /// by caller). The just-inserted entry is the newest, so it is never
    /// the victim.
    fn enforce_capacity(&self, buckets: &mut HashMap<u64, Vec<CacheRegistryEntry>>) {
        let Some(max) = self.config.max_entries else { return };
        loop {
            let total: usize = buckets.values().map(Vec::len).sum();
            if total <= max {
                return;
            }
            let Some((&fp, idx)) = buckets
                .iter()
                .flat_map(|(fp, bucket)| {
                    bucket.iter().enumerate().map(move |(i, e)| ((fp, i), e.last_used))
                })
                .min_by_key(|&(_, last_used)| last_used)
                .map(|((fp, i), _)| (fp, i))
            else {
                return;
            };
            let bucket = buckets.get_mut(&fp).expect("victim bucket exists");
            bucket.remove(idx);
            if bucket.is_empty() {
                buckets.remove(&fp);
            }
            self.evictions.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// Marks every resident entry expired, forcing eviction on the next
    /// registry access — the wall-clock-free TTL test seam (mirrors
    /// `SolverRegistry::force_expire_all`). Outstanding `Arc` handles
    /// keep their caches alive and usable.
    pub fn force_expire_all(&self) {
        let mut buckets = self.buckets.lock().expect("cache registry poisoned");
        for bucket in buckets.values_mut() {
            for entry in bucket.iter_mut() {
                entry.expired = true;
            }
        }
    }

    /// Caches created (unique identity × config keys).
    pub fn creations(&self) -> u64 {
        self.creations.load(Ordering::Relaxed)
    }

    /// Requests answered by an existing confirmed entry.
    pub fn hits(&self) -> u64 {
        self.hits.load(Ordering::Relaxed)
    }

    /// Digest matches whose identity confirm failed (each resolved by a
    /// separate entry, never by aliasing).
    pub fn collisions(&self) -> u64 {
        self.collisions.load(Ordering::Relaxed)
    }

    /// Entries evicted by TTL expiry, forced expiry or the
    /// `max_entries` LRU cap.
    pub fn evictions(&self) -> u64 {
        self.evictions.load(Ordering::Relaxed)
    }

    /// Registered entries.
    pub fn len(&self) -> usize {
        self.buckets.lock().expect("cache registry poisoned").values().map(Vec::len).sum()
    }

    /// Whether the registry holds no entries.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn outcome(v: f64) -> SimOutcome {
        SimOutcome { metrics: vec![v, v + 1.0], reward: -v }
    }

    fn corner() -> PvtCorner {
        PvtCorner::typical()
    }

    #[test]
    fn miss_then_hit_roundtrips_exact_outcome() {
        let cache = EvalCache::new(EvalCacheConfig::default());
        let x = [0.25, 0.75];
        let h = MismatchVector::from_values(vec![1e-3, -2e-3]);
        assert!(cache.lookup(&x, &corner(), &h).is_none());
        cache.insert(&x, &corner(), &h, outcome(3.5));
        assert_eq!(cache.lookup(&x, &corner(), &h), Some(outcome(3.5)));
        let stats = cache.stats();
        assert_eq!((stats.hits, stats.misses), (1, 1));
        assert_eq!(stats.hit_rate(), 0.5);
    }

    #[test]
    fn near_identical_designs_are_distinct_points() {
        // Designs differing in a single bit are distinct cache points:
        // the second must miss, and must not displace the first.
        let cache = EvalCache::new(EvalCacheConfig { capacity: 16, ..Default::default() });
        let h = MismatchVector::nominal(2);
        let x_a = [0.5, 0.5];
        let x_b = [0.5 + 1e-16, 0.5];
        cache.insert(&x_a, &corner(), &h, outcome(1.0));
        assert!(cache.lookup(&x_b, &corner(), &h).is_none());
        cache.insert(&x_b, &corner(), &h, outcome(2.0));
        assert_eq!(cache.lookup(&x_a, &corner(), &h), Some(outcome(1.0)));
        assert_eq!(cache.lookup(&x_b, &corner(), &h), Some(outcome(2.0)));
        assert_eq!(cache.len(), 2);
    }

    #[test]
    fn distinct_corners_and_mismatch_are_distinct_points() {
        let cache = EvalCache::new(EvalCacheConfig::default());
        let x = [0.4];
        let h0 = MismatchVector::nominal(1);
        let h1 = MismatchVector::from_values(vec![1e-3]);
        cache.insert(&x, &corner(), &h0, outcome(1.0));
        let other = PvtCorner { vdd: 0.8, ..corner() };
        assert!(cache.lookup(&x, &other, &h0).is_none());
        assert!(cache.lookup(&x, &corner(), &h1).is_none());
        assert_eq!(cache.lookup(&x, &corner(), &h0), Some(outcome(1.0)));
    }

    #[test]
    fn lru_evicts_least_recently_used() {
        // One shard pins the exact global LRU order the assertions need.
        let cache =
            EvalCache::new(EvalCacheConfig { capacity: 2, shards: 1, ..Default::default() });
        let h = MismatchVector::nominal(1);
        cache.insert(&[0.1], &corner(), &h, outcome(1.0));
        cache.insert(&[0.2], &corner(), &h, outcome(2.0));
        // Touch 0.1 so 0.2 becomes the LRU entry.
        assert!(cache.lookup(&[0.1], &corner(), &h).is_some());
        cache.insert(&[0.3], &corner(), &h, outcome(3.0));
        assert_eq!(cache.len(), 2);
        assert_eq!(cache.stats().evictions, 1);
        assert!(cache.lookup(&[0.2], &corner(), &h).is_none(), "LRU entry evicted");
        assert!(cache.lookup(&[0.1], &corner(), &h).is_some());
        assert!(cache.lookup(&[0.3], &corner(), &h).is_some());
    }

    #[test]
    fn capacity_clamped_to_one() {
        let cache = EvalCache::new(EvalCacheConfig { capacity: 0, ..Default::default() });
        assert_eq!(cache.capacity(), 1);
        let h = MismatchVector::nominal(1);
        cache.insert(&[0.1], &corner(), &h, outcome(1.0));
        cache.insert(&[0.2], &corner(), &h, outcome(2.0));
        assert_eq!(cache.len(), 1);
    }

    #[test]
    fn shard_count_is_clamped_and_reported() {
        let cache = EvalCache::new(EvalCacheConfig::default());
        assert_eq!(cache.shard_count(), EvalCacheConfig::DEFAULT_SHARDS);
        // Shards never outnumber capacity (per-shard bound stays ≥ 1)…
        let tiny = EvalCache::new(EvalCacheConfig { capacity: 3, ..Default::default() });
        assert_eq!(tiny.shard_count(), 3);
        // …and zero shards degrade to one.
        let one = EvalCache::new(EvalCacheConfig::default().with_shards(0));
        assert_eq!(one.shard_count(), 1);
    }

    #[test]
    fn sharded_cache_roundtrips_and_respects_total_bound() {
        // Many distinct points through a small sharded cache: every
        // lookup right after its insert must hit regardless of which
        // shard the key stripes to, and residency must never exceed the
        // summed per-shard bounds.
        let config = EvalCacheConfig { capacity: 8, shards: 4, ..Default::default() };
        let cache = EvalCache::new(config);
        let h = MismatchVector::nominal(1);
        for i in 0..100 {
            let x = [i as f64 * 0.01];
            cache.insert(&x, &corner(), &h, outcome(i as f64));
            assert_eq!(cache.lookup(&x, &corner(), &h), Some(outcome(i as f64)));
            assert!(cache.len() <= 8, "resident entries exceeded the bound");
        }
        let stats = cache.stats();
        assert_eq!(stats.hits, 100, "atomic hit counting is exact");
        assert_eq!(stats.misses, 0);
        assert!(stats.evictions >= 92, "displaced entries are counted per shard");
    }

    #[test]
    fn concurrent_workers_count_exactly_under_sharding() {
        // 8 threads × 200 disjoint points: the relaxed atomic counters
        // must not drop a single event (fetch_add is a read-modify-write;
        // Relaxed waives ordering, not atomicity).
        let cache = std::sync::Arc::new(EvalCache::new(EvalCacheConfig {
            capacity: 4096,
            policy: CachePolicy::On,
            shards: 8,
        }));
        std::thread::scope(|scope| {
            for t in 0..8u64 {
                let cache = cache.clone();
                scope.spawn(move || {
                    let h = MismatchVector::nominal(1);
                    for i in 0..200u64 {
                        let x = [(t * 1000 + i) as f64];
                        // Miss + insert, then a guaranteed hit.
                        cache.get_or_compute(&x, &corner(), &h, || outcome(i as f64));
                        cache.get_or_compute(&x, &corner(), &h, || outcome(i as f64));
                    }
                });
            }
        });
        let stats = cache.stats();
        assert_eq!(stats.misses, 1600, "every evaluation counted");
        assert_eq!(stats.hits, 1600, "every hit counted");
        assert_eq!(cache.len(), 1600);
    }

    #[test]
    fn auto_probe_off_clears_probe_entries() {
        // Regression: entries memoized during the probe window used to
        // stay resident after the probe decided pass-through — never
        // consulted again (OFF bypasses the map), never evicted, pinned
        // for the cache's lifetime. The decision must drop them.
        let cache = EvalCache::new(EvalCacheConfig::default());
        let h = MismatchVector::nominal(1);
        for i in 0..EvalCache::AUTO_PROBE_EVALS {
            let x = [i as f64];
            cache.get_or_compute(&x, &corner(), &h, || outcome(i as f64));
        }
        assert!(!cache.memoizing(), "cheap problem degrades to pass-through");
        assert!(cache.is_empty(), "probe-window entries must not stay stranded");
    }

    #[test]
    fn empty_stats_are_zero() {
        let cache = EvalCache::new(EvalCacheConfig::default());
        assert!(cache.is_empty());
        assert_eq!(cache.stats().hit_rate(), 0.0);
        assert_eq!(cache.stats().lookups(), 0);
    }

    #[test]
    fn policy_off_bypasses_but_counts_evaluations() {
        let cache = EvalCache::new(EvalCacheConfig::with_policy(CachePolicy::Off));
        assert!(!cache.memoizing());
        let h = MismatchVector::nominal(1);
        let mut evals = 0;
        for _ in 0..3 {
            let got = cache.get_or_compute(&[0.5], &corner(), &h, || {
                evals += 1;
                outcome(1.0)
            });
            assert_eq!(got, outcome(1.0));
        }
        assert_eq!(evals, 3, "pass-through recomputes every time");
        assert!(cache.is_empty(), "nothing is memoized");
        let stats = cache.stats();
        assert_eq!(stats.misses, 3, "misses still count executed evaluations");
        assert_eq!(stats.hits, 0);
    }

    #[test]
    fn policy_on_always_memoizes() {
        let cache = EvalCache::new(EvalCacheConfig::with_policy(CachePolicy::On));
        assert!(cache.memoizing());
        let h = MismatchVector::nominal(1);
        let mut evals = 0;
        for _ in 0..3 {
            cache.get_or_compute(&[0.5], &corner(), &h, || {
                evals += 1;
                outcome(1.0)
            });
        }
        assert_eq!(evals, 1, "one miss, then hits");
        assert_eq!(cache.stats().hits, 2);
    }

    #[test]
    fn auto_probe_turns_off_for_cheap_evaluations() {
        // Instant-returning closures are far below the nanos floor, so
        // once the probe window closes the cache must degrade to
        // pass-through.
        let cache = EvalCache::new(EvalCacheConfig::default());
        let h = MismatchVector::nominal(1);
        for i in 0..EvalCache::AUTO_PROBE_EVALS {
            let x = [i as f64];
            cache.get_or_compute(&x, &corner(), &h, || outcome(i as f64));
        }
        assert!(!cache.memoizing(), "cheap problem must stop memoizing after the probe");
        // Previously cached points are no longer consulted; the closure
        // runs again.
        let mut reran = false;
        cache.get_or_compute(&[0.0], &corner(), &h, || {
            reran = true;
            outcome(0.0)
        });
        assert!(reran);
    }

    // ---- CacheRegistry --------------------------------------------------

    #[test]
    fn registry_shares_one_cache_per_identity() {
        let registry = CacheRegistry::new();
        let config = EvalCacheConfig::default();
        let id = [1u64, 2, 3];
        let a = registry.cache_for(&id, config);
        let b = registry.cache_for(&id, config);
        assert!(Arc::ptr_eq(&a, &b), "one identity must resolve to one shared cache");
        assert_eq!((registry.creations(), registry.hits()), (1, 1));
        // Writes through one handle are visible through the other.
        let h = MismatchVector::nominal(1);
        a.insert(&[0.5], &corner(), &h, outcome(1.0));
        assert_eq!(b.lookup(&[0.5], &corner(), &h), Some(outcome(1.0)));
    }

    #[test]
    fn registry_separates_identities_and_configs() {
        let registry = CacheRegistry::new();
        let config = EvalCacheConfig::default();
        let a = registry.cache_for(&[1, 2, 3], config);
        let b = registry.cache_for(&[1, 2, 4], config);
        assert!(!Arc::ptr_eq(&a, &b), "distinct identities must not share outcomes");
        // Same identity under a different config is a distinct cache.
        let c = registry.cache_for(&[1, 2, 3], EvalCacheConfig::with_policy(CachePolicy::Off));
        assert!(!Arc::ptr_eq(&a, &c));
        assert_eq!(registry.creations(), 3);
        assert_eq!(registry.collisions(), 0);
    }

    #[test]
    fn registry_digest_clash_confirms_identity_and_never_aliases() {
        // Force two different identities under one digest: the confirm
        // must refuse the hit, count a collision, and create a separate
        // cache — aliasing outcomes across circuits is the failure mode
        // the identity confirm exists to rule out.
        let registry = CacheRegistry::new();
        let config = EvalCacheConfig::default();
        let forced = 0xfeed_face_dead_beef;
        let a = registry.cache_for_keyed(forced, &[1, 2, 3], config);
        let b = registry.cache_for_keyed(forced, &[9, 9, 9], config);
        assert!(!Arc::ptr_eq(&a, &b), "digest collision must not alias caches");
        assert_eq!(registry.collisions(), 1);
        assert_eq!(registry.len(), 2);
        // Both entries stay individually reachable.
        assert!(Arc::ptr_eq(&a, &registry.cache_for_keyed(forced, &[1, 2, 3], config)));
        assert!(Arc::ptr_eq(&b, &registry.cache_for_keyed(forced, &[9, 9, 9], config)));
    }

    #[test]
    fn registry_lru_cap_bounds_entries_under_churn() {
        let registry = CacheRegistry::with_config(RegistryConfig::default().with_max_entries(8));
        let config = EvalCacheConfig::default();
        for i in 0..1000u64 {
            registry.cache_for(&[i], config);
            assert!(registry.len() <= 8, "cap must hold at every step");
        }
        assert_eq!(registry.len(), 8);
        assert_eq!(registry.evictions(), 992);
        assert_eq!(registry.creations(), 1000);
    }

    #[test]
    fn registry_forced_expiry_recreates_once_and_keeps_old_handles_alive() {
        let registry = CacheRegistry::new();
        let config = EvalCacheConfig::default();
        let old = registry.cache_for(&[7, 7, 7], config);
        let h = MismatchVector::nominal(1);
        old.insert(&[0.5], &corner(), &h, outcome(2.0));
        registry.force_expire_all();
        let fresh = registry.cache_for(&[7, 7, 7], config);
        assert!(!Arc::ptr_eq(&old, &fresh), "expired entry must re-create, not alias");
        assert_eq!(registry.evictions(), 1);
        assert_eq!(registry.creations(), 2);
        // The held handle keeps its contents; the fresh cache is cold.
        assert_eq!(old.lookup(&[0.5], &corner(), &h), Some(outcome(2.0)));
        assert_eq!(fresh.lookup(&[0.5], &corner(), &h), None);
    }

    #[test]
    fn registry_racing_requests_after_expiry_recreate_exactly_once() {
        let registry = CacheRegistry::new();
        let config = EvalCacheConfig::default();
        let held = registry.cache_for(&[42], config);
        registry.force_expire_all();
        std::thread::scope(|scope| {
            for _ in 0..8 {
                scope.spawn(|| {
                    let cache = registry.cache_for(&[42], config);
                    assert!(!Arc::ptr_eq(&held, &cache), "evicted cache must not be handed out");
                });
            }
        });
        assert_eq!(registry.creations(), 2, "one original creation + exactly one re-create");
        assert_eq!(registry.evictions(), 1);
        assert_eq!(registry.len(), 1);
    }

    #[test]
    fn auto_probe_keeps_memoizing_expensive_evaluations() {
        let cache = EvalCache::new(EvalCacheConfig::default());
        let h = MismatchVector::nominal(1);
        let cost = std::time::Duration::from_nanos(4 * EvalCache::AUTO_MIN_COMPUTE_NANOS);
        for i in 0..EvalCache::AUTO_PROBE_EVALS {
            let x = [i as f64];
            cache.get_or_compute(&x, &corner(), &h, || {
                std::thread::sleep(cost);
                outcome(i as f64)
            });
        }
        assert!(cache.memoizing(), "expensive problem keeps the cache on");
        let mut reran = false;
        cache.get_or_compute(&[0.0], &corner(), &h, || {
            reran = true;
            outcome(0.0)
        });
        assert!(!reran, "memoized point must hit");
    }
}
