//! # GLOVA — variation-aware analog sizing with risk-sensitive RL
//!
//! Reproduction of *"GLOVA: Global and Local Variation-Aware Analog
//! Circuit Design with Risk-Sensitive Reinforcement Learning"* (DAC 2025,
//! arXiv:2505.11208). This crate is the framework layer tying together the
//! substrates in the workspace:
//!
//! - [`SizingProblem`] — a
//!   [`Circuit`](glova_circuits::Circuit) plus a verification method
//!   (Table I), with simulation counting and hierarchical mismatch
//!   sampling (Eq. 3);
//! - the **evaluation engine** ([`engine`]) — deterministic sequential or
//!   multi-threaded fan-out of the Monte-Carlo / corner simulation
//!   batches, selected via [`GlovaConfig::engine`](optimizer::GlovaConfig)
//!   (results are bitwise-identical across engines);
//! - the **evaluation cache** ([`cache`]) — LRU memoization of repeated
//!   `(design, corner, mismatch)` points with exact-bit validation, so
//!   verifier re-sweeps and yield grids stop re-simulating identical
//!   points (results stay bitwise-identical with the cache on or off);
//! - the **optimization phase** ([`optimizer`]) — TuRBO initial sampling
//!   followed by the risk-sensitive RL loop of Algorithm 1 / Fig. 2;
//! - the **verification phase** ([`verification`]) — Algorithm 2:
//!   [µ-σ evaluation](evaluation) (Eq. 7) and
//!   [simulation reordering](reorder) (t-SCORE, Eq. 8; h-SCORE,
//!   Eq. 9–10);
//! - ablation switches for Table III (disable the ensemble critic, the
//!   µ-σ gate, or the reordering);
//! - run reports ([`report`]) with iteration/simulation counts and the
//!   reliability-bound trace behind Fig. 3.
//!
//! # Quickstart
//!
//! ```
//! use glova::prelude::*;
//! use std::sync::Arc;
//!
//! // Size the synthetic toy circuit under corner-only verification.
//! let circuit = Arc::new(glova_circuits::ToyQuadratic::standard());
//! let config = GlovaConfig::quick(VerificationMethod::Corner);
//! let mut optimizer = GlovaOptimizer::new(circuit, config);
//! let result = optimizer.run(42);
//! assert!(result.success);
//! ```

pub mod cache;
pub mod campaign;
pub mod engine;
pub mod evaluation;
pub mod fault;
pub mod optimizer;
pub mod problem;
pub mod reorder;
pub mod report;
pub mod sensitivity;
pub mod sweep;
pub mod verification;
pub mod yield_est;

pub use cache::{
    CachePolicy, CacheRegistry, CacheStats, EvalCache, EvalCacheConfig, RegistryConfig,
};
pub use campaign::{
    CampaignConfig, CampaignControl, CampaignResult, CampaignStep, CampaignTermination,
    CornerScheduler, PruningConfig, PruningStats, SizingCampaign,
};
pub use engine::{EngineSpec, EvalEngine, Sequential, Threaded};
pub use evaluation::MuSigmaEvaluation;
pub use fault::{FaultKind, FaultPlan};
pub use optimizer::{GlovaConfig, GlovaOptimizer};
pub use problem::SizingProblem;
pub use report::{IterationTrace, RunResult};
pub use sensitivity::{sensitivity_sweep, SensitivityReport};
pub use sweep::ac_sweep_with_engine;
pub use verification::{VerificationOutcome, Verifier};
pub use yield_est::{estimate_yield, YieldEstimate};

/// Convenient glob-import surface.
pub mod prelude {
    pub use crate::cache::{CachePolicy, EvalCacheConfig};
    pub use crate::campaign::{CampaignConfig, PruningConfig, SizingCampaign};
    pub use crate::engine::EngineSpec;
    pub use crate::optimizer::{GlovaConfig, GlovaOptimizer};
    pub use crate::problem::SizingProblem;
    pub use crate::report::RunResult;
    pub use glova_circuits::Circuit;
    pub use glova_variation::config::VerificationMethod;
}
