//! End-to-end risk-sensitive sizing campaigns over the engine layer.
//!
//! [`GlovaOptimizer`](crate::optimizer::GlovaOptimizer) reproduces the
//! paper's Algorithm 1/2 loop faithfully — one worst-corner mini-batch per
//! iteration. A *campaign* is the production-shaped variant of that loop:
//! every policy step's candidate × corner × mismatch grid is flattened
//! into a **single** [`EvalEngine`](crate::engine::EvalEngine) dispatch
//! (via [`SizingProblem::simulate_selected_corners`]), so per-worker SPICE
//! solver pools, value-only retargeting and the
//! [`EvalCache`](crate::cache::EvalCache) stay hot across the whole run,
//! and two throughput ideas from the related work slot directly onto that
//! batched dispatch:
//!
//! - **Corner-set pruning** (RobustAnalog, Shi et al.): the
//!   [`CornerScheduler`] tracks the most recent worst reward per corner and
//!   simulates only the current `k`-worst set, re-ranking the full grid
//!   every `R` steps. A candidate that satisfies the active set is
//!   *confirmed* on the remaining corners before being declared feasible,
//!   so pruning never weakens the success criterion — it only skips
//!   simulations on corners that were not close to binding.
//! - **Goal conditioning** (PPAAS, Kim et al.): the spec target — encoded
//!   as per-metric limit scale factors
//!   ([`DesignSpec::with_scaled_limits`]) — is appended to the agent's
//!   observation, so one agent generalizes across a spec family
//!   ([`SizingCampaign::run_family`]) instead of being retrained per
//!   target.
//!
//! Determinism contract: conditions are pre-sampled in deterministic order
//! *before* every dispatch, reductions are NaN-propagating and
//! order-independent, and the agent's RNG streams are forked per phase —
//! the full trajectory is bitwise-identical across
//! [`Sequential`](crate::engine::Sequential) and
//! [`Threaded`](crate::engine::Threaded) engines at any worker count
//! (`tests/campaign_determinism.rs`).
//!
//! # Example
//!
//! ```
//! use glova::campaign::{CampaignConfig, PruningConfig, SizingCampaign};
//! use glova_variation::config::VerificationMethod;
//! use std::sync::Arc;
//!
//! let circuit = Arc::new(glova_circuits::ToyQuadratic::standard());
//! let config = CampaignConfig::quick(VerificationMethod::Corner)
//!     .with_pruning(PruningConfig::new(2, 5));
//! let campaign = SizingCampaign::new(circuit, config);
//! let result = campaign.run(7);
//! assert!(result.success);
//! // Pruned steps simulated a strict subset of the corner grid …
//! assert!(result.pruning.pruned_fraction() > 0.0);
//! // … yet the final design was confirmed on the *full* grid.
//! assert!(result.steps.iter().last().unwrap().full_grid);
//! ```

use crate::cache::EvalCacheConfig;
use crate::engine::EngineSpec;
use crate::fault::FaultPlan;
use crate::problem::SizingProblem;
use crate::yield_est::YieldEstimate;
use glova_circuits::spec::{DesignSpec, SATISFIED_REWARD};
use glova_circuits::{Circuit, FailureStats};
use glova_rl::{AgentConfig, RiskSensitiveAgent};
use glova_stats::binomial::clopper_pearson;
use glova_stats::reduce::{self, finite_worst};
use glova_stats::rng::{forked, Rng64};
use glova_turbo::latin_hypercube;
use glova_variation::config::VerificationMethod;
use glova_variation::sampler::MismatchVector;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

/// Corner-set pruning parameters (RobustAnalog-style).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PruningConfig {
    /// Number of worst corners simulated on a pruned step.
    pub k: usize,
    /// Re-rank cadence: every `rerank_every`-th step simulates the full
    /// corner grid and refreshes the ranking (1 disables pruning).
    pub rerank_every: usize,
}

impl PruningConfig {
    /// Creates a pruning schedule: `k`-worst corners per step, full
    /// re-rank every `rerank_every` steps.
    ///
    /// # Panics
    ///
    /// Panics if `k == 0` or `rerank_every == 0`.
    pub fn new(k: usize, rerank_every: usize) -> Self {
        assert!(k > 0, "need at least one active corner");
        assert!(rerank_every > 0, "re-rank cadence must be positive");
        Self { k, rerank_every }
    }
}

/// Cumulative corner-scheduling counters of one campaign.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct PruningStats {
    /// Steps that simulated the full corner grid (re-ranks included).
    pub full_steps: u64,
    /// Steps that simulated only the k-worst subset.
    pub pruned_steps: u64,
    /// Corner slots actually simulated across all steps.
    pub corners_simulated: u64,
    /// Corner slots a full-grid campaign would have simulated.
    pub corners_available: u64,
}

impl PruningStats {
    /// Fraction of corner slots skipped by pruning (0 for full-grid runs).
    pub fn pruned_fraction(&self) -> f64 {
        if self.corners_available == 0 {
            return 0.0;
        }
        1.0 - self.corners_simulated as f64 / self.corners_available as f64
    }
}

/// One step's corner selection.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StepPlan {
    /// Corner indices to simulate, ascending (corner-major sampling order).
    pub corners: Vec<usize>,
    /// Whether this plan covers the full grid (re-rank step).
    pub full: bool,
}

/// Tracks per-corner worst rewards and plans which corners each policy
/// step simulates (RobustAnalog-style corner-set pruning).
///
/// The scheduler keeps the most recent worst reward seen per corner
/// (`-∞` until first visited — unranked corners force a full step). On a
/// pruned step it selects the `k` corners with the lowest recorded worst
/// reward (ties broken by index, selection returned in ascending index
/// order so condition sampling stays corner-major deterministic); every
/// `rerank_every`-th step it schedules the full grid to refresh the
/// ranking.
#[derive(Debug, Clone)]
pub struct CornerScheduler {
    worst: Vec<f64>,
    pruning: Option<PruningConfig>,
    steps_since_rerank: usize,
    stats: PruningStats,
}

impl CornerScheduler {
    /// Creates a scheduler over `corner_count` corners; `None` pruning
    /// plans the full grid every step.
    ///
    /// # Panics
    ///
    /// Panics if `corner_count == 0`.
    pub fn new(corner_count: usize, pruning: Option<PruningConfig>) -> Self {
        assert!(corner_count > 0, "need at least one corner");
        Self {
            worst: vec![f64::NEG_INFINITY; corner_count],
            pruning,
            steps_since_rerank: 0,
            stats: PruningStats::default(),
        }
    }

    /// Number of corners under management.
    pub fn corner_count(&self) -> usize {
        self.worst.len()
    }

    /// The most recent worst reward per corner (`-∞` = never visited).
    pub fn worst_rewards(&self) -> &[f64] {
        &self.worst
    }

    /// Cumulative scheduling counters.
    pub fn stats(&self) -> &PruningStats {
        &self.stats
    }

    /// Records the worst reward observed at `corner_index` (most recent
    /// observation wins, like
    /// [`LastWorstBuffer`](glova_rl::LastWorstBuffer)).
    ///
    /// # Panics
    ///
    /// Panics if `corner_index` is out of range.
    pub fn record(&mut self, corner_index: usize, worst_reward: f64) {
        self.worst[corner_index] = worst_reward;
    }

    /// Computes the next step's corner plan **without** committing it:
    /// no counters move and the re-rank cadence does not advance, so an
    /// immediately following [`Self::plan_step`] returns the identical
    /// plan. Campaigns use this to price the next dispatch against a
    /// simulation budget before deciding to take the step at all —
    /// pricing an untaken step must not disturb the accounting.
    pub fn peek_plan(&self) -> StepPlan {
        let n = self.worst.len();
        let full = match &self.pruning {
            None => true,
            Some(p) => {
                p.k >= n
                    || self.worst.contains(&f64::NEG_INFINITY)
                    || self.steps_since_rerank + 1 >= p.rerank_every
            }
        };
        let corners: Vec<usize> = if full {
            (0..n).collect()
        } else {
            let k = self.pruning.as_ref().expect("pruned plans require a config").k;
            let mut ranked: Vec<usize> = (0..n).collect();
            ranked.sort_by(|&a, &b| self.worst[a].total_cmp(&self.worst[b]).then(a.cmp(&b)));
            let mut selected: Vec<usize> = ranked.into_iter().take(k).collect();
            selected.sort_unstable();
            selected
        };
        StepPlan { corners, full }
    }

    /// Plans the next step's corner set and updates the counters.
    ///
    /// Full-grid plans are issued when pruning is disabled, `k` covers the
    /// grid, any corner is still unranked, or the re-rank cadence is due;
    /// otherwise the current `k`-worst corners are selected.
    pub fn plan_step(&mut self) -> StepPlan {
        let plan = self.peek_plan();
        if plan.full {
            self.steps_since_rerank = 0;
            self.stats.full_steps += 1;
        } else {
            self.steps_since_rerank += 1;
            self.stats.pruned_steps += 1;
        }
        self.stats.corners_simulated += plan.corners.len() as u64;
        self.stats.corners_available += self.worst.len() as u64;
        plan
    }

    /// Notes that a feasibility-confirmation dispatch simulated
    /// `corners_confirmed` extra corner slots outside
    /// [`Self::plan_step`]: resets the re-rank clock (the confirmation
    /// refreshed every ranking) and counts the slots into
    /// [`PruningStats::corners_simulated`].
    ///
    /// The counting half fixes a real accounting bug: confirmations used
    /// to go uncounted, so [`PruningStats::pruned_fraction`] over-stated
    /// pruning savings on exactly the campaigns where confirmations fire
    /// most (`corners_simulated × N'` must equal the simulations the
    /// policy loop actually paid — the invariant the campaign accounting
    /// regression tests pin down). `corners_available` is untouched: the
    /// step's full-grid denominator was already added by
    /// [`Self::plan_step`], and a confirmed step costs exactly a
    /// full-grid step, driving its marginal pruned fraction to zero.
    pub fn note_confirmation(&mut self, corners_confirmed: usize) {
        self.steps_since_rerank = 0;
        self.stats.corners_simulated += corners_confirmed as u64;
    }
}

/// Why a campaign stopped.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CampaignTermination {
    /// Ran to success or to the step budget — the pre-control semantics.
    Completed,
    /// Stopped at a checkpoint because [`CampaignControl::cancel`] fired.
    Cancelled,
    /// Stopped because the next dispatch would burst the simulation
    /// budget, or the wall-clock deadline passed.
    BudgetExhausted,
}

/// Cooperative cancellation / budget token for one campaign run.
///
/// A control is checked at every dispatch boundary of
/// [`SizingCampaign::run_controlled`] — before each seeding dispatch,
/// each policy step, each feasibility-confirmation sweep and the final
/// yield estimate. Checks are **pre-dispatch and exact**: a simulation
/// budget of `max_sims` is never exceeded, because a dispatch whose cost
/// would cross it is not started. Cancellation and deadlines stop the
/// run at the same boundaries, so the partial trajectory recorded up to
/// that point is complete and bitwise-identical to the same prefix of an
/// uninterrupted run.
///
/// The token is `Sync`: hand an `Arc<CampaignControl>` to the running
/// thread and call [`cancel`](Self::cancel) from any other.
#[derive(Debug, Default)]
pub struct CampaignControl {
    cancelled: AtomicBool,
    max_sims: Option<u64>,
    deadline: Mutex<Option<Instant>>,
}

impl CampaignControl {
    /// An unlimited control: never cancels, never exhausts.
    pub fn new() -> Self {
        Self::default()
    }

    /// Caps total simulations for the run (builder style). The campaign
    /// stops with [`CampaignTermination::BudgetExhausted`] *before* the
    /// dispatch that would cross the cap — the count never exceeds it.
    pub fn with_max_sims(mut self, max_sims: u64) -> Self {
        self.max_sims = Some(max_sims);
        self
    }

    /// Sets (or tightens) an absolute wall-clock deadline (builder
    /// style).
    pub fn with_deadline(self, deadline: Instant) -> Self {
        self.tighten_deadline(deadline);
        self
    }

    /// Requests cancellation: the run stops at its next checkpoint with
    /// [`CampaignTermination::Cancelled`]. Idempotent; safe from any
    /// thread.
    pub fn cancel(&self) {
        self.cancelled.store(true, Ordering::Relaxed);
    }

    /// Whether [`cancel`](Self::cancel) has been requested.
    pub fn is_cancelled(&self) -> bool {
        self.cancelled.load(Ordering::Relaxed)
    }

    /// The simulation cap, if one is set.
    pub fn max_sims(&self) -> Option<u64> {
        self.max_sims
    }

    /// Moves the deadline to `deadline` if that is earlier than the
    /// current one (a deadline never moves later) — how `glova-serve`
    /// applies a per-job `max_wall` measured from job *start*, not
    /// submission.
    pub fn tighten_deadline(&self, deadline: Instant) {
        let mut slot = self.deadline.lock().expect("campaign control poisoned");
        *slot = Some(slot.map_or(deadline, |d| d.min(deadline)));
    }

    /// The checkpoint test: with `sims_used` spent so far and a next
    /// dispatch costing `next_cost` simulations, returns why the run
    /// must stop now — or `None` to proceed. Cancellation outranks
    /// budget exhaustion when both hold.
    pub fn interruption(&self, sims_used: u64, next_cost: u64) -> Option<CampaignTermination> {
        if self.is_cancelled() {
            return Some(CampaignTermination::Cancelled);
        }
        if let Some(deadline) = *self.deadline.lock().expect("campaign control poisoned") {
            if Instant::now() >= deadline {
                return Some(CampaignTermination::BudgetExhausted);
            }
        }
        if let Some(max) = self.max_sims {
            if sims_used + next_cost > max {
                return Some(CampaignTermination::BudgetExhausted);
            }
        }
        None
    }
}

/// Campaign configuration.
///
/// Mirrors [`GlovaConfig`](crate::optimizer::GlovaConfig) where the two
/// loops overlap (agent hyperparameters, engine/cache selection) and adds
/// the campaign-only knobs: corner pruning, goal conditioning and the
/// final yield estimate.
#[derive(Debug, Clone, PartialEq)]
pub struct CampaignConfig {
    /// Verification method (Table I) — sets the corner set and `N'`.
    pub method: VerificationMethod,
    /// Evaluation engine for the batched dispatches (results are
    /// engine-independent).
    pub engine: EngineSpec,
    /// Evaluation-cache configuration (`None` disables memoization).
    pub cache: Option<EvalCacheConfig>,
    /// Maximum policy steps before declaring failure.
    pub max_steps: usize,
    /// Latin-hypercube seed designs evaluated on the full grid before the
    /// RL loop (ranks every corner and seeds the replay buffer).
    pub init_designs: usize,
    /// Behaviour-cloning steps pulling the fresh actor toward the best
    /// seed design.
    pub pretrain_steps: usize,
    /// Clamp each proposal into a box of this half-width around the
    /// incumbent (`None` disables).
    pub proposal_clip: Option<f64>,
    /// Steps without incumbent improvement before the exploration noise
    /// restarts.
    pub stagnation_restart: usize,
    /// Corner-set pruning schedule (`None` = full grid every step).
    pub pruning: Option<PruningConfig>,
    /// Per-metric spec-limit scale factors (goal conditioning). `None`
    /// runs the circuit's base spec without a goal observation.
    pub goal_factors: Option<Vec<f64>>,
    /// Critic ensemble size.
    pub ensemble_size: usize,
    /// Hidden layer widths of the actor/critic networks.
    pub hidden: Vec<usize>,
    /// RL training batch size.
    pub batch_size: usize,
    /// Gradient updates per policy step.
    pub updates_per_step: usize,
    /// Risk parameter β₁ of the ensemble critic.
    pub beta1: f64,
    /// Fresh-die MC samples per corner for the final yield estimate on a
    /// successful design (0 skips the estimate).
    pub yield_samples: usize,
    /// Confidence level of the yield interval.
    pub yield_confidence: f64,
}

impl CampaignConfig {
    /// Paper-default hyperparameters under the given verification method.
    pub fn paper(method: VerificationMethod) -> Self {
        Self {
            method,
            engine: EngineSpec::Sequential,
            cache: None,
            max_steps: 500,
            init_designs: 3,
            pretrain_steps: 200,
            proposal_clip: Some(0.2),
            stagnation_restart: 60,
            pruning: None,
            goal_factors: None,
            ensemble_size: 5,
            hidden: vec![64, 64, 64],
            batch_size: 10,
            updates_per_step: 8,
            beta1: -3.0,
            yield_samples: 0,
            yield_confidence: 0.95,
        }
    }

    /// A reduced configuration for fast tests and CI gates.
    pub fn quick(method: VerificationMethod) -> Self {
        Self {
            hidden: vec![32, 32],
            updates_per_step: 4,
            pretrain_steps: 100,
            max_steps: 150,
            ..Self::paper(method)
        }
    }

    /// Selects the evaluation engine (builder style).
    pub fn with_engine(mut self, engine: EngineSpec) -> Self {
        self.engine = engine;
        self
    }

    /// Attaches an evaluation cache (builder style).
    pub fn with_cache(mut self, cache: EvalCacheConfig) -> Self {
        self.cache = Some(cache);
        self
    }

    /// Enables corner-set pruning (builder style).
    pub fn with_pruning(mut self, pruning: PruningConfig) -> Self {
        self.pruning = Some(pruning);
        self
    }

    /// Sets the goal-conditioned spec target (builder style): metric `i`'s
    /// limit is scaled by `factors[i]` and the factors are appended to the
    /// agent's observation.
    pub fn with_goal(mut self, factors: Vec<f64>) -> Self {
        self.goal_factors = Some(factors);
        self
    }

    /// Sets the step budget (builder style).
    pub fn with_max_steps(mut self, max_steps: usize) -> Self {
        self.max_steps = max_steps;
        self
    }

    /// Enables the final yield estimate (builder style).
    pub fn with_yield_estimate(mut self, samples_per_corner: usize) -> Self {
        self.yield_samples = samples_per_corner;
        self
    }
}

/// One policy step of a campaign trajectory.
#[derive(Debug, Clone, PartialEq)]
pub struct CampaignStep {
    /// 1-based step index.
    pub step: usize,
    /// Corners in this step's planned (possibly pruned) set.
    pub active_corners: usize,
    /// Total corners in the grid.
    pub corner_count: usize,
    /// Simulations spent this step (confirmation dispatches included).
    pub sims: u64,
    /// Worst goal-spec reward of the proposed design over every corner
    /// simulated this step.
    pub worst_reward: f64,
    /// Incumbent best worst-case reward after this step.
    pub best_reward: f64,
    /// Fraction of this step's simulations that met the goal spec — a
    /// per-step yield proxy.
    pub pass_fraction: f64,
    /// Whether this step achieved full-grid coverage (re-rank step or
    /// feasibility confirmation).
    pub full_grid: bool,
    /// Wall-clock time of this step (simulation + training).
    pub wall: Duration,
}

impl CampaignStep {
    /// Fraction of the corner grid this step's plan skipped.
    pub fn pruned_fraction(&self) -> f64 {
        1.0 - self.active_corners as f64 / self.corner_count as f64
    }
}

/// Result of one sizing campaign.
#[derive(Debug, Clone, PartialEq)]
pub struct CampaignResult {
    /// Whether a design satisfied the goal spec on the full corner grid.
    pub success: bool,
    /// The feasible design (on success).
    pub final_design: Option<Vec<f64>>,
    /// Best design seen (the incumbent), feasible or not.
    pub best_design: Vec<f64>,
    /// The incumbent's worst-case reward.
    pub best_reward: f64,
    /// Per-step trajectory.
    pub steps: Vec<CampaignStep>,
    /// Simulations spent on the initial full-grid seeding phase.
    pub init_sims: u64,
    /// Cumulative simulations when the feasible design was confirmed
    /// (init phase included; `None` on failure).
    pub sims_to_success: Option<u64>,
    /// Total simulations across the campaign (yield estimate included).
    pub total_sims: u64,
    /// Goal-spec yield of the final design (when requested and
    /// successful).
    pub yield_estimate: Option<YieldEstimate>,
    /// Corner-scheduling counters.
    pub pruning: PruningStats,
    /// Goal factors this campaign optimized for (`None` = base spec).
    pub goal_factors: Option<Vec<f64>>,
    /// Why the run stopped — [`CampaignTermination::Completed`] unless a
    /// [`CampaignControl`] interrupted it. An interrupted result carries
    /// the partial trajectory in [`steps`](Self::steps), bitwise
    /// identical to the same prefix of an uninterrupted run.
    pub termination: CampaignTermination,
    /// Solver-failure ledger accumulated during this run (escalated
    /// retries and degraded evaluations — see
    /// [`glova_circuits::FailureStats`]).
    pub failures: FailureStats,
    /// Total wall-clock time.
    pub wall: Duration,
}

/// An end-to-end risk-sensitive sizing campaign (see the
/// [module docs](self)).
#[derive(Debug)]
pub struct SizingCampaign {
    problem: SizingProblem,
    config: CampaignConfig,
}

impl SizingCampaign {
    /// Creates a campaign for `circuit` under `config`.
    ///
    /// # Panics
    ///
    /// Panics if `config.init_designs == 0` or the goal-factor count does
    /// not match the circuit's spec.
    pub fn new(circuit: Arc<dyn Circuit>, config: CampaignConfig) -> Self {
        assert!(config.init_designs > 0, "need at least one seed design");
        if let Some(factors) = &config.goal_factors {
            assert_eq!(factors.len(), circuit.spec().len(), "one goal factor per spec metric");
        }
        let mut problem = SizingProblem::with_engine(circuit, config.method, config.engine.build());
        if let Some(cache) = config.cache {
            problem = problem.with_cache(cache);
        }
        Self { problem, config }
    }

    /// Like [`Self::new`], but memoizing through a **shared**
    /// [`EvalCache`](crate::cache::EvalCache) handle (normally obtained
    /// from the process-wide
    /// [`CacheRegistry`](crate::cache::CacheRegistry)) instead of a
    /// private cache — the serving path, where concurrent campaigns on
    /// one circuit answer each other's repeated points. Overrides
    /// `config.cache`; trajectories are bitwise-identical to a private
    /// cache (hits return the outcome a recompute would produce).
    ///
    /// # Panics
    ///
    /// Same conditions as [`Self::new`].
    pub fn with_shared_cache(
        circuit: Arc<dyn Circuit>,
        config: CampaignConfig,
        cache: Arc<crate::cache::EvalCache>,
    ) -> Self {
        assert!(config.init_designs > 0, "need at least one seed design");
        if let Some(factors) = &config.goal_factors {
            assert_eq!(factors.len(), circuit.spec().len(), "one goal factor per spec metric");
        }
        let problem = SizingProblem::with_engine(circuit, config.method, config.engine.build())
            .with_cache_handle(cache);
        Self { problem, config }
    }

    /// Attaches a deterministic [`FaultPlan`] to the underlying problem
    /// (builder style) — the test seam that forces chosen simulation
    /// ordinals to fail, panic or stall (see [`crate::fault`]).
    pub fn with_fault_plan(mut self, plan: Arc<FaultPlan>) -> Self {
        self.problem = self.problem.with_fault_plan(plan);
        self
    }

    /// The underlying problem (simulation counters, cache stats, …).
    pub fn problem(&self) -> &SizingProblem {
        &self.problem
    }

    /// The configuration.
    pub fn config(&self) -> &CampaignConfig {
        &self.config
    }

    /// Runs one campaign with the given seed.
    ///
    /// With [`CampaignConfig::goal_factors`] set, the agent is
    /// goal-conditioned on that single target; otherwise it optimizes the
    /// circuit's base spec with no goal observation.
    pub fn run(&self, seed: u64) -> CampaignResult {
        self.run_with(seed, &mut |_| {})
    }

    /// [`Self::run`] with a streaming step observer: `on_step` is called
    /// with every [`CampaignStep`] the moment it completes, **before**
    /// the next proposal is made — the hook `glova-serve` uses to publish
    /// pollable progress snapshots while a job is still running. The
    /// observer cannot influence the trajectory; `run_with(seed, …)` and
    /// `run(seed)` produce identical results.
    pub fn run_with(&self, seed: u64, on_step: &mut dyn FnMut(&CampaignStep)) -> CampaignResult {
        self.run_controlled(seed, &CampaignControl::new(), on_step)
    }

    /// [`Self::run_with`] under a [`CampaignControl`]: the run honours
    /// cooperative cancellation and simulation / wall-clock budgets,
    /// checked at every dispatch boundary. With an unlimited control the
    /// trajectory is identical to [`Self::run`]; an interrupted run
    /// returns a [`CampaignResult`] whose
    /// [`termination`](CampaignResult::termination) names the cause and
    /// whose partial trajectory matches the same prefix of the
    /// uninterrupted run bitwise.
    pub fn run_controlled(
        &self,
        seed: u64,
        control: &CampaignControl,
        on_step: &mut dyn FnMut(&CampaignStep),
    ) -> CampaignResult {
        let (goal_spec, goal_obs) = self.goal(self.config.goal_factors.as_deref());
        let mut agent = self.make_agent(goal_obs.len(), &mut forked(seed, 2));
        self.run_goal(
            &mut agent,
            &goal_spec,
            &goal_obs,
            self.config.goal_factors.clone(),
            seed,
            control,
            on_step,
        )
    }

    /// Runs one campaign per goal **sharing a single agent** — the
    /// PPAAS-style spec-family mode. Observations carry the goal factors,
    /// so experience from earlier goals transfers to later ones through
    /// the shared replay buffer and networks.
    ///
    /// # Panics
    ///
    /// Panics if `goals` is empty or any goal's factor count does not
    /// match the circuit's spec.
    pub fn run_family(&self, goals: &[Vec<f64>], seed: u64) -> Vec<CampaignResult> {
        assert!(!goals.is_empty(), "need at least one goal");
        let m = self.problem.circuit().spec().len();
        for g in goals {
            assert_eq!(g.len(), m, "one goal factor per spec metric");
        }
        let mut agent = self.make_agent(m, &mut forked(seed, 2));
        let control = CampaignControl::new();
        goals
            .iter()
            .enumerate()
            .map(|(i, factors)| {
                let (goal_spec, goal_obs) = self.goal(Some(factors));
                self.run_goal(
                    &mut agent,
                    &goal_spec,
                    &goal_obs,
                    Some(factors.clone()),
                    glova_stats::rng::fork(seed, 100 + i as u64),
                    &control,
                    &mut |_| {},
                )
            })
            .collect()
    }

    fn goal(&self, factors: Option<&[f64]>) -> (DesignSpec, Vec<f64>) {
        let base = self.problem.circuit().spec().clone();
        match factors {
            Some(f) => (base.with_scaled_limits(f), f.to_vec()),
            None => (base, Vec::new()),
        }
    }

    fn make_agent(&self, goal_dim: usize, rng: &mut Rng64) -> RiskSensitiveAgent {
        let config = AgentConfig {
            ensemble_size: self.config.ensemble_size,
            beta1: self.config.beta1,
            batch_size: self.config.batch_size,
            hidden: self.config.hidden.clone(),
            updates_per_step: self.config.updates_per_step,
            ..AgentConfig::new(self.problem.dim()).with_goal_dim(goal_dim)
        };
        RiskSensitiveAgent::new(config, rng)
    }

    /// The campaign loop for one goal. `agent` may carry experience from
    /// earlier goals of a family run; its `goal_dim` must equal
    /// `goal_obs.len()`.
    #[allow(clippy::too_many_arguments)]
    fn run_goal(
        &self,
        agent: &mut RiskSensitiveAgent,
        goal_spec: &DesignSpec,
        goal_obs: &[f64],
        goal_factors: Option<Vec<f64>>,
        seed: u64,
        control: &CampaignControl,
        on_step: &mut dyn FnMut(&CampaignStep),
    ) -> CampaignResult {
        let start = Instant::now();
        let sims_start = self.problem.simulations();
        let failures_start = self.problem.circuit().failure_stats();
        let mut init_rng = forked(seed, 1);
        let mut agent_rng = forked(seed, 4);
        let mut sample_rng = forked(seed, 3);

        let n_corners = self.problem.config().corners.len();
        let n_prime = self.problem.config().optim_samples;
        let all_corners: Vec<usize> = (0..n_corners).collect();
        let mut scheduler = CornerScheduler::new(n_corners, self.config.pruning.clone());
        let obs = |x: &[f64]| -> Vec<f64> { x.iter().chain(goal_obs).copied().collect() };

        // ---- Seeding: LHS designs on the full grid ----------------------
        // Ranks every corner for the scheduler and fills the replay buffer
        // with genuine worst-case rewards before any policy step.
        let init_points =
            latin_hypercube(self.config.init_designs, self.problem.dim(), &mut init_rng);
        let mut best: Option<(Vec<f64>, f64)> = None;
        let mut termination = CampaignTermination::Completed;
        let seed_cost = all_corners.len() as u64 * n_prime as u64;
        for x in &init_points {
            if let Some(t) =
                control.interruption(self.problem.simulations() - sims_start, seed_cost)
            {
                termination = t;
                break;
            }
            let worst = self.dispatch(
                x,
                &all_corners,
                n_prime,
                goal_spec,
                &mut scheduler,
                &mut sample_rng,
                &mut 0,
                &mut 0,
            );
            agent.observe(obs(x), worst);
            if best.as_ref().is_none_or(|(_, r)| worst > *r) {
                best = Some((x.clone(), worst));
            }
        }
        let init_sims = self.problem.simulations() - sims_start;
        let Some(mut best) = best else {
            // Interrupted before the first seed dispatch: no incumbent
            // exists, only the (empty) accounting does.
            return CampaignResult {
                success: false,
                final_design: None,
                best_design: Vec::new(),
                best_reward: f64::NEG_INFINITY,
                steps: Vec::new(),
                init_sims,
                sims_to_success: None,
                total_sims: self.problem.simulations() - sims_start,
                yield_estimate: None,
                pruning: scheduler.stats().clone(),
                goal_factors,
                termination,
                failures: self.problem.circuit().failure_stats().since(failures_start),
                wall: start.elapsed(),
            };
        };

        // A seed design can already satisfy the goal on the full grid —
        // the campaign is then complete before any policy step.
        if best.1 >= SATISFIED_REWARD {
            return CampaignResult {
                success: true,
                final_design: Some(best.0.clone()),
                best_design: best.0,
                best_reward: best.1,
                steps: Vec::new(),
                init_sims,
                sims_to_success: Some(init_sims),
                total_sims: self.problem.simulations() - sims_start,
                yield_estimate: None,
                pruning: scheduler.stats().clone(),
                goal_factors,
                termination: CampaignTermination::Completed,
                failures: self.problem.circuit().failure_stats().since(failures_start),
                wall: start.elapsed(),
            };
        }

        if termination == CampaignTermination::Completed {
            agent.pretrain_actor_towards(&best.0, self.config.pretrain_steps, &mut agent_rng);
            agent.set_proximal_target(Some(best.0.clone()));
        }

        // ---- Policy loop ------------------------------------------------
        let mut steps: Vec<CampaignStep> = Vec::new();
        let mut stagnation = 0usize;
        let mut success = false;
        let mut final_design: Option<Vec<f64>> = None;
        let mut sims_to_success: Option<u64> = None;
        for step in 1..=self.config.max_steps {
            if termination != CampaignTermination::Completed {
                break;
            }
            // Price the next dispatch before committing to the step:
            // peeking moves no scheduler counters, so an untaken step
            // leaves the accounting (and the RNG streams) untouched.
            let step_cost = scheduler.peek_plan().corners.len() as u64 * n_prime as u64;
            if let Some(t) =
                control.interruption(self.problem.simulations() - sims_start, step_cost)
            {
                termination = t;
                break;
            }
            let t0 = Instant::now();
            let sims_before = self.problem.simulations();

            // Propose anchored at the incumbent, clamped to its trust box.
            let anchor = best.0.clone();
            let mut x_new = agent.propose(&obs(&anchor), &mut agent_rng);
            if let Some(clip) = self.config.proposal_clip {
                for (v, a) in x_new.iter_mut().zip(&anchor) {
                    *v = v.clamp((a - clip).max(0.0), (a + clip).min(1.0));
                }
            }

            // Simulate the planned (possibly pruned) corner set in one
            // engine dispatch.
            let plan = scheduler.plan_step();
            let mut passes = 0u64;
            let mut trials = 0u64;
            let mut worst = self.dispatch(
                &x_new,
                &plan.corners,
                n_prime,
                goal_spec,
                &mut scheduler,
                &mut sample_rng,
                &mut passes,
                &mut trials,
            );
            let mut full_grid = plan.full;

            // Feasible across the active set: pruning must not weaken the
            // success criterion, so confirm the skipped corners before
            // declaring success. Their worst rewards refresh the ranking
            // either way (a failed confirmation is a fresh re-rank).
            if worst >= SATISFIED_REWARD && !plan.full {
                let rest: Vec<usize> =
                    (0..n_corners).filter(|ci| !plan.corners.contains(ci)).collect();
                let rest_cost = rest.len() as u64 * n_prime as u64;
                if let Some(t) =
                    control.interruption(self.problem.simulations() - sims_start, rest_cost)
                {
                    // The control cannot pay the confirmation sweep, so the
                    // candidate stays unconfirmed — pruning never weakens
                    // the success criterion, not even at the budget edge.
                    termination = t;
                } else {
                    let rest_worst = self.dispatch(
                        &x_new,
                        &rest,
                        n_prime,
                        goal_spec,
                        &mut scheduler,
                        &mut sample_rng,
                        &mut passes,
                        &mut trials,
                    );
                    worst = worst.min(rest_worst);
                    scheduler.note_confirmation(rest.len());
                    full_grid = true;
                }
            }
            if worst >= SATISFIED_REWARD && full_grid {
                success = true;
                final_design = Some(x_new.clone());
            }

            // Store, update the incumbent, train.
            agent.observe(obs(&x_new), worst);
            if worst > best.1 {
                best = (x_new.clone(), worst);
                agent.set_proximal_target(Some(best.0.clone()));
                stagnation = 0;
            } else {
                stagnation += 1;
                if stagnation >= self.config.stagnation_restart {
                    agent.reset_noise(0.12);
                    stagnation = 0;
                }
            }
            agent.train_step(&mut agent_rng);

            let sims_now = self.problem.simulations();
            let step_record = CampaignStep {
                step,
                active_corners: plan.corners.len(),
                corner_count: n_corners,
                sims: sims_now - sims_before,
                worst_reward: worst,
                best_reward: best.1,
                pass_fraction: if trials == 0 { 0.0 } else { passes as f64 / trials as f64 },
                full_grid,
                wall: t0.elapsed(),
            };
            on_step(&step_record);
            steps.push(step_record);
            if success {
                sims_to_success = Some(sims_now - sims_start);
                break;
            }
            if termination != CampaignTermination::Completed {
                break;
            }
        }

        // ---- Final yield estimate (goal-spec, fresh dies) ---------------
        // The estimate is a post-success extra: it never fires on an
        // interrupted campaign and is itself subject to the budget.
        let yield_cost = (n_corners * self.config.yield_samples) as u64;
        let yield_estimate = match (&final_design, self.config.yield_samples) {
            (Some(x), samples)
                if samples > 0
                    && control
                        .interruption(self.problem.simulations() - sims_start, yield_cost)
                        .is_none() =>
            {
                Some(self.goal_yield(x, goal_spec, samples, &mut sample_rng))
            }
            _ => None,
        };

        CampaignResult {
            success,
            final_design,
            best_design: best.0,
            best_reward: best.1,
            steps,
            init_sims,
            sims_to_success,
            total_sims: self.problem.simulations() - sims_start,
            yield_estimate,
            pruning: scheduler.stats().clone(),
            goal_factors,
            termination,
            failures: self.problem.circuit().failure_stats().since(failures_start),
            wall: start.elapsed(),
        }
    }

    /// Samples conditions corner-major, dispatches the whole
    /// corner-subset × condition grid through the engine in one batch,
    /// records per-corner worst goal rewards into the scheduler and
    /// returns the overall worst (NaN-sanitized).
    #[allow(clippy::too_many_arguments)]
    fn dispatch(
        &self,
        x: &[f64],
        corner_indices: &[usize],
        n_prime: usize,
        goal_spec: &DesignSpec,
        scheduler: &mut CornerScheduler,
        sample_rng: &mut Rng64,
        passes: &mut u64,
        trials: &mut u64,
    ) -> f64 {
        let conditions: Vec<Vec<MismatchVector>> = corner_indices
            .iter()
            .map(|_| self.problem.sample_conditions(x, n_prime, sample_rng))
            .collect();
        let per_corner = self.problem.simulate_selected_corners(x, corner_indices, &conditions);
        let mut overall = f64::INFINITY;
        for (j, outcomes) in per_corner.iter().enumerate() {
            // The goal spec re-derives rewards from the raw metrics, so the
            // cache-friendly `SimOutcome` (whose `reward` is the *base*
            // spec's) stays valid across goals.
            let worst =
                finite_worst(reduce::worst(outcomes.iter().map(|o| goal_spec.reward(&o.metrics))));
            for o in outcomes {
                *trials += 1;
                if goal_spec.satisfied(&o.metrics) {
                    *passes += 1;
                }
            }
            scheduler.record(corner_indices[j], worst);
            overall = overall.min(worst);
        }
        overall
    }

    /// Goal-spec yield of `x`: fresh-die MC on every corner, batched
    /// through the engine, with a Clopper–Pearson interval — the
    /// goal-aware sibling of [`crate::yield_est::estimate_yield`].
    fn goal_yield(
        &self,
        x: &[f64],
        goal_spec: &DesignSpec,
        samples_per_corner: usize,
        rng: &mut Rng64,
    ) -> YieldEstimate {
        let per_corner = self.problem.simulate_corner_grid_independent(x, samples_per_corner, rng);
        let mut passes = 0u64;
        let mut total = 0u64;
        let mut worst_corner = 0usize;
        let mut worst_rate = f64::INFINITY;
        for (ci, outcomes) in per_corner.iter().enumerate() {
            let corner_passes =
                outcomes.iter().filter(|o| goal_spec.satisfied(&o.metrics)).count() as u64;
            passes += corner_passes;
            total += outcomes.len() as u64;
            let rate = corner_passes as f64 / samples_per_corner as f64;
            if rate < worst_rate {
                worst_rate = rate;
                worst_corner = ci;
            }
        }
        let (lo, hi) = clopper_pearson(passes, total, 1.0 - self.config.yield_confidence);
        YieldEstimate {
            samples: total,
            passes,
            yield_point: passes as f64 / total as f64,
            confidence_interval: (lo, hi),
            confidence: self.config.yield_confidence,
            worst_corner,
            worst_corner_yield: worst_rate,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::EngineSpec;
    use glova_circuits::ToyQuadratic;
    use glova_variation::corner::PvtCorner;

    fn toy() -> Arc<dyn Circuit> {
        Arc::new(ToyQuadratic::standard().with_mismatch_sensitivity(0.05))
    }

    fn quick() -> CampaignConfig {
        CampaignConfig::quick(VerificationMethod::Corner)
    }

    // ---- CornerScheduler ------------------------------------------------

    #[test]
    fn scheduler_without_pruning_always_plans_full() {
        let mut s = CornerScheduler::new(6, None);
        for _ in 0..5 {
            let plan = s.plan_step();
            assert!(plan.full);
            assert_eq!(plan.corners, vec![0, 1, 2, 3, 4, 5]);
        }
        assert_eq!(s.stats().pruned_steps, 0);
        assert_eq!(s.stats().pruned_fraction(), 0.0);
    }

    #[test]
    fn scheduler_selects_k_worst_in_index_order() {
        let mut s = CornerScheduler::new(5, Some(PruningConfig::new(2, 100)));
        // Unranked corners force a full step first.
        assert!(s.plan_step().full);
        for (ci, w) in [(0, 0.1), (1, -0.5), (2, 0.2), (3, -0.9), (4, 0.0)] {
            s.record(ci, w);
        }
        let plan = s.plan_step();
        assert!(!plan.full);
        // Worst two are corners 3 (−0.9) and 1 (−0.5), ascending order.
        assert_eq!(plan.corners, vec![1, 3]);
    }

    #[test]
    fn scheduler_reranks_on_cadence() {
        let mut s = CornerScheduler::new(4, Some(PruningConfig::new(1, 3)));
        for ci in 0..4 {
            s.record(ci, ci as f64);
        }
        let pattern: Vec<bool> = (0..7).map(|_| s.plan_step().full).collect();
        // Period 3: two pruned steps, then a full re-rank.
        assert_eq!(pattern, vec![false, false, true, false, false, true, false]);
        assert_eq!(s.stats().full_steps, 2);
        assert_eq!(s.stats().pruned_steps, 5);
        assert!(s.stats().pruned_fraction() > 0.5);
    }

    #[test]
    fn scheduler_ties_break_by_index() {
        let mut s = CornerScheduler::new(4, Some(PruningConfig::new(2, 100)));
        for ci in 0..4 {
            s.record(ci, -1.0);
        }
        assert_eq!(s.plan_step().corners, vec![0, 1]);
    }

    #[test]
    #[should_panic(expected = "re-rank cadence must be positive")]
    fn zero_cadence_panics() {
        PruningConfig::new(1, 0);
    }

    #[test]
    fn confirmation_slots_count_as_simulated() {
        // Regression: a feasibility confirmation simulates the complement
        // of the pruned set, but those slots used to go uncounted —
        // `pruned_fraction` over-stated savings on every confirmed step.
        let mut s = CornerScheduler::new(6, Some(PruningConfig::new(2, 100)));
        assert!(s.plan_step().full); // unranked corners force a full step
        for ci in 0..6 {
            s.record(ci, ci as f64);
        }
        let plan = s.plan_step();
        assert_eq!(plan.corners.len(), 2);
        s.note_confirmation(4); // the confirmation covered the other 4
        let stats = s.stats();
        assert_eq!(stats.corners_simulated, 6 + 2 + 4);
        assert_eq!(stats.corners_available, 12);
        // A confirmed pruned step costs exactly a full step: its marginal
        // pruned fraction is zero.
        assert_eq!(stats.pruned_fraction(), 0.0);
        // The confirmation also reset the re-rank clock.
        assert!(!s.plan_step().full, "fresh clock: next step prunes again");
    }

    // ---- Campaign runs --------------------------------------------------

    #[test]
    fn full_grid_campaign_solves_toy() {
        let campaign = SizingCampaign::new(toy(), quick());
        let result = campaign.run(7);
        assert!(result.success, "campaign failed: best {}", result.best_reward);
        assert!(result.sims_to_success.is_some());
        assert_eq!(result.pruning.pruned_steps, 0);
        let x = result.final_design.expect("success carries a design");
        assert_eq!(x.len(), 4);
        // Trajectory accounting: per-step sims sum to total − init.
        let step_sims: u64 = result.steps.iter().map(|s| s.sims).sum();
        assert_eq!(step_sims + result.init_sims, result.total_sims);
    }

    #[test]
    fn pruned_campaign_solves_toy_with_fewer_sims() {
        let full = SizingCampaign::new(toy(), quick()).run(7);
        let pruned =
            SizingCampaign::new(toy(), quick().with_pruning(PruningConfig::new(2, 5))).run(7);
        assert!(full.success && pruned.success);
        assert!(pruned.pruning.pruned_fraction() > 0.0);
        assert!(
            pruned.sims_to_success.unwrap() < full.sims_to_success.unwrap(),
            "pruning saved nothing: {:?} vs {:?}",
            pruned.sims_to_success,
            full.sims_to_success
        );
    }

    #[test]
    fn pruned_success_is_feasible_on_the_full_grid() {
        let campaign = SizingCampaign::new(toy(), quick().with_pruning(PruningConfig::new(2, 5)));
        let result = campaign.run(11);
        assert!(result.success);
        // The success step itself achieved full-grid coverage.
        assert!(result.steps.last().is_none_or(|s| s.full_grid));
        // Independent re-check: the final design satisfies the base spec
        // at every corner of the grid.
        let x = result.final_design.unwrap();
        let corners = campaign.problem().config().corners.clone();
        for ci in 0..corners.len() {
            let corner: PvtCorner = corners.corner(ci);
            let h = glova_variation::sampler::MismatchVector::nominal(
                campaign.problem().circuit().mismatch_domain(&x).dim(),
            );
            let outcome = campaign.problem().simulate(&x, &corner, &h);
            assert_eq!(
                outcome.reward, SATISFIED_REWARD,
                "corner {ci} infeasible after pruned success"
            );
        }
    }

    #[test]
    fn pruning_accounting_matches_simulations_paid() {
        // With confirmations counted, the policy loop's simulation bill
        // must reconcile exactly: corner slots simulated × N' conditions
        // per slot == the per-step sims total. (Failed before the
        // confirmation-accounting fix whenever a confirmation fired.)
        let campaign = SizingCampaign::new(toy(), quick().with_pruning(PruningConfig::new(2, 5)));
        let result = campaign.run(11);
        assert!(result.success, "fixture must exercise a confirmation (success step)");
        let n_prime = campaign.problem().config().optim_samples as u64;
        let step_sims: u64 = result.steps.iter().map(|s| s.sims).sum();
        assert_eq!(
            result.pruning.corners_simulated * n_prime,
            step_sims,
            "PruningStats must account for every simulation the policy loop paid"
        );
        assert_eq!(step_sims + result.init_sims, result.total_sims);
    }

    #[test]
    fn stagnation_restarts_keep_accounting_exact() {
        // Force the restart path to fire on every non-improving step: the
        // noise reset must not disturb per-step simulation accounting or
        // the sims_to_success bookkeeping.
        let config = CampaignConfig { stagnation_restart: 1, ..quick() };
        let result = SizingCampaign::new(toy(), config).run(7);
        let step_sims: u64 = result.steps.iter().map(|s| s.sims).sum();
        assert_eq!(step_sims + result.init_sims, result.total_sims);
        if let Some(to_success) = result.sims_to_success {
            assert!(result.success);
            assert_eq!(to_success, result.total_sims, "no yield estimate: success ends the run");
        }
    }

    #[test]
    fn family_goal_switches_keep_per_goal_accounting_exact() {
        // The problem's simulation counter accumulates across a family;
        // each per-goal result must still reconcile against its own
        // baseline, and sims_to_success must stay within the goal's own
        // total (regression guard for the run_goal baseline capture).
        let campaign = SizingCampaign::new(toy(), quick().with_pruning(PruningConfig::new(2, 5)));
        let results = campaign.run_family(&[vec![1.0], vec![0.9]], 19);
        let n_prime = campaign.problem().config().optim_samples as u64;
        for r in &results {
            let step_sims: u64 = r.steps.iter().map(|s| s.sims).sum();
            assert_eq!(step_sims + r.init_sims, r.total_sims);
            assert_eq!(r.pruning.corners_simulated * n_prime, step_sims);
            if let Some(to_success) = r.sims_to_success {
                assert!(to_success <= r.total_sims);
                assert!(to_success >= r.init_sims);
            }
        }
    }

    #[test]
    fn run_with_streams_every_step_and_matches_run() {
        let campaign = SizingCampaign::new(toy(), quick().with_pruning(PruningConfig::new(2, 5)));
        let mut streamed: Vec<CampaignStep> = Vec::new();
        let observed = campaign.run_with(7, &mut |s| streamed.push(s.clone()));
        assert_eq!(streamed, observed.steps, "observer sees exactly the recorded trajectory");
        // The observer must not perturb the run.
        let plain =
            SizingCampaign::new(toy(), quick().with_pruning(PruningConfig::new(2, 5))).run(7);
        assert_eq!(observed.final_design, plain.final_design);
        assert_eq!(observed.total_sims, plain.total_sims);
        assert_eq!(observed.steps.len(), plain.steps.len());
    }

    #[test]
    fn campaign_is_deterministic_across_engines() {
        let mk = |engine| {
            SizingCampaign::new(
                toy(),
                quick().with_pruning(PruningConfig::new(2, 5)).with_engine(engine),
            )
            .run(13)
        };
        let seq = mk(EngineSpec::Sequential);
        let thr = mk(EngineSpec::Threaded(4));
        assert_eq!(seq.success, thr.success);
        assert_eq!(seq.final_design, thr.final_design);
        assert_eq!(seq.total_sims, thr.total_sims);
        assert_eq!(seq.steps.len(), thr.steps.len());
        for (a, b) in seq.steps.iter().zip(&thr.steps) {
            assert_eq!(a.worst_reward.to_bits(), b.worst_reward.to_bits());
            assert_eq!(a.sims, b.sims);
            assert_eq!(a.active_corners, b.active_corners);
        }
    }

    #[test]
    fn tight_goal_is_harder_than_base_spec() {
        // Scaling the Below-limit down tightens the spec; the toy optimum
        // region shrinks, so the goal reward can only be <= the base one.
        let base = SizingCampaign::new(toy(), quick()).run(17);
        let tight = SizingCampaign::new(toy(), quick().with_goal(vec![0.5])).run(17);
        assert!(base.success);
        assert!(tight.best_reward <= base.best_reward + 1e-12);
        assert_eq!(tight.goal_factors, Some(vec![0.5]));
    }

    #[test]
    fn goal_family_shares_one_agent() {
        let campaign = SizingCampaign::new(toy(), quick());
        let results = campaign.run_family(&[vec![1.0], vec![0.8]], 19);
        assert_eq!(results.len(), 2);
        assert!(results[0].success, "relaxed family member must be solvable");
        for (r, factors) in results.iter().zip([vec![1.0], vec![0.8]]) {
            assert_eq!(r.goal_factors, Some(factors));
        }
    }

    #[test]
    fn yield_estimate_reports_goal_spec_yield() {
        let config =
            CampaignConfig { yield_samples: 5, ..quick().with_pruning(PruningConfig::new(2, 5)) };
        let result = SizingCampaign::new(toy(), config).run(7);
        assert!(result.success);
        let y = result.yield_estimate.expect("requested yield estimate");
        let corners = result.steps.first().map_or(30, |s| s.corner_count) as u64;
        assert_eq!(y.samples, 5 * corners);
        assert!(y.yield_point > 0.5, "feasible design should mostly pass: {y}");
        // The estimate's sims are part of the campaign total.
        assert!(result.total_sims > result.sims_to_success.unwrap());
    }
}
