//! The verification phase — Algorithm 2 of the paper.
//!
//! Full verification simulates `N` mismatch conditions on every corner
//! (Table I). To stop early on failing designs, verification proceeds in
//! two passes:
//!
//! 1. **µ-σ pass** — corners are visited worst-first (last-worst-case
//!    buffer order); each corner's `N'` pre-samples are simulated and the
//!    µ-σ criterion (Eq. 7) must pass, else verification fails
//!    immediately. The worst corner's pre-samples are *reused* from the
//!    optimization phase. t-SCOREs and correlation vectors are collected.
//! 2. **full pass** — corners are revisited in descending t-SCORE order
//!    (Eq. 8); each corner's remaining `N − N'` conditions are simulated
//!    in descending h-SCORE order (Eq. 9–10); the first constraint
//!    violation aborts.
//!
//! # Engines and deterministic early abort
//!
//! All batch simulation dispatches through the problem's
//! [`EvalEngine`](crate::engine::EvalEngine). The phase-2 abort is
//! *block-synchronous*: conditions are evaluated in deterministic blocks
//! (geometrically growing from [`MC_BLOCK_MIN`] to [`MC_BLOCK_MAX`]),
//! the violation check and the NaN-propagating worst-reward reduction
//! run over each completed block in a fixed order, and verification
//! aborts at block granularity. Block boundaries depend only on the
//! condition count — never on the engine — so sequential and threaded
//! engines simulate the same set of conditions, spend the same
//! simulation budget, and populate [`VerificationOutcome`] identically.

use crate::engine::map_indexed;
use crate::evaluation::MuSigmaEvaluation;
use crate::problem::{SimOutcome, SizingProblem};
use crate::reorder;
use glova_circuits::spec::SATISFIED_REWARD;
use glova_stats::reduce;
use glova_stats::rng::Rng64;
use glova_variation::sampler::MismatchVector;

/// First phase-2 block size: blocks grow geometrically from here, so a
/// failure that h-SCORE reordering front-loads aborts after a single
/// simulation — preserving the Eq. 9–10 early-abort economics.
pub const MC_BLOCK_MIN: usize = 1;

/// Phase-2 block-size cap: bounds both the abort latency on designs that
/// fail deep into a corner and the batch the engine fans out at once.
pub const MC_BLOCK_MAX: usize = 64;

/// Pre-simulated conditions for one corner, reusable from the
/// optimization phase.
#[derive(Debug, Clone)]
pub struct ReusableSamples {
    /// Corner index within the problem's corner set.
    pub corner_index: usize,
    /// The sampled mismatch conditions.
    pub conditions: Vec<MismatchVector>,
    /// Their simulation outcomes.
    pub outcomes: Vec<SimOutcome>,
}

/// Result of a verification attempt.
#[derive(Debug, Clone, PartialEq)]
pub struct VerificationOutcome {
    /// Whether the design passed full verification.
    pub passed: bool,
    /// Corner index where verification failed, if it failed.
    pub failed_corner: Option<usize>,
    /// Simulations spent inside this verification attempt.
    pub simulations_used: u64,
    /// Worst reward observed per corner index (for last-worst updates).
    pub per_corner_worst: Vec<(usize, f64)>,
}

/// Algorithm-2 verifier over a sizing problem.
#[derive(Debug, Clone, Copy)]
pub struct Verifier<'a> {
    problem: &'a SizingProblem,
    beta2: f64,
    use_mu_sigma: bool,
    use_reordering: bool,
}

impl<'a> Verifier<'a> {
    /// Creates a verifier with the paper's defaults (`β₂`, both
    /// accelerations enabled).
    pub fn new(problem: &'a SizingProblem, beta2: f64) -> Self {
        Self { problem, beta2, use_mu_sigma: true, use_reordering: true }
    }

    /// Disables the µ-σ gate (Table III "w/o µ-σ" ablation): phase 1 then
    /// only fails on outright sample violations.
    pub fn without_mu_sigma(mut self) -> Self {
        self.use_mu_sigma = false;
        self
    }

    /// Disables both reordering methods (Table III "w/o SR" ablation):
    /// corners and conditions are visited in natural order.
    pub fn without_reordering(mut self) -> Self {
        self.use_reordering = false;
        self
    }

    /// Runs Algorithm 2 on design `x`.
    ///
    /// `corner_order_hint` is the worst-first corner order from the
    /// last-worst-case buffer (ignored when reordering is disabled);
    /// `reuse` optionally provides the worst corner's already-simulated
    /// `N'` conditions.
    pub fn verify(
        &self,
        x: &[f64],
        corner_order_hint: &[usize],
        reuse: Option<&ReusableSamples>,
        rng: &mut Rng64,
    ) -> VerificationOutcome {
        let config = self.problem.config();
        let spec = self.problem.circuit().spec();
        let n_corners = config.corners.len();
        let n_prime = config.optim_samples;
        let n_full = config.verif_samples_per_corner;
        let sims_before = self.problem.simulations();

        let mut per_corner_worst: Vec<(usize, f64)> = Vec::new();
        let fail =
            |failed_corner: usize, per_corner_worst: Vec<(usize, f64)>| -> VerificationOutcome {
                VerificationOutcome {
                    passed: false,
                    failed_corner: Some(failed_corner),
                    simulations_used: self.problem.simulations() - sims_before,
                    per_corner_worst,
                }
            };

        // ---- Phase 1: µ-σ over N' pre-samples per corner -----------------
        let phase1_order: Vec<usize> = if self.use_reordering {
            assert_eq!(corner_order_hint.len(), n_corners, "corner hint length mismatch");
            corner_order_hint.to_vec()
        } else {
            (0..n_corners).collect()
        };

        let mut t_scores = vec![0.0; n_corners];
        // Phase-1 samples pooled across corners: with N' as small as 2–5,
        // a per-corner Pearson estimate (Eq. 9 literal) is mostly noise;
        // pooling the normalized degradations over all corners gives the
        // h-SCORE a usable correlation vector (see `DESIGN.md` §5).
        let mut pooled_conditions: Vec<MismatchVector> = Vec::new();
        let mut pooled_outcomes: Vec<SimOutcome> = Vec::new();
        let mut pooled_ssd = vec![0.0f64; spec.len()];
        let mut pooled_dof = 0usize;
        for &ci in &phase1_order {
            let corner = config.corners.corner(ci);
            let (conditions, outcomes) = match reuse {
                Some(r) if r.corner_index == ci => (r.conditions.clone(), r.outcomes.clone()),
                _ => {
                    let conditions = self.problem.sample_conditions(x, n_prime, rng);
                    let (outcomes, _) = self.problem.simulate_conditions(x, &corner, &conditions);
                    (conditions, outcomes)
                }
            };
            pooled_conditions.extend(conditions.iter().cloned());
            pooled_outcomes.extend(outcomes.iter().cloned());

            // Pooled within-corner σ per metric from all corners processed
            // so far (χ²-robust once ≥ 10 degrees of freedom accumulate).
            for (mi, ssd) in pooled_ssd.iter_mut().enumerate() {
                let mean =
                    outcomes.iter().map(|o| o.metrics[mi]).sum::<f64>() / outcomes.len() as f64;
                *ssd += outcomes.iter().map(|o| (o.metrics[mi] - mean).powi(2)).sum::<f64>();
            }
            pooled_dof += outcomes.len().saturating_sub(1);
            let pooled_sigma: Option<Vec<f64>> = if pooled_dof >= 10 {
                Some(pooled_ssd.iter().map(|s| (s / pooled_dof as f64).sqrt()).collect())
            } else {
                None
            };
            let sample_worst = reduce::worst(outcomes.iter().map(|o| o.reward));
            let eval = MuSigmaEvaluation::evaluate_with_pool(
                spec,
                &outcomes,
                self.beta2,
                pooled_sigma.as_deref(),
            );
            // The corner's recorded worst folds in the µ-σ bound reward:
            // a corner whose samples pass but whose bound fails must read
            // as "not robust" to the last-worst buffer and the agent.
            let worst = if self.use_mu_sigma {
                reduce::nan_min(sample_worst, spec.reward(&eval.bounds))
            } else {
                sample_worst
            };
            per_corner_worst.push((ci, worst));

            if self.use_mu_sigma {
                // Reject on the µ-σ bound only once the pooled σ is
                // χ²-stable; before that, a single unlucky 3-sample draw
                // would falsely reject robust designs. Outright sample
                // violations always reject.
                let sigma_stable = pooled_sigma.is_some();
                let sample_violation = outcomes.iter().any(|o| o.reward != SATISFIED_REWARD);
                if (sigma_stable && !eval.passed) || sample_violation {
                    return fail(ci, per_corner_worst);
                }
            } else if outcomes.iter().any(|o| o.reward != SATISFIED_REWARD) {
                return fail(ci, per_corner_worst);
            }
            t_scores[ci] = eval.t_score();
        }
        let rho = reorder::correlation_vector(spec, &pooled_conditions, &pooled_outcomes);

        // ---- Phase 2: remaining N − N' samples per corner -----------------
        if n_full > n_prime {
            let phase2_order: Vec<usize> = if self.use_reordering {
                reorder::order_corners_by_t_score(&t_scores)
            } else {
                (0..n_corners).collect()
            };
            for &ci in &phase2_order {
                let corner = config.corners.corner(ci);
                // Fresh die per MC point: independent global draws.
                let conditions =
                    self.problem.sample_conditions_independent(x, n_full - n_prime, rng);
                let order: Vec<usize> = if self.use_reordering {
                    reorder::order_conditions_by_h_score(&conditions, &rho)
                } else {
                    (0..conditions.len()).collect()
                };
                // Block-synchronous sweep: each block fans out through the
                // engine, then the violation check and worst-reward
                // reduction run deterministically over the completed block.
                let mut corner_worst = f64::INFINITY;
                let mut start = 0usize;
                let mut block = MC_BLOCK_MIN;
                while start < order.len() {
                    let chunk = &order[start..(start + block).min(order.len())];
                    let outcomes = map_indexed(self.problem.engine().as_ref(), chunk.len(), |j| {
                        self.problem.simulate(x, &corner, &conditions[chunk[j]])
                    });
                    corner_worst = reduce::nan_min(
                        corner_worst,
                        reduce::worst(outcomes.iter().map(|o| o.reward)),
                    );
                    if outcomes.iter().any(|o| o.reward != SATISFIED_REWARD) {
                        per_corner_worst.push((ci, corner_worst));
                        return fail(ci, per_corner_worst);
                    }
                    start += chunk.len();
                    block = (block * 2).min(MC_BLOCK_MAX);
                }
                per_corner_worst.push((ci, corner_worst));
            }
        }

        VerificationOutcome {
            passed: true,
            failed_corner: None,
            simulations_used: self.problem.simulations() - sims_before,
            per_corner_worst,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use glova_circuits::ToyQuadratic;
    use glova_stats::rng::seeded;
    use glova_variation::config::VerificationMethod;
    use std::sync::Arc;

    fn problem(method: VerificationMethod) -> SizingProblem {
        // Mismatch-insensitive toy so corner-only feasibility is exact.
        SizingProblem::new(
            Arc::new(ToyQuadratic::standard().with_mismatch_sensitivity(0.05)),
            method,
        )
    }

    fn natural_order(p: &SizingProblem) -> Vec<usize> {
        (0..p.config().corners.len()).collect()
    }

    #[test]
    fn good_design_passes_corner_verification() {
        let p = problem(VerificationMethod::Corner);
        let x = ToyQuadratic::standard().optimum().to_vec();
        let verifier = Verifier::new(&p, 4.0);
        let mut rng = seeded(1);
        let outcome = verifier.verify(&x, &natural_order(&p), None, &mut rng);
        assert!(outcome.passed);
        // C config: N = N' = 1 → exactly 30 simulations.
        assert_eq!(outcome.simulations_used, 30);
    }

    #[test]
    fn bad_design_fails_early_with_mu_sigma() {
        let p = problem(VerificationMethod::CornerLocalMc);
        let x = vec![0.0; 4]; // far from optimum
        let verifier = Verifier::new(&p, 4.0);
        let mut rng = seeded(2);
        let outcome = verifier.verify(&x, &natural_order(&p), None, &mut rng);
        assert!(!outcome.passed);
        // Early abort: far fewer than the full 3000 simulations.
        assert!(
            outcome.simulations_used <= 3,
            "expected first-corner abort, used {}",
            outcome.simulations_used
        );
        assert!(outcome.failed_corner.is_some());
    }

    #[test]
    fn full_mc_verification_uses_full_budget_when_passing() {
        let p = problem(VerificationMethod::CornerLocalMc);
        let x = ToyQuadratic::standard().optimum().to_vec();
        let verifier = Verifier::new(&p, 4.0);
        let mut rng = seeded(3);
        let outcome = verifier.verify(&x, &natural_order(&p), None, &mut rng);
        assert!(outcome.passed, "optimum should verify");
        assert_eq!(outcome.simulations_used, 3000, "100 samples × 30 corners");
    }

    #[test]
    fn reuse_skips_worst_corner_presamples() {
        let p = problem(VerificationMethod::CornerLocalMc);
        let x = ToyQuadratic::standard().optimum().to_vec();
        let mut rng = seeded(4);
        // Pre-simulate corner 0's N' samples.
        let conditions = p.sample_conditions(&x, 3, &mut rng);
        let corner = p.config().corners.corner(0);
        let (outcomes, _) = p.simulate_conditions(&x, &corner, &conditions);
        let reuse = ReusableSamples { corner_index: 0, conditions, outcomes };
        let sims_before_verify = p.simulations();
        let verifier = Verifier::new(&p, 4.0);
        let outcome = verifier.verify(&x, &natural_order(&p), Some(&reuse), &mut rng);
        assert!(outcome.passed);
        // 3 samples were reused: phase 1 costs 29×3, phase 2 30×97.
        assert_eq!(outcome.simulations_used, 29 * 3 + 30 * 97);
        assert_eq!(p.simulations() - sims_before_verify, outcome.simulations_used);
    }

    #[test]
    fn reordering_finds_failures_faster_on_average() {
        // A design just at the feasibility edge: some mismatch samples fail.
        let toy = ToyQuadratic::standard().with_mismatch_sensitivity(3.0);
        let mut x = toy.optimum().to_vec();
        x[0] += 0.13; // near-boundary design
        let p = SizingProblem::new(Arc::new(toy), VerificationMethod::CornerLocalMc);
        let natural = natural_order(&p);

        let mut sims_with = 0u64;
        let mut sims_without = 0u64;
        let mut fails = 0;
        for seed in 0..12 {
            let mut rng = seeded(100 + seed);
            let with = Verifier::new(&p, 4.0).verify(&x, &natural, None, &mut rng);
            let mut rng = seeded(100 + seed);
            let without =
                Verifier::new(&p, 4.0).without_reordering().verify(&x, &natural, None, &mut rng);
            // Only compare runs where both fail in phase 2 (same data).
            if !with.passed && !without.passed {
                fails += 1;
                sims_with += with.simulations_used;
                sims_without += without.simulations_used;
            }
        }
        assert!(fails >= 3, "edge design should fail verification often");
        assert!(
            sims_with <= sims_without,
            "reordering should not cost more sims: {sims_with} vs {sims_without}"
        );
    }

    #[test]
    fn per_corner_worst_is_populated() {
        let p = problem(VerificationMethod::Corner);
        let x = ToyQuadratic::standard().optimum().to_vec();
        let verifier = Verifier::new(&p, 4.0);
        let mut rng = seeded(5);
        let outcome = verifier.verify(&x, &natural_order(&p), None, &mut rng);
        assert_eq!(outcome.per_corner_worst.len(), 30);
    }

    #[test]
    fn without_mu_sigma_only_rejects_outright_violations() {
        // Construct samples that pass individually but have high variance:
        // with µ-σ they fail, without they pass phase 1.
        let p = problem(VerificationMethod::CornerLocalMc);
        let toy = ToyQuadratic::standard();
        let mut x = toy.optimum().to_vec();
        // Marginal by construction: samples sit just below the limit
        // (≈ 0.046 vs 0.05) so they pass individually, while the µ-σ bound
        // (mean + β₂σ) crosses the limit.
        x[1] += 0.167;
        let natural = natural_order(&p);
        let mut strict_rejects = 0;
        let mut lax_rejects = 0;
        let mut strict_sims = 0u64;
        let mut lax_sims = 0u64;
        for seed in 0..8 {
            let mut rng = seeded(200 + seed);
            let strict = Verifier::new(&p, 6.0).verify(&x, &natural, None, &mut rng);
            let mut rng = seeded(200 + seed);
            let lax =
                Verifier::new(&p, 6.0).without_mu_sigma().verify(&x, &natural, None, &mut rng);
            strict_rejects += usize::from(!strict.passed);
            lax_rejects += usize::from(!lax.passed);
            strict_sims += strict.simulations_used;
            lax_sims += lax.simulations_used;
        }
        // The µ-σ verifier must reject marginal designs at least as often,
        // spending no more simulations overall.
        assert!(strict_rejects >= lax_rejects, "{strict_rejects} vs {lax_rejects}");
        assert!(strict_rejects > 0, "marginal design should be rejected sometimes");
        assert!(strict_sims <= lax_sims, "µ-σ should not cost sims: {strict_sims} vs {lax_sims}");
    }
}
