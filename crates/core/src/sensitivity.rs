//! One-at-a-time design-parameter sensitivity analysis.
//!
//! After sizing, designers want to know which parameters the verified
//! solution is *fragile* in: how much does each metric's worst-corner
//! margin move per unit of normalized parameter change? This drives both
//! layout-margin decisions and which devices deserve tighter matching.

use crate::problem::SizingProblem;
use glova_variation::sampler::MismatchVector;

/// Sensitivity of each metric to each design parameter.
#[derive(Debug, Clone, PartialEq)]
pub struct SensitivityReport {
    /// `gradients[p][m]` = ∂(normalized margin of metric `m` at its worst
    /// corner)/∂(normalized parameter `p`), by central differences.
    pub gradients: Vec<Vec<f64>>,
    /// Parameter names, aligned with the first axis.
    pub parameter_names: Vec<String>,
    /// Metric names, aligned with the second axis.
    pub metric_names: Vec<String>,
    /// Step used for the central differences (normalized units).
    pub step: f64,
}

impl SensitivityReport {
    /// The parameter index with the largest absolute margin gradient for
    /// `metric` — the knob that most affects that spec.
    ///
    /// # Panics
    ///
    /// Panics if `metric` is out of range.
    pub fn most_sensitive_parameter(&self, metric: usize) -> usize {
        assert!(metric < self.metric_names.len(), "metric index out of range");
        self.gradients
            .iter()
            .enumerate()
            .max_by(|a, b| {
                a.1[metric].abs().partial_cmp(&b.1[metric].abs()).expect("finite gradients")
            })
            .map(|(i, _)| i)
            .expect("at least one parameter")
    }
}

impl std::fmt::Display for SensitivityReport {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{:<14}", "parameter")?;
        for m in &self.metric_names {
            write!(f, "{m:>16}")?;
        }
        writeln!(f)?;
        for (pi, name) in self.parameter_names.iter().enumerate() {
            write!(f, "{name:<14}")?;
            for mi in 0..self.metric_names.len() {
                write!(f, "{:>16.4}", self.gradients[pi][mi])?;
            }
            writeln!(f)?;
        }
        Ok(())
    }
}

/// Computes the nominal-mismatch worst-corner margin of every metric at a
/// design point.
fn worst_corner_margins(problem: &SizingProblem, x: &[f64]) -> Vec<f64> {
    let spec = problem.circuit().spec();
    let h = MismatchVector::nominal(problem.circuit().mismatch_domain(x).dim());
    let mut worst = vec![f64::INFINITY; spec.len()];
    for corner in problem.config().corners.clone().iter() {
        let outcome = problem.simulate(x, corner, &h);
        for (w, f_i) in worst.iter_mut().zip(spec.normalized(&outcome.metrics)) {
            *w = w.min(f_i);
        }
    }
    worst
}

/// One-at-a-time central-difference sensitivity of the worst-corner
/// normalized margins around design `x`.
///
/// Costs `2 · p · k` simulations (`p` parameters, `k` corners), counted on
/// the problem's simulation counter like any other work.
///
/// # Panics
///
/// Panics if `step` is not in `(0, 0.5)` or `x` has the wrong dimension.
pub fn sensitivity_sweep(problem: &SizingProblem, x: &[f64], step: f64) -> SensitivityReport {
    assert!(step > 0.0 && step < 0.5, "step must be in (0, 0.5)");
    assert_eq!(x.len(), problem.dim(), "design dimension mismatch");
    let circuit = problem.circuit();
    let mut gradients = Vec::with_capacity(x.len());
    for p in 0..x.len() {
        let mut x_hi = x.to_vec();
        let mut x_lo = x.to_vec();
        x_hi[p] = (x[p] + step).min(1.0);
        x_lo[p] = (x[p] - step).max(0.0);
        let span = x_hi[p] - x_lo[p];
        let m_hi = worst_corner_margins(problem, &x_hi);
        let m_lo = worst_corner_margins(problem, &x_lo);
        gradients
            .push(m_hi.iter().zip(&m_lo).map(|(hi, lo)| (hi - lo) / span.max(1e-12)).collect());
    }
    SensitivityReport {
        gradients,
        parameter_names: circuit.parameter_names(),
        metric_names: circuit.spec().metrics().iter().map(|m| m.name.clone()).collect(),
        step,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use glova_circuits::ToyQuadratic;
    use glova_variation::config::VerificationMethod;
    use std::sync::Arc;

    fn problem() -> SizingProblem {
        SizingProblem::new(Arc::new(ToyQuadratic::standard()), VerificationMethod::Corner)
    }

    #[test]
    fn gradient_points_toward_optimum() {
        // At a point left of the optimum in dim 0, increasing x0 must
        // improve (raise) the margin.
        let p = problem();
        let mut x = ToyQuadratic::standard().optimum().to_vec();
        x[0] -= 0.15;
        let report = sensitivity_sweep(&p, &x, 0.05);
        assert!(
            report.gradients[0][0] > 0.0,
            "moving toward the optimum should raise the margin: {:?}",
            report.gradients
        );
    }

    #[test]
    fn gradient_near_zero_at_optimum() {
        let p = problem();
        let x = ToyQuadratic::standard().optimum().to_vec();
        let report = sensitivity_sweep(&p, &x, 0.05);
        for row in &report.gradients {
            assert!(row[0].abs() < 1.0, "near-stationary at the optimum: {row:?}");
        }
    }

    #[test]
    fn most_sensitive_parameter_is_largest_displacement() {
        let p = problem();
        let mut x = ToyQuadratic::standard().optimum().to_vec();
        x[2] -= 0.3; // strongly displaced in dim 2
        let report = sensitivity_sweep(&p, &x, 0.05);
        assert_eq!(report.most_sensitive_parameter(0), 2);
    }

    #[test]
    fn simulation_cost_is_accounted() {
        let p = problem();
        let x = ToyQuadratic::standard().optimum().to_vec();
        p.reset_simulations();
        let _ = sensitivity_sweep(&p, &x, 0.05);
        // 2 sides × 4 params × 30 corners.
        assert_eq!(p.simulations(), 2 * 4 * 30);
    }

    #[test]
    fn display_renders_table() {
        let p = problem();
        let x = ToyQuadratic::standard().optimum().to_vec();
        let report = sensitivity_sweep(&p, &x, 0.05);
        let text = report.to_string();
        assert!(text.contains("parameter"));
        assert!(text.contains("distance_sq"));
    }

    #[test]
    #[should_panic(expected = "step must be in")]
    fn bad_step_panics() {
        let p = problem();
        let x = vec![0.5; 4];
        sensitivity_sweep(&p, &x, 0.9);
    }
}
