//! Deterministic fault injection for robustness testing.
//!
//! A [`FaultPlan`] maps *simulation ordinals* — the 0-based sequence
//! number a [`SizingProblem`](crate::problem::SizingProblem) assigns to
//! each `simulate` call — to a [`FaultKind`] forced at that point.
//! Because the `Sequential` engine (the `CampaignConfig::quick` /
//! `::paper` default) dispatches simulations in a deterministic order,
//! the ordinal stream of a seeded campaign is reproducible, so a plan
//! hits the *same* evaluation on every run: fault batteries can assert
//! bitwise trajectory properties around the injection points instead of
//! statistical ones.
//!
//! Injection happens in `SizingProblem::simulate`, after the ordinal is
//! assigned but before the cache is consulted:
//!
//! - [`FaultKind::NonConvergence`] returns the degraded NaN-metric
//!   outcome a real unrecovered Newton failure produces, **bypassing the
//!   cache** so an injected failure can never alias a clean outcome for
//!   another campaign sharing the cache.
//! - [`FaultKind::Panic`] panics, exercising worker-level unwind
//!   isolation (`catch_unwind` in `glova-serve`, pool hygiene in
//!   `OpSolverPool`).
//! - [`FaultKind::Slow`] sleeps before evaluating normally, widening
//!   cancellation windows in latency tests without changing any outcome.

use std::collections::HashMap;
use std::time::Duration;

/// What to force at an injection point.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FaultKind {
    /// The evaluation degrades to NaN metrics / worst reward, exactly as
    /// an unrecovered non-convergent solve would.
    NonConvergence,
    /// The evaluation panics (worker isolation test).
    Panic,
    /// The evaluation sleeps for the given duration, then completes
    /// normally (cancellation-latency test).
    Slow(Duration),
}

/// A seeded, ordinal-indexed injection schedule.
///
/// The default plan is empty (injects nothing), so threading an
/// `Option<Arc<FaultPlan>>` through production paths costs one pointer
/// check per simulation.
#[derive(Debug, Clone, Default)]
pub struct FaultPlan {
    faults: HashMap<u64, FaultKind>,
}

impl FaultPlan {
    /// An empty plan.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds a fault at the given simulation ordinal (builder style).
    /// A later fault at the same ordinal replaces the earlier one.
    pub fn with_fault(mut self, ordinal: u64, kind: FaultKind) -> Self {
        self.faults.insert(ordinal, kind);
        self
    }

    /// A plan with `count` distinct ordinals drawn from `[0, range)`
    /// under a splitmix64 stream, all injecting `kind`. The draw is a
    /// pure function of `(seed, range, count)` — two plans built with
    /// the same arguments hit the same ordinals.
    pub fn seeded(seed: u64, range: u64, count: usize, kind: FaultKind) -> Self {
        assert!(count as u64 <= range, "cannot draw {count} distinct ordinals from [0, {range})");
        let mut state = seed ^ 0xFA17_F1A6_D15E_A5ED;
        let mut faults = HashMap::with_capacity(count);
        while faults.len() < count {
            let ordinal = splitmix64(&mut state) % range;
            faults.entry(ordinal).or_insert_with(|| kind.clone());
        }
        Self { faults }
    }

    /// The fault scheduled at `ordinal`, if any.
    pub fn fault_at(&self, ordinal: u64) -> Option<&FaultKind> {
        self.faults.get(&ordinal)
    }

    /// Number of scheduled injection points.
    pub fn len(&self) -> usize {
        self.faults.len()
    }

    /// Whether the plan injects nothing.
    pub fn is_empty(&self) -> bool {
        self.faults.is_empty()
    }

    /// Scheduled ordinals in ascending order (test diagnostics).
    pub fn ordinals(&self) -> Vec<u64> {
        let mut out: Vec<u64> = self.faults.keys().copied().collect();
        out.sort_unstable();
        out
    }
}

/// One step of the splitmix64 generator (public-domain constants).
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_registers_and_replaces() {
        let plan = FaultPlan::new()
            .with_fault(3, FaultKind::Panic)
            .with_fault(3, FaultKind::NonConvergence)
            .with_fault(7, FaultKind::Slow(Duration::from_millis(5)));
        assert_eq!(plan.len(), 2);
        assert_eq!(plan.fault_at(3), Some(&FaultKind::NonConvergence));
        assert_eq!(plan.fault_at(7), Some(&FaultKind::Slow(Duration::from_millis(5))));
        assert_eq!(plan.fault_at(0), None);
        assert_eq!(plan.ordinals(), vec![3, 7]);
    }

    #[test]
    fn seeded_plans_are_reproducible_and_distinct_by_seed() {
        let a = FaultPlan::seeded(11, 500, 8, FaultKind::NonConvergence);
        let b = FaultPlan::seeded(11, 500, 8, FaultKind::NonConvergence);
        let c = FaultPlan::seeded(12, 500, 8, FaultKind::NonConvergence);
        assert_eq!(a.ordinals(), b.ordinals());
        assert_ne!(a.ordinals(), c.ordinals());
        assert_eq!(a.len(), 8);
        assert!(a.ordinals().iter().all(|&o| o < 500));
    }

    #[test]
    fn empty_plan_is_empty() {
        assert!(FaultPlan::new().is_empty());
        assert_eq!(FaultPlan::default().len(), 0);
    }
}
