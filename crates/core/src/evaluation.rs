//! The µ-σ evaluation method (paper §V.A, Eq. 7).
//!
//! From a small pre-sampled subset of `N'` Monte-Carlo points, estimate
//! whether the *full* distribution would pass: every metric's conservative
//! bound `E[F_i] + β₂σ[F_i]` (orientation-aware, see
//! [`MetricSpec::mu_sigma_bound`](glova_circuits::spec::MetricSpec))
//! must still satisfy its constraint. β₂ ≥ 4 compensates for the
//! incompleteness of the small sample.

use crate::problem::SimOutcome;
use glova_circuits::spec::DesignSpec;
use glova_stats::descriptive::RunningStats;

/// Result of a µ-σ evaluation over one corner's sampled outcomes.
#[derive(Debug, Clone, PartialEq)]
pub struct MuSigmaEvaluation {
    /// Conservative bound `e_i` per metric (already oriented so that
    /// "satisfies constraint" has its usual meaning).
    pub bounds: Vec<f64>,
    /// Whether every bound satisfies its constraint.
    pub passed: bool,
    /// Normalized violation margins of the bounds (0 when satisfied) —
    /// the summands of the t-SCORE (Eq. 8, normalized per `DESIGN.md` §5).
    pub violations: Vec<f64>,
}

impl MuSigmaEvaluation {
    /// Evaluates Eq. 7 over the sampled outcomes.
    ///
    /// # Panics
    ///
    /// Panics if `outcomes` is empty or metric counts disagree with the
    /// spec.
    pub fn evaluate(spec: &DesignSpec, outcomes: &[SimOutcome], beta2: f64) -> Self {
        Self::evaluate_with_pool(spec, outcomes, beta2, None)
    }

    /// Like [`MuSigmaEvaluation::evaluate`], but when a pooled per-metric σ
    /// estimate is available (from other corners' samples of the same
    /// design), each metric uses `min(σ̂_local, σ_pooled)`.
    ///
    /// With `N'` as small as 2–5, the per-corner σ̂ is χ-distributed with
    /// enormous spread; a single unlucky draw inflates the bound and
    /// falsely rejects a robust design. Mismatch-induced variance is
    /// corner-independent in scale to first order, so pooling
    /// within-corner deviations across corners is statistically sound
    /// (see `DESIGN.md` §5).
    ///
    /// # Panics
    ///
    /// Panics if `outcomes` is empty or metric counts disagree.
    pub fn evaluate_with_pool(
        spec: &DesignSpec,
        outcomes: &[SimOutcome],
        beta2: f64,
        pooled_sigma: Option<&[f64]>,
    ) -> Self {
        assert!(!outcomes.is_empty(), "µ-σ evaluation needs at least one sample");
        let m = spec.len();
        if let Some(p) = pooled_sigma {
            assert_eq!(p.len(), m, "pooled sigma count mismatch");
        }
        let mut stats = vec![RunningStats::new(); m];
        for outcome in outcomes {
            assert_eq!(outcome.metrics.len(), m, "metric count mismatch");
            for (s, &v) in stats.iter_mut().zip(&outcome.metrics) {
                s.push(v);
            }
        }
        let mut bounds = Vec::with_capacity(m);
        let mut violations = Vec::with_capacity(m);
        let mut passed = true;
        for (i, (metric, s)) in spec.metrics().iter().zip(&stats).enumerate() {
            let sigma = match pooled_sigma {
                Some(p) => s.std_dev().min(p[i]),
                None => s.std_dev(),
            };
            let bound = metric.mu_sigma_bound(s.mean(), sigma, beta2);
            passed &= metric.satisfied(bound);
            violations.push(metric.violation(bound));
            bounds.push(bound);
        }
        Self { bounds, passed, violations }
    }

    /// The t-SCORE contribution of this corner: the sum of normalized
    /// bound violations (higher = more likely to fail, Eq. 8).
    pub fn t_score(&self) -> f64 {
        self.violations.iter().sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use glova_circuits::spec::{DesignSpec, MetricSpec};

    fn spec() -> DesignSpec {
        DesignSpec::new(vec![MetricSpec::below("power", 40.0), MetricSpec::above("margin", 85.0)])
    }

    fn outcome(power: f64, margin: f64) -> SimOutcome {
        SimOutcome { metrics: vec![power, margin], reward: 0.0 }
    }

    #[test]
    fn comfortable_margins_pass() {
        let outcomes = vec![outcome(20.0, 120.0), outcome(21.0, 118.0), outcome(19.5, 122.0)];
        let eval = MuSigmaEvaluation::evaluate(&spec(), &outcomes, 4.0);
        assert!(eval.passed);
        assert_eq!(eval.t_score(), 0.0);
    }

    #[test]
    fn high_variance_fails_despite_good_mean() {
        // Mean power 30 < 40, but σ ≈ 8 → bound ≈ 62 → fail. This is the
        // defining property of the µ-σ gate: it rejects designs whose
        // *distribution* will fail even when the samples pass.
        let outcomes = vec![outcome(22.0, 120.0), outcome(30.0, 120.0), outcome(38.0, 120.0)];
        let eval = MuSigmaEvaluation::evaluate(&spec(), &outcomes, 4.0);
        assert!(!eval.passed);
        assert!(eval.t_score() > 0.0);
    }

    #[test]
    fn above_metrics_use_lower_bound() {
        // Margin mean 95 ≥ 85, but σ 5 → bound 95 − 20 = 75 < 85 → fail.
        let outcomes = vec![outcome(20.0, 90.0), outcome(20.0, 95.0), outcome(20.0, 100.0)];
        let eval = MuSigmaEvaluation::evaluate(&spec(), &outcomes, 4.0);
        assert!(!eval.passed);
    }

    #[test]
    fn beta2_zero_reduces_to_mean_check() {
        let outcomes = vec![outcome(39.0, 86.0), outcome(41.0, 84.0)];
        // Means: power 40 (= limit, pass), margin 85 (= limit, pass).
        let eval = MuSigmaEvaluation::evaluate(&spec(), &outcomes, 0.0);
        assert!(eval.passed);
        // With β₂ = 4 the same data fail.
        let eval4 = MuSigmaEvaluation::evaluate(&spec(), &outcomes, 4.0);
        assert!(!eval4.passed);
    }

    #[test]
    fn single_sample_has_zero_sigma() {
        let outcomes = vec![outcome(39.9, 85.1)];
        let eval = MuSigmaEvaluation::evaluate(&spec(), &outcomes, 4.0);
        assert!(eval.passed, "σ = 0 for one sample → bound = mean");
    }

    #[test]
    fn t_score_orders_severity() {
        let mild = MuSigmaEvaluation::evaluate(&spec(), &[outcome(45.0, 120.0)], 4.0);
        let severe = MuSigmaEvaluation::evaluate(&spec(), &[outcome(80.0, 50.0)], 4.0);
        assert!(severe.t_score() > mild.t_score());
    }

    #[test]
    #[should_panic(expected = "at least one sample")]
    fn empty_outcomes_panic() {
        MuSigmaEvaluation::evaluate(&spec(), &[], 4.0);
    }
}
