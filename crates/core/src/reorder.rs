//! Simulation reordering (paper §V.B, Eq. 8–10).
//!
//! Verification runs thousands of simulations; detecting failure *early*
//! lets the framework abort and return to optimization cheaply. Two
//! orderings are computed from the `N'` pre-sampled points:
//!
//! - **Corner reordering** — corners are ranked by
//!   `t-SCORE_j = Σ_i e_{j,i}` (Eq. 8): the corner whose µ-σ bounds sit
//!   closest to (or beyond) the constraints is simulated first.
//! - **MC reordering** — within a corner, the Pearson correlation vector
//!   `ρ_j` between mismatch components and the aggregate degradation `g`
//!   (Eq. 9) scores each *unsimulated* mismatch condition by
//!   `h-SCORE = Σ h ∘ ρ` (Eq. 10); high scores are simulated first.

use crate::problem::SimOutcome;
use glova_circuits::spec::DesignSpec;
use glova_stats::correlation::column_pearson;
use glova_variation::sampler::MismatchVector;

/// Sorts corner indices by descending t-SCORE (most-likely-to-fail first);
/// ties broken by index for determinism.
pub fn order_corners_by_t_score(t_scores: &[f64]) -> Vec<usize> {
    let mut order: Vec<usize> = (0..t_scores.len()).collect();
    order.sort_by(|&a, &b| {
        t_scores[b].partial_cmp(&t_scores[a]).expect("t-scores are finite").then(a.cmp(&b))
    });
    order
}

/// The Pearson correlation vector `ρ_j` (Eq. 9) between each mismatch
/// component and the aggregate degradation `g = Σ_i degradation_i` of the
/// pre-sampled points.
///
/// # Panics
///
/// Panics if lengths disagree.
pub fn correlation_vector(
    spec: &DesignSpec,
    conditions: &[MismatchVector],
    outcomes: &[SimOutcome],
) -> Vec<f64> {
    assert_eq!(conditions.len(), outcomes.len(), "condition/outcome count mismatch");
    let rows: Vec<Vec<f64>> = conditions.iter().map(|c| c.values().to_vec()).collect();
    let g: Vec<f64> = outcomes.iter().map(|o| spec.degradation(&o.metrics)).collect();
    column_pearson(&rows, &g)
}

/// The h-SCORE of one mismatch condition (Eq. 10): `Σ_i h_i · ρ_i`.
/// Higher = more likely to fail.
///
/// # Panics
///
/// Panics if dimensions disagree.
pub fn h_score(condition: &MismatchVector, rho: &[f64]) -> f64 {
    assert_eq!(condition.dim(), rho.len(), "mismatch/correlation dimension mismatch");
    condition.values().iter().zip(rho).map(|(h, r)| h * r).sum()
}

/// Sorts condition indices by descending h-SCORE (most-likely-to-fail
/// first); ties broken by index.
pub fn order_conditions_by_h_score(conditions: &[MismatchVector], rho: &[f64]) -> Vec<usize> {
    let scores: Vec<f64> = conditions.iter().map(|c| h_score(c, rho)).collect();
    let mut order: Vec<usize> = (0..conditions.len()).collect();
    order.sort_by(|&a, &b| {
        scores[b].partial_cmp(&scores[a]).expect("h-scores are finite").then(a.cmp(&b))
    });
    order
}

#[cfg(test)]
mod tests {
    use super::*;
    use glova_circuits::spec::{DesignSpec, MetricSpec};
    use proptest::prelude::*;

    fn spec() -> DesignSpec {
        DesignSpec::new(vec![MetricSpec::below("m", 10.0)])
    }

    #[test]
    fn corner_ordering_descends() {
        let order = order_corners_by_t_score(&[0.1, 2.0, 0.0, 0.5]);
        assert_eq!(order, vec![1, 3, 0, 2]);
    }

    #[test]
    fn corner_ordering_ties_are_deterministic() {
        let order = order_corners_by_t_score(&[1.0, 1.0, 1.0]);
        assert_eq!(order, vec![0, 1, 2]);
    }

    #[test]
    fn correlation_identifies_harmful_component() {
        // Component 0 drives degradation; component 1 is irrelevant.
        let conditions: Vec<MismatchVector> =
            (0..10).map(|i| MismatchVector::from_values(vec![i as f64 * 0.01, 0.5])).collect();
        let outcomes: Vec<SimOutcome> =
            (0..10).map(|i| SimOutcome { metrics: vec![5.0 + i as f64], reward: 0.0 }).collect();
        let rho = correlation_vector(&spec(), &conditions, &outcomes);
        assert!(rho[0] > 0.99);
        assert_eq!(rho[1], 0.0);
    }

    #[test]
    fn h_score_ranks_harmful_conditions_first() {
        let rho = vec![1.0, 0.0];
        let conditions = vec![
            MismatchVector::from_values(vec![0.01, 0.9]),
            MismatchVector::from_values(vec![0.05, -0.9]),
            MismatchVector::from_values(vec![-0.02, 0.0]),
        ];
        let order = order_conditions_by_h_score(&conditions, &rho);
        assert_eq!(order, vec![1, 0, 2]);
    }

    #[test]
    fn negative_correlation_flips_ranking() {
        // If a component protects (negative ρ), large positive values of it
        // rank last.
        let rho = vec![-1.0];
        let conditions =
            vec![MismatchVector::from_values(vec![0.5]), MismatchVector::from_values(vec![-0.5])];
        let order = order_conditions_by_h_score(&conditions, &rho);
        assert_eq!(order, vec![1, 0]);
    }

    proptest! {
        #[test]
        fn prop_orderings_are_permutations(scores in proptest::collection::vec(-10.0f64..10.0, 0..40)) {
            let order = order_corners_by_t_score(&scores);
            let mut sorted = order.clone();
            sorted.sort_unstable();
            prop_assert_eq!(sorted, (0..scores.len()).collect::<Vec<_>>());
        }

        #[test]
        fn prop_h_score_ordering_is_descending(
            values in proptest::collection::vec(-1.0f64..1.0, 1..30),
        ) {
            let rho = vec![1.0];
            let conditions: Vec<MismatchVector> =
                values.iter().map(|&v| MismatchVector::from_values(vec![v])).collect();
            let order = order_conditions_by_h_score(&conditions, &rho);
            for w in order.windows(2) {
                prop_assert!(values[w[0]] >= values[w[1]]);
            }
        }
    }
}
