//! The GLOVA optimization loop — Fig. 2 of the paper.
//!
//! 1. **Initial sampling** with TuRBO under the typical condition.
//! 2. The initial designs are simulated across sampled mismatch
//!    conditions on every corner; the worst rewards seed the worst-case
//!    replay buffer and the last-worst-case (per-corner) buffer.
//! 3. Each RL iteration: the actor proposes a design; the *worst corner*
//!    (from the last-worst buffer) is simulated under `N'` sampled
//!    mismatch conditions; the µ-σ gate decides whether to attempt full
//!    verification (Algorithm 2); the worst reward is stored and the agent
//!    trained (Algorithm 1).
//!
//! Every simulation batch in the loop — the TuRBO space-filling prefix,
//! the initial corner × condition grids, the per-iteration `N'`-condition
//! sweeps and the Algorithm-2 verification — dispatches through the
//! [`engine`](crate::engine) layer selected by [`GlovaConfig::engine`]:
//! [`Sequential`](crate::engine::Sequential) reproduces the reference
//! semantics, [`Threaded`](crate::engine::Threaded) fans the same batches
//! out over worker threads with bitwise-identical results (mismatch
//! conditions are pre-sampled in deterministic order, reductions are
//! order-independent).

use crate::cache::EvalCacheConfig;
use crate::engine::{map_indexed, EngineSpec};
use crate::problem::SizingProblem;
use crate::report::{IterationTrace, RunResult};
use crate::verification::{ReusableSamples, Verifier};
use glova_circuits::Circuit;
use glova_rl::{AgentConfig, LastWorstBuffer, RiskSensitiveAgent};
use glova_stats::reduce::{self, finite_worst};
use glova_stats::rng::forked;
use glova_turbo::{Turbo, TurboConfig};
use glova_variation::config::VerificationMethod;
use std::sync::Arc;
use std::time::Instant;

/// GLOVA configuration (paper §VI.B defaults unless noted).
#[derive(Debug, Clone, PartialEq)]
pub struct GlovaConfig {
    /// Target verification method (Table I).
    pub method: VerificationMethod,
    /// Risk-avoidance parameter β₁ of the ensemble critic (paper: −3).
    pub beta1: f64,
    /// Reliability factor β₂ of the µ-σ evaluation (paper: 4).
    pub beta2: f64,
    /// Critic ensemble size.
    pub ensemble_size: usize,
    /// RL training batch size (paper: 10).
    pub batch_size: usize,
    /// Hidden layer widths of the actor/critic networks.
    pub hidden: Vec<usize>,
    /// Gradient updates per RL iteration.
    pub updates_per_step: usize,
    /// TuRBO evaluation budget for initial sampling.
    pub turbo_budget: usize,
    /// Number of initial designs carried into the RL phase.
    pub n_initial_designs: usize,
    /// Maximum RL iterations before declaring failure.
    pub max_iterations: usize,
    /// Ablation: enable the ensemble critic (Table III "w/o EC" when
    /// `false` — single base model, risk-neutral).
    pub use_ensemble_critic: bool,
    /// Ablation: enable the µ-σ evaluation gate (Table III "w/o µ-σ").
    pub use_mu_sigma: bool,
    /// Ablation: enable simulation reordering (Table III "w/o SR").
    pub use_reordering: bool,
    /// Record the per-iteration reliability-bound trace (Fig. 3).
    pub trace: bool,
    /// Feed the actor the best-known design instead of the raw previous
    /// proposal. Algorithm 1 writes `x_new = A(x_last) + noise`; anchoring
    /// `x_last` to the incumbent keeps the proposal chain from drifting
    /// (see `DESIGN.md` §5).
    pub anchor_to_best: bool,
    /// Clamp each proposal into a box of this half-width around the
    /// incumbent (`None` disables). DDPG-style actors on bandit-shaped
    /// problems can chase critic-extrapolation artifacts early in
    /// training; the clamp is a trust region on the policy output
    /// (see `DESIGN.md` §5).
    pub proposal_clip: Option<f64>,
    /// Evaluation engine for simulation batches (sequential by default;
    /// results are engine-independent).
    pub engine: EngineSpec,
    /// Evaluation-cache configuration (`None` disables memoization;
    /// results are cache-independent, only wall time changes).
    pub cache: Option<EvalCacheConfig>,
}

impl GlovaConfig {
    /// Paper-default configuration for a verification method.
    pub fn paper(method: VerificationMethod) -> Self {
        Self {
            method,
            beta1: -3.0,
            beta2: 4.0,
            ensemble_size: 5,
            batch_size: 10,
            hidden: vec![64, 64, 64],
            updates_per_step: 8,
            turbo_budget: 150,
            n_initial_designs: 3,
            max_iterations: 500,
            use_ensemble_critic: true,
            use_mu_sigma: true,
            use_reordering: true,
            trace: false,
            anchor_to_best: true,
            proposal_clip: Some(0.2),
            engine: EngineSpec::Sequential,
            cache: None,
        }
    }

    /// A reduced configuration for fast unit tests.
    pub fn quick(method: VerificationMethod) -> Self {
        Self {
            hidden: vec![32, 32],
            updates_per_step: 4,
            turbo_budget: 100,
            max_iterations: 100,
            ..Self::paper(method)
        }
    }

    /// Disables the ensemble critic (builder style).
    pub fn without_ensemble_critic(mut self) -> Self {
        self.use_ensemble_critic = false;
        self
    }

    /// Disables the µ-σ gate (builder style).
    pub fn without_mu_sigma(mut self) -> Self {
        self.use_mu_sigma = false;
        self
    }

    /// Disables simulation reordering (builder style).
    pub fn without_reordering(mut self) -> Self {
        self.use_reordering = false;
        self
    }

    /// Enables Fig.-3 tracing (builder style).
    pub fn with_trace(mut self) -> Self {
        self.trace = true;
        self
    }

    /// Selects the evaluation engine (builder style).
    pub fn with_engine(mut self, engine: EngineSpec) -> Self {
        self.engine = engine;
        self
    }

    /// Attaches an evaluation cache (builder style).
    pub fn with_cache(mut self, cache: EvalCacheConfig) -> Self {
        self.cache = Some(cache);
        self
    }
}

/// The GLOVA sizing optimizer.
#[derive(Debug)]
pub struct GlovaOptimizer {
    problem: SizingProblem,
    config: GlovaConfig,
}

impl GlovaOptimizer {
    /// Creates an optimizer for `circuit` under `config`.
    pub fn new(circuit: Arc<dyn Circuit>, config: GlovaConfig) -> Self {
        let mut problem = SizingProblem::with_engine(circuit, config.method, config.engine.build());
        if let Some(cache) = config.cache {
            problem = problem.with_cache(cache);
        }
        Self { problem, config }
    }

    /// The underlying problem (simulation counters, …).
    pub fn problem(&self) -> &SizingProblem {
        &self.problem
    }

    /// Runs one complete sizing campaign with the given seed.
    pub fn run(&mut self, seed: u64) -> RunResult {
        let start = Instant::now();
        self.problem.reset_simulations();
        let mut turbo_rng = forked(seed, 1);
        let mut agent_rng = forked(seed, 2);
        let mut sample_rng = forked(seed, 3);

        let dim = self.problem.dim();
        let spec_reward = glova_circuits::spec::SATISFIED_REWARD;
        let corners = self.problem.config().corners.clone();
        let n_prime = self.problem.config().optim_samples;

        // ---- Phase 0: TuRBO initial sampling at the typical condition ----
        let mut turbo = Turbo::new(TurboConfig::new(dim), &mut turbo_rng);
        let mut evaluated: Vec<(Vec<f64>, f64)> = Vec::new();
        let mut feasible: Vec<Vec<f64>> = Vec::new();
        // The space-filling prefix consumes no RNG per ask and depends on
        // no tells, so it fans out through the engine as one batch. Block
        // boundaries are engine-independent: every engine evaluates the
        // same prefix, then the same sequential ask/tell suffix.
        let init_batch: Vec<Vec<f64>> = (0..turbo.init_remaining().min(self.config.turbo_budget))
            .map(|_| turbo.ask(&mut turbo_rng))
            .collect();
        let init_outcomes = map_indexed(self.problem.engine().as_ref(), init_batch.len(), |i| {
            self.problem.simulate_typical(&init_batch[i])
        });
        for (x, outcome) in init_batch.into_iter().zip(init_outcomes) {
            // Diverged (NaN) typical-condition rewards read as decisively
            // infeasible: `Turbo::tell` and the sort below require finite.
            let reward = finite_worst(outcome.reward);
            turbo.tell(x.clone(), reward);
            evaluated.push((x.clone(), reward));
            if reward == spec_reward {
                feasible.push(x);
            }
        }
        // Surrogate-guided suffix: each ask depends on all prior tells, so
        // this stays sequential by construction.
        while evaluated.len() < self.config.turbo_budget
            && feasible.len() < self.config.n_initial_designs
        {
            let x = turbo.ask(&mut turbo_rng);
            let reward = finite_worst(self.problem.simulate_typical(&x).reward);
            turbo.tell(x.clone(), reward);
            evaluated.push((x.clone(), reward));
            if reward == spec_reward {
                feasible.push(x);
            }
        }
        // Initial design set: feasible solutions first (capped — the
        // batched prefix can surface more than the sequential early break
        // ever did), then the best of the rest.
        feasible.truncate(self.config.n_initial_designs);
        evaluated.sort_by(|a, b| b.1.partial_cmp(&a.1).expect("finite rewards"));
        let mut initial: Vec<Vec<f64>> = feasible;
        for (x, _) in &evaluated {
            if initial.len() >= self.config.n_initial_designs {
                break;
            }
            if !initial.iter().any(|e| e == x) {
                initial.push(x.clone());
            }
        }

        // ---- Build the initial dataset across all corners ----------------
        let agent_config = AgentConfig {
            ensemble_size: if self.config.use_ensemble_critic {
                self.config.ensemble_size
            } else {
                1
            },
            beta1: self.config.beta1,
            batch_size: self.config.batch_size,
            hidden: self.config.hidden.clone(),
            updates_per_step: self.config.updates_per_step,
            ..AgentConfig::new(dim)
        };
        let mut agent = RiskSensitiveAgent::new(agent_config, &mut agent_rng);
        let mut last_worst = LastWorstBuffer::new(corners.len());

        // The incumbent carries *worst-case* reward semantics only.
        let mut incumbent: Option<(Vec<f64>, f64)> = None;
        for x in &initial {
            // The whole corner × condition grid fans out through the
            // engine in one dispatch (conditions pre-sampled corner-major
            // inside `simulate_corner_grid` — the engine-parity invariant).
            let per_corner = self.problem.simulate_corner_grid(x, n_prime, &mut sample_rng);
            let mut overall_worst = f64::INFINITY;
            for (ci, corner_outcomes) in per_corner.iter().enumerate() {
                let worst = finite_worst(reduce::worst(corner_outcomes.iter().map(|o| o.reward)));
                last_worst.record(ci, worst);
                overall_worst = overall_worst.min(worst);
            }
            agent.observe(x.clone(), overall_worst);
            if incumbent.as_ref().is_none_or(|(_, r)| overall_worst > *r) {
                incumbent = Some((x.clone(), overall_worst));
            }
        }
        let mut x_last =
            incumbent.as_ref().map(|(x, _)| x.clone()).unwrap_or_else(|| vec![0.5; dim]);
        // Behaviour-clone the fresh actor toward the incumbent so early
        // proposals explore around it instead of an arbitrary fixed point.
        agent.pretrain_actor_towards(&x_last.clone(), 200, &mut agent_rng);

        // ---- Main loop (Fig. 2 steps 1–6) ---------------------------------
        let mut trace = Vec::new();
        let mut verification_attempts = 0usize;
        let mut stagnation = 0usize;
        for iteration in 1..=self.config.max_iterations {
            // Step 1: generate a design solution.
            if self.config.anchor_to_best {
                if let Some((best, _)) = &incumbent {
                    x_last = best.clone();
                }
            }
            let mut x_new = agent.propose(&x_last, &mut agent_rng);
            if let Some(clip) = self.config.proposal_clip {
                for (v, anchor) in x_new.iter_mut().zip(&x_last) {
                    *v = v.clamp((anchor - clip).max(0.0), (anchor + clip).min(1.0));
                }
            }

            // Step 2: pick the worst corner; sample N' mismatch conditions.
            let worst_ci = last_worst.worst_corner();
            let corner = corners.corner(worst_ci);
            let conditions = self.problem.sample_conditions(&x_new, n_prime, &mut sample_rng);

            // Step 3: simulate.
            let (outcomes, sampled_worst) =
                self.problem.simulate_conditions(&x_new, &corner, &conditions);
            let mut worst_reward = finite_worst(sampled_worst);
            last_worst.record(worst_ci, worst_reward);

            if self.config.trace {
                let (mean, std) = agent.critic().predict_detail(&x_new);
                trace.push(IterationTrace {
                    iteration,
                    critic_mean: mean,
                    critic_bound: mean + self.config.beta1 * std,
                    sampled_worst: worst_reward,
                    corner_index: worst_ci,
                });
            }

            // Step 4: µ-σ gate (or plain sample-feasibility without it).
            // With the gate enabled, the *stored* reward is also tightened
            // to the reward of the conservative µ-σ bounds: a design whose
            // samples pass but whose mean+β₂σ bound violates a constraint
            // is not yet robust and must not look like one to the critic —
            // this grades the otherwise flat 0.2 plateau by robustness
            // margin (Eq. 7 folded into Eq. 4, see `DESIGN.md` §5).
            let gate = if self.config.use_mu_sigma {
                let eval = crate::evaluation::MuSigmaEvaluation::evaluate(
                    self.problem.circuit().spec(),
                    &outcomes,
                    self.config.beta2,
                );
                let bound_reward = self.problem.circuit().spec().reward(&eval.bounds);
                worst_reward = worst_reward.min(finite_worst(bound_reward));
                eval.passed
            } else {
                outcomes.iter().all(|o| o.reward == spec_reward)
            };

            // Step 5: full verification.
            if gate {
                verification_attempts += 1;
                let mut verifier = Verifier::new(&self.problem, self.config.beta2);
                if !self.config.use_mu_sigma {
                    verifier = verifier.without_mu_sigma();
                }
                if !self.config.use_reordering {
                    verifier = verifier.without_reordering();
                }
                let reuse = ReusableSamples {
                    corner_index: worst_ci,
                    conditions: conditions.clone(),
                    outcomes: outcomes.clone(),
                };
                let hint = last_worst.corners_worst_first();
                let outcome = verifier.verify(&x_new, &hint, Some(&reuse), &mut sample_rng);
                for &(ci, worst) in &outcome.per_corner_worst {
                    let worst = finite_worst(worst);
                    last_worst.record(ci, worst);
                    if ci == worst_ci {
                        worst_reward = worst_reward.min(worst);
                    }
                }
                if outcome.passed {
                    return RunResult {
                        success: true,
                        rl_iterations: iteration,
                        simulations: self.problem.simulations(),
                        verification_attempts,
                        wall_time: start.elapsed(),
                        final_design: Some(x_new),
                        trace,
                    };
                }
                // Verification failed: fold the newly discovered worst
                // reward into this iteration's stored observation.
                let verified_worst =
                    finite_worst(reduce::worst(outcome.per_corner_worst.iter().map(|&(_, w)| w)));
                worst_reward = worst_reward.min(verified_worst);
            }

            // Step 6: store the worst reward; update the agent.
            agent.observe(x_new.clone(), worst_reward);
            if incumbent.as_ref().is_none_or(|(_, r)| worst_reward > *r) {
                incumbent = Some((x_new.clone(), worst_reward));
                stagnation = 0;
            } else {
                stagnation += 1;
                // Exploration restart: a long streak without incumbent
                // improvement means the local neighbourhood is exhausted.
                if stagnation >= 60 {
                    agent.reset_noise(0.12);
                    stagnation = 0;
                }
            }
            agent.set_proximal_target(incumbent.as_ref().map(|(x, _)| x.clone()));
            agent.train_step(&mut agent_rng);
            x_last = x_new;
        }

        let mut result = RunResult::failed(
            self.config.max_iterations,
            self.problem.simulations(),
            start.elapsed(),
        );
        result.verification_attempts = verification_attempts;
        result.trace = trace;
        result
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use glova_circuits::ToyQuadratic;
    use glova_variation::config::VerificationMethod;

    fn toy() -> Arc<dyn Circuit> {
        // Sensitivity chosen so the µ-σ bound is satisfiable near the
        // optimum under local MC (the standard instance's limit is 0.05 and
        // the worst-corner penalty ≈ 0.026).
        Arc::new(ToyQuadratic::standard().with_mismatch_sensitivity(0.05))
    }

    #[test]
    fn solves_toy_under_corner_verification() {
        let mut opt = GlovaOptimizer::new(toy(), GlovaConfig::quick(VerificationMethod::Corner));
        let result = opt.run(7);
        assert!(result.success, "failed: {result}");
        assert!(result.rl_iterations <= 60);
        assert!(result.simulations > 0);
        let x = result.final_design.expect("successful runs carry a design");
        assert_eq!(x.len(), 4);
    }

    #[test]
    fn solves_toy_under_local_mc() {
        let mut config = GlovaConfig::quick(VerificationMethod::CornerLocalMc);
        // MC feasibility needs deeper robustness margins than corner-only;
        // give the agent more room.
        config.max_iterations = 250;
        let mut opt = GlovaOptimizer::new(toy(), config);
        let result = opt.run(11);
        assert!(result.success, "failed: {result}");
        // A successful MC run must include the full verification cost.
        assert!(result.simulations >= 3000);
    }

    #[test]
    fn deterministic_given_seed() {
        let mut opt1 = GlovaOptimizer::new(toy(), GlovaConfig::quick(VerificationMethod::Corner));
        let mut opt2 = GlovaOptimizer::new(toy(), GlovaConfig::quick(VerificationMethod::Corner));
        let r1 = opt1.run(3);
        let r2 = opt2.run(3);
        assert_eq!(r1.rl_iterations, r2.rl_iterations);
        assert_eq!(r1.simulations, r2.simulations);
        assert_eq!(r1.final_design, r2.final_design);
    }

    #[test]
    fn trace_records_bounds() {
        let config = GlovaConfig::quick(VerificationMethod::Corner).with_trace();
        let mut opt = GlovaOptimizer::new(toy(), config);
        let result = opt.run(5);
        assert!(!result.trace.is_empty());
        for t in &result.trace {
            // With β₁ < 0 the bound never exceeds the mean.
            assert!(t.critic_bound <= t.critic_mean + 1e-12);
        }
    }

    #[test]
    fn infeasible_problem_reports_failure() {
        // An optimum outside the unit cube cannot be reached: limit tiny.
        let circuit = Arc::new(ToyQuadratic::new(vec![2.0, 2.0], 1e-6));
        let mut config = GlovaConfig::quick(VerificationMethod::Corner);
        config.max_iterations = 10;
        config.turbo_budget = 10;
        let mut opt = GlovaOptimizer::new(circuit, config);
        let result = opt.run(1);
        assert!(!result.success);
        assert_eq!(result.rl_iterations, 10);
    }

    #[test]
    fn ablations_run_and_succeed_on_toy() {
        for config in [
            GlovaConfig::quick(VerificationMethod::Corner).without_ensemble_critic(),
            GlovaConfig::quick(VerificationMethod::Corner).without_mu_sigma(),
            GlovaConfig::quick(VerificationMethod::Corner).without_reordering(),
        ] {
            let mut opt = GlovaOptimizer::new(toy(), config.clone());
            let result = opt.run(13);
            assert!(result.success, "ablation failed: {config:?}");
        }
    }
}
