//! TuRBO — trust-region Bayesian optimization (Eriksson et al., NeurIPS
//! 2019, the paper's ref \[13\]).
//!
//! GLOVA (following PVTSizing \[9\]) uses TuRBO for **initial sampling**:
//! before the RL agent starts, TuRBO searches the normalized design space
//! for solutions that satisfy the constraints under the *typical*
//! condition. This replaces the random initial sampling of RobustAnalog and
//! is one of the sample-efficiency levers the paper's Table II measures.
//!
//! The implementation is TuRBO-1: a single trust region with
//!
//! - a Gaussian-process surrogate with Matérn-5/2 ARD kernel ([`gp`]),
//!   hyperparameters fit by log-marginal-likelihood random search,
//! - the success/failure trust-region resizing schedule
//!   ([`trust_region`]), and
//! - Thompson-sampling candidate selection inside the trust-region box.
//!
//! # Example
//!
//! ```
//! use glova_turbo::{Turbo, TurboConfig};
//!
//! // Maximize the negative sphere function (optimum at 0.5).
//! let mut rng = glova_stats::rng::seeded(7);
//! let mut turbo = Turbo::new(TurboConfig::new(3), &mut rng);
//! for _ in 0..60 {
//!     let x = turbo.ask(&mut rng);
//!     let y = -x.iter().map(|v| (v - 0.5) * (v - 0.5)).sum::<f64>();
//!     turbo.tell(x, y);
//! }
//! let (best_x, best_y) = turbo.best().expect("observations were told");
//! assert!(best_y > -0.05, "best {best_y} at {best_x:?}");
//! ```

#![warn(missing_docs)]

pub mod design;
pub mod gp;
pub mod kernel;
pub mod trust_region;
pub mod turbo;

pub use design::latin_hypercube;
pub use gp::GaussianProcess;
pub use kernel::Matern52;
pub use trust_region::TrustRegion;
pub use turbo::{Turbo, TurboConfig};
