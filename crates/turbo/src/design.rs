//! Space-filling initial designs.

use rand::Rng;

/// Latin-hypercube sample of `n` points in `[0, 1]^dim`.
///
/// Each dimension is divided into `n` strata; every stratum is hit exactly
/// once per dimension, with independent random permutations across
/// dimensions and jitter within strata.
///
/// # Panics
///
/// Panics if `n == 0` or `dim == 0`.
///
/// # Example
///
/// ```
/// let mut rng = glova_stats::rng::seeded(1);
/// let points = glova_turbo::latin_hypercube(8, 3, &mut rng);
/// assert_eq!(points.len(), 8);
/// assert!(points.iter().all(|p| p.len() == 3));
/// ```
pub fn latin_hypercube<R: Rng + ?Sized>(n: usize, dim: usize, rng: &mut R) -> Vec<Vec<f64>> {
    assert!(n > 0, "need at least one sample");
    assert!(dim > 0, "need at least one dimension");
    let mut columns: Vec<Vec<f64>> = Vec::with_capacity(dim);
    for _ in 0..dim {
        let mut strata: Vec<usize> = (0..n).collect();
        // Fisher–Yates shuffle.
        for i in (1..n).rev() {
            let j = rng.gen_range(0..=i);
            strata.swap(i, j);
        }
        columns.push(strata.iter().map(|&s| (s as f64 + rng.gen::<f64>()) / n as f64).collect());
    }
    (0..n).map(|i| (0..dim).map(|d| columns[d][i]).collect()).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use glova_stats::rng::seeded;
    use proptest::prelude::*;

    #[test]
    fn strata_are_hit_exactly_once() {
        let mut rng = seeded(3);
        let n = 16;
        let points = latin_hypercube(n, 4, &mut rng);
        for d in 0..4 {
            let mut seen = vec![false; n];
            for p in &points {
                let stratum = (p[d] * n as f64).floor() as usize;
                assert!(!seen[stratum.min(n - 1)], "stratum {stratum} hit twice in dim {d}");
                seen[stratum.min(n - 1)] = true;
            }
            assert!(seen.iter().all(|&s| s), "dimension {d} missed strata");
        }
    }

    #[test]
    fn all_points_in_unit_cube() {
        let mut rng = seeded(4);
        for p in latin_hypercube(32, 6, &mut rng) {
            assert!(p.iter().all(|&v| (0.0..=1.0).contains(&v)));
        }
    }

    #[test]
    #[should_panic(expected = "at least one sample")]
    fn zero_samples_panics() {
        let mut rng = seeded(5);
        latin_hypercube(0, 2, &mut rng);
    }

    proptest! {
        #[test]
        fn prop_shape(n in 1usize..20, dim in 1usize..8, seed in 0u64..16) {
            let mut rng = seeded(seed);
            let pts = latin_hypercube(n, dim, &mut rng);
            prop_assert_eq!(pts.len(), n);
            prop_assert!(pts.iter().all(|p| p.len() == dim));
        }
    }
}
