//! Covariance kernels.

/// Matérn-5/2 kernel with automatic relevance determination (per-dimension
/// lengthscales) — the standard choice for TuRBO's GP surrogate.
///
/// `k(a, b) = σ² (1 + √5 r + 5r²/3) exp(−√5 r)` with
/// `r² = Σ_d ((a_d − b_d)/ℓ_d)²`.
#[derive(Debug, Clone, PartialEq)]
pub struct Matern52 {
    signal_variance: f64,
    lengthscales: Vec<f64>,
}

impl Matern52 {
    /// Creates a kernel.
    ///
    /// # Panics
    ///
    /// Panics if `signal_variance <= 0` or any lengthscale `<= 0`.
    pub fn new(signal_variance: f64, lengthscales: Vec<f64>) -> Self {
        assert!(signal_variance > 0.0, "signal variance must be positive");
        assert!(
            lengthscales.iter().all(|&l| l > 0.0),
            "lengthscales must be positive: {lengthscales:?}"
        );
        Self { signal_variance, lengthscales }
    }

    /// Isotropic kernel with a single lengthscale replicated over `dim`.
    pub fn isotropic(signal_variance: f64, lengthscale: f64, dim: usize) -> Self {
        Self::new(signal_variance, vec![lengthscale; dim])
    }

    /// Signal variance σ².
    pub fn signal_variance(&self) -> f64 {
        self.signal_variance
    }

    /// Per-dimension lengthscales.
    pub fn lengthscales(&self) -> &[f64] {
        &self.lengthscales
    }

    /// Evaluates `k(a, b)`.
    ///
    /// # Panics
    ///
    /// Panics if input dimensions differ from the kernel's.
    pub fn eval(&self, a: &[f64], b: &[f64]) -> f64 {
        assert_eq!(a.len(), self.lengthscales.len(), "kernel input dimension mismatch");
        assert_eq!(b.len(), self.lengthscales.len(), "kernel input dimension mismatch");
        let r2: f64 = a
            .iter()
            .zip(b)
            .zip(&self.lengthscales)
            .map(|((&x, &y), &l)| {
                let d = (x - y) / l;
                d * d
            })
            .sum();
        let r = r2.sqrt();
        let sqrt5_r = 5.0f64.sqrt() * r;
        self.signal_variance * (1.0 + sqrt5_r + 5.0 * r2 / 3.0) * (-sqrt5_r).exp()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn self_covariance_is_signal_variance() {
        let k = Matern52::isotropic(2.5, 0.3, 4);
        let x = [0.1, 0.2, 0.3, 0.4];
        assert!((k.eval(&x, &x) - 2.5).abs() < 1e-12);
    }

    #[test]
    fn decays_with_distance() {
        let k = Matern52::isotropic(1.0, 0.2, 1);
        let k0 = k.eval(&[0.0], &[0.0]);
        let k1 = k.eval(&[0.0], &[0.1]);
        let k2 = k.eval(&[0.0], &[0.5]);
        assert!(k0 > k1 && k1 > k2);
        assert!(k2 > 0.0);
    }

    #[test]
    fn ard_weights_dimensions() {
        // A short lengthscale in dim 0 makes distance in dim 0 matter more.
        let k = Matern52::new(1.0, vec![0.05, 1.0]);
        let near_in_0 = k.eval(&[0.0, 0.0], &[0.05, 0.0]);
        let near_in_1 = k.eval(&[0.0, 0.0], &[0.0, 0.05]);
        assert!(near_in_1 > near_in_0);
    }

    #[test]
    #[should_panic(expected = "lengthscales must be positive")]
    fn zero_lengthscale_panics() {
        Matern52::new(1.0, vec![0.0]);
    }

    proptest! {
        #[test]
        fn prop_symmetric_and_bounded(
            a in proptest::collection::vec(0.0f64..1.0, 3),
            b in proptest::collection::vec(0.0f64..1.0, 3),
        ) {
            let k = Matern52::isotropic(1.7, 0.4, 3);
            let kab = k.eval(&a, &b);
            let kba = k.eval(&b, &a);
            prop_assert!((kab - kba).abs() < 1e-12);
            prop_assert!(kab > 0.0 && kab <= 1.7 + 1e-12);
        }
    }
}
