//! The TuRBO-1 ask/tell optimizer.

use crate::design::latin_hypercube;
use crate::gp::GaussianProcess;
use crate::trust_region::TrustRegion;
use glova_stats::normal::StandardNormal;
use rand::Rng;

/// TuRBO configuration.
#[derive(Debug, Clone, PartialEq)]
pub struct TurboConfig {
    dim: usize,
    n_init: usize,
    n_candidates: usize,
    max_gp_points: usize,
}

impl TurboConfig {
    /// Standard configuration for a `dim`-dimensional problem:
    /// `2·dim` initial LHS points (min 6), `100·dim` capped at 2000
    /// candidates per ask, GP history capped at 256 points.
    ///
    /// # Panics
    ///
    /// Panics if `dim == 0`.
    pub fn new(dim: usize) -> Self {
        assert!(dim > 0, "dimension must be positive");
        Self {
            dim,
            n_init: (2 * dim).max(6),
            n_candidates: (100 * dim).min(2000),
            max_gp_points: 256,
        }
    }

    /// Overrides the number of initial space-filling points.
    pub fn with_init_points(mut self, n: usize) -> Self {
        self.n_init = n.max(1);
        self
    }

    /// Problem dimension.
    pub fn dim(&self) -> usize {
        self.dim
    }
}

/// TuRBO-1 optimizer (maximization) over `[0, 1]^dim`.
///
/// Use [`Turbo::ask`] to obtain the next point and [`Turbo::tell`] to
/// report its objective value.
#[derive(Debug, Clone)]
pub struct Turbo {
    config: TurboConfig,
    trust_region: TrustRegion,
    init_queue: Vec<Vec<f64>>,
    xs: Vec<Vec<f64>>,
    ys: Vec<f64>,
    told: usize,
    best_idx: Option<usize>,
    normal: StandardNormal,
}

impl Turbo {
    /// Creates an optimizer; the first `n_init` asks return Latin-hypercube
    /// points.
    pub fn new<R: Rng + ?Sized>(config: TurboConfig, rng: &mut R) -> Self {
        let mut init_queue = latin_hypercube(config.n_init, config.dim, rng);
        init_queue.reverse(); // pop() returns them in order
        Self {
            trust_region: TrustRegion::new(config.dim),
            init_queue,
            xs: Vec::new(),
            ys: Vec::new(),
            told: 0,
            best_idx: None,
            normal: StandardNormal::new(),
            config,
        }
    }

    /// Number of queued initial (space-filling) design points not yet
    /// returned by [`Turbo::ask`].
    ///
    /// Queued asks consume no randomness and depend on no observations,
    /// so callers may drain them up front and evaluate the whole batch in
    /// parallel before telling the results back.
    pub fn init_remaining(&self) -> usize {
        self.init_queue.len()
    }

    /// Number of observations told so far.
    pub fn len(&self) -> usize {
        self.xs.len()
    }

    /// Whether no observations have been told yet.
    pub fn is_empty(&self) -> bool {
        self.xs.is_empty()
    }

    /// The incumbent best `(x, y)`, if any observation was told.
    pub fn best(&self) -> Option<(&[f64], f64)> {
        self.best_idx.map(|i| (self.xs[i].as_slice(), self.ys[i]))
    }

    /// The current trust region (diagnostics).
    pub fn trust_region(&self) -> &TrustRegion {
        &self.trust_region
    }

    /// Proposes the next point to evaluate.
    pub fn ask<R: Rng + ?Sized>(&mut self, rng: &mut R) -> Vec<f64> {
        if let Some(x) = self.init_queue.pop() {
            return x;
        }
        let Some(best_idx) = self.best_idx else {
            // No observations yet and the queue is exhausted (told() never
            // called): fall back to uniform sampling.
            return (0..self.config.dim).map(|_| rng.gen()).collect();
        };

        // Fit the surrogate on the (most recent) history window.
        let window = self.history_window();
        let xs: Vec<Vec<f64>> = window.iter().map(|&i| self.xs[i].clone()).collect();
        let ys: Vec<f64> = window.iter().map(|&i| self.ys[i]).collect();
        let gp = GaussianProcess::fit_auto(&xs, &ys, rng);

        // Candidate box around the incumbent, shaped by ARD lengthscales.
        let center = self.xs[best_idx].clone();
        let lengthscales = vec![1.0; self.config.dim]; // shaped below via GP refit? keep simple
        let bounds = self.trust_region.bounds_around(&center, &lengthscales);

        // Perturbation candidates: each candidate perturbs a random subset
        // of coordinates within the box (TuRBO's sobol+mask scheme,
        // approximated with uniform draws).
        let p_perturb = (20.0 / self.config.dim as f64).min(1.0);
        let mut best_candidate = center.clone();
        let mut best_value = f64::NEG_INFINITY;
        for _ in 0..self.config.n_candidates {
            let mut cand = center.clone();
            let mut any = false;
            for d in 0..self.config.dim {
                if rng.gen::<f64>() < p_perturb {
                    cand[d] = rng.gen_range(bounds[d].0..=bounds[d].1);
                    any = true;
                }
            }
            if !any {
                let d = rng.gen_range(0..self.config.dim);
                cand[d] = rng.gen_range(bounds[d].0..=bounds[d].1);
            }
            let value = gp.thompson_sample(&cand, &self.normal, rng);
            if value > best_value {
                best_value = value;
                best_candidate = cand;
            }
        }
        best_candidate
    }

    /// Reports the objective value of a previously asked point.
    ///
    /// # Panics
    ///
    /// Panics if `x` has the wrong dimension or `y` is not finite.
    pub fn tell(&mut self, x: Vec<f64>, y: f64) {
        assert_eq!(x.len(), self.config.dim, "design dimension mismatch");
        assert!(y.is_finite(), "objective must be finite, got {y}");
        let improved = self.best().is_none_or(|(_, best_y)| y > best_y + 1e-12);
        self.xs.push(x);
        self.ys.push(y);
        self.told += 1;
        if improved {
            self.best_idx = Some(self.xs.len() - 1);
        }
        // Only count trust-region outcomes once the initial design is
        // done. Counting *told observations* (not queue emptiness) keeps
        // the semantics identical when a caller drains the init queue as
        // one batch before telling any results.
        if self.told >= self.config.n_init {
            let restarted = self.trust_region.update(improved);
            if restarted {
                // Keep the incumbent but forget the local history bias by
                // clearing everything except the best point.
                if let Some(bi) = self.best_idx {
                    let best_x = self.xs[bi].clone();
                    let best_y = self.ys[bi];
                    self.xs = vec![best_x];
                    self.ys = vec![best_y];
                    self.best_idx = Some(0);
                }
            }
        }
    }

    /// Indices of the GP training window (most recent points, capped).
    fn history_window(&self) -> Vec<usize> {
        let n = self.xs.len();
        let start = n.saturating_sub(self.config.max_gp_points);
        let mut window: Vec<usize> = (start..n).collect();
        // Always include the incumbent.
        if let Some(bi) = self.best_idx {
            if bi < start {
                window.push(bi);
            }
        }
        window
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use glova_stats::rng::seeded;

    fn run_on<F: Fn(&[f64]) -> f64>(f: F, dim: usize, budget: usize, seed: u64) -> f64 {
        let mut rng = seeded(seed);
        let mut turbo = Turbo::new(TurboConfig::new(dim), &mut rng);
        for _ in 0..budget {
            let x = turbo.ask(&mut rng);
            let y = f(&x);
            turbo.tell(x, y);
        }
        turbo.best().expect("budget > 0").1
    }

    #[test]
    fn optimizes_sphere() {
        let best = run_on(|x| -x.iter().map(|v| (v - 0.6) * (v - 0.6)).sum::<f64>(), 4, 80, 1);
        assert!(best > -0.02, "sphere best {best}");
    }

    #[test]
    fn optimizes_separable_multimodal() {
        // Rastrigin-lite on [0,1]: optimum at 0.5.
        let best = run_on(
            |x| {
                -x.iter()
                    .map(|v| {
                        let z = v - 0.5;
                        z * z + 0.05 * (1.0 - (8.0 * std::f64::consts::PI * z).cos())
                    })
                    .sum::<f64>()
            },
            3,
            150,
            2,
        );
        // Ripple amplitude is 0.05/dim (0.15 total): landing within one
        // ripple of the optimum is success for this budget.
        assert!(best > -0.15, "multimodal best {best}");
    }

    #[test]
    fn beats_random_search_on_sphere() {
        let dim = 6;
        let budget = 90;
        let f = |x: &[f64]| -x.iter().map(|v| (v - 0.3) * (v - 0.3)).sum::<f64>();
        let turbo_best = run_on(f, dim, budget, 3);
        // Random search baseline with the same budget.
        let mut rng = seeded(4);
        let mut rand_best = f64::NEG_INFINITY;
        for _ in 0..budget {
            let x: Vec<f64> = (0..dim).map(|_| rng.gen::<f64>()).collect();
            rand_best = rand_best.max(f(&x));
        }
        assert!(turbo_best > rand_best, "turbo {turbo_best} should beat random {rand_best}");
    }

    #[test]
    fn ask_returns_unit_cube_points() {
        let mut rng = seeded(5);
        let mut turbo = Turbo::new(TurboConfig::new(5), &mut rng);
        for i in 0..40 {
            let x = turbo.ask(&mut rng);
            assert!(x.iter().all(|v| (0.0..=1.0).contains(v)), "iter {i}: {x:?}");
            let y = -x[0];
            turbo.tell(x, y);
        }
    }

    #[test]
    fn best_tracks_maximum() {
        let mut rng = seeded(6);
        let mut turbo = Turbo::new(TurboConfig::new(2).with_init_points(3), &mut rng);
        turbo.tell(vec![0.1, 0.1], 1.0);
        turbo.tell(vec![0.2, 0.2], 3.0);
        turbo.tell(vec![0.3, 0.3], 2.0);
        let (x, y) = turbo.best().unwrap();
        assert_eq!(y, 3.0);
        assert_eq!(x, &[0.2, 0.2]);
    }

    #[test]
    #[should_panic(expected = "objective must be finite")]
    fn non_finite_tell_panics() {
        let mut rng = seeded(7);
        let mut turbo = Turbo::new(TurboConfig::new(2), &mut rng);
        turbo.tell(vec![0.5, 0.5], f64::NAN);
    }
}
