//! TuRBO's trust-region state machine.
//!
//! The trust region is a hyper-rectangle centered at the incumbent best
//! point. Its base side length doubles after `success_tolerance`
//! consecutive improvements and halves after `failure_tolerance`
//! consecutive non-improvements; when it collapses below `length_min` the
//! region restarts at full size (TuRBO restarts from scratch; our caller
//! re-seeds the history).

/// Trust-region geometry and counters.
#[derive(Debug, Clone, PartialEq)]
pub struct TrustRegion {
    length: f64,
    length_min: f64,
    length_max: f64,
    success_count: usize,
    failure_count: usize,
    success_tolerance: usize,
    failure_tolerance: usize,
}

impl TrustRegion {
    /// Creates a region with TuRBO's standard schedule for dimension `dim`.
    pub fn new(dim: usize) -> Self {
        Self {
            length: 0.8,
            length_min: 0.5f64.powi(7),
            length_max: 1.6,
            success_count: 0,
            failure_count: 0,
            success_tolerance: 3,
            failure_tolerance: (4.0_f64).max(dim as f64).ceil() as usize,
        }
    }

    /// Current base side length.
    pub fn length(&self) -> f64 {
        self.length
    }

    /// Whether the region has collapsed and triggered a restart on the last
    /// update.
    pub fn at_minimum(&self) -> bool {
        self.length <= self.length_min
    }

    /// Records an iteration outcome; returns `true` if the region restarted
    /// (collapsed below its minimum and was reset).
    pub fn update(&mut self, improved: bool) -> bool {
        if improved {
            self.success_count += 1;
            self.failure_count = 0;
            if self.success_count >= self.success_tolerance {
                self.length = (2.0 * self.length).min(self.length_max);
                self.success_count = 0;
            }
        } else {
            self.failure_count += 1;
            self.success_count = 0;
            if self.failure_count >= self.failure_tolerance {
                self.length *= 0.5;
                self.failure_count = 0;
            }
        }
        if self.length < self.length_min {
            self.length = 0.8;
            self.success_count = 0;
            self.failure_count = 0;
            true
        } else {
            false
        }
    }

    /// The axis-aligned candidate box around `center`, clipped to `[0,1]`,
    /// with per-dimension half-widths scaled by the GP lengthscales
    /// (longer lengthscale → wider box side, TuRBO §4).
    pub fn bounds_around(&self, center: &[f64], lengthscales: &[f64]) -> Vec<(f64, f64)> {
        assert_eq!(center.len(), lengthscales.len(), "dimension mismatch");
        // Normalize lengthscales to geometric mean 1.
        let log_mean = lengthscales.iter().map(|l| l.ln()).sum::<f64>() / lengthscales.len() as f64;
        let gm = log_mean.exp();
        center
            .iter()
            .zip(lengthscales)
            .map(|(&c, &l)| {
                let half = 0.5 * self.length * (l / gm).clamp(0.25, 4.0);
                ((c - half).max(0.0), (c + half).min(1.0))
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn expands_after_successes() {
        let mut tr = TrustRegion::new(4);
        let start = tr.length();
        for _ in 0..3 {
            tr.update(true);
        }
        assert!((tr.length() - 2.0 * start).abs() < 1e-12);
    }

    #[test]
    fn expansion_caps_at_max() {
        let mut tr = TrustRegion::new(4);
        for _ in 0..30 {
            tr.update(true);
        }
        assert!(tr.length() <= 1.6 + 1e-12);
    }

    #[test]
    fn shrinks_after_failures() {
        let mut tr = TrustRegion::new(4);
        let start = tr.length();
        for _ in 0..4 {
            tr.update(false);
        }
        assert!((tr.length() - 0.5 * start).abs() < 1e-12);
    }

    #[test]
    fn restart_on_collapse() {
        let mut tr = TrustRegion::new(2);
        let mut restarted = false;
        for _ in 0..200 {
            if tr.update(false) {
                restarted = true;
                break;
            }
        }
        assert!(restarted, "region never restarted");
        assert!(tr.length() > 0.5, "length reset after restart");
    }

    #[test]
    fn mixed_outcomes_reset_counters() {
        let mut tr = TrustRegion::new(4);
        let start = tr.length();
        // Alternating outcomes never hit either tolerance.
        for i in 0..20 {
            tr.update(i % 2 == 0);
        }
        assert!((tr.length() - start).abs() < 1e-12);
    }

    #[test]
    fn bounds_clip_to_unit_cube() {
        let tr = TrustRegion::new(2);
        let bounds = tr.bounds_around(&[0.05, 0.95], &[1.0, 1.0]);
        assert!(bounds[0].0 >= 0.0 && bounds[1].1 <= 1.0);
        assert!(bounds[0].0 < bounds[0].1);
    }

    #[test]
    fn lengthscale_shaping_widens_long_dimensions() {
        let tr = TrustRegion::new(2);
        let bounds = tr.bounds_around(&[0.5, 0.5], &[1.0, 0.1]);
        let w0 = bounds[0].1 - bounds[0].0;
        let w1 = bounds[1].1 - bounds[1].0;
        assert!(w0 > w1, "long-lengthscale dim should get the wider side");
    }
}
