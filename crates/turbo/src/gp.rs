//! Gaussian-process regression with marginal-likelihood hyperparameter
//! search.

use crate::kernel::Matern52;
use glova_linalg::{Cholesky, Matrix};
use glova_stats::normal::StandardNormal;
use rand::Rng;

/// A fitted Gaussian process over observations `(X, y)`.
///
/// Targets are standardized internally; predictions are returned in the
/// original scale.
#[derive(Debug, Clone)]
pub struct GaussianProcess {
    kernel: Matern52,
    noise_variance: f64,
    x: Vec<Vec<f64>>,
    y_standardized: Vec<f64>,
    alpha: Vec<f64>,
    chol: Cholesky,
    y_mean: f64,
    y_std: f64,
}

impl GaussianProcess {
    /// Jitter added to the kernel matrix diagonal for numerical stability.
    const JITTER: f64 = 1e-8;

    /// Fits a GP with fixed hyperparameters.
    ///
    /// # Panics
    ///
    /// Panics if `x` is empty, lengths differ, or the kernel matrix cannot
    /// be factored (should not happen with positive noise).
    pub fn fit(kernel: Matern52, noise_variance: f64, x: &[Vec<f64>], y: &[f64]) -> Self {
        assert!(!x.is_empty(), "cannot fit a GP to zero observations");
        assert_eq!(x.len(), y.len(), "x/y length mismatch");
        assert!(noise_variance > 0.0, "noise variance must be positive");

        let y_mean = glova_stats::descriptive::mean(y);
        let y_std = glova_stats::descriptive::std_dev(y).max(1e-9);
        let y_n: Vec<f64> = y.iter().map(|v| (v - y_mean) / y_std).collect();

        let n = x.len();
        let mut k = Matrix::from_fn(n, n, |i, j| kernel.eval(&x[i], &x[j]));
        k.add_diagonal(noise_variance + Self::JITTER);
        let chol = k.cholesky(0.0).expect("kernel matrix must be SPD with positive noise");
        let alpha = chol.solve(&y_n);
        Self {
            kernel,
            noise_variance,
            x: x.to_vec(),
            y_standardized: y_n,
            alpha,
            chol,
            y_mean,
            y_std,
        }
    }

    /// Fits hyperparameters by random search over log-space, maximizing the
    /// log marginal likelihood, then returns the best fitted GP.
    ///
    /// # Panics
    ///
    /// Panics if `x` is empty or lengths differ.
    pub fn fit_auto<R: Rng + ?Sized>(x: &[Vec<f64>], y: &[f64], rng: &mut R) -> Self {
        assert!(!x.is_empty(), "cannot fit a GP to zero observations");
        assert_eq!(x.len(), y.len(), "x/y length mismatch");
        let dim = x[0].len();

        let mut best: Option<(f64, Self)> = None;
        // Random search: isotropic seeds plus ARD perturbations.
        const TRIALS: usize = 24;
        for trial in 0..TRIALS {
            let base_ls = 10f64.powf(rng.gen_range(-1.2..0.5));
            let lengthscales: Vec<f64> = (0..dim)
                .map(|_| {
                    if trial < TRIALS / 2 {
                        base_ls
                    } else {
                        base_ls * 10f64.powf(rng.gen_range(-0.4..0.4))
                    }
                })
                .collect();
            let noise = 10f64.powf(rng.gen_range(-6.0..-2.0));
            let kernel = Matern52::new(1.0, lengthscales);
            let gp = Self::fit(kernel, noise, x, y);
            let lml = gp.log_marginal_likelihood();
            if best.as_ref().is_none_or(|(b, _)| lml > *b) {
                best = Some((lml, gp));
            }
        }
        best.expect("at least one trial").1
    }

    /// Number of training points.
    pub fn len(&self) -> usize {
        self.x.len()
    }

    /// Whether the GP has no training points (never true post-`fit`).
    pub fn is_empty(&self) -> bool {
        self.x.is_empty()
    }

    /// Log marginal likelihood of the training data (standardized space).
    pub fn log_marginal_likelihood(&self) -> f64 {
        let n = self.x.len() as f64;
        let data_fit: f64 =
            -0.5 * self.alpha.iter().zip(&self.y_standardized).map(|(a, y)| a * y).sum::<f64>();
        data_fit - 0.5 * self.chol.log_determinant() - 0.5 * n * (2.0 * std::f64::consts::PI).ln()
    }

    /// Posterior mean and variance at `query` (original target scale).
    ///
    /// # Panics
    ///
    /// Panics if `query` has the wrong dimension.
    pub fn predict(&self, query: &[f64]) -> (f64, f64) {
        let k_star: Vec<f64> = self.x.iter().map(|xi| self.kernel.eval(xi, query)).collect();
        let mean_n: f64 = k_star.iter().zip(&self.alpha).map(|(k, a)| k * a).sum();
        let v = self.chol.solve_lower(&k_star);
        let k_ss = self.kernel.eval(query, query) + self.noise_variance;
        let var_n = (k_ss - v.iter().map(|vi| vi * vi).sum::<f64>()).max(1e-12);
        (self.y_mean + self.y_std * mean_n, var_n * self.y_std * self.y_std)
    }

    /// Draws one Thompson sample value at `query` (independent
    /// approximation: `µ + σ·z`).
    pub fn thompson_sample<R: Rng + ?Sized>(
        &self,
        query: &[f64],
        normal: &StandardNormal,
        rng: &mut R,
    ) -> f64 {
        let (mu, var) = self.predict(query);
        mu + var.sqrt() * normal.sample(rng)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use glova_stats::rng::seeded;

    fn toy_data() -> (Vec<Vec<f64>>, Vec<f64>) {
        let xs: Vec<Vec<f64>> = (0..20).map(|i| vec![i as f64 / 19.0]).collect();
        let ys: Vec<f64> = xs.iter().map(|x| (6.0 * x[0]).sin()).collect();
        (xs, ys)
    }

    #[test]
    fn interpolates_training_points() {
        let (xs, ys) = toy_data();
        let gp = GaussianProcess::fit(Matern52::isotropic(1.0, 0.2, 1), 1e-6, &xs, &ys);
        for (x, y) in xs.iter().zip(&ys) {
            let (mu, _) = gp.predict(x);
            assert!((mu - y).abs() < 0.01, "at {x:?}: {mu} vs {y}");
        }
    }

    #[test]
    fn uncertainty_grows_away_from_data() {
        let (xs, ys) = toy_data();
        let gp = GaussianProcess::fit(Matern52::isotropic(1.0, 0.1, 1), 1e-6, &xs, &ys);
        let (_, var_near) = gp.predict(&[0.5]);
        let (_, var_far) = gp.predict(&[3.0]);
        assert!(var_far > 10.0 * var_near, "{var_far} vs {var_near}");
    }

    #[test]
    fn auto_fit_generalizes() {
        let (xs, ys) = toy_data();
        let mut rng = seeded(8);
        let gp = GaussianProcess::fit_auto(&xs, &ys, &mut rng);
        // Predict at held-out midpoints.
        for i in 0..10 {
            let x = [(2.0 * i as f64 + 1.0) / 38.0];
            let truth = (6.0 * x[0]).sin();
            let (mu, _) = gp.predict(&x);
            assert!((mu - truth).abs() < 0.1, "at {x:?}: {mu} vs {truth}");
        }
    }

    #[test]
    fn lml_prefers_sane_lengthscales() {
        let (xs, ys) = toy_data();
        let good = GaussianProcess::fit(Matern52::isotropic(1.0, 0.15, 1), 1e-4, &xs, &ys);
        let bad = GaussianProcess::fit(Matern52::isotropic(1.0, 1e-3, 1), 1e-4, &xs, &ys);
        assert!(good.log_marginal_likelihood() > bad.log_marginal_likelihood());
    }

    #[test]
    fn thompson_samples_spread_with_variance() {
        let (xs, ys) = toy_data();
        let gp = GaussianProcess::fit(Matern52::isotropic(1.0, 0.1, 1), 1e-6, &xs, &ys);
        let normal = StandardNormal::new();
        let mut rng = seeded(10);
        let far: Vec<f64> =
            (0..200).map(|_| gp.thompson_sample(&[5.0], &normal, &mut rng)).collect();
        let near: Vec<f64> =
            (0..200).map(|_| gp.thompson_sample(&[0.5], &normal, &mut rng)).collect();
        assert!(glova_stats::descriptive::std_dev(&far) > glova_stats::descriptive::std_dev(&near));
    }

    #[test]
    #[should_panic(expected = "zero observations")]
    fn empty_fit_panics() {
        GaussianProcess::fit(Matern52::isotropic(1.0, 0.1, 1), 1e-6, &[], &[]);
    }

    #[test]
    fn prediction_scale_restored() {
        // Targets far from zero: prediction must come back in original units.
        let xs: Vec<Vec<f64>> = (0..10).map(|i| vec![i as f64 / 9.0]).collect();
        let ys: Vec<f64> = xs.iter().map(|x| 500.0 + 3.0 * x[0]).collect();
        let gp = GaussianProcess::fit(Matern52::isotropic(1.0, 0.5, 1), 1e-6, &xs, &ys);
        let (mu, _) = gp.predict(&[0.5]);
        assert!((mu - 501.5).abs() < 0.5, "{mu}");
    }
}
