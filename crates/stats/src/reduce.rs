//! Order-independent reductions shared by the evaluation pipeline.
//!
//! The worst-case reward of a simulation batch is its minimum — but the
//! batches are evaluated by pluggable engines that complete jobs in any
//! order, and a simulation that produces a `NaN` metric must *poison* the
//! reduction rather than be silently dropped (IEEE `min`/`max` discard
//! `NaN` operands, and `fold(INFINITY, f64::min)` inherits that). These
//! helpers give the pipeline a single reduction with two properties:
//!
//! 1. **NaN propagation** — any `NaN` input makes the result `NaN`;
//! 2. **Order independence** — every permutation of the inputs produces
//!    the same result, so sequential and threaded engines agree bitwise.

/// NaN-propagating minimum of two values.
///
/// Returns `NaN` if either operand is `NaN`, otherwise the smaller value.
/// Commutative and associative (up to `NaN` payload), unlike [`f64::min`].
#[must_use]
pub fn nan_min(a: f64, b: f64) -> f64 {
    if a.is_nan() || b.is_nan() {
        f64::NAN
    } else {
        a.min(b)
    }
}

/// NaN-propagating minimum of an iterator; the identity (empty-input
/// result) is `+∞`.
///
/// This is the pipeline's *worst reward* reduction: the worst outcome of
/// zero simulations is "no evidence of failure", and any `NaN` reward
/// (a simulation that diverged) poisons the whole batch.
#[must_use]
pub fn worst(values: impl IntoIterator<Item = f64>) -> f64 {
    values.into_iter().fold(f64::INFINITY, nan_min)
}

/// Finite stand-in reward for a diverged (NaN) simulation batch.
///
/// Decisively below every real reward (rewards are bounded well above
/// this by the spec's normalized-degradation form) yet finite, so replay
/// buffers, incumbent comparisons and k-means features stay well-defined.
pub const DIVERGED_REWARD: f64 = -1e3;

/// Maps a NaN worst reward to [`DIVERGED_REWARD`]; finite values pass
/// through unchanged.
///
/// [`worst`] deliberately propagates NaN so a diverged simulation is
/// never silently dropped *inside* a reduction; at a storage boundary
/// (replay buffer, per-corner signature, incumbent) the poison must
/// become a decisively-infeasible finite value — stored NaN would wedge
/// every later comparison.
#[must_use]
pub fn finite_worst(worst: f64) -> f64 {
    if worst.is_nan() {
        DIVERGED_REWARD
    } else {
        worst
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn plain_minimum() {
        assert_eq!(nan_min(1.0, 2.0), 1.0);
        assert_eq!(nan_min(-3.0, 2.0), -3.0);
        assert_eq!(worst([3.0, 1.0, 2.0]), 1.0);
    }

    #[test]
    fn nan_poisons_both_positions() {
        assert!(nan_min(f64::NAN, 1.0).is_nan());
        assert!(nan_min(1.0, f64::NAN).is_nan());
        assert!(worst([1.0, f64::NAN, 0.0]).is_nan());
        assert!(worst([f64::NAN]).is_nan());
    }

    #[test]
    fn std_min_would_drop_nan() {
        // Documents the defect this module exists to fix.
        assert_eq!([1.0, f64::NAN].iter().copied().fold(f64::INFINITY, f64::min), 1.0);
        assert!(worst([1.0, f64::NAN]).is_nan());
    }

    #[test]
    fn empty_identity_is_infinity() {
        assert_eq!(worst([]), f64::INFINITY);
    }

    #[test]
    fn order_independent() {
        let perms: [[f64; 4]; 4] = [
            [4.0, -1.0, 3.0, 0.5],
            [0.5, 3.0, -1.0, 4.0],
            [-1.0, 4.0, 0.5, 3.0],
            [3.0, 0.5, 4.0, -1.0],
        ];
        for p in perms {
            assert_eq!(worst(p), -1.0);
        }
        let with_nan = [[4.0, f64::NAN, 3.0], [3.0, 4.0, f64::NAN], [f64::NAN, 3.0, 4.0]];
        for p in with_nan {
            assert!(worst(p).is_nan());
        }
    }

    #[test]
    fn infinities_behave() {
        assert_eq!(worst([f64::INFINITY, 1.0]), 1.0);
        assert_eq!(worst([f64::NEG_INFINITY, 1.0]), f64::NEG_INFINITY);
    }

    #[test]
    fn finite_worst_sanitizes_only_nan() {
        assert_eq!(finite_worst(f64::NAN), DIVERGED_REWARD);
        assert_eq!(finite_worst(0.2), 0.2);
        assert_eq!(finite_worst(f64::NEG_INFINITY), f64::NEG_INFINITY);
        assert_eq!(finite_worst(worst([1.0, f64::NAN])), DIVERGED_REWARD);
    }
}
