//! Fixed-bin histograms for the figure-reproduction harnesses.
//!
//! The Fig. 1 harness visualizes the die-to-die (global) vs within-die
//! (local) structure of sampled mismatch; a small text histogram is all the
//! terminal output needs.

/// A histogram with uniformly sized bins over `[lo, hi)`.
///
/// Out-of-range observations are counted in saturating edge bins so that no
/// sample is silently dropped.
///
/// # Example
///
/// ```
/// let mut h = glova_stats::Histogram::new(0.0, 10.0, 5);
/// h.push(1.0);
/// h.push(9.5);
/// assert_eq!(h.total(), 2);
/// assert_eq!(h.counts()[0], 1);
/// assert_eq!(h.counts()[4], 1);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Histogram {
    lo: f64,
    hi: f64,
    counts: Vec<u64>,
    total: u64,
}

impl Histogram {
    /// Creates a histogram with `bins` uniform bins over `[lo, hi)`.
    ///
    /// # Panics
    ///
    /// Panics if `bins == 0` or `lo >= hi`.
    pub fn new(lo: f64, hi: f64, bins: usize) -> Self {
        assert!(bins > 0, "histogram needs at least one bin");
        assert!(lo < hi, "invalid histogram range [{lo}, {hi})");
        Self { lo, hi, counts: vec![0; bins], total: 0 }
    }

    /// Adds one observation (clamped into the edge bins if out of range).
    pub fn push(&mut self, x: f64) {
        let bins = self.counts.len();
        let frac = (x - self.lo) / (self.hi - self.lo);
        let idx = ((frac * bins as f64).floor() as i64).clamp(0, bins as i64 - 1) as usize;
        self.counts[idx] += 1;
        self.total += 1;
    }

    /// Adds many observations.
    pub fn extend_from_slice(&mut self, xs: &[f64]) {
        for &x in xs {
            self.push(x);
        }
    }

    /// Per-bin counts.
    pub fn counts(&self) -> &[u64] {
        &self.counts
    }

    /// Total number of observations.
    pub fn total(&self) -> u64 {
        self.total
    }

    /// The center value of bin `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of bounds.
    pub fn bin_center(&self, i: usize) -> f64 {
        assert!(i < self.counts.len(), "bin index {i} out of bounds");
        let width = (self.hi - self.lo) / self.counts.len() as f64;
        self.lo + (i as f64 + 0.5) * width
    }

    /// Renders an ASCII bar chart, `width` characters at the tallest bin.
    pub fn render(&self, width: usize) -> String {
        let max = self.counts.iter().copied().max().unwrap_or(0).max(1);
        let mut out = String::new();
        for (i, &c) in self.counts.iter().enumerate() {
            let bar_len = (c as f64 / max as f64 * width as f64).round() as usize;
            out.push_str(&format!(
                "{:>10.3e} | {}{} {}\n",
                self.bin_center(i),
                "#".repeat(bar_len),
                " ".repeat(width - bar_len),
                c
            ));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bins_receive_correct_samples() {
        let mut h = Histogram::new(0.0, 1.0, 4);
        for &x in &[0.1, 0.3, 0.6, 0.9, 0.99] {
            h.push(x);
        }
        assert_eq!(h.counts(), &[1, 1, 1, 2]);
        assert_eq!(h.total(), 5);
    }

    #[test]
    fn out_of_range_clamps_to_edges() {
        let mut h = Histogram::new(0.0, 1.0, 2);
        h.push(-5.0);
        h.push(5.0);
        assert_eq!(h.counts(), &[1, 1]);
    }

    #[test]
    fn bin_centers() {
        let h = Histogram::new(0.0, 10.0, 5);
        assert!((h.bin_center(0) - 1.0).abs() < 1e-12);
        assert!((h.bin_center(4) - 9.0).abs() < 1e-12);
    }

    #[test]
    fn render_contains_counts() {
        let mut h = Histogram::new(0.0, 1.0, 2);
        h.extend_from_slice(&[0.1, 0.2, 0.8]);
        let text = h.render(10);
        assert!(text.contains('#'));
        assert!(text.lines().count() == 2);
    }

    #[test]
    #[should_panic(expected = "at least one bin")]
    fn zero_bins_panics() {
        Histogram::new(0.0, 1.0, 0);
    }

    #[test]
    #[should_panic(expected = "invalid histogram range")]
    fn inverted_range_panics() {
        Histogram::new(1.0, 0.0, 3);
    }
}
