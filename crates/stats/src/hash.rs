//! Deterministic non-cryptographic hashing of numeric data.
//!
//! The evaluation cache keys simulation points by the *bit patterns* of
//! their floating-point inputs (design vector, corner, mismatch
//! condition); FNV-1a over those bits is fast, dependency-free and
//! stable across platforms and runs — unlike `std`'s `RandomState`,
//! whose per-process seed would make cache keys unreproducible.

/// FNV-1a 64-bit offset basis.
pub const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;

/// FNV-1a 64-bit prime.
pub const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

/// Incremental FNV-1a 64-bit hasher over words.
///
/// # Example
///
/// ```
/// use glova_stats::hash::Fnv1a;
/// let mut h = Fnv1a::new();
/// h.write_f64(1.5);
/// h.write_u64(42);
/// assert_eq!(h.finish(), {
///     let mut h2 = Fnv1a::new();
///     h2.write_f64(1.5);
///     h2.write_u64(42);
///     h2.finish()
/// });
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Fnv1a(u64);

impl Fnv1a {
    /// Creates a hasher at the FNV offset basis.
    pub fn new() -> Self {
        Self(FNV_OFFSET)
    }

    /// Absorbs one 64-bit word, byte by byte (FNV-1a is byte-oriented).
    pub fn write_u64(&mut self, v: u64) {
        for byte in v.to_le_bytes() {
            self.0 ^= u64::from(byte);
            self.0 = self.0.wrapping_mul(FNV_PRIME);
        }
    }

    /// Absorbs one 64-bit word in a single xor-multiply round — a
    /// word-granular FNV variant, 8× fewer multiplies than the
    /// byte-oriented [`write_u64`](Self::write_u64). Used on lookup hot
    /// paths (the evaluation cache hashes ~30 words per probe) where the
    /// slightly weaker byte diffusion is irrelevant because every hit is
    /// validated against exact bits anyway.
    pub fn write_word(&mut self, v: u64) {
        self.0 ^= v;
        self.0 = self.0.wrapping_mul(FNV_PRIME);
    }

    /// Absorbs a float's exact bit pattern. `-0.0` and `0.0` hash
    /// differently, as do distinct NaN payloads — bit identity is exactly
    /// the cache-correctness contract.
    pub fn write_f64(&mut self, v: f64) {
        self.write_u64(v.to_bits());
    }

    /// Absorbs a slice of floats, in order.
    pub fn write_f64_slice(&mut self, values: &[f64]) {
        for &v in values {
            self.write_f64(v);
        }
    }

    /// The current hash value.
    pub fn finish(&self) -> u64 {
        self.0
    }
}

impl Default for Fnv1a {
    fn default() -> Self {
        Self::new()
    }
}

/// One-shot FNV-1a hash of a float slice's bit patterns.
pub fn hash_f64_slice(values: &[f64]) -> u64 {
    let mut h = Fnv1a::new();
    h.write_f64_slice(values);
    h.finish()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_and_order_sensitive() {
        assert_eq!(hash_f64_slice(&[1.0, 2.0]), hash_f64_slice(&[1.0, 2.0]));
        assert_ne!(hash_f64_slice(&[1.0, 2.0]), hash_f64_slice(&[2.0, 1.0]));
    }

    #[test]
    fn empty_slice_is_offset_basis() {
        assert_eq!(hash_f64_slice(&[]), FNV_OFFSET);
    }

    #[test]
    fn distinguishes_signed_zero() {
        assert_ne!(hash_f64_slice(&[0.0]), hash_f64_slice(&[-0.0]));
    }

    #[test]
    fn known_vector() {
        // FNV-1a of eight zero bytes (0.0f64) — independently computable.
        let mut h = Fnv1a::new();
        h.write_u64(0);
        let mut expect = FNV_OFFSET;
        for _ in 0..8 {
            expect = expect.wrapping_mul(FNV_PRIME);
        }
        assert_eq!(h.finish(), expect);
    }

    #[test]
    fn word_rounds_are_deterministic_and_order_sensitive() {
        let mut a = Fnv1a::new();
        a.write_word(1);
        a.write_word(2);
        let mut b = Fnv1a::new();
        b.write_word(2);
        b.write_word(1);
        assert_ne!(a.finish(), b.finish());
        let mut c = Fnv1a::new();
        c.write_word(1);
        c.write_word(2);
        assert_eq!(a.finish(), c.finish());
    }

    #[test]
    fn incremental_matches_one_shot() {
        let mut h = Fnv1a::new();
        h.write_f64(3.25);
        h.write_f64(-7.5);
        assert_eq!(h.finish(), hash_f64_slice(&[3.25, -7.5]));
    }
}
