//! Deterministic RNG construction and stream fan-out.
//!
//! Every stochastic component in the workspace takes a seed or an `impl Rng`.
//! Experiment harnesses need *independent* streams per arm (circuit ×
//! verification method × framework × seed); [`fork`] derives child seeds
//! from a parent seed and a stream label with a SplitMix64 mix so that
//! adjacent labels produce decorrelated streams.

use rand::rngs::StdRng;
use rand::SeedableRng;

/// The concrete RNG used throughout the workspace.
///
/// A type alias keeps call sites readable and allows swapping the generator
/// in one place.
pub type Rng64 = StdRng;

/// Creates a deterministic RNG from a 64-bit seed.
///
/// # Example
///
/// ```
/// use rand::Rng;
/// let mut a = glova_stats::rng::seeded(7);
/// let mut b = glova_stats::rng::seeded(7);
/// assert_eq!(a.gen::<u64>(), b.gen::<u64>());
/// ```
pub fn seeded(seed: u64) -> Rng64 {
    StdRng::seed_from_u64(split_mix64(seed))
}

/// Derives an independent child seed from `(parent, stream)`.
///
/// Uses two rounds of SplitMix64 over a combination of the inputs; distinct
/// `(parent, stream)` pairs map to well-separated seeds even when the inputs
/// are small consecutive integers (the common case in experiment sweeps).
///
/// # Example
///
/// ```
/// let s0 = glova_stats::rng::fork(42, 0);
/// let s1 = glova_stats::rng::fork(42, 1);
/// assert_ne!(s0, s1);
/// ```
pub fn fork(parent: u64, stream: u64) -> u64 {
    split_mix64(split_mix64(parent).wrapping_add(0x9E37_79B9_7F4A_7C15u64.wrapping_mul(stream + 1)))
}

/// Creates a deterministic RNG for a named sub-stream of a parent seed.
pub fn forked(parent: u64, stream: u64) -> Rng64 {
    seeded(fork(parent, stream))
}

/// SplitMix64 finalizer — a high-quality 64-bit mixing function.
fn split_mix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::Rng;
    use std::collections::HashSet;

    #[test]
    fn seeded_is_deterministic() {
        let mut a = seeded(123);
        let mut b = seeded(123);
        for _ in 0..32 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = seeded(1);
        let mut b = seeded(2);
        let va: Vec<u64> = (0..8).map(|_| a.gen()).collect();
        let vb: Vec<u64> = (0..8).map(|_| b.gen()).collect();
        assert_ne!(va, vb);
    }

    #[test]
    fn fork_produces_distinct_streams() {
        let mut seen = HashSet::new();
        for parent in 0..50u64 {
            for stream in 0..50u64 {
                assert!(seen.insert(fork(parent, stream)), "collision at ({parent},{stream})");
            }
        }
    }

    #[test]
    fn fork_is_deterministic() {
        assert_eq!(fork(99, 3), fork(99, 3));
    }

    #[test]
    fn forked_streams_are_decorrelated() {
        // Crude check: first draws from consecutive streams should not be
        // monotone in the stream index.
        let draws: Vec<u64> = (0..16).map(|s| forked(7, s).gen::<u64>()).collect();
        let ascending = draws.windows(2).all(|w| w[0] < w[1]);
        let descending = draws.windows(2).all(|w| w[0] > w[1]);
        assert!(!ascending && !descending);
    }

    #[test]
    fn split_mix_avalanche() {
        // Flipping one input bit should flip roughly half the output bits.
        let base = split_mix64(0xDEAD_BEEF);
        let flipped = split_mix64(0xDEAD_BEEF ^ 1);
        let distance = (base ^ flipped).count_ones();
        assert!((16..=48).contains(&distance), "poor avalanche: {distance}");
    }
}
