//! Statistical primitives shared by every crate in the GLOVA workspace.
//!
//! The GLOVA framework (risk-sensitive RL sizing of analog circuits under
//! PVT variation) is statistics-heavy: hierarchical Monte-Carlo mismatch
//! sampling, µ-σ feasibility evaluation, Pearson-correlation-based
//! simulation reordering, and reproducible multi-seed experiment harnesses.
//! This crate provides the shared substrate:
//!
//! - [`rng`] — deterministic, seedable RNG construction and *fan-out*
//!   (`fork`) so that independent experiment arms never share streams.
//! - [`normal`] — Box–Muller standard-normal sampling (the offline crate
//!   set has no `rand_distr`), plus truncated variants.
//! - [`descriptive`] — Welford running statistics, means, standard
//!   deviations, quantiles.
//! - [`correlation`] — Pearson correlation and covariance, used by the
//!   MC-reordering h-SCORE (paper Eq. 9–10).
//! - [`histogram`] — fixed-bin histograms for the figure harnesses.
//! - [`reduce`] — order-independent, NaN-propagating reductions (the
//!   worst-reward fold shared by the evaluation pipeline).
//! - [`hash`] — deterministic FNV-1a hashing of float bit patterns (the
//!   evaluation-cache keys).
//!
//! # Example
//!
//! ```
//! use glova_stats::rng::seeded;
//! use glova_stats::normal::StandardNormal;
//! use glova_stats::descriptive::RunningStats;
//!
//! let mut rng = seeded(42);
//! let mut stats = RunningStats::new();
//! let normal = StandardNormal::new();
//! for _ in 0..10_000 {
//!     stats.push(normal.sample(&mut rng));
//! }
//! assert!(stats.mean().abs() < 0.05);
//! assert!((stats.std_dev() - 1.0).abs() < 0.05);
//! ```

pub mod binomial;
pub mod correlation;
pub mod descriptive;
pub mod hash;
pub mod histogram;
pub mod normal;
pub mod reduce;
pub mod rng;

pub use binomial::clopper_pearson;
pub use correlation::{covariance, pearson};
pub use descriptive::{mean, quantile, std_dev, variance, RunningStats, Summary};
pub use hash::{hash_f64_slice, Fnv1a};
pub use histogram::Histogram;
pub use normal::StandardNormal;
pub use reduce::{finite_worst, nan_min, worst, DIVERGED_REWARD};
pub use rng::{fork, seeded, Rng64};
