//! Descriptive statistics: running (Welford) moments, batch helpers,
//! quantiles and compact summaries.
//!
//! The µ-σ evaluation of the paper (Eq. 7) computes `E[F_i] + β₂σ[F_i]` from
//! a small pre-sampled subset of Monte-Carlo points; [`RunningStats`] is the
//! numerically stable accumulator behind it.

/// Numerically stable running mean/variance accumulator (Welford's method).
///
/// # Example
///
/// ```
/// use glova_stats::descriptive::RunningStats;
/// let mut s = RunningStats::new();
/// for x in [1.0, 2.0, 3.0, 4.0] {
///     s.push(x);
/// }
/// assert_eq!(s.count(), 4);
/// assert!((s.mean() - 2.5).abs() < 1e-12);
/// ```
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct RunningStats {
    count: u64,
    mean: f64,
    m2: f64,
    min: f64,
    max: f64,
}

impl RunningStats {
    /// Creates an empty accumulator.
    pub fn new() -> Self {
        Self { count: 0, mean: 0.0, m2: 0.0, min: f64::INFINITY, max: f64::NEG_INFINITY }
    }

    /// Adds one observation.
    pub fn push(&mut self, x: f64) {
        self.count += 1;
        let delta = x - self.mean;
        self.mean += delta / self.count as f64;
        self.m2 += delta * (x - self.mean);
        self.min = self.min.min(x);
        self.max = self.max.max(x);
    }

    /// Number of observations so far.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sample mean; `0.0` when empty.
    pub fn mean(&self) -> f64 {
        self.mean
    }

    /// Population variance (`m2 / n`); `0.0` for fewer than two samples.
    ///
    /// The paper's µ-σ criterion and the ensemble-critic aggregation both
    /// use population (biased) moments, matching the `σ[·]` of Eq. 6–7.
    pub fn variance(&self) -> f64 {
        if self.count < 2 {
            0.0
        } else {
            self.m2 / self.count as f64
        }
    }

    /// Unbiased sample variance (`m2 / (n − 1)`).
    pub fn sample_variance(&self) -> f64 {
        if self.count < 2 {
            0.0
        } else {
            self.m2 / (self.count - 1) as f64
        }
    }

    /// Population standard deviation.
    pub fn std_dev(&self) -> f64 {
        self.variance().sqrt()
    }

    /// Minimum observation; `+∞` when empty.
    pub fn min(&self) -> f64 {
        self.min
    }

    /// Maximum observation; `−∞` when empty.
    pub fn max(&self) -> f64 {
        self.max
    }

    /// The µ + βσ bound used by the µ-σ evaluation (paper Eq. 7).
    pub fn mu_sigma_bound(&self, beta: f64) -> f64 {
        self.mean() + beta * self.std_dev()
    }

    /// Merges another accumulator into this one (parallel reduction).
    pub fn merge(&mut self, other: &RunningStats) {
        if other.count == 0 {
            return;
        }
        if self.count == 0 {
            *self = *other;
            return;
        }
        let n1 = self.count as f64;
        let n2 = other.count as f64;
        let delta = other.mean - self.mean;
        let total = n1 + n2;
        self.mean += delta * n2 / total;
        self.m2 += other.m2 + delta * delta * n1 * n2 / total;
        self.count += other.count;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }
}

impl FromIterator<f64> for RunningStats {
    fn from_iter<I: IntoIterator<Item = f64>>(iter: I) -> Self {
        let mut s = RunningStats::new();
        for x in iter {
            s.push(x);
        }
        s
    }
}

impl Extend<f64> for RunningStats {
    fn extend<I: IntoIterator<Item = f64>>(&mut self, iter: I) {
        for x in iter {
            self.push(x);
        }
    }
}

/// Mean of a slice; `0.0` when empty.
pub fn mean(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        0.0
    } else {
        xs.iter().sum::<f64>() / xs.len() as f64
    }
}

/// Population variance of a slice.
pub fn variance(xs: &[f64]) -> f64 {
    xs.iter().copied().collect::<RunningStats>().variance()
}

/// Population standard deviation of a slice.
pub fn std_dev(xs: &[f64]) -> f64 {
    variance(xs).sqrt()
}

/// Linear-interpolation quantile (`q` in `[0, 1]`) of a slice.
///
/// # Panics
///
/// Panics if `xs` is empty or `q` is outside `[0, 1]`.
pub fn quantile(xs: &[f64], q: f64) -> f64 {
    assert!(!xs.is_empty(), "quantile of empty slice");
    assert!((0.0..=1.0).contains(&q), "quantile level {q} outside [0, 1]");
    let mut sorted = xs.to_vec();
    sorted.sort_by(|a, b| a.partial_cmp(b).expect("NaN in quantile input"));
    let pos = q * (sorted.len() - 1) as f64;
    let lo = pos.floor() as usize;
    let hi = pos.ceil() as usize;
    if lo == hi {
        sorted[lo]
    } else {
        let frac = pos - lo as f64;
        sorted[lo] * (1.0 - frac) + sorted[hi] * frac
    }
}

/// A compact five-number-style summary of a sample.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Summary {
    /// Number of observations.
    pub count: u64,
    /// Sample mean.
    pub mean: f64,
    /// Population standard deviation.
    pub std_dev: f64,
    /// Minimum observation.
    pub min: f64,
    /// Maximum observation.
    pub max: f64,
}

impl Summary {
    /// Summarizes a slice of observations.
    ///
    /// # Example
    ///
    /// ```
    /// let s = glova_stats::descriptive::Summary::of(&[1.0, 3.0]);
    /// assert_eq!(s.count, 2);
    /// assert_eq!(s.mean, 2.0);
    /// ```
    pub fn of(xs: &[f64]) -> Self {
        let stats: RunningStats = xs.iter().copied().collect();
        Self {
            count: stats.count(),
            mean: stats.mean(),
            std_dev: stats.std_dev(),
            min: stats.min(),
            max: stats.max(),
        }
    }
}

impl std::fmt::Display for Summary {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "n={} mean={:.4e} std={:.4e} min={:.4e} max={:.4e}",
            self.count, self.mean, self.std_dev, self.min, self.max
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn empty_stats_are_neutral() {
        let s = RunningStats::new();
        assert_eq!(s.count(), 0);
        assert_eq!(s.mean(), 0.0);
        assert_eq!(s.variance(), 0.0);
    }

    #[test]
    fn single_sample_variance_zero() {
        let mut s = RunningStats::new();
        s.push(5.0);
        assert_eq!(s.variance(), 0.0);
        assert_eq!(s.mean(), 5.0);
        assert_eq!(s.min(), 5.0);
        assert_eq!(s.max(), 5.0);
    }

    #[test]
    fn known_variance() {
        let s: RunningStats = [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0].into_iter().collect();
        assert!((s.mean() - 5.0).abs() < 1e-12);
        assert!((s.variance() - 4.0).abs() < 1e-12);
        assert!((s.sample_variance() - 32.0 / 7.0).abs() < 1e-12);
    }

    #[test]
    fn mu_sigma_bound_matches_manual() {
        let s: RunningStats = [1.0, 2.0, 3.0].into_iter().collect();
        let expected = s.mean() + 4.0 * s.std_dev();
        assert_eq!(s.mu_sigma_bound(4.0), expected);
    }

    #[test]
    fn merge_equals_sequential() {
        let xs: Vec<f64> = (0..100).map(|i| (i as f64).sin() * 3.0 + 1.0).collect();
        let sequential: RunningStats = xs.iter().copied().collect();
        let mut left: RunningStats = xs[..37].iter().copied().collect();
        let right: RunningStats = xs[37..].iter().copied().collect();
        left.merge(&right);
        assert!((left.mean() - sequential.mean()).abs() < 1e-10);
        assert!((left.variance() - sequential.variance()).abs() < 1e-10);
        assert_eq!(left.count(), sequential.count());
    }

    #[test]
    fn merge_with_empty_is_identity() {
        let mut s: RunningStats = [1.0, 2.0].into_iter().collect();
        let before = s;
        s.merge(&RunningStats::new());
        assert_eq!(s, before);
        let mut empty = RunningStats::new();
        empty.merge(&before);
        assert_eq!(empty, before);
    }

    #[test]
    fn quantile_endpoints_and_median() {
        let xs = [3.0, 1.0, 2.0, 5.0, 4.0];
        assert_eq!(quantile(&xs, 0.0), 1.0);
        assert_eq!(quantile(&xs, 1.0), 5.0);
        assert_eq!(quantile(&xs, 0.5), 3.0);
    }

    #[test]
    fn quantile_interpolates() {
        let xs = [0.0, 10.0];
        assert!((quantile(&xs, 0.25) - 2.5).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "empty")]
    fn quantile_empty_panics() {
        quantile(&[], 0.5);
    }

    #[test]
    fn summary_display_is_nonempty() {
        let s = Summary::of(&[1.0, 2.0, 3.0]);
        assert!(!format!("{s}").is_empty());
    }

    proptest! {
        #[test]
        fn prop_variance_nonnegative(xs in proptest::collection::vec(-1e6f64..1e6, 0..200)) {
            let s: RunningStats = xs.iter().copied().collect();
            prop_assert!(s.variance() >= 0.0);
        }

        #[test]
        fn prop_mean_within_bounds(xs in proptest::collection::vec(-1e6f64..1e6, 1..200)) {
            let s: RunningStats = xs.iter().copied().collect();
            prop_assert!(s.mean() >= s.min() - 1e-9);
            prop_assert!(s.mean() <= s.max() + 1e-9);
        }

        #[test]
        fn prop_merge_matches_sequential(
            xs in proptest::collection::vec(-1e3f64..1e3, 0..100),
            ys in proptest::collection::vec(-1e3f64..1e3, 0..100),
        ) {
            let all: RunningStats = xs.iter().chain(ys.iter()).copied().collect();
            let mut merged: RunningStats = xs.iter().copied().collect();
            merged.merge(&ys.iter().copied().collect());
            prop_assert!((merged.mean() - all.mean()).abs() < 1e-6);
            prop_assert!((merged.variance() - all.variance()).abs() < 1e-6);
        }

        #[test]
        fn prop_quantile_monotone(
            xs in proptest::collection::vec(-1e3f64..1e3, 1..50),
            q1 in 0.0f64..1.0,
            q2 in 0.0f64..1.0,
        ) {
            let (lo, hi) = if q1 <= q2 { (q1, q2) } else { (q2, q1) };
            prop_assert!(quantile(&xs, lo) <= quantile(&xs, hi) + 1e-12);
        }
    }
}
