//! Normal (Gaussian) sampling via the Box–Muller transform.
//!
//! The offline dependency set has `rand` but not `rand_distr`, so the
//! standard-normal distribution is implemented here. Box–Muller generates
//! pairs of independent deviates; the spare is cached per sampler instance.

use rand::Rng;
use std::cell::Cell;
use std::f64::consts::PI;

/// A standard-normal `N(0, 1)` sampler.
///
/// Interior mutability caches the spare Box–Muller deviate, so sampling is
/// one `ln`/`sqrt`/`cos` per *pair* of draws on average.
///
/// # Example
///
/// ```
/// use glova_stats::normal::StandardNormal;
/// let normal = StandardNormal::new();
/// let mut rng = glova_stats::rng::seeded(1);
/// let x = normal.sample(&mut rng);
/// assert!(x.is_finite());
/// ```
#[derive(Debug, Default)]
pub struct StandardNormal {
    spare: Cell<Option<f64>>,
}

impl Clone for StandardNormal {
    fn clone(&self) -> Self {
        // The spare deviate is a per-instance cache, not distributional
        // state; a clone starts with an empty cache.
        Self::new()
    }
}

impl StandardNormal {
    /// Creates a sampler with an empty spare cache.
    pub fn new() -> Self {
        Self { spare: Cell::new(None) }
    }

    /// Draws one standard-normal deviate.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> f64 {
        if let Some(z) = self.spare.take() {
            return z;
        }
        // u1 in (0, 1]: avoid ln(0).
        let u1: f64 = 1.0 - rng.gen::<f64>();
        let u2: f64 = rng.gen();
        let radius = (-2.0 * u1.ln()).sqrt();
        let theta = 2.0 * PI * u2;
        self.spare.set(Some(radius * theta.sin()));
        radius * theta.cos()
    }

    /// Draws a deviate from `N(mean, sigma^2)`.
    ///
    /// # Panics
    ///
    /// Panics in debug builds if `sigma` is negative.
    pub fn sample_scaled<R: Rng + ?Sized>(&self, rng: &mut R, mean: f64, sigma: f64) -> f64 {
        debug_assert!(sigma >= 0.0, "sigma must be non-negative, got {sigma}");
        mean + sigma * self.sample(rng)
    }

    /// Draws a deviate from `N(mean, sigma^2)` truncated to `[lo, hi]` by
    /// rejection, falling back to clamping after `max_tries`.
    ///
    /// Used for bounded physical parameters where a hard tail would be
    /// unphysical (e.g. capacitance must stay positive).
    pub fn sample_truncated<R: Rng + ?Sized>(
        &self,
        rng: &mut R,
        mean: f64,
        sigma: f64,
        lo: f64,
        hi: f64,
    ) -> f64 {
        debug_assert!(lo <= hi, "invalid truncation interval [{lo}, {hi}]");
        const MAX_TRIES: usize = 64;
        for _ in 0..MAX_TRIES {
            let x = self.sample_scaled(rng, mean, sigma);
            if (lo..=hi).contains(&x) {
                return x;
            }
        }
        mean.clamp(lo, hi)
    }

    /// Fills `out` with i.i.d. standard-normal deviates.
    pub fn fill<R: Rng + ?Sized>(&self, rng: &mut R, out: &mut [f64]) {
        for slot in out.iter_mut() {
            *slot = self.sample(rng);
        }
    }
}

/// Standard normal cumulative distribution function `Φ(x)`.
///
/// Implemented via [`erf`]; absolute error below `1.5e-7`, which is ample
/// for the µ-σ feasibility analytics and tests in this workspace.
pub fn normal_cdf(x: f64) -> f64 {
    0.5 * (1.0 + erf(x / std::f64::consts::SQRT_2))
}

/// Error function approximation (Abramowitz & Stegun 7.1.26).
///
/// Maximum absolute error `1.5e-7`.
pub fn erf(x: f64) -> f64 {
    let sign = if x < 0.0 { -1.0 } else { 1.0 };
    let x = x.abs();
    let t = 1.0 / (1.0 + 0.327_591_1 * x);
    let poly = t
        * (0.254_829_592
            + t * (-0.284_496_736
                + t * (1.421_413_741 + t * (-1.453_152_027 + t * 1.061_405_429))));
    sign * (1.0 - poly * (-x * x).exp())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::descriptive::RunningStats;
    use crate::rng::seeded;

    #[test]
    fn moments_match_standard_normal() {
        let normal = StandardNormal::new();
        let mut rng = seeded(11);
        let mut stats = RunningStats::new();
        for _ in 0..200_000 {
            stats.push(normal.sample(&mut rng));
        }
        assert!(stats.mean().abs() < 0.01, "mean {}", stats.mean());
        assert!((stats.std_dev() - 1.0).abs() < 0.01, "std {}", stats.std_dev());
    }

    #[test]
    fn scaled_moments() {
        let normal = StandardNormal::new();
        let mut rng = seeded(12);
        let mut stats = RunningStats::new();
        for _ in 0..100_000 {
            stats.push(normal.sample_scaled(&mut rng, 3.0, 0.5));
        }
        assert!((stats.mean() - 3.0).abs() < 0.01);
        assert!((stats.std_dev() - 0.5).abs() < 0.01);
    }

    #[test]
    fn truncation_respects_bounds() {
        let normal = StandardNormal::new();
        let mut rng = seeded(13);
        for _ in 0..10_000 {
            let x = normal.sample_truncated(&mut rng, 0.0, 2.0, -1.0, 1.0);
            assert!((-1.0..=1.0).contains(&x));
        }
    }

    #[test]
    fn truncation_degenerate_interval_clamps() {
        let normal = StandardNormal::new();
        let mut rng = seeded(14);
        // Interval far in the tail: rejection will exhaust and clamp.
        let x = normal.sample_truncated(&mut rng, 0.0, 1e-9, 5.0, 6.0);
        assert_eq!(x, 5.0);
    }

    #[test]
    fn tail_fractions_are_gaussian() {
        let normal = StandardNormal::new();
        let mut rng = seeded(15);
        let n = 200_000usize;
        let beyond_2: usize = (0..n).filter(|_| normal.sample(&mut rng).abs() > 2.0).count();
        let frac = beyond_2 as f64 / n as f64;
        // P(|Z| > 2) = 0.0455
        assert!((frac - 0.0455).abs() < 0.005, "tail fraction {frac}");
    }

    #[test]
    fn erf_known_values() {
        assert!((erf(0.0)).abs() < 1.5e-7);
        assert!((erf(1.0) - 0.842_700_79).abs() < 1e-6);
        assert!((erf(-1.0) + 0.842_700_79).abs() < 1e-6);
        assert!((erf(3.0) - 0.999_977_91).abs() < 1e-6);
    }

    #[test]
    fn cdf_symmetry_and_median() {
        assert!((normal_cdf(0.0) - 0.5).abs() < 1.5e-7);
        for &x in &[0.3, 1.1, 2.7] {
            assert!((normal_cdf(x) + normal_cdf(-x) - 1.0).abs() < 1e-7);
        }
    }

    #[test]
    fn fill_writes_every_slot() {
        let normal = StandardNormal::new();
        let mut rng = seeded(16);
        let mut buf = [0.0f64; 33];
        normal.fill(&mut rng, &mut buf);
        assert!(buf.iter().all(|v| v.is_finite()));
        // Odds of any slot being exactly 0.0 are negligible.
        assert!(buf.iter().all(|&v| v != 0.0));
    }
}
