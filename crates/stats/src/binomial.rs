//! Binomial proportion confidence bounds for Monte-Carlo yield
//! estimation.
//!
//! After sign-off, a designer wants "yield ≥ Y with confidence C" from
//! `k` failures in `n` MC samples. The Clopper–Pearson interval is the
//! standard conservative choice; it is computed here through the
//! regularized incomplete beta function.

/// Regularized incomplete beta function `I_x(a, b)` via the continued
/// fraction expansion (Lentz's algorithm), accurate to ~1e-10 for the
/// moderate `a`, `b` used in yield analysis.
///
/// # Panics
///
/// Panics if `a <= 0`, `b <= 0` or `x` is outside `[0, 1]`.
pub fn regularized_incomplete_beta(a: f64, b: f64, x: f64) -> f64 {
    assert!(a > 0.0 && b > 0.0, "shape parameters must be positive");
    assert!((0.0..=1.0).contains(&x), "x must be in [0, 1]");
    if x == 0.0 {
        return 0.0;
    }
    if x == 1.0 {
        return 1.0;
    }
    // Use the symmetry relation for faster convergence.
    if x > (a + 1.0) / (a + b + 2.0) {
        return 1.0 - regularized_incomplete_beta(b, a, 1.0 - x);
    }
    let ln_front = a * x.ln() + b * (1.0 - x).ln() - ln_beta(a, b);
    let front = ln_front.exp() / a;

    // Lentz continued fraction.
    let mut f = 1.0f64;
    let mut c = 1.0f64;
    let mut d = 0.0f64;
    const TINY: f64 = 1e-300;
    for m in 0..200 {
        let m_f = m as f64;
        let numerator = if m == 0 {
            1.0
        } else if m % 2 == 0 {
            let k = m_f / 2.0;
            k * (b - k) * x / ((a + 2.0 * k - 1.0) * (a + 2.0 * k))
        } else {
            let k = (m_f - 1.0) / 2.0;
            -(a + k) * (a + b + k) * x / ((a + 2.0 * k) * (a + 2.0 * k + 1.0))
        };
        d = 1.0 + numerator * d;
        if d.abs() < TINY {
            d = TINY;
        }
        d = 1.0 / d;
        c = 1.0 + numerator / c;
        if c.abs() < TINY {
            c = TINY;
        }
        let delta = c * d;
        f *= delta;
        if (delta - 1.0).abs() < 1e-12 {
            break;
        }
    }
    (front * (f - 1.0)).clamp(0.0, 1.0)
}

/// `ln B(a, b)` via Stirling-series `ln Γ`.
fn ln_beta(a: f64, b: f64) -> f64 {
    ln_gamma(a) + ln_gamma(b) - ln_gamma(a + b)
}

/// Lanczos approximation of `ln Γ(x)` (g = 7, n = 9), |err| < 1e-10.
pub fn ln_gamma(x: f64) -> f64 {
    const COEFFS: [f64; 9] = [
        0.999_999_999_999_809_9,
        676.520_368_121_885_1,
        -1_259.139_216_722_402_8,
        771.323_428_777_653_1,
        -176.615_029_162_140_6,
        12.507_343_278_686_905,
        -0.138_571_095_265_720_12,
        9.984_369_578_019_572e-6,
        1.505_632_735_149_311_6e-7,
    ];
    if x < 0.5 {
        // Reflection formula.
        let pi = std::f64::consts::PI;
        return (pi / (pi * x).sin()).ln() - ln_gamma(1.0 - x);
    }
    let x = x - 1.0;
    let mut acc = COEFFS[0];
    for (i, &c) in COEFFS.iter().enumerate().skip(1) {
        acc += c / (x + i as f64);
    }
    let t = x + 7.5;
    0.5 * (2.0 * std::f64::consts::PI).ln() + (x + 0.5) * t.ln() - t + acc.ln()
}

/// Two-sided Clopper–Pearson confidence interval for a binomial
/// proportion: `k` successes in `n` trials at confidence `1 − alpha`.
///
/// Returns `(lower, upper)` bounds on the true proportion.
///
/// # Panics
///
/// Panics if `k > n`, `n == 0`, or `alpha` is outside `(0, 1)`.
pub fn clopper_pearson(k: u64, n: u64, alpha: f64) -> (f64, f64) {
    assert!(n > 0, "need at least one trial");
    assert!(k <= n, "successes cannot exceed trials");
    assert!(alpha > 0.0 && alpha < 1.0, "alpha must be in (0, 1)");
    let (kf, nf) = (k as f64, n as f64);
    let lower = if k == 0 {
        0.0
    } else {
        // Inverse of I_p(k, n-k+1) = 1 - alpha/2, found by bisection.
        invert_beta_cdf(kf, nf - kf + 1.0, alpha / 2.0)
    };
    let upper = if k == n { 1.0 } else { invert_beta_cdf(kf + 1.0, nf - kf, 1.0 - alpha / 2.0) };
    (lower, upper)
}

/// Solves `I_p(a, b) = target` for `p` by bisection.
fn invert_beta_cdf(a: f64, b: f64, target: f64) -> f64 {
    let mut lo = 0.0;
    let mut hi = 1.0;
    for _ in 0..80 {
        let mid = 0.5 * (lo + hi);
        if regularized_incomplete_beta(a, b, mid) < target {
            lo = mid;
        } else {
            hi = mid;
        }
    }
    0.5 * (lo + hi)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ln_gamma_known_values() {
        // Γ(1) = Γ(2) = 1, Γ(5) = 24, Γ(0.5) = √π.
        assert!(ln_gamma(1.0).abs() < 1e-9);
        assert!(ln_gamma(2.0).abs() < 1e-9);
        assert!((ln_gamma(5.0) - 24.0f64.ln()).abs() < 1e-9);
        assert!((ln_gamma(0.5) - std::f64::consts::PI.sqrt().ln()).abs() < 1e-9);
    }

    #[test]
    fn incomplete_beta_symmetric_uniform() {
        // I_x(1, 1) = x.
        for &x in &[0.1, 0.35, 0.8] {
            assert!((regularized_incomplete_beta(1.0, 1.0, x) - x).abs() < 1e-9);
        }
    }

    #[test]
    fn incomplete_beta_known_value() {
        // I_0.5(2, 2) = 0.5 by symmetry.
        assert!((regularized_incomplete_beta(2.0, 2.0, 0.5) - 0.5).abs() < 1e-9);
        // I_x(2, 1) = x².
        assert!((regularized_incomplete_beta(2.0, 1.0, 0.3) - 0.09).abs() < 1e-9);
    }

    #[test]
    fn clopper_pearson_contains_true_proportion() {
        // 95 % CI for 950 passes in 1000 trials must contain 0.95.
        let (lo, hi) = clopper_pearson(950, 1000, 0.05);
        assert!(lo < 0.95 && 0.95 < hi, "interval [{lo}, {hi}]");
        assert!(lo > 0.93 && hi < 0.97, "interval too wide: [{lo}, {hi}]");
    }

    #[test]
    fn zero_failures_give_exact_rule_of_three() {
        // Upper bound on failure rate with 0 failures in n trials at 95 %
        // one-sided-ish: Clopper-Pearson upper ≈ 3.7/n for alpha = 0.05.
        let (lo, hi) = clopper_pearson(0, 1000, 0.05);
        assert_eq!(lo, 0.0);
        assert!((hi - 3.7e-3).abs() < 5e-4, "upper {hi}");
    }

    #[test]
    fn all_successes_bound_is_one() {
        let (lo, hi) = clopper_pearson(100, 100, 0.05);
        assert_eq!(hi, 1.0);
        assert!(lo > 0.96, "lower {lo}");
    }

    #[test]
    fn interval_narrows_with_more_trials() {
        let (lo1, hi1) = clopper_pearson(90, 100, 0.05);
        let (lo2, hi2) = clopper_pearson(900, 1000, 0.05);
        assert!(hi2 - lo2 < hi1 - lo1);
    }

    #[test]
    #[should_panic(expected = "successes cannot exceed trials")]
    fn k_above_n_panics() {
        clopper_pearson(5, 4, 0.05);
    }
}
