//! Covariance and Pearson correlation.
//!
//! The MC-reordering method of the paper (Eq. 9) ranks mismatch samples by a
//! correlation-weighted score: for each corner, the Pearson correlation
//! between every mismatch-vector component and the aggregate performance
//! degradation is computed over the `N'` pre-sampled points, then used to
//! predict which of the remaining samples are most likely to fail.

/// Sample covariance between two equally long slices (population form).
///
/// Returns `0.0` when fewer than two paired observations exist.
///
/// # Panics
///
/// Panics if the slices have different lengths.
pub fn covariance(xs: &[f64], ys: &[f64]) -> f64 {
    assert_eq!(xs.len(), ys.len(), "covariance over mismatched lengths");
    let n = xs.len();
    if n < 2 {
        return 0.0;
    }
    let mx = crate::descriptive::mean(xs);
    let my = crate::descriptive::mean(ys);
    xs.iter().zip(ys).map(|(&x, &y)| (x - mx) * (y - my)).sum::<f64>() / n as f64
}

/// Pearson correlation coefficient between two equally long slices.
///
/// Returns `0.0` when either input is (numerically) constant — the
/// correlation is undefined there, and `0.0` is the conservative choice for
/// the reordering score (no predictive weight).
///
/// # Panics
///
/// Panics if the slices have different lengths.
///
/// # Example
///
/// ```
/// let x = [1.0, 2.0, 3.0];
/// let y = [2.0, 4.0, 6.0];
/// assert!((glova_stats::correlation::pearson(&x, &y) - 1.0).abs() < 1e-12);
/// ```
pub fn pearson(xs: &[f64], ys: &[f64]) -> f64 {
    assert_eq!(xs.len(), ys.len(), "pearson over mismatched lengths");
    let n = xs.len();
    if n < 2 {
        return 0.0;
    }
    let mx = crate::descriptive::mean(xs);
    let my = crate::descriptive::mean(ys);
    let mut sxy = 0.0;
    let mut sxx = 0.0;
    let mut syy = 0.0;
    for (&x, &y) in xs.iter().zip(ys) {
        let dx = x - mx;
        let dy = y - my;
        sxy += dx * dy;
        sxx += dx * dx;
        syy += dy * dy;
    }
    let denom = (sxx * syy).sqrt();
    if denom <= f64::EPSILON * n as f64 {
        0.0
    } else {
        (sxy / denom).clamp(-1.0, 1.0)
    }
}

/// Pearson correlation of each *column* of `rows` against `ys`.
///
/// `rows` is a set of observations, each a feature vector of identical
/// length `d`; the result has length `d`. This is the `ρ_j` vector of the
/// paper's Eq. 9, where the rows are sampled mismatch vectors and `ys` the
/// per-sample aggregate degradation.
///
/// # Panics
///
/// Panics if `rows.len() != ys.len()` or the rows have inconsistent widths.
pub fn column_pearson(rows: &[Vec<f64>], ys: &[f64]) -> Vec<f64> {
    assert_eq!(rows.len(), ys.len(), "row/target count mismatch");
    if rows.is_empty() {
        return Vec::new();
    }
    let d = rows[0].len();
    assert!(rows.iter().all(|r| r.len() == d), "ragged feature rows");
    (0..d)
        .map(|j| {
            let column: Vec<f64> = rows.iter().map(|r| r[j]).collect();
            pearson(&column, ys)
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn perfect_positive_and_negative() {
        let x = [1.0, 2.0, 3.0, 4.0];
        let y_pos: Vec<f64> = x.iter().map(|v| 3.0 * v + 1.0).collect();
        let y_neg: Vec<f64> = x.iter().map(|v| -2.0 * v + 7.0).collect();
        assert!((pearson(&x, &y_pos) - 1.0).abs() < 1e-12);
        assert!((pearson(&x, &y_neg) + 1.0).abs() < 1e-12);
    }

    #[test]
    fn constant_input_yields_zero() {
        let x = [2.0, 2.0, 2.0];
        let y = [1.0, 5.0, 9.0];
        assert_eq!(pearson(&x, &y), 0.0);
        assert_eq!(pearson(&y, &x), 0.0);
    }

    #[test]
    fn short_inputs_yield_zero() {
        assert_eq!(pearson(&[1.0], &[2.0]), 0.0);
        assert_eq!(pearson(&[], &[]), 0.0);
        assert_eq!(covariance(&[1.0], &[2.0]), 0.0);
    }

    #[test]
    fn covariance_known_value() {
        let x = [1.0, 2.0, 3.0];
        let y = [4.0, 6.0, 8.0];
        // population covariance: E[(x-2)(y-6)] = (2 + 0 + 2)/3
        assert!((covariance(&x, &y) - 4.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn column_pearson_identifies_driving_column() {
        // Column 0 drives y; column 1 is constant noise-free irrelevance.
        let rows: Vec<Vec<f64>> = (0..20).map(|i| vec![i as f64, 1.0, -(i as f64)]).collect();
        let ys: Vec<f64> = (0..20).map(|i| 2.0 * i as f64).collect();
        let rho = column_pearson(&rows, &ys);
        assert!((rho[0] - 1.0).abs() < 1e-12);
        assert_eq!(rho[1], 0.0);
        assert!((rho[2] + 1.0).abs() < 1e-12);
    }

    #[test]
    fn column_pearson_empty() {
        assert!(column_pearson(&[], &[]).is_empty());
    }

    #[test]
    #[should_panic(expected = "mismatched lengths")]
    fn pearson_length_mismatch_panics() {
        pearson(&[1.0, 2.0], &[1.0]);
    }

    proptest! {
        #[test]
        fn prop_pearson_in_unit_interval(
            pairs in proptest::collection::vec((-1e3f64..1e3, -1e3f64..1e3), 2..100)
        ) {
            let xs: Vec<f64> = pairs.iter().map(|p| p.0).collect();
            let ys: Vec<f64> = pairs.iter().map(|p| p.1).collect();
            let r = pearson(&xs, &ys);
            prop_assert!((-1.0..=1.0).contains(&r));
        }

        #[test]
        fn prop_pearson_symmetric(
            pairs in proptest::collection::vec((-1e3f64..1e3, -1e3f64..1e3), 2..50)
        ) {
            let xs: Vec<f64> = pairs.iter().map(|p| p.0).collect();
            let ys: Vec<f64> = pairs.iter().map(|p| p.1).collect();
            prop_assert!((pearson(&xs, &ys) - pearson(&ys, &xs)).abs() < 1e-12);
        }

        #[test]
        fn prop_pearson_shift_scale_invariant(
            pairs in proptest::collection::vec((-1e2f64..1e2, -1e2f64..1e2), 3..50),
            a in 0.1f64..10.0,
            b in -5.0f64..5.0,
        ) {
            let xs: Vec<f64> = pairs.iter().map(|p| p.0).collect();
            let ys: Vec<f64> = pairs.iter().map(|p| p.1).collect();
            let xs2: Vec<f64> = xs.iter().map(|v| a * v + b).collect();
            let r1 = pearson(&xs, &ys);
            let r2 = pearson(&xs2, &ys);
            prop_assert!((r1 - r2).abs() < 1e-6);
        }
    }
}
