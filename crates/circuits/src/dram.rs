//! Offset-cancellation sense amplifier (OCSA) + subhole (SH) in a DRAM
//! core — paper §VI.A, sensing scheme after Kim et al., TVLSI 2019
//! (ref \[27\]), 6F² open-bitline architecture with 2K wordlines.
//!
//! 12 design parameters: six widths, six lengths. The first three
//! transistors belong to the OCSA (widths limited to `[0.28, 1.028] µm` by
//! the cell pitch), the last three to the subhole drivers
//! (`[5, 15] µm`). Metrics and targets:
//!
//! | metric                       | target    |
//! |------------------------------|-----------|
//! | low-data sensing voltage     | ≥ 85 mV   |
//! | high-data sensing voltage    | ≥ 85 mV   |
//! | energy per 1-bit sensing     | ≤ 30 fJ   |
//!
//! The model captures the mechanisms that make this the paper's hardest
//! testcase:
//!
//! - charge-sharing signal `V_sig = (V_DD/2)·C_S/(C_S+C_BL)` is *below*
//!   the 85 mV target on its own; a boosted reference (subhole precharge
//!   strength) must add margin — at an energy cost;
//! - the sense-amp trip-point asymmetry (NMOS vs PMOS latch strength)
//!   moves ΔV_D0 and ΔV_D1 in **opposite** directions — the two
//!   conflicting metrics called out in §VI.B;
//! - OCSA devices are pitch-limited and tiny, so their raw offset is tens
//!   of millivolts; the offset-cancellation switch removes a size-dependent
//!   fraction of it but adds sampling (kT/C) noise;
//! - bitline leakage droop grows exponentially at hot/fast corners.

use crate::physics::{self, MismatchView, SizedTransistor};
use crate::spec::{DesignSpec, MetricSpec};
use crate::Circuit;
use glova_spice::model::MosModel;
use glova_variation::corner::PvtCorner;
use glova_variation::mismatch::{DeviceSpec, MismatchDomain, PelgromModel};
use glova_variation::sampler::MismatchVector;

/// The DRAM-core OCSA + SH sizing problem.
#[derive(Debug, Clone)]
pub struct DramCoreSense {
    spec: DesignSpec,
}

/// Parameter roles (width/length blocks).
const ROLE_SA_N: usize = 0; // OCSA NMOS latch pair
const ROLE_SA_P: usize = 1; // OCSA PMOS latch pair
const ROLE_OC: usize = 2; // offset-cancellation switches
const ROLE_DRV: usize = 3; // SH write-back driver
const ROLE_PRE: usize = 4; // SH precharge / boost driver
const ROLE_EQ: usize = 5; // SH equalizer

/// Mismatch layout: sa_na sa_nb sa_pa sa_pb oc_a oc_b drv pre eq
/// (9 transistors) then bitline capacitors bl_a bl_b.
const N_TRANSISTORS: usize = 9;

/// DRAM cell storage capacitance, farads.
const C_CELL: f64 = 10e-15;
/// Bitline capacitance (2K wordlines, open bitline), farads.
const C_BITLINE: f64 = 85e-15;
/// Sense window during which leakage droops the bitline, seconds.
const T_SENSE: f64 = 1.5e-9;
/// Boost coefficient: fraction of the regulated boost reference added per
/// unit precharge-strength.
const K_BOOST: f64 = 0.08;
/// Regulated boost-generator reference voltage (supply-independent), volts.
const V_BOOST_REF: f64 = 0.9;
/// Trip-point sensitivity to latch-strength log-ratio, volts.
const K_TRIP: f64 = 0.025;
/// Restore-energy efficiency factor.
const K_RESTORE: f64 = 0.30;
/// Driver/boost wiring energy per µm of SH width, farads (C·V² at V_DD).
const C_SH_PER_UM: f64 = 0.3e-15;

const W_OCSA_BOUNDS: (f64, f64) = (0.28, 1.028);
const W_SH_BOUNDS: (f64, f64) = (5.0, 15.0);
const L_BOUNDS: (f64, f64) = (0.03, 0.06);

impl DramCoreSense {
    /// Creates the testcase with the paper's constraint targets.
    pub fn new() -> Self {
        Self {
            spec: DesignSpec::new(vec![
                MetricSpec::above("dv0_mv", 85.0),
                MetricSpec::above("dv1_mv", 85.0),
                MetricSpec::below("energy_fj", 30.0),
            ]),
        }
    }

    /// A hand-calibrated feasible design (normalized).
    pub fn reference_design(&self) -> Vec<f64> {
        normalize(&[
            0.35, 0.875, 1.0, 6.0, 13.0, 6.0, // widths µm (N:P latch ≈ 1:2.5)
            0.05, 0.05, 0.04, 0.04, 0.03, 0.04, // lengths µm
        ])
    }

    fn unpack(&self, x_norm: &[f64]) -> ([f64; 6], [f64; 6]) {
        assert_eq!(x_norm.len(), self.dim(), "design vector dimension mismatch");
        let p = self.denormalize(x_norm);
        ([p[0], p[1], p[2], p[3], p[4], p[5]], [p[6], p[7], p[8], p[9], p[10], p[11]])
    }
}

impl Default for DramCoreSense {
    fn default() -> Self {
        Self::new()
    }
}

fn bounds() -> Vec<(f64, f64)> {
    vec![
        W_OCSA_BOUNDS,
        W_OCSA_BOUNDS,
        W_OCSA_BOUNDS,
        W_SH_BOUNDS,
        W_SH_BOUNDS,
        W_SH_BOUNDS,
        L_BOUNDS,
        L_BOUNDS,
        L_BOUNDS,
        L_BOUNDS,
        L_BOUNDS,
        L_BOUNDS,
    ]
}

fn normalize(phys: &[f64]) -> Vec<f64> {
    bounds()
        .iter()
        .zip(phys)
        .map(|(&(lo, hi), &v)| ((v - lo) / (hi - lo)).clamp(0.0, 1.0))
        .collect()
}

impl Circuit for DramCoreSense {
    fn name(&self) -> &str {
        "OCSA+SH"
    }

    fn dim(&self) -> usize {
        12
    }

    fn bounds(&self) -> Vec<(f64, f64)> {
        bounds()
    }

    fn parameter_names(&self) -> Vec<String> {
        vec![
            "w_sa_n_um".into(),
            "w_sa_p_um".into(),
            "w_oc_um".into(),
            "w_drv_um".into(),
            "w_pre_um".into(),
            "w_eq_um".into(),
            "l_sa_n_um".into(),
            "l_sa_p_um".into(),
            "l_oc_um".into(),
            "l_drv_um".into(),
            "l_pre_um".into(),
            "l_eq_um".into(),
        ]
    }

    fn spec(&self) -> &DesignSpec {
        &self.spec
    }

    fn mismatch_domain(&self, x_norm: &[f64]) -> MismatchDomain {
        let (w, l) = self.unpack(x_norm);
        MismatchDomain::new(
            vec![
                DeviceSpec::nmos("sa_na", w[ROLE_SA_N], l[ROLE_SA_N]),
                DeviceSpec::nmos("sa_nb", w[ROLE_SA_N], l[ROLE_SA_N]),
                DeviceSpec::pmos("sa_pa", w[ROLE_SA_P], l[ROLE_SA_P]),
                DeviceSpec::pmos("sa_pb", w[ROLE_SA_P], l[ROLE_SA_P]),
                DeviceSpec::nmos("oc_a", w[ROLE_OC], l[ROLE_OC]),
                DeviceSpec::nmos("oc_b", w[ROLE_OC], l[ROLE_OC]),
                DeviceSpec::nmos("drv", w[ROLE_DRV], l[ROLE_DRV]),
                DeviceSpec::pmos("pre", w[ROLE_PRE], l[ROLE_PRE]),
                DeviceSpec::nmos("eq", w[ROLE_EQ], l[ROLE_EQ]),
                DeviceSpec::capacitor("bl_a", C_BITLINE),
                DeviceSpec::capacitor("bl_b", C_BITLINE),
            ],
            PelgromModel::cmos28(),
        )
    }

    fn evaluate(&self, x_norm: &[f64], corner: &PvtCorner, mismatch: &MismatchVector) -> Vec<f64> {
        let (w, l) = self.unpack(x_norm);
        let h = MismatchView::new(mismatch, N_TRANSISTORS);
        let vdd = corner.vdd;
        let (sa_na, sa_nb, sa_pa, sa_pb, oc_a, oc_b, drv, pre, eq) = (0, 1, 2, 3, 4, 5, 6, 7, 8);

        // --- charge-sharing signal -----------------------------------------
        let cbl_a = C_BITLINE * (1.0 + h.cap(0));
        let cbl_b = C_BITLINE * (1.0 + h.cap(1));
        let cbl = 0.5 * (cbl_a + cbl_b);
        let v_sig = 0.5 * vdd * C_CELL / (C_CELL + cbl);

        // --- boosted reference from the SH precharge driver ----------------
        let pre_t = SizedTransistor::new(
            MosModel::pmos_28nm(),
            corner,
            w[ROLE_PRE],
            l[ROLE_PRE],
            h.vth(pre),
            h.beta(pre),
        );
        // Boost strength follows the precharge drive normalized to mid-range.
        // The boost generator runs from a regulated reference, so the level
        // tracks drive strength but not the raw supply.
        let drive_norm = pre_t.beta() / (MosModel::pmos_28nm().kp * 10.0 / 0.045);
        let v_boost = K_BOOST * V_BOOST_REF * drive_norm.min(2.0);

        // --- sense-amp trip asymmetry ---------------------------------------
        let san = SizedTransistor::new(
            MosModel::nmos_28nm(),
            corner,
            w[ROLE_SA_N],
            l[ROLE_SA_N],
            0.5 * (h.vth(sa_na) + h.vth(sa_nb)),
            0.5 * (h.beta(sa_na) + h.beta(sa_nb)),
        );
        let sap = SizedTransistor::new(
            MosModel::pmos_28nm(),
            corner,
            w[ROLE_SA_P],
            l[ROLE_SA_P],
            0.5 * (h.vth(sa_pa) + h.vth(sa_pb)),
            0.5 * (h.beta(sa_pa) + h.beta(sa_pb)),
        );
        // Strength ratio folds in threshold skews (corner SF/FS shifts it).
        let strength_n = san.beta() * (vdd * 0.5 - san.vth()).max(0.05);
        let strength_p = sap.beta() * (vdd * 0.5 - sap.vth()).max(0.05);
        let v_trip = K_TRIP * (strength_n / strength_p.max(1e-12)).ln();

        // --- residual offset after cancellation -----------------------------
        let raw_offset = h.vth_pair_diff(sa_na, sa_nb)
            + (strength_p / strength_n.max(1e-12)).min(2.0) * h.vth_pair_diff(sa_pa, sa_pb)
            + 0.1 * vdd * (h.cap(0) - h.cap(1));
        let oc_area = w[ROLE_OC] * l[ROLE_OC];
        let cancel_eff = w[ROLE_OC] / (w[ROLE_OC] + 0.2);
        let kt = physics::kt(corner);
        // Sampling noise of the cancellation caps (effective C ∝ OC area).
        let c_sample = (physics::COX_PER_UM2 * oc_area * 40.0).max(1e-16);
        let v_sample = (kt / c_sample).sqrt();
        let oc_switch_err = 0.10 * (h.vth(oc_a) - h.vth(oc_b)).abs();
        let v_os = raw_offset.abs() * (1.0 - cancel_eff) + v_sample + oc_switch_err;

        // --- leakage droop ---------------------------------------------------
        let eq_t = SizedTransistor::new(
            MosModel::nmos_28nm(),
            corner,
            w[ROLE_EQ],
            l[ROLE_EQ],
            h.vth(eq),
            h.beta(eq),
        );
        let drv_t = SizedTransistor::new(
            MosModel::nmos_28nm(),
            corner,
            w[ROLE_DRV],
            l[ROLE_DRV],
            h.vth(drv),
            h.beta(drv),
        );
        let i_leak = eq_t.leakage(vdd, corner) + drv_t.leakage(vdd, corner);
        let v_droop = i_leak * T_SENSE / cbl;

        // --- sensing margins -------------------------------------------------
        let margin_common = v_sig + v_boost - v_os - v_droop;
        let dv0 = margin_common + v_trip;
        let dv1 = margin_common - v_trip;

        // --- energy per 1-bit sensing ---------------------------------------
        let sh_width_total = w[ROLE_DRV] + w[ROLE_PRE] + w[ROLE_EQ];
        let e_restore = K_RESTORE * (cbl + C_CELL) * vdd * 0.5 * vdd;
        let e_boost = v_boost * vdd * (cbl + C_CELL) * 0.6;
        let e_drivers = C_SH_PER_UM * sh_width_total * vdd * vdd;
        let e_sa = (san.cgg() + sap.cgg()) * 2.0 * vdd * vdd;
        let e_leak = i_leak * vdd * T_SENSE;
        let energy = e_restore + e_boost + e_drivers + e_sa + e_leak;

        vec![dv0 * 1e3, dv1 * 1e3, energy * 1e15]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use glova_variation::corner::{CornerSet, ProcessCorner};
    use proptest::prelude::*;

    fn nominal(c: &DramCoreSense, x: &[f64]) -> MismatchVector {
        MismatchVector::nominal(c.mismatch_domain(x).dim())
    }

    #[test]
    fn reference_design_feasible_at_all_corners() {
        let dram = DramCoreSense::new();
        let x = dram.reference_design();
        let h = nominal(&dram, &x);
        for corner in CornerSet::industrial_30().iter() {
            let metrics = dram.evaluate(&x, corner, &h);
            assert!(
                dram.spec().satisfied(&metrics),
                "reference infeasible at {corner}: {metrics:?}"
            );
        }
    }

    #[test]
    fn charge_sharing_alone_misses_target() {
        // Without boost (weakest precharge), margins must fall below 85 mV —
        // the mechanism forcing the boost/energy tradeoff.
        let dram = DramCoreSense::new();
        let mut x = dram.reference_design();
        x[4] = 0.0; // weakest W_pre
        x[10] = 1.0; // longest L_pre
        let metrics = dram.evaluate(&x, &PvtCorner::typical(), &nominal(&dram, &x));
        assert!(
            metrics[0] < 85.0 || metrics[1] < 85.0,
            "weak boost should miss sensing targets: {metrics:?}"
        );
    }

    #[test]
    fn max_drivers_violate_energy() {
        let dram = DramCoreSense::new();
        let mut x = dram.reference_design();
        x[3] = 1.0;
        x[4] = 1.0;
        x[5] = 1.0;
        let metrics = dram.evaluate(&x, &PvtCorner::typical(), &nominal(&dram, &x));
        assert!(metrics[2] > 30.0, "max SH widths should blow the energy budget: {metrics:?}");
    }

    #[test]
    fn trip_asymmetry_trades_dv0_against_dv1() {
        let dram = DramCoreSense::new();
        let x = dram.reference_design();
        let h = nominal(&dram, &x);
        let base = dram.evaluate(&x, &PvtCorner::typical(), &h);
        let mut x_n_strong = x.clone();
        x_n_strong[0] = 1.0; // strongest NMOS latch
        x_n_strong[1] = 0.0; // weakest PMOS latch
        let skewed =
            dram.evaluate(&x_n_strong, &PvtCorner::typical(), &nominal(&dram, &x_n_strong));
        assert!(skewed[0] > base[0], "stronger N latch should raise dv0");
        assert!(skewed[1] < base[1], "stronger N latch should lower dv1");
    }

    #[test]
    fn sf_fs_corners_skew_margins_oppositely() {
        let dram = DramCoreSense::new();
        let x = dram.reference_design();
        let h = nominal(&dram, &x);
        let sf = PvtCorner { process: ProcessCorner::Sf, ..PvtCorner::typical() };
        let fs = PvtCorner { process: ProcessCorner::Fs, ..PvtCorner::typical() };
        let m_sf = dram.evaluate(&x, &sf, &h);
        let m_fs = dram.evaluate(&x, &fs, &h);
        // SF = slow N / fast P → trip drops → dv0 falls, dv1 rises; FS opposite.
        assert!(m_sf[0] < m_fs[0], "dv0: SF {} vs FS {}", m_sf[0], m_fs[0]);
        assert!(m_sf[1] > m_fs[1], "dv1: SF {} vs FS {}", m_sf[1], m_fs[1]);
    }

    #[test]
    fn hot_fast_corner_droops_margin() {
        let dram = DramCoreSense::new();
        let x = dram.reference_design();
        let h = nominal(&dram, &x);
        let tt = dram.evaluate(&x, &PvtCorner::typical(), &h);
        let hot = PvtCorner { process: ProcessCorner::Ff, temp_c: 80.0, ..PvtCorner::typical() };
        let m_hot = dram.evaluate(&x, &hot, &h);
        assert!(m_hot[0] < tt[0], "leakage droop must reduce dv0 when hot/fast");
    }

    #[test]
    fn sa_offset_reduces_both_margins() {
        let dram = DramCoreSense::new();
        let x = dram.reference_design();
        let dim = dram.mismatch_domain(&x).dim();
        let mut values = vec![0.0; dim];
        values[0] = 0.03; // 30 mV on one SA NMOS — pitch-limited devices are tiny
        let base = dram.evaluate(&x, &PvtCorner::typical(), &MismatchVector::nominal(dim));
        let off = dram.evaluate(&x, &PvtCorner::typical(), &MismatchVector::from_values(values));
        assert!(off[0] < base[0] && off[1] < base[1], "offset must hit both margins");
    }

    #[test]
    fn bigger_oc_switch_cancels_more_offset() {
        let dram = DramCoreSense::new();
        let mut x_small = dram.reference_design();
        x_small[2] = 0.0;
        let mut x_big = dram.reference_design();
        x_big[2] = 1.0;
        let dim = dram.mismatch_domain(&x_small).dim();
        let mut values = vec![0.0; dim];
        values[0] = 0.03;
        let h = MismatchVector::from_values(values);
        let m_small = dram.evaluate(&x_small, &PvtCorner::typical(), &h);
        let m_big = dram.evaluate(&x_big, &PvtCorner::typical(), &h);
        assert!(m_big[0] > m_small[0], "larger OC switch must recover margin");
    }

    proptest! {
        #[test]
        fn prop_metrics_finite(
            x in proptest::collection::vec(0.0f64..1.0, 12),
            corner_idx in 0usize..30,
        ) {
            let dram = DramCoreSense::new();
            let corner = CornerSet::industrial_30().corner(corner_idx);
            let h = MismatchVector::nominal(dram.mismatch_domain(&x).dim());
            let metrics = dram.evaluate(&x, &corner, &h);
            for m in &metrics {
                prop_assert!(m.is_finite());
            }
            // Energy is always positive; margins may legitimately go negative.
            prop_assert!(metrics[2] > 0.0);
        }
    }
}
