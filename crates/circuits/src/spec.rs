//! Constraint specifications, normalized metrics and the reward function.
//!
//! The paper consolidates multiple objectives into one reward (Eq. 4–5):
//!
//! ```text
//! f_i = (c_i − F_i) / (c_i + F_i)        (normalized metric, ≤ targets)
//! r'  = Σ_i min(f_i, 0)
//! r   = 0.2        if all constraints satisfied, else r'
//! ```
//!
//! Metrics that must be *maximized* (the DRAM sensing voltages) are handled
//! with an orientation flag rather than sign-flipping the raw values: for a
//! `≥` target the normalized metric is `(F_i − c_i)/(F_i + c_i)`. Both
//! orientations give `f_i > 0 ⇔ satisfied` and keep `f_i` scale-free, which
//! is what the reward and the µ-σ machinery rely on. This matches the
//! formulation GLOVA inherits from RobustAnalog/PVTSizing (refs \[8\], \[9\]).

/// Constraint orientation for one metric.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Goal {
    /// Metric must satisfy `F ≤ limit` (power, delay, noise, energy).
    Below,
    /// Metric must satisfy `F ≥ limit` (sensing voltages).
    Above,
}

/// One performance metric and its constraint.
#[derive(Debug, Clone, PartialEq)]
pub struct MetricSpec {
    /// Metric name (units included, e.g. `"power_uw"`).
    pub name: String,
    /// Constraint orientation.
    pub goal: Goal,
    /// Constraint target `c_i` in the metric's raw units.
    pub limit: f64,
}

impl MetricSpec {
    /// A `F ≤ limit` metric.
    pub fn below(name: impl Into<String>, limit: f64) -> Self {
        Self { name: name.into(), goal: Goal::Below, limit }
    }

    /// A `F ≥ limit` metric.
    pub fn above(name: impl Into<String>, limit: f64) -> Self {
        Self { name: name.into(), goal: Goal::Above, limit }
    }

    /// Whether `value` satisfies this constraint.
    pub fn satisfied(&self, value: f64) -> bool {
        match self.goal {
            Goal::Below => value <= self.limit,
            Goal::Above => value >= self.limit,
        }
    }

    /// Normalized metric `f_i` (paper Eq. 5); positive iff satisfied.
    ///
    /// Values and limits are assumed positive in raw units (all testcase
    /// metrics are); the denominator is guarded to stay positive.
    pub fn normalized(&self, value: f64) -> f64 {
        let denom = (self.limit + value).abs().max(1e-30);
        match self.goal {
            Goal::Below => (self.limit - value) / denom,
            Goal::Above => (value - self.limit) / denom,
        }
    }

    /// Scale-free violation margin: `0` when satisfied, positive and
    /// growing with violation severity otherwise. Used by the t-SCORE
    /// corner reordering (Eq. 8, normalized per `DESIGN.md` §5).
    pub fn violation(&self, value: f64) -> f64 {
        let rel = (value - self.limit) / self.limit.abs().max(1e-30);
        match self.goal {
            Goal::Below => rel.max(0.0),
            Goal::Above => (-rel).max(0.0),
        }
    }

    /// Signed degradation: larger = worse, zero at the constraint boundary.
    /// Used as the `g` aggregate in the h-SCORE MC reordering (Eq. 9–10,
    /// orientation per `DESIGN.md` §5).
    pub fn degradation(&self, value: f64) -> f64 {
        let rel = (value - self.limit) / self.limit.abs().max(1e-30);
        match self.goal {
            Goal::Below => rel,
            Goal::Above => -rel,
        }
    }

    /// The conservative µ-σ bound of Eq. 7, oriented so that *larger is
    /// worse*: `E[F] + β₂σ[F]` for `≤` metrics, `E[F] − β₂σ[F]` for `≥`
    /// metrics. Passing requires the bound to still satisfy the constraint.
    pub fn mu_sigma_bound(&self, mean: f64, std_dev: f64, beta2: f64) -> f64 {
        match self.goal {
            Goal::Below => mean + beta2 * std_dev,
            Goal::Above => mean - beta2 * std_dev,
        }
    }

    /// Whether the µ-σ bound passes the constraint (Eq. 7).
    pub fn mu_sigma_pass(&self, mean: f64, std_dev: f64, beta2: f64) -> bool {
        self.satisfied(self.mu_sigma_bound(mean, std_dev, beta2))
    }

    /// The same metric with its limit multiplied by `factor` — the
    /// per-metric building block of a goal-conditioned spec family.
    ///
    /// Whether a factor tightens or relaxes depends on the orientation:
    /// for a [`Goal::Below`] metric `factor < 1` tightens, for a
    /// [`Goal::Above`] metric `factor > 1` tightens.
    ///
    /// # Panics
    ///
    /// Panics if `factor` is not positive and finite.
    pub fn with_scaled_limit(&self, factor: f64) -> Self {
        assert!(factor.is_finite() && factor > 0.0, "scale factor must be positive: {factor}");
        Self { name: self.name.clone(), goal: self.goal, limit: self.limit * factor }
    }
}

/// The full constraint set of a sizing problem.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct DesignSpec {
    metrics: Vec<MetricSpec>,
}

/// The reward granted when every constraint is satisfied (paper Eq. 4).
pub const SATISFIED_REWARD: f64 = 0.2;

impl DesignSpec {
    /// Builds a spec from metric definitions.
    pub fn new(metrics: Vec<MetricSpec>) -> Self {
        Self { metrics }
    }

    /// The metric definitions, in evaluation order.
    pub fn metrics(&self) -> &[MetricSpec] {
        &self.metrics
    }

    /// Number of metrics `m`.
    pub fn len(&self) -> usize {
        self.metrics.len()
    }

    /// Whether the spec is empty.
    pub fn is_empty(&self) -> bool {
        self.metrics.is_empty()
    }

    /// Normalized metrics `f_i` for a raw metric vector.
    ///
    /// # Panics
    ///
    /// Panics if `values.len() != len()`.
    pub fn normalized(&self, values: &[f64]) -> Vec<f64> {
        assert_eq!(values.len(), self.metrics.len(), "metric count mismatch");
        self.metrics.iter().zip(values).map(|(m, &v)| m.normalized(v)).collect()
    }

    /// Whether all constraints are satisfied.
    ///
    /// # Panics
    ///
    /// Panics if `values.len() != len()`.
    pub fn satisfied(&self, values: &[f64]) -> bool {
        assert_eq!(values.len(), self.metrics.len(), "metric count mismatch");
        self.metrics.iter().zip(values).all(|(m, &v)| m.satisfied(v))
    }

    /// The paper's reward (Eq. 4–5): `0.2` when feasible, else
    /// `Σ min(f_i, 0) < 0`.
    ///
    /// # Panics
    ///
    /// Panics if `values.len() != len()`.
    pub fn reward(&self, values: &[f64]) -> f64 {
        if self.satisfied(values) {
            SATISFIED_REWARD
        } else {
            self.normalized(values).iter().map(|f| f.min(0.0)).sum()
        }
    }

    /// A goal-scaled member of this spec's family: metric `i`'s limit is
    /// multiplied by `factors[i]` (see [`MetricSpec::with_scaled_limit`]
    /// for the tighten/relax orientation). A factor of `1.0` leaves a
    /// metric unchanged, so the all-ones vector reproduces this spec.
    ///
    /// This is the spec-family encoding behind PPAAS-style goal
    /// conditioning: a campaign appends `factors` to the agent's
    /// observation and rewards against the scaled spec, letting one agent
    /// serve every member of the family.
    ///
    /// # Panics
    ///
    /// Panics if `factors.len() != len()` or any factor is not positive
    /// and finite.
    pub fn with_scaled_limits(&self, factors: &[f64]) -> Self {
        assert_eq!(factors.len(), self.metrics.len(), "one scale factor per metric");
        Self {
            metrics: self
                .metrics
                .iter()
                .zip(factors)
                .map(|(m, &f)| m.with_scaled_limit(f))
                .collect(),
        }
    }

    /// Aggregate degradation `g = Σ_i degradation_i` (larger = worse),
    /// the target quantity of the h-SCORE correlation (Eq. 9).
    ///
    /// # Panics
    ///
    /// Panics if `values.len() != len()`.
    pub fn degradation(&self, values: &[f64]) -> f64 {
        assert_eq!(values.len(), self.metrics.len(), "metric count mismatch");
        self.metrics.iter().zip(values).map(|(m, &v)| m.degradation(v)).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn spec() -> DesignSpec {
        DesignSpec::new(vec![
            MetricSpec::below("power_uw", 40.0),
            MetricSpec::above("margin_mv", 85.0),
        ])
    }

    #[test]
    fn satisfied_logic() {
        let s = spec();
        assert!(s.satisfied(&[30.0, 100.0]));
        assert!(!s.satisfied(&[50.0, 100.0]));
        assert!(!s.satisfied(&[30.0, 60.0]));
    }

    #[test]
    fn reward_is_0_2_when_feasible() {
        let s = spec();
        assert_eq!(s.reward(&[30.0, 100.0]), SATISFIED_REWARD);
    }

    #[test]
    fn reward_negative_when_infeasible() {
        let s = spec();
        let r = s.reward(&[50.0, 100.0]);
        assert!(r < 0.0);
        // Worse violation ⇒ lower reward.
        let r_worse = s.reward(&[80.0, 100.0]);
        assert!(r_worse < r);
    }

    #[test]
    fn satisfied_metrics_do_not_dilute_reward() {
        // min(f_i, 0) zeroes satisfied metrics: improving an already-feasible
        // metric must not change the reward of an infeasible design.
        let s = spec();
        let r1 = s.reward(&[50.0, 86.0]);
        let r2 = s.reward(&[50.0, 300.0]);
        assert!((r1 - r2).abs() < 1e-12);
    }

    #[test]
    fn normalized_sign_tracks_satisfaction() {
        let below = MetricSpec::below("m", 10.0);
        assert!(below.normalized(5.0) > 0.0);
        assert!(below.normalized(15.0) < 0.0);
        assert!(below.normalized(10.0).abs() < 1e-12);

        let above = MetricSpec::above("m", 10.0);
        assert!(above.normalized(15.0) > 0.0);
        assert!(above.normalized(5.0) < 0.0);
    }

    #[test]
    fn mu_sigma_orientation() {
        let below = MetricSpec::below("m", 10.0);
        // mean 8, std 1, beta 4 → bound 12 > 10: fail.
        assert!(!below.mu_sigma_pass(8.0, 1.0, 4.0));
        assert!(below.mu_sigma_pass(8.0, 0.2, 4.0));

        let above = MetricSpec::above("m", 10.0);
        // mean 12, std 1, beta 4 → bound 8 < 10: fail.
        assert!(!above.mu_sigma_pass(12.0, 1.0, 4.0));
        assert!(above.mu_sigma_pass(12.0, 0.2, 4.0));
    }

    #[test]
    fn degradation_orientation() {
        let below = MetricSpec::below("m", 10.0);
        assert!(below.degradation(15.0) > below.degradation(5.0));
        let above = MetricSpec::above("m", 10.0);
        assert!(above.degradation(5.0) > above.degradation(15.0));
    }

    #[test]
    fn violation_zero_when_satisfied() {
        let below = MetricSpec::below("m", 10.0);
        assert_eq!(below.violation(9.0), 0.0);
        assert!(below.violation(12.0) > 0.0);
        let above = MetricSpec::above("m", 10.0);
        assert_eq!(above.violation(11.0), 0.0);
        assert!(above.violation(8.0) > 0.0);
    }

    #[test]
    fn scaled_limits_shift_feasibility() {
        let s = spec();
        // Identity factors reproduce the spec exactly.
        assert_eq!(s.with_scaled_limits(&[1.0, 1.0]), s);
        // Tighten power (Below: factor < 1) and margin (Above: factor > 1).
        let tight = s.with_scaled_limits(&[0.5, 1.2]);
        assert_eq!(tight.metrics()[0].limit, 20.0);
        assert_eq!(tight.metrics()[1].limit, 102.0);
        // A point feasible under the base spec fails the tight member.
        assert!(s.satisfied(&[30.0, 100.0]));
        assert!(!tight.satisfied(&[30.0, 100.0]));
        assert!(tight.satisfied(&[15.0, 110.0]));
    }

    #[test]
    #[should_panic(expected = "scale factor must be positive")]
    fn nonpositive_scale_factor_panics() {
        spec().with_scaled_limits(&[1.0, 0.0]);
    }

    #[test]
    #[should_panic(expected = "one scale factor per metric")]
    fn scale_factor_count_must_match() {
        spec().with_scaled_limits(&[1.0]);
    }

    proptest! {
        #[test]
        fn prop_reward_upper_bounded(
            v1 in 0.1f64..1000.0,
            v2 in 0.1f64..1000.0,
        ) {
            let r = spec().reward(&[v1, v2]);
            prop_assert!(r <= SATISFIED_REWARD);
            // Either exactly the satisfied reward, or strictly negative.
            prop_assert!(r == SATISFIED_REWARD || r < 0.0);
        }

        #[test]
        fn prop_normalized_bounded(v in 0.0f64..1e6) {
            // |f_i| ≤ 1 for non-negative raw values.
            let m = MetricSpec::below("m", 10.0);
            prop_assert!(m.normalized(v).abs() <= 1.0 + 1e-12);
        }

        #[test]
        fn prop_reward_monotone_in_violation(
            base in 41.0f64..100.0,
            extra in 1.0f64..100.0,
        ) {
            let s = spec();
            let r1 = s.reward(&[base, 100.0]);
            let r2 = s.reward(&[base + extra, 100.0]);
            prop_assert!(r2 <= r1);
        }
    }
}
