//! GLOVA testcase circuits and the sizing-problem abstractions.
//!
//! A [`Circuit`] is the paper's `F(x | t, h)`: a nonlinear map from a
//! normalized sizing vector `x ∈ [0,1]^p`, a PVT corner `t` and a mismatch
//! condition `h` to a vector of raw performance metrics. A [`DesignSpec`]
//! attaches constraint targets and orientations to those metrics and
//! produces the paper's normalized metrics `f_i` (Eq. 5) and reward
//! (Eq. 4).
//!
//! Three real-world testcases from the paper are implemented, each a
//! physics-based analytic model layered over the 28 nm device cards of
//! `glova-spice` (see `DESIGN.md` §2 for the HSPICE-substitution argument):
//!
//! - [`StrongArmLatch`] — 14 parameters; power / set delay / reset delay /
//!   input noise.
//! - [`FloatingInverterAmp`] — 6 parameters; energy per conversion /
//!   output noise.
//! - [`DramCoreSense`] — 12 parameters (OCSA + subhole in a DRAM core);
//!   low/high data sensing voltages (maximize) and energy per bit.
//!
//! A fast synthetic [`ToyQuadratic`] circuit supports unit tests of the
//! optimization stack.
//!
//! # Example
//!
//! ```
//! use glova_circuits::{Circuit, StrongArmLatch};
//! use glova_variation::corner::PvtCorner;
//! use glova_variation::sampler::MismatchVector;
//!
//! let sal = StrongArmLatch::new();
//! let x = vec![0.5; sal.dim()];
//! let h = MismatchVector::nominal(sal.mismatch_domain(&x).dim());
//! let metrics = sal.evaluate(&x, &PvtCorner::typical(), &h);
//! assert_eq!(metrics.len(), sal.spec().len());
//! let reward = sal.spec().reward(&metrics);
//! assert!(reward <= 0.2);
//! ```

pub mod dram;
pub mod fia;
pub mod physics;
pub mod sal;
pub mod spec;
pub mod spice_backed;
pub mod toy;

pub use dram::DramCoreSense;
pub use fia::FloatingInverterAmp;
pub use sal::StrongArmLatch;
pub use spec::{DesignSpec, Goal, MetricSpec};
pub use spice_backed::{SpiceInverterChain, SpiceOta, SpiceSenseAmpArray};
pub use toy::ToyQuadratic;

use glova_variation::corner::PvtCorner;
use glova_variation::mismatch::MismatchDomain;
use glova_variation::sampler::MismatchVector;

/// Cumulative solver-failure ledger of one circuit instance.
///
/// SPICE-backed circuits do not unwind when a pooled Newton solve fails
/// to converge: the point retries once on an escalated cold solve
/// (full-Newton Jacobian, enlarged iteration budget, fresh `gmin`
/// ladder) and, if that also fails, degrades to NaN metrics — a
/// deterministic worst-reward observation. These counters record how
/// often each path fired, so campaigns can report transient-failure
/// handling instead of silently absorbing it.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FailureStats {
    /// Pooled solves that failed to converge (each triggers the retry).
    pub nonconvergent: u64,
    /// Failures recovered by the escalated cold retry.
    pub recovered: u64,
    /// Failures that degraded to NaN metrics after the retry also failed.
    pub degraded: u64,
}

impl FailureStats {
    /// Counters accumulated since `baseline` (saturating — a reset
    /// between snapshots yields zeros rather than wrapping).
    pub fn since(self, baseline: FailureStats) -> FailureStats {
        FailureStats {
            nonconvergent: self.nonconvergent.saturating_sub(baseline.nonconvergent),
            recovered: self.recovered.saturating_sub(baseline.recovered),
            degraded: self.degraded.saturating_sub(baseline.degraded),
        }
    }
}

/// A sizing problem's circuit: the paper's performance map `F(x | t, h)`.
///
/// Implementations must be deterministic: identical `(x, t, h)` inputs give
/// identical metrics. All stochasticity lives in the mismatch sampling.
pub trait Circuit: Send + Sync {
    /// Short circuit name (table row labels).
    fn name(&self) -> &str;

    /// Design-space dimension `p`.
    fn dim(&self) -> usize;

    /// Physical bounds `(lo, hi)` of each design parameter, in SI-adjacent
    /// units (µm for geometry, F for capacitance).
    fn bounds(&self) -> Vec<(f64, f64)>;

    /// Human-readable parameter names, in order.
    fn parameter_names(&self) -> Vec<String>;

    /// The constraint specification.
    fn spec(&self) -> &DesignSpec;

    /// The mismatch domain (device list) implied by the sizing `x_norm`;
    /// its dimension is the mismatch-vector length `r`.
    fn mismatch_domain(&self, x_norm: &[f64]) -> MismatchDomain;

    /// Evaluates the raw performance metrics under corner `t` and mismatch
    /// condition `h`.
    ///
    /// # Panics
    ///
    /// Implementations may panic if `x_norm.len() != dim()` or the mismatch
    /// dimension is wrong.
    fn evaluate(&self, x_norm: &[f64], corner: &PvtCorner, mismatch: &MismatchVector) -> Vec<f64>;

    /// Cumulative solver-failure ledger for this instance. Analytic
    /// circuits never fail and report zeros (the default); SPICE-backed
    /// circuits count non-convergent solves, escalated-retry recoveries
    /// and degraded evaluations (see [`FailureStats`]).
    fn failure_stats(&self) -> FailureStats {
        FailureStats::default()
    }

    /// Maps a normalized point into physical parameter values.
    fn denormalize(&self, x_norm: &[f64]) -> Vec<f64> {
        assert_eq!(x_norm.len(), self.dim(), "design vector dimension mismatch");
        self.bounds()
            .iter()
            .zip(x_norm)
            .map(|(&(lo, hi), &u)| lo + (hi - lo) * u.clamp(0.0, 1.0))
            .collect()
    }
}
