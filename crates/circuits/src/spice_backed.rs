//! A genuinely SPICE-backed testcase: every evaluation is a DC
//! operating-point solve of a real netlist.
//!
//! The three paper testcases ([`StrongArmLatch`](crate::StrongArmLatch)
//! etc.) are physics-based *analytic* models layered over the 28 nm
//! device cards — fast, but they never exercise the MNA solver stack.
//! [`SpiceInverterChain`] closes that gap: its `evaluate` builds a
//! corner- and mismatch-specialized inverter-chain netlist and solves it
//! through a shared [`OpSolverPool`], so SPICE-backed corner/mismatch
//! sweeps flow through the same
//! [`EvalEngine`](../../glova/engine/trait.EvalEngine.html)-dispatched
//! [`SizingProblem`](../../glova/problem/struct.SizingProblem.html) batch
//! entry points as every other circuit — with each engine worker
//! checking out its own per-thread solver (a clone of one primed
//! prototype, so the symbolic factorization is analyzed once per
//! topology and every solve anywhere in the sweep pays only numeric
//! refactorizations).
//!
//! # Determinism
//!
//! `evaluate` is a pure function of `(x, corner, h)`: the netlist is
//! rebuilt per point, the solver runs the full `gmin` ladder from zeros,
//! and the pool keeps every worker's solver on the canonical symbolic
//! factorization (retiring any solver that re-pivoted). Sequential and
//! threaded sweeps are therefore bitwise identical —
//! `tests/spice_engine_parity.rs` is the battery that locks this in.

use crate::spec::{DesignSpec, MetricSpec};
use crate::{Circuit, FailureStats};
use glova_spice::ac::{ac_sweep_with_backend_from_op, log_sweep};
use glova_spice::dc::{OpSolver, OpSolverPool, OperatingPoint};
use glova_spice::mna::{JacobianStrategy, NewtonOptions, SolverBackend};
use glova_spice::model::MosModel;
use glova_spice::netlist::{
    ota_two_stage_with_cards, Netlist, OtaCards, OtaParams, SenseAmpParams, GROUND,
};
use glova_spice::registry::SolverRegistry;
use glova_variation::corner::PvtCorner;
use glova_variation::mismatch::{DeviceSpec, MismatchDomain, PelgromModel};
use glova_variation::sampler::MismatchVector;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Per-instance atomic counters behind [`Circuit::failure_stats`].
#[derive(Debug, Default)]
struct FailureCounters {
    nonconvergent: AtomicU64,
    recovered: AtomicU64,
    degraded: AtomicU64,
}

impl FailureCounters {
    fn snapshot(&self) -> FailureStats {
        FailureStats {
            nonconvergent: self.nonconvergent.load(Ordering::Relaxed),
            recovered: self.recovered.load(Ordering::Relaxed),
            degraded: self.degraded.load(Ordering::Relaxed),
        }
    }
}

/// One-shot escalated recovery for a non-convergent pooled solve: a
/// fresh cold solver running the full `gmin` ladder from zeros with a
/// full-Newton Jacobian and a much larger iteration budget. A transient
/// failure (a chord iteration stalling on an extreme point the pooled
/// solver's reused LU linearized badly) recovers here; a genuinely
/// unsolvable point fails again and the caller degrades to NaN metrics.
///
/// Deterministic: the retry is a pure function of `(netlist, options)`,
/// so engine parity and trajectory bitwise identity are preserved —
/// every engine retries the same points the same way.
fn recover_nonconvergent(
    nl: &Netlist,
    base: &NewtonOptions,
    counters: &FailureCounters,
) -> Option<OperatingPoint> {
    counters.nonconvergent.fetch_add(1, Ordering::Relaxed);
    let escalated = NewtonOptions {
        max_iterations: (base.max_iterations * 4).max(800),
        strategy: JacobianStrategy::Full,
        ..*base
    };
    match OpSolver::new(nl, escalated).solve() {
        Ok(op) => {
            counters.recovered.fetch_add(1, Ordering::Relaxed);
            Some(op)
        }
        Err(_) => {
            counters.degraded.fetch_add(1, Ordering::Relaxed);
            None
        }
    }
}

/// A `stages`-stage CMOS inverter chain sized by 4 parameters and
/// evaluated by DC operating-point SPICE solves.
///
/// Design vector (normalized to `[0,1]`, physical bounds in
/// [`Circuit::bounds`]): NMOS width, PMOS width, channel length, and the
/// per-stage output load resistance. Metrics (all from one operating
/// point):
///
/// 1. `supply_current_ua` (≤): total VDD branch current — static power.
/// 2. `out_high_v` (≥): the higher of the last two stage outputs — the
///    chain must regenerate a solid logic high.
/// 3. `out_low_v` (≤): the lower of the last two stage outputs — and a
///    solid logic low.
///
/// A non-convergent operating point (possible at extreme
/// corner × mismatch combinations) reports NaN metrics, which the reward
/// machinery treats as a constraint violation — deterministically, so
/// engine parity is unaffected.
#[derive(Debug)]
pub struct SpiceInverterChain {
    stages: usize,
    spec: DesignSpec,
    pool: Arc<OpSolverPool>,
    failures: FailureCounters,
}

/// Mismatch components contributed per stage: `ΔV_th`/`Δβ` for the PMOS,
/// then the same for the NMOS (netlist device order).
const MISMATCH_PER_STAGE: usize = 4;

impl SpiceInverterChain {
    /// Builds the chain testcase with size-based backend auto-selection.
    ///
    /// # Panics
    ///
    /// Panics if `stages < 2` (the output metrics read the last two
    /// stage outputs).
    pub fn new(stages: usize) -> Self {
        Self::with_backend(stages, SolverBackend::Auto)
    }

    /// Builds the chain testcase on an explicit solver backend (the
    /// parity battery forces each in turn).
    ///
    /// # Panics
    ///
    /// Panics if `stages < 2`.
    pub fn with_backend(stages: usize, backend: SolverBackend) -> Self {
        assert!(stages >= 2, "the chain metrics need at least two stages");
        // The pool prototype fixes the topology (and on the sparse
        // backend the symbolic factorization); its device *values* are
        // irrelevant — every evaluation retargets the solver at its own
        // netlist. Nominal mid-range sizing keeps the primed system well
        // conditioned.
        let pool = Arc::new(
            OpSolverPool::new(
                &Self::prototype_netlist(stages),
                NewtonOptions::default().with_backend(backend),
            )
            .expect("inverter chain netlist is structurally sound"),
        );
        Self { stages, spec: Self::static_spec(stages), pool, failures: FailureCounters::default() }
    }

    /// Builds the chain testcase on a pool resolved through `registry`,
    /// so every concurrent campaign over a `stages`-stage chain shares
    /// one primed symbolic analysis instead of paying its own (the
    /// `glova-serve` path; trajectories are unaffected — see the
    /// determinism notes on [`SolverRegistry`]).
    ///
    /// # Panics
    ///
    /// Panics if `stages < 2`.
    pub fn from_registry(stages: usize, registry: &SolverRegistry) -> Self {
        assert!(stages >= 2, "the chain metrics need at least two stages");
        let pool = registry
            .pool_for(&Self::prototype_netlist(stages), NewtonOptions::default())
            .expect("inverter chain netlist is structurally sound");
        Self { stages, spec: Self::static_spec(stages), pool, failures: FailureCounters::default() }
    }

    /// Number of inverter stages.
    pub fn stages(&self) -> usize {
        self.stages
    }

    /// Fingerprint of the evaluated topology — the key this circuit's
    /// pool registers under, and an identity word for shared eval
    /// caches.
    pub fn topology_fingerprint(&self) -> u64 {
        Self::prototype_netlist(self.stages).topology_fingerprint()
    }

    fn static_spec(stages: usize) -> DesignSpec {
        // The static current grows ~linearly with the stage count
        // (~37 µA/stage at nominal sizing, worst-corner ~1.1× that), so
        // the power budget scales with the chain: mid-range sizings pass
        // at every corner with ~1.5× headroom while aggressive
        // wide/short-channel sizings (~2–3× the nominal current) violate
        // it — a non-trivial feasibility boundary for the optimizer.
        DesignSpec::new(vec![
            MetricSpec::below("supply_current_ua", 60.0 * stages as f64 + 60.0),
            MetricSpec::above("out_high_v", 0.6),
            MetricSpec::below("out_low_v", 0.15),
        ])
    }

    fn prototype_netlist(stages: usize) -> Netlist {
        Self::netlist_for(
            stages,
            &Self::static_denormalize(&[0.5; 4]),
            &PvtCorner::typical(),
            &MismatchVector::nominal(stages * MISMATCH_PER_STAGE),
        )
    }

    /// The shared solver pool (counters are useful in tests and benches:
    /// solvers spawned == peak concurrent workers).
    pub fn solver_pool(&self) -> &OpSolverPool {
        &self.pool
    }

    /// Whether evaluations run the sparse MNA backend.
    pub fn is_sparse(&self) -> bool {
        self.pool.is_sparse()
    }

    fn static_bounds() -> Vec<(f64, f64)> {
        vec![
            (0.6, 2.0),   // wn_um
            (1.2, 4.0),   // wp_um
            (0.03, 0.08), // l_um
            (5e3, 20e3),  // rl_ohm
        ]
    }

    fn static_denormalize(x_norm: &[f64]) -> Vec<f64> {
        Self::static_bounds()
            .iter()
            .zip(x_norm)
            .map(|(&(lo, hi), &u)| lo + (hi - lo) * u.clamp(0.0, 1.0))
            .collect()
    }

    /// Builds the netlist for one `(x, corner, h)` point. The topology
    /// (and therefore the MNA pattern) depends only on `stages`; the
    /// point enters exclusively through device values, which is what
    /// lets the solver pool keep one frozen symbolic factorization for
    /// the whole sweep.
    fn netlist_for(
        stages: usize,
        x_phys: &[f64],
        corner: &PvtCorner,
        h: &MismatchVector,
    ) -> Netlist {
        let (wn, wp, l, rl) = (x_phys[0], x_phys[1], x_phys[2], x_phys[3]);
        let hv = h.values();
        let mut nl = Netlist::new();
        let vdd = nl.node("vdd");
        let vin = nl.node("vin");
        nl.vsource("VDD", vdd, GROUND, corner.vdd);
        // Input biased near the switching threshold, tracking the supply.
        nl.vsource("VIN", vin, GROUND, corner.vdd * (0.42 / 0.9));
        let pmos = MosModel::pmos_28nm().at_corner(corner);
        let nmos = MosModel::nmos_28nm().at_corner(corner);
        let mut prev = vin;
        for s in 0..stages {
            let out = nl.node(&format!("n{s}"));
            let base = s * MISMATCH_PER_STAGE;
            nl.mosfet(
                &format!("MP{s}"),
                out,
                prev,
                vdd,
                pmos.with_mismatch(hv[base], hv[base + 1]),
                wp,
                l,
            );
            nl.mosfet(
                &format!("MN{s}"),
                out,
                prev,
                GROUND,
                nmos.with_mismatch(hv[base + 2], hv[base + 3]),
                wn,
                l,
            );
            nl.resistor(&format!("RL{s}"), out, GROUND, rl);
            prev = out;
        }
        nl
    }
}

impl Circuit for SpiceInverterChain {
    fn name(&self) -> &str {
        "SPICE-INV"
    }

    fn dim(&self) -> usize {
        4
    }

    fn bounds(&self) -> Vec<(f64, f64)> {
        Self::static_bounds()
    }

    fn parameter_names(&self) -> Vec<String> {
        ["wn_um", "wp_um", "l_um", "rl_ohm"].map(String::from).to_vec()
    }

    fn spec(&self) -> &DesignSpec {
        &self.spec
    }

    fn mismatch_domain(&self, x_norm: &[f64]) -> MismatchDomain {
        let x = Self::static_denormalize(x_norm);
        let (wn, wp, l) = (x[0], x[1], x[2]);
        let mut devices = Vec::with_capacity(2 * self.stages);
        for s in 0..self.stages {
            devices.push(DeviceSpec::pmos(format!("MP{s}"), wp, l));
            devices.push(DeviceSpec::nmos(format!("MN{s}"), wn, l));
        }
        MismatchDomain::new(devices, PelgromModel::cmos28())
    }

    fn evaluate(&self, x_norm: &[f64], corner: &PvtCorner, mismatch: &MismatchVector) -> Vec<f64> {
        assert_eq!(x_norm.len(), self.dim(), "design vector dimension mismatch");
        assert_eq!(
            mismatch.dim(),
            self.stages * MISMATCH_PER_STAGE,
            "mismatch vector dimension mismatch"
        );
        let x = Self::static_denormalize(x_norm);
        let mut nl = Self::netlist_for(self.stages, &x, corner, mismatch);
        let solved = self.pool.with_solver(|solver| {
            solver.retarget(&nl);
            solver.solve()
        });
        let recovered = match solved {
            Ok(op) => Some(op),
            // Retry once on an escalated cold solve before degrading —
            // both paths are deterministic properties of the point.
            Err(_) => recover_nonconvergent(&nl, self.pool.options(), &self.failures),
        };
        match recovered {
            Some(op) => {
                let branch = nl.vsource_branch("VDD").expect("VDD source present");
                let supply_current_ua = op.branch_current(branch).abs() * 1e6;
                let va = op.voltage(nl.node(&format!("n{}", self.stages - 1)));
                let vb = op.voltage(nl.node(&format!("n{}", self.stages - 2)));
                vec![supply_current_ua, va.max(vb), va.min(vb)]
            }
            // NaN metrics fail every constraint.
            None => vec![f64::NAN; self.spec.len()],
        }
    }

    fn failure_stats(&self) -> FailureStats {
        self.failures.snapshot()
    }
}

/// A SPICE-backed two-stage Miller OTA: every evaluation is a **DC plus
/// AC** solve of [`ota_two_stage_with_cards`] — the first testcase whose
/// metrics exercise the whole solver stack (Newton DC through the pooled
/// per-worker [`OpSolver`]s with value-only
/// retargeting, then a complex small-signal sweep linearized around that
/// same operating point).
///
/// Design vector (normalized to `[0,1]`): input-pair width, mirror
/// width, second-stage width, channel length, tail current and
/// second-stage load. Metrics:
///
/// 1. `dc_gain_db` (≥): low-frequency gain `vinp → out`.
/// 2. `gbw_mhz` (≥): gain–bandwidth product (single-pole estimate:
///    −3 dB frequency × linear gain).
/// 3. `supply_current_ua` (≤): VDD branch current — static power.
///
/// # Determinism
///
/// `evaluate` is a pure function of `(x, corner, h)`: the DC pool keeps
/// every worker canonical (same contract as [`SpiceInverterChain`]) and
/// the AC sweep per evaluation is self-contained. Non-convergence at an
/// extreme point reports NaN metrics, deterministically.
#[derive(Debug)]
pub struct SpiceOta {
    spec: DesignSpec,
    pool: Arc<OpSolverPool>,
    backend: SolverBackend,
    freqs: Vec<f64>,
    failures: FailureCounters,
}

/// Mismatch components: `ΔV_th`/`Δβ` for M1, M2, M3, M4, M6 in order.
const OTA_MISMATCH_DIM: usize = 10;

impl SpiceOta {
    /// Builds the OTA testcase with size-based backend auto-selection
    /// (10 MNA unknowns — dense under `Auto`).
    pub fn new() -> Self {
        Self::with_backend(SolverBackend::Auto)
    }

    /// Builds the OTA testcase on an explicit solver backend.
    pub fn with_backend(backend: SolverBackend) -> Self {
        let pool = Arc::new(
            OpSolverPool::new(
                &Self::prototype_netlist(),
                NewtonOptions::default().with_backend(backend),
            )
            .expect("OTA netlist is structurally sound"),
        );
        Self {
            spec: Self::static_spec(),
            pool,
            backend,
            freqs: log_sweep(1e3, 1e9, 3),
            failures: FailureCounters::default(),
        }
    }

    /// Builds the OTA testcase on a pool resolved through `registry`
    /// (the `glova-serve` path — concurrent campaigns share one primed
    /// symbolic analysis; see the determinism notes on
    /// [`SolverRegistry`]).
    pub fn from_registry(registry: &SolverRegistry) -> Self {
        let pool = registry
            .pool_for(&Self::prototype_netlist(), NewtonOptions::default())
            .expect("OTA netlist is structurally sound");
        Self {
            spec: Self::static_spec(),
            pool,
            backend: SolverBackend::Auto,
            freqs: log_sweep(1e3, 1e9, 3),
            failures: FailureCounters::default(),
        }
    }

    /// The shared DC solver pool (counters useful in tests/benches).
    pub fn solver_pool(&self) -> &OpSolverPool {
        &self.pool
    }

    /// Fingerprint of the evaluated DC topology — the key this
    /// circuit's pool registers under, and an identity word for shared
    /// eval caches.
    pub fn topology_fingerprint(&self) -> u64 {
        Self::prototype_netlist().topology_fingerprint()
    }

    fn static_spec() -> DesignSpec {
        // Thresholds sit under the nominal point (≈63 dB, ≈300 MHz GBW,
        // ≈73 µA at mid-range sizing, feasible across the industrial
        // 30-corner set) while e.g. maximal wide/short sizings drop the
        // gain to ~35 dB — a real feasibility boundary for the
        // optimizer.
        DesignSpec::new(vec![
            MetricSpec::above("dc_gain_db", 40.0),
            MetricSpec::above("gbw_mhz", 30.0),
            MetricSpec::below("supply_current_ua", 150.0),
        ])
    }

    fn prototype_netlist() -> Netlist {
        Self::netlist_for(
            &Self::static_denormalize(&[0.5; 6]),
            &PvtCorner::typical(),
            &MismatchVector::nominal(OTA_MISMATCH_DIM),
        )
    }

    fn static_bounds() -> Vec<(f64, f64)> {
        vec![
            (1.0, 4.0),   // w_in_um
            (0.8, 3.0),   // w_mir_um
            (3.0, 12.0),  // w_out_um
            (0.06, 0.2),  // l_um
            (10.0, 40.0), // itail_ua
            (5.0, 20.0),  // rl_kohm
        ]
    }

    fn static_denormalize(x_norm: &[f64]) -> Vec<f64> {
        Self::static_bounds()
            .iter()
            .zip(x_norm)
            .map(|(&(lo, hi), &u)| lo + (hi - lo) * u.clamp(0.0, 1.0))
            .collect()
    }

    /// Builds the netlist for one `(x, corner, h)` point. Topology (and
    /// the MNA pattern) is fixed; the point enters purely through values
    /// — every DC retarget across a sweep takes the value-only path.
    fn netlist_for(x_phys: &[f64], corner: &PvtCorner, h: &MismatchVector) -> Netlist {
        let hv = h.values();
        let params = OtaParams {
            w_in_um: x_phys[0],
            w_mir_um: x_phys[1],
            w_out_um: x_phys[2],
            l_um: x_phys[3],
            itail_ua: x_phys[4],
            rl_kohm: x_phys[5],
            vdd: corner.vdd,
            vcm: corner.vdd * (0.55 / 0.9),
            ..OtaParams::nominal()
        };
        let nmos = MosModel::nmos_28nm().at_corner(corner);
        let pmos = MosModel::pmos_28nm().at_corner(corner);
        let cards = OtaCards {
            m1: nmos.with_mismatch(hv[0], hv[1]),
            m2: nmos.with_mismatch(hv[2], hv[3]),
            m3: pmos.with_mismatch(hv[4], hv[5]),
            m4: pmos.with_mismatch(hv[6], hv[7]),
            m6: pmos.with_mismatch(hv[8], hv[9]),
        };
        ota_two_stage_with_cards(&params, &cards)
    }
}

impl Default for SpiceOta {
    fn default() -> Self {
        Self::new()
    }
}

impl Circuit for SpiceOta {
    fn name(&self) -> &str {
        "SPICE-OTA"
    }

    fn dim(&self) -> usize {
        6
    }

    fn bounds(&self) -> Vec<(f64, f64)> {
        Self::static_bounds()
    }

    fn parameter_names(&self) -> Vec<String> {
        ["w_in_um", "w_mir_um", "w_out_um", "l_um", "itail_ua", "rl_kohm"]
            .map(String::from)
            .to_vec()
    }

    fn spec(&self) -> &DesignSpec {
        &self.spec
    }

    fn mismatch_domain(&self, x_norm: &[f64]) -> MismatchDomain {
        let x = Self::static_denormalize(x_norm);
        let (w_in, w_mir, w_out, l) = (x[0], x[1], x[2], x[3]);
        MismatchDomain::new(
            vec![
                DeviceSpec::nmos("M1".to_string(), w_in, l),
                DeviceSpec::nmos("M2".to_string(), w_in, l),
                DeviceSpec::pmos("M3".to_string(), w_mir, l),
                DeviceSpec::pmos("M4".to_string(), w_mir, l),
                DeviceSpec::pmos("M6".to_string(), w_out, l),
            ],
            PelgromModel::cmos28(),
        )
    }

    fn evaluate(&self, x_norm: &[f64], corner: &PvtCorner, mismatch: &MismatchVector) -> Vec<f64> {
        assert_eq!(x_norm.len(), self.dim(), "design vector dimension mismatch");
        assert_eq!(mismatch.dim(), OTA_MISMATCH_DIM, "mismatch vector dimension mismatch");
        let x = Self::static_denormalize(x_norm);
        let mut nl = Self::netlist_for(&x, corner, mismatch);
        let solved = self.pool.with_solver(|solver| {
            solver.retarget(&nl);
            solver.solve()
        });
        let op = match solved {
            Ok(op) => op,
            // Retry the DC solve once on an escalated cold ladder before
            // degrading the point to NaN metrics.
            Err(_) => match recover_nonconvergent(&nl, self.pool.options(), &self.failures) {
                Some(op) => op,
                None => return vec![f64::NAN; self.spec.len()],
            },
        };
        let branch = nl.vsource_branch("VDD").expect("VDD source present");
        let supply_current_ua = op.branch_current(branch).abs() * 1e6;
        let out = nl.node("out");
        match ac_sweep_with_backend_from_op(&nl, op, "VINP", &self.freqs, self.backend) {
            Ok(ac) => {
                let gain_db = ac.magnitude_db(out)[0];
                // Single-pole GBW estimate; a response that never drops
                // 3 dB inside the sweep is credited with the sweep edge.
                let f3 = ac.bandwidth_3db(out).unwrap_or_else(|| *self.freqs.last().unwrap());
                let gbw_mhz = f3 * 10f64.powf(gain_db / 20.0) / 1e6;
                vec![gain_db, gbw_mhz, supply_current_ua]
            }
            Err(_) => {
                // A failed small-signal sweep has no retry path (it is
                // already a direct factorization, not an iteration);
                // count the failure and the degradation together.
                self.failures.nonconvergent.fetch_add(1, Ordering::Relaxed);
                self.failures.degraded.fetch_add(1, Ordering::Relaxed);
                vec![f64::NAN; self.spec.len()]
            }
        }
    }

    fn failure_stats(&self) -> FailureStats {
        self.failures.snapshot()
    }
}

/// A SPICE-backed `rows × cols` DRAM sense-amplifier array — the
/// testcase whose MNA pattern is genuinely **2-D** (cell `(r, c)`
/// couples wordline `r` and bitline `c`), built on
/// [`glova_spice::netlist::sense_amp_array_with`]'s topology and
/// evaluated by pooled DC operating-point solves like the other
/// SPICE-backed circuits.
///
/// Design vector (normalized to `[0,1]`): access width, latch width,
/// channel length, precharge resistance. Metrics (all from one DC
/// operating point):
///
/// 1. `bl_diff_mv` (≥): the worst-column pre-sensing differential
///    `v(blb) − v(bl)` — the cells load only the true bitline half
///    (open-bitline organization), and the latch must regenerate that
///    offset, not collapse it. Latch `ΔV_th` mismatch eats directly
///    into this margin — the classic sense-amp yield mechanism.
/// 2. `droop_mv` (≤): worst-column common-mode droop of the pair below
///    the `vdd/2` precharge rail; wide access devices over-discharge
///    the bitlines through the cell anchors.
/// 3. `supply_current_ua` (≤): VDD branch current — the static burn of
///    all `2·cols` latch half-cells.
///
/// # Determinism
///
/// Same contract as [`SpiceInverterChain`]: `evaluate` is a pure
/// function of `(x, corner, h)`, the pool keeps every worker on the
/// canonical symbolic factorization, and non-convergence reports NaN
/// metrics deterministically.
#[derive(Debug)]
pub struct SpiceSenseAmpArray {
    rows: usize,
    cols: usize,
    spec: DesignSpec,
    pool: Arc<OpSolverPool>,
    failures: FailureCounters,
}

/// Mismatch components contributed per column: `ΔV_th`/`Δβ` for the
/// true-side latch NMOS, then the same for the reference side (netlist
/// device order).
const MISMATCH_PER_COLUMN: usize = 4;

impl SpiceSenseAmpArray {
    /// Builds the array testcase with size-based backend auto-selection
    /// (any practical array is sparse: `rows·cols + rows + 2·cols + 4`
    /// unknowns).
    ///
    /// # Panics
    ///
    /// Panics if `rows == 0` or `cols == 0`.
    pub fn new(rows: usize, cols: usize) -> Self {
        Self::with_backend(rows, cols, SolverBackend::Auto)
    }

    /// Builds the array testcase on an explicit solver backend (and, via
    /// [`with_options`](Self::with_options), explicit Newton options —
    /// the AMD-ordering benchmarks use that hook).
    ///
    /// # Panics
    ///
    /// Panics if `rows == 0` or `cols == 0`.
    pub fn with_backend(rows: usize, cols: usize, backend: SolverBackend) -> Self {
        Self::with_options(rows, cols, NewtonOptions::default().with_backend(backend))
    }

    /// Builds the array testcase with full control of the Newton options
    /// every pooled solver runs with (backend, fill ordering, …).
    ///
    /// # Panics
    ///
    /// Panics if `rows == 0` or `cols == 0`.
    pub fn with_options(rows: usize, cols: usize, options: NewtonOptions) -> Self {
        assert!(rows > 0 && cols > 0, "a sense-amp array needs at least one row and column");
        let pool = Arc::new(
            OpSolverPool::new(&Self::prototype_netlist(rows, cols), options)
                .expect("sense-amp array netlist is structurally sound"),
        );
        Self {
            rows,
            cols,
            spec: Self::static_spec(rows, cols),
            pool,
            failures: FailureCounters::default(),
        }
    }

    /// Builds the array testcase on a pool resolved through `registry`
    /// (the `glova-serve` path — concurrent campaigns over one array
    /// shape share one primed symbolic analysis; see the determinism
    /// notes on [`SolverRegistry`]).
    ///
    /// # Panics
    ///
    /// Panics if `rows == 0` or `cols == 0`.
    pub fn from_registry(rows: usize, cols: usize, registry: &SolverRegistry) -> Self {
        assert!(rows > 0 && cols > 0, "a sense-amp array needs at least one row and column");
        let pool = registry
            .pool_for(&Self::prototype_netlist(rows, cols), NewtonOptions::default())
            .expect("sense-amp array netlist is structurally sound");
        Self {
            rows,
            cols,
            spec: Self::static_spec(rows, cols),
            pool,
            failures: FailureCounters::default(),
        }
    }

    /// Array shape as `(rows, cols)`.
    pub fn shape(&self) -> (usize, usize) {
        (self.rows, self.cols)
    }

    /// Fingerprint of the evaluated topology — the key this circuit's
    /// pool registers under, and an identity word for shared eval
    /// caches.
    pub fn topology_fingerprint(&self) -> u64 {
        Self::prototype_netlist(self.rows, self.cols).topology_fingerprint()
    }

    fn static_spec(rows: usize, cols: usize) -> DesignSpec {
        // Measured at the typical corner, 5×4, mid-range sizing: ≈29 mV
        // of differential, ≈14 mV of droop, ≈3.6 µA/column of static
        // current (droop and differential grow roughly linearly with the
        // row count — each extra row adds an access device pulling on
        // the same bitline, hence the shape-aware thresholds). Mid-range
        // sizings pass with ~2× headroom while minimal latch widths
        // (differential), maximal access widths (droop) and
        // wide-everything sizings (current) violate — a real
        // feasibility boundary for the optimizer.
        DesignSpec::new(vec![
            MetricSpec::above("bl_diff_mv", 12.0),
            MetricSpec::below("droop_mv", 3.5 * rows as f64),
            MetricSpec::below("supply_current_ua", 5.0 * cols as f64 + 0.1 * (rows * cols) as f64),
        ])
    }

    fn prototype_netlist(rows: usize, cols: usize) -> Netlist {
        Self::netlist_for(
            rows,
            cols,
            &Self::static_denormalize(&[0.5; 4]),
            &PvtCorner::typical(),
            &MismatchVector::nominal(cols * MISMATCH_PER_COLUMN),
        )
    }

    /// The shared solver pool (counters useful in tests and benches).
    pub fn solver_pool(&self) -> &OpSolverPool {
        &self.pool
    }

    /// Whether evaluations run the sparse MNA backend.
    pub fn is_sparse(&self) -> bool {
        self.pool.is_sparse()
    }

    fn static_bounds() -> Vec<(f64, f64)> {
        // The latch bounds are deliberately subcritical: with the loop
        // gain `(gm_n + gm_p)·R_eff` held below one over the whole box
        // (narrow, longer-channel latch devices against a stiff ≤2 kΩ
        // precharge anchor), the DC solution stays in the pre-sensing
        // small-signal regime — the regime the differential metric is
        // meaningful in — instead of regenerating to a rail-to-rail
        // basin-dependent latch state.
        vec![
            (0.5, 4.0),   // w_access_um
            (0.1, 0.5),   // w_latch_um
            (0.08, 0.2),  // l_um
            (0.5e3, 2e3), // r_precharge_ohm
        ]
    }

    fn static_denormalize(x_norm: &[f64]) -> Vec<f64> {
        Self::static_bounds()
            .iter()
            .zip(x_norm)
            .map(|(&(lo, hi), &u)| lo + (hi - lo) * u.clamp(0.0, 1.0))
            .collect()
    }

    /// Builds the netlist for one `(x, corner, h)` point: the exact
    /// [`sense_amp_array_with`](glova_spice::netlist::sense_amp_array_with)
    /// topology (same node names, same device order — locked in by a
    /// fingerprint test), with the corner folded into every model card
    /// and the mismatch vector into the per-column latch NMOS pair. The
    /// point enters only through device values, so sweep retargets take
    /// the value-only fast path.
    fn netlist_for(
        rows: usize,
        cols: usize,
        x_phys: &[f64],
        corner: &PvtCorner,
        h: &MismatchVector,
    ) -> Netlist {
        let (w_access, w_latch, l, r_pre) = (x_phys[0], x_phys[1], x_phys[2], x_phys[3]);
        let p = SenseAmpParams {
            vdd: corner.vdd,
            r_precharge: r_pre,
            w_latch_um: w_latch,
            w_access_um: w_access,
            l_um: l,
            ..SenseAmpParams::default()
        };
        let hv = h.values();
        let nmos = MosModel::nmos_28nm().at_corner(corner);
        let pmos = MosModel::pmos_28nm().at_corner(corner);
        let mut nl = Netlist::new();
        let vdd = nl.node("vdd");
        let vpre = nl.node("vpre");
        nl.vsource("VDD", vdd, GROUND, p.vdd);
        nl.vsource("VPRE", vpre, GROUND, p.vdd / 2.0);
        let wordlines: Vec<_> = (0..rows)
            .map(|r| {
                let wl = nl.node(&format!("wl{r}"));
                nl.resistor(&format!("RWL{r}"), vdd, wl, p.r_wordline);
                wl
            })
            .collect();
        let bitlines: Vec<_> = (0..cols)
            .map(|c| {
                let bl = nl.node(&format!("bl{c}"));
                let blb = nl.node(&format!("blb{c}"));
                nl.resistor(&format!("RPB{c}"), vpre, bl, p.r_precharge);
                nl.resistor(&format!("RPBB{c}"), vpre, blb, p.r_precharge);
                nl.capacitor(&format!("CBL{c}"), bl, GROUND, p.c_bitline_f);
                nl.capacitor(&format!("CBLB{c}"), blb, GROUND, p.c_bitline_f);
                let base = c * MISMATCH_PER_COLUMN;
                let n1 = nmos.with_mismatch(hv[base], hv[base + 1]);
                let n2 = nmos.with_mismatch(hv[base + 2], hv[base + 3]);
                nl.mosfet(&format!("MN1_{c}"), bl, blb, GROUND, n1, p.w_latch_um, p.l_um);
                nl.mosfet(&format!("MN2_{c}"), blb, bl, GROUND, n2, p.w_latch_um, p.l_um);
                nl.mosfet(&format!("MP1_{c}"), bl, blb, vdd, pmos, p.w_latch_um, p.l_um);
                nl.mosfet(&format!("MP2_{c}"), blb, bl, vdd, pmos, p.w_latch_um, p.l_um);
                bl
            })
            .collect();
        for (r, &wl) in wordlines.iter().enumerate() {
            for (c, &bl) in bitlines.iter().enumerate() {
                let cell = nl.node(&format!("cell{r}_{c}"));
                nl.mosfet(&format!("MA{r}_{c}"), bl, wl, cell, nmos, p.w_access_um, p.l_um);
                nl.capacitor(&format!("CC{r}_{c}"), cell, GROUND, p.c_cell_f);
                nl.resistor(&format!("RC{r}_{c}"), cell, GROUND, p.r_cell);
            }
        }
        nl
    }
}

impl Circuit for SpiceSenseAmpArray {
    fn name(&self) -> &str {
        "SPICE-SENSEAMP"
    }

    fn dim(&self) -> usize {
        4
    }

    fn bounds(&self) -> Vec<(f64, f64)> {
        Self::static_bounds()
    }

    fn parameter_names(&self) -> Vec<String> {
        ["w_access_um", "w_latch_um", "l_um", "r_precharge_ohm"].map(String::from).to_vec()
    }

    fn spec(&self) -> &DesignSpec {
        &self.spec
    }

    fn mismatch_domain(&self, x_norm: &[f64]) -> MismatchDomain {
        let x = Self::static_denormalize(x_norm);
        let (w_latch, l) = (x[1], x[2]);
        let mut devices = Vec::with_capacity(2 * self.cols);
        for c in 0..self.cols {
            devices.push(DeviceSpec::nmos(format!("MN1_{c}"), w_latch, l));
            devices.push(DeviceSpec::nmos(format!("MN2_{c}"), w_latch, l));
        }
        MismatchDomain::new(devices, PelgromModel::cmos28())
    }

    fn evaluate(&self, x_norm: &[f64], corner: &PvtCorner, mismatch: &MismatchVector) -> Vec<f64> {
        assert_eq!(x_norm.len(), self.dim(), "design vector dimension mismatch");
        assert_eq!(
            mismatch.dim(),
            self.cols * MISMATCH_PER_COLUMN,
            "mismatch vector dimension mismatch"
        );
        let x = Self::static_denormalize(x_norm);
        let mut nl = Self::netlist_for(self.rows, self.cols, &x, corner, mismatch);
        let solved = self.pool.with_solver(|solver| {
            solver.retarget(&nl);
            solver.solve()
        });
        let recovered = match solved {
            Ok(op) => Some(op),
            Err(_) => recover_nonconvergent(&nl, self.pool.options(), &self.failures),
        };
        match recovered {
            Some(op) => {
                let vpre = corner.vdd / 2.0;
                let mut worst_diff = f64::INFINITY;
                let mut worst_droop = f64::NEG_INFINITY;
                for c in 0..self.cols {
                    let bl = op.voltage(nl.node(&format!("bl{c}")));
                    let blb = op.voltage(nl.node(&format!("blb{c}")));
                    worst_diff = worst_diff.min((blb - bl) * 1e3);
                    worst_droop = worst_droop.max((vpre - 0.5 * (bl + blb)) * 1e3);
                }
                let branch = nl.vsource_branch("VDD").expect("VDD source present");
                let supply_current_ua = op.branch_current(branch).abs() * 1e6;
                vec![worst_diff, worst_droop, supply_current_ua]
            }
            None => vec![f64::NAN; self.spec.len()],
        }
    }

    fn failure_stats(&self) -> FailureStats {
        self.failures.snapshot()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sense_amp_array_matches_generator_topology() {
        use glova_spice::netlist::sense_amp_array;
        // The circuit's per-point netlist must be the generator's
        // topology exactly (same fingerprint ⇒ same MNA pattern and
        // stamp order), so benches over `sense_amp_array` measure the
        // very systems the circuit solves.
        let nl = SpiceSenseAmpArray::netlist_for(
            5,
            4,
            &SpiceSenseAmpArray::static_denormalize(&[0.5; 4]),
            &PvtCorner::typical(),
            &MismatchVector::nominal(4 * MISMATCH_PER_COLUMN),
        );
        assert_eq!(nl.topology_fingerprint(), sense_amp_array(5, 4).topology_fingerprint());
        assert_eq!(nl.unknown_count(), sense_amp_array(5, 4).unknown_count());
    }

    #[test]
    fn sense_amp_nominal_is_feasible_and_deterministic() {
        let array = SpiceSenseAmpArray::new(5, 4);
        assert!(array.is_sparse(), "any practical array resolves sparse under Auto");
        let x = vec![0.5; array.dim()];
        let h = MismatchVector::nominal(array.mismatch_domain(&x).dim());
        let m = array.evaluate(&x, &PvtCorner::typical(), &h);
        assert_eq!(m.len(), 3);
        assert!(array.spec().satisfied(&m), "nominal array must meet spec: {m:?}");
        let again = array.evaluate(&x, &PvtCorner::typical(), &h);
        for (a, b) in m.iter().zip(&again) {
            assert_eq!(a.to_bits(), b.to_bits(), "repeat evaluation drifted");
        }
        assert_eq!(array.solver_pool().solvers_spawned(), 1);
    }

    #[test]
    fn registry_circuits_share_one_pool_and_match_locals() {
        let registry = SolverRegistry::new();
        let a = SpiceInverterChain::from_registry(4, &registry);
        let b = SpiceInverterChain::from_registry(4, &registry);
        assert_eq!(registry.primes(), 1, "one topology must prime once");
        assert!(std::ptr::eq(a.solver_pool(), b.solver_pool()), "same shape shares one pool");
        assert_eq!(a.topology_fingerprint(), b.topology_fingerprint());
        // Registry-resolved evaluations must be bitwise identical to a
        // privately-pooled circuit's — sharing is unobservable in the
        // outcomes.
        let local = SpiceInverterChain::new(4);
        let x = vec![0.5; local.dim()];
        let h = MismatchVector::nominal(local.mismatch_domain(&x).dim());
        let corner = PvtCorner::typical();
        let shared = a.evaluate(&x, &corner, &h);
        let private = local.evaluate(&x, &corner, &h);
        for (s, p) in shared.iter().zip(&private) {
            assert_eq!(s.to_bits(), p.to_bits(), "registry sharing changed results");
        }
        // Distinct circuits register distinct entries under the same
        // registry.
        let ota = SpiceOta::from_registry(&registry);
        let array = SpiceSenseAmpArray::from_registry(5, 4, &registry);
        assert_eq!(registry.primes(), 3);
        assert_ne!(a.topology_fingerprint(), ota.topology_fingerprint());
        assert_ne!(ota.topology_fingerprint(), array.topology_fingerprint());
    }

    #[test]
    fn sense_amp_metrics_respond_to_sizing_corner_and_mismatch() {
        let array = SpiceSenseAmpArray::new(5, 4);
        let x = vec![0.5; array.dim()];
        let dim = array.mismatch_domain(&x).dim();
        let h = MismatchVector::nominal(dim);
        let typical = array.evaluate(&x, &PvtCorner::typical(), &h);
        // Maximal access width over-discharges the bitlines: more droop.
        let wide = array.evaluate(&[1.0, 0.5, 0.5, 0.5], &PvtCorner::typical(), &h);
        assert!(wide[1] > typical[1], "wider access must increase droop");
        // A low-supply corner moves every metric.
        let low = PvtCorner { vdd: 0.8, ..PvtCorner::typical() };
        assert_ne!(array.evaluate(&x, &low, &h), typical);
        // Latch threshold mismatch on the true side eats the worst-column
        // differential.
        let mut skew = vec![0.0; dim];
        skew[0] = 0.05; // ΔV_th of MN1_0 (true side conducts less… or more)
        let skewed = array.evaluate(&x, &PvtCorner::typical(), &MismatchVector::from_values(skew));
        assert_ne!(skewed[0], typical[0], "latch mismatch must move the differential");
    }

    #[test]
    fn nominal_design_is_feasible_at_typical() {
        let chain = SpiceInverterChain::new(8);
        let x = vec![0.5; chain.dim()];
        let h = MismatchVector::nominal(chain.mismatch_domain(&x).dim());
        let m = chain.evaluate(&x, &PvtCorner::typical(), &h);
        assert_eq!(m.len(), 3);
        assert!(chain.spec().satisfied(&m), "nominal point must meet spec: {m:?}");
        assert_eq!(chain.spec().reward(&m), crate::spec::SATISFIED_REWARD);
    }

    #[test]
    fn corners_and_mismatch_move_the_metrics() {
        let chain = SpiceInverterChain::new(8);
        let x = vec![0.5; chain.dim()];
        let dim = chain.mismatch_domain(&x).dim();
        let typical = chain.evaluate(&x, &PvtCorner::typical(), &MismatchVector::nominal(dim));
        let low_v = PvtCorner { vdd: 0.8, ..PvtCorner::typical() };
        let at_low = chain.evaluate(&x, &low_v, &MismatchVector::nominal(dim));
        assert!(at_low[1] < typical[1], "lower supply must lower the high level");
        let skewed = chain.evaluate(
            &x,
            &PvtCorner::typical(),
            &MismatchVector::from_values(vec![0.02; dim]),
        );
        assert_ne!(skewed, typical, "mismatch must perturb the solve");
    }

    #[test]
    fn evaluation_is_deterministic_and_reuses_one_solver_sequentially() {
        let chain = SpiceInverterChain::new(12);
        let x = vec![0.6, 0.4, 0.5, 0.5];
        let h = MismatchVector::from_values(vec![1e-3; chain.mismatch_domain(&x).dim()]);
        let corner = PvtCorner { vdd: 0.8, temp_c: 80.0, ..PvtCorner::typical() };
        let first = chain.evaluate(&x, &corner, &h);
        for _ in 0..3 {
            let again = chain.evaluate(&x, &corner, &h);
            for (a, b) in first.iter().zip(&again) {
                assert_eq!(a.to_bits(), b.to_bits(), "repeat evaluation drifted");
            }
        }
        assert_eq!(chain.solver_pool().solvers_spawned(), 1, "sequential use needs one solver");
    }

    #[test]
    fn ota_nominal_is_feasible_and_deterministic() {
        let ota = SpiceOta::new();
        let x = vec![0.5; ota.dim()];
        let h = MismatchVector::nominal(ota.mismatch_domain(&x).dim());
        let m = ota.evaluate(&x, &PvtCorner::typical(), &h);
        assert_eq!(m.len(), 3);
        assert!(ota.spec().satisfied(&m), "nominal OTA must meet spec: {m:?}");
        assert!(m[0] > 55.0 && m[0] < 75.0, "two-stage gain in a plausible band: {} dB", m[0]);
        // Repeat evaluations through the pooled solver are bitwise
        // stable, and sequential use materializes exactly one solver.
        let again = ota.evaluate(&x, &PvtCorner::typical(), &h);
        for (a, b) in m.iter().zip(&again) {
            assert_eq!(a.to_bits(), b.to_bits(), "repeat OTA evaluation drifted");
        }
        assert_eq!(ota.solver_pool().solvers_spawned(), 1);
    }

    #[test]
    fn ota_metrics_respond_to_sizing_corner_and_mismatch() {
        let ota = SpiceOta::new();
        let x = vec![0.5; ota.dim()];
        let h = MismatchVector::nominal(10);
        let typical = ota.evaluate(&x, &PvtCorner::typical(), &h);
        // Maximal widths at minimal length collapse the gain below spec.
        let over = ota.evaluate(&[0.9; 6], &PvtCorner::typical(), &h);
        assert!(over[0] < typical[0], "oversizing must cost gain");
        assert!(!ota.spec().satisfied(&over), "oversized point violates the gain floor: {over:?}");
        // A hot, low-supply corner moves the metrics.
        let hot = PvtCorner { vdd: 0.8, temp_c: 80.0, ..PvtCorner::typical() };
        assert_ne!(ota.evaluate(&x, &hot, &h), typical);
        // Input-pair mismatch perturbs the solve.
        let mut skew = vec![0.0; 10];
        skew[0] = 0.02;
        let skewed = ota.evaluate(&x, &PvtCorner::typical(), &MismatchVector::from_values(skew));
        assert_ne!(skewed, typical, "mismatch must perturb the OTA metrics");
    }

    #[test]
    fn backend_resolution_follows_size() {
        // 4 + stages unknowns: 8 stages = 12 unknowns (dense under Auto),
        // 24 stages = 28 unknowns (sparse under Auto).
        assert!(!SpiceInverterChain::new(8).is_sparse());
        assert!(SpiceInverterChain::new(24).is_sparse());
        assert!(SpiceInverterChain::with_backend(8, SolverBackend::Sparse).is_sparse());
        assert!(!SpiceInverterChain::with_backend(24, SolverBackend::Dense).is_sparse());
    }
}
