//! Shared device-physics helpers for the analytic testcase models.
//!
//! All three testcases are built from the same primitives: corner- and
//! mismatch-specialized square-law transistor cards (from `glova-spice`),
//! gate/junction capacitance estimates, thermal noise, and differential
//! offset aggregation. Centralizing them keeps corner behaviour consistent
//! across circuits (SS is slow *everywhere*).

use glova_spice::model::MosModel;
use glova_variation::corner::PvtCorner;
use glova_variation::sampler::MismatchVector;

/// Boltzmann constant, J/K.
pub const BOLTZMANN: f64 = 1.380_649e-23;

/// Gate capacitance density at 28 nm, F/µm².
pub const COX_PER_UM2: f64 = 30e-15;

/// Junction/overlap capacitance per µm of device width, F/µm.
pub const CJ_PER_UM: f64 = 0.6e-15;

/// Thermal-noise excess factor γ for short-channel devices.
pub const GAMMA_NOISE: f64 = 1.5;

/// `kT` at a corner's temperature, joules.
pub fn kt(corner: &PvtCorner) -> f64 {
    BOLTZMANN * corner.temp_k()
}

/// Gate capacitance of a `w × l` µm transistor, farads.
pub fn gate_cap(w_um: f64, l_um: f64) -> f64 {
    COX_PER_UM2 * w_um * l_um
}

/// Drain-junction capacitance of a `w` µm wide transistor, farads.
pub fn junction_cap(w_um: f64) -> f64 {
    CJ_PER_UM * w_um
}

/// Accessor into a circuit's mismatch vector with the layout convention
/// used by every testcase: all transistors first (`ΔV_th`, `Δβ/β` pairs in
/// declaration order), then capacitors (`ΔC/C`).
#[derive(Debug, Clone, Copy)]
pub struct MismatchView<'a> {
    values: &'a [f64],
    transistor_count: usize,
}

impl<'a> MismatchView<'a> {
    /// Wraps a mismatch vector.
    ///
    /// # Panics
    ///
    /// Panics if the vector is shorter than `2 × transistor_count`.
    pub fn new(mismatch: &'a MismatchVector, transistor_count: usize) -> Self {
        assert!(
            mismatch.dim() >= 2 * transistor_count,
            "mismatch vector too short: {} < {}",
            mismatch.dim(),
            2 * transistor_count
        );
        Self { values: mismatch.values(), transistor_count }
    }

    /// `ΔV_th` of transistor `idx` (declaration order), volts.
    pub fn vth(&self, idx: usize) -> f64 {
        assert!(idx < self.transistor_count, "transistor index out of range");
        self.values[2 * idx]
    }

    /// `Δβ/β` of transistor `idx`.
    pub fn beta(&self, idx: usize) -> f64 {
        assert!(idx < self.transistor_count, "transistor index out of range");
        self.values[2 * idx + 1]
    }

    /// `ΔC/C` of capacitor `idx` (declared after all transistors).
    pub fn cap(&self, idx: usize) -> f64 {
        let pos = 2 * self.transistor_count + idx;
        assert!(pos < self.values.len(), "capacitor index out of range");
        self.values[pos]
    }

    /// Differential `ΔV_th` between a device pair `(a, b)` — the quantity
    /// that becomes input-referred offset in differential circuits. Global
    /// (die-level) shifts cancel here, exactly as on silicon.
    pub fn vth_pair_diff(&self, a: usize, b: usize) -> f64 {
        self.vth(a) - self.vth(b)
    }

    /// Differential `Δβ/β` between a device pair.
    pub fn beta_pair_diff(&self, a: usize, b: usize) -> f64 {
        self.beta(a) - self.beta(b)
    }
}

/// A corner- and mismatch-specialized transistor with geometry, providing
/// the per-instance quantities the analytic models need.
#[derive(Debug, Clone, Copy)]
pub struct SizedTransistor {
    model: MosModel,
    w_um: f64,
    l_um: f64,
}

impl SizedTransistor {
    /// Specializes `base` to a corner and per-device mismatch.
    pub fn new(
        base: MosModel,
        corner: &PvtCorner,
        w_um: f64,
        l_um: f64,
        delta_vth: f64,
        delta_beta: f64,
    ) -> Self {
        Self { model: base.at_corner(corner).with_mismatch(delta_vth, delta_beta), w_um, l_um }
    }

    /// Width, µm.
    pub fn w_um(&self) -> f64 {
        self.w_um
    }

    /// Length, µm.
    pub fn l_um(&self) -> f64 {
        self.l_um
    }

    /// Effective threshold voltage magnitude, volts.
    pub fn vth(&self) -> f64 {
        self.model.vth0
    }

    /// `k' · W/L`, A/V².
    pub fn beta(&self) -> f64 {
        self.model.kp * self.w_um / self.l_um
    }

    /// Saturation drain current at gate overdrive `vov = vgs − vth`
    /// (0 when below threshold), amperes.
    pub fn id_sat(&self, vgs: f64) -> f64 {
        let vov = (vgs - self.model.vth0).max(0.0);
        0.5 * self.beta() * vov * vov
    }

    /// Transconductance in saturation at the given current, S
    /// (`gm = √(2 β I_D)`).
    pub fn gm_at(&self, id: f64) -> f64 {
        (2.0 * self.beta() * id.max(0.0)).sqrt()
    }

    /// Gate capacitance, farads.
    pub fn cgg(&self) -> f64 {
        gate_cap(self.w_um, self.l_um)
    }

    /// Drain junction capacitance, farads.
    pub fn cdd(&self) -> f64 {
        junction_cap(self.w_um)
    }

    /// Subthreshold-ish leakage current at the corner, amperes. Scales
    /// exponentially with threshold (hot/fast corners leak more) — drives
    /// the DRAM droop and static-power terms.
    pub fn leakage(&self, vdd: f64, corner: &PvtCorner) -> f64 {
        let ut = corner.thermal_voltage();
        // I_leak = I0 · (W/L) · e^{−V_th / (n·U_T)}, n = 1.5.
        let i0 = 1e-6; // A, calibration constant
        i0 * (self.w_um / self.l_um) * (-self.model.vth0 / (1.5 * ut)).exp() * (vdd / 0.9)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use glova_variation::corner::{ProcessCorner, PvtCorner};

    fn typical_transistor() -> SizedTransistor {
        SizedTransistor::new(MosModel::nmos_28nm(), &PvtCorner::typical(), 2.0, 0.03, 0.0, 0.0)
    }

    #[test]
    fn kt_scales_with_temperature() {
        let cold = PvtCorner { temp_c: -40.0, ..PvtCorner::typical() };
        let hot = PvtCorner { temp_c: 80.0, ..PvtCorner::typical() };
        assert!(kt(&hot) > kt(&cold));
        assert!((kt(&PvtCorner::typical()) - 4.14e-21).abs() < 1e-22);
    }

    #[test]
    fn current_increases_with_width() {
        let narrow =
            SizedTransistor::new(MosModel::nmos_28nm(), &PvtCorner::typical(), 1.0, 0.03, 0.0, 0.0);
        let wide =
            SizedTransistor::new(MosModel::nmos_28nm(), &PvtCorner::typical(), 4.0, 0.03, 0.0, 0.0);
        assert!(wide.id_sat(0.9) > 3.9 * narrow.id_sat(0.9));
    }

    #[test]
    fn gm_follows_square_law() {
        let t = typical_transistor();
        let id = 1e-3;
        let gm = t.gm_at(id);
        assert!((gm - (2.0 * t.beta() * id).sqrt()).abs() < 1e-12);
    }

    #[test]
    fn leakage_grows_when_hot_and_fast() {
        let base = MosModel::nmos_28nm();
        let tt = PvtCorner::typical();
        let hot_ff = PvtCorner { process: ProcessCorner::Ff, temp_c: 80.0, ..tt };
        let t_tt = SizedTransistor::new(base, &tt, 2.0, 0.03, 0.0, 0.0);
        let t_ff = SizedTransistor::new(base, &hot_ff, 2.0, 0.03, 0.0, 0.0);
        assert!(
            t_ff.leakage(0.9, &hot_ff) > 5.0 * t_tt.leakage(0.9, &tt),
            "leak {} vs {}",
            t_ff.leakage(0.9, &hot_ff),
            t_tt.leakage(0.9, &tt)
        );
    }

    #[test]
    fn mismatch_view_layout() {
        let h = MismatchVector::from_values(vec![1.0, 2.0, 3.0, 4.0, 5.0]);
        let view = MismatchView::new(&h, 2);
        assert_eq!(view.vth(0), 1.0);
        assert_eq!(view.beta(0), 2.0);
        assert_eq!(view.vth(1), 3.0);
        assert_eq!(view.beta(1), 4.0);
        assert_eq!(view.cap(0), 5.0);
        assert_eq!(view.vth_pair_diff(1, 0), 2.0);
    }

    #[test]
    #[should_panic(expected = "too short")]
    fn mismatch_view_checks_length() {
        let h = MismatchVector::from_values(vec![1.0]);
        MismatchView::new(&h, 2);
    }

    #[test]
    fn cutoff_current_is_zero() {
        let t = typical_transistor();
        assert_eq!(t.id_sat(0.1), 0.0);
    }
}
