//! StrongARM latch (SAL) testcase — paper §VI.A, topology from Razavi's
//! "The StrongARM Latch" (refs \[24\]).
//!
//! 14 design parameters: six transistor widths, six lengths, two
//! capacitances. Metrics and targets (same as PVTSizing \[9\]):
//!
//! | metric       | target    |
//! |--------------|-----------|
//! | power        | ≤ 40 µW   |
//! | set delay    | ≤ 4 ns    |
//! | reset delay  | ≤ 4 ns    |
//! | input noise  | ≤ 120 µV  |
//!
//! The analytic model follows the classic two-phase decomposition:
//! an **integration** phase where the input pair discharges the internal
//! nodes (`t_int = C_X·V_thn / I_half`), then **regeneration** with time
//! constant `τ = C_L/(g_m,regen)` amplifying the initial imbalance
//! `ΔV₀ ∝ g_m1·V_in,eff·t_int/C_L`. Mismatch enters as input-referred
//! offset (differential ΔV_th of the pairs), reducing the effective input;
//! corner/temperature enter through every model card.

use crate::physics::{self, MismatchView, SizedTransistor};
use crate::spec::{DesignSpec, MetricSpec};
use crate::Circuit;
use glova_spice::model::MosModel;
use glova_variation::corner::PvtCorner;
use glova_variation::mismatch::{DeviceSpec, MismatchDomain, PelgromModel};
use glova_variation::sampler::MismatchVector;

/// The StrongARM latch sizing problem.
#[derive(Debug, Clone)]
pub struct StrongArmLatch {
    spec: DesignSpec,
}

/// Transistor roles, indexing into the width/length parameter blocks.
const ROLE_INPUT: usize = 0; // M1: input differential pair (NMOS)
const ROLE_CROSS_N: usize = 1; // M2: cross-coupled NMOS
const ROLE_CROSS_P: usize = 2; // M3: cross-coupled PMOS
const ROLE_TAIL: usize = 3; // M4: clocked tail (NMOS)
const ROLE_PRECHARGE: usize = 4; // M5: precharge (PMOS)
const ROLE_BUFFER: usize = 5; // M6: output buffer (NMOS)

/// Mismatch-vector transistor instance order (pairs are a/b sides).
/// M1a M1b M2a M2b M3a M3b M4 M5a M5b M6a M6b → 11 transistors, then
/// capacitors C1a C1b C2a C2b.
const N_TRANSISTORS: usize = 11;

/// Comparator clock frequency assumed by the power model, Hz.
const F_CLK: f64 = 50e6;
/// Differential input amplitude the latch must resolve, volts.
const V_IN: f64 = 20e-3;
/// Fixed wiring capacitance per output node, farads.
const C_WIRE: f64 = 3e-15;
/// Effective regeneration overdrive for the cross-coupled pairs at the
/// onset of regeneration, volts.
const V_OV_REGEN: f64 = 0.02;

impl StrongArmLatch {
    /// Creates the testcase with the paper's constraint targets.
    pub fn new() -> Self {
        Self {
            spec: DesignSpec::new(vec![
                MetricSpec::below("power_uw", 40.0),
                MetricSpec::below("set_delay_ns", 4.0),
                MetricSpec::below("reset_delay_ns", 4.0),
                MetricSpec::below("noise_uv", 120.0),
            ]),
        }
    }

    /// A hand-calibrated feasible design (normalized), used as a
    /// documentation example and test baseline.
    pub fn reference_design(&self) -> Vec<f64> {
        let phys = [
            16.0, 8.0, 8.0, 0.6, 8.0, 2.0, // widths µm (tail kept weak on purpose)
            0.05, 0.05, 0.05, 0.30, 0.05, 0.05, // lengths µm
            20e-15, 100e-15, // C1, C2 F
        ];
        normalize(&phys)
    }

    fn unpack(&self, x_norm: &[f64]) -> Params {
        assert_eq!(x_norm.len(), self.dim(), "design vector dimension mismatch");
        let p = self.denormalize(x_norm);
        Params {
            w: [p[0], p[1], p[2], p[3], p[4], p[5]],
            l: [p[6], p[7], p[8], p[9], p[10], p[11]],
            c1: p[12],
            c2: p[13],
        }
    }
}

impl Default for StrongArmLatch {
    fn default() -> Self {
        Self::new()
    }
}

struct Params {
    w: [f64; 6],
    l: [f64; 6],
    c1: f64,
    c2: f64,
}

/// Width bounds µm (paper), length bounds µm, capacitance bounds F.
const W_BOUNDS: (f64, f64) = (0.28, 32.8);
const L_BOUNDS: (f64, f64) = (0.03, 0.33);
const C_BOUNDS: (f64, f64) = (0.005e-12, 5.5e-12);

fn bounds() -> Vec<(f64, f64)> {
    let mut b = vec![W_BOUNDS; 6];
    b.extend(vec![L_BOUNDS; 6]);
    b.extend(vec![C_BOUNDS; 2]);
    b
}

/// Capacitances span three decades; they are mapped log-uniformly so the
/// optimizer sees the decades evenly (standard practice in sizing tools).
fn denormalize_impl(x_norm: &[f64]) -> Vec<f64> {
    bounds()
        .iter()
        .enumerate()
        .zip(x_norm)
        .map(|((i, &(lo, hi)), &u)| {
            let u = u.clamp(0.0, 1.0);
            if i >= 12 {
                (lo.ln() + (hi.ln() - lo.ln()) * u).exp()
            } else {
                lo + (hi - lo) * u
            }
        })
        .collect()
}

fn normalize(phys: &[f64]) -> Vec<f64> {
    bounds()
        .iter()
        .enumerate()
        .zip(phys)
        .map(|((i, &(lo, hi)), &v)| {
            if i >= 12 {
                ((v.ln() - lo.ln()) / (hi.ln() - lo.ln())).clamp(0.0, 1.0)
            } else {
                ((v - lo) / (hi - lo)).clamp(0.0, 1.0)
            }
        })
        .collect()
}

impl Circuit for StrongArmLatch {
    fn name(&self) -> &str {
        "SAL"
    }

    fn dim(&self) -> usize {
        14
    }

    fn bounds(&self) -> Vec<(f64, f64)> {
        bounds()
    }

    fn parameter_names(&self) -> Vec<String> {
        let mut names: Vec<String> = (1..=6).map(|i| format!("w{i}_um")).collect();
        names.extend((1..=6).map(|i| format!("l{i}_um")));
        names.push("c1_f".into());
        names.push("c2_f".into());
        names
    }

    fn spec(&self) -> &DesignSpec {
        &self.spec
    }

    fn denormalize(&self, x_norm: &[f64]) -> Vec<f64> {
        assert_eq!(x_norm.len(), self.dim(), "design vector dimension mismatch");
        denormalize_impl(x_norm)
    }

    fn mismatch_domain(&self, x_norm: &[f64]) -> MismatchDomain {
        let p = self.unpack(x_norm);
        let mut devices = Vec::with_capacity(N_TRANSISTORS + 4);
        let pair_roles = [(ROLE_INPUT, "m1"), (ROLE_CROSS_N, "m2"), (ROLE_CROSS_P, "m3")];
        for (role, name) in pair_roles {
            for side in ["a", "b"] {
                let spec = if role == ROLE_CROSS_P {
                    DeviceSpec::pmos(format!("{name}{side}"), p.w[role], p.l[role])
                } else {
                    DeviceSpec::nmos(format!("{name}{side}"), p.w[role], p.l[role])
                };
                devices.push(spec);
            }
        }
        devices.push(DeviceSpec::nmos("m4", p.w[ROLE_TAIL], p.l[ROLE_TAIL]));
        for side in ["a", "b"] {
            devices.push(DeviceSpec::pmos(
                format!("m5{side}"),
                p.w[ROLE_PRECHARGE],
                p.l[ROLE_PRECHARGE],
            ));
        }
        for side in ["a", "b"] {
            devices.push(DeviceSpec::nmos(format!("m6{side}"), p.w[ROLE_BUFFER], p.l[ROLE_BUFFER]));
        }
        devices.push(DeviceSpec::capacitor("c1a", p.c1));
        devices.push(DeviceSpec::capacitor("c1b", p.c1));
        devices.push(DeviceSpec::capacitor("c2a", p.c2));
        devices.push(DeviceSpec::capacitor("c2b", p.c2));
        MismatchDomain::new(devices, PelgromModel::cmos28())
    }

    fn evaluate(&self, x_norm: &[f64], corner: &PvtCorner, mismatch: &MismatchVector) -> Vec<f64> {
        let p = self.unpack(x_norm);
        let h = MismatchView::new(mismatch, N_TRANSISTORS);
        let vdd = corner.vdd;
        let nmos = MosModel::nmos_28nm();
        let pmos = MosModel::pmos_28nm();

        // Instance indices in the mismatch layout.
        let (m1a, m1b, m2a, m2b, m3a, m3b, m4, m5a, m5b, m6a, _m6b) =
            (0, 1, 2, 3, 4, 5, 6, 7, 8, 9, 10);

        // --- bias: clocked tail current -----------------------------------
        let tail = SizedTransistor::new(
            nmos,
            corner,
            p.w[ROLE_TAIL],
            p.l[ROLE_TAIL],
            h.vth(m4),
            h.beta(m4),
        );
        let i_tail = tail.id_sat(vdd).max(1e-9);
        let i_half = 0.5 * i_tail;

        // --- input pair (side-averaged for bias, differential for offset) -
        let in_a = SizedTransistor::new(
            nmos,
            corner,
            p.w[ROLE_INPUT],
            p.l[ROLE_INPUT],
            h.vth(m1a),
            h.beta(m1a),
        );
        let in_b = SizedTransistor::new(
            nmos,
            corner,
            p.w[ROLE_INPUT],
            p.l[ROLE_INPUT],
            h.vth(m1b),
            h.beta(m1b),
        );
        let gm1 = 0.5 * (in_a.gm_at(i_half) + in_b.gm_at(i_half));

        // --- cross-coupled devices ----------------------------------------
        let cross_n = SizedTransistor::new(
            nmos,
            corner,
            p.w[ROLE_CROSS_N],
            p.l[ROLE_CROSS_N],
            0.5 * (h.vth(m2a) + h.vth(m2b)),
            0.5 * (h.beta(m2a) + h.beta(m2b)),
        );
        let cross_p = SizedTransistor::new(
            pmos,
            corner,
            p.w[ROLE_CROSS_P],
            p.l[ROLE_CROSS_P],
            0.5 * (h.vth(m3a) + h.vth(m3b)),
            0.5 * (h.beta(m3a) + h.beta(m3b)),
        );

        // --- node capacitances (per side, with capacitor mismatch) --------
        let c1_eff = p.c1 * (1.0 + 0.5 * (h.cap(0) + h.cap(1)));
        let c2_eff = p.c2 * (1.0 + 0.5 * (h.cap(2) + h.cap(3)));
        let cx = c2_eff
            + cross_n.cgg()
            + physics::junction_cap(p.w[ROLE_INPUT])
            + physics::junction_cap(p.w[ROLE_CROSS_N]);
        let cl = c1_eff
            + cross_n.cgg()
            + cross_p.cgg()
            + physics::junction_cap(p.w[ROLE_CROSS_N])
            + physics::junction_cap(p.w[ROLE_CROSS_P])
            + physics::junction_cap(p.w[ROLE_PRECHARGE])
            + physics::gate_cap(p.w[ROLE_BUFFER], p.l[ROLE_BUFFER])
            + C_WIRE;

        // --- integration phase --------------------------------------------
        let t_int = (cx * cross_n.vth() / i_half).max(1e-13);

        // --- input-referred offset (differential mismatch) -----------------
        let gm2 = cross_n.gm_at(i_half);
        let gm3 = cross_p.gm_at(i_half);
        let vov1 = (2.0 * i_half / in_a.beta().max(1e-12)).sqrt();
        let v_os = h.vth_pair_diff(m1a, m1b)
            + (gm2 / gm1.max(1e-9)) * h.vth_pair_diff(m2a, m2b)
            + 0.5 * (gm3 / gm1.max(1e-9)) * h.vth_pair_diff(m3a, m3b)
            + 0.5 * vov1 * h.beta_pair_diff(m1a, m1b)
            + 0.05 * vdd * (h.cap(0) - h.cap(1));

        // --- set delay: integration + regeneration -------------------------
        let v_eff = (V_IN - v_os.abs()).max(V_IN / 100.0);
        let dv0 = (gm1 * v_eff * t_int / cl).clamp(1e-6, 0.5 * vdd);
        let gm_regen = (cross_n.beta() + cross_p.beta()) * V_OV_REGEN;
        let tau = cl / gm_regen.max(1e-9);
        // Offsets approaching the input amplitude push the latch toward
        // (deep) metastability: the differential at regeneration onset
        // shrinks and the recovery multiplies the regeneration time — the
        // smooth delay blow-up HSPICE shows near the metastable point.
        // Escalation starts at half the input amplitude so the worst-of-N'
        // sampling sees a graded (not cliff-like) response.
        let v_deficit = (v_os.abs() / V_IN - 0.5).max(0.0);
        let meta_penalty = 1.0 + 4.0 * v_deficit * v_deficit;
        let t_regen = tau * (0.5 * vdd / dv0).ln().max(0.0) * meta_penalty;
        let set_delay = t_int + t_regen;

        // --- reset delay: precharge PMOS restores X and outputs ------------
        let pre = SizedTransistor::new(
            pmos,
            corner,
            p.w[ROLE_PRECHARGE],
            p.l[ROLE_PRECHARGE],
            0.5 * (h.vth(m5a) + h.vth(m5b)),
            0.5 * (h.beta(m5a) + h.beta(m5b)),
        );
        let i_pre = pre.id_sat(vdd).max(1e-9);
        let reset_delay = 0.8 * (cx + cl) * vdd / (0.7 * i_pre);

        // --- power: dynamic + integration charge + leakage -----------------
        let c_clk = tail.cgg() + 2.0 * pre.cgg();
        let q_int = i_tail * (t_int + t_regen).min(4.0 * t_int);
        let buffer = SizedTransistor::new(
            nmos,
            corner,
            p.w[ROLE_BUFFER],
            p.l[ROLE_BUFFER],
            h.vth(m6a),
            h.beta(m6a),
        );
        let leak = tail.leakage(vdd, corner) + buffer.leakage(vdd, corner);
        let power = F_CLK * (vdd * vdd * (2.0 * cx + 2.0 * cl + c_clk) + q_int * vdd) + leak * vdd;

        // --- input-referred noise ------------------------------------------
        // Half-circuit channel noise referred to the differential input:
        // 2kTγ/(g_m1·t_int) with a cross-pair excess term, plus the output
        // kT/C noise divided by the integration gain.
        let kt = physics::kt(corner);
        let g_out = (gm1 * t_int / cl).max(1e-3);
        let vn2 = 2.0 * kt * physics::GAMMA_NOISE / (gm1 * t_int).max(1e-18)
            * (1.0 + 0.3 * (gm2 + gm3) / gm1.max(1e-9))
            + kt / cl.max(1e-18) / (g_out * g_out);
        let noise = vn2.sqrt();

        vec![power * 1e6, set_delay * 1e9, reset_delay * 1e9, noise * 1e6]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use glova_variation::corner::CornerSet;
    use proptest::prelude::*;

    fn nominal(circuit: &StrongArmLatch, x: &[f64]) -> MismatchVector {
        MismatchVector::nominal(circuit.mismatch_domain(x).dim())
    }

    #[test]
    fn reference_design_is_feasible_at_typical() {
        let sal = StrongArmLatch::new();
        let x = sal.reference_design();
        let metrics = sal.evaluate(&x, &PvtCorner::typical(), &nominal(&sal, &x));
        assert!(
            sal.spec().satisfied(&metrics),
            "reference design infeasible: {metrics:?} vs {:?}",
            sal.spec().metrics().iter().map(|m| m.limit).collect::<Vec<_>>()
        );
    }

    #[test]
    fn reference_design_is_feasible_at_all_corners() {
        let sal = StrongArmLatch::new();
        let x = sal.reference_design();
        let h = nominal(&sal, &x);
        for corner in CornerSet::industrial_30().iter() {
            let metrics = sal.evaluate(&x, corner, &h);
            assert!(
                sal.spec().satisfied(&metrics),
                "reference infeasible at {corner}: {metrics:?}"
            );
        }
    }

    #[test]
    fn minimum_sizes_violate_noise() {
        // A minimum-size latch has tiny gm·t_int: noise must blow past
        // 120 µV.
        let sal = StrongArmLatch::new();
        let x = vec![0.0; 14];
        let metrics = sal.evaluate(&x, &PvtCorner::typical(), &nominal(&sal, &x));
        assert!(metrics[3] > 120.0, "expected noise failure, got {metrics:?}");
    }

    #[test]
    fn huge_caps_violate_power() {
        let sal = StrongArmLatch::new();
        let mut x = sal.reference_design();
        x[12] = 1.0; // C1 → 5.5 pF
        x[13] = 1.0; // C2 → 5.5 pF
        let metrics = sal.evaluate(&x, &PvtCorner::typical(), &nominal(&sal, &x));
        assert!(metrics[0] > 40.0, "expected power failure, got {metrics:?}");
    }

    #[test]
    fn ss_cold_low_v_is_slowest_corner_family() {
        let sal = StrongArmLatch::new();
        let x = sal.reference_design();
        let h = nominal(&sal, &x);
        let fast = PvtCorner {
            process: glova_variation::corner::ProcessCorner::Ff,
            vdd: 0.9,
            temp_c: 27.0,
        };
        let slow = PvtCorner {
            process: glova_variation::corner::ProcessCorner::Ss,
            vdd: 0.8,
            temp_c: -40.0,
        };
        let m_fast = sal.evaluate(&x, &fast, &h);
        let m_slow = sal.evaluate(&x, &slow, &h);
        assert!(m_slow[1] > m_fast[1], "set delay must degrade at SS/0.8V/−40C");
        assert!(m_slow[2] > m_fast[2], "reset delay must degrade at SS/0.8V/−40C");
    }

    #[test]
    fn offset_mismatch_increases_set_delay() {
        let sal = StrongArmLatch::new();
        let x = sal.reference_design();
        let dim = sal.mismatch_domain(&x).dim();
        let mut values = vec![0.0; dim];
        values[0] = 0.012; // +12 mV on M1a ΔVth → large differential offset
        let with_offset = MismatchVector::from_values(values);
        let base = sal.evaluate(&x, &PvtCorner::typical(), &MismatchVector::nominal(dim));
        let off = sal.evaluate(&x, &PvtCorner::typical(), &with_offset);
        assert!(off[1] > base[1], "offset must slow the latch: {} vs {}", off[1], base[1]);
    }

    #[test]
    fn global_shift_cancels_in_offset_unlike_differential_shift() {
        // Identical ΔVth on every transistor (pure global/die shift) cancels
        // in the differential offset: set delay moves only through bias. A
        // differential shift of the same magnitude on one input device does
        // not cancel and must slow the latch much more.
        let sal = StrongArmLatch::new();
        let x = sal.reference_design();
        let dim = sal.mismatch_domain(&x).dim();
        let mut global = vec![0.0; dim];
        for t in 0..N_TRANSISTORS {
            global[2 * t] = 0.025;
        }
        let mut differential = vec![0.0; dim];
        differential[0] = 0.025; // only M1a — past the metastability onset
        let base = sal.evaluate(&x, &PvtCorner::typical(), &MismatchVector::nominal(dim))[1];
        let glob = sal.evaluate(&x, &PvtCorner::typical(), &MismatchVector::from_values(global))[1];
        let diff =
            sal.evaluate(&x, &PvtCorner::typical(), &MismatchVector::from_values(differential))[1];
        assert!(glob < 1.5 * base, "global shift must not blow up delay: {glob} vs {base}");
        assert!(diff > glob, "differential offset must hurt more: {diff} vs {glob}");
    }

    #[test]
    fn wider_input_pair_lowers_noise() {
        let sal = StrongArmLatch::new();
        let mut x = sal.reference_design();
        let h = nominal(&sal, &x);
        let base = sal.evaluate(&x, &PvtCorner::typical(), &h)[3];
        x[0] = (x[0] + 0.2).min(1.0); // widen W1
        let wide = sal.evaluate(&x, &PvtCorner::typical(), &nominal(&sal, &x))[3];
        assert!(wide < base, "noise should improve with wider input pair");
    }

    #[test]
    fn mismatch_domain_dimension() {
        let sal = StrongArmLatch::new();
        let x = sal.reference_design();
        assert_eq!(sal.mismatch_domain(&x).dim(), 2 * N_TRANSISTORS + 4);
    }

    #[test]
    fn denormalize_roundtrip_on_reference() {
        let sal = StrongArmLatch::new();
        let x = sal.reference_design();
        let phys = sal.denormalize(&x);
        assert!((phys[0] - 16.0).abs() < 1e-9);
        assert!((phys[9] - 0.30).abs() < 1e-9);
        assert!((phys[12] - 20e-15).abs() < 1e-18);
    }

    proptest! {
        #[test]
        fn prop_metrics_finite_positive_everywhere(
            x in proptest::collection::vec(0.0f64..1.0, 14),
            corner_idx in 0usize..30,
        ) {
            let sal = StrongArmLatch::new();
            let corner = CornerSet::industrial_30().corner(corner_idx);
            let h = MismatchVector::nominal(sal.mismatch_domain(&x).dim());
            let metrics = sal.evaluate(&x, &corner, &h);
            for m in &metrics {
                prop_assert!(m.is_finite() && *m > 0.0, "bad metric {m} in {metrics:?}");
            }
        }
    }
}
