//! A synthetic circuit for fast, deterministic tests of the optimization
//! and verification stacks.
//!
//! `ToyQuadratic` has one metric: the squared distance to a known optimum,
//! plus corner-dependent and mismatch-dependent penalties. The feasible set
//! is a ball whose radius is known analytically, so tests can assert exact
//! behaviours (e.g. "µ-σ must reject this design") without circuit-model
//! noise.

use crate::spec::{DesignSpec, MetricSpec};
use crate::Circuit;
use glova_variation::corner::PvtCorner;
use glova_variation::mismatch::{DeviceSpec, MismatchDomain, PelgromModel};
use glova_variation::sampler::MismatchVector;

/// A `p`-dimensional quadratic-bowl testcase.
///
/// Metric: `m(x|t,h) = ‖x − x*‖² + corner_penalty(t) + Σh` with target
/// `m ≤ limit`. The optimum `x*` and the limit are configurable.
#[derive(Debug, Clone)]
pub struct ToyQuadratic {
    optimum: Vec<f64>,
    spec: DesignSpec,
    corner_sensitivity: f64,
    mismatch_sensitivity: f64,
}

impl ToyQuadratic {
    /// Creates a toy problem with optimum at `optimum` (normalized
    /// coordinates) and feasibility threshold `limit`.
    ///
    /// # Panics
    ///
    /// Panics if `optimum` is empty or `limit <= 0`.
    pub fn new(optimum: Vec<f64>, limit: f64) -> Self {
        assert!(!optimum.is_empty(), "optimum must be non-empty");
        assert!(limit > 0.0, "limit must be positive");
        // Worst-corner penalty (SS / 0.8 V / −40 °C) is ≈ 2.56 × the
        // sensitivity; the default keeps the optimum feasible at every
        // corner of the standard instance (limit 0.05).
        Self {
            optimum,
            spec: DesignSpec::new(vec![MetricSpec::below("distance_sq", limit)]),
            corner_sensitivity: 0.01,
            mismatch_sensitivity: 1.0,
        }
    }

    /// Default 4-dimensional instance: optimum at `(0.7, 0.3, 0.5, 0.6)`,
    /// limit `0.05`.
    pub fn standard() -> Self {
        Self::new(vec![0.7, 0.3, 0.5, 0.6], 0.05)
    }

    /// Overrides the corner-penalty scale (builder style).
    pub fn with_corner_sensitivity(mut self, s: f64) -> Self {
        self.corner_sensitivity = s;
        self
    }

    /// Overrides the mismatch-penalty scale (builder style).
    pub fn with_mismatch_sensitivity(mut self, s: f64) -> Self {
        self.mismatch_sensitivity = s;
        self
    }

    /// The known optimum (normalized).
    pub fn optimum(&self) -> &[f64] {
        &self.optimum
    }
}

impl Circuit for ToyQuadratic {
    fn name(&self) -> &str {
        "TOY"
    }

    fn dim(&self) -> usize {
        self.optimum.len()
    }

    fn bounds(&self) -> Vec<(f64, f64)> {
        vec![(0.0, 1.0); self.optimum.len()]
    }

    fn parameter_names(&self) -> Vec<String> {
        (0..self.dim()).map(|i| format!("x{i}")).collect()
    }

    fn spec(&self) -> &DesignSpec {
        &self.spec
    }

    fn mismatch_domain(&self, _x_norm: &[f64]) -> MismatchDomain {
        // Two pseudo-devices give a 4-dimensional mismatch vector with
        // realistic sigma scales.
        MismatchDomain::new(
            vec![DeviceSpec::nmos("t0", 1.0, 0.1), DeviceSpec::nmos("t1", 1.0, 0.1)],
            PelgromModel::cmos28(),
        )
    }

    fn evaluate(&self, x_norm: &[f64], corner: &PvtCorner, mismatch: &MismatchVector) -> Vec<f64> {
        assert_eq!(x_norm.len(), self.dim(), "design vector dimension mismatch");
        let dist2: f64 = x_norm.iter().zip(&self.optimum).map(|(x, o)| (x - o) * (x - o)).sum();
        // Corner penalty: worst at SS / low V / cold.
        let corner_penalty = self.corner_sensitivity
            * ((0.9 - corner.vdd) / 0.1 - corner.process.nmos_skew()
                + (27.0 - corner.temp_c) / 120.0)
                .max(0.0);
        // Mismatch penalty: |Σ h| scaled (components are ~mV scale).
        let mism: f64 = mismatch.values().iter().sum::<f64>().abs();
        let value = dist2 + corner_penalty + self.mismatch_sensitivity * mism;
        vec![value]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use glova_variation::corner::{CornerSet, ProcessCorner};

    #[test]
    fn optimum_is_feasible() {
        let toy = ToyQuadratic::standard();
        let x = toy.optimum().to_vec();
        let h = MismatchVector::nominal(toy.mismatch_domain(&x).dim());
        let m = toy.evaluate(&x, &PvtCorner::typical(), &h);
        assert!(toy.spec().satisfied(&m));
        assert!(m[0] < 0.05);
    }

    #[test]
    fn far_point_is_infeasible() {
        let toy = ToyQuadratic::standard();
        let x = vec![0.0; 4];
        let h = MismatchVector::nominal(toy.mismatch_domain(&x).dim());
        let m = toy.evaluate(&x, &PvtCorner::typical(), &h);
        assert!(!toy.spec().satisfied(&m));
    }

    #[test]
    fn worst_corner_is_ss_low_v_cold() {
        let toy = ToyQuadratic::standard();
        let x = toy.optimum().to_vec();
        let h = MismatchVector::nominal(toy.mismatch_domain(&x).dim());
        let worst = PvtCorner { process: ProcessCorner::Ss, vdd: 0.8, temp_c: -40.0 };
        let m_typ = toy.evaluate(&x, &PvtCorner::typical(), &h)[0];
        let m_worst = toy.evaluate(&x, &worst, &h)[0];
        assert!(m_worst > m_typ);
        // And it is the maximum across the full set.
        let max = CornerSet::industrial_30()
            .iter()
            .map(|c| toy.evaluate(&x, c, &h)[0])
            .fold(f64::NEG_INFINITY, f64::max);
        assert!((max - m_worst).abs() < 1e-12);
    }

    #[test]
    fn mismatch_shifts_metric() {
        let toy = ToyQuadratic::standard();
        let x = toy.optimum().to_vec();
        let dim = toy.mismatch_domain(&x).dim();
        let h = MismatchVector::from_values(vec![0.02; dim]);
        let base = toy.evaluate(&x, &PvtCorner::typical(), &MismatchVector::nominal(dim))[0];
        let shifted = toy.evaluate(&x, &PvtCorner::typical(), &h)[0];
        assert!(shifted > base);
    }

    #[test]
    #[should_panic(expected = "limit must be positive")]
    fn zero_limit_panics() {
        ToyQuadratic::new(vec![0.5], 0.0);
    }
}
