//! Floating inverter amplifier (FIA) testcase — paper §VI.A, topology from
//! Tang et al., "An Energy-Efficient Comparator with Dynamic Floating
//! Inverter Amplifier" (ref \[25\]).
//!
//! 6 design parameters: NMOS/PMOS widths, NMOS/PMOS lengths, reservoir and
//! load capacitances. Metrics and targets (technology-scaled per \[9\]):
//!
//! | metric                | target    |
//! |-----------------------|-----------|
//! | energy per conversion | ≤ 0.1 pJ  |
//! | output noise          | ≤ 130 mV  |
//!
//! The FIA is a dynamic preamplifier: a floating charge reservoir `C_RES`
//! powers an inverter pair for an amplification window `t_amp`, producing
//! gain `G = (g_mn+g_mp)·t_amp / C_L`. Energy is the reservoir recharge
//! per conversion; output-referred noise combines integrated channel noise
//! with amplified residual offset (the pair's differential ΔV_th), so local
//! mismatch directly attacks the noise budget — the mechanism that makes the
//! FIA harder than the SAL under MC verification.

use crate::physics::{self, MismatchView, SizedTransistor};
use crate::spec::{DesignSpec, MetricSpec};
use crate::Circuit;
use glova_spice::model::MosModel;
use glova_variation::corner::PvtCorner;
use glova_variation::mismatch::{DeviceSpec, MismatchDomain, PelgromModel};
use glova_variation::sampler::MismatchVector;

/// The floating inverter amplifier sizing problem.
#[derive(Debug, Clone)]
pub struct FloatingInverterAmp {
    spec: DesignSpec,
}

/// Mismatch layout: Na Nb Pa Pb (4 transistors), then C_RES, C_La, C_Lb.
const N_TRANSISTORS: usize = 4;

/// Fraction of `V_DD` the reservoir droops during amplification.
const RESERVOIR_DROOP: f64 = 0.2;
/// Fixed comparator-input wiring capacitance per side, farads.
const C_WIRE: f64 = 2e-15;
/// Fraction of the amplified offset that reaches the output as error.
const OFFSET_GAIN_FACTOR: f64 = 0.3;
/// Effective gate drive during amplification as a fraction of `V_DD` —
/// the inverter inputs start from the rails, not the trip point.
const DRIVE_FRACTION: f64 = 0.75;
/// The amplification window is bounded by the comparator clock phase.
const T_AMP_MAX: f64 = 2e-9;
/// Below this gain the preamplifier no longer overdrives the latch: the
/// decision is noise-dominated (modeled as an output-noise penalty).
const GAIN_MIN: f64 = 3.0;

const W_BOUNDS: (f64, f64) = (0.28, 32.8);
const L_BOUNDS: (f64, f64) = (0.03, 0.33);
const C_BOUNDS: (f64, f64) = (0.005e-12, 5.5e-12);

impl FloatingInverterAmp {
    /// Creates the testcase with the paper's constraint targets.
    pub fn new() -> Self {
        Self {
            spec: DesignSpec::new(vec![
                MetricSpec::below("energy_pj", 0.1),
                MetricSpec::below("noise_mv", 130.0),
            ]),
        }
    }

    /// A hand-calibrated feasible design (normalized).
    pub fn reference_design(&self) -> Vec<f64> {
        normalize(&[6.0, 12.0, 0.12, 0.12, 0.05e-12, 0.01e-12])
    }

    fn unpack(&self, x_norm: &[f64]) -> (f64, f64, f64, f64, f64, f64) {
        assert_eq!(x_norm.len(), self.dim(), "design vector dimension mismatch");
        let p = self.denormalize(x_norm);
        (p[0], p[1], p[2], p[3], p[4], p[5])
    }
}

impl Default for FloatingInverterAmp {
    fn default() -> Self {
        Self::new()
    }
}

fn bounds() -> Vec<(f64, f64)> {
    vec![W_BOUNDS, W_BOUNDS, L_BOUNDS, L_BOUNDS, C_BOUNDS, C_BOUNDS]
}

fn denormalize_impl(x_norm: &[f64]) -> Vec<f64> {
    bounds()
        .iter()
        .enumerate()
        .zip(x_norm)
        .map(|((i, &(lo, hi)), &u)| {
            let u = u.clamp(0.0, 1.0);
            if i >= 4 {
                (lo.ln() + (hi.ln() - lo.ln()) * u).exp()
            } else {
                lo + (hi - lo) * u
            }
        })
        .collect()
}

fn normalize(phys: &[f64]) -> Vec<f64> {
    bounds()
        .iter()
        .enumerate()
        .zip(phys)
        .map(|((i, &(lo, hi)), &v)| {
            if i >= 4 {
                ((v.ln() - lo.ln()) / (hi.ln() - lo.ln())).clamp(0.0, 1.0)
            } else {
                ((v - lo) / (hi - lo)).clamp(0.0, 1.0)
            }
        })
        .collect()
}

impl Circuit for FloatingInverterAmp {
    fn name(&self) -> &str {
        "FIA"
    }

    fn dim(&self) -> usize {
        6
    }

    fn bounds(&self) -> Vec<(f64, f64)> {
        bounds()
    }

    fn parameter_names(&self) -> Vec<String> {
        vec![
            "wn_um".into(),
            "wp_um".into(),
            "ln_um".into(),
            "lp_um".into(),
            "cres_f".into(),
            "cl_f".into(),
        ]
    }

    fn spec(&self) -> &DesignSpec {
        &self.spec
    }

    fn denormalize(&self, x_norm: &[f64]) -> Vec<f64> {
        assert_eq!(x_norm.len(), self.dim(), "design vector dimension mismatch");
        denormalize_impl(x_norm)
    }

    fn mismatch_domain(&self, x_norm: &[f64]) -> MismatchDomain {
        let (wn, wp, ln_, lp, cres, cl) = self.unpack(x_norm);
        MismatchDomain::new(
            vec![
                DeviceSpec::nmos("mna", wn, ln_),
                DeviceSpec::nmos("mnb", wn, ln_),
                DeviceSpec::pmos("mpa", wp, lp),
                DeviceSpec::pmos("mpb", wp, lp),
                DeviceSpec::capacitor("cres", cres),
                DeviceSpec::capacitor("cla", cl),
                DeviceSpec::capacitor("clb", cl),
            ],
            PelgromModel::cmos28(),
        )
    }

    fn evaluate(&self, x_norm: &[f64], corner: &PvtCorner, mismatch: &MismatchVector) -> Vec<f64> {
        let (wn, wp, ln_, lp, cres, cl) = self.unpack(x_norm);
        let h = MismatchView::new(mismatch, N_TRANSISTORS);
        let vdd = corner.vdd;
        let (na, nb, pa, pb) = (0, 1, 2, 3);

        // Side-averaged cards for bias, differential for offset.
        let n_avg = SizedTransistor::new(
            MosModel::nmos_28nm(),
            corner,
            wn,
            ln_,
            0.5 * (h.vth(na) + h.vth(nb)),
            0.5 * (h.beta(na) + h.beta(nb)),
        );
        let p_avg = SizedTransistor::new(
            MosModel::pmos_28nm(),
            corner,
            wp,
            lp,
            0.5 * (h.vth(pa) + h.vth(pb)),
            0.5 * (h.beta(pa) + h.beta(pb)),
        );

        // The inverter inputs launch from the rails: effective drive is a
        // large fraction of V_DD, so the stage stays on even at the slow
        // cold/low-voltage corners.
        let i_n = n_avg.id_sat(DRIVE_FRACTION * vdd);
        let i_p = p_avg.id_sat(DRIVE_FRACTION * vdd);
        let i_inv = (0.5 * (i_n + i_p)).max(1e-9);
        let gm_n = n_avg.gm_at(i_inv);
        let gm_p = p_avg.gm_at(i_inv);
        let gm = gm_n + gm_p;

        // Effective capacitances with mismatch.
        let cres_eff = cres * (1.0 + h.cap(0));
        let cl_eff = cl * (1.0 + 0.5 * (h.cap(1) + h.cap(2))) + n_avg.cdd() + p_avg.cdd() + C_WIRE;

        // Amplification window: reservoir droops by RESERVOIR_DROOP·VDD
        // while supplying both sides (2·i_inv), bounded by the clock phase.
        let t_amp = (cres_eff * RESERVOIR_DROOP * vdd / (2.0 * i_inv)).clamp(1e-13, T_AMP_MAX);
        let gain = (gm * t_amp / cl_eff).max(0.1);

        // Energy per conversion: reservoir recharge + parasitic swing.
        let c_par = 2.0 * (n_avg.cgg() + p_avg.cgg()) + 2.0 * cl_eff;
        let energy = (cres_eff * RESERVOIR_DROOP + 0.25 * c_par) * vdd * vdd;

        // Output noise: integrated channel noise amplified onto C_L plus
        // amplified residual offset.
        let kt = physics::kt(corner);
        let qn2 = 4.0 * kt * physics::GAMMA_NOISE * gm * t_amp;
        let vn_thermal = qn2.sqrt() / cl_eff.max(1e-18);
        let v_os = h.vth_pair_diff(na, nb)
            + (gm_p / gm.max(1e-12)) * h.vth_pair_diff(pa, pb)
            + 0.05 * vdd * (h.cap(1) - h.cap(2));
        // Insufficient preamp gain leaves the latch decision
        // noise-dominated: penalize as equivalent output noise.
        let undergain_penalty = 0.05 * (GAIN_MIN - gain).max(0.0);
        let vn_total = vn_thermal + OFFSET_GAIN_FACTOR * v_os.abs() * gain + undergain_penalty;

        vec![energy * 1e12, vn_total * 1e3]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use glova_variation::corner::CornerSet;
    use proptest::prelude::*;

    fn nominal(c: &FloatingInverterAmp, x: &[f64]) -> MismatchVector {
        MismatchVector::nominal(c.mismatch_domain(x).dim())
    }

    #[test]
    fn reference_design_feasible_at_all_corners() {
        let fia = FloatingInverterAmp::new();
        let x = fia.reference_design();
        let h = nominal(&fia, &x);
        for corner in CornerSet::industrial_30().iter() {
            let metrics = fia.evaluate(&x, corner, &h);
            assert!(
                fia.spec().satisfied(&metrics),
                "reference infeasible at {corner}: {metrics:?}"
            );
        }
    }

    #[test]
    fn huge_reservoir_violates_energy() {
        let fia = FloatingInverterAmp::new();
        let mut x = fia.reference_design();
        x[4] = 1.0; // C_RES → 5.5 pF
        let metrics = fia.evaluate(&x, &PvtCorner::typical(), &nominal(&fia, &x));
        assert!(metrics[0] > 0.1, "expected energy failure: {metrics:?}");
    }

    #[test]
    fn offset_mismatch_raises_noise() {
        let fia = FloatingInverterAmp::new();
        let x = fia.reference_design();
        let dim = fia.mismatch_domain(&x).dim();
        let mut values = vec![0.0; dim];
        values[0] = 0.010; // 10 mV on one NMOS side
        let base = fia.evaluate(&x, &PvtCorner::typical(), &MismatchVector::nominal(dim));
        let off = fia.evaluate(&x, &PvtCorner::typical(), &MismatchVector::from_values(values));
        assert!(off[1] > base[1] * 1.2, "offset must hurt noise: {} vs {}", off[1], base[1]);
    }

    #[test]
    fn global_vth_shift_cancels_in_offset() {
        let fia = FloatingInverterAmp::new();
        let x = fia.reference_design();
        let dim = fia.mismatch_domain(&x).dim();
        let mut values = vec![0.0; dim];
        for t in 0..N_TRANSISTORS {
            values[2 * t] = 0.02;
        }
        let base = fia.evaluate(&x, &PvtCorner::typical(), &MismatchVector::nominal(dim));
        let glob = fia.evaluate(&x, &PvtCorner::typical(), &MismatchVector::from_values(values));
        // Noise moves only through bias (mild), not through amplified offset.
        assert!(glob[1] < base[1] * 1.6, "global shift should not explode noise");
    }

    #[test]
    fn bigger_devices_reduce_offset_noise_but_cost_energy() {
        let fia = FloatingInverterAmp::new();
        let x_small = normalize(&[2.0, 4.0, 0.06, 0.06, 0.05e-12, 0.01e-12]);
        let x_big = normalize(&[12.0, 24.0, 0.2, 0.2, 0.05e-12, 0.01e-12]);
        // Same differential vth mismatch applied to both.
        let dim = fia.mismatch_domain(&x_small).dim();
        let mut values = vec![0.0; dim];
        values[0] = 0.008;
        let h = MismatchVector::from_values(values);
        let m_small = fia.evaluate(&x_small, &PvtCorner::typical(), &h);
        let m_big = fia.evaluate(&x_big, &PvtCorner::typical(), &h);
        assert!(m_big[0] > m_small[0], "bigger devices must cost energy");
    }

    #[test]
    fn mismatch_domain_dimension() {
        let fia = FloatingInverterAmp::new();
        let x = fia.reference_design();
        assert_eq!(fia.mismatch_domain(&x).dim(), 2 * N_TRANSISTORS + 3);
    }

    proptest! {
        #[test]
        fn prop_metrics_finite_positive(
            x in proptest::collection::vec(0.0f64..1.0, 6),
            corner_idx in 0usize..30,
        ) {
            let fia = FloatingInverterAmp::new();
            let corner = CornerSet::industrial_30().corner(corner_idx);
            let h = MismatchVector::nominal(fia.mismatch_domain(&x).dim());
            let metrics = fia.evaluate(&x, &corner, &h);
            for m in &metrics {
                prop_assert!(m.is_finite() && *m > 0.0);
            }
        }
    }
}
