//! Minimal neural-network substrate for the GLOVA actor and ensemble critic.
//!
//! The paper's agent (Algorithm 1) is DDPG-derived: a 4-layer actor maps the
//! previous design vector to a new one, and an **ensemble** of 4-layer critic
//! base models predicts the worst-case reward. Two requirements shape this
//! crate and rule out a "just matrices" shortcut:
//!
//! 1. The **actor update** differentiates *through the critic*: the loss
//!    `MSE(0.2, Q(A(x)))` needs `∂Q/∂input` at the critic's input, chained
//!    into the actor's parameter gradients. [`Mlp::backward`] therefore
//!    returns the input gradient alongside parameter gradients.
//! 2. The **risk-sensitive aggregation** `Q = E[Q_i] + β₁σ[Q_i]` (paper
//!    Eq. 6) must be differentiated exactly across the ensemble; that
//!    backward pass lives in `glova-rl`, but it relies on the per-model
//!    input gradients exposed here.
//!
//! No deep-learning crate exists in the offline set, so backprop is
//! implemented from scratch and validated against central finite differences
//! in this crate's tests.
//!
//! # Example
//!
//! ```
//! use glova_nn::{Activation, Adam, Mlp, MlpConfig};
//!
//! let mut rng = glova_stats::rng::seeded(0);
//! // Learn y = 2x on [0, 1].
//! let mut net = Mlp::new(&MlpConfig::new(1, &[8, 8], 1, Activation::Tanh), &mut rng);
//! let mut adam = Adam::new(1e-2);
//! for step in 0..400 {
//!     let x = [(step % 10) as f64 / 10.0];
//!     let target = [2.0 * x[0]];
//!     let (out, cache) = net.forward_cached(&x);
//!     let grad_out: Vec<f64> = out.iter().zip(&target).map(|(o, t)| 2.0 * (o - t)).collect();
//!     let (grads, _) = net.backward(&cache, &grad_out);
//!     adam.step(&mut net, &grads);
//! }
//! let pred = net.forward(&[0.35]);
//! assert!((pred[0] - 0.7).abs() < 0.1);
//! ```

pub mod activation;
pub mod init;
pub mod layer;
pub mod loss;
pub mod mlp;
pub mod optimizer;

pub use activation::Activation;
pub use layer::Linear;
pub use loss::{mse, mse_gradient};
pub use mlp::{Gradients, Mlp, MlpCache, MlpConfig};
pub use optimizer::{Adam, Sgd};
