//! Multi-layer perceptrons composed of [`Linear`] layers.

use crate::layer::{LayerCache, LayerGradients};
use crate::{Activation, Linear};
use rand::Rng;

/// Architecture description for an [`Mlp`].
///
/// # Example
///
/// ```
/// use glova_nn::{Activation, MlpConfig};
/// // The paper's 4-layer actor for a 14-parameter design space:
/// let cfg = MlpConfig::new(14, &[64, 64, 64], 14, Activation::Relu)
///     .with_output_activation(Activation::Sigmoid);
/// assert_eq!(cfg.layer_sizes(), vec![(14, 64), (64, 64), (64, 64), (64, 14)]);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct MlpConfig {
    input_dim: usize,
    hidden: Vec<usize>,
    output_dim: usize,
    hidden_activation: Activation,
    output_activation: Activation,
}

impl MlpConfig {
    /// Creates a config with the given hidden widths; the output layer
    /// defaults to [`Activation::Identity`].
    ///
    /// # Panics
    ///
    /// Panics if `input_dim` or `output_dim` is zero.
    pub fn new(
        input_dim: usize,
        hidden: &[usize],
        output_dim: usize,
        hidden_activation: Activation,
    ) -> Self {
        assert!(input_dim > 0, "input_dim must be positive");
        assert!(output_dim > 0, "output_dim must be positive");
        assert!(hidden.iter().all(|&h| h > 0), "hidden widths must be positive");
        Self {
            input_dim,
            hidden: hidden.to_vec(),
            output_dim,
            hidden_activation,
            output_activation: Activation::Identity,
        }
    }

    /// Sets the output activation (builder style).
    pub fn with_output_activation(mut self, activation: Activation) -> Self {
        self.output_activation = activation;
        self
    }

    /// Input dimension.
    pub fn input_dim(&self) -> usize {
        self.input_dim
    }

    /// Output dimension.
    pub fn output_dim(&self) -> usize {
        self.output_dim
    }

    /// `(fan_in, fan_out)` per layer, in order.
    pub fn layer_sizes(&self) -> Vec<(usize, usize)> {
        let mut sizes = Vec::with_capacity(self.hidden.len() + 1);
        let mut prev = self.input_dim;
        for &h in &self.hidden {
            sizes.push((prev, h));
            prev = h;
        }
        sizes.push((prev, self.output_dim));
        sizes
    }
}

/// A feed-forward network.
#[derive(Debug, Clone, PartialEq)]
pub struct Mlp {
    layers: Vec<Linear>,
}

/// Caches from a full forward pass, one entry per layer.
#[derive(Debug, Clone, PartialEq)]
pub struct MlpCache {
    caches: Vec<LayerCache>,
}

/// Parameter gradients for an entire [`Mlp`].
#[derive(Debug, Clone, PartialEq)]
pub struct Gradients {
    layers: Vec<LayerGradients>,
}

impl Gradients {
    /// Zero gradients shaped like `net`.
    pub fn zeros_like(net: &Mlp) -> Self {
        Self {
            layers: net
                .layers
                .iter()
                .map(|l| LayerGradients::zeros(l.fan_in(), l.fan_out()))
                .collect(),
        }
    }

    /// Per-layer gradient list.
    pub fn layers(&self) -> &[LayerGradients] {
        &self.layers
    }

    /// Mutable per-layer gradient list (used by optimizer state buffers).
    pub fn layers_mut(&mut self) -> &mut [LayerGradients] {
        &mut self.layers
    }

    /// In-place `self += other`.
    ///
    /// # Panics
    ///
    /// Panics if shapes differ.
    pub fn accumulate(&mut self, other: &Gradients) {
        assert_eq!(self.layers.len(), other.layers.len(), "gradient layer count mismatch");
        for (a, b) in self.layers.iter_mut().zip(&other.layers) {
            a.accumulate(b);
        }
    }

    /// In-place scaling (e.g. `1/batch`).
    pub fn scale(&mut self, s: f64) {
        for l in &mut self.layers {
            l.scale(s);
        }
    }

    /// Global L2 norm across all parameters — for gradient clipping.
    pub fn global_norm(&self) -> f64 {
        let mut sum = 0.0;
        for l in &self.layers {
            sum += l.weights.iter().map(|g| g * g).sum::<f64>();
            sum += l.biases.iter().map(|g| g * g).sum::<f64>();
        }
        sum.sqrt()
    }

    /// Clips the global norm to `max_norm` (no-op when already below).
    pub fn clip_global_norm(&mut self, max_norm: f64) {
        let norm = self.global_norm();
        if norm > max_norm && norm > 0.0 {
            self.scale(max_norm / norm);
        }
    }
}

impl Mlp {
    /// Builds a freshly initialized network.
    pub fn new<R: Rng + ?Sized>(config: &MlpConfig, rng: &mut R) -> Self {
        let sizes = config.layer_sizes();
        let last = sizes.len() - 1;
        let layers = sizes
            .iter()
            .enumerate()
            .map(|(i, &(fan_in, fan_out))| {
                let act =
                    if i == last { config.output_activation } else { config.hidden_activation };
                Linear::new(fan_in, fan_out, act, rng)
            })
            .collect();
        Self { layers }
    }

    /// Input dimension.
    pub fn input_dim(&self) -> usize {
        self.layers.first().map_or(0, Linear::fan_in)
    }

    /// Output dimension.
    pub fn output_dim(&self) -> usize {
        self.layers.last().map_or(0, Linear::fan_out)
    }

    /// The layers, in order.
    pub fn layers(&self) -> &[Linear] {
        &self.layers
    }

    /// Mutable access to the layers (used by optimizers).
    pub fn layers_mut(&mut self) -> &mut [Linear] {
        &mut self.layers
    }

    /// Total parameter count.
    pub fn param_count(&self) -> usize {
        self.layers.iter().map(|l| l.fan_in() * l.fan_out() + l.fan_out()).sum()
    }

    /// Forward pass.
    pub fn forward(&self, x: &[f64]) -> Vec<f64> {
        let mut h = x.to_vec();
        for layer in &self.layers {
            h = layer.forward(&h);
        }
        h
    }

    /// Forward pass recording per-layer caches for [`Mlp::backward`].
    pub fn forward_cached(&self, x: &[f64]) -> (Vec<f64>, MlpCache) {
        let mut h = x.to_vec();
        let mut caches = Vec::with_capacity(self.layers.len());
        for layer in &self.layers {
            let (out, cache) = layer.forward_cached(&h);
            caches.push(cache);
            h = out;
        }
        (h, MlpCache { caches })
    }

    /// Backward pass from `∂L/∂output`; returns parameter gradients and
    /// `∂L/∂input`.
    ///
    /// The input gradient is what lets the DDPG-style actor update chain
    /// through the critic (see crate docs).
    pub fn backward(&self, cache: &MlpCache, grad_output: &[f64]) -> (Gradients, Vec<f64>) {
        assert_eq!(cache.caches.len(), self.layers.len(), "cache/layer count mismatch");
        let mut grad = grad_output.to_vec();
        let mut layer_grads: Vec<LayerGradients> = Vec::with_capacity(self.layers.len());
        for (layer, layer_cache) in self.layers.iter().zip(&cache.caches).rev() {
            let (g, g_in) = layer.backward(layer_cache, &grad);
            layer_grads.push(g);
            grad = g_in;
        }
        layer_grads.reverse();
        (Gradients { layers: layer_grads }, grad)
    }

    /// Gradient of a scalar-output network with respect to its input.
    ///
    /// # Panics
    ///
    /// Panics if the network output is not 1-dimensional.
    pub fn input_gradient(&self, x: &[f64]) -> Vec<f64> {
        assert_eq!(self.output_dim(), 1, "input_gradient requires a scalar head");
        let (_, cache) = self.forward_cached(x);
        let (_, grad_in) = self.backward(&cache, &[1.0]);
        grad_in
    }

    /// Plain SGD parameter update (optimizers provide fancier rules).
    pub fn apply_gradients(&mut self, grads: &Gradients, lr: f64) {
        assert_eq!(grads.layers.len(), self.layers.len(), "gradient layer count mismatch");
        for (layer, g) in self.layers.iter_mut().zip(&grads.layers) {
            layer.apply_gradients(g, lr);
        }
    }

    /// Soft update `self = τ·source + (1−τ)·self` (DDPG target networks).
    ///
    /// # Panics
    ///
    /// Panics if architectures differ.
    pub fn soft_update_from(&mut self, source: &Mlp, tau: f64) {
        assert_eq!(self.layers.len(), source.layers.len(), "architecture mismatch");
        for (dst, src) in self.layers.iter_mut().zip(&source.layers) {
            let (sw, sb) = src.params();
            let (dw, db) = dst.params_mut();
            assert_eq!(sw.len(), dw.len(), "architecture mismatch");
            for (d, s) in dw.iter_mut().zip(sw) {
                *d = tau * s + (1.0 - tau) * *d;
            }
            for (d, s) in db.iter_mut().zip(sb) {
                *d = tau * s + (1.0 - tau) * *d;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use glova_stats::rng::seeded;
    use proptest::prelude::*;

    fn tiny_net(seed: u64) -> Mlp {
        let mut rng = seeded(seed);
        Mlp::new(&MlpConfig::new(3, &[5, 4], 2, Activation::Tanh), &mut rng)
    }

    #[test]
    fn shapes() {
        let net = tiny_net(1);
        assert_eq!(net.input_dim(), 3);
        assert_eq!(net.output_dim(), 2);
        assert_eq!(net.layers().len(), 3);
        assert_eq!(net.param_count(), 3 * 5 + 5 + 5 * 4 + 4 + 4 * 2 + 2);
    }

    #[test]
    fn forward_and_cached_agree() {
        let net = tiny_net(2);
        let x = [0.2, -0.1, 0.7];
        let (out, _) = net.forward_cached(&x);
        assert_eq!(net.forward(&x), out);
    }

    #[test]
    fn full_gradient_check() {
        // The decisive test for the whole crate: every parameter gradient and
        // the input gradient must match central finite differences.
        let net = tiny_net(3);
        let x = [0.3, -0.5, 0.9];
        let target = [0.1, -0.2];
        let eps = 1e-6;

        let loss_of = |n: &Mlp| -> f64 {
            let y = n.forward(&x);
            y.iter().zip(&target).map(|(o, t)| (o - t) * (o - t)).sum()
        };

        let (out, cache) = net.forward_cached(&x);
        let grad_out: Vec<f64> = out.iter().zip(&target).map(|(o, t)| 2.0 * (o - t)).collect();
        let (grads, grad_in) = net.backward(&cache, &grad_out);

        // Input gradient.
        for i in 0..3 {
            let mut xp = x;
            let mut xm = x;
            xp[i] += eps;
            xm[i] -= eps;
            let yp = net.forward(&xp);
            let ym = net.forward(&xm);
            let lp: f64 = yp.iter().zip(&target).map(|(o, t)| (o - t) * (o - t)).sum();
            let lm: f64 = ym.iter().zip(&target).map(|(o, t)| (o - t) * (o - t)).sum();
            let numeric = (lp - lm) / (2.0 * eps);
            assert!(
                (numeric - grad_in[i]).abs() < 1e-4,
                "input grad {i}: {numeric} vs {}",
                grad_in[i]
            );
        }

        // Every weight and bias of every layer.
        for li in 0..net.layers().len() {
            let n_w = net.layers()[li].fan_in() * net.layers()[li].fan_out();
            for wi in 0..n_w {
                let mut np = net.clone();
                let mut nm = net.clone();
                np.layers_mut()[li].params_mut().0[wi] += eps;
                nm.layers_mut()[li].params_mut().0[wi] -= eps;
                let numeric = (loss_of(&np) - loss_of(&nm)) / (2.0 * eps);
                let analytic = grads.layers()[li].weights[wi];
                assert!(
                    (numeric - analytic).abs() < 1e-4,
                    "layer {li} weight {wi}: {numeric} vs {analytic}"
                );
            }
            for bi in 0..net.layers()[li].fan_out() {
                let mut np = net.clone();
                let mut nm = net.clone();
                np.layers_mut()[li].params_mut().1[bi] += eps;
                nm.layers_mut()[li].params_mut().1[bi] -= eps;
                let numeric = (loss_of(&np) - loss_of(&nm)) / (2.0 * eps);
                let analytic = grads.layers()[li].biases[bi];
                assert!(
                    (numeric - analytic).abs() < 1e-4,
                    "layer {li} bias {bi}: {numeric} vs {analytic}"
                );
            }
        }
    }

    #[test]
    fn input_gradient_scalar_head() {
        let mut rng = seeded(5);
        let net = Mlp::new(&MlpConfig::new(2, &[6], 1, Activation::Tanh), &mut rng);
        let x = [0.4, -0.3];
        let g = net.input_gradient(&x);
        let eps = 1e-6;
        for i in 0..2 {
            let mut xp = x;
            let mut xm = x;
            xp[i] += eps;
            xm[i] -= eps;
            let numeric = (net.forward(&xp)[0] - net.forward(&xm)[0]) / (2.0 * eps);
            assert!((numeric - g[i]).abs() < 1e-5);
        }
    }

    #[test]
    #[should_panic(expected = "scalar head")]
    fn input_gradient_requires_scalar() {
        tiny_net(1).input_gradient(&[0.0, 0.0, 0.0]);
    }

    #[test]
    fn soft_update_converges_to_source() {
        let mut a = tiny_net(6);
        let b = tiny_net(7);
        for _ in 0..200 {
            a.soft_update_from(&b, 0.1);
        }
        let x = [0.1, 0.2, 0.3];
        let ya = a.forward(&x);
        let yb = b.forward(&x);
        for (p, q) in ya.iter().zip(&yb) {
            assert!((p - q).abs() < 1e-6);
        }
    }

    #[test]
    fn gradient_clipping_reduces_norm() {
        let net = tiny_net(8);
        let x = [1.0, 1.0, 1.0];
        let (out, cache) = net.forward_cached(&x);
        let grad_out = vec![1e3; out.len()];
        let (mut grads, _) = net.backward(&cache, &grad_out);
        grads.clip_global_norm(1.0);
        assert!(grads.global_norm() <= 1.0 + 1e-9);
    }

    #[test]
    fn sigmoid_output_bounded() {
        let mut rng = seeded(9);
        let net = Mlp::new(
            &MlpConfig::new(4, &[8], 4, Activation::Relu)
                .with_output_activation(Activation::Sigmoid),
            &mut rng,
        );
        let y = net.forward(&[10.0, -10.0, 3.0, -3.0]);
        assert!(y.iter().all(|v| (0.0..=1.0).contains(v)));
    }

    proptest! {
        #[test]
        fn prop_forward_finite(
            x in proptest::collection::vec(-10.0f64..10.0, 3),
            seed in 0u64..32,
        ) {
            let net = tiny_net(seed);
            let y = net.forward(&x);
            prop_assert!(y.iter().all(|v| v.is_finite()));
        }

        #[test]
        fn prop_gradients_finite(
            x in proptest::collection::vec(-5.0f64..5.0, 3),
            seed in 0u64..16,
        ) {
            let net = tiny_net(seed);
            let (out, cache) = net.forward_cached(&x);
            let grad_out = vec![1.0; out.len()];
            let (grads, grad_in) = net.backward(&cache, &grad_out);
            prop_assert!(grad_in.iter().all(|v| v.is_finite()));
            prop_assert!(grads.global_norm().is_finite());
        }
    }
}
