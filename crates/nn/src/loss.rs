//! Loss functions.
//!
//! Algorithm 1 of the paper uses plain MSE losses for both networks:
//! `L_Qi = MSE(r̂, Q_i(x̂))` for each critic base model and
//! `L_A = MSE(0.2, Q(A(x̂)))` for the actor (0.2 being the
//! all-constraints-satisfied reward of Eq. 4).

/// Mean squared error between `predictions` and `targets`.
///
/// # Panics
///
/// Panics if the slices have different lengths or are empty.
///
/// # Example
///
/// ```
/// assert_eq!(glova_nn::mse(&[1.0, 2.0], &[0.0, 0.0]), 2.5);
/// ```
pub fn mse(predictions: &[f64], targets: &[f64]) -> f64 {
    assert_eq!(predictions.len(), targets.len(), "mse length mismatch");
    assert!(!predictions.is_empty(), "mse of empty slices");
    predictions.iter().zip(targets).map(|(p, t)| (p - t) * (p - t)).sum::<f64>()
        / predictions.len() as f64
}

/// Gradient of [`mse`] with respect to `predictions`.
///
/// # Panics
///
/// Panics if the slices have different lengths or are empty.
pub fn mse_gradient(predictions: &[f64], targets: &[f64]) -> Vec<f64> {
    assert_eq!(predictions.len(), targets.len(), "mse length mismatch");
    assert!(!predictions.is_empty(), "mse of empty slices");
    let n = predictions.len() as f64;
    predictions.iter().zip(targets).map(|(p, t)| 2.0 * (p - t) / n).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn zero_when_equal() {
        assert_eq!(mse(&[1.0, -2.0], &[1.0, -2.0]), 0.0);
    }

    #[test]
    fn known_value() {
        assert_eq!(mse(&[3.0], &[1.0]), 4.0);
    }

    #[test]
    fn gradient_matches_finite_difference() {
        let preds = [0.5, -1.0, 2.0];
        let targets = [0.0, 0.0, 1.0];
        let grad = mse_gradient(&preds, &targets);
        let eps = 1e-7;
        for i in 0..3 {
            let mut pp = preds;
            let mut pm = preds;
            pp[i] += eps;
            pm[i] -= eps;
            let numeric = (mse(&pp, &targets) - mse(&pm, &targets)) / (2.0 * eps);
            assert!((numeric - grad[i]).abs() < 1e-6);
        }
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn mismatched_lengths_panic() {
        mse(&[1.0], &[1.0, 2.0]);
    }

    #[test]
    #[should_panic(expected = "empty")]
    fn empty_panics() {
        mse(&[], &[]);
    }

    proptest! {
        #[test]
        fn prop_mse_nonnegative(
            pairs in proptest::collection::vec((-1e3f64..1e3, -1e3f64..1e3), 1..50)
        ) {
            let p: Vec<f64> = pairs.iter().map(|x| x.0).collect();
            let t: Vec<f64> = pairs.iter().map(|x| x.1).collect();
            prop_assert!(mse(&p, &t) >= 0.0);
        }
    }
}
