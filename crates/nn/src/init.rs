//! Weight initialization schemes.
//!
//! Ensemble-critic diversity in the paper comes from "randomness and varying
//! initialization" of the base models — initialization quality directly
//! affects how well the ensemble spread tracks epistemic uncertainty, so the
//! standard Glorot/He schemes are implemented rather than ad-hoc uniform
//! noise.

use crate::Activation;
use glova_stats::normal::StandardNormal;
use rand::Rng;

/// Draws one weight for a layer with the given fan-in/out under `scheme`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Init {
    /// Glorot/Xavier normal: `N(0, 2 / (fan_in + fan_out))` — suited to
    /// tanh/sigmoid layers.
    XavierNormal,
    /// He normal: `N(0, 2 / fan_in)` — suited to ReLU layers.
    HeNormal,
}

impl Init {
    /// Picks the conventional scheme for an activation.
    pub fn for_activation(activation: Activation) -> Self {
        match activation {
            Activation::Relu => Init::HeNormal,
            _ => Init::XavierNormal,
        }
    }

    /// Standard deviation for a `fan_in → fan_out` layer.
    pub fn std_dev(self, fan_in: usize, fan_out: usize) -> f64 {
        match self {
            Init::XavierNormal => (2.0 / (fan_in + fan_out) as f64).sqrt(),
            Init::HeNormal => (2.0 / fan_in.max(1) as f64).sqrt(),
        }
    }

    /// Samples one weight.
    pub fn sample<R: Rng + ?Sized>(
        self,
        rng: &mut R,
        normal: &StandardNormal,
        fan_in: usize,
        fan_out: usize,
    ) -> f64 {
        normal.sample_scaled(rng, 0.0, self.std_dev(fan_in, fan_out))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use glova_stats::descriptive::RunningStats;
    use glova_stats::rng::seeded;

    #[test]
    fn scheme_selection() {
        assert_eq!(Init::for_activation(Activation::Relu), Init::HeNormal);
        assert_eq!(Init::for_activation(Activation::Tanh), Init::XavierNormal);
        assert_eq!(Init::for_activation(Activation::Sigmoid), Init::XavierNormal);
    }

    #[test]
    fn std_dev_formulas() {
        assert!((Init::XavierNormal.std_dev(10, 10) - (0.1f64).sqrt()).abs() < 1e-12);
        assert!((Init::HeNormal.std_dev(8, 123) - 0.5f64).abs() < 1e-12);
    }

    #[test]
    fn sample_moments_match_scheme() {
        let mut rng = seeded(3);
        let normal = StandardNormal::new();
        let mut stats = RunningStats::new();
        for _ in 0..50_000 {
            stats.push(Init::HeNormal.sample(&mut rng, &normal, 50, 50));
        }
        let expect = Init::HeNormal.std_dev(50, 50);
        assert!(stats.mean().abs() < 0.005);
        assert!((stats.std_dev() - expect).abs() < 0.005);
    }
}
