//! First-order optimizers: SGD (with momentum) and Adam.
//!
//! Optimizer state is kept in buffers shaped like the network's gradients
//! and lazily initialized on the first step, so one optimizer instance is
//! bound to one network for its lifetime.

use crate::mlp::{Gradients, Mlp};

/// Stochastic gradient descent with optional classical momentum.
#[derive(Debug, Clone)]
pub struct Sgd {
    lr: f64,
    momentum: f64,
    velocity: Option<Gradients>,
}

impl Sgd {
    /// Plain SGD with learning rate `lr`.
    ///
    /// # Panics
    ///
    /// Panics if `lr <= 0`.
    pub fn new(lr: f64) -> Self {
        assert!(lr > 0.0, "learning rate must be positive");
        Self { lr, momentum: 0.0, velocity: None }
    }

    /// Adds momentum `m ∈ [0, 1)` (builder style).
    ///
    /// # Panics
    ///
    /// Panics if `m` is outside `[0, 1)`.
    pub fn with_momentum(mut self, m: f64) -> Self {
        assert!((0.0..1.0).contains(&m), "momentum must be in [0, 1)");
        self.momentum = m;
        self
    }

    /// Current learning rate.
    pub fn learning_rate(&self) -> f64 {
        self.lr
    }

    /// Applies one update to `net` from `grads`.
    pub fn step(&mut self, net: &mut Mlp, grads: &Gradients) {
        if self.momentum == 0.0 {
            net.apply_gradients(grads, self.lr);
            return;
        }
        let velocity = self.velocity.get_or_insert_with(|| Gradients::zeros_like(net));
        velocity.scale(self.momentum);
        velocity.accumulate(grads);
        let v = velocity.clone();
        net.apply_gradients(&v, self.lr);
    }
}

/// Adam optimizer (Kingma & Ba, 2015) with bias correction.
#[derive(Debug, Clone)]
pub struct Adam {
    lr: f64,
    beta1: f64,
    beta2: f64,
    eps: f64,
    t: u64,
    m: Option<Gradients>,
    v: Option<Gradients>,
}

impl Adam {
    /// Adam with learning rate `lr` and standard defaults
    /// `β₁ = 0.9, β₂ = 0.999, ε = 1e-8`.
    ///
    /// # Panics
    ///
    /// Panics if `lr <= 0`.
    pub fn new(lr: f64) -> Self {
        assert!(lr > 0.0, "learning rate must be positive");
        Self { lr, beta1: 0.9, beta2: 0.999, eps: 1e-8, t: 0, m: None, v: None }
    }

    /// Overrides the exponential-decay rates (builder style).
    ///
    /// # Panics
    ///
    /// Panics if either beta is outside `[0, 1)`.
    pub fn with_betas(mut self, beta1: f64, beta2: f64) -> Self {
        assert!((0.0..1.0).contains(&beta1), "beta1 must be in [0, 1)");
        assert!((0.0..1.0).contains(&beta2), "beta2 must be in [0, 1)");
        self.beta1 = beta1;
        self.beta2 = beta2;
        self
    }

    /// Current learning rate.
    pub fn learning_rate(&self) -> f64 {
        self.lr
    }

    /// Number of steps taken so far.
    pub fn steps(&self) -> u64 {
        self.t
    }

    /// Applies one Adam update to `net` from `grads`.
    pub fn step(&mut self, net: &mut Mlp, grads: &Gradients) {
        self.t += 1;
        let m = self.m.get_or_insert_with(|| Gradients::zeros_like(net));
        let v = self.v.get_or_insert_with(|| Gradients::zeros_like(net));

        let bc1 = 1.0 - self.beta1.powi(self.t as i32);
        let bc2 = 1.0 - self.beta2.powi(self.t as i32);

        for (layer_idx, layer) in net.layers_mut().iter_mut().enumerate() {
            let g = &grads.layers()[layer_idx];
            let lm = &mut m.layers_mut()[layer_idx];
            let lv = &mut v.layers_mut()[layer_idx];
            let (w, b) = layer.params_mut();

            for i in 0..w.len() {
                lm.weights[i] = self.beta1 * lm.weights[i] + (1.0 - self.beta1) * g.weights[i];
                lv.weights[i] =
                    self.beta2 * lv.weights[i] + (1.0 - self.beta2) * g.weights[i] * g.weights[i];
                let m_hat = lm.weights[i] / bc1;
                let v_hat = lv.weights[i] / bc2;
                w[i] -= self.lr * m_hat / (v_hat.sqrt() + self.eps);
            }
            for i in 0..b.len() {
                lm.biases[i] = self.beta1 * lm.biases[i] + (1.0 - self.beta1) * g.biases[i];
                lv.biases[i] =
                    self.beta2 * lv.biases[i] + (1.0 - self.beta2) * g.biases[i] * g.biases[i];
                let m_hat = lm.biases[i] / bc1;
                let v_hat = lv.biases[i] / bc2;
                b[i] -= self.lr * m_hat / (v_hat.sqrt() + self.eps);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Activation, Mlp, MlpConfig};
    use glova_stats::rng::seeded;

    fn regression_task() -> (Vec<[f64; 1]>, Vec<[f64; 1]>) {
        // y = sin(3x) on [-1, 1]
        let xs: Vec<[f64; 1]> = (0..40).map(|i| [-1.0 + i as f64 / 19.5]).collect();
        let ys: Vec<[f64; 1]> = xs.iter().map(|x| [(3.0 * x[0]).sin()]).collect();
        (xs, ys)
    }

    fn train_and_measure(optimize: &mut dyn FnMut(&mut Mlp, &Gradients)) -> f64 {
        let mut rng = seeded(77);
        let mut net = Mlp::new(&MlpConfig::new(1, &[16, 16], 1, Activation::Tanh), &mut rng);
        let (xs, ys) = regression_task();
        for _ in 0..300 {
            let mut total = Gradients::zeros_like(&net);
            for (x, y) in xs.iter().zip(&ys) {
                let (out, cache) = net.forward_cached(x);
                let grad_out = crate::mse_gradient(&out, y);
                let (g, _) = net.backward(&cache, &grad_out);
                total.accumulate(&g);
            }
            total.scale(1.0 / xs.len() as f64);
            optimize(&mut net, &total);
        }
        let mut loss = 0.0;
        for (x, y) in xs.iter().zip(&ys) {
            loss += crate::mse(&net.forward(x), y);
        }
        loss / xs.len() as f64
    }

    #[test]
    fn adam_fits_sine() {
        let mut adam = Adam::new(1e-2);
        let loss = train_and_measure(&mut |net, g| adam.step(net, g));
        assert!(loss < 0.01, "adam failed to fit: loss {loss}");
    }

    #[test]
    fn sgd_with_momentum_fits_sine() {
        let mut sgd = Sgd::new(0.05).with_momentum(0.9);
        let loss = train_and_measure(&mut |net, g| sgd.step(net, g));
        assert!(loss < 0.05, "sgd failed to fit: loss {loss}");
    }

    #[test]
    fn adam_converges_on_convex_quadratic() {
        // Adam steps are not individually monotone (normalized step size),
        // but on a convex quadratic it must converge to near-zero loss.
        let mut rng = seeded(5);
        let mut net = Mlp::new(&MlpConfig::new(2, &[], 1, Activation::Identity), &mut rng);
        let mut adam = Adam::new(5e-2);
        let x = [1.0, -1.0];
        let target = [3.0];
        let initial = crate::mse(&net.forward(&x), &target);
        let mut last = initial;
        for _ in 0..500 {
            let (out, cache) = net.forward_cached(&x);
            last = crate::mse(&out, &target);
            let grad_out = crate::mse_gradient(&out, &target);
            let (g, _) = net.backward(&cache, &grad_out);
            adam.step(&mut net, &g);
        }
        assert!(last < 1e-3, "adam did not converge: {initial} -> {last}");
    }

    #[test]
    fn step_counter_increments() {
        let mut rng = seeded(6);
        let mut net = Mlp::new(&MlpConfig::new(1, &[2], 1, Activation::Relu), &mut rng);
        let mut adam = Adam::new(1e-3);
        assert_eq!(adam.steps(), 0);
        let g = Gradients::zeros_like(&net);
        adam.step(&mut net, &g);
        adam.step(&mut net, &g);
        assert_eq!(adam.steps(), 2);
    }

    #[test]
    #[should_panic(expected = "learning rate must be positive")]
    fn zero_lr_panics() {
        Adam::new(0.0);
    }

    #[test]
    #[should_panic(expected = "momentum must be in")]
    fn bad_momentum_panics() {
        let _ = Sgd::new(0.1).with_momentum(1.0);
    }
}
