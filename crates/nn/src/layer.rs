//! A fully connected layer with explicit forward/backward passes.

use crate::init::Init;
use crate::Activation;
use glova_stats::normal::StandardNormal;
use rand::Rng;

/// A dense layer `y = act(W x + b)`.
///
/// Weights are stored row-major, one row per output unit, so the backward
/// pass walks memory contiguously.
#[derive(Debug, Clone, PartialEq)]
pub struct Linear {
    weights: Vec<f64>, // out × in, row-major
    biases: Vec<f64>,  // out
    fan_in: usize,
    fan_out: usize,
    activation: Activation,
}

/// Per-layer cache produced by [`Linear::forward_cached`].
#[derive(Debug, Clone, PartialEq)]
pub struct LayerCache {
    /// The layer input.
    pub input: Vec<f64>,
    /// Pre-activation values `W x + b`.
    pub pre_activation: Vec<f64>,
}

/// Parameter gradients for one layer, same shapes as the parameters.
#[derive(Debug, Clone, PartialEq)]
pub struct LayerGradients {
    /// `∂L/∂W`, row-major `out × in`.
    pub weights: Vec<f64>,
    /// `∂L/∂b`.
    pub biases: Vec<f64>,
}

impl LayerGradients {
    /// Zero gradients for a `fan_in → fan_out` layer.
    pub fn zeros(fan_in: usize, fan_out: usize) -> Self {
        Self { weights: vec![0.0; fan_in * fan_out], biases: vec![0.0; fan_out] }
    }

    /// In-place `self += other`.
    ///
    /// # Panics
    ///
    /// Panics if shapes differ.
    pub fn accumulate(&mut self, other: &LayerGradients) {
        assert_eq!(self.weights.len(), other.weights.len(), "gradient shape mismatch");
        glova_linalg_axpy(&other.weights, &mut self.weights);
        glova_linalg_axpy(&other.biases, &mut self.biases);
    }

    /// In-place scaling (used to average over a batch).
    pub fn scale(&mut self, s: f64) {
        for w in &mut self.weights {
            *w *= s;
        }
        for b in &mut self.biases {
            *b *= s;
        }
    }
}

// Tiny local helper; avoids a dependency edge from nn to linalg for one axpy.
fn glova_linalg_axpy(src: &[f64], dst: &mut [f64]) {
    for (d, s) in dst.iter_mut().zip(src) {
        *d += s;
    }
}

impl Linear {
    /// Creates a layer with activation-appropriate random initialization.
    pub fn new<R: Rng + ?Sized>(
        fan_in: usize,
        fan_out: usize,
        activation: Activation,
        rng: &mut R,
    ) -> Self {
        let normal = StandardNormal::new();
        let init = Init::for_activation(activation);
        let weights =
            (0..fan_in * fan_out).map(|_| init.sample(rng, &normal, fan_in, fan_out)).collect();
        Self { weights, biases: vec![0.0; fan_out], fan_in, fan_out, activation }
    }

    /// Input width.
    pub fn fan_in(&self) -> usize {
        self.fan_in
    }

    /// Output width.
    pub fn fan_out(&self) -> usize {
        self.fan_out
    }

    /// The layer's activation.
    pub fn activation(&self) -> Activation {
        self.activation
    }

    /// Immutable parameter views `(weights, biases)`.
    pub fn params(&self) -> (&[f64], &[f64]) {
        (&self.weights, &self.biases)
    }

    /// Mutable parameter views `(weights, biases)`.
    pub fn params_mut(&mut self) -> (&mut [f64], &mut [f64]) {
        (&mut self.weights, &mut self.biases)
    }

    /// Forward pass without caching.
    ///
    /// # Panics
    ///
    /// Panics if `x.len() != fan_in`.
    pub fn forward(&self, x: &[f64]) -> Vec<f64> {
        assert_eq!(x.len(), self.fan_in, "layer input width mismatch");
        let mut out = Vec::with_capacity(self.fan_out);
        for o in 0..self.fan_out {
            let row = &self.weights[o * self.fan_in..(o + 1) * self.fan_in];
            let z: f64 = row.iter().zip(x).map(|(w, xi)| w * xi).sum::<f64>() + self.biases[o];
            out.push(self.activation.apply(z));
        }
        out
    }

    /// Forward pass that records the cache needed by [`Linear::backward`].
    pub fn forward_cached(&self, x: &[f64]) -> (Vec<f64>, LayerCache) {
        assert_eq!(x.len(), self.fan_in, "layer input width mismatch");
        let mut pre = Vec::with_capacity(self.fan_out);
        for o in 0..self.fan_out {
            let row = &self.weights[o * self.fan_in..(o + 1) * self.fan_in];
            pre.push(row.iter().zip(x).map(|(w, xi)| w * xi).sum::<f64>() + self.biases[o]);
        }
        let out = pre.iter().map(|&z| self.activation.apply(z)).collect();
        (out, LayerCache { input: x.to_vec(), pre_activation: pre })
    }

    /// Backward pass.
    ///
    /// `grad_output` is `∂L/∂y` (post-activation); returns the parameter
    /// gradients and `∂L/∂x`.
    ///
    /// # Panics
    ///
    /// Panics if `grad_output.len() != fan_out`.
    pub fn backward(&self, cache: &LayerCache, grad_output: &[f64]) -> (LayerGradients, Vec<f64>) {
        assert_eq!(grad_output.len(), self.fan_out, "grad width mismatch");
        let mut grads = LayerGradients::zeros(self.fan_in, self.fan_out);
        let mut grad_input = vec![0.0; self.fan_in];
        for o in 0..self.fan_out {
            // δ = ∂L/∂z = ∂L/∂y · act'(z)
            let delta = grad_output[o] * self.activation.derivative(cache.pre_activation[o]);
            grads.biases[o] = delta;
            let w_row = &self.weights[o * self.fan_in..(o + 1) * self.fan_in];
            let g_row = &mut grads.weights[o * self.fan_in..(o + 1) * self.fan_in];
            for i in 0..self.fan_in {
                g_row[i] = delta * cache.input[i];
                grad_input[i] += delta * w_row[i];
            }
        }
        (grads, grad_input)
    }

    /// Applies `params -= lr * grads` (plain SGD step, used by optimizers).
    ///
    /// # Panics
    ///
    /// Panics if gradient shapes differ from parameter shapes.
    pub fn apply_gradients(&mut self, grads: &LayerGradients, lr: f64) {
        assert_eq!(grads.weights.len(), self.weights.len(), "gradient shape mismatch");
        for (w, g) in self.weights.iter_mut().zip(&grads.weights) {
            *w -= lr * g;
        }
        for (b, g) in self.biases.iter_mut().zip(&grads.biases) {
            *b -= lr * g;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use glova_stats::rng::seeded;

    fn tiny_layer() -> Linear {
        let mut rng = seeded(1);
        Linear::new(3, 2, Activation::Tanh, &mut rng)
    }

    #[test]
    fn forward_matches_cached_forward() {
        let layer = tiny_layer();
        let x = [0.1, -0.2, 0.3];
        let (cached_out, _) = layer.forward_cached(&x);
        assert_eq!(layer.forward(&x), cached_out);
    }

    #[test]
    fn identity_layer_is_affine() {
        let mut rng = seeded(2);
        let mut layer = Linear::new(2, 2, Activation::Identity, &mut rng);
        {
            let (w, b) = layer.params_mut();
            w.copy_from_slice(&[1.0, 0.0, 0.0, 1.0]);
            b.copy_from_slice(&[0.5, -0.5]);
        }
        assert_eq!(layer.forward(&[1.0, 2.0]), vec![1.5, 1.5]);
    }

    #[test]
    fn gradient_check_weights_and_input() {
        let layer = tiny_layer();
        let x = [0.4, -0.7, 0.2];
        let eps = 1e-6;

        // Loss: sum of outputs (grad_output = ones).
        let (_, cache) = layer.forward_cached(&x);
        let (grads, grad_in) = layer.backward(&cache, &[1.0, 1.0]);

        // Check input gradient by finite differences.
        for i in 0..3 {
            let mut xp = x;
            let mut xm = x;
            xp[i] += eps;
            xm[i] -= eps;
            let fp: f64 = layer.forward(&xp).iter().sum();
            let fm: f64 = layer.forward(&xm).iter().sum();
            let numeric = (fp - fm) / (2.0 * eps);
            assert!(
                (numeric - grad_in[i]).abs() < 1e-5,
                "input grad {i}: numeric {numeric} vs {got}",
                got = grad_in[i]
            );
        }

        // Check a few weight gradients.
        for idx in [0usize, 2, 5] {
            let mut lp = layer.clone();
            let mut lm = layer.clone();
            lp.params_mut().0[idx] += eps;
            lm.params_mut().0[idx] -= eps;
            let fp: f64 = lp.forward(&x).iter().sum();
            let fm: f64 = lm.forward(&x).iter().sum();
            let numeric = (fp - fm) / (2.0 * eps);
            assert!(
                (numeric - grads.weights[idx]).abs() < 1e-5,
                "weight grad {idx}: numeric {numeric} vs {got}",
                got = grads.weights[idx]
            );
        }

        // Bias gradient check.
        for idx in [0usize, 1] {
            let mut lp = layer.clone();
            let mut lm = layer.clone();
            lp.params_mut().1[idx] += eps;
            lm.params_mut().1[idx] -= eps;
            let fp: f64 = lp.forward(&x).iter().sum();
            let fm: f64 = lm.forward(&x).iter().sum();
            let numeric = (fp - fm) / (2.0 * eps);
            assert!((numeric - grads.biases[idx]).abs() < 1e-5);
        }
    }

    #[test]
    fn accumulate_and_scale() {
        let mut a = LayerGradients::zeros(2, 1);
        let b = LayerGradients { weights: vec![1.0, 2.0], biases: vec![3.0] };
        a.accumulate(&b);
        a.accumulate(&b);
        a.scale(0.5);
        assert_eq!(a.weights, vec![1.0, 2.0]);
        assert_eq!(a.biases, vec![3.0]);
    }

    #[test]
    fn apply_gradients_moves_downhill() {
        let mut layer = tiny_layer();
        let x = [0.5, 0.5, -0.5];
        let target = 0.3;
        let loss = |l: &Linear| {
            let y: f64 = l.forward(&x).iter().sum();
            (y - target) * (y - target)
        };
        let before = loss(&layer);
        for _ in 0..50 {
            let (out, cache) = layer.forward_cached(&x);
            let y: f64 = out.iter().sum();
            let grad_out = vec![2.0 * (y - target); 2];
            let (grads, _) = layer.backward(&cache, &grad_out);
            layer.apply_gradients(&grads, 0.05);
        }
        assert!(loss(&layer) < before * 0.1, "did not descend: {before} -> {}", loss(&layer));
    }

    #[test]
    #[should_panic(expected = "input width mismatch")]
    fn wrong_input_width_panics() {
        tiny_layer().forward(&[1.0]);
    }
}
