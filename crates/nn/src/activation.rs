//! Element-wise activation functions and their derivatives.

/// Supported element-wise activations.
///
/// The paper's actor outputs a normalized design vector in `[0, 1]`; GLOVA's
/// actor therefore ends in [`Activation::Sigmoid`], while hidden layers use
/// [`Activation::Relu`] or [`Activation::Tanh`]. The critic head is
/// [`Activation::Identity`] (unbounded reward prediction).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum Activation {
    /// Rectified linear unit `max(0, x)`.
    #[default]
    Relu,
    /// Hyperbolic tangent.
    Tanh,
    /// Logistic sigmoid `1 / (1 + e^{-x})`.
    Sigmoid,
    /// Pass-through.
    Identity,
}

impl Activation {
    /// Applies the activation to one pre-activation value.
    pub fn apply(self, x: f64) -> f64 {
        match self {
            Activation::Relu => x.max(0.0),
            Activation::Tanh => x.tanh(),
            Activation::Sigmoid => 1.0 / (1.0 + (-x).exp()),
            Activation::Identity => x,
        }
    }

    /// Derivative with respect to the pre-activation, evaluated at
    /// pre-activation `x`.
    pub fn derivative(self, x: f64) -> f64 {
        match self {
            Activation::Relu => {
                if x > 0.0 {
                    1.0
                } else {
                    0.0
                }
            }
            Activation::Tanh => {
                let t = x.tanh();
                1.0 - t * t
            }
            Activation::Sigmoid => {
                let s = 1.0 / (1.0 + (-x).exp());
                s * (1.0 - s)
            }
            Activation::Identity => 1.0,
        }
    }

    /// Applies the activation to a slice, in place.
    pub fn apply_slice(self, xs: &mut [f64]) {
        for x in xs {
            *x = self.apply(*x);
        }
    }
}

impl std::fmt::Display for Activation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let name = match self {
            Activation::Relu => "relu",
            Activation::Tanh => "tanh",
            Activation::Sigmoid => "sigmoid",
            Activation::Identity => "identity",
        };
        f.write_str(name)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    const ALL: [Activation; 4] =
        [Activation::Relu, Activation::Tanh, Activation::Sigmoid, Activation::Identity];

    #[test]
    fn known_values() {
        assert_eq!(Activation::Relu.apply(-1.0), 0.0);
        assert_eq!(Activation::Relu.apply(2.0), 2.0);
        assert!((Activation::Tanh.apply(0.0)).abs() < 1e-12);
        assert!((Activation::Sigmoid.apply(0.0) - 0.5).abs() < 1e-12);
        assert_eq!(Activation::Identity.apply(3.5), 3.5);
    }

    #[test]
    fn derivative_matches_finite_difference() {
        let eps = 1e-6;
        for act in ALL {
            for &x in &[-2.0, -0.5, 0.3, 1.7] {
                let numeric = (act.apply(x + eps) - act.apply(x - eps)) / (2.0 * eps);
                let analytic = act.derivative(x);
                assert!(
                    (numeric - analytic).abs() < 1e-5,
                    "{act} at {x}: numeric {numeric} vs analytic {analytic}"
                );
            }
        }
    }

    #[test]
    fn apply_slice_matches_scalar() {
        let mut xs = vec![-1.0, 0.0, 2.0];
        Activation::Relu.apply_slice(&mut xs);
        assert_eq!(xs, vec![0.0, 0.0, 2.0]);
    }

    #[test]
    fn display_names() {
        assert_eq!(Activation::Relu.to_string(), "relu");
        assert_eq!(Activation::Identity.to_string(), "identity");
    }

    proptest! {
        #[test]
        fn prop_sigmoid_bounded(x in -50.0f64..50.0) {
            let y = Activation::Sigmoid.apply(x);
            prop_assert!((0.0..=1.0).contains(&y));
        }

        #[test]
        fn prop_tanh_bounded(x in -50.0f64..50.0) {
            let y = Activation::Tanh.apply(x);
            prop_assert!((-1.0..=1.0).contains(&y));
        }

        #[test]
        fn prop_derivatives_nonnegative(x in -20.0f64..20.0) {
            // All four activations are monotone non-decreasing.
            for act in ALL {
                prop_assert!(act.derivative(x) >= 0.0);
            }
        }
    }
}
