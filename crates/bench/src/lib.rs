//! Shared experiment infrastructure for the table/figure harnesses.
//!
//! The paper's Table II reports, per (circuit × verification method ×
//! framework) cell: mean RL iterations, mean simulation count, normalized
//! runtime and success rate — averaged over repeated seeded runs, counting
//! only successful runs for the means (the paper's `*` footnote).

pub mod report;

use glova::engine::EngineSpec;
use glova::optimizer::{GlovaConfig, GlovaOptimizer};
use glova::report::RunResult;
use glova_baselines::pvtsizing::{PvtSizing, PvtSizingConfig};
use glova_baselines::robustanalog::{RobustAnalog, RobustAnalogConfig};
use glova_circuits::Circuit;
use glova_variation::config::VerificationMethod;
use std::sync::Arc;
use std::time::Duration;

/// The frameworks compared in Table II.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Framework {
    /// The proposed framework.
    Glova,
    /// PVTSizing (paper reference \[9\]).
    PvtSizing,
    /// RobustAnalog (paper reference \[8\]).
    RobustAnalog,
}

impl Framework {
    /// All frameworks in table order.
    pub const ALL: [Framework; 3] =
        [Framework::Glova, Framework::PvtSizing, Framework::RobustAnalog];

    /// Row label.
    pub fn name(self) -> &'static str {
        match self {
            Framework::Glova => "Ours",
            Framework::PvtSizing => "PVTSizing",
            Framework::RobustAnalog => "RobustAnalog",
        }
    }
}

/// The testcase circuits of Table II.
pub fn table2_circuits() -> Vec<(&'static str, Arc<dyn Circuit>)> {
    vec![
        ("SAL", Arc::new(glova_circuits::StrongArmLatch::new()) as Arc<dyn Circuit>),
        ("FIA", Arc::new(glova_circuits::FloatingInverterAmp::new())),
        ("OCSA+SH", Arc::new(glova_circuits::DramCoreSense::new())),
    ]
}

/// Aggregated results of one table cell.
#[derive(Debug, Clone, PartialEq)]
pub struct CellResult {
    /// Mean RL iterations over successful runs (`NaN` if none).
    pub mean_iterations: f64,
    /// Mean simulation count over successful runs (`NaN` if none).
    pub mean_simulations: f64,
    /// Mean wall time over successful runs.
    pub mean_wall: Duration,
    /// Fraction of runs that succeeded.
    pub success_rate: f64,
    /// Individual run results.
    pub runs: Vec<RunResult>,
}

impl CellResult {
    /// Aggregates per-run results (means over successful runs only).
    pub fn from_runs(runs: Vec<RunResult>) -> Self {
        let successes: Vec<&RunResult> = runs.iter().filter(|r| r.success).collect();
        let n = successes.len().max(1) as f64;
        let mean_iterations = successes.iter().map(|r| r.rl_iterations as f64).sum::<f64>() / n;
        let mean_simulations = successes.iter().map(|r| r.simulations as f64).sum::<f64>() / n;
        let mean_wall = Duration::from_secs_f64(
            successes.iter().map(|r| r.wall_time.as_secs_f64()).sum::<f64>() / n,
        );
        Self {
            mean_iterations,
            mean_simulations,
            mean_wall,
            success_rate: if runs.is_empty() {
                0.0
            } else {
                successes.len() as f64 / runs.len() as f64
            },
            runs,
        }
    }

    /// Whether any run succeeded (means are meaningful).
    pub fn any_success(&self) -> bool {
        self.success_rate > 0.0
    }
}

/// Per-framework iteration budgets: RobustAnalog is given more room, as in
/// the paper where it consumes up to ~17× more iterations.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Budget {
    /// Max RL iterations for GLOVA / PVTSizing.
    pub base_iterations: usize,
    /// Max RL iterations for RobustAnalog.
    pub robustanalog_iterations: usize,
}

impl Budget {
    /// Budget for a circuit (DRAM gets more room) under a quickness level.
    pub fn for_circuit(circuit_name: &str, quick: bool) -> Self {
        let base = match (circuit_name, quick) {
            ("OCSA+SH", false) => 1200,
            ("OCSA+SH", true) => 600,
            (_, false) => 500,
            (_, true) => 250,
        };
        Self { base_iterations: base, robustanalog_iterations: base * 2 }
    }
}

/// Runs one Table-II cell: `seeds` runs of `framework` on `circuit` under
/// `method`, dispatching simulation batches through `engine` (results are
/// engine-independent; only wall time changes).
pub fn run_cell(
    circuit: &Arc<dyn Circuit>,
    method: VerificationMethod,
    framework: Framework,
    seeds: u64,
    budget: Budget,
    engine: EngineSpec,
) -> CellResult {
    let runs: Vec<RunResult> = (0..seeds)
        .map(|seed| match framework {
            Framework::Glova => {
                let mut config = GlovaConfig::paper(method).with_engine(engine);
                config.max_iterations = budget.base_iterations;
                GlovaOptimizer::new(circuit.clone(), config).run(1000 + seed)
            }
            Framework::PvtSizing => {
                let mut config = PvtSizingConfig::new(method);
                config.max_iterations = budget.base_iterations;
                config.engine = engine;
                PvtSizing::new(circuit.clone(), config).run(2000 + seed)
            }
            Framework::RobustAnalog => {
                let mut config = RobustAnalogConfig::new(method);
                config.max_iterations = budget.robustanalog_iterations;
                config.engine = engine;
                RobustAnalog::new(circuit.clone(), config).run(3000 + seed)
            }
        })
        .collect();
    CellResult::from_runs(runs)
}

/// Parses the shared `--engine sequential|threaded|threaded:N` flag of
/// the bench bins (defaults to [`EngineSpec::Sequential`] when the flag
/// is absent).
///
/// Exits with a usage message when the flag is present without a value
/// or with a malformed one — bins call this before any long-running
/// work, so a typo fails fast instead of silently running sequentially.
pub fn engine_from_args(args: &[String]) -> EngineSpec {
    let Some(flag_pos) = args.iter().position(|a| a == "--engine") else {
        return EngineSpec::Sequential;
    };
    let Some(value) = args.get(flag_pos + 1) else {
        eprintln!("--engine requires a value: `sequential`, `threaded` or `threaded:N`");
        std::process::exit(2);
    };
    EngineSpec::parse(value).unwrap_or_else(|err| {
        eprintln!("{err}");
        std::process::exit(2);
    })
}

/// Whether the shared `--report` flag is present: bins then serialize
/// what they measured to `BENCH_<name>.json` via [`report::BenchReport`].
pub fn report_requested(args: &[String]) -> bool {
    args.iter().any(|a| a == "--report")
}

/// Writes a report to the repo root, logging the outcome to stderr (bins
/// should not fail their primary job over an artifact write).
pub fn write_report(report: &report::BenchReport) {
    match report.write_to_repo_root() {
        Ok(path) => eprintln!("wrote {}", path.display()),
        Err(err) => eprintln!("failed to write {}: {err}", report.file_name()),
    }
}

/// Formats a float with at most one decimal, or `-` for NaN.
pub fn fmt_mean(v: f64) -> String {
    if v.is_nan() || v == 0.0 {
        "-".to_string()
    } else if v >= 1000.0 {
        format!("{:.0}", v)
    } else {
        format!("{:.1}", v)
    }
}

/// Formats a runtime ratio (`-` for undefined).
pub fn fmt_ratio(v: f64) -> String {
    if v.is_finite() && v > 0.0 {
        format!("{v:.2}")
    } else {
        "-".to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cell_result_means_ignore_failures() {
        let ok = RunResult {
            success: true,
            rl_iterations: 10,
            simulations: 100,
            verification_attempts: 1,
            wall_time: Duration::from_millis(10),
            final_design: Some(vec![0.5]),
            trace: Vec::new(),
        };
        let bad = RunResult::failed(500, 9999, Duration::from_millis(99));
        let cell = CellResult::from_runs(vec![ok.clone(), bad]);
        assert_eq!(cell.mean_iterations, 10.0);
        assert_eq!(cell.mean_simulations, 100.0);
        assert_eq!(cell.success_rate, 0.5);
        assert!(cell.any_success());
    }

    #[test]
    fn empty_cell_is_zero_rate() {
        let cell = CellResult::from_runs(Vec::new());
        assert_eq!(cell.success_rate, 0.0);
        assert!(!cell.any_success());
    }

    #[test]
    fn budgets_scale_for_dram() {
        let sal = Budget::for_circuit("SAL", false);
        let dram = Budget::for_circuit("OCSA+SH", false);
        assert!(dram.base_iterations > sal.base_iterations);
        assert_eq!(dram.robustanalog_iterations, 2 * dram.base_iterations);
    }

    #[test]
    fn formatting_handles_nan() {
        assert_eq!(fmt_mean(f64::NAN), "-");
        assert_eq!(fmt_mean(12.34), "12.3");
        assert_eq!(fmt_ratio(f64::INFINITY), "-");
        assert_eq!(fmt_ratio(2.5), "2.50");
    }

    #[test]
    fn circuits_list_matches_paper() {
        let circuits = table2_circuits();
        assert_eq!(circuits.len(), 3);
        assert_eq!(circuits[0].0, "SAL");
        assert_eq!(circuits[2].1.dim(), 12);
    }
}
