//! Machine-readable perf artifacts: `BENCH_<name>.json`.
//!
//! Every bench bin can serialize what it measured — wall time, simulation
//! throughput, speedup over the sequential reference engine, cache
//! counters — into a JSON report at the repo root, giving the project a
//! perf trajectory that CI can archive and gate on (see the `perf` job in
//! `.github/workflows/ci.yml`). The git revision is taken from the
//! `GLOVA_GIT_REV` or `GITHUB_SHA` environment variable, falling back to
//! `git rev-parse HEAD` for local runs, so artifacts are attributable
//! without a libgit dependency.
//!
//! Serialization is hand-rolled: the offline workspace has no `serde`,
//! and the schema is small enough that a correct writer is ~60 lines.
//! Floats use Rust's shortest-roundtrip `Display` (valid JSON for finite
//! values; non-finite values serialize as `null`).

use glova::cache::CacheStats;
use std::path::{Path, PathBuf};
use std::time::Duration;

/// Schema version stamped into every report (bump on breaking changes).
pub const SCHEMA_VERSION: u32 = 1;

/// One measured scenario.
#[derive(Debug, Clone, PartialEq)]
pub struct BenchRecord {
    /// Scenario label, e.g. `yield_grid` or `verify_resweep`.
    pub scenario: String,
    /// Circuit under test.
    pub circuit: String,
    /// Engine spec string (`sequential`, `threaded:8`, …).
    pub engine: String,
    /// Batch size driving the scenario (e.g. samples per corner).
    pub batch: usize,
    /// Simulation requests issued (cache hits included — the
    /// accounting-invariant count).
    pub sims: u64,
    /// Circuit evaluations actually executed: `None` when no cache was
    /// attached (every request evaluated, `sims` is the count), else the
    /// cache's miss count. Distinguishes real simulation throughput from
    /// request throughput on cached records.
    pub evaluations: Option<u64>,
    /// Measured wall time, seconds.
    pub wall_seconds: f64,
    /// Throughput `sims / wall_seconds`.
    pub sims_per_sec: f64,
    /// Wall-time ratio vs the `Sequential` engine on the same scenario
    /// (`None` when this record *is* the sequential reference, or no
    /// reference was run).
    pub speedup_vs_sequential: Option<f64>,
    /// Evaluation-cache counters, when a cache was attached.
    pub cache: Option<CacheStats>,
}

impl BenchRecord {
    /// Builds a record, deriving the throughput.
    pub fn new(
        scenario: impl Into<String>,
        circuit: impl Into<String>,
        engine: impl Into<String>,
        batch: usize,
        sims: u64,
        wall: Duration,
    ) -> Self {
        let wall_seconds = wall.as_secs_f64();
        Self {
            scenario: scenario.into(),
            circuit: circuit.into(),
            engine: engine.into(),
            batch,
            sims,
            evaluations: None,
            wall_seconds,
            sims_per_sec: sims as f64 / wall_seconds.max(1e-12),
            speedup_vs_sequential: None,
            cache: None,
        }
    }

    /// Attaches the speedup vs the sequential reference (builder style).
    pub fn with_speedup(mut self, speedup: f64) -> Self {
        self.speedup_vs_sequential = Some(speedup);
        self
    }

    /// Attaches cache counters (builder style), recording the miss count
    /// as the number of circuit evaluations actually executed.
    pub fn with_cache(mut self, stats: CacheStats) -> Self {
        self.evaluations = Some(stats.misses);
        self.cache = Some(stats);
        self
    }

    fn to_json(&self) -> String {
        let mut fields = vec![
            format!("\"scenario\": {}", json_string(&self.scenario)),
            format!("\"circuit\": {}", json_string(&self.circuit)),
            format!("\"engine\": {}", json_string(&self.engine)),
            format!("\"batch\": {}", self.batch),
            format!("\"sims\": {}", self.sims),
            format!(
                "\"evaluations\": {}",
                self.evaluations.map_or_else(|| "null".to_string(), |e| e.to_string())
            ),
            format!("\"wall_seconds\": {}", json_f64(self.wall_seconds)),
            format!("\"sims_per_sec\": {}", json_f64(self.sims_per_sec)),
            format!(
                "\"speedup_vs_sequential\": {}",
                self.speedup_vs_sequential.map_or_else(|| "null".to_string(), json_f64)
            ),
        ];
        match self.cache {
            Some(stats) => fields.push(format!(
                "\"cache\": {{\"hits\": {}, \"misses\": {}, \"evictions\": {}, \"hit_rate\": {}}}",
                stats.hits,
                stats.misses,
                stats.evictions,
                json_f64(stats.hit_rate())
            )),
            None => fields.push("\"cache\": null".to_string()),
        }
        format!("    {{{}}}", fields.join(", "))
    }
}

/// A named collection of records, serializable to `BENCH_<name>.json`.
#[derive(Debug, Clone, PartialEq)]
pub struct BenchReport {
    /// Report name (`BENCH_<name>.json`).
    pub name: String,
    /// Git revision from `GLOVA_GIT_REV` / `GITHUB_SHA`, else from
    /// `git rev-parse HEAD`, if any of them resolves.
    pub git_rev: Option<String>,
    /// Measured scenarios.
    pub records: Vec<BenchRecord>,
}

/// `git rev-parse HEAD` at the workspace root — the local-run fallback
/// so checked-in artifacts stay attributable even when no CI variable is
/// exported (every pre-fallback `BENCH_*.json` carried `git_rev: null`).
fn git_rev_from_worktree() -> Option<String> {
    let out = std::process::Command::new("git")
        .args(["rev-parse", "HEAD"])
        .current_dir(env!("CARGO_MANIFEST_DIR"))
        .output()
        .ok()?;
    if !out.status.success() {
        return None;
    }
    let rev = String::from_utf8(out.stdout).ok()?.trim().to_string();
    if rev.is_empty() {
        None
    } else {
        Some(rev)
    }
}

/// Resolves the git revision the same way [`BenchReport::new`] does —
/// `GLOVA_GIT_REV` first, then `GITHUB_SHA`, then `git rev-parse HEAD` —
/// exposed for bins that serialize custom-schema artifacts (the campaign
/// bin's `BENCH_campaign.json` trajectory document).
pub fn resolve_git_rev() -> Option<String> {
    std::env::var("GLOVA_GIT_REV")
        .or_else(|_| std::env::var("GITHUB_SHA"))
        .ok()
        .filter(|s| !s.is_empty())
        .or_else(git_rev_from_worktree)
}

/// Writes an arbitrary JSON document to `BENCH_<name>.json` at the
/// workspace root and returns the path — the custom-schema sibling of
/// [`BenchReport::write_to_repo_root`].
///
/// # Errors
///
/// Propagates filesystem errors.
pub fn write_json_to_repo_root(name: &str, json: &str) -> std::io::Result<PathBuf> {
    // crates/bench → workspace root, compile-time anchored so bins work
    // from any cwd.
    let root = Path::new(env!("CARGO_MANIFEST_DIR"))
        .ancestors()
        .nth(2)
        .expect("bench crate sits two levels below the workspace root")
        .to_path_buf();
    let path = root.join(format!("BENCH_{name}.json"));
    std::fs::write(&path, json)?;
    Ok(path)
}

impl BenchReport {
    /// Creates an empty report, picking the git revision up from the
    /// environment (`GLOVA_GIT_REV` first, then `GITHUB_SHA`, then a
    /// `git rev-parse HEAD` of the source tree).
    pub fn new(name: impl Into<String>) -> Self {
        Self { name: name.into(), git_rev: resolve_git_rev(), records: Vec::new() }
    }

    /// Appends a record.
    pub fn push(&mut self, record: BenchRecord) {
        self.records.push(record);
    }

    /// The artifact file name, `BENCH_<name>.json`.
    pub fn file_name(&self) -> String {
        format!("BENCH_{}.json", self.name)
    }

    /// Serializes the report.
    pub fn to_json(&self) -> String {
        let records: Vec<String> = self.records.iter().map(BenchRecord::to_json).collect();
        format!(
            "{{\n  \"name\": {},\n  \"schema_version\": {},\n  \"git_rev\": {},\n  \"records\": [\n{}\n  ]\n}}\n",
            json_string(&self.name),
            SCHEMA_VERSION,
            self.git_rev.as_deref().map_or_else(|| "null".to_string(), json_string),
            records.join(",\n")
        )
    }

    /// Writes `BENCH_<name>.json` at the workspace root and returns the
    /// path.
    ///
    /// # Errors
    ///
    /// Propagates filesystem errors.
    pub fn write_to_repo_root(&self) -> std::io::Result<PathBuf> {
        write_json_to_repo_root(&self.name, &self.to_json())
    }
}

/// JSON string escaping (control characters, quotes, backslashes).
pub fn json_string(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// Finite floats via shortest-roundtrip `Display` (always valid JSON:
/// Rust renders integral floats as `1` only for `{:?}`… `Display` gives
/// `1` too, so force a decimal form), non-finite as `null`.
pub fn json_f64(v: f64) -> String {
    if !v.is_finite() {
        return "null".to_string();
    }
    let s = format!("{v}");
    // `Display` prints integral values without a decimal point, which is
    // still valid JSON, but normalize exponent-free integral forms to
    // keep consumers honest about the type.
    if s.contains('.') || s.contains('e') || s.contains('E') {
        s
    } else {
        format!("{s}.0")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn record_derives_throughput() {
        let r = BenchRecord::new("s", "SAL", "sequential", 64, 1000, Duration::from_secs(2));
        assert_eq!(r.sims_per_sec, 500.0);
        assert_eq!(r.speedup_vs_sequential, None);
    }

    #[test]
    fn report_serializes_wellformed_json() {
        let mut report =
            BenchReport { name: "t".into(), git_rev: Some("abc123".into()), records: Vec::new() };
        report.push(
            BenchRecord::new(
                "yield_grid",
                "SAL",
                "threaded:4",
                64,
                1920,
                Duration::from_millis(250),
            )
            .with_speedup(2.5)
            .with_cache(CacheStats { hits: 10, misses: 30, evictions: 0 }),
        );
        let json = report.to_json();
        assert!(json.contains("\"name\": \"t\""));
        assert!(json.contains("\"git_rev\": \"abc123\""));
        assert!(json.contains("\"speedup_vs_sequential\": 2.5"));
        assert!(json.contains("\"hit_rate\": 0.25"));
        assert!(json.contains("\"sims\": 1920"));
        assert!(json.contains("\"evaluations\": 30"));
        // Balanced braces/brackets — cheap well-formedness smoke check.
        assert_eq!(json.matches('{').count(), json.matches('}').count());
        assert_eq!(json.matches('[').count(), json.matches(']').count());
    }

    #[test]
    fn json_string_escapes() {
        assert_eq!(json_string("a\"b\\c\n"), "\"a\\\"b\\\\c\\n\"");
        assert_eq!(json_string("\u{1}"), "\"\\u0001\"");
    }

    #[test]
    fn json_f64_handles_nonfinite_and_integral() {
        assert_eq!(json_f64(f64::NAN), "null");
        assert_eq!(json_f64(f64::INFINITY), "null");
        assert_eq!(json_f64(2.0), "2.0");
        assert_eq!(json_f64(0.125), "0.125");
    }

    #[test]
    fn file_name_matches_convention() {
        assert_eq!(BenchReport::new("perfsuite").file_name(), "BENCH_perfsuite.json");
    }

    #[test]
    fn git_rev_worktree_fallback_resolves() {
        // Exercise the fallback directly rather than through
        // `BenchReport::new`, whose result depends on whatever
        // `GLOVA_GIT_REV`/`GITHUB_SHA` happen to be exported (and may
        // legitimately be non-hex strings). This workspace is always a
        // git checkout — locally, on CI runners, and in the build
        // image — so the worktree probe must produce a commit hash.
        let rev = git_rev_from_worktree().expect("workspace is a git checkout");
        assert!(rev.len() >= 7, "short/odd revision: {rev:?}");
        assert!(rev.chars().all(|c| c.is_ascii_hexdigit()), "non-hex revision: {rev:?}");
        // And a report picks up *some* source here (env or fallback).
        assert!(BenchReport::new("t").git_rev.is_some());
    }
}
