//! End-to-end risk-sensitive sizing campaigns over the SPICE engine.
//!
//! Runs [`SizingCampaign`] on the SPICE-backed testcases — the two-stage
//! OTA, the inverter chain and the DRAM sense-amp array — twice per
//! circuit with the same seed and goal: once on the full 30-corner
//! industrial grid every step, once with RobustAnalog-style corner-set
//! pruning (`k`-worst corners, full re-rank every `R` steps). Both arms
//! batch each policy step's corner × mismatch grid into a single engine
//! dispatch, so the per-worker SPICE solver pools, the value-only
//! retargeting fast path and the evaluation cache stay hot across the
//! whole run. The headline number is the **simulation ratio**
//! `full.sims_to_success / pruned.sims_to_success` — wall-clock-free, so
//! it gates deterministically on 1-core CI runners (see the `campaign`
//! scenario in `perfsuite`).
//!
//! Usage:
//!
//! ```text
//! campaign [--circuits ota,inv,senseamp|all] [--steps N] [--seed S]
//!          [--stages N] [--k K] [--rerank R] [--yield-samples N]
//!          [--goal f1,f2,...] [--family] [--probe]
//!          [--engine sequential|threaded[:N]] [--report]
//! ```
//!
//! `--goal f1,f2,...` overrides the per-circuit default goal factors
//! (applies to every selected circuit — combine with `--circuits` to
//! retarget one). `--family` additionally runs a PPAAS-style goal family
//! on the OTA — one shared goal-conditioned agent sized against three
//! spec targets.
//! `--probe` skips the campaigns and prints worst-case metric ranges of
//! Latin-hypercube seed designs over the corner grid (the data the
//! default goal factors were chosen from). `--report` writes the full
//! trajectory document to `BENCH_campaign.json` at the repo root; see
//! `docs/CAMPAIGNS.md` for the schema and how to read it.

use glova::cache::EvalCacheConfig;
use glova::campaign::{CampaignConfig, CampaignResult, PruningConfig, SizingCampaign};
use glova::engine::EngineSpec;
use glova::problem::SizingProblem;
use glova_bench::report::{json_f64, json_string, resolve_git_rev, SCHEMA_VERSION};
use glova_bench::{engine_from_args, fmt_ratio, report_requested};
use glova_circuits::spec::Goal;
use glova_circuits::Circuit;
use glova_stats::rng::seeded;
use glova_turbo::latin_hypercube;
use glova_variation::config::VerificationMethod;
use std::sync::Arc;

/// One SPICE testcase with the goal factors the campaign optimizes for.
///
/// The goals tighten each base spec past the feasibility of typical
/// Latin-hypercube seed designs (verified with `--probe`), so a campaign
/// has to actually search — a goal the seeds already satisfy would end at
/// step 0 with identical cost in both arms.
struct Case {
    name: &'static str,
    circuit: Arc<dyn Circuit>,
    goal: Vec<f64>,
}

fn cases(selected: &str, stages: usize) -> Vec<Case> {
    let all = selected == "all";
    let want = |tag: &str| all || selected.split(',').any(|s| s.trim() == tag);
    let mut out = Vec::new();
    if want("ota") {
        out.push(Case {
            name: "SpiceOta",
            circuit: Arc::new(glova_circuits::SpiceOta::new()),
            // dc_gain_db ≥ 40·1.4 = 56, gbw ≥ 30·5 = 150 MHz,
            // supply current ≤ 150·0.5 = 75 µA.
            goal: vec![1.4, 5.0, 0.5],
        });
    }
    if want("inv") {
        out.push(Case {
            name: "SpiceInverterChain",
            circuit: Arc::new(glova_circuits::SpiceInverterChain::new(stages)),
            // current ≤ 44% of the base budget, out_high ≥ 0.75 V,
            // out_low ≤ 60 mV.
            goal: vec![0.44, 1.25, 0.4],
        });
    }
    if want("senseamp") {
        out.push(Case {
            name: "SpiceSenseAmpArray",
            circuit: Arc::new(glova_circuits::SpiceSenseAmpArray::new(5, 4)),
            // bl_diff ≥ 12·1.5 = 18 mV, droop ≤ 85%, current ≤ 75%.
            goal: vec![1.5, 0.85, 0.75],
        });
    }
    assert!(!out.is_empty(), "no circuit matched --circuits {selected}");
    out
}

fn flag(args: &[String], name: &str) -> Option<String> {
    args.iter().position(|a| a == name).and_then(|i| args.get(i + 1)).cloned()
}

fn flag_usize(args: &[String], name: &str, default: usize) -> usize {
    flag(args, name).map_or(default, |v| {
        v.parse().unwrap_or_else(|_| {
            eprintln!("{name} expects an integer, got `{v}`");
            std::process::exit(2);
        })
    })
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let engine = engine_from_args(&args);
    let selected = flag(&args, "--circuits").unwrap_or_else(|| "ota,inv".to_string());
    let steps = flag_usize(&args, "--steps", 120);
    let seed = flag_usize(&args, "--seed", 1) as u64;
    let stages = flag_usize(&args, "--stages", 8);
    let k = flag_usize(&args, "--k", 5);
    let rerank = flag_usize(&args, "--rerank", 10);
    let yield_samples = flag_usize(&args, "--yield-samples", 0);
    let family = args.iter().any(|a| a == "--family");
    let probe = args.iter().any(|a| a == "--probe");
    let goal_override: Option<Vec<f64>> = flag(&args, "--goal").map(|v| {
        v.split(',')
            .map(|s| {
                s.trim().parse().unwrap_or_else(|_| {
                    eprintln!("--goal expects comma-separated floats, got `{v}`");
                    std::process::exit(2);
                })
            })
            .collect()
    });

    let mut cases = cases(&selected, stages);
    if let Some(goal) = &goal_override {
        for case in &mut cases {
            case.goal.clone_from(goal);
        }
    }
    if probe {
        for case in &cases {
            probe_case(case, seed);
        }
        return;
    }

    let mut campaigns: Vec<(String, String, CampaignResult)> = Vec::new();
    let mut summary: Vec<(String, Option<u64>, Option<u64>)> = Vec::new();
    for case in &cases {
        let base = CampaignConfig::quick(VerificationMethod::Corner)
            .with_engine(engine)
            .with_cache(EvalCacheConfig::default())
            .with_goal(case.goal.clone())
            .with_max_steps(steps)
            .with_yield_estimate(yield_samples);
        println!("== {} (goal {:?}, seed {seed}) ==", case.name, case.goal);
        let full = run_arm(case, base.clone(), "full", seed);
        let pruned =
            run_arm(case, base.with_pruning(PruningConfig::new(k, rerank)), "pruned", seed);
        let ratio = sim_ratio(&full, &pruned);
        println!(
            "   sims-to-success {} (full) vs {} (pruned)  =>  ratio {}\n",
            full.sims_to_success.map_or("-".into(), |s| s.to_string()),
            pruned.sims_to_success.map_or("-".into(), |s| s.to_string()),
            fmt_ratio(ratio),
        );
        summary.push((case.name.to_string(), full.sims_to_success, pruned.sims_to_success));
        campaigns.push((case.name.to_string(), "full".to_string(), full));
        campaigns.push((case.name.to_string(), "pruned".to_string(), pruned));
    }

    let mut family_results: Vec<(Vec<f64>, CampaignResult)> = Vec::new();
    if family {
        family_results = run_family_demo(steps, engine, seed);
    }

    if report_requested(&args) {
        let json = render_json(engine, seed, &campaigns, &family_results, &summary);
        match glova_bench::report::write_json_to_repo_root("campaign", &json) {
            Ok(path) => eprintln!("wrote {}", path.display()),
            Err(err) => eprintln!("failed to write BENCH_campaign.json: {err}"),
        }
    }
}

/// Runs one campaign arm and prints its trajectory summary.
fn run_arm(case: &Case, config: CampaignConfig, mode: &str, seed: u64) -> CampaignResult {
    let campaign = SizingCampaign::new(case.circuit.clone(), config);
    let result = campaign.run(seed);
    let tail = result.steps.last();
    println!(
        "   {mode:6} {} in {} steps  init {}  total {} sims  pruned {:.0}%  wall {:.2}s",
        if result.success { "solved" } else { "FAILED" },
        result.steps.len(),
        result.init_sims,
        result.total_sims,
        100.0 * result.pruning.pruned_fraction(),
        result.wall.as_secs_f64(),
    );
    if let Some(s) = tail {
        println!(
            "          last step: worst {:+.3}  best {:+.3}  pass {:.0}%  corners {}/{}",
            s.worst_reward,
            s.best_reward,
            100.0 * s.pass_fraction,
            s.active_corners,
            s.corner_count,
        );
    }
    if let Some(y) = &result.yield_estimate {
        println!("          yield {y}");
    }
    result
}

/// PPAAS-style goal family on the OTA: one shared agent, three targets
/// from relaxed to tight.
fn run_family_demo(steps: usize, engine: EngineSpec, seed: u64) -> Vec<(Vec<f64>, CampaignResult)> {
    let goals = vec![vec![1.1, 2.0, 0.9], vec![1.3, 4.0, 0.6], vec![1.45, 5.5, 0.5]];
    println!("== SpiceOta goal family (shared agent, {} targets) ==", goals.len());
    let config = CampaignConfig::quick(VerificationMethod::Corner)
        .with_engine(engine)
        .with_cache(EvalCacheConfig::default())
        .with_max_steps(steps);
    let campaign = SizingCampaign::new(Arc::new(glova_circuits::SpiceOta::new()), config);
    let results = campaign.run_family(&goals, seed);
    for (goal, r) in goals.iter().zip(&results) {
        println!(
            "   goal {goal:?}: {} after {} steps, {} sims",
            if r.success { "solved" } else { "failed" },
            r.steps.len(),
            r.total_sims,
        );
    }
    println!();
    goals.into_iter().zip(results).collect()
}

/// Prints worst-case metric ranges of Latin-hypercube designs over the
/// corner grid — the data behind the per-circuit goal factors.
fn probe_case(case: &Case, seed: u64) {
    let problem = SizingProblem::new(case.circuit.clone(), VerificationMethod::Corner);
    let spec = problem.circuit().spec().clone();
    let corners = problem.config().corners.clone();
    let mut rng = seeded(seed);
    let mut designs = latin_hypercube(16, problem.dim(), &mut rng);
    designs.push(vec![0.5; problem.dim()]);
    println!("== probe {} ({} designs x {} corners) ==", case.name, designs.len(), corners.len());
    for m in spec.metrics() {
        let dir = match m.goal {
            Goal::Above => ">=",
            Goal::Below => "<=",
        };
        print!("   {:18} {} {:>9.3}  worst-case per design:", m.name, dir, m.limit);
        let mut best = f64::NEG_INFINITY;
        for x in &designs {
            let h = glova_variation::sampler::MismatchVector::nominal(
                problem.circuit().mismatch_domain(x).dim(),
            );
            let worst = (0..corners.len())
                .map(|ci| {
                    let outcome = problem.simulate(x, &corners.corner(ci), &h);
                    let idx = spec
                        .metrics()
                        .iter()
                        .position(|s| s.name == m.name)
                        .expect("metric in spec");
                    outcome.metrics[idx]
                })
                .fold(
                    match m.goal {
                        Goal::Above => f64::INFINITY,
                        Goal::Below => f64::NEG_INFINITY,
                    },
                    |acc, v| match m.goal {
                        Goal::Above => acc.min(v),
                        Goal::Below => acc.max(v),
                    },
                );
            print!(" {worst:8.2}");
            best = best.max(match m.goal {
                Goal::Above => worst,
                Goal::Below => -worst,
            });
        }
        let achievable = match m.goal {
            Goal::Above => best,
            Goal::Below => -best,
        };
        println!("  | best achievable {achievable:8.2}");
    }
    println!();
}

fn sim_ratio(full: &CampaignResult, pruned: &CampaignResult) -> f64 {
    match (full.sims_to_success, pruned.sims_to_success) {
        (Some(f), Some(p)) if p > 0 => f as f64 / p as f64,
        _ => f64::NAN,
    }
}

// ---- JSON serialization (hand-rolled; see report.rs for the idiom) ------

fn json_u64_opt(v: Option<u64>) -> String {
    v.map_or("null".to_string(), |x| x.to_string())
}

fn json_f64_array(values: impl Iterator<Item = f64>) -> String {
    let items: Vec<String> = values.map(json_f64).collect();
    format!("[{}]", items.join(","))
}

fn campaign_json(circuit: &str, mode: &str, r: &CampaignResult) -> String {
    let goal =
        r.goal_factors.as_ref().map_or("null".to_string(), |g| json_f64_array(g.iter().copied()));
    let final_design =
        r.final_design.as_ref().map_or("null".to_string(), |x| json_f64_array(x.iter().copied()));
    let yield_json = r.yield_estimate.as_ref().map_or("null".to_string(), |y| {
        format!(
            concat!(
                "{{\"samples\":{},\"passes\":{},\"yield_point\":{},",
                "\"confidence\":{},\"interval\":[{},{}],",
                "\"worst_corner\":{},\"worst_corner_yield\":{}}}"
            ),
            y.samples,
            y.passes,
            json_f64(y.yield_point),
            json_f64(y.confidence),
            json_f64(y.confidence_interval.0),
            json_f64(y.confidence_interval.1),
            y.worst_corner,
            json_f64(y.worst_corner_yield),
        )
    });
    let steps: Vec<String> = r.steps.iter().map(|s| s.step.to_string()).collect();
    let active: Vec<String> = r.steps.iter().map(|s| s.active_corners.to_string()).collect();
    let sims: Vec<String> = r.steps.iter().map(|s| s.sims.to_string()).collect();
    let full_grid: Vec<String> = r.steps.iter().map(|s| s.full_grid.to_string()).collect();
    format!(
        concat!(
            "{{\"circuit\":{},\"mode\":{},\"goal_factors\":{},\"success\":{},",
            "\"steps_taken\":{},\"init_sims\":{},\"sims_to_success\":{},",
            "\"total_sims\":{},\"wall_seconds\":{},\"pruned_fraction\":{},",
            "\"full_steps\":{},\"pruned_steps\":{},\"best_reward\":{},",
            "\"final_design\":{},\"yield\":{},\"trajectory\":{{",
            "\"step\":[{}],\"active_corners\":[{}],\"sims\":[{}],",
            "\"worst_reward\":{},\"best_reward\":{},\"pass_fraction\":{},",
            "\"full_grid\":[{}],\"wall_ms\":{}}}}}"
        ),
        json_string(circuit),
        json_string(mode),
        goal,
        r.success,
        r.steps.len(),
        r.init_sims,
        json_u64_opt(r.sims_to_success),
        r.total_sims,
        json_f64(r.wall.as_secs_f64()),
        json_f64(r.pruning.pruned_fraction()),
        r.pruning.full_steps,
        r.pruning.pruned_steps,
        json_f64(r.best_reward),
        final_design,
        yield_json,
        steps.join(","),
        active.join(","),
        sims.join(","),
        json_f64_array(r.steps.iter().map(|s| s.worst_reward)),
        json_f64_array(r.steps.iter().map(|s| s.best_reward)),
        json_f64_array(r.steps.iter().map(|s| s.pass_fraction)),
        full_grid.join(","),
        json_f64_array(r.steps.iter().map(|s| s.wall.as_secs_f64() * 1000.0)),
    )
}

fn render_json(
    engine: EngineSpec,
    seed: u64,
    campaigns: &[(String, String, CampaignResult)],
    family: &[(Vec<f64>, CampaignResult)],
    summary: &[(String, Option<u64>, Option<u64>)],
) -> String {
    let git_rev = resolve_git_rev().map_or("null".to_string(), |r| json_string(&r));
    let campaign_items: Vec<String> =
        campaigns.iter().map(|(circuit, mode, r)| campaign_json(circuit, mode, r)).collect();
    let family_items: Vec<String> =
        family.iter().map(|(_, r)| campaign_json("SpiceOta", "family", r)).collect();
    let summary_items: Vec<String> = summary
        .iter()
        .map(|(circuit, full, pruned)| {
            let ratio = match (full, pruned) {
                (Some(f), Some(p)) if *p > 0 => json_f64(*f as f64 / *p as f64),
                _ => "null".to_string(),
            };
            format!(
                concat!(
                    "{{\"circuit\":{},\"full_sims_to_success\":{},",
                    "\"pruned_sims_to_success\":{},\"pruning_sim_ratio\":{}}}"
                ),
                json_string(circuit),
                json_u64_opt(*full),
                json_u64_opt(*pruned),
                ratio,
            )
        })
        .collect();
    format!(
        concat!(
            "{{\n  \"name\": \"campaign\",\n  \"schema_version\": {},\n",
            "  \"git_rev\": {},\n  \"engine\": {},\n  \"seed\": {},\n",
            "  \"campaigns\": [{}],\n  \"family\": [{}],\n  \"summary\": [{}]\n}}\n"
        ),
        SCHEMA_VERSION,
        git_rev,
        json_string(&format!("{engine}")),
        seed,
        campaign_items.join(","),
        family_items.join(","),
        summary_items.join(","),
    )
}
