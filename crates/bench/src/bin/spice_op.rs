//! SPICE operating-point microbenchmark: DC solves across circuit sizes,
//! solver backends and Jacobian strategies.
//!
//! ```sh
//! cargo run --release -p glova-bench --bin spice_op
//! cargo run --release -p glova-bench --bin spice_op -- --backend sparse
//! cargo run --release -p glova-bench --bin spice_op -- \
//!     --sizes 4,24,64,128 --solves 500 --report
//! cargo run --release -p glova-bench --bin spice_op -- --engine threaded:4
//! ```
//!
//! Without `--backend`, every size runs **both** dense and sparse (plus
//! the auto selection as a sanity row), which is the dense-vs-sparse
//! scaling curve the perf trajectory tracks; `--backend dense|sparse|auto`
//! restricts the matrix to one backend — the CLI override for the
//! size-based auto-selection. `--engine threaded:N` runs the solve sweep
//! through an [`EvalEngine`](glova::engine::EvalEngine) over an
//! [`OpSolverPool`] — per-worker solvers cloned from one primed
//! prototype, the execution model of the pipeline's threaded
//! corner/mismatch sweeps. Timings are best-of-two; `--report` writes
//! `BENCH_spice_op.json`.

use glova::engine::EngineSpec;
use glova_bench::report::{BenchRecord, BenchReport};
use glova_bench::{report_requested, write_report};
use glova_spice::dc::{OpSolver, OpSolverPool};
use glova_spice::mna::{NewtonOptions, SolverBackend};
use glova_spice::netlist::{inverter_chain, rc_ladder, Netlist};
use std::sync::atomic::{AtomicBool, Ordering};
use std::time::{Duration, Instant};

fn flag(args: &[String], name: &str) -> Option<String> {
    args.iter().position(|a| a == name).and_then(|i| args.get(i + 1)).cloned()
}

/// Best-of-two wall time for `solves` repeated operating-point solves
/// through a persistent [`OpSolver`] — the sweep pattern (template and,
/// on the sparse backend, the symbolic factorization built once).
/// `None` when the backend cannot solve the circuit.
fn solve_op(netlist: &Netlist, options: &NewtonOptions, solves: usize) -> Option<Duration> {
    let mut solver = OpSolver::new(netlist, *options);
    let mut best = Duration::MAX;
    for _ in 0..2 {
        let start = Instant::now();
        for _ in 0..solves {
            if solver.solve().is_err() {
                return None;
            }
        }
        best = best.min(start.elapsed());
    }
    Some(best)
}

/// [`solve_op`] dispatched through an [`EvalEngine`](glova::engine::EvalEngine): the batch of
/// repeated solves fans out over the engine's workers, each checking a
/// per-worker solver out of a shared [`OpSolverPool`] (symbolic analysis
/// once, numeric refactorizations per worker).
fn solve_op_engine(
    netlist: &Netlist,
    options: &NewtonOptions,
    solves: usize,
    engine: EngineSpec,
) -> Option<Duration> {
    let pool = OpSolverPool::new(netlist, *options).ok()?;
    let engine = engine.build();
    let failed = AtomicBool::new(false);
    let mut best = Duration::MAX;
    for _ in 0..2 {
        let start = Instant::now();
        engine.run(solves, &|_| {
            if pool.with_solver(|solver| solver.solve().is_err()) {
                failed.store(true, Ordering::Relaxed);
            }
        });
        if failed.load(Ordering::Relaxed) {
            return None;
        }
        best = best.min(start.elapsed());
    }
    Some(best)
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let solves: usize = flag(&args, "--solves").and_then(|s| s.parse().ok()).unwrap_or(200);
    let sizes: Vec<usize> = flag(&args, "--sizes")
        .map(|s| {
            s.split(',')
                .map(|v| {
                    v.trim().parse().unwrap_or_else(|_| {
                        eprintln!("--sizes expects a comma-separated list of stage counts");
                        std::process::exit(2);
                    })
                })
                .collect()
        })
        .unwrap_or_else(|| vec![4, 24, 64, 128]);
    let only: Option<SolverBackend> = flag(&args, "--backend").map(|s| {
        SolverBackend::parse(&s).unwrap_or_else(|err| {
            eprintln!("{err}");
            std::process::exit(2);
        })
    });
    let backends: Vec<SolverBackend> = match only {
        Some(b) => vec![b],
        None => vec![SolverBackend::Dense, SolverBackend::Sparse, SolverBackend::Auto],
    };
    let engine: EngineSpec = flag(&args, "--engine")
        .map(|s| {
            EngineSpec::parse(&s).unwrap_or_else(|err| {
                eprintln!("{err}");
                std::process::exit(2);
            })
        })
        .unwrap_or(EngineSpec::Sequential);

    println!("=== spice_op: DC operating-point solves ({solves} solves, best of 2) ===\n");
    let mut report = BenchReport::new("spice_op");

    let mut circuits: Vec<(String, Netlist)> =
        sizes.iter().map(|&s| (format!("inv_chain{s}"), inverter_chain(s))).collect();
    circuits.push(("rc_ladder64".to_string(), rc_ladder(64, 1e3, 1e-12)));

    for (name, netlist) in &circuits {
        let mut dense_wall: Option<Duration> = None;
        for &backend in &backends {
            let options = NewtonOptions::default().with_backend(backend);
            let Some(wall) = solve_op(netlist, &options, solves) else {
                // The dense reference runs out of numerical headroom on
                // the largest chains (border-block cancellation) — report
                // the gap instead of crashing the whole matrix.
                println!(
                    "{:<14} {:>4} unknowns  {:<7} does not converge",
                    name,
                    netlist.unknown_count(),
                    format!("{backend}"),
                );
                continue;
            };
            let mut record = BenchRecord::new(
                "spice_op",
                name.clone(),
                format!("{backend}"),
                netlist.unknown_count(),
                solves as u64,
                wall,
            );
            if backend == SolverBackend::Dense {
                dense_wall = Some(wall);
            } else if let Some(reference) = dense_wall {
                record =
                    record.with_speedup(reference.as_secs_f64() / wall.as_secs_f64().max(1e-12));
            }
            let speedup = record
                .speedup_vs_sequential
                .map_or_else(|| "      -".to_string(), |s| format!("{s:6.2}x"));
            println!(
                "{:<14} {:>4} unknowns  {:<7} {:>9.1} ops/s  vs dense {}",
                record.circuit, record.batch, record.engine, record.sims_per_sec, speedup
            );
            report.push(record);

            // Engine-dispatched sweep: same workload fanned out over
            // per-worker pool solvers, speedup vs this backend's
            // sequential wall.
            if engine != EngineSpec::Sequential {
                let workers = engine.resolved_workers();
                match solve_op_engine(netlist, &options, solves, engine) {
                    Some(thr_wall) => {
                        let thr = BenchRecord::new(
                            "spice_op",
                            name.clone(),
                            format!("{backend}+threaded:{workers}"),
                            netlist.unknown_count(),
                            solves as u64,
                            thr_wall,
                        )
                        .with_speedup(wall.as_secs_f64() / thr_wall.as_secs_f64().max(1e-12));
                        println!(
                            "{:<14} {:>4} unknowns  {:<7} {:>9.1} ops/s  vs seq   {:6.2}x",
                            thr.circuit,
                            thr.batch,
                            thr.engine,
                            thr.sims_per_sec,
                            thr.speedup_vs_sequential.unwrap_or(0.0)
                        );
                        report.push(thr);
                    }
                    // A convergence failure must be as loud as on the
                    // plain path — a missing row reads as "not
                    // requested", hiding exactly the regression the
                    // artifact exists to surface.
                    None => println!(
                        "{:<14} {:>4} unknowns  {:<7} does not converge",
                        name,
                        netlist.unknown_count(),
                        format!("{backend}+threaded:{workers}"),
                    ),
                }
            }
        }
    }

    if report_requested(&args) {
        write_report(&report);
    }
}
