//! SPICE operating-point microbenchmark: DC solves across circuit sizes,
//! solver backends and Jacobian strategies, plus the sweep fast paths
//! (value-only retargeting, partial refactorization, symbolic cold-start).
//!
//! ```sh
//! cargo run --release -p glova-bench --bin spice_op
//! cargo run --release -p glova-bench --bin spice_op -- --backend sparse
//! cargo run --release -p glova-bench --bin spice_op -- \
//!     --sizes 4,24,64,128 --solves 500 --report
//! cargo run --release -p glova-bench --bin spice_op -- --engine threaded:4
//! cargo run --release -p glova-bench --bin spice_op -- --circuits inv,rc,ota,senseamp
//! cargo run --release -p glova-bench --bin spice_op -- --retarget values
//! cargo run --release -p glova-bench --bin spice_op -- --order amd
//! ```
//!
//! Without `--backend`, every size runs **both** dense and sparse (plus
//! the auto selection as a sanity row), which is the dense-vs-sparse
//! scaling curve the perf trajectory tracks; `--backend dense|sparse|auto`
//! restricts the matrix to one backend — the CLI override for the
//! size-based auto-selection. `--engine threaded:N` runs the solve sweep
//! through an [`EvalEngine`](glova::engine::EvalEngine) over an
//! [`OpSolverPool`] — per-worker solvers cloned from one primed
//! prototype, the execution model of the pipeline's threaded
//! corner/mismatch sweeps. `--circuits inv,rc,ota,senseamp` picks the
//! circuit set (default `inv,rc`; `ota` adds the two-stage Miller OTA;
//! `senseamp` adds 2-D DRAM sense-amp arrays out to 508 and 1026
//! unknowns — the fill-heavy workload the AMD pre-ordering targets).
//! `--order amd|markowitz` selects the sparse fill-reducing ordering
//! used by every solve (default `markowitz`, the historical behaviour);
//! the symbolic section always times **both** orderings side by side
//! and reports the AMD speedup plus its threshold-pivot fallback count.
//! The retarget
//! section sweeps prebuilt same-topology netlist variants through one
//! persistent solver and reports the **per-point retarget overhead** for
//! the value-only fast path vs the template-rebuild path (`--retarget
//! values|rebuild` restricts the modes); the AC-retarget section is its
//! small-signal sibling — per-frequency-point assembly through the
//! compiled event template vs the netlist re-walk on a forced-sparse
//! [`AcSolverPool`]; the symbolic section times the
//! sparse factor / full-refactor / partial-refactor trio per pattern.
//! Timings are best-of-two; `--report` writes `BENCH_spice_op.json`.

use glova::engine::EngineSpec;
use glova_bench::report::{BenchRecord, BenchReport};
use glova_bench::{report_requested, write_report};
use glova_linalg::sparse::SparseLu;
use glova_linalg::FillOrdering;
use glova_spice::ac::{log_sweep, AcSolverPool};
use glova_spice::dc::{OpSolver, OpSolverPool};
use glova_spice::mna::{NewtonOptions, SolverBackend, SparseAssemblyTemplate, StampContext};
use glova_spice::netlist::{
    inverter_chain, inverter_chain_with_load, ota_two_stage, rc_ladder, sense_amp_array, Netlist,
    OtaParams,
};
use std::sync::atomic::{AtomicBool, Ordering};
use std::time::{Duration, Instant};

fn flag(args: &[String], name: &str) -> Option<String> {
    args.iter().position(|a| a == name).and_then(|i| args.get(i + 1)).cloned()
}

/// Best-of-two wall time for `solves` repeated operating-point solves
/// through a persistent [`OpSolver`] — the sweep pattern (template and,
/// on the sparse backend, the symbolic factorization built once).
/// `None` when the backend cannot solve the circuit.
fn solve_op(netlist: &Netlist, options: &NewtonOptions, solves: usize) -> Option<Duration> {
    let mut solver = OpSolver::new(netlist, *options);
    let mut best = Duration::MAX;
    for _ in 0..2 {
        let start = Instant::now();
        for _ in 0..solves {
            if solver.solve().is_err() {
                return None;
            }
        }
        best = best.min(start.elapsed());
    }
    Some(best)
}

/// [`solve_op`] dispatched through an [`EvalEngine`](glova::engine::EvalEngine): the batch of
/// repeated solves fans out over the engine's workers, each checking a
/// per-worker solver out of a shared [`OpSolverPool`] (symbolic analysis
/// once, numeric refactorizations per worker).
fn solve_op_engine(
    netlist: &Netlist,
    options: &NewtonOptions,
    solves: usize,
    engine: EngineSpec,
) -> Option<Duration> {
    let pool = OpSolverPool::new(netlist, *options).ok()?;
    let engine = engine.build();
    let failed = AtomicBool::new(false);
    let mut best = Duration::MAX;
    for _ in 0..2 {
        let start = Instant::now();
        engine.run(solves, &|_| {
            if pool.with_solver(|solver| solver.solve().is_err()) {
                failed.store(true, Ordering::Relaxed);
            }
        });
        if failed.load(Ordering::Relaxed) {
            return None;
        }
        best = best.min(start.elapsed());
    }
    Some(best)
}

/// Measures the per-point retarget overhead over prebuilt same-topology
/// variants: the solver re-points at each variant in turn **without**
/// solving, so the number isolates exactly the work the sweep pays on
/// top of the solve. Returns best-of-two wall for `passes` passes over
/// the variant list.
fn retarget_sweep(
    variants: &[Netlist],
    options: &NewtonOptions,
    values_mode: bool,
    passes: usize,
) -> Option<Duration> {
    let mut solver = OpSolver::primed(&variants[0], *options).ok()?;
    let mut best = Duration::MAX;
    for _ in 0..2 {
        let start = Instant::now();
        for _ in 0..passes {
            for nl in variants {
                if values_mode {
                    solver.retarget(nl);
                } else {
                    solver.retarget_rebuild(nl);
                }
            }
        }
        best = best.min(start.elapsed());
    }
    Some(best)
}

/// Full sweep cost (retarget **plus** solve) per point over the
/// prebuilt variants — the end-to-end number the retarget overhead is a
/// slice of.
fn retarget_solve_sweep(
    variants: &[Netlist],
    options: &NewtonOptions,
    values_mode: bool,
) -> Option<Duration> {
    let mut solver = OpSolver::primed(&variants[0], *options).ok()?;
    let mut best = Duration::MAX;
    for _ in 0..2 {
        let start = Instant::now();
        for nl in variants {
            if values_mode {
                solver.retarget(nl);
            } else {
                solver.retarget_rebuild(nl);
            }
            if solver.solve().is_err() {
                return None;
            }
        }
        best = best.min(start.elapsed());
    }
    Some(best)
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let solves: usize = flag(&args, "--solves").and_then(|s| s.parse().ok()).unwrap_or(200);
    let sizes: Vec<usize> = flag(&args, "--sizes")
        .map(|s| {
            s.split(',')
                .map(|v| {
                    v.trim().parse().unwrap_or_else(|_| {
                        eprintln!("--sizes expects a comma-separated list of stage counts");
                        std::process::exit(2);
                    })
                })
                .collect()
        })
        .unwrap_or_else(|| vec![4, 24, 64, 128]);
    let only: Option<SolverBackend> = flag(&args, "--backend").map(|s| {
        SolverBackend::parse(&s).unwrap_or_else(|err| {
            eprintln!("{err}");
            std::process::exit(2);
        })
    });
    let backends: Vec<SolverBackend> = match only {
        Some(b) => vec![b],
        None => vec![SolverBackend::Dense, SolverBackend::Sparse, SolverBackend::Auto],
    };
    let engine: EngineSpec = flag(&args, "--engine")
        .map(|s| {
            EngineSpec::parse(&s).unwrap_or_else(|err| {
                eprintln!("{err}");
                std::process::exit(2);
            })
        })
        .unwrap_or(EngineSpec::Sequential);

    let order: FillOrdering = flag(&args, "--order")
        .map(|s| {
            FillOrdering::parse(&s).unwrap_or_else(|err| {
                eprintln!("{err}");
                std::process::exit(2);
            })
        })
        .unwrap_or_default();

    let circuit_set: Vec<String> = flag(&args, "--circuits")
        .unwrap_or_else(|| "inv,rc".to_string())
        .split(',')
        .map(|s| s.trim().to_string())
        .collect();
    for kind in &circuit_set {
        if !matches!(kind.as_str(), "inv" | "rc" | "ota" | "senseamp") {
            eprintln!("--circuits expects a comma-separated subset of inv,rc,ota,senseamp");
            std::process::exit(2);
        }
    }
    let retarget_modes: Vec<(&str, bool)> = match flag(&args, "--retarget").as_deref() {
        None => vec![("rebuild", false), ("values", true)],
        Some("values") => vec![("values", true)],
        Some("rebuild") => vec![("rebuild", false)],
        Some(other) => {
            eprintln!("unknown retarget mode `{other}` (use values|rebuild)");
            std::process::exit(2);
        }
    };

    println!(
        "=== spice_op: DC operating-point solves ({solves} solves, best of 2, {order} ordering) ===\n"
    );
    let mut report = BenchReport::new("spice_op");

    let mut circuits: Vec<(String, Netlist)> = Vec::new();
    if circuit_set.iter().any(|k| k == "inv") {
        circuits.extend(sizes.iter().map(|&s| (format!("inv_chain{s}"), inverter_chain(s))));
    }
    if circuit_set.iter().any(|k| k == "rc") {
        circuits.push(("rc_ladder64".to_string(), rc_ladder(64, 1e3, 1e-12)));
    }
    if circuit_set.iter().any(|k| k == "ota") {
        circuits.push(("ota_two_stage".to_string(), ota_two_stage(&OtaParams::nominal())));
    }
    if circuit_set.iter().any(|k| k == "senseamp") {
        // 2-D sense-amp arrays: unknowns = rows·cols + rows + 2·cols + 4,
        // so these shapes land the scaling curve at 92 / 508 / 1026
        // unknowns — the last two are the 512- and 1024-unknown rungs.
        circuits.extend(
            [(8usize, 8usize), (21, 21), (30, 31)]
                .iter()
                .map(|&(r, c)| (format!("senseamp{r}x{c}"), sense_amp_array(r, c))),
        );
    }

    // The dense reference is O(n³) per Newton iteration — past a few
    // hundred unknowns it stops being a reference and becomes the whole
    // benchmark, so the dense rows stop there and the large arrays trim
    // the solve count (the per-op rates stay comparable).
    const DENSE_CUTOFF: usize = 300;
    for (name, netlist) in &circuits {
        let n = netlist.unknown_count();
        let solves = if n > 400 { (solves / 10).max(10) } else { solves };
        let mut dense_wall: Option<Duration> = None;
        for &backend in &backends {
            if backend == SolverBackend::Dense && n > DENSE_CUTOFF {
                println!("{name:<14} {n:>4} unknowns  dense   skipped (past dense cutoff)");
                continue;
            }
            let options = NewtonOptions::default().with_backend(backend).with_ordering(order);
            let Some(wall) = solve_op(netlist, &options, solves) else {
                // The dense reference runs out of numerical headroom on
                // the largest chains (border-block cancellation) — report
                // the gap instead of crashing the whole matrix.
                println!(
                    "{:<14} {:>4} unknowns  {:<7} does not converge",
                    name,
                    netlist.unknown_count(),
                    format!("{backend}"),
                );
                continue;
            };
            let mut record = BenchRecord::new(
                "spice_op",
                name.clone(),
                format!("{backend}"),
                netlist.unknown_count(),
                solves as u64,
                wall,
            );
            if backend == SolverBackend::Dense {
                dense_wall = Some(wall);
            } else if let Some(reference) = dense_wall {
                record =
                    record.with_speedup(reference.as_secs_f64() / wall.as_secs_f64().max(1e-12));
            }
            let speedup = record
                .speedup_vs_sequential
                .map_or_else(|| "      -".to_string(), |s| format!("{s:6.2}x"));
            println!(
                "{:<14} {:>4} unknowns  {:<7} {:>9.1} ops/s  vs dense {}",
                record.circuit, record.batch, record.engine, record.sims_per_sec, speedup
            );
            report.push(record);

            // Engine-dispatched sweep: same workload fanned out over
            // per-worker pool solvers, speedup vs this backend's
            // sequential wall.
            if engine != EngineSpec::Sequential {
                let workers = engine.resolved_workers();
                match solve_op_engine(netlist, &options, solves, engine) {
                    Some(thr_wall) => {
                        let thr = BenchRecord::new(
                            "spice_op",
                            name.clone(),
                            format!("{backend}+threaded:{workers}"),
                            netlist.unknown_count(),
                            solves as u64,
                            thr_wall,
                        )
                        .with_speedup(wall.as_secs_f64() / thr_wall.as_secs_f64().max(1e-12));
                        println!(
                            "{:<14} {:>4} unknowns  {:<7} {:>9.1} ops/s  vs seq   {:6.2}x",
                            thr.circuit,
                            thr.batch,
                            thr.engine,
                            thr.sims_per_sec,
                            thr.speedup_vs_sequential.unwrap_or(0.0)
                        );
                        report.push(thr);
                    }
                    // A convergence failure must be as loud as on the
                    // plain path — a missing row reads as "not
                    // requested", hiding exactly the regression the
                    // artifact exists to surface.
                    None => println!(
                        "{:<14} {:>4} unknowns  {:<7} does not converge",
                        name,
                        netlist.unknown_count(),
                        format!("{backend}+threaded:{workers}"),
                    ),
                }
            }
        }
    }

    // ---- retarget: per-point sweep overhead, values vs rebuild ---------
    // Prebuilt same-topology variants (netlist construction itself is
    // common to both modes and excluded); the overhead column is the
    // retarget-only cost per point, the ops/s column the full
    // retarget+solve sweep throughput.
    let retarget_sizes: Vec<usize> = sizes.iter().copied().filter(|&s| s <= 64).collect::<Vec<_>>();
    println!("\n--- per-point retarget overhead (prebuilt variants) ---");
    for &stages in &retarget_sizes {
        let name = format!("inv_chain{stages}");
        let variants: Vec<Netlist> = (0..64)
            .map(|i| inverter_chain_with_load(stages, Some(8e3 + 60.0 * i as f64)))
            .collect();
        let passes = 8;
        for &backend in &backends {
            let options = NewtonOptions::default().with_backend(backend).with_ordering(order);
            let mut rebuild_us: Option<f64> = None;
            for &(mode, values_mode) in &retarget_modes {
                let Some(wall) = retarget_sweep(&variants, &options, values_mode, passes) else {
                    println!("{name:<14} {backend:<7} {mode:<8} failed to prime");
                    continue;
                };
                let points = (variants.len() * passes) as u64;
                let per_point_us = wall.as_secs_f64() * 1e6 / points as f64;
                let mut record = BenchRecord::new(
                    "spice_retarget",
                    name.clone(),
                    format!("{backend}+{mode}"),
                    variants.len(),
                    points,
                    wall,
                );
                let speedup = match (values_mode, rebuild_us) {
                    (true, Some(reference)) => {
                        let s = reference / per_point_us.max(1e-9);
                        record = record.with_speedup(s);
                        format!("{s:6.2}x vs rebuild")
                    }
                    _ => {
                        if !values_mode {
                            rebuild_us = Some(per_point_us);
                        }
                        String::new()
                    }
                };
                println!(
                    "{name:<14} {backend:<7} {mode:<8} {per_point_us:8.2} us/point  {speedup}"
                );
                report.push(record);

                // End-to-end sweep throughput (retarget + solve).
                if let Some(sweep_wall) = retarget_solve_sweep(&variants, &options, values_mode) {
                    let sweep = BenchRecord::new(
                        "spice_retarget_solve",
                        name.clone(),
                        format!("{backend}+{mode}"),
                        variants.len(),
                        variants.len() as u64,
                        sweep_wall,
                    );
                    println!(
                        "{name:<14} {backend:<7} {mode:<8} {:8.1} ops/s (retarget+solve)",
                        sweep.sims_per_sec
                    );
                    report.push(sweep);
                }
            }
        }
    }

    // ---- ac-retarget: per-point AC assembly, events vs re-walk ---------
    // The AC sibling of the DC retarget column: the pooled small-signal
    // solver rewrites a worker's value array per frequency point either
    // through the compiled event template (`restamp_point`) or through
    // the per-point netlist stamp walk (`restamp_point_rebuild`). No
    // factor or solve in the loop — the column isolates exactly the
    // per-point assembly overhead an AC sweep pays. The pool is forced
    // sparse (the dense backend has no per-point template to measure).
    println!("\n--- per-point AC retarget overhead (event template vs re-walk) ---");
    let mut ac_cases: Vec<(String, Netlist, &str)> = Vec::new();
    if circuit_set.iter().any(|k| k == "inv") {
        ac_cases.push(("inv_chain24".to_string(), inverter_chain(24), "VIN"));
    }
    if circuit_set.iter().any(|k| k == "rc") {
        ac_cases.push(("rc_ladder64".to_string(), rc_ladder(64, 1e3, 1e-12), "VIN"));
    }
    if circuit_set.iter().any(|k| k == "ota") {
        ac_cases.push(("ota_two_stage".to_string(), ota_two_stage(&OtaParams::nominal()), "VINP"));
    }
    if circuit_set.iter().any(|k| k == "senseamp") {
        ac_cases.push(("senseamp21x21".to_string(), sense_amp_array(21, 21), "VPRE"));
    }
    let ac_freqs = log_sweep(1e3, 1e9, 4);
    for (name, nl, source) in &ac_cases {
        let pool = match AcSolverPool::new(nl, source, &ac_freqs, SolverBackend::Sparse) {
            Ok(pool) => pool,
            Err(err) => {
                println!("{name:<14} AC pool failed to prime ({err}) — skipped");
                continue;
            }
        };
        let ac_passes = 400usize;
        let time_restamp = |retarget: bool| -> Duration {
            let mut best = Duration::MAX;
            for _ in 0..2 {
                let start = Instant::now();
                for _ in 0..ac_passes {
                    for &f in &ac_freqs {
                        let events = if retarget {
                            pool.restamp_point(f)
                        } else {
                            pool.restamp_point_rebuild(f)
                        };
                        std::hint::black_box(events);
                    }
                }
                best = best.min(start.elapsed());
            }
            best
        };
        let points = (ac_freqs.len() * ac_passes) as u64;
        let per_point_us = |d: Duration| d.as_secs_f64() * 1e6 / points as f64;
        let rewalk_wall = time_restamp(false);
        let events_wall = time_restamp(true);
        let ac_speedup = rewalk_wall.as_secs_f64() / events_wall.as_secs_f64().max(1e-12);
        println!(
            "{name:<14} sparse  rewalk {:8.3} us/point  events {:8.3} us/point  \
             {ac_speedup:6.2}x vs rewalk",
            per_point_us(rewalk_wall),
            per_point_us(events_wall),
        );
        report.push(BenchRecord::new(
            "spice_ac_retarget",
            name.clone(),
            "sparse+rewalk",
            ac_freqs.len(),
            points,
            rewalk_wall,
        ));
        report.push(
            BenchRecord::new(
                "spice_ac_retarget",
                name.clone(),
                "sparse+events",
                ac_freqs.len(),
                points,
                events_wall,
            )
            .with_speedup(ac_speedup),
        );
    }

    // ---- symbolic: sparse cold-start + partial refactorization ---------
    // factor = symbolic analysis + first numeric elimination; refactor =
    // numeric-only; refactor-partial = numeric over the dirty reachable
    // set (MOSFET stamps + gmin diagonal). The batch field of the
    // partial record carries the re-eliminated row count (vs dim for the
    // full rows), making the <100% coverage visible in the artifact.
    println!("\n--- sparse symbolic / partial-refactor costs ---");
    let mut symbolic_circuits: Vec<(String, Netlist)> = Vec::new();
    if circuit_set.iter().any(|k| k == "inv") {
        symbolic_circuits.extend(
            sizes
                .iter()
                .filter(|&&s| s + 4 >= SolverBackend::AUTO_SPARSE_THRESHOLD)
                .map(|&s| (format!("inv_chain{s}"), inverter_chain(s))),
        );
    }
    if circuit_set.iter().any(|k| k == "rc") {
        symbolic_circuits.push(("rc_ladder64".to_string(), rc_ladder(64, 1e3, 1e-12)));
    }
    if circuit_set.iter().any(|k| k == "senseamp") {
        symbolic_circuits.extend(
            [(8usize, 8usize), (21, 21), (30, 31)]
                .iter()
                .map(|&(r, c)| (format!("senseamp{r}x{c}"), sense_amp_array(r, c))),
        );
    }
    for (name, nl) in &symbolic_circuits {
        let ctx = StampContext { time: 0.0, step: None, gmin: 1e-3 };
        let template = SparseAssemblyTemplate::new(nl, &ctx);
        let n = template.dim();
        let mut a = template.new_system();
        let mut rhs = vec![0.0; n];
        template.assemble_into(&mut a, &mut rhs, &vec![0.0; n], 1e-3);
        let reps: u64 = 200;
        let mut best_factor = Duration::MAX;
        let mut lu = None;
        for _ in 0..2 {
            let start = Instant::now();
            for _ in 0..reps {
                lu = SparseLu::factor(&a).ok();
            }
            best_factor = best_factor.min(start.elapsed());
        }
        let Some(mut lu) = lu else {
            println!("{name:<14} singular at the primed point — skipped");
            continue;
        };
        let time_refresh = |lu: &mut SparseLu<f64>, partial: Option<&_>| -> Duration {
            let mut best = Duration::MAX;
            for _ in 0..2 {
                let start = Instant::now();
                for _ in 0..reps {
                    match partial {
                        Some(plan) => lu.refactor_partial(&a, plan).unwrap(),
                        None => lu.refactor(&a).unwrap(),
                    }
                }
                best = best.min(start.elapsed());
            }
            best
        };
        let best_refactor = time_refresh(&mut lu, None);
        let plan = lu.plan_partial(template.dirty_value_indices());
        let best_partial = time_refresh(&mut lu, Some(&plan));
        // Cold symbolic+factor under the AMD pre-ordering — the number
        // the ≥1.5× perfsuite gate compares against the Markowitz
        // `factor` row on the sense-amp arrays.
        let mut best_amd = Duration::MAX;
        let mut amd_fallbacks = 0;
        for _ in 0..2 {
            let start = Instant::now();
            for _ in 0..reps {
                if let Ok(amd_lu) = SparseLu::factor_with(&a, FillOrdering::Amd) {
                    amd_fallbacks = amd_lu.preorder_fallbacks();
                }
            }
            best_amd = best_amd.min(start.elapsed());
        }
        let us = |d: Duration| d.as_secs_f64() * 1e6 / reps as f64;
        println!(
            "{name:<14} {n:>4} unknowns  factor {:8.1} us  refactor {:6.2} us  \
             partial {:6.2} us ({}/{} rows)  symbolic ~{:.1} us",
            us(best_factor),
            us(best_refactor),
            us(best_partial),
            plan.rows_eliminated(),
            plan.dim(),
            us(best_factor) - us(best_refactor),
        );
        println!(
            "{:<14} {n:>4} unknowns  factor-amd {:6.1} us  {:6.2}x vs markowitz  \
             ({amd_fallbacks} pivot fallbacks)",
            "",
            us(best_amd),
            us(best_factor) / us(best_amd).max(1e-9),
        );
        for (engine, batch, wall) in [
            ("factor", n, best_factor),
            ("refactor", n, best_refactor),
            ("refactor-partial", plan.rows_eliminated(), best_partial),
        ] {
            report.push(BenchRecord::new(
                "spice_symbolic",
                name.clone(),
                engine,
                batch,
                reps,
                wall,
            ));
        }
        report.push(
            BenchRecord::new("spice_symbolic", name.clone(), "factor-amd", n, reps, best_amd)
                .with_speedup(us(best_factor) / us(best_amd).max(1e-9)),
        );
    }

    if report_requested(&args) {
        write_report(&report);
    }
}
