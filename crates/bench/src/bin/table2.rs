//! Regenerates **Table II** of the paper: optimization results on the
//! three real-world circuits under all three verification methods, for
//! GLOVA (Ours), PVTSizing and RobustAnalog.
//!
//! ```sh
//! cargo run --release -p glova-bench --bin table2            # full (default 3 seeds)
//! cargo run --release -p glova-bench --bin table2 -- --quick # reduced budgets, 2 seeds
//! cargo run --release -p glova-bench --bin table2 -- --seeds 5
//! cargo run --release -p glova-bench --bin table2 -- --engine threaded:8 --report
//! ```
//!
//! `--report` writes per-cell simulation throughput to
//! `BENCH_table2.json`.
//!
//! Expected *shape* (absolute numbers depend on the analytic substrate,
//! see `EXPERIMENTS.md`): GLOVA needs the fewest iterations and
//! simulations in every cell, PVTSizing sits in between, RobustAnalog is
//! the most expensive and drops success rate on the hard DRAM cells.

use glova_bench::report::{BenchRecord, BenchReport};
use glova_bench::{
    engine_from_args, fmt_mean, fmt_ratio, report_requested, run_cell, table2_circuits,
    write_report, Budget, CellResult, Framework,
};
use glova_variation::config::VerificationMethod;
use std::time::Duration;

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let quick = args.iter().any(|a| a == "--quick");
    let seeds: u64 = args
        .iter()
        .position(|a| a == "--seeds")
        .and_then(|i| args.get(i + 1))
        .and_then(|s| s.parse().ok())
        .unwrap_or(if quick { 2 } else { 3 });
    let engine = engine_from_args(&args);

    println!("=== Table II: optimization results on real-world circuits ===");
    println!(
        "(seeds per cell: {seeds}{}; engine: {engine}; means over successful runs only, as in the paper)\n",
        if quick { ", quick budgets" } else { "" }
    );

    let circuits = table2_circuits();
    let methods = VerificationMethod::ALL;

    // results[circuit][method][framework]
    let mut results: Vec<Vec<Vec<CellResult>>> = Vec::new();
    for (name, circuit) in &circuits {
        let budget = Budget::for_circuit(name, quick);
        let mut per_method = Vec::new();
        for method in methods {
            let mut per_framework = Vec::new();
            for framework in Framework::ALL {
                eprintln!("running {name} / {method} / {}...", framework.name());
                per_framework.push(run_cell(circuit, method, framework, seeds, budget, engine));
            }
            per_method.push(per_framework);
        }
        results.push(per_method);
    }

    // Header
    print!("{:<22}", "Testcases");
    for (name, _) in &circuits {
        print!("{:^33}", name);
    }
    println!();
    print!("{:<22}", "Verification");
    for _ in &circuits {
        for m in methods {
            print!("{:^11}", m.short_name());
        }
    }
    println!();

    let row = |label: &str, f: &dyn Fn(&CellResult, &CellResult) -> String, fw: usize| {
        print!("{label:<22}");
        for per_method in &results {
            for per_framework in per_method {
                let ours = &per_framework[0];
                print!("{:^11}", f(&per_framework[fw], ours));
            }
        }
        println!();
    };

    println!("\n-- RL Iteration --");
    for (fi, fw) in Framework::ALL.iter().enumerate() {
        row(fw.name(), &|c, _| fmt_mean(c.mean_iterations), fi);
    }
    println!("\n-- # Simulation --");
    for (fi, fw) in Framework::ALL.iter().enumerate() {
        row(fw.name(), &|c, _| fmt_mean(c.mean_simulations), fi);
    }
    println!("\n-- Norm. Runtime (vs Ours) --");
    for (fi, fw) in Framework::ALL.iter().enumerate() {
        row(
            fw.name(),
            &|c, ours| {
                if !ours.any_success() || !c.any_success() {
                    "-".to_string()
                } else {
                    fmt_ratio(c.mean_wall.as_secs_f64() / ours.mean_wall.as_secs_f64().max(1e-12))
                }
            },
            fi,
        );
    }
    println!("\n-- Success Rate --");
    for (fi, fw) in Framework::ALL.iter().enumerate() {
        row(fw.name(), &|c, _| format!("{:.0}%", c.success_rate * 100.0), fi);
    }

    println!("\n(cells with '-' had no successful run within the iteration budget)");

    if report_requested(&args) {
        let mut report = BenchReport::new("table2");
        for ((name, _), per_method) in circuits.iter().zip(&results) {
            for (method, per_framework) in methods.iter().zip(per_method) {
                for (framework, cell) in Framework::ALL.iter().zip(per_framework) {
                    // Totals over every run (failed runs also burn wall
                    // clock and simulations — throughput counts them).
                    let sims: u64 = cell.runs.iter().map(|r| r.simulations).sum();
                    let wall: Duration = cell.runs.iter().map(|r| r.wall_time).sum();
                    report.push(BenchRecord::new(
                        format!("{method}/{}", framework.name()),
                        *name,
                        engine.to_string(),
                        seeds as usize,
                        sims,
                        wall,
                    ));
                }
            }
        }
        write_report(&report);
    }
}
