//! The perf aggregator: runs a fixed matrix of (circuit × engine ×
//! batch-size) scenarios plus the cache and SPICE hot-path scenarios,
//! prints a throughput table, and optionally writes
//! `BENCH_perfsuite.json` / gates on regressions.
//!
//! ```sh
//! cargo run --release -p glova-bench --bin perfsuite
//! cargo run --release -p glova-bench --bin perfsuite -- --report
//! cargo run --release -p glova-bench --bin perfsuite -- --report --gate \
//!     --min-speedup 1.0 --max-wall-seconds 120
//! cargo run --release -p glova-bench --bin perfsuite -- --quick
//! cargo run --release -p glova-bench --bin perfsuite -- --emit-sections
//! ```
//!
//! `--emit-sections` additionally writes
//! `BENCH_perfsuite_sections.json`: the per-scenario wall time broken
//! down by solver phase (`assemble` / `retarget` / `factor` / `solve`),
//! so a CI regression is attributable to the phase that moved rather
//! than just the scenario total.
//!
//! Scenarios:
//!
//! - `yield_grid` — the fresh-die Monte-Carlo yield campaign (the
//!   pipeline's dominant workload) per circuit, batch size and engine;
//!   threaded records carry their speedup over the matching sequential
//!   run.
//! - `verify_resweep` — two identically seeded Algorithm-2 verifications
//!   of a passing design (the re-verification pattern of ablation and
//!   parity arms): with the [`EvalCache`](glova::cache::EvalCache)
//!   attached, the second sweep's phase-2 points are answered from
//!   memory, so the scenario measures a real hit rate and the wall-time
//!   ratio vs the cache-off reference.
//! - `spice_op` — repeated DC operating-point solves of CMOS inverter
//!   chains (4 and 24 stages) on the dense reference backend,
//!   chord-Newton (the default) vs full Newton; the LU reuse wins grow
//!   with the MNA dimension.
//! - `spice_sparse` — the same operating-point workload per chain size,
//!   dense vs sparse backend (both on the default chord strategy,
//!   through a persistent [`OpSolver`] as a
//!   sweep would use): the dense-vs-sparse scaling curve, gated so the
//!   sparse backend never regresses below its measured advantage.
//! - `spice_threaded` — a SPICE-backed corner × mismatch yield grid
//!   ([`SpiceInverterChain`](glova_circuits::SpiceInverterChain), 24
//!   stages) dispatched through the engine layer, sequential vs a
//!   4-worker threaded engine with per-worker `OpSolver`s cloned from
//!   one primed prototype — the thread-parallel sweep the engine work
//!   exists for, gated at ≥ `--min-spice-speedup` (default 1.5×).
//! - `spice_amd` — cold symbolic analysis + first factorization of the
//!   508-unknown 2-D sense-amp array, Markowitz dynamic pivoting vs the
//!   AMD fill-reducing pre-ordering, gated at ≥ `--min-amd-speedup`
//!   (default 1.5×; measured ≈5× locally).
//! - `spice_multirhs` — 32 right-hand sides against one factored
//!   sense-amp system, repeated single-RHS solves vs one batched
//!   [`SparseLu::solve_into_batch`] sweep, gated at ≥
//!   `--min-multirhs-speedup` (default 1.0× — the batch path streams
//!   the factor once and must never lose to the loop).
//! - `spice_ac_retarget` — per-point small-signal assembly of the
//!   sense-amp array's AC pool: the compiled event template
//!   ([`AcSolverPool::restamp_point`]) vs the per-point netlist re-walk,
//!   gated at ≥ `--min-ac-retarget-speedup` (default 1.5× per point).
//! - `spice_blocked` — numeric refresh of the factored 21×21 sense-amp
//!   system, scalar kernel vs the compiled blocked elimination schedule
//!   ([`NumericKernel::Blocked`]), gated at ≥ `--min-blocked-speedup`
//!   (default 1.2×).
//! - `spice_device_plan` — the 64-variant retarget+solve sweep under
//!   monolithic vs exact per-device partial-refactor scheduling
//!   ([`PartialPlanMode`]); gated on the deterministic
//!   [`RefactorStats`](glova_spice::RefactorStats) row counts: the
//!   per-device schedule must re-eliminate strictly fewer rows.
//! - `spice_warm` — a 30-corner OTA sweep, cold per-corner gmin ladders
//!   vs [`OpSolver::solve_corner_sweep`] warm starts; gated on the
//!   deterministic Newton-iteration ratio ≥ `--min-warm-iter-ratio`
//!   (default 1.3×).
//! - `campaign` — end-to-end risk-sensitive sizing campaigns
//!   ([`SizingCampaign`]) on the SPICE OTA and inverter chain, full
//!   30-corner grid vs RobustAnalog-style corner-set pruning with the
//!   same seed and goal. Gated on the **simulation ratio**
//!   `full.sims_to_success / pruned.sims_to_success ≥
//!   --min-pruning-sim-ratio` (default 1.5×) — a deterministic count,
//!   not a timing, so the gate holds on 1-core runners — plus an
//!   independent full-grid feasibility re-check of the pruned arm's
//!   final design (pruning must never weaken the success criterion).
//! - `serve` — K=4 same-topology sizing jobs through the
//!   [`glova-serve`](glova_serve) campaign server: one-at-a-time on
//!   fresh registries vs one 4-worker fleet sharing a
//!   [`SolverRegistry`] and [`CacheRegistry`]. Gated on the
//!   deterministic aggregate symbolic-prime count (shared must pay
//!   strictly fewer, ratio ≥ `--min-serve-prime-ratio`, default 2.0)
//!   and on cross-arm agreement of every job's simulation count;
//!   throughput is reported ungated.
//!
//! The `--gate` mode enforces: per-scenario wall ceiling, best threaded
//! speedup across the yield-grid matrix ≥ `--min-speedup` (skipped on
//! single-core machines, where a threaded engine cannot win), a nonzero
//! cache hit rate on the re-sweep scenario with the cache pinned on, the
//! auto-policy cache never below 0.95× the cache-off wall, the
//! sparse-backend floors (≥ 1.5× dense at 24 stages, ≥ 4× at 64), the
//! threaded SPICE sweep floor (≥ 1.5× sequential on 4 workers,
//! skipped below 4 cores), and the AMD / multi-RHS floors above.
//! Timings gate on the best of two runs per
//! measurement — single samples of millisecond-scale batches are
//! CI-noise, not signal.

use glova::cache::{CachePolicy, CacheRegistry, EvalCacheConfig};
use glova::campaign::{CampaignConfig, PruningConfig, SizingCampaign};
use glova::engine::EngineSpec;
use glova::fault::{FaultKind, FaultPlan};
use glova::problem::SizingProblem;
use glova::verification::Verifier;
use glova::yield_est::estimate_yield;
use glova_bench::report::{write_json_to_repo_root, BenchRecord, BenchReport};
use glova_bench::{report_requested, write_report};
use glova_circuits::{Circuit, ToyQuadratic};
use glova_linalg::sparse::SparseLu;
use glova_linalg::{FillOrdering, NumericKernel};
use glova_serve::{CampaignServer, CircuitSpec, JobBudget, JobStatus, SizingRequest};
use glova_spice::ac::{log_sweep, AcSolverPool};
use glova_spice::dc::OpSolver;
use glova_spice::mna::{
    NewtonOptions, PartialPlanMode, SolverBackend, SparseAssemblyTemplate, StampContext,
};
use glova_spice::model::MosModel;
use glova_spice::netlist::{
    inverter_chain, inverter_chain_with_load, ota_two_stage_with_cards, sense_amp_array, Netlist,
    OtaCards, OtaParams,
};
use glova_spice::registry::SolverRegistry;
use glova_stats::rng::seeded;
use glova_variation::config::VerificationMethod;
use glova_variation::corner::{CornerSet, PvtCorner};
use glova_variation::sampler::MismatchVector;
use std::sync::Arc;
use std::time::{Duration, Instant};

fn flag(args: &[String], name: &str) -> Option<String> {
    args.iter().position(|a| a == name).and_then(|i| args.get(i + 1)).cloned()
}

fn print_record(r: &BenchRecord) {
    let speedup =
        r.speedup_vs_sequential.map_or_else(|| "     -".to_string(), |s| format!("{s:5.2}x"));
    let cache = r.cache.map_or_else(String::new, |c| {
        format!("  cache {}/{} ({:.0}% hits)", c.hits, c.lookups(), c.hit_rate() * 100.0)
    });
    println!(
        "{:<28} {:<14} {:<12} {:>7} sims {:>9.1} sims/s {:>7} {}",
        r.scenario, r.circuit, r.engine, r.sims, r.sims_per_sec, speedup, cache
    );
}

/// One yield-grid campaign, best wall time of two runs — single-run
/// timings of millisecond-scale batches are too noisy to gate on
/// (shared CI runners jitter far more than the scheduler overhead under
/// measurement).
fn yield_grid(circuit: &Arc<dyn Circuit>, engine: EngineSpec, batch: usize) -> (u64, Duration) {
    let problem = SizingProblem::with_engine(
        circuit.clone(),
        VerificationMethod::CornerLocalMc,
        engine.build(),
    );
    let x = vec![0.5; circuit.dim()];
    let mut best = Duration::MAX;
    for _ in 0..2 {
        problem.reset_simulations();
        let mut rng = seeded(2025);
        let start = Instant::now();
        let _ = estimate_yield(&problem, &x, batch, 0.95, &mut rng);
        best = best.min(start.elapsed());
    }
    (problem.simulations(), best)
}

/// Two identically seeded verifications of a passing design; returns
/// (sims, wall) — the caller reads cache stats off the problem.
fn verify_twice(problem: &SizingProblem, x: &[f64]) -> (u64, Duration) {
    let corner_order: Vec<usize> = (0..problem.config().corners.len()).collect();
    let verifier = Verifier::new(problem, 4.0);
    let start = Instant::now();
    for _ in 0..2 {
        let mut rng = seeded(7);
        let outcome = verifier.verify(x, &corner_order, None, &mut rng);
        assert!(outcome.passed, "perfsuite re-sweep design must pass verification");
    }
    (problem.simulations(), start.elapsed())
}

/// Best-of-five [`verify_twice`] per arm over **fresh problems** (cache
/// state must not leak between timing repeats), with the arms' repeats
/// interleaved round-robin instead of timed back to back. Each timed
/// sweep here is only a few ms and the gated quantity is a *ratio* of
/// two such walls: with disjoint per-arm windows, a scheduler or host
/// load spike landing inside one arm's window skews the ratio past the
/// 0.95× cache-regression bound no matter how many best-of repeats that
/// arm takes. Round-robin draws every arm's minimum from the same noise
/// environment. Sims and cache stats come from each arm's first repeat —
/// identical across repeats by construction.
fn verify_interleaved_best(
    arms: &[&dyn Fn() -> SizingProblem],
    x: &[f64],
) -> Vec<(u64, Duration, Option<glova::cache::CacheStats>)> {
    let mut out: Vec<(u64, Duration, Option<glova::cache::CacheStats>)> = Vec::new();
    for round in 0..5 {
        for (i, make) in arms.iter().enumerate() {
            let problem = make();
            let (sims, wall) = verify_twice(&problem, x);
            if round == 0 {
                out.push((sims, wall, problem.cache_stats()));
            } else {
                out[i].1 = out[i].1.min(wall);
            }
        }
    }
    out
}

/// Repeated DC operating-point solves through a persistent
/// [`OpSolver`] (template and, on the sparse backend, the symbolic
/// factorization built once — the corner-sweep usage pattern); returns
/// the best-of-two wall time (both timing loops run warm solver state,
/// so the repeats are symmetric across backends).
fn solve_op(netlist: &Netlist, options: &NewtonOptions, solves: usize) -> Duration {
    let mut solver = OpSolver::new(netlist, *options);
    let mut best = Duration::MAX;
    for _ in 0..2 {
        let start = Instant::now();
        for _ in 0..solves {
            solver.solve().expect("operating point converges");
        }
        best = best.min(start.elapsed());
    }
    best
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let quick = args.iter().any(|a| a == "--quick");
    let gate = args.iter().any(|a| a == "--gate");
    let min_speedup: f64 = flag(&args, "--min-speedup").and_then(|s| s.parse().ok()).unwrap_or(1.0);
    let max_wall: f64 =
        flag(&args, "--max-wall-seconds").and_then(|s| s.parse().ok()).unwrap_or(120.0);

    let batches: &[usize] = if quick { &[16, 64] } else { &[64, 256] };
    let circuits: Vec<(&str, Arc<dyn Circuit>)> = vec![
        ("SAL", Arc::new(glova_circuits::StrongArmLatch::new()) as Arc<dyn Circuit>),
        ("FIA", Arc::new(glova_circuits::FloatingInverterAmp::new())),
    ];
    let threaded = EngineSpec::Threaded(0);
    let cores = threaded.resolved_workers();

    println!("=== perfsuite: fixed scenario matrix ===");
    println!(
        "(batches {batches:?}, threaded engine resolves to {cores} worker(s){})\n",
        if quick { ", quick" } else { "" }
    );

    let mut report = BenchReport::new("perfsuite");
    let mut failures: Vec<String> = Vec::new();
    // (scenario, engine, phase, wall) rows for `--emit-sections` — the
    // phase is one of assemble / retarget / factor / solve, so a CI
    // regression in a scenario total is attributable to the phase that
    // actually moved.
    let emit_sections = args.iter().any(|a| a == "--emit-sections");
    let mut sections: Vec<(&str, String, &str, Duration)> = Vec::new();

    // ---- yield_grid: circuit × batch × engine --------------------------
    // The gate checks the *best* threaded speedup across the matrix, not
    // every scenario: small batches are dominated by scheduler overhead
    // and runner noise, and a per-scenario >= 1.0x requirement would turn
    // one jittery 2 ms sample into a red build. A real threading
    // regression drags down every scenario, including the largest batch.
    let mut best_threaded_speedup = f64::NEG_INFINITY;
    for (name, circuit) in &circuits {
        for &batch in batches {
            let (seq_sims, seq_wall) = yield_grid(circuit, EngineSpec::Sequential, batch);
            let seq =
                BenchRecord::new("yield_grid", *name, "sequential", batch, seq_sims, seq_wall);
            print_record(&seq);
            report.push(seq);

            let (thr_sims, thr_wall) = yield_grid(circuit, threaded, batch);
            let speedup = seq_wall.as_secs_f64() / thr_wall.as_secs_f64().max(1e-12);
            best_threaded_speedup = best_threaded_speedup.max(speedup);
            let thr = BenchRecord::new(
                "yield_grid",
                *name,
                format!("threaded:{cores}"),
                batch,
                thr_sims,
                thr_wall,
            )
            .with_speedup(speedup);
            print_record(&thr);
            report.push(thr);
        }
    }
    if gate {
        if cores <= 1 {
            eprintln!("gate: skipping threaded-speedup check (single core)");
        } else if best_threaded_speedup < min_speedup {
            failures.push(format!(
                "yield_grid: best threaded speedup {best_threaded_speedup:.2}x \
                 across the matrix is below {min_speedup:.2}x"
            ));
        }
    }

    // ---- verify_resweep: cache off vs pinned-on vs auto ----------------
    // A mismatch-tolerant toy at its optimum: verification passes, so
    // both runs execute the full phase-2 sweep; the second, identically
    // seeded run re-visits every point. The pinned-on record measures
    // the hit machinery (and must see hits); the auto record measures
    // the *default* policy, whose cost probe turns memoization off for
    // a ~1 µs analytic evaluate — so cache-on may never land visibly
    // below cache-off.
    let toy: Arc<dyn Circuit> = Arc::new(ToyQuadratic::standard().with_mismatch_sensitivity(0.05));
    let x_opt = ToyQuadratic::standard().optimum().to_vec();
    let resweep_arms = verify_interleaved_best(
        &[
            &|| SizingProblem::new(toy.clone(), VerificationMethod::CornerLocalMc),
            &|| {
                SizingProblem::new(toy.clone(), VerificationMethod::CornerLocalMc)
                    .with_cache(EvalCacheConfig::with_policy(CachePolicy::On))
            },
            &|| {
                SizingProblem::new(toy.clone(), VerificationMethod::CornerLocalMc)
                    .with_cache(EvalCacheConfig::default())
            },
        ],
        &x_opt,
    );
    let (off_sims, off_wall, _) = resweep_arms[0];
    let off =
        BenchRecord::new("verify_resweep", "ToyQuadratic", "sequential", 2, off_sims, off_wall);
    print_record(&off);
    report.push(off);

    let (on_sims, on_wall, on_stats) = resweep_arms[1];
    let stats = on_stats.expect("cache attached");
    let cache_speedup = off_wall.as_secs_f64() / on_wall.as_secs_f64().max(1e-12);
    let on =
        BenchRecord::new("verify_resweep", "ToyQuadratic", "sequential+cache", 2, on_sims, on_wall)
            .with_speedup(cache_speedup)
            .with_cache(stats);
    print_record(&on);
    report.push(on);
    if gate && stats.hit_rate() <= 0.0 {
        failures.push("verify_resweep: cache hit rate is zero".to_string());
    }

    let (auto_sims, auto_wall, auto_stats) = resweep_arms[2];
    let auto_stats = auto_stats.expect("cache attached");
    let auto_speedup = off_wall.as_secs_f64() / auto_wall.as_secs_f64().max(1e-12);
    let auto = BenchRecord::new(
        "verify_resweep",
        "ToyQuadratic",
        "sequential+cache-auto",
        2,
        auto_sims,
        auto_wall,
    )
    .with_speedup(auto_speedup)
    .with_cache(auto_stats);
    print_record(&auto);
    report.push(auto);
    // The cache-regression bound: with the Auto policy the cache must
    // never cost more than a few percent of the cache-off wall, however
    // cheap the circuit (0.84× before the cost probe existed).
    if gate && auto_speedup < 0.95 {
        failures.push(format!(
            "verify_resweep: auto-policy cache is {auto_speedup:.2}x of cache-off \
             wall (bound 0.95x)"
        ));
    }

    // ---- spice_op: chord vs full Newton (dense reference) --------------
    let solves = if quick { 200 } else { 1000 };
    let dense = |options: NewtonOptions| options.with_backend(SolverBackend::Dense);
    for (name, netlist) in [("inv_chain4", inverter_chain(4)), ("inv_chain24", inverter_chain(24))]
    {
        let full_wall = solve_op(&netlist, &dense(NewtonOptions::full_newton()), solves);
        let full =
            BenchRecord::new("spice_op", name, "full-newton", solves, solves as u64, full_wall);
        print_record(&full);
        report.push(full);

        let chord_wall = solve_op(&netlist, &dense(NewtonOptions::default()), solves);
        let chord_speedup = full_wall.as_secs_f64() / chord_wall.as_secs_f64().max(1e-12);
        let chord =
            BenchRecord::new("spice_op", name, "chord-newton", solves, solves as u64, chord_wall)
                .with_speedup(chord_speedup);
        print_record(&chord);
        report.push(chord);
    }

    // ---- spice_sparse: dense vs sparse backend per chain size ----------
    // Both backends run the default chord strategy through a persistent
    // OpSolver; the sparse records carry their speedup over the matching
    // dense run (best-of-two walls on both sides). Gated floors sit
    // under the locally measured ratios (~2.9x at 24 stages, ~8.9x at
    // 64) to absorb shared-runner noise while still catching a real
    // scaling regression.
    let sparse_sizes: &[(usize, Option<f64>)] = if quick {
        &[(4, None), (24, Some(1.5))]
    } else {
        &[(4, None), (24, Some(1.5)), (64, Some(4.0))]
    };
    for &(stages, floor) in sparse_sizes {
        let name = format!("inv_chain{stages}");
        let netlist = inverter_chain(stages);
        let dense_wall = solve_op(&netlist, &dense(NewtonOptions::default()), solves.min(500));
        let dense_rec = BenchRecord::new(
            "spice_sparse",
            name.clone(),
            "dense",
            netlist.unknown_count(),
            solves.min(500) as u64,
            dense_wall,
        );
        print_record(&dense_rec);
        report.push(dense_rec);

        let sparse_wall = solve_op(
            &netlist,
            &NewtonOptions::default().with_backend(SolverBackend::Sparse),
            solves.min(500),
        );
        let sparse_speedup = dense_wall.as_secs_f64() / sparse_wall.as_secs_f64().max(1e-12);
        let sparse_rec = BenchRecord::new(
            "spice_sparse",
            name.clone(),
            "sparse",
            netlist.unknown_count(),
            solves.min(500) as u64,
            sparse_wall,
        )
        .with_speedup(sparse_speedup);
        print_record(&sparse_rec);
        report.push(sparse_rec);

        if gate {
            if let Some(floor) = floor {
                if sparse_speedup < floor {
                    failures.push(format!(
                        "spice_sparse: {name} sparse backend is {sparse_speedup:.2}x \
                         dense (floor {floor:.1}x)"
                    ));
                }
            }
        }
    }

    // ---- spice_threaded: SPICE-backed sweep through the engine layer ----
    // The tentpole workload: a corner × mismatch yield grid whose every
    // point is a DC operating-point solve of inv_chain24 (auto-resolved
    // sparse), dispatched through the EvalEngine with one per-worker
    // OpSolver cloned from a shared primed prototype. The threaded record
    // carries its speedup over the matching sequential sweep; the gate
    // enforces the 4-worker floor (skipped on machines with fewer than 4
    // cores, where a 4-worker engine cannot realize its speedup).
    let spice_workers = 4usize;
    let spice_floor: f64 =
        flag(&args, "--min-spice-speedup").and_then(|s| s.parse().ok()).unwrap_or(1.5);
    let spice_batch = if quick { 8 } else { 16 };
    let spice_chain: Arc<dyn Circuit> = Arc::new(glova_circuits::SpiceInverterChain::new(24));
    let (sp_seq_sims, sp_seq_wall) = yield_grid(&spice_chain, EngineSpec::Sequential, spice_batch);
    let sp_seq = BenchRecord::new(
        "spice_threaded",
        "inv_chain24",
        "sequential",
        spice_batch,
        sp_seq_sims,
        sp_seq_wall,
    );
    print_record(&sp_seq);
    report.push(sp_seq);
    let (sp_thr_sims, sp_thr_wall) =
        yield_grid(&spice_chain, EngineSpec::Threaded(spice_workers), spice_batch);
    let sp_speedup = sp_seq_wall.as_secs_f64() / sp_thr_wall.as_secs_f64().max(1e-12);
    let sp_thr = BenchRecord::new(
        "spice_threaded",
        "inv_chain24",
        format!("threaded:{spice_workers}"),
        spice_batch,
        sp_thr_sims,
        sp_thr_wall,
    )
    .with_speedup(sp_speedup);
    print_record(&sp_thr);
    report.push(sp_thr);
    if gate {
        if cores < spice_workers {
            eprintln!(
                "gate: skipping spice_threaded speedup check \
                 ({cores} core(s) < {spice_workers} workers)"
            );
        } else if sp_speedup < spice_floor {
            failures.push(format!(
                "spice_threaded: {spice_workers}-worker SPICE sweep is {sp_speedup:.2}x \
                 sequential (floor {spice_floor:.1}x)"
            ));
        }
    }

    // ---- spice_retarget: value-only vs rebuild per-point overhead ------
    // Prebuilt same-topology variants swept through one persistent
    // sparse OpSolver, retarget-only (the per-point overhead a
    // corner/mismatch campaign pays on top of each solve). Gated: the
    // value-only fast path must stay ≥ `--min-retarget-speedup`
    // (default 1.5×) faster than the template-rebuild path per point —
    // measured ~3.5× locally, so the floor absorbs runner noise.
    let retarget_floor: f64 =
        flag(&args, "--min-retarget-speedup").and_then(|s| s.parse().ok()).unwrap_or(1.5);
    let retarget_variants: Vec<Netlist> =
        (0..64).map(|i| inverter_chain_with_load(24, Some(8e3 + 60.0 * i as f64))).collect();
    let retarget_passes = if quick { 4 } else { 8 };
    let sparse_options = NewtonOptions::default().with_backend(SolverBackend::Sparse);
    let retarget_only = |values_mode: bool| -> Duration {
        let mut solver =
            OpSolver::primed(&retarget_variants[0], sparse_options).expect("chain primes");
        let mut best = Duration::MAX;
        for _ in 0..2 {
            let start = Instant::now();
            for _ in 0..retarget_passes {
                for nl in &retarget_variants {
                    if values_mode {
                        solver.retarget(nl);
                    } else {
                        solver.retarget_rebuild(nl);
                    }
                }
            }
            best = best.min(start.elapsed());
        }
        best
    };
    let retarget_points = (retarget_variants.len() * retarget_passes) as u64;
    let rebuild_wall = retarget_only(false);
    let rebuild_rec = BenchRecord::new(
        "spice_retarget",
        "inv_chain24",
        "sparse+rebuild",
        retarget_variants.len(),
        retarget_points,
        rebuild_wall,
    );
    print_record(&rebuild_rec);
    report.push(rebuild_rec);
    let values_wall = retarget_only(true);
    let retarget_speedup = rebuild_wall.as_secs_f64() / values_wall.as_secs_f64().max(1e-12);
    let values_rec = BenchRecord::new(
        "spice_retarget",
        "inv_chain24",
        "sparse+values",
        retarget_variants.len(),
        retarget_points,
        values_wall,
    )
    .with_speedup(retarget_speedup);
    print_record(&values_rec);
    report.push(values_rec);
    if gate && retarget_speedup < retarget_floor {
        failures.push(format!(
            "spice_retarget: value-only retarget is {retarget_speedup:.2}x the rebuild \
             path per point (floor {retarget_floor:.1}x)"
        ));
    }
    sections.push(("spice_retarget", "sparse+rebuild".into(), "assemble", rebuild_wall));
    sections.push(("spice_retarget", "sparse+values".into(), "retarget", values_wall));

    // ---- spice_amd: fill-reducing pre-ordering on the 2-D array --------
    // Cold symbolic analysis + first numeric factorization of the
    // 21×21 sense-amp array (508 unknowns), the fill-heavy 2-D pattern
    // the AMD pre-ordering exists for: Markowitz dynamic pivoting pays
    // its per-step degree scan over a pattern it keeps filling in, the
    // AMD sequence is computed once on the symmetrized pattern and
    // handed to the factor as a static pivot order. Gated: AMD must stay
    // ≥ `--min-amd-speedup` (default 1.5×) over Markowitz — measured
    // ≈5× locally, so the floor absorbs runner noise.
    let amd_floor: f64 =
        flag(&args, "--min-amd-speedup").and_then(|s| s.parse().ok()).unwrap_or(1.5);
    let array = sense_amp_array(21, 21);
    let ctx = StampContext { time: 0.0, step: None, gmin: 1e-3 };
    let array_template = SparseAssemblyTemplate::new(&array, &ctx);
    let array_n = array_template.dim();
    let mut array_a = array_template.new_system();
    let mut array_rhs = vec![0.0; array_n];
    array_template.assemble_into(&mut array_a, &mut array_rhs, &vec![0.0; array_n], 1e-3);
    let factor_reps: u64 = if quick { 5 } else { 20 };
    let time_factor = |ordering: FillOrdering| -> Duration {
        let mut best = Duration::MAX;
        for _ in 0..2 {
            let start = Instant::now();
            for _ in 0..factor_reps {
                SparseLu::factor_with(&array_a, ordering).expect("sense-amp array factors");
            }
            best = best.min(start.elapsed());
        }
        best
    };
    let mark_wall = time_factor(FillOrdering::Markowitz);
    let mark_rec = BenchRecord::new(
        "spice_amd",
        "senseamp21x21",
        "markowitz",
        array_n,
        factor_reps,
        mark_wall,
    );
    print_record(&mark_rec);
    report.push(mark_rec);
    let amd_wall = time_factor(FillOrdering::Amd);
    let amd_speedup = mark_wall.as_secs_f64() / amd_wall.as_secs_f64().max(1e-12);
    let amd_rec =
        BenchRecord::new("spice_amd", "senseamp21x21", "amd", array_n, factor_reps, amd_wall)
            .with_speedup(amd_speedup);
    print_record(&amd_rec);
    report.push(amd_rec);
    if gate && amd_speedup < amd_floor {
        failures.push(format!(
            "spice_amd: AMD cold factor is {amd_speedup:.2}x Markowitz on the \
             sense-amp array (floor {amd_floor:.1}x)"
        ));
    }
    sections.push(("spice_amd", "markowitz".into(), "factor", mark_wall));
    sections.push(("spice_amd", "amd".into(), "factor", amd_wall));

    // ---- spice_multirhs: batched vs repeated single-RHS solves ---------
    // 32 right-hand sides against the factored sense-amp system — the
    // corner-sweep shape `solve_into_batch` serves: one pass over the
    // factor streams every column instead of re-walking L and U per
    // side. Gated: the batch path must never lose to the repeated loop
    // (≥ `--min-multirhs-speedup`, default 1.0×).
    let multirhs_floor: f64 =
        flag(&args, "--min-multirhs-speedup").and_then(|s| s.parse().ok()).unwrap_or(1.0);
    let mut array_lu =
        SparseLu::factor_with(&array_a, FillOrdering::Amd).expect("sense-amp array factors");
    let nrhs = 32usize;
    let b: Vec<f64> = (0..array_n * nrhs).map(|i| ((i % 23) as f64 - 11.0) * 0.01).collect();
    let solve_reps = if quick { 50 } else { 200 };
    let mut x_single = vec![0.0; array_n];
    let mut repeated_wall = Duration::MAX;
    for _ in 0..2 {
        let start = Instant::now();
        for _ in 0..solve_reps {
            for r in 0..nrhs {
                array_lu.solve_into(&b[r * array_n..(r + 1) * array_n], &mut x_single);
            }
        }
        repeated_wall = repeated_wall.min(start.elapsed());
    }
    let rhs_total = (nrhs * solve_reps) as u64;
    let repeated_rec = BenchRecord::new(
        "spice_multirhs",
        "senseamp21x21",
        "repeated",
        nrhs,
        rhs_total,
        repeated_wall,
    );
    print_record(&repeated_rec);
    report.push(repeated_rec);
    let mut x_batch = vec![0.0; array_n * nrhs];
    let mut batch_wall = Duration::MAX;
    for _ in 0..2 {
        let start = Instant::now();
        for _ in 0..solve_reps {
            array_lu.solve_into_batch(&b, &mut x_batch, nrhs);
        }
        batch_wall = batch_wall.min(start.elapsed());
    }
    let multirhs_speedup = repeated_wall.as_secs_f64() / batch_wall.as_secs_f64().max(1e-12);
    let batch_rec =
        BenchRecord::new("spice_multirhs", "senseamp21x21", "batched", nrhs, rhs_total, batch_wall)
            .with_speedup(multirhs_speedup);
    print_record(&batch_rec);
    report.push(batch_rec);
    if gate && multirhs_speedup < multirhs_floor {
        failures.push(format!(
            "spice_multirhs: batched solve is {multirhs_speedup:.2}x the repeated \
             single-RHS loop (floor {multirhs_floor:.1}x)"
        ));
    }
    sections.push(("spice_multirhs", "repeated".into(), "solve", repeated_wall));
    sections.push(("spice_multirhs", "batched".into(), "solve", batch_wall));

    // ---- spice_ac_retarget: AC event template vs per-point re-walk -----
    // The per-point small-signal assembly cost in isolation: the pooled
    // AC solver rewrites a worker's value array for each frequency
    // either through the compiled event template (slot += re + jωc) or
    // through the full netlist stamp walk — `restamp_point` vs
    // `restamp_point_rebuild`, no factor or solve in the loop. The
    // workload is the 508-unknown 2-D sense-amp array (bitline
    // excitation through the precharge rail): at that size the
    // per-stamp walk cost — device dispatch, MOSFET small-signal math,
    // carrier-space swaps — dominates the shared checkout/zeroing
    // overhead the two paths split. Gated: the event replay must stay
    // ≥ `--min-ac-retarget-speedup` (default 1.5×) faster per point.
    let ac_floor: f64 =
        flag(&args, "--min-ac-retarget-speedup").and_then(|s| s.parse().ok()).unwrap_or(1.5);
    let ac_freqs = log_sweep(1e3, 1e9, 4);
    let ac_pool = AcSolverPool::new(&array, "VPRE", &ac_freqs, SolverBackend::Sparse)
        .expect("sense-amp AC pool primes");
    let ac_passes = if quick { 100 } else { 400 };
    let time_restamp = |retarget: bool| -> Duration {
        let mut best = Duration::MAX;
        for _ in 0..2 {
            let start = Instant::now();
            for _ in 0..ac_passes {
                for &f in &ac_freqs {
                    let events = if retarget {
                        ac_pool.restamp_point(f)
                    } else {
                        ac_pool.restamp_point_rebuild(f)
                    };
                    std::hint::black_box(events);
                }
            }
            best = best.min(start.elapsed());
        }
        best
    };
    let ac_points = (ac_freqs.len() * ac_passes) as u64;
    let rewalk_wall = time_restamp(false);
    let rewalk_rec = BenchRecord::new(
        "spice_ac_retarget",
        "senseamp21x21",
        "sparse+rewalk",
        ac_freqs.len(),
        ac_points,
        rewalk_wall,
    );
    print_record(&rewalk_rec);
    report.push(rewalk_rec);
    let events_wall = time_restamp(true);
    let ac_speedup = rewalk_wall.as_secs_f64() / events_wall.as_secs_f64().max(1e-12);
    let events_rec = BenchRecord::new(
        "spice_ac_retarget",
        "senseamp21x21",
        "sparse+events",
        ac_freqs.len(),
        ac_points,
        events_wall,
    )
    .with_speedup(ac_speedup);
    print_record(&events_rec);
    report.push(events_rec);
    if gate && ac_speedup < ac_floor {
        failures.push(format!(
            "spice_ac_retarget: AC event replay is {ac_speedup:.2}x the per-point \
             netlist re-walk (floor {ac_floor:.1}x)"
        ));
    }
    // The end-to-end per-point cost (assembly + refactor + solve) for
    // the sections artifact — how much of a point the assembly phase is.
    let ac_solve_start = Instant::now();
    for &f in &ac_freqs {
        ac_pool.solve_point(f).expect("OTA AC point solves");
    }
    sections.push(("spice_ac_retarget", "sparse+rewalk".into(), "assemble", rewalk_wall));
    sections.push(("spice_ac_retarget", "sparse+events".into(), "retarget", events_wall));
    sections.push(("spice_ac_retarget", "sparse+events".into(), "solve", ac_solve_start.elapsed()));

    // ---- spice_blocked: compiled elimination schedule vs scalar --------
    // Numeric refresh of the factored sense-amp system over the frozen
    // pivot order — the inner loop every chord-Newton iteration and
    // every swept corner pays. The blocked kernel replays the scalar
    // kernel's exact update sequence through a compiled op stream
    // (contiguous destination runs, no gather/scatter workspace), so it
    // is bitwise identical and strictly a perf knob. The one-time plan
    // compile is warmed outside the timed loop (it amortizes across a
    // sweep exactly like the symbolic analysis it derives from). Gated:
    // ≥ `--min-blocked-speedup` (default 1.2×; measured ~1.3–1.5×).
    let blocked_floor: f64 =
        flag(&args, "--min-blocked-speedup").and_then(|s| s.parse().ok()).unwrap_or(1.2);
    let refactor_reps = if quick { 100 } else { 400 };
    let time_refactor = |kernel: NumericKernel| -> Duration {
        let mut lu = SparseLu::factor_with(&array_a, FillOrdering::Amd)
            .expect("sense-amp array factors")
            .with_numeric_kernel(kernel);
        lu.refactor(&array_a).expect("warm refresh succeeds");
        let mut best = Duration::MAX;
        for _ in 0..2 {
            let start = Instant::now();
            for _ in 0..refactor_reps {
                lu.refactor(&array_a).expect("numeric refresh succeeds");
            }
            best = best.min(start.elapsed());
        }
        best
    };
    let scalar_wall = time_refactor(NumericKernel::Scalar);
    let scalar_rec = BenchRecord::new(
        "spice_blocked",
        "senseamp21x21",
        "scalar",
        array_n,
        refactor_reps as u64,
        scalar_wall,
    );
    print_record(&scalar_rec);
    report.push(scalar_rec);
    let blocked_wall = time_refactor(NumericKernel::Blocked);
    let blocked_speedup = scalar_wall.as_secs_f64() / blocked_wall.as_secs_f64().max(1e-12);
    let blocked_rec = BenchRecord::new(
        "spice_blocked",
        "senseamp21x21",
        "blocked",
        array_n,
        refactor_reps as u64,
        blocked_wall,
    )
    .with_speedup(blocked_speedup);
    print_record(&blocked_rec);
    report.push(blocked_rec);
    if gate && blocked_speedup < blocked_floor {
        failures.push(format!(
            "spice_blocked: blocked elimination is {blocked_speedup:.2}x the scalar \
             kernel on the sense-amp refresh (floor {blocked_floor:.1}x)"
        ));
    }
    sections.push(("spice_blocked", "scalar".into(), "factor", scalar_wall));
    sections.push(("spice_blocked", "blocked".into(), "factor", blocked_wall));

    // ---- spice_device_plan: exact per-device vs monolithic schedules ---
    // The 64-variant retarget+solve sweep once per partial-plan mode.
    // The gate is deterministic, not a timing: the exact per-device
    // schedule discovers changed input slots by bitwise diff against the
    // last factored values, so its reachable closures — and therefore
    // `RefactorStats::rows_eliminated` — must come out strictly below
    // the monolithic template dirty set's (identical assemblies skip
    // elimination entirely; untouched devices drop out of the closure).
    let run_plan_sweep = |mode: PartialPlanMode| -> (u64, u64, Duration) {
        let mut solver =
            OpSolver::primed(&retarget_variants[0], sparse_options).expect("chain primes");
        solver.set_partial_plan_mode(mode);
        let start = Instant::now();
        for nl in &retarget_variants {
            solver.retarget(nl);
            solver.solve().expect("operating point converges");
        }
        let stats = solver.refactor_stats();
        (stats.rows_eliminated, stats.rows_total, start.elapsed())
    };
    let (mono_rows, mono_total, mono_wall) = run_plan_sweep(PartialPlanMode::Monolithic);
    let mono_rec = BenchRecord::new(
        "spice_device_plan",
        "inv_chain24",
        "monolithic",
        retarget_variants.len(),
        mono_rows,
        mono_wall,
    );
    print_record(&mono_rec);
    report.push(mono_rec);
    let (dev_rows, dev_total, dev_wall) = run_plan_sweep(PartialPlanMode::PerDevice);
    let row_ratio = mono_rows as f64 / dev_rows.max(1) as f64;
    let dev_rec = BenchRecord::new(
        "spice_device_plan",
        "inv_chain24",
        "per-device",
        retarget_variants.len(),
        dev_rows,
        dev_wall,
    )
    .with_speedup(row_ratio);
    print_record(&dev_rec);
    report.push(dev_rec);
    println!(
        "    (rows re-eliminated: per-device {dev_rows}/{dev_total} vs \
         monolithic {mono_rows}/{mono_total}, {row_ratio:.2}x fewer)"
    );
    if gate && dev_rows >= mono_rows {
        failures.push(format!(
            "spice_device_plan: per-device schedule re-eliminated {dev_rows} rows, \
             not strictly fewer than the monolithic {mono_rows}"
        ));
    }
    sections.push(("spice_device_plan", "monolithic".into(), "factor", mono_wall));
    sections.push(("spice_device_plan", "per-device".into(), "factor", dev_wall));

    // ---- spice_warm: warm-started corner sweep vs cold gmin ladders ----
    // The 30-corner industrial grid on the two-stage OTA (supply and
    // process cards move per corner, topology fixed). Cold runs the full
    // gmin ladder from zeros at every corner; `solve_corner_sweep` seeds
    // each corner's Newton from the previous corner's solution and
    // skips the ladder when the warm iteration converges. Gated on the
    // deterministic Newton-iteration ratio (`MnaState` counts every
    // loop pass), ≥ `--min-warm-iter-ratio` (default 1.3×) — a count,
    // not a timing, so the gate holds on noisy shared runners.
    let warm_floor: f64 =
        flag(&args, "--min-warm-iter-ratio").and_then(|s| s.parse().ok()).unwrap_or(1.3);
    let warm_corners = CornerSet::industrial_30();
    let warm_nls: Vec<Netlist> = (0..warm_corners.len())
        .map(|ci| {
            let corner = warm_corners.corner(ci);
            let params = OtaParams {
                vdd: corner.vdd,
                vcm: corner.vdd * (0.55 / 0.9),
                ..OtaParams::nominal()
            };
            let nmos = MosModel::nmos_28nm().at_corner(&corner);
            let pmos = MosModel::pmos_28nm().at_corner(&corner);
            let cards = OtaCards { m1: nmos, m2: nmos, m3: pmos, m4: pmos, m6: pmos };
            ota_two_stage_with_cards(&params, &cards)
        })
        .collect();
    let mut cold_solver = OpSolver::primed(&warm_nls[0], sparse_options).expect("OTA primes");
    let cold_start = Instant::now();
    for nl in &warm_nls {
        cold_solver.retarget(nl);
        cold_solver.solve().expect("cold corner converges");
    }
    let cold_wall = cold_start.elapsed();
    let cold_iters = cold_solver.newton_iterations();
    let cold_rec = BenchRecord::new(
        "spice_warm",
        "ota_two_stage",
        "cold-ladder",
        warm_nls.len(),
        cold_iters,
        cold_wall,
    );
    print_record(&cold_rec);
    report.push(cold_rec);
    let mut warm_solver = OpSolver::primed(&warm_nls[0], sparse_options).expect("OTA primes");
    let warm_start = Instant::now();
    warm_solver.solve_corner_sweep(&warm_nls).expect("warm sweep converges");
    let warm_wall = warm_start.elapsed();
    let warm_iters = warm_solver.newton_iterations();
    let iter_ratio = cold_iters as f64 / warm_iters.max(1) as f64;
    let warm_rec = BenchRecord::new(
        "spice_warm",
        "ota_two_stage",
        "warm-sweep",
        warm_nls.len(),
        warm_iters,
        warm_wall,
    )
    .with_speedup(iter_ratio);
    print_record(&warm_rec);
    report.push(warm_rec);
    println!(
        "    (Newton iterations: warm {warm_iters} vs cold {cold_iters}, \
         {iter_ratio:.2}x fewer)"
    );
    if gate && iter_ratio < warm_floor {
        failures.push(format!(
            "spice_warm: warm corner sweep took {warm_iters} Newton iterations vs \
             {cold_iters} cold ({iter_ratio:.2}x, floor {warm_floor:.1}x)"
        ));
    }
    sections.push(("spice_warm", "cold-ladder".into(), "solve", cold_wall));
    sections.push(("spice_warm", "warm-sweep".into(), "solve", warm_wall));

    // ---- spice_ota: DC+AC evaluations through the full solver stack ----
    // The two-stage Miller OTA testcase: every evaluation is a pooled DC
    // solve plus a complex small-signal sweep. Gated on feasibility (the
    // nominal point must meet spec at the typical corner — a solver
    // regression anywhere in the DC/AC stack shows up as a broken
    // metric, deterministically) plus the global wall ceiling.
    let ota = glova_circuits::SpiceOta::new();
    let ota_x = vec![0.5; ota.dim()];
    let ota_h = MismatchVector::nominal(ota.mismatch_domain(&ota_x).dim());
    let ota_metrics = ota.evaluate(&ota_x, &PvtCorner::typical(), &ota_h);
    let ota_feasible = ota.spec().satisfied(&ota_metrics);
    let ota_circuit: Arc<dyn Circuit> = Arc::new(ota);
    let ota_batch = if quick { 4 } else { 8 };
    let (ota_sims, ota_wall) = yield_grid(&ota_circuit, EngineSpec::Sequential, ota_batch);
    let ota_rec =
        BenchRecord::new("spice_ota", "ota_two_stage", "sequential", ota_batch, ota_sims, ota_wall);
    print_record(&ota_rec);
    report.push(ota_rec);
    if gate && !ota_feasible {
        failures.push(format!(
            "spice_ota: nominal OTA point violates its spec at the typical corner \
             (metrics {ota_metrics:?}) — DC/AC solver stack regression"
        ));
    }

    // ---- campaign: corner-set pruning on end-to-end sizing runs --------
    // Two identically seeded campaigns per SPICE circuit — full grid vs
    // k-worst pruning — under a goal spec tight enough that the LHS
    // seeds fail and the agent has to search (the factors come from the
    // campaign bin's --probe mode; see docs/CAMPAIGNS.md). The gate is
    // wall-clock-free: it compares deterministic simulation counts, so
    // it holds on a 1-core runner, and it re-checks the pruned arm's
    // final design on the full corner grid independently of the
    // campaign's own confirmation dispatch.
    let pruning_floor: f64 =
        flag(&args, "--min-pruning-sim-ratio").and_then(|s| s.parse().ok()).unwrap_or(1.5);
    let campaign_cases: Vec<(&str, Arc<dyn Circuit>, Vec<f64>)> = vec![
        ("SpiceOta", Arc::new(glova_circuits::SpiceOta::new()), vec![1.4, 5.0, 0.5]),
        (
            "SpiceInverterChain",
            Arc::new(glova_circuits::SpiceInverterChain::new(8)),
            vec![0.44, 1.25, 0.4],
        ),
    ];
    for (name, circuit, goal) in &campaign_cases {
        let base = CampaignConfig::quick(VerificationMethod::Corner)
            .with_cache(EvalCacheConfig::default())
            .with_goal(goal.clone())
            .with_max_steps(120);
        let corner_count = 30usize;
        let run = |config: CampaignConfig| {
            let campaign = SizingCampaign::new(circuit.clone(), config);
            let result = campaign.run(1);
            (campaign, result)
        };
        let (_, full) = run(base.clone());
        let full_sims = full.sims_to_success.unwrap_or(full.total_sims);
        let full_rec =
            BenchRecord::new("campaign", *name, "full-grid", corner_count, full_sims, full.wall);
        print_record(&full_rec);
        report.push(full_rec);

        let (pruned_campaign, pruned) = run(base.with_pruning(PruningConfig::new(5, 10)));
        let pruned_sims = pruned.sims_to_success.unwrap_or(pruned.total_sims);
        let sim_ratio = full_sims as f64 / pruned_sims.max(1) as f64;
        let pruned_rec =
            BenchRecord::new("campaign", *name, "pruned", corner_count, pruned_sims, pruned.wall)
                .with_speedup(sim_ratio);
        print_record(&pruned_rec);
        report.push(pruned_rec);

        if gate {
            if !full.success || !pruned.success {
                failures.push(format!(
                    "campaign: {name} arm failed to reach a feasible design \
                     (full {}, pruned {})",
                    full.success, pruned.success
                ));
                continue;
            }
            if sim_ratio < pruning_floor {
                failures.push(format!(
                    "campaign: {name} pruned arm needed {pruned_sims} sims vs \
                     {full_sims} full-grid ({sim_ratio:.2}x, floor {pruning_floor:.1}x)"
                ));
            }
            // Pruning must not weaken success: the pruned design must
            // satisfy the goal spec at every corner of the full grid.
            let x = pruned.final_design.as_ref().expect("successful campaign carries a design");
            let goal_spec = circuit.spec().with_scaled_limits(goal);
            let problem = pruned_campaign.problem();
            let corners = problem.config().corners.clone();
            for ci in 0..corners.len() {
                let h = MismatchVector::nominal(circuit.mismatch_domain(x).dim());
                let outcome = problem.simulate(x, &corners.corner(ci), &h);
                if !goal_spec.satisfied(&outcome.metrics) {
                    failures.push(format!(
                        "campaign: {name} pruned design violates the goal spec at \
                         corner {ci} on the full-grid re-check"
                    ));
                }
            }
        }
    }

    // ---- serve: concurrent campaigns over shared registries ------------
    // K=4 same-topology sizing jobs through `glova-serve`: one-at-a-time
    // on fresh registries (the pre-registry cost model — every campaign
    // pays its own symbolic prime) vs one 4-worker server sharing a
    // SolverRegistry and CacheRegistry. Gated on the deterministic
    // aggregate prime count: the shared fleet must pay strictly fewer
    // primes, with the ratio floored at `--min-serve-prime-ratio`
    // (default 2.0; one prime instead of four measures 4.0) — and on
    // cross-arm agreement of every job's simulation count, since
    // registry sharing must be unobservable in the trajectories.
    // Throughput is reported ungated: on a 1-core runner the concurrent
    // fleet cannot win wall time, but it still pays 1 prime instead
    // of 4.
    let serve_floor: f64 =
        flag(&args, "--min-serve-prime-ratio").and_then(|s| s.parse().ok()).unwrap_or(2.0);
    let serve_config = CampaignConfig::quick(VerificationMethod::Corner)
        .with_cache(EvalCacheConfig::default())
        .with_max_steps(if quick { 3 } else { 6 });
    let serve_jobs: Vec<SizingRequest> = (1..=4)
        .map(|seed| {
            SizingRequest::new(CircuitSpec::InverterChain { stages: 8 }, serve_config.clone(), seed)
        })
        .collect();

    let mut solo_primes = 0u64;
    let mut solo_sims: Vec<u64> = Vec::new();
    let solo_start = Instant::now();
    for request in &serve_jobs {
        let solvers = Arc::new(SolverRegistry::new());
        let server =
            CampaignServer::with_registries(1, solvers.clone(), Arc::new(CacheRegistry::new()));
        let id = server.submit(request.clone()).expect("serve request is valid");
        let result = server.wait(id).expect("job exists").result.expect("campaign completes");
        solo_sims.push(result.total_sims);
        server.shutdown();
        solo_primes += solvers.primes();
    }
    let solo_wall = solo_start.elapsed();
    let solo_rec = BenchRecord::new(
        "serve",
        "SpiceInverterChain",
        "one-at-a-time",
        4,
        solo_sims.iter().sum(),
        solo_wall,
    );
    print_record(&solo_rec);
    report.push(solo_rec);

    let shared_solvers = Arc::new(SolverRegistry::new());
    let server =
        CampaignServer::with_registries(4, shared_solvers.clone(), Arc::new(CacheRegistry::new()));
    let shared_start = Instant::now();
    let serve_ids: Vec<_> = serve_jobs
        .iter()
        .map(|r| server.submit(r.clone()).expect("serve request is valid"))
        .collect();
    let shared_sims: Vec<u64> = serve_ids
        .iter()
        .map(|&id| {
            server.wait(id).expect("job exists").result.expect("campaign completes").total_sims
        })
        .collect();
    let shared_wall = shared_start.elapsed();
    let shared_primes = shared_solvers.primes();
    server.shutdown();
    let prime_ratio = solo_primes as f64 / shared_primes.max(1) as f64;
    let shared_rec = BenchRecord::new(
        "serve",
        "SpiceInverterChain",
        "4-concurrent",
        4,
        shared_sims.iter().sum(),
        shared_wall,
    )
    .with_speedup(prime_ratio);
    print_record(&shared_rec);
    report.push(shared_rec);
    println!(
        "  serve: symbolic primes {solo_primes} one-at-a-time vs {shared_primes} \
         shared ({prime_ratio:.1}x)"
    );
    if gate {
        if shared_primes >= solo_primes || prime_ratio < serve_floor {
            failures.push(format!(
                "serve: shared fleet paid {shared_primes} symbolic primes vs {solo_primes} \
                 one-at-a-time ({prime_ratio:.2}x, floor {serve_floor:.1}x)"
            ));
        }
        if solo_sims != shared_sims {
            failures.push(format!(
                "serve: per-job simulation counts diverged between arms \
                 (one-at-a-time {solo_sims:?}, concurrent {shared_sims:?}) — registry \
                 sharing must be unobservable in the trajectories"
            ));
        }
    }

    // ---- serve_robust: fault-injected and budget-capped neighbours -----
    // K=4 same-topology jobs again, but the robust arm injects
    // deterministic non-convergence faults into the seed-2 job and caps
    // the seed-3 job at roughly half its fault-free simulation budget.
    // Gates: (a) the two *unaffected* jobs' simulation counts are
    // bitwise equal to the fault-free arm — fault isolation and budget
    // enforcement must be unobservable outside the afflicted jobs; (b)
    // the budgeted job terminates BudgetExhausted with sims ≤ cap, with
    // the cap/spent headroom floored at `--min-budget-headroom`
    // (default 1.0 — "never exceeds the cap"; enforcement exactness is
    // the property, not slack).
    let headroom_floor: f64 =
        flag(&args, "--min-budget-headroom").and_then(|s| s.parse().ok()).unwrap_or(1.0);
    let clean_server = CampaignServer::with_registries(
        4,
        Arc::new(SolverRegistry::new()),
        Arc::new(CacheRegistry::new()),
    );
    let clean_start = Instant::now();
    let clean_ids: Vec<_> = serve_jobs
        .iter()
        .map(|r| clean_server.submit(r.clone()).expect("serve request is valid"))
        .collect();
    let clean_sims: Vec<u64> = clean_ids
        .iter()
        .map(|&id| {
            clean_server.wait(id).expect("job exists").result.expect("campaign ran").total_sims
        })
        .collect();
    let clean_wall = clean_start.elapsed();
    let clean_rec = BenchRecord::new(
        "serve_robust",
        "SpiceInverterChain",
        "fault-free",
        4,
        clean_sims.iter().sum(),
        clean_wall,
    );
    print_record(&clean_rec);
    report.push(clean_rec);

    let sim_cap = (clean_sims[2] / 2).max(1);
    let robust_jobs: Vec<SizingRequest> = serve_jobs
        .iter()
        .enumerate()
        .map(|(i, r)| match i {
            1 => r.clone().with_fault_plan(Arc::new(FaultPlan::seeded(
                2,
                clean_sims[1],
                8,
                FaultKind::NonConvergence,
            ))),
            2 => r.clone().with_budget(JobBudget::unlimited().with_max_sims(sim_cap)),
            _ => r.clone(),
        })
        .collect();
    let robust_server = CampaignServer::with_registries(
        4,
        Arc::new(SolverRegistry::new()),
        Arc::new(CacheRegistry::new()),
    );
    let robust_start = Instant::now();
    let robust_ids: Vec<_> = robust_jobs
        .iter()
        .map(|r| robust_server.submit(r.clone()).expect("serve request is valid"))
        .collect();
    let robust: Vec<(JobStatus, u64)> = robust_ids
        .iter()
        .map(|&id| {
            let snapshot = robust_server.wait(id).expect("job exists");
            (snapshot.status, snapshot.result.expect("campaign ran").total_sims)
        })
        .collect();
    let robust_wall = robust_start.elapsed();
    robust_server.shutdown();
    let budget_headroom = sim_cap as f64 / robust[2].1.max(1) as f64;
    let robust_rec = BenchRecord::new(
        "serve_robust",
        "SpiceInverterChain",
        "faulted+budgeted",
        4,
        robust.iter().map(|&(_, sims)| sims).sum(),
        robust_wall,
    )
    .with_speedup(budget_headroom);
    print_record(&robust_rec);
    report.push(robust_rec);
    println!(
        "  serve_robust: budgeted job spent {} of {sim_cap} sims \
         ({budget_headroom:.2}x headroom), statuses {:?}",
        robust[2].1,
        robust.iter().map(|&(status, _)| status).collect::<Vec<_>>()
    );
    if gate {
        for &i in &[0usize, 3] {
            if robust[i].1 != clean_sims[i] || robust[i].0 != JobStatus::Done {
                failures.push(format!(
                    "serve_robust: unaffected job {i} diverged from the fault-free arm \
                     ({:?} with {} sims vs Done with {})",
                    robust[i].0, robust[i].1, clean_sims[i]
                ));
            }
        }
        if robust[2].0 != JobStatus::BudgetExhausted {
            failures.push(format!(
                "serve_robust: budget-capped job ended {:?}, expected BudgetExhausted",
                robust[2].0
            ));
        }
        if budget_headroom < headroom_floor {
            failures.push(format!(
                "serve_robust: budgeted job spent {} sims against a cap of {sim_cap} \
                 ({budget_headroom:.2}x, floor {headroom_floor:.1}x)",
                robust[2].1
            ));
        }
        if robust[1].0 != JobStatus::Done {
            failures.push(format!(
                "serve_robust: fault-injected job must degrade, not die (got {:?})",
                robust[1].0
            ));
        }
    }
    clean_server.shutdown();

    // ---- gate: wall ceiling over every record --------------------------
    if gate {
        for r in &report.records {
            if r.wall_seconds > max_wall {
                failures.push(format!(
                    "{} {} {}: wall {:.1}s exceeds ceiling {max_wall:.1}s",
                    r.scenario, r.circuit, r.engine, r.wall_seconds
                ));
            }
        }
    }

    if emit_sections {
        let rows: Vec<String> = sections
            .iter()
            .map(|(scenario, engine, phase, wall)| {
                format!(
                    "    {{\"scenario\": \"{scenario}\", \"engine\": \"{engine}\", \
                     \"phase\": \"{phase}\", \"wall_seconds\": {:.6}}}",
                    wall.as_secs_f64()
                )
            })
            .collect();
        let json = format!("{{\n  \"sections\": [\n{}\n  ]\n}}\n", rows.join(",\n"));
        match write_json_to_repo_root("perfsuite_sections", &json) {
            Ok(path) => println!("\nwrote per-phase sections to {}", path.display()),
            Err(err) => eprintln!("\nfailed to write sections artifact: {err}"),
        }
    }

    if report_requested(&args) {
        write_report(&report);
    }

    if !failures.is_empty() {
        eprintln!("\nperf gate FAILED:");
        for f in &failures {
            eprintln!("  - {f}");
        }
        std::process::exit(1);
    }
    if gate {
        println!("\nperf gate passed ✓");
    }
}
