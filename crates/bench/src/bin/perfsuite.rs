//! The perf aggregator: runs a fixed matrix of (circuit × engine ×
//! batch-size) scenarios plus the cache and SPICE hot-path scenarios,
//! prints a throughput table, and optionally writes
//! `BENCH_perfsuite.json` / gates on regressions.
//!
//! ```sh
//! cargo run --release -p glova-bench --bin perfsuite
//! cargo run --release -p glova-bench --bin perfsuite -- --report
//! cargo run --release -p glova-bench --bin perfsuite -- --report --gate \
//!     --min-speedup 1.0 --max-wall-seconds 120
//! cargo run --release -p glova-bench --bin perfsuite -- --quick
//! ```
//!
//! Scenarios:
//!
//! - `yield_grid` — the fresh-die Monte-Carlo yield campaign (the
//!   pipeline's dominant workload) per circuit, batch size and engine;
//!   threaded records carry their speedup over the matching sequential
//!   run.
//! - `verify_resweep` — two identically seeded Algorithm-2 verifications
//!   of a passing design (the re-verification pattern of ablation and
//!   parity arms): with the [`EvalCache`](glova::cache::EvalCache)
//!   attached, the second sweep's phase-2 points are answered from
//!   memory, so the scenario measures a real hit rate and the wall-time
//!   ratio vs the cache-off reference.
//! - `spice_op` — repeated DC operating-point solves of CMOS inverter
//!   chains (4 and 24 stages), chord-Newton (the default) vs full
//!   Newton; the LU reuse wins grow with the MNA dimension.
//!
//! The `--gate` mode enforces: per-scenario wall ceiling, best threaded
//! speedup across the yield-grid matrix ≥ `--min-speedup` (skipped on
//! single-core machines, where a threaded engine cannot win), and a
//! nonzero cache hit rate on the re-sweep scenario. Timings gate on the
//! best of two runs per measurement — single samples of
//! millisecond-scale batches are CI-noise, not signal.

use glova::cache::EvalCacheConfig;
use glova::engine::EngineSpec;
use glova::problem::SizingProblem;
use glova::verification::Verifier;
use glova::yield_est::estimate_yield;
use glova_bench::report::{BenchRecord, BenchReport};
use glova_bench::{report_requested, write_report};
use glova_circuits::{Circuit, ToyQuadratic};
use glova_spice::dc::operating_point_with_options;
use glova_spice::mna::NewtonOptions;
use glova_spice::model::MosModel;
use glova_spice::netlist::{Netlist, GROUND};
use glova_stats::rng::seeded;
use glova_variation::config::VerificationMethod;
use std::sync::Arc;
use std::time::{Duration, Instant};

fn flag(args: &[String], name: &str) -> Option<String> {
    args.iter().position(|a| a == name).and_then(|i| args.get(i + 1)).cloned()
}

fn print_record(r: &BenchRecord) {
    let speedup =
        r.speedup_vs_sequential.map_or_else(|| "     -".to_string(), |s| format!("{s:5.2}x"));
    let cache = r.cache.map_or_else(String::new, |c| {
        format!("  cache {}/{} ({:.0}% hits)", c.hits, c.lookups(), c.hit_rate() * 100.0)
    });
    println!(
        "{:<28} {:<14} {:<12} {:>7} sims {:>9.1} sims/s {:>7} {}",
        r.scenario, r.circuit, r.engine, r.sims, r.sims_per_sec, speedup, cache
    );
}

/// One yield-grid campaign, best wall time of two runs — single-run
/// timings of millisecond-scale batches are too noisy to gate on
/// (shared CI runners jitter far more than the scheduler overhead under
/// measurement).
fn yield_grid(circuit: &Arc<dyn Circuit>, engine: EngineSpec, batch: usize) -> (u64, Duration) {
    let problem = SizingProblem::with_engine(
        circuit.clone(),
        VerificationMethod::CornerLocalMc,
        engine.build(),
    );
    let x = vec![0.5; circuit.dim()];
    let mut best = Duration::MAX;
    for _ in 0..2 {
        problem.reset_simulations();
        let mut rng = seeded(2025);
        let start = Instant::now();
        let _ = estimate_yield(&problem, &x, batch, 0.95, &mut rng);
        best = best.min(start.elapsed());
    }
    (problem.simulations(), best)
}

/// Two identically seeded verifications of a passing design; returns
/// (sims, wall, problem) so the caller can read cache stats.
fn verify_twice(problem: &SizingProblem, x: &[f64]) -> (u64, Duration) {
    let corner_order: Vec<usize> = (0..problem.config().corners.len()).collect();
    let verifier = Verifier::new(problem, 4.0);
    let start = Instant::now();
    for _ in 0..2 {
        let mut rng = seeded(7);
        let outcome = verifier.verify(x, &corner_order, None, &mut rng);
        assert!(outcome.passed, "perfsuite re-sweep design must pass verification");
    }
    (problem.simulations(), start.elapsed())
}

/// Repeated DC operating-point solves; returns wall time.
fn solve_op(netlist: &Netlist, options: &NewtonOptions, solves: usize) -> Duration {
    let start = Instant::now();
    for _ in 0..solves {
        operating_point_with_options(netlist, &vec![0.0; netlist.unknown_count()], options)
            .expect("operating point converges");
    }
    start.elapsed()
}

/// A CMOS inverter chain biased at mid-rail: `stages` nonlinear stages,
/// `2 + stages` MNA unknowns. The chord-Newton LU reuse pays off once
/// the O(n³) factorization outgrows the per-iteration restamp — chains
/// are the knob that sweeps `n`.
fn inverter_chain(stages: usize) -> Netlist {
    let mut nl = Netlist::new();
    let vdd = nl.node("vdd");
    let vin = nl.node("vin");
    nl.vsource("VDD", vdd, GROUND, 0.9);
    nl.vsource("VIN", vin, GROUND, 0.42);
    let mut prev = vin;
    for s in 0..stages {
        let out = nl.node(&format!("n{s}"));
        nl.mosfet(&format!("MP{s}"), out, prev, vdd, MosModel::pmos_28nm(), 2.0, 0.05);
        nl.mosfet(&format!("MN{s}"), out, prev, GROUND, MosModel::nmos_28nm(), 1.0, 0.05);
        prev = out;
    }
    nl
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let quick = args.iter().any(|a| a == "--quick");
    let gate = args.iter().any(|a| a == "--gate");
    let min_speedup: f64 = flag(&args, "--min-speedup").and_then(|s| s.parse().ok()).unwrap_or(1.0);
    let max_wall: f64 =
        flag(&args, "--max-wall-seconds").and_then(|s| s.parse().ok()).unwrap_or(120.0);

    let batches: &[usize] = if quick { &[16, 64] } else { &[64, 256] };
    let circuits: Vec<(&str, Arc<dyn Circuit>)> = vec![
        ("SAL", Arc::new(glova_circuits::StrongArmLatch::new()) as Arc<dyn Circuit>),
        ("FIA", Arc::new(glova_circuits::FloatingInverterAmp::new())),
    ];
    let threaded = EngineSpec::Threaded(0);
    let cores = threaded.resolved_workers();

    println!("=== perfsuite: fixed scenario matrix ===");
    println!(
        "(batches {batches:?}, threaded engine resolves to {cores} worker(s){})\n",
        if quick { ", quick" } else { "" }
    );

    let mut report = BenchReport::new("perfsuite");
    let mut failures: Vec<String> = Vec::new();

    // ---- yield_grid: circuit × batch × engine --------------------------
    // The gate checks the *best* threaded speedup across the matrix, not
    // every scenario: small batches are dominated by scheduler overhead
    // and runner noise, and a per-scenario >= 1.0x requirement would turn
    // one jittery 2 ms sample into a red build. A real threading
    // regression drags down every scenario, including the largest batch.
    let mut best_threaded_speedup = f64::NEG_INFINITY;
    for (name, circuit) in &circuits {
        for &batch in batches {
            let (seq_sims, seq_wall) = yield_grid(circuit, EngineSpec::Sequential, batch);
            let seq =
                BenchRecord::new("yield_grid", *name, "sequential", batch, seq_sims, seq_wall);
            print_record(&seq);
            report.push(seq);

            let (thr_sims, thr_wall) = yield_grid(circuit, threaded, batch);
            let speedup = seq_wall.as_secs_f64() / thr_wall.as_secs_f64().max(1e-12);
            best_threaded_speedup = best_threaded_speedup.max(speedup);
            let thr = BenchRecord::new(
                "yield_grid",
                *name,
                format!("threaded:{cores}"),
                batch,
                thr_sims,
                thr_wall,
            )
            .with_speedup(speedup);
            print_record(&thr);
            report.push(thr);
        }
    }
    if gate {
        if cores <= 1 {
            eprintln!("gate: skipping threaded-speedup check (single core)");
        } else if best_threaded_speedup < min_speedup {
            failures.push(format!(
                "yield_grid: best threaded speedup {best_threaded_speedup:.2}x \
                 across the matrix is below {min_speedup:.2}x"
            ));
        }
    }

    // ---- verify_resweep: cache off vs on -------------------------------
    // A mismatch-tolerant toy at its optimum: verification passes, so
    // both runs execute the full phase-2 sweep; the second, identically
    // seeded run re-visits every point.
    let toy: Arc<dyn Circuit> = Arc::new(ToyQuadratic::standard().with_mismatch_sensitivity(0.05));
    let x_opt = ToyQuadratic::standard().optimum().to_vec();
    let off_problem = SizingProblem::new(toy.clone(), VerificationMethod::CornerLocalMc);
    let (off_sims, off_wall) = verify_twice(&off_problem, &x_opt);
    let off =
        BenchRecord::new("verify_resweep", "ToyQuadratic", "sequential", 2, off_sims, off_wall);
    print_record(&off);
    report.push(off);

    let on_problem = SizingProblem::new(toy, VerificationMethod::CornerLocalMc)
        .with_cache(EvalCacheConfig::default());
    let (on_sims, on_wall) = verify_twice(&on_problem, &x_opt);
    let stats = on_problem.cache_stats().expect("cache attached");
    let cache_speedup = off_wall.as_secs_f64() / on_wall.as_secs_f64().max(1e-12);
    let on =
        BenchRecord::new("verify_resweep", "ToyQuadratic", "sequential+cache", 2, on_sims, on_wall)
            .with_speedup(cache_speedup)
            .with_cache(stats);
    print_record(&on);
    report.push(on);
    if gate && stats.hit_rate() <= 0.0 {
        failures.push("verify_resweep: cache hit rate is zero".to_string());
    }

    // ---- spice_op: chord vs full Newton --------------------------------
    let solves = if quick { 200 } else { 1000 };
    for (name, netlist) in [("inv_chain4", inverter_chain(4)), ("inv_chain24", inverter_chain(24))]
    {
        let full_wall = solve_op(&netlist, &NewtonOptions::full_newton(), solves);
        let full =
            BenchRecord::new("spice_op", name, "full-newton", solves, solves as u64, full_wall);
        print_record(&full);
        report.push(full);

        let chord_wall = solve_op(&netlist, &NewtonOptions::default(), solves);
        let chord_speedup = full_wall.as_secs_f64() / chord_wall.as_secs_f64().max(1e-12);
        let chord =
            BenchRecord::new("spice_op", name, "chord-newton", solves, solves as u64, chord_wall)
                .with_speedup(chord_speedup);
        print_record(&chord);
        report.push(chord);
    }

    // ---- gate: wall ceiling over every record --------------------------
    if gate {
        for r in &report.records {
            if r.wall_seconds > max_wall {
                failures.push(format!(
                    "{} {} {}: wall {:.1}s exceeds ceiling {max_wall:.1}s",
                    r.scenario, r.circuit, r.engine, r.wall_seconds
                ));
            }
        }
    }

    if report_requested(&args) {
        write_report(&report);
    }

    if !failures.is_empty() {
        eprintln!("\nperf gate FAILED:");
        for f in &failures {
            eprintln!("  - {f}");
        }
        std::process::exit(1);
    }
    if gate {
        println!("\nperf gate passed ✓");
    }
}
