//! Evaluation-engine speedup harness: the same Monte-Carlo yield
//! campaign (C-MC_L, fresh-die samples on every corner — the workload
//! dominating GLOVA's wall clock) run once per engine, with a bitwise
//! result comparison and the wall-clock ratio.
//!
//! ```sh
//! cargo run --release -p glova-bench --bin engine
//! cargo run --release -p glova-bench --bin engine -- --engine threaded:8 --samples 400
//! cargo run --release -p glova-bench --bin engine -- --circuit OCSA+SH --report
//! ```
//!
//! Expected shape: identical yield estimates from every engine, and on a
//! machine with ≥ 4 cores a ≥ 2× speedup for `threaded` over
//! `sequential`. `--report` writes `BENCH_engine.json` at the repo root.

use glova::engine::EngineSpec;
use glova::problem::SizingProblem;
use glova::yield_est::{estimate_yield, YieldEstimate};
use glova_bench::report::{BenchRecord, BenchReport};
use glova_bench::{report_requested, write_report};
use glova_circuits::Circuit;
use glova_stats::rng::seeded;
use glova_variation::config::VerificationMethod;
use std::sync::Arc;
use std::time::{Duration, Instant};

fn flag(args: &[String], name: &str) -> Option<String> {
    args.iter().position(|a| a == name).and_then(|i| args.get(i + 1)).cloned()
}

fn campaign(
    circuit: &Arc<dyn Circuit>,
    spec: EngineSpec,
    samples_per_corner: usize,
) -> (YieldEstimate, u64, Duration) {
    let problem = SizingProblem::with_engine(
        circuit.clone(),
        VerificationMethod::CornerLocalMc,
        spec.build(),
    );
    let x = vec![0.5; circuit.dim()];
    let mut rng = seeded(2025);
    let start = Instant::now();
    let estimate = estimate_yield(&problem, &x, samples_per_corner, 0.95, &mut rng);
    (estimate, problem.simulations(), start.elapsed())
}

/// Resolves the threaded engine under comparison: `--engine` wins, the
/// legacy `--workers N` flag still works, default is auto-sized.
///
/// `threaded:0` is valid ("size to the machine") but surprising enough
/// on a speedup harness that it is called out rather than silently
/// resolved; `sequential` makes the comparison meaningless and is
/// rejected.
fn threaded_spec(args: &[String]) -> EngineSpec {
    if let Some(value) = flag(args, "--engine") {
        let spec = EngineSpec::parse(&value).unwrap_or_else(|err| {
            eprintln!("{err}");
            std::process::exit(2);
        });
        match spec {
            EngineSpec::Sequential => {
                eprintln!(
                    "--engine sequential compares the reference engine against itself; \
                     pass `threaded` or `threaded:N`"
                );
                std::process::exit(2);
            }
            EngineSpec::Threaded(0) => {
                eprintln!(
                    "note: `threaded:0` means auto-sized — resolving to {} workers",
                    spec.resolved_workers()
                );
                spec
            }
            spec => spec,
        }
    } else if let Some(value) = flag(args, "--workers") {
        match value.parse::<usize>() {
            Ok(workers) => EngineSpec::Threaded(workers),
            Err(_) => {
                eprintln!("--workers expects a number, got `{value}`");
                std::process::exit(2);
            }
        }
    } else {
        EngineSpec::Threaded(0)
    }
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let samples: usize = flag(&args, "--samples").and_then(|s| s.parse().ok()).unwrap_or(200);
    let spec = threaded_spec(&args);
    let workers = spec.resolved_workers();
    let circuit_name = flag(&args, "--circuit").unwrap_or_else(|| "SAL".to_string());
    let circuit: Arc<dyn Circuit> = match circuit_name.as_str() {
        "FIA" => Arc::new(glova_circuits::FloatingInverterAmp::new()),
        "OCSA+SH" => Arc::new(glova_circuits::DramCoreSense::new()),
        _ => Arc::new(glova_circuits::StrongArmLatch::new()),
    };

    let corners = VerificationMethod::CornerLocalMc.operating_config().corners.len();
    println!("=== engine speedup: C-MC_L yield campaign on {circuit_name} ===");
    println!("({corners} corners x {samples} samples, engine {spec} -> {workers} worker(s))\n");

    let (seq_est, seq_sims, seq_time) = campaign(&circuit, EngineSpec::Sequential, samples);
    println!("{:<14} {:>10.1?}   {}", "sequential", seq_time, seq_est);
    let (thr_est, thr_sims, thr_time) = campaign(&circuit, spec, samples);
    println!("{:<14} {:>10.1?}   {}", format!("threaded:{workers}"), thr_time, thr_est);

    assert_eq!(seq_est, thr_est, "engines must produce identical estimates");
    println!("\nresults identical across engines ✓");
    let speedup = seq_time.as_secs_f64() / thr_time.as_secs_f64().max(1e-9);
    println!("speedup: {speedup:.2}x");

    if report_requested(&args) {
        let mut report = BenchReport::new("engine");
        report.push(BenchRecord::new(
            "yield_campaign",
            &circuit_name,
            "sequential",
            samples,
            seq_sims,
            seq_time,
        ));
        report.push(
            BenchRecord::new(
                "yield_campaign",
                &circuit_name,
                spec.to_string(),
                samples,
                thr_sims,
                thr_time,
            )
            .with_speedup(speedup),
        );
        write_report(&report);
    }
}
