//! Evaluation-engine speedup harness: the same Monte-Carlo yield
//! campaign (C-MC_L, fresh-die samples on every corner — the workload
//! dominating GLOVA's wall clock) run once per engine, with a bitwise
//! result comparison and the wall-clock ratio.
//!
//! ```sh
//! cargo run --release -p glova-bench --bin engine
//! cargo run --release -p glova-bench --bin engine -- --workers 8 --samples 400
//! cargo run --release -p glova-bench --bin engine -- --circuit OCSA+SH
//! ```
//!
//! Expected shape: identical yield estimates from every engine, and on a
//! machine with ≥ 4 cores a ≥ 2× speedup for `threaded` over
//! `sequential`.

use glova::engine::EngineSpec;
use glova::problem::SizingProblem;
use glova::yield_est::{estimate_yield, YieldEstimate};
use glova_circuits::Circuit;
use glova_stats::rng::seeded;
use glova_variation::config::VerificationMethod;
use std::num::NonZeroUsize;
use std::sync::Arc;
use std::time::{Duration, Instant};

fn flag(args: &[String], name: &str) -> Option<String> {
    args.iter().position(|a| a == name).and_then(|i| args.get(i + 1)).cloned()
}

fn campaign(
    circuit: &Arc<dyn Circuit>,
    spec: EngineSpec,
    samples_per_corner: usize,
) -> (YieldEstimate, Duration) {
    let problem = SizingProblem::with_engine(
        circuit.clone(),
        VerificationMethod::CornerLocalMc,
        spec.build(),
    );
    let x = vec![0.5; circuit.dim()];
    let mut rng = seeded(2025);
    let start = Instant::now();
    let estimate = estimate_yield(&problem, &x, samples_per_corner, 0.95, &mut rng);
    (estimate, start.elapsed())
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let samples: usize = flag(&args, "--samples").and_then(|s| s.parse().ok()).unwrap_or(200);
    let workers: usize = flag(&args, "--workers")
        .and_then(|s| s.parse().ok())
        .unwrap_or_else(|| std::thread::available_parallelism().map_or(1, NonZeroUsize::get));
    let circuit_name = flag(&args, "--circuit").unwrap_or_else(|| "SAL".to_string());
    let circuit: Arc<dyn Circuit> = match circuit_name.as_str() {
        "FIA" => Arc::new(glova_circuits::FloatingInverterAmp::new()),
        "OCSA+SH" => Arc::new(glova_circuits::DramCoreSense::new()),
        _ => Arc::new(glova_circuits::StrongArmLatch::new()),
    };

    let corners = VerificationMethod::CornerLocalMc.operating_config().corners.len();
    println!("=== engine speedup: C-MC_L yield campaign on {circuit_name} ===");
    println!("({corners} corners x {samples} samples, {workers} workers)\n");

    let (seq_est, seq_time) = campaign(&circuit, EngineSpec::Sequential, samples);
    println!("{:<14} {:>10.1?}   {}", "sequential", seq_time, seq_est);
    let (thr_est, thr_time) = campaign(&circuit, EngineSpec::Threaded(workers), samples);
    println!("{:<14} {:>10.1?}   {}", format!("threaded:{workers}"), thr_time, thr_est);

    assert_eq!(seq_est, thr_est, "engines must produce identical estimates");
    println!("\nresults identical across engines ✓");
    let speedup = seq_time.as_secs_f64() / thr_time.as_secs_f64().max(1e-9);
    println!("speedup: {speedup:.2}x");
}
