//! Regenerates **Fig. 3**: the ensemble critic's design-reliability bound
//! `E[Q] + β₁σ[Q]` tracking the sampled worst case over RL iterations.
//!
//! ```sh
//! cargo run --release -p glova-bench --bin fig3
//! cargo run --release -p glova-bench --bin fig3 -- --circuit FIA
//! cargo run --release -p glova-bench --bin fig3 -- --engine threaded:8 --report
//! ```
//!
//! `--report` writes the run's simulation throughput to
//! `BENCH_fig3.json`.
//!
//! Expected shape (paper's Fig. 3): the bound starts far below the
//! ensemble mean (large epistemic uncertainty), converges toward it as
//! worst-case data accumulates, and the sampled worst-case rewards climb
//! toward the satisfied level 0.2.

use glova::optimizer::{GlovaConfig, GlovaOptimizer};
use glova::prelude::*;
use glova_bench::report::{BenchRecord, BenchReport};
use glova_bench::{engine_from_args, report_requested, write_report};
use std::sync::Arc;

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let circuit_name = args
        .iter()
        .position(|a| a == "--circuit")
        .and_then(|i| args.get(i + 1))
        .cloned()
        .unwrap_or_else(|| "SAL".to_string());
    let circuit: Arc<dyn Circuit> = match circuit_name.as_str() {
        "FIA" => Arc::new(glova_circuits::FloatingInverterAmp::new()),
        "OCSA+SH" => Arc::new(glova_circuits::DramCoreSense::new()),
        _ => Arc::new(glova_circuits::StrongArmLatch::new()),
    };

    let engine = engine_from_args(&args);
    let mut config =
        GlovaConfig::paper(VerificationMethod::CornerLocalMc).with_trace().with_engine(engine);
    config.max_iterations = 400;
    let mut optimizer = GlovaOptimizer::new(circuit, config);
    let result = optimizer.run(2025);

    if report_requested(&args) {
        let mut report = BenchReport::new("fig3");
        report.push(BenchRecord::new(
            "glova_run",
            &circuit_name,
            engine.to_string(),
            1,
            result.simulations,
            result.wall_time,
        ));
        write_report(&report);
    }

    println!("=== Fig. 3: reliability-bound estimation on {circuit_name} (C-MC_L) ===\n");
    println!("run outcome: {result}\n");
    println!(
        "{:>4} {:>12} {:>12} {:>12} {:>10}",
        "iter", "worst_sample", "critic_mean", "bound", "gap"
    );
    for t in &result.trace {
        println!(
            "{:>4} {:>12.4} {:>12.4} {:>12.4} {:>10.4}",
            t.iteration,
            t.sampled_worst,
            t.critic_mean,
            t.critic_bound,
            t.critic_mean - t.critic_bound
        );
    }

    // Convergence summary: the uncertainty gap must shrink.
    if result.trace.len() >= 6 {
        let third = result.trace.len() / 3;
        let early: f64 =
            result.trace[..third].iter().map(|t| t.critic_mean - t.critic_bound).sum::<f64>()
                / third as f64;
        let late: f64 = result.trace[result.trace.len() - third..]
            .iter()
            .map(|t| t.critic_mean - t.critic_bound)
            .sum::<f64>()
            / third as f64;
        println!("\nmean uncertainty gap: early {early:.4} -> late {late:.4}");
        println!(
            "bound {} toward the mean as worst-case data accumulates",
            if late < early { "converged" } else { "did NOT converge" }
        );
    }

    // ASCII sparkline of the bound trajectory.
    if !result.trace.is_empty() {
        let min = result.trace.iter().map(|t| t.critic_bound).fold(f64::INFINITY, f64::min);
        let max = result
            .trace
            .iter()
            .map(|t| t.critic_bound)
            .fold(f64::NEG_INFINITY, f64::max)
            .max(min + 1e-9);
        let glyphs = [' ', '.', ':', '-', '=', '+', '*', '#'];
        let line: String = result
            .trace
            .iter()
            .map(|t| {
                let u = (t.critic_bound - min) / (max - min);
                glyphs[(u * (glyphs.len() - 1) as f64).round() as usize]
            })
            .collect();
        println!("\nbound trajectory ({min:.2} .. {max:.2}):\n{line}");
    }
}
