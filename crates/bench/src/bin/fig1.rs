//! Regenerates the structure of **Fig. 1**: global (die-to-die) vs local
//! (within-die) variation on a wafer, quantitatively.
//!
//! ```sh
//! cargo run --release -p glova-bench --bin fig1
//! cargo run --release -p glova-bench --bin fig1 -- --report
//! ```
//!
//! The hierarchical Eq.-3 sampler must show: die medians scattering with
//! σ_Global, devices scattering around their die median with σ_Local, and
//! the compound per-device σ equal to `√(σ_G² + σ_L²)`.
//! `--report` writes sampler throughput to `BENCH_fig1.json`.

use glova_bench::report::{BenchRecord, BenchReport};
use glova_bench::{report_requested, write_report};
use glova_stats::descriptive::{quantile, std_dev};
use glova_stats::Histogram;
use glova_variation::mismatch::{DeviceSpec, MismatchDomain, PelgromModel};
use glova_variation::sampler::{MismatchSampler, VarianceLayers};
use std::time::Instant;

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let domain =
        MismatchDomain::new(vec![DeviceSpec::nmos("m", 1.0, 0.05)], PelgromModel::cmos28());
    let sigma_local = domain.local_sigmas()[0];
    let sigma_global = domain.model().global_vth_sigma;
    let sampler = MismatchSampler::new(domain, VarianceLayers::GLOBAL_LOCAL);
    let mut rng = glova_stats::rng::seeded(2025);

    const DIES: usize = 64;
    const DEVICES: usize = 500;
    let sample_start = Instant::now();
    let wafer = sampler.sample_wafer(&mut rng, DIES, DEVICES);
    let sample_wall = sample_start.elapsed();

    let mut die_medians = Vec::with_capacity(DIES);
    let mut within: Vec<f64> = Vec::new();
    let mut all: Vec<f64> = Vec::new();
    for die in &wafer {
        let vths: Vec<f64> = die.iter().map(|h| h.values()[0] * 1e3).collect();
        let median = quantile(&vths, 0.5);
        die_medians.push(median);
        within.extend(vths.iter().map(|v| v - median));
        all.extend(vths.iter());
    }

    println!("=== Fig. 1: global vs local variation ({DIES} dies x {DEVICES} devices) ===\n");
    println!(
        "model σ_Global = {:.2} mV, σ_Local = {:.2} mV",
        sigma_global * 1e3,
        sigma_local * 1e3
    );
    println!(
        "expected compound per-device σ = {:.2} mV\n",
        (sigma_global * sigma_global + sigma_local * sigma_local).sqrt() * 1e3
    );
    println!("measured die-to-die σ (medians) : {:.2} mV", std_dev(&die_medians));
    println!("measured within-die σ           : {:.2} mV", std_dev(&within));
    println!("measured compound σ             : {:.2} mV", std_dev(&all));

    let lim = 3.5 * (sigma_global + sigma_local) * 1e3;
    let mut hist_global = Histogram::new(-lim, lim, 21);
    hist_global.extend_from_slice(&die_medians);
    println!("\ndie-median distribution (σ_Global structure):\n{}", hist_global.render(40));

    let mut hist_local = Histogram::new(-lim, lim, 21);
    hist_local.extend_from_slice(&within[..4000.min(within.len())]);
    println!("within-die deviation distribution (σ_Local structure):\n{}", hist_local.render(40));

    if report_requested(&args) {
        let mut report = BenchReport::new("fig1");
        report.push(BenchRecord::new(
            "wafer_sample",
            "pelgrom_nmos",
            "sequential",
            DEVICES,
            (DIES * DEVICES) as u64,
            sample_wall,
        ));
        write_report(&report);
    }
}
