//! Regenerates **Table III** of the paper: the ablation study on the DRAM
//! core (OCSA + SH) removing, one at a time, the ensemble critic (EC),
//! the µ-σ evaluation, and simulation reordering (SR).
//!
//! ```sh
//! cargo run --release -p glova-bench --bin table3
//! cargo run --release -p glova-bench --bin table3 -- --quick
//! cargo run --release -p glova-bench --bin table3 -- --circuit SAL  # faster variant
//! cargo run --release -p glova-bench --bin table3 -- --engine threaded:8 --report
//! ```
//!
//! `--report` writes per-ablation simulation throughput to
//! `BENCH_table3.json`.
//!
//! Expected shape: every ablation costs iterations and/or simulations;
//! "w/o SR" inflates the *simulation* count most, "w/o EC" the iteration
//! count, matching the paper's Table III.

use glova::optimizer::{GlovaConfig, GlovaOptimizer};
use glova_bench::report::{BenchRecord, BenchReport};
use glova_bench::{
    engine_from_args, fmt_mean, fmt_ratio, report_requested, write_report, CellResult,
};
use glova_circuits::Circuit;
use glova_variation::config::VerificationMethod;
use std::sync::Arc;
use std::time::Duration;

#[derive(Clone, Copy)]
enum Ablation {
    Proposed,
    WithoutEc,
    WithoutMuSigma,
    WithoutSr,
}

impl Ablation {
    const ALL: [Ablation; 4] =
        [Ablation::Proposed, Ablation::WithoutEc, Ablation::WithoutMuSigma, Ablation::WithoutSr];

    fn name(self) -> &'static str {
        match self {
            Ablation::Proposed => "Proposed",
            Ablation::WithoutEc => "w/o EC",
            Ablation::WithoutMuSigma => "w/o mu-sigma",
            Ablation::WithoutSr => "w/o SR",
        }
    }

    fn configure(self, method: VerificationMethod) -> GlovaConfig {
        let base = GlovaConfig::paper(method);
        match self {
            Ablation::Proposed => base,
            Ablation::WithoutEc => base.without_ensemble_critic(),
            Ablation::WithoutMuSigma => base.without_mu_sigma(),
            Ablation::WithoutSr => base.without_reordering(),
        }
    }
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let quick = args.iter().any(|a| a == "--quick");
    let seeds: u64 = args
        .iter()
        .position(|a| a == "--seeds")
        .and_then(|i| args.get(i + 1))
        .and_then(|s| s.parse().ok())
        .unwrap_or(if quick { 2 } else { 3 });
    let circuit_name = args
        .iter()
        .position(|a| a == "--circuit")
        .and_then(|i| args.get(i + 1))
        .cloned()
        .unwrap_or_else(|| "OCSA+SH".to_string());
    let engine = engine_from_args(&args);

    let circuit: Arc<dyn Circuit> = match circuit_name.as_str() {
        "SAL" => Arc::new(glova_circuits::StrongArmLatch::new()),
        "FIA" => Arc::new(glova_circuits::FloatingInverterAmp::new()),
        _ => Arc::new(glova_circuits::DramCoreSense::new()),
    };
    let max_iterations = match (circuit_name.as_str(), quick) {
        ("OCSA+SH", false) => 1200,
        ("OCSA+SH", true) => 600,
        (_, false) => 500,
        (_, true) => 250,
    };

    println!("=== Table III: ablation study on {circuit_name} ({seeds} seeds/cell) ===\n");

    let methods = VerificationMethod::ALL;
    let mut results: Vec<Vec<CellResult>> = Vec::new();
    for ablation in Ablation::ALL {
        let mut per_method = Vec::new();
        for method in methods {
            eprintln!("running {} / {method}...", ablation.name());
            let runs = (0..seeds)
                .map(|seed| {
                    let mut config = ablation.configure(method).with_engine(engine);
                    config.max_iterations = max_iterations;
                    GlovaOptimizer::new(circuit.clone(), config).run(4000 + seed)
                })
                .collect();
            per_method.push(CellResult::from_runs(runs));
        }
        results.push(per_method);
    }

    print!("{:<14}", "Verification");
    for m in methods {
        print!("{:^12}", m.short_name());
    }
    println!();

    println!("\n-- RL Iteration --");
    for (ai, ablation) in Ablation::ALL.iter().enumerate() {
        print!("{:<14}", ablation.name());
        for cell in &results[ai] {
            print!("{:^12}", fmt_mean(cell.mean_iterations));
        }
        println!();
    }
    println!("\n-- # Simulation --");
    for (ai, ablation) in Ablation::ALL.iter().enumerate() {
        print!("{:<14}", ablation.name());
        for cell in &results[ai] {
            print!("{:^12}", fmt_mean(cell.mean_simulations));
        }
        println!();
    }
    println!("\n-- Norm. Runtime (vs Proposed) --");
    for (ai, ablation) in Ablation::ALL.iter().enumerate() {
        print!("{:<14}", ablation.name());
        for (mi, cell) in results[ai].iter().enumerate() {
            let baseline = &results[0][mi];
            let ratio = if baseline.any_success() && cell.any_success() {
                fmt_ratio(
                    cell.mean_wall.as_secs_f64() / baseline.mean_wall.as_secs_f64().max(1e-12),
                )
            } else {
                "-".to_string()
            };
            print!("{ratio:^12}");
        }
        println!();
    }
    println!("\n-- Success Rate --");
    for (ai, ablation) in Ablation::ALL.iter().enumerate() {
        print!("{:<14}", ablation.name());
        for cell in &results[ai] {
            print!("{:^12}", format!("{:.0}%", cell.success_rate * 100.0));
        }
        println!();
    }

    if report_requested(&args) {
        let mut report = BenchReport::new("table3");
        for (ai, ablation) in Ablation::ALL.iter().enumerate() {
            for (method, cell) in methods.iter().zip(&results[ai]) {
                let sims: u64 = cell.runs.iter().map(|r| r.simulations).sum();
                let wall: Duration = cell.runs.iter().map(|r| r.wall_time).sum();
                report.push(BenchRecord::new(
                    format!("{}/{}", method.short_name(), ablation.name()),
                    &circuit_name,
                    engine.to_string(),
                    seeds as usize,
                    sims,
                    wall,
                ));
            }
        }
        write_report(&report);
    }
}
