//! Component micro-benchmarks: the building blocks whose throughput
//! determines end-to-end experiment cost.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use glova_circuits::{Circuit, DramCoreSense, FloatingInverterAmp, StrongArmLatch};
use glova_nn::{Activation, Adam, Mlp, MlpConfig};
use glova_rl::EnsembleCritic;
use glova_stats::rng::seeded;
use glova_turbo::GaussianProcess;
use glova_variation::corner::PvtCorner;
use glova_variation::sampler::{MismatchSampler, MismatchVector, VarianceLayers};

fn bench_circuit_eval(c: &mut Criterion) {
    let mut group = c.benchmark_group("circuit_eval");
    let corner = PvtCorner::typical();
    let sal = StrongArmLatch::new();
    let x_sal = sal.reference_design();
    let h_sal = MismatchVector::nominal(sal.mismatch_domain(&x_sal).dim());
    group.bench_function("sal", |b| {
        b.iter(|| black_box(sal.evaluate(black_box(&x_sal), &corner, &h_sal)))
    });
    let fia = FloatingInverterAmp::new();
    let x_fia = fia.reference_design();
    let h_fia = MismatchVector::nominal(fia.mismatch_domain(&x_fia).dim());
    group.bench_function("fia", |b| {
        b.iter(|| black_box(fia.evaluate(black_box(&x_fia), &corner, &h_fia)))
    });
    let dram = DramCoreSense::new();
    let x_dram = dram.reference_design();
    let h_dram = MismatchVector::nominal(dram.mismatch_domain(&x_dram).dim());
    group.bench_function("dram", |b| {
        b.iter(|| black_box(dram.evaluate(black_box(&x_dram), &corner, &h_dram)))
    });
    group.finish();
}

fn bench_mismatch_sampling(c: &mut Criterion) {
    let sal = StrongArmLatch::new();
    let x = sal.reference_design();
    let sampler = MismatchSampler::new(sal.mismatch_domain(&x), VarianceLayers::GLOBAL_LOCAL);
    let mut rng = seeded(1);
    c.bench_function("sample_set_n3", |b| b.iter(|| black_box(sampler.sample_set(&mut rng, 3))));
    c.bench_function("sample_independent_n100", |b| {
        b.iter(|| black_box(sampler.sample_independent(&mut rng, 100)))
    });
}

fn bench_nn(c: &mut Criterion) {
    let mut rng = seeded(2);
    let net = Mlp::new(&MlpConfig::new(14, &[64, 64, 64], 14, Activation::Relu), &mut rng);
    let x = vec![0.5; 14];
    c.bench_function("mlp_forward_64x3", |b| b.iter(|| black_box(net.forward(&x))));
    let mut trainable = net.clone();
    let mut adam = Adam::new(1e-3);
    c.bench_function("mlp_train_step_64x3", |b| {
        b.iter(|| {
            let (out, cache) = trainable.forward_cached(&x);
            let grad: Vec<f64> = out.iter().map(|o| 2.0 * o).collect();
            let (g, _) = trainable.backward(&cache, &grad);
            adam.step(&mut trainable, &g);
        })
    });
}

fn bench_critic(c: &mut Criterion) {
    let mut rng = seeded(3);
    let critic = EnsembleCritic::new(14, 5, &[64, 64, 64], -3.0, 1e-3, 0.0, &mut rng);
    let x = vec![0.5; 14];
    c.bench_function("ensemble_critic_predict", |b| b.iter(|| black_box(critic.predict(&x))));
    c.bench_function("ensemble_critic_input_grad", |b| {
        b.iter(|| black_box(critic.input_gradient(&x)))
    });
}

fn bench_gp(c: &mut Criterion) {
    let mut rng = seeded(4);
    let xs: Vec<Vec<f64>> =
        (0..60).map(|i| vec![(i as f64 / 59.0), ((i * 7 % 60) as f64 / 59.0)]).collect();
    let ys: Vec<f64> = xs.iter().map(|x| (x[0] - 0.3).powi(2) + x[1]).collect();
    c.bench_function("gp_fit_auto_60pts", |b| {
        b.iter(|| black_box(GaussianProcess::fit_auto(&xs, &ys, &mut rng)))
    });
    let gp = GaussianProcess::fit_auto(&xs, &ys, &mut rng);
    c.bench_function("gp_predict", |b| b.iter(|| black_box(gp.predict(&[0.4, 0.6]))));
}

criterion_group!(
    benches,
    bench_circuit_eval,
    bench_mismatch_sampling,
    bench_nn,
    bench_critic,
    bench_gp
);
criterion_main!(benches);
