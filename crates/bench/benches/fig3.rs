//! Criterion bench regenerating **Fig. 3**'s workload: a traced GLOVA
//! campaign whose per-iteration reliability-bound series is the figure's
//! data. The rendered series is produced by the `fig3` binary.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use glova::optimizer::{GlovaConfig, GlovaOptimizer};
use glova_circuits::{Circuit, StrongArmLatch};
use glova_variation::config::VerificationMethod;
use std::sync::Arc;

fn bench_traced_run(c: &mut Criterion) {
    let circuit: Arc<dyn Circuit> = Arc::new(StrongArmLatch::new());
    let mut group = c.benchmark_group("fig3_traced_campaign");
    group.sample_size(10);
    group.bench_function("sal_cmcl_traced", |b| {
        b.iter_batched(
            || {
                let mut config = GlovaConfig::paper(VerificationMethod::CornerLocalMc).with_trace();
                config.max_iterations = 60;
                GlovaOptimizer::new(circuit.clone(), config)
            },
            |mut opt| {
                let result = opt.run(1);
                assert!(result.trace.len() <= 60);
                result
            },
            BatchSize::PerIteration,
        )
    });
    group.finish();
}

criterion_group!(benches, bench_traced_run);
criterion_main!(benches);
