//! Criterion bench regenerating **Fig. 1**'s workload: hierarchical
//! wafer sampling (global + local variation). The rendered figure is
//! produced by the `fig1` binary; this bench tracks the sampler cost.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use glova_stats::rng::seeded;
use glova_variation::mismatch::{DeviceSpec, MismatchDomain, PelgromModel};
use glova_variation::sampler::{MismatchSampler, VarianceLayers};

fn bench_wafer_sampling(c: &mut Criterion) {
    let domain =
        MismatchDomain::new(vec![DeviceSpec::nmos("m", 1.0, 0.05)], PelgromModel::cmos28());
    let sampler = MismatchSampler::new(domain, VarianceLayers::GLOBAL_LOCAL);
    let mut rng = seeded(1);
    c.bench_function("fig1_wafer_16x200", |b| {
        b.iter(|| black_box(sampler.sample_wafer(&mut rng, 16, 200)))
    });
}

criterion_group!(benches, bench_wafer_sampling);
criterion_main!(benches);
