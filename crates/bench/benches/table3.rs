//! Criterion bench regenerating a scaled-down **Table III** comparison:
//! the cost of a GLOVA campaign on the DRAM core with and without each
//! proposed component (corner verification for speed). The full ablation
//! table is produced by the `table3` binary.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use glova::optimizer::{GlovaConfig, GlovaOptimizer};
use glova_circuits::{Circuit, DramCoreSense};
use glova_variation::config::VerificationMethod;
use std::sync::Arc;

fn bench_ablations(c: &mut Criterion) {
    let circuit: Arc<dyn Circuit> = Arc::new(DramCoreSense::new());
    let mut group = c.benchmark_group("table3_dram_corner");
    group.sample_size(10);

    let variants: Vec<(&str, Box<dyn Fn() -> GlovaConfig>)> = vec![
        ("proposed", Box::new(|| GlovaConfig::paper(VerificationMethod::Corner))),
        (
            "without_ec",
            Box::new(|| GlovaConfig::paper(VerificationMethod::Corner).without_ensemble_critic()),
        ),
        (
            "without_mu_sigma",
            Box::new(|| GlovaConfig::paper(VerificationMethod::Corner).without_mu_sigma()),
        ),
        (
            "without_sr",
            Box::new(|| GlovaConfig::paper(VerificationMethod::Corner).without_reordering()),
        ),
    ];
    for (name, make) in variants {
        group.bench_function(name, |b| {
            b.iter_batched(
                || {
                    let mut config = make();
                    config.max_iterations = 120;
                    GlovaOptimizer::new(circuit.clone(), config)
                },
                |mut opt| opt.run(1),
                BatchSize::PerIteration,
            )
        });
    }
    group.finish();
}

criterion_group!(benches, bench_ablations);
criterion_main!(benches);
