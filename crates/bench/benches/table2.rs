//! Criterion bench regenerating a scaled-down **Table II** cell per
//! framework: one full sizing campaign on the StrongARM latch under
//! corner verification. The full table is produced by the `table2` binary;
//! this bench tracks the end-to-end cost of a campaign per framework.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use glova::optimizer::{GlovaConfig, GlovaOptimizer};
use glova_baselines::pvtsizing::{PvtSizing, PvtSizingConfig};
use glova_baselines::robustanalog::{RobustAnalog, RobustAnalogConfig};
use glova_circuits::{Circuit, StrongArmLatch};
use glova_variation::config::VerificationMethod;
use std::sync::Arc;

fn bench_table2_cell(c: &mut Criterion) {
    let circuit: Arc<dyn Circuit> = Arc::new(StrongArmLatch::new());
    let mut group = c.benchmark_group("table2_sal_corner");
    group.sample_size(10);

    group.bench_function("glova", |b| {
        b.iter_batched(
            || {
                let mut config = GlovaConfig::paper(VerificationMethod::Corner);
                config.max_iterations = 100;
                GlovaOptimizer::new(circuit.clone(), config)
            },
            |mut opt| opt.run(1),
            BatchSize::PerIteration,
        )
    });
    group.bench_function("pvtsizing", |b| {
        b.iter_batched(
            || {
                let mut config = PvtSizingConfig::new(VerificationMethod::Corner);
                config.max_iterations = 100;
                PvtSizing::new(circuit.clone(), config)
            },
            |mut opt| opt.run(1),
            BatchSize::PerIteration,
        )
    });
    group.bench_function("robustanalog", |b| {
        b.iter_batched(
            || {
                let mut config = RobustAnalogConfig::new(VerificationMethod::Corner);
                config.max_iterations = 200;
                RobustAnalog::new(circuit.clone(), config)
            },
            |mut opt| opt.run(1),
            BatchSize::PerIteration,
        )
    });
    group.finish();
}

criterion_group!(benches, bench_table2_cell);
criterion_main!(benches);
