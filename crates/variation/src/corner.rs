//! PVT corner definitions.
//!
//! The paper's testcases are verified under 30 PVT conditions:
//! `{TT, SS, FF, SF, FS} × {0.8 V, 0.9 V} × {−40 °C, 27 °C, 80 °C}`.
//! Global-local Monte Carlo (`C-MC_G-L`) replaces the process-corner axis
//! with statistically sampled global variation, leaving the 6 VT corners.

/// Process corner: the first letter is the NMOS speed, the second the PMOS
/// speed (S = slow, T = typical, F = fast).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Default)]
pub enum ProcessCorner {
    /// Typical NMOS, typical PMOS.
    #[default]
    Tt,
    /// Slow NMOS, slow PMOS.
    Ss,
    /// Fast NMOS, fast PMOS.
    Ff,
    /// Slow NMOS, fast PMOS.
    Sf,
    /// Fast NMOS, slow PMOS.
    Fs,
}

impl ProcessCorner {
    /// All five corners in the paper's order.
    pub const ALL: [ProcessCorner; 5] = [
        ProcessCorner::Tt,
        ProcessCorner::Ss,
        ProcessCorner::Ff,
        ProcessCorner::Sf,
        ProcessCorner::Fs,
    ];

    /// NMOS speed skew in `{-1, 0, +1}` (+1 = fast ⇒ lower V_th).
    pub fn nmos_skew(self) -> f64 {
        match self {
            ProcessCorner::Tt => 0.0,
            ProcessCorner::Ss | ProcessCorner::Sf => -1.0,
            ProcessCorner::Ff | ProcessCorner::Fs => 1.0,
        }
    }

    /// PMOS speed skew in `{-1, 0, +1}` (+1 = fast ⇒ lower |V_th|).
    pub fn pmos_skew(self) -> f64 {
        match self {
            ProcessCorner::Tt => 0.0,
            ProcessCorner::Ss | ProcessCorner::Fs => -1.0,
            ProcessCorner::Ff | ProcessCorner::Sf => 1.0,
        }
    }
}

impl std::fmt::Display for ProcessCorner {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = match self {
            ProcessCorner::Tt => "TT",
            ProcessCorner::Ss => "SS",
            ProcessCorner::Ff => "FF",
            ProcessCorner::Sf => "SF",
            ProcessCorner::Fs => "FS",
        };
        f.write_str(s)
    }
}

/// One PVT condition: process corner, supply voltage and temperature.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PvtCorner {
    /// Process corner.
    pub process: ProcessCorner,
    /// Supply voltage in volts.
    pub vdd: f64,
    /// Junction temperature in °C.
    pub temp_c: f64,
}

impl PvtCorner {
    /// The nominal design condition: TT, 0.9 V, 27 °C.
    pub fn typical() -> Self {
        Self { process: ProcessCorner::Tt, vdd: 0.9, temp_c: 27.0 }
    }

    /// Absolute temperature in kelvin.
    pub fn temp_k(&self) -> f64 {
        self.temp_c + 273.15
    }

    /// Thermal voltage `kT/q` in volts at this corner's temperature.
    pub fn thermal_voltage(&self) -> f64 {
        const K_OVER_Q: f64 = 8.617_333e-5; // V/K
        K_OVER_Q * self.temp_k()
    }
}

impl Default for PvtCorner {
    fn default() -> Self {
        Self::typical()
    }
}

impl std::fmt::Display for PvtCorner {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}/{:.1}V/{:+.0}C", self.process, self.vdd, self.temp_c)
    }
}

/// An ordered collection of PVT corners.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct CornerSet {
    corners: Vec<PvtCorner>,
}

impl CornerSet {
    /// Supply voltages evaluated by the paper.
    pub const VDD_LEVELS: [f64; 2] = [0.8, 0.9];
    /// Temperatures evaluated by the paper (°C).
    pub const TEMPERATURES: [f64; 3] = [-40.0, 27.0, 80.0];

    /// Builds a corner set from an explicit list.
    pub fn from_corners(corners: Vec<PvtCorner>) -> Self {
        Self { corners }
    }

    /// The full industrial 30-corner set
    /// `{TT,SS,FF,SF,FS} × {0.8, 0.9} × {−40, 27, 80}`.
    pub fn industrial_30() -> Self {
        let mut corners = Vec::with_capacity(30);
        for process in ProcessCorner::ALL {
            for &vdd in &Self::VDD_LEVELS {
                for &temp_c in &Self::TEMPERATURES {
                    corners.push(PvtCorner { process, vdd, temp_c });
                }
            }
        }
        Self { corners }
    }

    /// The 6 VT corners used with global-local MC (process fixed at TT —
    /// global process variation is sampled statistically instead).
    pub fn vt_6() -> Self {
        let mut corners = Vec::with_capacity(6);
        for &vdd in &Self::VDD_LEVELS {
            for &temp_c in &Self::TEMPERATURES {
                corners.push(PvtCorner { process: ProcessCorner::Tt, vdd, temp_c });
            }
        }
        Self { corners }
    }

    /// Only the typical condition (initial TuRBO sampling target).
    pub fn typical_only() -> Self {
        Self { corners: vec![PvtCorner::typical()] }
    }

    /// Number of corners.
    pub fn len(&self) -> usize {
        self.corners.len()
    }

    /// Whether the set is empty.
    pub fn is_empty(&self) -> bool {
        self.corners.is_empty()
    }

    /// The corners in order.
    pub fn corners(&self) -> &[PvtCorner] {
        &self.corners
    }

    /// Iterates over the corners.
    pub fn iter(&self) -> std::slice::Iter<'_, PvtCorner> {
        self.corners.iter()
    }

    /// The corner at `index`.
    ///
    /// # Panics
    ///
    /// Panics if `index` is out of bounds.
    pub fn corner(&self, index: usize) -> PvtCorner {
        self.corners[index]
    }
}

impl<'a> IntoIterator for &'a CornerSet {
    type Item = &'a PvtCorner;
    type IntoIter = std::slice::Iter<'a, PvtCorner>;

    fn into_iter(self) -> Self::IntoIter {
        self.corners.iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn thirty_corners_enumerated() {
        let set = CornerSet::industrial_30();
        assert_eq!(set.len(), 30);
        // All distinct.
        for i in 0..set.len() {
            for j in i + 1..set.len() {
                assert_ne!(set.corner(i), set.corner(j));
            }
        }
    }

    #[test]
    fn vt_set_is_tt_only() {
        let set = CornerSet::vt_6();
        assert_eq!(set.len(), 6);
        assert!(set.iter().all(|c| c.process == ProcessCorner::Tt));
    }

    #[test]
    fn skew_signs() {
        assert_eq!(ProcessCorner::Tt.nmos_skew(), 0.0);
        assert_eq!(ProcessCorner::Ss.nmos_skew(), -1.0);
        assert_eq!(ProcessCorner::Ss.pmos_skew(), -1.0);
        assert_eq!(ProcessCorner::Sf.nmos_skew(), -1.0);
        assert_eq!(ProcessCorner::Sf.pmos_skew(), 1.0);
        assert_eq!(ProcessCorner::Fs.nmos_skew(), 1.0);
        assert_eq!(ProcessCorner::Fs.pmos_skew(), -1.0);
    }

    #[test]
    fn thermal_voltage_at_room_temp() {
        let c = PvtCorner::typical();
        assert!((c.thermal_voltage() - 0.02585).abs() < 1e-4);
        assert!((c.temp_k() - 300.15).abs() < 1e-9);
    }

    #[test]
    fn typical_corner_values() {
        let c = PvtCorner::typical();
        assert_eq!(c.process, ProcessCorner::Tt);
        assert_eq!(c.vdd, 0.9);
        assert_eq!(c.temp_c, 27.0);
        assert_eq!(PvtCorner::default(), c);
    }

    #[test]
    fn display_formats() {
        let c = PvtCorner { process: ProcessCorner::Sf, vdd: 0.8, temp_c: -40.0 };
        assert_eq!(c.to_string(), "SF/0.8V/-40C");
    }

    #[test]
    fn iteration_matches_len() {
        let set = CornerSet::industrial_30();
        assert_eq!(set.iter().count(), 30);
        assert_eq!((&set).into_iter().count(), 30);
    }
}
