//! Operational configuration — the paper's Table I.
//!
//! The verification method chosen by the user determines which corners are
//! simulated, which variance layers are sampled, and how many samples the
//! optimization and verification phases use.

use crate::corner::CornerSet;
use crate::sampler::VarianceLayers;

/// Industrial verification method (paper Table I and §VI.B).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum VerificationMethod {
    /// `C` — corner simulation only: 30 predefined PVT corners, no
    /// mismatch. Full verification = 30 simulations.
    #[default]
    Corner,
    /// `C-MC_L` — corner + local Monte Carlo: 0.1 K local MC samples on
    /// each of the 30 corners. Full verification = 3 000 simulations.
    CornerLocalMc,
    /// `C-MC_G-L` — corner + global-local Monte Carlo: 1 K global-local MC
    /// samples on each of the 6 VT corners. Full verification = 6 000
    /// simulations.
    CornerGlobalLocalMc,
}

impl VerificationMethod {
    /// All three methods in Table-I order.
    pub const ALL: [VerificationMethod; 3] = [
        VerificationMethod::Corner,
        VerificationMethod::CornerLocalMc,
        VerificationMethod::CornerGlobalLocalMc,
    ];

    /// The operating configuration row of Table I for this method.
    pub fn operating_config(self) -> OperatingConfig {
        match self {
            VerificationMethod::Corner => OperatingConfig {
                method: self,
                corners: CornerSet::industrial_30(),
                include_global: false,
                include_local: false,
                optim_samples: 1,
                verif_samples_per_corner: 1,
            },
            VerificationMethod::CornerLocalMc => OperatingConfig {
                method: self,
                corners: CornerSet::industrial_30(),
                include_global: false,
                include_local: true,
                optim_samples: 3,
                verif_samples_per_corner: 100,
            },
            VerificationMethod::CornerGlobalLocalMc => OperatingConfig {
                method: self,
                corners: CornerSet::vt_6(),
                include_global: true,
                include_local: true,
                optim_samples: 3,
                verif_samples_per_corner: 1000,
            },
        }
    }

    /// Short name as used in the paper's tables.
    pub fn short_name(self) -> &'static str {
        match self {
            VerificationMethod::Corner => "C",
            VerificationMethod::CornerLocalMc => "C-MCL",
            VerificationMethod::CornerGlobalLocalMc => "C-MCG-L",
        }
    }
}

impl std::fmt::Display for VerificationMethod {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.short_name())
    }
}

/// One row of Table I: everything the framework needs to operate under a
/// chosen verification method.
#[derive(Debug, Clone, PartialEq)]
pub struct OperatingConfig {
    /// The method this configuration realizes.
    pub method: VerificationMethod,
    /// Corners simulated during optimization and verification.
    pub corners: CornerSet,
    /// Whether global (die-to-die) variation is sampled.
    pub include_global: bool,
    /// Whether local (within-die) mismatch is sampled.
    pub include_local: bool,
    /// `N'` — mismatch samples per optimization iteration (paper: 2–5,
    /// experiments use 3).
    pub optim_samples: usize,
    /// `N` — mismatch samples per corner in full verification.
    pub verif_samples_per_corner: usize,
}

impl OperatingConfig {
    /// The variance layers active under this configuration.
    pub fn variance_layers(&self) -> VarianceLayers {
        VarianceLayers { global: self.include_global, local: self.include_local }
    }

    /// Total simulation count of one *full* verification pass.
    pub fn full_verification_cost(&self) -> usize {
        self.corners.len() * self.verif_samples_per_corner
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_one_rows() {
        let c = VerificationMethod::Corner.operating_config();
        assert_eq!(c.corners.len(), 30);
        assert!(!c.include_global && !c.include_local);
        assert_eq!(c.full_verification_cost(), 30);

        let mcl = VerificationMethod::CornerLocalMc.operating_config();
        assert_eq!(mcl.corners.len(), 30);
        assert!(!mcl.include_global && mcl.include_local);
        assert_eq!(mcl.full_verification_cost(), 3000);

        let mcgl = VerificationMethod::CornerGlobalLocalMc.operating_config();
        assert_eq!(mcgl.corners.len(), 6);
        assert!(mcgl.include_global && mcgl.include_local);
        assert_eq!(mcgl.full_verification_cost(), 6000);
    }

    #[test]
    fn optim_samples_in_paper_range() {
        for m in VerificationMethod::ALL {
            let cfg = m.operating_config();
            assert!((1..=5).contains(&cfg.optim_samples));
        }
    }

    #[test]
    fn short_names() {
        assert_eq!(VerificationMethod::Corner.to_string(), "C");
        assert_eq!(VerificationMethod::CornerLocalMc.to_string(), "C-MCL");
        assert_eq!(VerificationMethod::CornerGlobalLocalMc.to_string(), "C-MCG-L");
    }

    #[test]
    fn variance_layers_match_flags() {
        use crate::sampler::VarianceLayers;
        assert_eq!(
            VerificationMethod::Corner.operating_config().variance_layers(),
            VarianceLayers::NONE
        );
        assert_eq!(
            VerificationMethod::CornerLocalMc.operating_config().variance_layers(),
            VarianceLayers::LOCAL
        );
        assert_eq!(
            VerificationMethod::CornerGlobalLocalMc.operating_config().variance_layers(),
            VarianceLayers::GLOBAL_LOCAL
        );
    }
}
