//! PVT corners and hierarchical process-variation models for GLOVA.
//!
//! Analog performance degrades under **P**rocess, **V**oltage and
//! **T**emperature variation. The paper models process variation
//! hierarchically (its Eq. 3 and Fig. 1):
//!
//! - **global** (die-to-die) variation `h⁽¹⁾ ~ N(0, Σ_Global)` shifts every
//!   device on a die together, and
//! - **local** (within-die) mismatch `h⁽²⁾ ~ N(h⁽¹⁾, Σ_Local(x))` scatters
//!   each device around the die median, with variance shrinking with device
//!   area (Pelgrom's law) — so the variances depend on the sizing vector
//!   `x`.
//!
//! This crate provides:
//!
//! - [`corner`] — process corners `{TT, SS, FF, SF, FS}`, supply voltages
//!   `{0.8 V, 0.9 V}` and temperatures `{−40 °C, 27 °C, 80 °C}`, plus the
//!   industrial 30-corner set and the 6 VT-corner set used by global-local
//!   Monte Carlo.
//! - [`mismatch`] — device descriptions and the Pelgrom σ models that build
//!   `Σ_Global` / `Σ_Local(x)`.
//! - [`sampler`] — the Eq.-3 hierarchical sampler producing mismatch
//!   condition sets.
//! - [`config`] — the operational configuration of Table I (verification
//!   method → corner set, variances, sample counts).
//!
//! # Example
//!
//! ```
//! use glova_variation::corner::CornerSet;
//! use glova_variation::config::VerificationMethod;
//!
//! let cfg = VerificationMethod::CornerLocalMc.operating_config();
//! assert_eq!(cfg.corners, CornerSet::industrial_30());
//! assert_eq!(cfg.corners.len(), 30);
//! assert!(cfg.include_local && !cfg.include_global);
//! ```

pub mod config;
pub mod corner;
pub mod mismatch;
pub mod sampler;

pub use config::{OperatingConfig, VerificationMethod};
pub use corner::{CornerSet, ProcessCorner, PvtCorner};
pub use mismatch::{DeviceKind, DeviceSpec, MismatchDomain, PelgromModel};
pub use sampler::{MismatchSampler, MismatchVector};
