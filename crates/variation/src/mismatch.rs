//! Device descriptions and Pelgrom mismatch-variance models.
//!
//! The paper's Σ matrices (Eq. 3) are diagonal: `Σ_Local(x)` holds the
//! per-device-parameter variances, which follow Pelgrom's law — standard
//! deviation inversely proportional to the square root of device area — so
//! they depend on the sizing vector `x`. `Σ_Global` holds the die-to-die
//! process-parameter variances.
//!
//! Each transistor contributes **two** mismatch components: a threshold
//! shift `ΔV_th` (volts) and a relative current-factor error `Δβ/β`
//! (unitless). Each capacitor contributes one relative error `ΔC/C`.

/// Kind of a matched device.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DeviceKind {
    /// N-channel MOSFET.
    Nmos,
    /// P-channel MOSFET.
    Pmos,
    /// Capacitor (MIM/MOM).
    Capacitor,
}

impl std::fmt::Display for DeviceKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = match self {
            DeviceKind::Nmos => "nmos",
            DeviceKind::Pmos => "pmos",
            DeviceKind::Capacitor => "cap",
        };
        f.write_str(s)
    }
}

/// One physical device instance subject to mismatch.
#[derive(Debug, Clone, PartialEq)]
pub struct DeviceSpec {
    /// Instance name (diagnostics and reports).
    pub name: String,
    /// Device kind.
    pub kind: DeviceKind,
    /// Gate width in µm (transistors) — ignored for capacitors.
    pub width_um: f64,
    /// Gate length in µm (transistors) — ignored for capacitors.
    pub length_um: f64,
    /// Capacitance in farads — ignored for transistors.
    pub cap_f: f64,
}

impl DeviceSpec {
    /// Describes an NMOS transistor.
    pub fn nmos(name: impl Into<String>, width_um: f64, length_um: f64) -> Self {
        Self { name: name.into(), kind: DeviceKind::Nmos, width_um, length_um, cap_f: 0.0 }
    }

    /// Describes a PMOS transistor.
    pub fn pmos(name: impl Into<String>, width_um: f64, length_um: f64) -> Self {
        Self { name: name.into(), kind: DeviceKind::Pmos, width_um, length_um, cap_f: 0.0 }
    }

    /// Describes a capacitor.
    pub fn capacitor(name: impl Into<String>, cap_f: f64) -> Self {
        Self {
            name: name.into(),
            kind: DeviceKind::Capacitor,
            width_um: 0.0,
            length_um: 0.0,
            cap_f,
        }
    }

    /// Gate area in µm² (transistors) or plate area for capacitors assuming
    /// MIM density [`PelgromModel::DEFAULT_CAP_DENSITY`].
    pub fn area_um2(&self) -> f64 {
        match self.kind {
            DeviceKind::Nmos | DeviceKind::Pmos => self.width_um * self.length_um,
            DeviceKind::Capacitor => self.cap_f / PelgromModel::DEFAULT_CAP_DENSITY,
        }
    }

    /// Number of mismatch components this device contributes.
    pub fn mismatch_components(&self) -> usize {
        match self.kind {
            DeviceKind::Nmos | DeviceKind::Pmos => 2, // ΔV_th, Δβ/β
            DeviceKind::Capacitor => 1,               // ΔC/C
        }
    }
}

/// Pelgrom matching coefficients and global process-variation sigmas,
/// calibrated to published 28 nm bulk-CMOS magnitudes.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PelgromModel {
    /// Threshold matching coefficient `A_VT` in V·µm
    /// (`σ(ΔV_th) = A_VT / √(W·L)`).
    pub a_vt: f64,
    /// Current-factor matching coefficient `A_β` in µm
    /// (`σ(Δβ/β) = A_β / √(W·L)`).
    pub a_beta: f64,
    /// Capacitor matching coefficient in µm (`σ(ΔC/C) = A_C / √area`).
    pub a_cap: f64,
    /// Die-to-die σ of the global V_th shift, volts.
    pub global_vth_sigma: f64,
    /// Die-to-die σ of the global relative current-factor shift.
    pub global_beta_sigma: f64,
    /// Die-to-die σ of the global relative capacitance shift.
    pub global_cap_sigma: f64,
}

impl PelgromModel {
    /// MIM capacitor density used to convert capacitance to area, F/µm².
    pub const DEFAULT_CAP_DENSITY: f64 = 2e-15;

    /// 28 nm-calibrated defaults: `A_VT = 3.5 mV·µm`, `A_β = 1 %·µm`,
    /// `A_C = 0.5 %·µm`, global σ(V_th) = 12 mV, σ(β) = 4 %, σ(C) = 2 %.
    pub fn cmos28() -> Self {
        Self {
            a_vt: 3.5e-3,
            a_beta: 0.01,
            a_cap: 0.005,
            global_vth_sigma: 0.012,
            global_beta_sigma: 0.04,
            global_cap_sigma: 0.02,
        }
    }

    /// Local `σ(ΔV_th)` for a transistor of the given geometry, volts.
    ///
    /// # Panics
    ///
    /// Panics in debug builds for non-positive geometry.
    pub fn local_vth_sigma(&self, width_um: f64, length_um: f64) -> f64 {
        debug_assert!(width_um > 0.0 && length_um > 0.0, "non-positive device geometry");
        self.a_vt / (width_um * length_um).sqrt()
    }

    /// Local `σ(Δβ/β)` for a transistor of the given geometry.
    pub fn local_beta_sigma(&self, width_um: f64, length_um: f64) -> f64 {
        debug_assert!(width_um > 0.0 && length_um > 0.0, "non-positive device geometry");
        self.a_beta / (width_um * length_um).sqrt()
    }

    /// Local `σ(ΔC/C)` for a capacitor of the given value.
    pub fn local_cap_sigma(&self, cap_f: f64) -> f64 {
        debug_assert!(cap_f > 0.0, "non-positive capacitance");
        let area = cap_f / Self::DEFAULT_CAP_DENSITY;
        self.a_cap / area.sqrt()
    }
}

impl Default for PelgromModel {
    fn default() -> Self {
        Self::cmos28()
    }
}

/// Index of a global process parameter within the broadcast global draw.
///
/// Global (die-to-die) variation is physically *shared*: one die-level
/// V_th shift applies to every NMOS device on the die. The paper's Eq. 3
/// writes `Σ_Global` as diagonal over the device-parameter space; we realize
/// the physical sharing by drawing one value per process parameter and
/// broadcasting it into the device-parameter vector (see `DESIGN.md` §2).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum GlobalParameter {
    /// Shared NMOS threshold shift.
    VthN,
    /// Shared PMOS threshold shift.
    VthP,
    /// Shared NMOS current-factor shift.
    BetaN,
    /// Shared PMOS current-factor shift.
    BetaP,
    /// Shared capacitance density shift.
    Cap,
}

impl GlobalParameter {
    /// All global parameters, in broadcast order.
    pub const ALL: [GlobalParameter; 5] = [
        GlobalParameter::VthN,
        GlobalParameter::VthP,
        GlobalParameter::BetaN,
        GlobalParameter::BetaP,
        GlobalParameter::Cap,
    ];
}

/// The mismatch domain of one circuit design: the device list plus the
/// Pelgrom model, from which `Σ_Global` and `Σ_Local(x)` follow.
///
/// # Example
///
/// ```
/// use glova_variation::mismatch::{DeviceSpec, MismatchDomain, PelgromModel};
///
/// let domain = MismatchDomain::new(
///     vec![DeviceSpec::nmos("M1", 1.0, 0.03), DeviceSpec::capacitor("C1", 1e-13)],
///     PelgromModel::cmos28(),
/// );
/// assert_eq!(domain.dim(), 3); // ΔVth + Δβ for M1, ΔC for C1
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct MismatchDomain {
    devices: Vec<DeviceSpec>,
    model: PelgromModel,
    dim: usize,
}

/// Layout entry: which device/parameter a mismatch component belongs to.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ComponentKind {
    /// Threshold-voltage shift of device `device_index`, volts.
    Vth {
        /// Index into [`MismatchDomain::devices`].
        device_index: usize,
    },
    /// Relative current-factor error of device `device_index`.
    Beta {
        /// Index into [`MismatchDomain::devices`].
        device_index: usize,
    },
    /// Relative capacitance error of device `device_index`.
    Cap {
        /// Index into [`MismatchDomain::devices`].
        device_index: usize,
    },
}

impl MismatchDomain {
    /// Builds a domain from the device list.
    pub fn new(devices: Vec<DeviceSpec>, model: PelgromModel) -> Self {
        let dim = devices.iter().map(DeviceSpec::mismatch_components).sum();
        Self { devices, model, dim }
    }

    /// Dimension `r` of the mismatch vector.
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// The devices in this domain.
    pub fn devices(&self) -> &[DeviceSpec] {
        &self.devices
    }

    /// The Pelgrom model in use.
    pub fn model(&self) -> &PelgromModel {
        &self.model
    }

    /// Layout of the mismatch vector: one entry per component, in order.
    pub fn layout(&self) -> Vec<ComponentKind> {
        let mut layout = Vec::with_capacity(self.dim);
        for (di, dev) in self.devices.iter().enumerate() {
            match dev.kind {
                DeviceKind::Nmos | DeviceKind::Pmos => {
                    layout.push(ComponentKind::Vth { device_index: di });
                    layout.push(ComponentKind::Beta { device_index: di });
                }
                DeviceKind::Capacitor => layout.push(ComponentKind::Cap { device_index: di }),
            }
        }
        layout
    }

    /// Diagonal of `Σ_Local(x)` as standard deviations, one per component.
    pub fn local_sigmas(&self) -> Vec<f64> {
        let mut sigmas = Vec::with_capacity(self.dim);
        for dev in &self.devices {
            match dev.kind {
                DeviceKind::Nmos | DeviceKind::Pmos => {
                    sigmas.push(self.model.local_vth_sigma(dev.width_um, dev.length_um));
                    sigmas.push(self.model.local_beta_sigma(dev.width_um, dev.length_um));
                }
                DeviceKind::Capacitor => sigmas.push(self.model.local_cap_sigma(dev.cap_f)),
            }
        }
        sigmas
    }

    /// Standard deviation of each *global* process parameter, in
    /// [`GlobalParameter::ALL`] order.
    pub fn global_parameter_sigmas(&self) -> [f64; 5] {
        [
            self.model.global_vth_sigma,
            self.model.global_vth_sigma,
            self.model.global_beta_sigma,
            self.model.global_beta_sigma,
            self.model.global_cap_sigma,
        ]
    }

    /// Broadcasts a global parameter draw (5 values in
    /// [`GlobalParameter::ALL`] order) into the `r`-dimensional
    /// device-component space.
    ///
    /// # Panics
    ///
    /// Panics if `draw.len() != 5`.
    pub fn broadcast_global(&self, draw: &[f64]) -> Vec<f64> {
        assert_eq!(draw.len(), 5, "global draw must have 5 parameters");
        let mut out = Vec::with_capacity(self.dim);
        for dev in &self.devices {
            match dev.kind {
                DeviceKind::Nmos => {
                    out.push(draw[0]); // VthN
                    out.push(draw[2]); // BetaN
                }
                DeviceKind::Pmos => {
                    out.push(draw[1]); // VthP
                    out.push(draw[3]); // BetaP
                }
                DeviceKind::Capacitor => out.push(draw[4]), // Cap
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn toy_domain() -> MismatchDomain {
        MismatchDomain::new(
            vec![
                DeviceSpec::nmos("MN", 2.0, 0.05),
                DeviceSpec::pmos("MP", 4.0, 0.05),
                DeviceSpec::capacitor("CL", 2e-13),
            ],
            PelgromModel::cmos28(),
        )
    }

    #[test]
    fn dimension_counts_components() {
        assert_eq!(toy_domain().dim(), 5);
        assert_eq!(toy_domain().layout().len(), 5);
    }

    #[test]
    fn pelgrom_scaling_quarters_with_4x_area() {
        let m = PelgromModel::cmos28();
        let small = m.local_vth_sigma(1.0, 0.03);
        let big = m.local_vth_sigma(4.0, 0.03);
        assert!((small / big - 2.0).abs() < 1e-12);
    }

    #[test]
    fn local_sigmas_match_layout() {
        let d = toy_domain();
        let sigmas = d.local_sigmas();
        let m = d.model();
        assert!((sigmas[0] - m.local_vth_sigma(2.0, 0.05)).abs() < 1e-15);
        assert!((sigmas[1] - m.local_beta_sigma(2.0, 0.05)).abs() < 1e-15);
        assert!((sigmas[2] - m.local_vth_sigma(4.0, 0.05)).abs() < 1e-15);
        assert!((sigmas[4] - m.local_cap_sigma(2e-13)).abs() < 1e-15);
    }

    #[test]
    fn broadcast_routes_by_kind() {
        let d = toy_domain();
        let h = d.broadcast_global(&[1.0, 2.0, 3.0, 4.0, 5.0]);
        assert_eq!(h, vec![1.0, 3.0, 2.0, 4.0, 5.0]);
    }

    #[test]
    #[should_panic(expected = "5 parameters")]
    fn broadcast_wrong_width_panics() {
        toy_domain().broadcast_global(&[1.0]);
    }

    #[test]
    fn cap_area_from_density() {
        let c = DeviceSpec::capacitor("C", 2e-13);
        assert!((c.area_um2() - 100.0).abs() < 1e-9);
    }

    #[test]
    fn sigma_magnitudes_are_physical() {
        // A minimum-size 28 nm device (0.28 µm × 0.03 µm) should show tens of
        // millivolts of local V_th sigma; a large device should show a few mV.
        let m = PelgromModel::cmos28();
        let tiny = m.local_vth_sigma(0.28, 0.03);
        let large = m.local_vth_sigma(10.0, 0.3);
        assert!(tiny > 0.02 && tiny < 0.08, "tiny-device sigma {tiny}");
        assert!(large < 0.005, "large-device sigma {large}");
    }

    proptest! {
        #[test]
        fn prop_sigmas_positive_and_monotone_in_area(
            w in 0.28f64..32.8,
            l in 0.03f64..0.33,
            scale in 1.1f64..4.0,
        ) {
            let m = PelgromModel::cmos28();
            let s1 = m.local_vth_sigma(w, l);
            let s2 = m.local_vth_sigma(w * scale, l);
            prop_assert!(s1 > 0.0);
            prop_assert!(s2 < s1, "sigma must shrink with area");
        }

        #[test]
        fn prop_layout_and_sigmas_agree(n_nmos in 0usize..5, n_caps in 0usize..4) {
            let mut devices = Vec::new();
            for i in 0..n_nmos {
                devices.push(DeviceSpec::nmos(format!("M{i}"), 1.0, 0.1));
            }
            for i in 0..n_caps {
                devices.push(DeviceSpec::capacitor(format!("C{i}"), 1e-13));
            }
            let d = MismatchDomain::new(devices, PelgromModel::cmos28());
            prop_assert_eq!(d.dim(), 2 * n_nmos + n_caps);
            prop_assert_eq!(d.local_sigmas().len(), d.dim());
            prop_assert_eq!(d.layout().len(), d.dim());
        }
    }
}
