//! Property tests for the sweep fast paths:
//!
//! - **value-only retarget** ([`OpSolver::retarget`] /
//!   `retarget_values`) must be bitwise identical to the template-rebuild
//!   path across random device-parameter perturbations — the fast path
//!   is an optimization, never a semantic change;
//! - **partial refactorization** ([`SparseLu::refactor_partial`]) must be
//!   bitwise identical to a full [`SparseLu::refactor`] for arbitrary
//!   dirty-value subsets on the inverter-chain and RC-ladder patterns,
//!   and both must agree with the dense LU oracle to ≤ 1e-9.

use glova_linalg::sparse::SparseLu;
use glova_spice::dc::OpSolver;
use glova_spice::mna::{
    NewtonOptions, RetargetOutcome, SolverBackend, SparseAssemblyTemplate, StampContext,
};
use glova_spice::model::MosModel;
use glova_spice::netlist::{inverter_chain_with_load, rc_ladder, Netlist, GROUND};
use proptest::prelude::*;

/// A mixed DC netlist exercising every stamp kind the DC walk emits
/// (resistors, V/I sources, both MOSFET polarities), parameterized so
/// every device value — including the model cards — moves with `p` while
/// the topology stays fixed.
fn mixed_netlist(p: &[f64]) -> Netlist {
    let scale = |i: usize| 1.0 + 0.4 * p[i % p.len()];
    let mut nl = Netlist::new();
    let vdd = nl.node("vdd");
    let vin = nl.node("vin");
    let out = nl.node("out");
    let tail = nl.node("tail");
    nl.vsource("VDD", vdd, GROUND, 0.9 * scale(0).clamp(0.8, 1.2));
    nl.vsource("VIN", vin, GROUND, 0.42 * scale(1));
    nl.resistor("RL", vdd, out, 10e3 * scale(2));
    nl.isource("IB", GROUND, tail, 50e-6 * scale(3));
    nl.resistor("RT", tail, GROUND, 40e3 * scale(4));
    let pmos = MosModel::pmos_28nm().with_mismatch(0.01 * p[5 % p.len()], 0.05 * p[6 % p.len()]);
    let nmos = MosModel::nmos_28nm().with_mismatch(0.01 * p[7 % p.len()], 0.05 * p[0]);
    nl.mosfet("MP", out, vin, vdd, pmos, 2.0 * scale(1), 0.05);
    nl.mosfet("MN", out, vin, tail, nmos, 1.0 * scale(2), 0.05);
    nl
}

proptest! {
    // `retarget` (value-only fast path) == `retarget_rebuild` bitwise:
    // same outcome classification, identical assembled systems,
    // identical operating points, on both backends.
    #[test]
    fn prop_value_retarget_matches_rebuild_bitwise(
        base in proptest::collection::vec(-1.0f64..1.0, 8),
        target in proptest::collection::vec(-1.0f64..1.0, 8),
    ) {
        let base_nl = mixed_netlist(&base);
        let target_nl = mixed_netlist(&target);
        prop_assert_eq!(base_nl.topology_fingerprint(), target_nl.topology_fingerprint());
        for backend in [SolverBackend::Dense, SolverBackend::Sparse] {
            let options = NewtonOptions::default().with_backend(backend);
            let mut fast = OpSolver::primed(&base_nl, options).unwrap();
            let mut slow = OpSolver::primed(&base_nl, options).unwrap();
            prop_assert_eq!(fast.retarget(&target_nl), RetargetOutcome::Values);
            prop_assert_eq!(slow.retarget_rebuild(&target_nl), RetargetOutcome::Pattern);
            let x_fast = fast.solve().unwrap();
            let x_slow = slow.solve().unwrap();
            for (a, b) in x_fast.raw().iter().zip(x_slow.raw()) {
                prop_assert_eq!(a.to_bits(), b.to_bits(),
                    "{} backend: value-retarget {} vs rebuild {}", backend, a, b);
            }
            prop_assert_eq!(fast.noncanonical_events(), 0);
        }
    }

    // The patched sparse template assembles systems bitwise identical
    // to a freshly built template of the target netlist, at several
    // estimates and gmin values.
    #[test]
    fn prop_patched_template_assembles_identically(
        base in proptest::collection::vec(-1.0f64..1.0, 8),
        target in proptest::collection::vec(-1.0f64..1.0, 8),
        estimate in -0.2f64..1.0,
    ) {
        let ctx = StampContext { time: 0.0, step: None, gmin: 1e-9 };
        let mut patched = SparseAssemblyTemplate::new(&mixed_netlist(&base), &ctx);
        let target_nl = mixed_netlist(&target);
        prop_assert!(patched.retarget_values(&target_nl, &ctx));
        let fresh = SparseAssemblyTemplate::new(&target_nl, &ctx);
        let n = fresh.dim();
        let mut a_patched = patched.new_system();
        let mut a_fresh = fresh.new_system();
        let (mut rhs_patched, mut rhs_fresh) = (vec![0.0; n], vec![0.0; n]);
        for gmin in [1e-3, 1e-9] {
            let x = vec![estimate; n];
            patched.assemble_into(&mut a_patched, &mut rhs_patched, &x, gmin);
            fresh.assemble_into(&mut a_fresh, &mut rhs_fresh, &x, gmin);
            for (p, f) in a_patched.values().iter().zip(a_fresh.values()) {
                prop_assert_eq!(p.to_bits(), f.to_bits(), "matrix value {} vs {}", p, f);
            }
            for (p, f) in rhs_patched.iter().zip(&rhs_fresh) {
                prop_assert_eq!(p.to_bits(), f.to_bits(), "rhs value {} vs {}", p, f);
            }
        }
    }

    // `refactor_partial` == `refactor` bitwise for random dirty-value
    // subsets on the inverter-chain pattern, and both ≤ 1e-9 from the
    // dense oracle.
    #[test]
    fn prop_partial_refactor_matches_full_on_inverter_chain(
        mask in proptest::collection::vec(0.0f64..1.0, 12),
        bumps in proptest::collection::vec(0.6f64..1.6, 12),
    ) {
        let ctx = StampContext { time: 0.0, step: None, gmin: 1e-3 };
        let template = SparseAssemblyTemplate::new(&inverter_chain_with_load(8, Some(10e3)), &ctx);
        let n = template.dim();
        let mut a = template.new_system();
        let mut rhs = vec![0.0; n];
        template.assemble_into(&mut a, &mut rhs, &vec![0.0; n], 1e-3);
        prop_check_partial(a, &mask, &bumps)?;
    }

    // The same property on the RC-ladder (tridiagonal-plus-border)
    // pattern, where the reachable sets are genuinely narrow.
    #[test]
    fn prop_partial_refactor_matches_full_on_rc_ladder(
        mask in proptest::collection::vec(0.0f64..1.0, 12),
        bumps in proptest::collection::vec(0.6f64..1.6, 12),
    ) {
        let ctx = StampContext { time: 0.0, step: None, gmin: 1e-6 };
        let template = SparseAssemblyTemplate::new(&rc_ladder(16, 1e3, 1e-12), &ctx);
        let n = template.dim();
        let mut a = template.new_system();
        let mut rhs = vec![0.0; n];
        template.assemble_into(&mut a, &mut rhs, &vec![0.0; n], 1e-6);
        prop_check_partial(a, &mask, &bumps)?;
    }
}

/// Shared body: factor `a`, perturb a masked subset of its values, then
/// compare full refactor vs planned partial refactor bitwise and both
/// against the dense LU oracle.
fn prop_check_partial(
    a: glova_linalg::sparse::CsrMatrix<f64>,
    mask: &[f64],
    bumps: &[f64],
) -> Result<(), TestCaseError> {
    let full0 = SparseLu::factor(&a).unwrap();
    let mut full = full0.clone();
    let mut partial = full0.clone();
    // Random dirty subset: indices k where mask[k % mask.len()] holds a
    // marker — always at least one (index 0) so the plan is never empty.
    let mut dirty: Vec<usize> =
        (0..a.nnz()).filter(|&k| mask[k % mask.len()] > 0.5 && k % 3 == 0).collect();
    dirty.push(0);
    let plan = partial.plan_partial(&dirty);
    prop_assert!(plan.rows_eliminated() <= plan.dim());
    // Perturb exactly the dirty values (the refactor_partial contract).
    let mut b = a.clone();
    for &k in &dirty {
        b.values_mut()[k] *= bumps[k % bumps.len()];
    }
    // A perturbation could in principle collapse a frozen pivot; both
    // paths must then agree on the failure, and the property trivially
    // holds — only compare solves when the full path succeeds.
    let full_ok = full.refactor(&b).is_ok();
    let partial_result = partial.refactor_partial(&b, &plan);
    prop_assert_eq!(full_ok, partial_result.is_ok(), "partial/full disagree on viability");
    if !full_ok {
        return Ok(());
    }
    let rhs: Vec<f64> = (0..b.rows()).map(|i| (i as f64 * 0.31).cos()).collect();
    let x_full = full.solve(&rhs);
    let x_partial = partial.solve(&rhs);
    for (f, p) in x_full.iter().zip(&x_partial) {
        prop_assert_eq!(f.to_bits(), p.to_bits(), "partial {} vs full {}", p, f);
    }
    // Dense oracle.
    let x_dense = b.to_dense().lu().unwrap().solve(&rhs);
    for (s, d) in x_partial.iter().zip(&x_dense) {
        prop_assert!((s - d).abs() < 1e-9 * (1.0 + d.abs()), "sparse {} vs dense {}", s, d);
    }
    // All-dirty plan degenerates to a bitwise full refactor.
    let mut all_dirty = full0.clone();
    let all_plan = all_dirty.plan_partial(&(0..b.nnz()).collect::<Vec<_>>());
    prop_assert_eq!(all_plan.rows_eliminated(), all_plan.dim());
    all_dirty.refactor_partial(&b, &all_plan).unwrap();
    let x_all = all_dirty.solve(&rhs);
    for (f, p) in x_full.iter().zip(&x_all) {
        prop_assert_eq!(f.to_bits(), p.to_bits(), "all-dirty partial {} vs full {}", p, f);
    }
    Ok(())
}

/// The transient-context patch path: capacitor companion stamps and
/// waveform updates flow through `retarget_values` too.
#[test]
fn transient_template_value_retarget_matches_fresh() {
    let build = |r: f64, c: f64, v: f64| {
        let mut nl = Netlist::new();
        let vin = nl.node("in");
        let out = nl.node("out");
        nl.vsource("V1", vin, GROUND, v);
        nl.resistor("R1", vin, out, r);
        nl.capacitor("C1", out, GROUND, c);
        nl
    };
    let prev = vec![0.1, 0.2, -0.3];
    let ctx = StampContext { time: 2e-9, step: Some((1e-9, &prev)), gmin: 1e-12 };
    let mut patched = SparseAssemblyTemplate::new(&build(1e3, 1e-9, 1.0), &ctx);
    let target = build(2.2e3, 3.3e-10, 0.7);
    assert!(patched.retarget_values(&target, &ctx));
    let fresh = SparseAssemblyTemplate::new(&target, &ctx);
    let n = fresh.dim();
    let (mut ap, mut af) = (patched.new_system(), fresh.new_system());
    let (mut rp, mut rf) = (vec![0.0; n], vec![0.0; n]);
    let x = vec![0.05; n];
    patched.assemble_into(&mut ap, &mut rp, &x, 1e-12);
    fresh.assemble_into(&mut af, &mut rf, &x, 1e-12);
    assert_eq!(ap.values(), af.values());
    assert_eq!(rp, rf);
}

/// A DC-built template must refuse a transient retarget context (the
/// matrix values bake the analysis kind in).
#[test]
#[should_panic(expected = "analysis kind")]
fn value_retarget_rejects_context_kind_change() {
    let nl = inverter_chain_with_load(4, Some(10e3));
    let dc = StampContext { time: 0.0, step: None, gmin: 1e-9 };
    let mut template = SparseAssemblyTemplate::new(&nl, &dc);
    let prev = vec![0.0; template.dim()];
    let transient = StampContext { time: 1e-9, step: Some((1e-9, &prev)), gmin: 1e-9 };
    template.retarget_values(&nl, &transient);
}
