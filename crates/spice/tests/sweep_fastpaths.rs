//! Property tests for the sweep fast paths:
//!
//! - **value-only retarget** ([`OpSolver::retarget`] /
//!   `retarget_values`) must be bitwise identical to the template-rebuild
//!   path across random device-parameter perturbations — the fast path
//!   is an optimization, never a semantic change;
//! - **partial refactorization** ([`SparseLu::refactor_partial`]) must be
//!   bitwise identical to a full [`SparseLu::refactor`] for arbitrary
//!   dirty-value subsets on the inverter-chain and RC-ladder patterns,
//!   and both must agree with the dense LU oracle to ≤ 1e-9;
//! - **AC value retargeting** ([`AcSolverPool::solve_point`]) must be
//!   bitwise identical to the per-point netlist re-walk
//!   ([`AcSolverPool::solve_point_rebuild`]) on both backends;
//! - the **blocked numeric kernel** must agree with the scalar kernel to
//!   ≤ 1e-12 on SPICE-assembled systems and repeat bitwise with itself;
//! - **per-device refactor plans** ([`PartialPlanMode::PerDevice`]) must
//!   solve bitwise identically to the monolithic schedule for random
//!   device dirty sets while eliminating no more rows;
//! - **warm-started corner sweeps** ([`OpSolver::solve_corner_sweep`])
//!   must reach the cold gmin-ladder operating points on the
//!   inverter-chain, OTA and sense-amp testcases.

use glova_linalg::sparse::SparseLu;
use glova_linalg::NumericKernel;
use glova_spice::ac::{log_sweep, AcSolverPool};
use glova_spice::dc::OpSolver;
use glova_spice::mna::{
    NewtonOptions, PartialPlanMode, RetargetOutcome, SolverBackend, SparseAssemblyTemplate,
    StampContext,
};
use glova_spice::model::MosModel;
use glova_spice::netlist::{
    inverter_chain_with_load, ota_two_stage, rc_ladder, sense_amp_array, sense_amp_array_with,
    Netlist, OtaParams, SenseAmpParams, GROUND,
};
use proptest::prelude::*;

/// A mixed DC netlist exercising every stamp kind the DC walk emits
/// (resistors, V/I sources, both MOSFET polarities), parameterized so
/// every device value — including the model cards — moves with `p` while
/// the topology stays fixed.
fn mixed_netlist(p: &[f64]) -> Netlist {
    let scale = |i: usize| 1.0 + 0.4 * p[i % p.len()];
    let mut nl = Netlist::new();
    let vdd = nl.node("vdd");
    let vin = nl.node("vin");
    let out = nl.node("out");
    let tail = nl.node("tail");
    nl.vsource("VDD", vdd, GROUND, 0.9 * scale(0).clamp(0.8, 1.2));
    nl.vsource("VIN", vin, GROUND, 0.42 * scale(1));
    nl.resistor("RL", vdd, out, 10e3 * scale(2));
    nl.isource("IB", GROUND, tail, 50e-6 * scale(3));
    nl.resistor("RT", tail, GROUND, 40e3 * scale(4));
    let pmos = MosModel::pmos_28nm().with_mismatch(0.01 * p[5 % p.len()], 0.05 * p[6 % p.len()]);
    let nmos = MosModel::nmos_28nm().with_mismatch(0.01 * p[7 % p.len()], 0.05 * p[0]);
    nl.mosfet("MP", out, vin, vdd, pmos, 2.0 * scale(1), 0.05);
    nl.mosfet("MN", out, vin, tail, nmos, 1.0 * scale(2), 0.05);
    nl
}

proptest! {
    // `retarget` (value-only fast path) == `retarget_rebuild` bitwise:
    // same outcome classification, identical assembled systems,
    // identical operating points, on both backends.
    #[test]
    fn prop_value_retarget_matches_rebuild_bitwise(
        base in proptest::collection::vec(-1.0f64..1.0, 8),
        target in proptest::collection::vec(-1.0f64..1.0, 8),
    ) {
        let base_nl = mixed_netlist(&base);
        let target_nl = mixed_netlist(&target);
        prop_assert_eq!(base_nl.topology_fingerprint(), target_nl.topology_fingerprint());
        for backend in [SolverBackend::Dense, SolverBackend::Sparse] {
            let options = NewtonOptions::default().with_backend(backend);
            let mut fast = OpSolver::primed(&base_nl, options).unwrap();
            let mut slow = OpSolver::primed(&base_nl, options).unwrap();
            prop_assert_eq!(fast.retarget(&target_nl), RetargetOutcome::Values);
            prop_assert_eq!(slow.retarget_rebuild(&target_nl), RetargetOutcome::Pattern);
            let x_fast = fast.solve().unwrap();
            let x_slow = slow.solve().unwrap();
            for (a, b) in x_fast.raw().iter().zip(x_slow.raw()) {
                prop_assert_eq!(a.to_bits(), b.to_bits(),
                    "{} backend: value-retarget {} vs rebuild {}", backend, a, b);
            }
            prop_assert_eq!(fast.noncanonical_events(), 0);
        }
    }

    // The patched sparse template assembles systems bitwise identical
    // to a freshly built template of the target netlist, at several
    // estimates and gmin values.
    #[test]
    fn prop_patched_template_assembles_identically(
        base in proptest::collection::vec(-1.0f64..1.0, 8),
        target in proptest::collection::vec(-1.0f64..1.0, 8),
        estimate in -0.2f64..1.0,
    ) {
        let ctx = StampContext { time: 0.0, step: None, gmin: 1e-9 };
        let mut patched = SparseAssemblyTemplate::new(&mixed_netlist(&base), &ctx);
        let target_nl = mixed_netlist(&target);
        prop_assert!(patched.retarget_values(&target_nl, &ctx));
        let fresh = SparseAssemblyTemplate::new(&target_nl, &ctx);
        let n = fresh.dim();
        let mut a_patched = patched.new_system();
        let mut a_fresh = fresh.new_system();
        let (mut rhs_patched, mut rhs_fresh) = (vec![0.0; n], vec![0.0; n]);
        for gmin in [1e-3, 1e-9] {
            let x = vec![estimate; n];
            patched.assemble_into(&mut a_patched, &mut rhs_patched, &x, gmin);
            fresh.assemble_into(&mut a_fresh, &mut rhs_fresh, &x, gmin);
            for (p, f) in a_patched.values().iter().zip(a_fresh.values()) {
                prop_assert_eq!(p.to_bits(), f.to_bits(), "matrix value {} vs {}", p, f);
            }
            for (p, f) in rhs_patched.iter().zip(&rhs_fresh) {
                prop_assert_eq!(p.to_bits(), f.to_bits(), "rhs value {} vs {}", p, f);
            }
        }
    }

    // `refactor_partial` == `refactor` bitwise for random dirty-value
    // subsets on the inverter-chain pattern, and both ≤ 1e-9 from the
    // dense oracle.
    #[test]
    fn prop_partial_refactor_matches_full_on_inverter_chain(
        mask in proptest::collection::vec(0.0f64..1.0, 12),
        bumps in proptest::collection::vec(0.6f64..1.6, 12),
    ) {
        let ctx = StampContext { time: 0.0, step: None, gmin: 1e-3 };
        let template = SparseAssemblyTemplate::new(&inverter_chain_with_load(8, Some(10e3)), &ctx);
        let n = template.dim();
        let mut a = template.new_system();
        let mut rhs = vec![0.0; n];
        template.assemble_into(&mut a, &mut rhs, &vec![0.0; n], 1e-3);
        prop_check_partial(a, &mask, &bumps)?;
    }

    // The same property on the RC-ladder (tridiagonal-plus-border)
    // pattern, where the reachable sets are genuinely narrow.
    #[test]
    fn prop_partial_refactor_matches_full_on_rc_ladder(
        mask in proptest::collection::vec(0.0f64..1.0, 12),
        bumps in proptest::collection::vec(0.6f64..1.6, 12),
    ) {
        let ctx = StampContext { time: 0.0, step: None, gmin: 1e-6 };
        let template = SparseAssemblyTemplate::new(&rc_ladder(16, 1e3, 1e-12), &ctx);
        let n = template.dim();
        let mut a = template.new_system();
        let mut rhs = vec![0.0; n];
        template.assemble_into(&mut a, &mut rhs, &vec![0.0; n], 1e-6);
        prop_check_partial(a, &mask, &bumps)?;
    }

    // AC event-template retargeting == per-point netlist re-walk,
    // bitwise, across random device parameters and both backends. The
    // mixed netlist covers every AC stamp kind (resistor conductances,
    // source branch rows, MOSFET gm/gds and gate caps).
    #[test]
    fn prop_ac_retarget_matches_rebuild_bitwise(
        p in proptest::collection::vec(-1.0f64..1.0, 8),
    ) {
        let nl = mixed_netlist(&p);
        let freqs = log_sweep(1e3, 1e9, 2);
        for backend in [SolverBackend::Sparse, SolverBackend::Dense] {
            let pool = AcSolverPool::new(&nl, "VIN", &freqs, backend).unwrap();
            for &f in &freqs {
                let fast = pool.solve_point(f).unwrap();
                let slow = pool.solve_point_rebuild(f).unwrap();
                prop_assert_eq!(fast.len(), slow.len());
                for (a, b) in fast.iter().zip(&slow) {
                    prop_assert_eq!(a.re.to_bits(), b.re.to_bits(),
                        "{} backend @ {} Hz: retarget {} vs rebuild {}", backend, f, a.re, b.re);
                    prop_assert_eq!(a.im.to_bits(), b.im.to_bits(),
                        "{} backend @ {} Hz: retarget {} vs rebuild {}", backend, f, a.im, b.im);
                }
            }
        }
    }

    // Blocked numeric kernel vs scalar on the SPICE-assembled sense-amp
    // system: solutions agree to ≤ 1e-12, and the blocked kernel repeats
    // bitwise on a second refactor of the same values.
    #[test]
    fn prop_blocked_kernel_matches_scalar_on_senseamp(
        bumps in proptest::collection::vec(0.7f64..1.4, 10),
        estimate in -0.2f64..0.9,
    ) {
        let ctx = StampContext { time: 0.0, step: None, gmin: 1e-9 };
        let template = SparseAssemblyTemplate::new(&sense_amp_array(4, 4), &ctx);
        let n = template.dim();
        let mut a = template.new_system();
        let mut rhs = vec![0.0; n];
        template.assemble_into(&mut a, &mut rhs, &vec![estimate; n], 1e-9);
        let mut scalar = SparseLu::factor(&a).unwrap();
        let mut blocked = SparseLu::factor(&a).unwrap().with_numeric_kernel(NumericKernel::Blocked);
        // Perturb every value (a full Newton re-assembly) and refresh
        // both kernels over the frozen pivot order.
        let mut b = a.clone();
        for (k, v) in b.values_mut().iter_mut().enumerate() {
            *v *= bumps[k % bumps.len()];
        }
        let scalar_ok = scalar.refactor(&b).is_ok();
        prop_assert_eq!(scalar_ok, blocked.refactor(&b).is_ok(),
            "kernels disagree on pivot viability");
        if !scalar_ok {
            return Ok(());
        }
        let x_s = scalar.solve(&rhs);
        let x_b = blocked.solve(&rhs);
        for (s, bl) in x_s.iter().zip(&x_b) {
            prop_assert!((s - bl).abs() <= 1e-12 * (1.0 + s.abs()),
                "blocked {} vs scalar {}", bl, s);
        }
        // Repeat-bitwise: the compiled schedule is deterministic.
        blocked.refactor(&b).unwrap();
        let x_b2 = blocked.solve(&rhs);
        for (one, two) in x_b.iter().zip(&x_b2) {
            prop_assert_eq!(one.to_bits(), two.to_bits(), "blocked repeat {} vs {}", two, one);
        }
    }

    // Per-device refactor plans == monolithic schedule, bitwise, across
    // random retarget sequences where only a random subset of device
    // parameters moves per step — the exact-diff schedule may skip or
    // shrink eliminations but never change a bit of the solution.
    #[test]
    fn prop_device_plan_matches_monolithic_bitwise(
        base in proptest::collection::vec(-1.0f64..1.0, 8),
        steps in proptest::collection::vec(
            (proptest::collection::vec(-1.0f64..1.0, 8), 1u64..256), 3),
    ) {
        let base_nl = mixed_netlist(&base);
        let options = NewtonOptions::default().with_backend(SolverBackend::Sparse);
        let mut dev = OpSolver::primed(&base_nl, options).unwrap();
        let mut mono = OpSolver::primed(&base_nl, options).unwrap();
        mono.set_partial_plan_mode(PartialPlanMode::Monolithic);
        prop_assert_eq!(dev.refactor_stats().device, 0);
        let mut cur = base.clone();
        let mut nls = vec![base_nl];
        for (delta, mask) in &steps {
            // The mask picks which parameters (device dirty set) move.
            for (i, d) in delta.iter().enumerate() {
                if *mask & (1u64 << (i % 8)) != 0 {
                    cur[i] = *d;
                }
            }
            nls.push(mixed_netlist(&cur));
        }
        for nl in &nls {
            prop_assert!(dev.retarget(nl) != RetargetOutcome::Topology);
            prop_assert!(mono.retarget(nl) != RetargetOutcome::Topology);
            let x_dev = dev.solve().unwrap();
            let x_mono = mono.solve().unwrap();
            for (d, m) in x_dev.raw().iter().zip(x_mono.raw()) {
                prop_assert_eq!(d.to_bits(), m.to_bits(),
                    "per-device {} vs monolithic {}", d, m);
            }
        }
        // The exact-diff schedule engaged, and never re-eliminated more
        // rows than the monolithic template dirty set.
        prop_assert!(dev.refactor_stats().device > 0);
        prop_assert!(
            dev.refactor_stats().rows_eliminated <= mono.refactor_stats().rows_eliminated,
            "device rows {} > monolithic rows {}",
            dev.refactor_stats().rows_eliminated, mono.refactor_stats().rows_eliminated);
    }
}

/// Shared body: factor `a`, perturb a masked subset of its values, then
/// compare full refactor vs planned partial refactor bitwise and both
/// against the dense LU oracle.
fn prop_check_partial(
    a: glova_linalg::sparse::CsrMatrix<f64>,
    mask: &[f64],
    bumps: &[f64],
) -> Result<(), TestCaseError> {
    let full0 = SparseLu::factor(&a).unwrap();
    let mut full = full0.clone();
    let mut partial = full0.clone();
    // Random dirty subset: indices k where mask[k % mask.len()] holds a
    // marker — always at least one (index 0) so the plan is never empty.
    let mut dirty: Vec<usize> =
        (0..a.nnz()).filter(|&k| mask[k % mask.len()] > 0.5 && k % 3 == 0).collect();
    dirty.push(0);
    let plan = partial.plan_partial(&dirty);
    prop_assert!(plan.rows_eliminated() <= plan.dim());
    // Perturb exactly the dirty values (the refactor_partial contract).
    let mut b = a.clone();
    for &k in &dirty {
        b.values_mut()[k] *= bumps[k % bumps.len()];
    }
    // A perturbation could in principle collapse a frozen pivot; both
    // paths must then agree on the failure, and the property trivially
    // holds — only compare solves when the full path succeeds.
    let full_ok = full.refactor(&b).is_ok();
    let partial_result = partial.refactor_partial(&b, &plan);
    prop_assert_eq!(full_ok, partial_result.is_ok(), "partial/full disagree on viability");
    if !full_ok {
        return Ok(());
    }
    let rhs: Vec<f64> = (0..b.rows()).map(|i| (i as f64 * 0.31).cos()).collect();
    let x_full = full.solve(&rhs);
    let x_partial = partial.solve(&rhs);
    for (f, p) in x_full.iter().zip(&x_partial) {
        prop_assert_eq!(f.to_bits(), p.to_bits(), "partial {} vs full {}", p, f);
    }
    // Dense oracle.
    let x_dense = b.to_dense().lu().unwrap().solve(&rhs);
    for (s, d) in x_partial.iter().zip(&x_dense) {
        prop_assert!((s - d).abs() < 1e-9 * (1.0 + d.abs()), "sparse {} vs dense {}", s, d);
    }
    // All-dirty plan degenerates to a bitwise full refactor.
    let mut all_dirty = full0.clone();
    let all_plan = all_dirty.plan_partial(&(0..b.nnz()).collect::<Vec<_>>());
    prop_assert_eq!(all_plan.rows_eliminated(), all_plan.dim());
    all_dirty.refactor_partial(&b, &all_plan).unwrap();
    let x_all = all_dirty.solve(&rhs);
    for (f, p) in x_full.iter().zip(&x_all) {
        prop_assert_eq!(f.to_bits(), p.to_bits(), "all-dirty partial {} vs full {}", p, f);
    }
    Ok(())
}

/// The transient-context patch path: capacitor companion stamps and
/// waveform updates flow through `retarget_values` too.
#[test]
fn transient_template_value_retarget_matches_fresh() {
    let build = |r: f64, c: f64, v: f64| {
        let mut nl = Netlist::new();
        let vin = nl.node("in");
        let out = nl.node("out");
        nl.vsource("V1", vin, GROUND, v);
        nl.resistor("R1", vin, out, r);
        nl.capacitor("C1", out, GROUND, c);
        nl
    };
    let prev = vec![0.1, 0.2, -0.3];
    let ctx = StampContext { time: 2e-9, step: Some((1e-9, &prev)), gmin: 1e-12 };
    let mut patched = SparseAssemblyTemplate::new(&build(1e3, 1e-9, 1.0), &ctx);
    let target = build(2.2e3, 3.3e-10, 0.7);
    assert!(patched.retarget_values(&target, &ctx));
    let fresh = SparseAssemblyTemplate::new(&target, &ctx);
    let n = fresh.dim();
    let (mut ap, mut af) = (patched.new_system(), fresh.new_system());
    let (mut rp, mut rf) = (vec![0.0; n], vec![0.0; n]);
    let x = vec![0.05; n];
    patched.assemble_into(&mut ap, &mut rp, &x, 1e-12);
    fresh.assemble_into(&mut af, &mut rf, &x, 1e-12);
    assert_eq!(ap.values(), af.values());
    assert_eq!(rp, rf);
}

/// A DC-built template must refuse a transient retarget context (the
/// matrix values bake the analysis kind in).
#[test]
#[should_panic(expected = "analysis kind")]
fn value_retarget_rejects_context_kind_change() {
    let nl = inverter_chain_with_load(4, Some(10e3));
    let dc = StampContext { time: 0.0, step: None, gmin: 1e-9 };
    let mut template = SparseAssemblyTemplate::new(&nl, &dc);
    let prev = vec![0.0; template.dim()];
    let transient = StampContext { time: 1e-9, step: Some((1e-9, &prev)), gmin: 1e-9 };
    template.retarget_values(&nl, &transient);
}

/// The sparse AC pool actually compiles an event template (the fast path
/// engages, it does not silently fall back to the re-walk), and the
/// template replay is bitwise-stable across repeated solves of the same
/// point.
#[test]
fn ac_pool_compiles_event_template_on_ota() {
    let nl = ota_two_stage(&OtaParams::nominal());
    let freqs = log_sweep(1e3, 1e9, 3);
    // The OTA has 10 unknowns — below the dense cutoff — so force the
    // sparse backend to exercise the pooled event-template path.
    let pool = AcSolverPool::new(&nl, "VINP", &freqs, SolverBackend::Sparse).unwrap();
    for &f in &freqs {
        assert!(pool.restamp_point(f) > 0, "no events replayed at {f} Hz");
        let once = pool.solve_point(f).unwrap();
        let twice = pool.solve_point(f).unwrap();
        let rebuild = pool.solve_point_rebuild(f).unwrap();
        for ((a, b), c) in once.iter().zip(&twice).zip(&rebuild) {
            assert_eq!(a.re.to_bits(), b.re.to_bits());
            assert_eq!(a.im.to_bits(), b.im.to_bits());
            assert_eq!(a.re.to_bits(), c.re.to_bits(), "retarget {} vs rebuild {}", a.re, c.re);
            assert_eq!(a.im.to_bits(), c.im.to_bits(), "retarget {} vs rebuild {}", a.im, c.im);
        }
    }
}

/// Warm-started corner sweeps reach the cold gmin-ladder operating
/// points on the inverter-chain, OTA and sense-amp testcases, using no
/// more Newton iterations than the cold per-corner solves.
#[test]
fn warm_corner_sweep_matches_cold_ladder() {
    let inv: Vec<Netlist> =
        (0..8).map(|k| inverter_chain_with_load(6, Some(8e3 + 1.5e3 * k as f64))).collect();
    let ota: Vec<Netlist> = (0..8)
        .map(|k| {
            let s = 1.0 + 0.04 * k as f64;
            ota_two_stage(&OtaParams {
                itail_ua: 20.0 * s,
                rl_kohm: 11.0 / s,
                w_out_um: 6.0 * (2.0 - s).max(0.5),
                ..OtaParams::nominal()
            })
        })
        .collect();
    let senseamp: Vec<Netlist> = (0..8)
        .map(|k| {
            let s = 1.0 + 0.05 * k as f64;
            sense_amp_array_with(
                3,
                3,
                &SenseAmpParams {
                    r_precharge: 2e3 * s,
                    r_wordline: 1e3 / s,
                    ..SenseAmpParams::default()
                },
            )
        })
        .collect();
    for (label, family) in [("inverter", inv), ("ota", ota), ("senseamp", senseamp)] {
        let options = NewtonOptions::default().with_backend(SolverBackend::Sparse);
        let mut warm = OpSolver::primed(&family[0], options).unwrap();
        let warm_ops = warm.solve_corner_sweep(&family).unwrap();
        let mut cold = OpSolver::primed(&family[0], options).unwrap();
        let cold_ops: Vec<_> = family
            .iter()
            .map(|nl| {
                cold.retarget(nl);
                cold.solve().unwrap()
            })
            .collect();
        assert_eq!(warm_ops.len(), cold_ops.len());
        for (corner, (w, c)) in warm_ops.iter().zip(&cold_ops).enumerate() {
            for (a, b) in w.raw().iter().zip(c.raw()) {
                assert!(
                    (a - b).abs() <= 1e-6 * (1.0 + b.abs()),
                    "{label} corner {corner}: warm {a} vs cold {b}"
                );
            }
        }
        assert!(
            warm.newton_iterations() < cold.newton_iterations(),
            "{label}: warm sweep took {} Newton iterations vs cold {}",
            warm.newton_iterations(),
            cold.newton_iterations()
        );
    }
}
