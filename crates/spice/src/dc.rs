//! DC operating-point analysis with `gmin` stepping.

use crate::mna::{
    newton_solve_with_state, newton_solve_with_state_warm, MnaState, MnaTemplate, NewtonOptions,
    PartialPlanMode, RefactorStats, RetargetOutcome, StampContext,
};
use crate::netlist::{Netlist, NodeId};
use crate::SpiceError;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// A solved DC operating point.
#[derive(Debug, Clone, PartialEq)]
pub struct OperatingPoint {
    solution: Vec<f64>,
    n_nodes: usize,
}

impl OperatingPoint {
    pub(crate) fn new(solution: Vec<f64>, n_nodes: usize) -> Self {
        Self { solution, n_nodes }
    }

    /// Voltage of `node` (0 V for ground).
    pub fn voltage(&self, node: NodeId) -> f64 {
        if node.is_ground() {
            0.0
        } else {
            self.solution[node.index() - 1]
        }
    }

    /// Branch current of voltage source `branch` (positive into the plus
    /// terminal).
    pub fn branch_current(&self, branch: usize) -> f64 {
        self.solution[self.n_nodes + branch]
    }

    /// The raw MNA solution vector.
    pub fn raw(&self) -> &[f64] {
        &self.solution
    }
}

/// The `gmin` continuation ladder: start heavily regularized, relax to the
/// final operating point.
const GMIN_LADDER: [f64; 5] = [1e-3, 1e-5, 1e-7, 1e-9, 1e-12];

/// A reusable operating-point solver for one netlist topology.
///
/// [`operating_point`] rebuilds the assembly template and solver state on
/// every call; sweep-style callers — corner/mismatch campaigns, parameter
/// sweeps, benchmark loops — solve the *same topology* thousands of
/// times, so this wrapper builds both once and keeps them across
/// [`solve`](Self::solve) calls. On the sparse backend that means the
/// Markowitz pivot order and fill pattern are computed exactly once for
/// the whole sweep; every subsequent factorization anywhere in the
/// ladder is numeric-only.
///
/// The solver is stateful only for performance: each `solve` runs the
/// full `gmin` ladder from the caller's initial guess, so results are
/// identical to [`operating_point_with_options`] on the same inputs.
///
/// For sweeps whose *device values* change per point (corner/mismatch
/// campaigns), [`retarget`](Self::retarget) swaps in a rebuilt template
/// of the same topology while keeping the factorization — and
/// [`OpSolverPool`] extends the pattern across worker threads by cloning
/// one [`primed`](Self::primed) solver per worker.
#[derive(Debug, Clone)]
pub struct OpSolver {
    state: MnaState,
    options: NewtonOptions,
    n_nodes: usize,
    unknowns: usize,
    sparse: bool,
    /// Times a retarget crossed a topology boundary (the state was
    /// rebuilt wholesale, abandoning the canonical symbolic state).
    topology_retargets: u64,
}

impl OpSolver {
    /// Builds the template (and resolves the backend) once for `netlist`.
    pub fn new(netlist: &Netlist, options: NewtonOptions) -> Self {
        let ctx = StampContext { time: 0.0, step: None, gmin: GMIN_LADDER[0] };
        let template = MnaTemplate::new(netlist, &ctx, options.backend);
        let sparse = template.is_sparse();
        let mut state = template.into_state();
        // Priming happens before any solve threads the options through,
        // so the symbolic analysis every clone shares must already know
        // the ordering choice.
        state.set_ordering(options.ordering);
        Self {
            state,
            options,
            n_nodes: netlist.node_count() - 1,
            unknowns: netlist.unknown_count(),
            sparse,
            topology_retargets: 0,
        }
    }

    /// [`new`](Self::new) plus an eager [`prime`](Self::prime): the
    /// returned solver already carries a factorization, so its clones
    /// share one symbolic analysis.
    ///
    /// # Errors
    ///
    /// [`SpiceError::SingularMatrix`] for structurally singular netlists.
    pub fn primed(netlist: &Netlist, options: NewtonOptions) -> Result<Self, SpiceError> {
        let mut solver = Self::new(netlist, options);
        solver.prime()?;
        Ok(solver)
    }

    /// Assembles and factors the system at the all-zeros estimate under
    /// the first `gmin` rung — exactly the system the first iteration of
    /// [`solve`](Self::solve) factors, so priming never changes results.
    /// After priming, the solver (and every clone of it) carries the
    /// symbolic factorization; see [`MnaState::prime`].
    ///
    /// # Errors
    ///
    /// [`SpiceError::SingularMatrix`] for structurally singular netlists.
    pub fn prime(&mut self) -> Result<(), SpiceError> {
        self.state.prime(GMIN_LADDER[0])
    }

    /// Re-points the solver at `netlist` — the sweep primitive. For the
    /// same topology (the overwhelmingly common case: a corner/mismatch
    /// point is the same circuit graph with different device values) the
    /// template's stamp values are rewritten **in place** — no netlist
    /// re-walk into a fresh template, no allocation, no pattern rebuild
    /// ([`RetargetOutcome::Values`]; bitwise identical to the rebuild
    /// path). Only a topology change pays the full rebuild
    /// ([`RetargetOutcome::Topology`] — reported explicitly so pools
    /// retire the now-non-canonical solver).
    pub fn retarget(&mut self, netlist: &Netlist) -> RetargetOutcome {
        let ctx = StampContext { time: 0.0, step: None, gmin: GMIN_LADDER[0] };
        if self.state.retarget_values(netlist, &ctx) {
            return RetargetOutcome::Values;
        }
        self.retarget_rebuild(netlist)
    }

    /// [`retarget`](Self::retarget) without the value-only fast path:
    /// always rebuilds the assembly template from a netlist walk. The
    /// reference semantics the fast path is parity-tested against (and
    /// the `--retarget rebuild` benchmark mode).
    pub fn retarget_rebuild(&mut self, netlist: &Netlist) -> RetargetOutcome {
        let ctx = StampContext { time: 0.0, step: None, gmin: GMIN_LADDER[0] };
        let template = MnaTemplate::new(netlist, &ctx, self.options.backend);
        self.sparse = template.is_sparse();
        self.n_nodes = netlist.node_count() - 1;
        self.unknowns = netlist.unknown_count();
        let outcome = self.state.retarget(template);
        if outcome == RetargetOutcome::Topology {
            self.topology_retargets += 1;
        }
        outcome
    }

    /// Whether the sparse backend was selected.
    pub fn is_sparse(&self) -> bool {
        self.sparse
    }

    /// The Newton options this solver runs with.
    pub fn options(&self) -> &NewtonOptions {
        &self.options
    }

    /// Times the sparse backend abandoned its frozen pivot order for a
    /// fresh analysis after a numeric pivot collapse (see
    /// [`MnaState::repivots`]).
    pub fn repivots(&self) -> u64 {
        self.state.repivots()
    }

    /// Times a retarget crossed a topology boundary (reported as
    /// [`RetargetOutcome::Topology`] and counted here for pools).
    pub fn topology_retargets(&self) -> u64 {
        self.topology_retargets
    }

    /// Total canonical-state-losing events: numeric re-pivots plus
    /// wholesale topology retargets. [`OpSolverPool`] retires any solver
    /// whose count moved during a checkout — the explicit-outcome
    /// replacement for inferring topology changes from the re-pivot
    /// counter.
    pub fn noncanonical_events(&self) -> u64 {
        self.state.repivots() + self.topology_retargets
    }

    /// Cumulative numeric-refresh accounting (partial vs full
    /// refactorizations; see [`RefactorStats`]).
    pub fn refactor_stats(&self) -> RefactorStats {
        self.state.refactor_stats()
    }

    /// Sets the dirty-set policy for sparse partial refactorizations
    /// (see [`PartialPlanMode`]) — exposed for the benchmark scenarios
    /// that compare the exact per-device closures against the monolithic
    /// template dirty set; results are bitwise identical either way.
    pub fn set_partial_plan_mode(&mut self, mode: PartialPlanMode) {
        self.state.set_partial_plan_mode(mode);
    }

    /// Computes the operating point from an all-zeros initial guess.
    ///
    /// # Errors
    ///
    /// See [`operating_point`].
    pub fn solve(&mut self) -> Result<OperatingPoint, SpiceError> {
        self.solve_from(&vec![0.0; self.unknowns])
    }

    /// Computes the operating point from a caller-provided guess.
    ///
    /// # Errors
    ///
    /// See [`operating_point`].
    pub fn solve_from(&mut self, initial: &[f64]) -> Result<OperatingPoint, SpiceError> {
        ladder_solve(&mut self.state, initial, &self.options, self.n_nodes)
    }

    /// Batched corner sweep over **source-only** variants of one linear
    /// netlist: a single factorization serves the entire batch, with all
    /// right-hand sides swept through the factor in one multi-RHS
    /// triangular pass ([`SparseLu::solve_into_batch`] /
    /// [`Lu::solve_into_batch`]). This is the DC analogue of reusing one
    /// LU across an AC frequency sweep — applicable exactly when the
    /// variants share the system matrix bitwise, i.e. a linear circuit
    /// (no MOSFETs) whose corners perturb only independent-source
    /// values.
    ///
    /// Each returned operating point is the direct solution of the final
    /// `gmin`-rung system `A·x = b_r` — for a linear circuit that is the
    /// same fixed point the Newton ladder of [`solve`](Self::solve)
    /// converges to (the ladder only matters for nonlinear
    /// continuation), and per side the result is bitwise identical to a
    /// repeated single-RHS solve against the same factor.
    ///
    /// [`SparseLu::solve_into_batch`]:
    /// glova_linalg::sparse::SparseLu::solve_into_batch
    /// [`Lu::solve_into_batch`]: glova_linalg::Lu::solve_into_batch
    ///
    /// # Errors
    ///
    /// [`SpiceError::InvalidNetlist`] if the circuit is nonlinear, a
    /// variant changes the topology, or a variant perturbs anything
    /// besides source values (detected by a bitwise matrix-value check);
    /// [`SpiceError::SingularMatrix`] if the shared matrix cannot be
    /// factored.
    pub fn solve_source_batch(
        &mut self,
        netlists: &[Netlist],
    ) -> Result<Vec<OperatingPoint>, SpiceError> {
        if netlists.is_empty() {
            return Ok(Vec::new());
        }
        if self.state.nonlinear_count() != 0 {
            return Err(SpiceError::InvalidNetlist {
                reason: "solve_source_batch requires a linear circuit (no MOSFETs): nonlinear \
                         corners change the matrix, so there is no shared factorization"
                    .into(),
            });
        }
        let n = self.unknowns;
        let gmin = *GMIN_LADDER.last().unwrap();
        let zeros = vec![0.0; n];
        let mut b = vec![0.0; n * netlists.len()];
        let mut matrix_hash = None;
        for (r, nl) in netlists.iter().enumerate() {
            if self.retarget(nl) == RetargetOutcome::Topology {
                return Err(SpiceError::InvalidNetlist {
                    reason: "solve_source_batch requires every variant to share one topology"
                        .into(),
                });
            }
            self.state.assemble(&zeros, gmin);
            let hash = self.state.matrix_value_hash();
            if *matrix_hash.get_or_insert(hash) != hash {
                return Err(SpiceError::InvalidNetlist {
                    reason: "solve_source_batch variants must perturb source values only (the \
                             assembled matrices differ)"
                        .into(),
                });
            }
            self.state.rhs_into(&mut b[r * n..(r + 1) * n]);
        }
        // One numeric refresh for the whole batch (the matrices are
        // bitwise equal, so the factor of the last assembly serves every
        // side), then one batched triangular sweep.
        self.state.refresh_factor()?;
        let mut x = Vec::new();
        self.state.solve_batch_into(&b, &mut x, netlists.len());
        Ok((0..netlists.len())
            .map(|r| OperatingPoint::new(x[r * n..(r + 1) * n].to_vec(), self.n_nodes))
            .collect())
    }

    /// Cumulative Newton/chord iterations this solver has run (all
    /// solves, all `gmin` rungs) — the deterministic work measure the
    /// warm-started corner-sweep gate compares against the cold ladder.
    pub fn newton_iterations(&self) -> u64 {
        self.state.newton_iterations()
    }

    /// **Warm-started** batched corner sweep over nonlinear variants of
    /// one topology — the nonlinear counterpart of
    /// [`solve_source_batch`](Self::solve_source_batch). Corners of a
    /// sweep share a converged operating region, so after the first
    /// corner's full `gmin` ladder each subsequent corner seeds its
    /// Newton iteration from the previous corner's solution and runs a
    /// **single** solve at the final `gmin` rung, taking the first step
    /// through the inherited factorization (a chord step through the
    /// neighboring corner's Jacobian — see
    /// [`newton_solve_with_state_warm`]). The continuation ladder only
    /// exists to walk from the all-zeros guess into the operating
    /// region; a neighboring corner's solution is already there.
    ///
    /// A corner whose warm solve fails to converge (a corner that jumped
    /// operating regions) transparently falls back to the full ladder
    /// from the all-zeros guess — bitwise identical to what
    /// [`solve`](Self::solve) computes for that corner, since ladder,
    /// guess and canonical symbolic state all match. Warm-converged
    /// corners reach the same operating point through a different
    /// iterate path, so they agree with the cold ladder to solver
    /// tolerance rather than bitwise; the `sweep_fastpaths` battery pins
    /// both properties.
    ///
    /// # Errors
    ///
    /// Any error of [`solve`](Self::solve) on the corner that failed
    /// (after the ladder fallback also failed).
    pub fn solve_corner_sweep(
        &mut self,
        netlists: &[Netlist],
    ) -> Result<Vec<OperatingPoint>, SpiceError> {
        let mut out = Vec::with_capacity(netlists.len());
        let mut prev: Option<Vec<f64>> = None;
        let final_gmin = *GMIN_LADDER.last().unwrap();
        for nl in netlists {
            if self.retarget(nl) == RetargetOutcome::Topology {
                // A topology change voids the warm seed (different
                // unknown vector) along with the symbolic state.
                prev = None;
            }
            let op = match prev.as_deref() {
                Some(seed) if seed.len() == self.unknowns => {
                    match newton_solve_with_state_warm(
                        &mut self.state,
                        seed,
                        final_gmin,
                        &self.options,
                    ) {
                        Ok(x) => OperatingPoint::new(x, self.n_nodes),
                        // Non-convergence or a numeric collapse at the
                        // warm iterate: this corner pays the cold ladder.
                        Err(SpiceError::NonConvergent { .. } | SpiceError::SingularMatrix) => {
                            self.solve()?
                        }
                        Err(e) => return Err(e),
                    }
                }
                _ => self.solve()?,
            };
            prev = Some(op.raw().to_vec());
            out.push(op);
        }
        Ok(out)
    }
}

/// A thread-safe pool of per-worker [`OpSolver`]s sharing one symbolic
/// analysis — the execution substrate for thread-parallel SPICE
/// corner/mismatch sweeps.
///
/// The pool holds one **primed prototype** (template built, system
/// factored — on the sparse backend that includes the Markowitz pivot
/// order and fill pattern, the expensive symbolic step). Each concurrent
/// [`with_solver`](Self::with_solver) caller checks a solver out of the
/// free list, or clones the prototype when the list is empty — so a
/// `Threaded` engine with `N` workers materializes at most `N` solvers,
/// each a symbolic clone paying only numeric refactorizations, while a
/// sequential sweep materializes exactly one.
///
/// # Determinism
///
/// Every pooled solver derives from the same prototype, so all of them
/// carry the *canonical* symbolic factorization; a solve is a pure
/// function of the netlist it is retargeted at (the full `gmin` ladder
/// runs from the caller's guess, and refactoring overwrites all numeric
/// state). If a solve has to re-pivot (a frozen pivot collapsed on some
/// extreme point), that solver's pivot order is no longer canonical — the
/// pool detects this via [`OpSolver::repivots`] and retires the solver,
/// replacing it with a fresh prototype clone, so results stay bitwise
/// independent of worker count and of which worker solved which point.
/// `tests/spice_engine_parity.rs` locks this in end to end.
#[derive(Debug)]
pub struct OpSolverPool {
    prototype: OpSolver,
    free: Mutex<Vec<OpSolver>>,
    /// Upper bound on the free list — see [`Self::DEFAULT_FREE_CAPACITY`].
    free_capacity: usize,
    spawned: AtomicUsize,
    retired: AtomicUsize,
    retired_panic: AtomicUsize,
    dropped: AtomicUsize,
}

impl OpSolverPool {
    /// Default bound on idle solvers retained by the free list.
    ///
    /// The free list grows to the *peak* concurrent checkout count, and —
    /// before this cap existed — never shrank. That was harmless for a
    /// sweep-local pool that dies with its sweep, but a process-wide
    /// registry resident would pin peak-burst × per-solver factorization
    /// memory forever. Solvers returned while the list is full are
    /// dropped instead (counted by [`Self::solvers_dropped`]); a later
    /// burst simply re-clones the prototype, which is cheap next to the
    /// symbolic analysis the prototype already amortizes.
    pub const DEFAULT_FREE_CAPACITY: usize = 32;

    /// Builds and primes the prototype solver for `netlist`.
    ///
    /// # Errors
    ///
    /// [`SpiceError::SingularMatrix`] for structurally singular netlists.
    pub fn new(netlist: &Netlist, options: NewtonOptions) -> Result<Self, SpiceError> {
        Ok(Self {
            prototype: OpSolver::primed(netlist, options)?,
            free: Mutex::new(Vec::new()),
            free_capacity: Self::DEFAULT_FREE_CAPACITY,
            spawned: AtomicUsize::new(0),
            retired: AtomicUsize::new(0),
            retired_panic: AtomicUsize::new(0),
            dropped: AtomicUsize::new(0),
        })
    }

    /// Overrides the free-list bound (clamped to ≥ 1; builder style).
    pub fn with_free_capacity(mut self, capacity: usize) -> Self {
        self.free_capacity = capacity.max(1);
        self
    }

    /// Whether the pooled solvers run the sparse backend.
    pub fn is_sparse(&self) -> bool {
        self.prototype.is_sparse()
    }

    /// The Newton options every pooled solver runs with.
    pub fn options(&self) -> &NewtonOptions {
        self.prototype.options()
    }

    /// Solvers materialized so far (prototype clones). Bounded by the
    /// peak number of concurrent [`with_solver`](Self::with_solver)
    /// callers — one per engine worker.
    pub fn solvers_spawned(&self) -> usize {
        self.spawned.load(Ordering::Relaxed)
    }

    /// Solvers retired after a re-pivot (each replaced by a fresh
    /// prototype clone on return). Includes panic retirements.
    pub fn solvers_retired(&self) -> usize {
        self.retired.load(Ordering::Relaxed)
    }

    /// Solvers retired specifically because their checkout unwound —
    /// the pool-hygiene counter fault-injection batteries assert on
    /// (every injected panic inside a solve must show up here, never as
    /// a leaked or aliased solver).
    pub fn solvers_retired_panic(&self) -> usize {
        self.retired_panic.load(Ordering::Relaxed)
    }

    /// Solvers dropped on return because the free list was at its bound.
    pub fn solvers_dropped(&self) -> usize {
        self.dropped.load(Ordering::Relaxed)
    }

    /// Idle solvers currently parked on the free list (bounded by the
    /// configured free capacity).
    pub fn free_len(&self) -> usize {
        self.free.lock().expect("solver pool poisoned").len()
    }

    /// Runs `f` with a checked-out per-worker solver, returning it to the
    /// pool afterwards. Never blocks on other workers' solves: the free
    /// list is only locked for the O(1) pop/push, and an empty list
    /// clones the prototype instead of waiting.
    ///
    /// Retirement is driven by [`OpSolver::noncanonical_events`] — the
    /// explicit sum of numeric re-pivots and
    /// [`RetargetOutcome::Topology`] retargets — so a solver that only
    /// took value-only or same-pattern retargets always returns to the
    /// free list.
    ///
    /// Panic-safe: if `f` unwinds, the solver is still returned —
    /// retired to a fresh prototype clone, since a solve abandoned
    /// mid-flight may carry non-canonical state — so the pool's size
    /// stays bounded by the peak worker count even under panicking
    /// callers.
    pub fn with_solver<R>(&self, f: impl FnOnce(&mut OpSolver) -> R) -> R {
        /// Returns the checked-out solver on every exit path (normal or
        /// unwind), applying the canonical-symbolic retirement rule.
        struct Checkout<'a> {
            pool: &'a OpSolverPool,
            solver: Option<OpSolver>,
            events_before: u64,
        }
        impl Drop for Checkout<'_> {
            fn drop(&mut self) {
                let Some(solver) = self.solver.take() else { return };
                let canonical =
                    !std::thread::panicking() && solver.noncanonical_events() == self.events_before;
                let returned = if canonical {
                    solver
                } else {
                    // The solver's pivot order diverged from the
                    // canonical one (or its solve unwound mid-flight) —
                    // retire it so every future checkout still sees the
                    // prototype's symbolic factorization.
                    self.pool.retired.fetch_add(1, Ordering::Relaxed);
                    if std::thread::panicking() {
                        self.pool.retired_panic.fetch_add(1, Ordering::Relaxed);
                    }
                    self.pool.prototype.clone()
                };
                // During an unwind a poisoned lock must not escalate to
                // a double panic; losing the return there only costs a
                // future re-clone. A full free list drops the solver
                // instead of parking it, bounding a long-lived pool's
                // memory at `free_capacity` idle factorizations.
                if let Ok(mut free) = self.pool.free.lock() {
                    if free.len() < self.pool.free_capacity {
                        free.push(returned);
                    } else {
                        drop(free);
                        self.pool.dropped.fetch_add(1, Ordering::Relaxed);
                    }
                }
            }
        }

        let solver = self.free.lock().expect("solver pool poisoned").pop().unwrap_or_else(|| {
            self.spawned.fetch_add(1, Ordering::Relaxed);
            self.prototype.clone()
        });
        let events_before = solver.noncanonical_events();
        let mut checkout = Checkout { pool: self, solver: Some(solver), events_before };
        f(checkout.solver.as_mut().expect("solver present until drop"))
    }
}

/// Computes the DC operating point (capacitors open, sources at `t = 0`).
///
/// Uses `gmin` stepping: each rung of the ladder reuses the previous rung's
/// solution as its Newton starting point, which makes strongly nonlinear
/// (positive-feedback) circuits like latches converge reliably.
///
/// # Errors
///
/// [`SpiceError::NonConvergent`] if even the most regularized rung fails,
/// [`SpiceError::SingularMatrix`] for structurally singular netlists.
pub fn operating_point(netlist: &Netlist) -> Result<OperatingPoint, SpiceError> {
    operating_point_from(netlist, &vec![0.0; netlist.unknown_count()])
}

/// Like [`operating_point`] but starting from a caller-provided guess
/// (e.g. a previous solve of a slightly perturbed netlist).
///
/// # Errors
///
/// See [`operating_point`].
pub fn operating_point_from(
    netlist: &Netlist,
    initial: &[f64],
) -> Result<OperatingPoint, SpiceError> {
    operating_point_with_options(netlist, initial, &NewtonOptions::default())
}

/// Like [`operating_point_from`] with explicit Newton controls — e.g.
/// [`NewtonOptions::full_newton`] to disable the chord-iteration LU reuse
/// when parity-checking the two Jacobian strategies.
///
/// # Errors
///
/// See [`operating_point`].
pub fn operating_point_with_options(
    netlist: &Netlist,
    initial: &[f64],
    options: &NewtonOptions,
) -> Result<OperatingPoint, SpiceError> {
    // One assembly template serves every rung: the ladder varies only
    // gmin, which the template applies per solve — the netlist is walked
    // once for the whole continuation, not once per rung. The shared
    // solver state likewise persists across rungs, so on the sparse
    // backend the Markowitz pivot order and fill pattern are computed
    // once per topology and every later rung pays numeric-only
    // refactorizations.
    let ctx = StampContext { time: 0.0, step: None, gmin: GMIN_LADDER[0] };
    let mut state = MnaTemplate::new(netlist, &ctx, options.backend).into_state();
    ladder_solve(&mut state, initial, options, netlist.node_count() - 1)
}

/// The `gmin` continuation over prebuilt solver state.
fn ladder_solve(
    state: &mut MnaState,
    initial: &[f64],
    options: &NewtonOptions,
    n_nodes: usize,
) -> Result<OperatingPoint, SpiceError> {
    let mut x = initial.to_vec();
    let mut last_err = None;
    let mut converged_any = false;

    for (rung, &gmin) in GMIN_LADDER.iter().enumerate() {
        match newton_solve_with_state(state, &x, gmin, options) {
            Ok(sol) => {
                x = sol;
                converged_any = true;
            }
            // A singular matrix on the *most-regularized* rung (with its
            // large gmin on every node diagonal) is structural — a
            // floating node or V-source loop that every later rung would
            // hit identically, so abort. On later rungs a singular pivot
            // is a numerical event at some wild Newton iterate (e.g. an
            // all-devices-off excursion on a long inverter chain);
            // treat it like non-convergence and let the continuation
            // recover from the best solution so far.
            Err(e @ SpiceError::SingularMatrix) if rung == 0 && !converged_any => return Err(e),
            Err(e) => last_err = Some(e),
        }
    }

    // The final rung must have converged for the result to be meaningful.
    match newton_solve_with_state(state, &x, *GMIN_LADDER.last().unwrap(), options) {
        Ok(sol) => Ok(OperatingPoint::new(sol, n_nodes)),
        Err(e) => {
            if converged_any {
                Err(e)
            } else {
                Err(last_err.unwrap_or(e))
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::MosModel;
    use crate::netlist::GROUND;

    #[test]
    fn resistor_divider() {
        let mut nl = Netlist::new();
        let vin = nl.node("in");
        let mid = nl.node("mid");
        nl.vsource("V1", vin, GROUND, 1.0);
        nl.resistor("R1", vin, mid, 1e3);
        nl.resistor("R2", mid, GROUND, 1e3);
        let op = operating_point(&nl).unwrap();
        assert!((op.voltage(mid) - 0.5).abs() < 1e-8);
        assert!((op.voltage(vin) - 1.0).abs() < 1e-10);
        assert_eq!(op.voltage(GROUND), 0.0);
    }

    #[test]
    fn diode_connected_nmos_sits_above_vth() {
        // Current source into a diode-connected NMOS: V settles at
        // vth + sqrt(2 I / (kp W/L)).
        let mut nl = Netlist::new();
        let d = nl.node("d");
        let model = MosModel::nmos_28nm();
        nl.isource("I1", GROUND, d, 100e-6);
        nl.mosfet("M1", d, d, GROUND, model, 10.0, 0.1);
        let op = operating_point(&nl).unwrap();
        let v = op.voltage(d);
        let expect = model.vth0 + (2.0 * 100e-6 / (model.kp * 100.0)).sqrt();
        assert!((v - expect).abs() < 0.02, "diode voltage {v} vs {expect}");
    }

    #[test]
    fn nmos_inverter_transfer_points() {
        // Resistor-loaded NMOS inverter: input low → output high; input
        // high → output pulled low.
        let build = |vin_v: f64| {
            let mut nl = Netlist::new();
            let vdd = nl.node("vdd");
            let vin = nl.node("vin");
            let out = nl.node("out");
            nl.vsource("VDD", vdd, GROUND, 0.9);
            nl.vsource("VIN", vin, GROUND, vin_v);
            nl.resistor("RL", vdd, out, 10e3);
            nl.mosfet("M1", out, vin, GROUND, MosModel::nmos_28nm(), 2.0, 0.1);
            nl
        };
        let op_low = operating_point(&build(0.0)).unwrap();
        let op_high = operating_point(&build(0.9)).unwrap();
        let out_low = {
            let mut nl = build(0.0);
            let out = nl.node("out");
            op_low.voltage(out)
        };
        let out_high = {
            let mut nl = build(0.9);
            let out = nl.node("out");
            op_high.voltage(out)
        };
        assert!(out_low > 0.85, "output should be high, got {out_low}");
        assert!(out_high < 0.2, "output should be pulled low, got {out_high}");
    }

    #[test]
    fn cmos_inverter_rails() {
        let build = |vin_v: f64| -> (Netlist, NodeId) {
            let mut nl = Netlist::new();
            let vdd = nl.node("vdd");
            let vin = nl.node("vin");
            let out = nl.node("out");
            nl.vsource("VDD", vdd, GROUND, 0.9);
            nl.vsource("VIN", vin, GROUND, vin_v);
            nl.mosfet("MP", out, vin, vdd, MosModel::pmos_28nm(), 2.0, 0.05);
            nl.mosfet("MN", out, vin, GROUND, MosModel::nmos_28nm(), 1.0, 0.05);
            (nl, out)
        };
        let (nl_low, out) = build(0.0);
        let op = operating_point(&nl_low).unwrap();
        assert!(op.voltage(out) > 0.88, "inverter high: {}", op.voltage(out));
        let (nl_high, out) = build(0.9);
        let op = operating_point(&nl_high).unwrap();
        assert!(op.voltage(out) < 0.02, "inverter low: {}", op.voltage(out));
    }

    #[test]
    fn branch_current_measures_supply_draw() {
        let mut nl = Netlist::new();
        let vdd = nl.node("vdd");
        nl.vsource("VDD", vdd, GROUND, 1.0);
        nl.resistor("R", vdd, GROUND, 1e3);
        let op = operating_point(&nl).unwrap();
        let branch = nl.vsource_branch("VDD").unwrap();
        assert!((op.branch_current(branch) + 1e-3).abs() < 1e-9);
    }

    #[test]
    fn empty_netlist_is_trivially_solved() {
        let nl = Netlist::new();
        let op = operating_point(&nl).unwrap();
        assert!(op.raw().is_empty());
    }

    #[test]
    fn retarget_same_topology_keeps_canonical_state() {
        use crate::mna::{NewtonOptions, SolverBackend};
        use crate::netlist::inverter_chain_with_load;
        let options = NewtonOptions::default().with_backend(SolverBackend::Sparse);
        let mut solver =
            OpSolver::primed(&inverter_chain_with_load(8, Some(10e3)), options).unwrap();
        // Same topology, different values: the in-place fast path, no
        // symbolic divergence.
        let outcome = solver.retarget(&inverter_chain_with_load(8, Some(12e3)));
        assert_eq!(outcome, RetargetOutcome::Values, "same topology takes the value-only path");
        solver.solve().unwrap();
        assert_eq!(solver.noncanonical_events(), 0, "value retarget must keep canonical state");
        // Forcing the rebuild path on the same topology is still only a
        // pattern swap — the factorization survives.
        let outcome = solver.retarget_rebuild(&inverter_chain_with_load(8, Some(13e3)));
        assert_eq!(outcome, RetargetOutcome::Pattern);
        assert_eq!(solver.noncanonical_events(), 0, "pattern retarget keeps canonical state");
        // Different topology: the state is rebuilt wholesale, reported
        // explicitly (not through the numeric re-pivot counter) so a
        // pool retires the solver.
        let outcome = solver.retarget(&inverter_chain_with_load(12, Some(10e3)));
        assert_eq!(outcome, RetargetOutcome::Topology);
        assert_eq!(solver.repivots(), 0, "topology change is not a numeric re-pivot");
        assert_eq!(solver.topology_retargets(), 1);
        assert_eq!(solver.noncanonical_events(), 1, "pools retire on the explicit event count");
    }

    #[test]
    fn value_retarget_solution_matches_rebuild_bitwise() {
        use crate::mna::{NewtonOptions, SolverBackend};
        use crate::netlist::inverter_chain_with_load;
        for backend in [SolverBackend::Dense, SolverBackend::Sparse] {
            let options = NewtonOptions::default().with_backend(backend);
            let base = inverter_chain_with_load(8, Some(10e3));
            let target = inverter_chain_with_load(8, Some(14.5e3));
            let mut fast = OpSolver::primed(&base, options).unwrap();
            let mut slow = OpSolver::primed(&base, options).unwrap();
            assert_eq!(fast.retarget(&target), RetargetOutcome::Values, "{backend}");
            assert_eq!(slow.retarget_rebuild(&target), RetargetOutcome::Pattern, "{backend}");
            let x_fast = fast.solve().unwrap();
            let x_slow = slow.solve().unwrap();
            for (a, b) in x_fast.raw().iter().zip(x_slow.raw()) {
                assert_eq!(a.to_bits(), b.to_bits(), "{backend}: values {a} vs rebuild {b}");
            }
        }
    }

    #[test]
    fn sparse_solver_engages_partial_refactorization() {
        use crate::mna::{NewtonOptions, SolverBackend};
        use crate::netlist::inverter_chain_with_load;
        let options = NewtonOptions::default().with_backend(SolverBackend::Sparse);
        let mut solver =
            OpSolver::primed(&inverter_chain_with_load(12, Some(10e3)), options).unwrap();
        for i in 0..4 {
            solver.retarget(&inverter_chain_with_load(12, Some(9e3 + 500.0 * i as f64)));
            solver.solve().unwrap();
        }
        let stats = solver.refactor_stats();
        assert!(stats.partial > 0, "gmin-ladder refreshes after the first must go partial");
        assert!(
            stats.elimination_ratio() < 1.0,
            "the V-source branch rows sit outside the dirty reachable set: {stats:?}"
        );
    }

    #[test]
    fn narrow_partial_refactor_drops_gmin_rows() {
        use crate::mna::{NewtonOptions, SolverBackend};
        use crate::netlist::inverter_chain_with_load;
        let options = NewtonOptions::default().with_backend(SolverBackend::Sparse);
        let mut solver =
            OpSolver::primed(&inverter_chain_with_load(12, Some(10e3)), options).unwrap();
        solver.solve().unwrap();
        let stats = solver.refactor_stats();
        assert!(
            stats.narrow > 0,
            "within-rung chord refreshes keep gmin constant and must take the narrow set: {stats:?}"
        );
        // The narrow (MOSFET-only) dirty set excludes the gmin diagonal,
        // so its reachable rows are a strict subset of the full dirty
        // set's — visible as fewer rows eliminated than even one
        // full-dirty partial pass per refresh would give.
        assert!(
            stats.elimination_ratio() < 1.0,
            "narrow refreshes must re-eliminate a strict row subset: {stats:?}"
        );
    }

    #[test]
    fn narrow_refresh_matches_full_newton_fixed_point() {
        use crate::mna::{JacobianStrategy, NewtonOptions, SolverBackend};
        use crate::netlist::inverter_chain_with_load;
        let nl = inverter_chain_with_load(12, Some(10e3));
        let chord = NewtonOptions::default().with_backend(SolverBackend::Sparse);
        let full = NewtonOptions {
            strategy: JacobianStrategy::Full,
            ..NewtonOptions::default().with_backend(SolverBackend::Sparse)
        };
        let op_chord = OpSolver::primed(&nl, chord).unwrap().solve().unwrap();
        let op_full = OpSolver::primed(&nl, full).unwrap().solve().unwrap();
        for (a, b) in op_chord.raw().iter().zip(op_full.raw()) {
            assert!((a - b).abs() < 1e-7, "chord+narrow {a} vs full Newton {b}");
        }
    }

    /// A `sections`-long resistive ladder driven by a variable source —
    /// linear, so source-only corner variants share one matrix bitwise.
    fn resistive_ladder(sections: usize, volts: f64, r_ohms: f64) -> Netlist {
        let mut nl = Netlist::new();
        let vin = nl.node("vin");
        nl.vsource("VIN", vin, GROUND, volts);
        let mut prev = vin;
        for s in 0..sections {
            let node = nl.node(&format!("l{s}"));
            nl.resistor(&format!("R{s}"), prev, node, r_ohms);
            prev = node;
        }
        nl.resistor("RT", prev, GROUND, r_ohms);
        nl
    }

    #[test]
    fn solve_source_batch_matches_per_point_solves() {
        use crate::mna::{NewtonOptions, SolverBackend};
        for backend in [SolverBackend::Dense, SolverBackend::Sparse] {
            let options = NewtonOptions::default().with_backend(backend);
            let base = resistive_ladder(24, 1.0, 1e3);
            let corners: Vec<Netlist> =
                (0..6).map(|c| resistive_ladder(24, 0.5 + 0.1 * c as f64, 1e3)).collect();
            let batch = OpSolver::primed(&base, options).unwrap().solve_source_batch(&corners);
            let batch = batch.unwrap();
            assert_eq!(batch.len(), corners.len());
            for (op, nl) in batch.iter().zip(&corners) {
                let reference = operating_point(nl).unwrap();
                for (a, b) in op.raw().iter().zip(reference.raw()) {
                    assert!((a - b).abs() < 1e-6, "{backend}: batch {a} vs ladder {b}");
                }
            }
            // Deterministic: a second batch over the same corners is
            // bitwise identical.
            let again =
                OpSolver::primed(&base, options).unwrap().solve_source_batch(&corners).unwrap();
            for (x, y) in batch.iter().zip(&again) {
                for (a, b) in x.raw().iter().zip(y.raw()) {
                    assert_eq!(a.to_bits(), b.to_bits(), "{backend}");
                }
            }
        }
    }

    #[test]
    fn solve_source_batch_rejects_inapplicable_sweeps() {
        use crate::mna::NewtonOptions;
        use crate::netlist::inverter_chain_with_load;
        // Nonlinear circuit: no shared factorization exists.
        let nl = inverter_chain_with_load(4, Some(10e3));
        let mut solver = OpSolver::primed(&nl, NewtonOptions::default()).unwrap();
        assert!(matches!(
            solver.solve_source_batch(std::slice::from_ref(&nl)),
            Err(SpiceError::InvalidNetlist { .. })
        ));
        // Linear circuit, but a corner perturbs a resistor: the matrices
        // differ, which the bitwise guard must catch.
        let base = resistive_ladder(8, 1.0, 1e3);
        let mut solver = OpSolver::primed(&base, NewtonOptions::default()).unwrap();
        let corners = vec![resistive_ladder(8, 1.0, 1e3), resistive_ladder(8, 1.0, 2e3)];
        assert!(matches!(
            solver.solve_source_batch(&corners),
            Err(SpiceError::InvalidNetlist { .. })
        ));
        // Empty batch is a no-op.
        assert!(solver.solve_source_batch(&[]).unwrap().is_empty());
    }

    #[test]
    fn amd_ordering_matches_markowitz_operating_point() {
        use crate::mna::{NewtonOptions, SolverBackend};
        use crate::netlist::inverter_chain_with_load;
        use glova_linalg::FillOrdering;
        let nl = inverter_chain_with_load(12, Some(10e3));
        let markowitz = NewtonOptions::default().with_backend(SolverBackend::Sparse);
        let amd = markowitz.with_ordering(FillOrdering::Amd);
        let op_m = OpSolver::primed(&nl, markowitz).unwrap().solve().unwrap();
        let op_a = OpSolver::primed(&nl, amd).unwrap().solve().unwrap();
        for (a, b) in op_a.raw().iter().zip(op_m.raw()) {
            assert!((a - b).abs() < 1e-7, "amd {a} vs markowitz {b}");
        }
        // AMD solves are themselves bitwise deterministic (pool clones
        // share the pre-ordered symbolic analysis like Markowitz ones).
        let op_a2 = OpSolver::primed(&nl, amd).unwrap().solve().unwrap();
        for (a, b) in op_a.raw().iter().zip(op_a2.raw()) {
            assert_eq!(a.to_bits(), b.to_bits());
        }
    }

    #[test]
    fn pool_retires_solver_after_topology_retarget() {
        use crate::mna::{NewtonOptions, SolverBackend};
        use crate::netlist::inverter_chain_with_load;
        let options = NewtonOptions::default().with_backend(SolverBackend::Sparse);
        let pool = OpSolverPool::new(&inverter_chain_with_load(8, Some(10e3)), options).unwrap();
        pool.with_solver(|solver| {
            solver.retarget(&inverter_chain_with_load(12, Some(10e3)));
            solver.solve().unwrap();
        });
        assert_eq!(pool.solvers_retired(), 1, "non-canonical solver must be retired");
        // The replacement checkout carries the canonical primed state.
        pool.with_solver(|solver| {
            solver.retarget(&inverter_chain_with_load(8, Some(11e3)));
            solver.solve().unwrap();
            assert_eq!(solver.repivots(), 0, "fresh prototype clone is canonical");
        });
        assert_eq!(pool.solvers_retired(), 1);
        assert_eq!(pool.solvers_spawned(), 1, "retirement replaces in place, never re-spawns");
    }

    #[test]
    fn pool_free_list_is_bounded() {
        use crate::mna::NewtonOptions;
        use crate::netlist::inverter_chain_with_load;
        let pool =
            OpSolverPool::new(&inverter_chain_with_load(4, Some(10e3)), NewtonOptions::default())
                .unwrap()
                .with_free_capacity(2);
        // Nested checkouts force four concurrent solvers into existence…
        pool.with_solver(|a| {
            a.solve().unwrap();
            pool.with_solver(|b| {
                b.solve().unwrap();
                pool.with_solver(|c| {
                    c.solve().unwrap();
                    pool.with_solver(|d| {
                        d.solve().unwrap();
                    });
                });
            });
        });
        assert_eq!(pool.solvers_spawned(), 4, "peak concurrency materializes four solvers");
        // …but only `free_capacity` of them are parked; the rest are
        // dropped on return instead of pinning memory forever.
        assert_eq!(pool.free_len(), 2, "free list must not exceed its bound");
        assert_eq!(pool.solvers_dropped(), 2);
        // The pool still serves checkouts normally afterwards.
        pool.with_solver(|solver| {
            solver.solve().unwrap();
        });
        assert_eq!(pool.solvers_spawned(), 4, "parked solvers are reused, not re-cloned");
    }

    #[test]
    fn pool_survives_panicking_callers() {
        use crate::mna::NewtonOptions;
        use crate::netlist::inverter_chain_with_load;
        let pool =
            OpSolverPool::new(&inverter_chain_with_load(4, Some(10e3)), NewtonOptions::default())
                .unwrap();
        for _ in 0..3 {
            let caught = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                pool.with_solver(|_| panic!("caller failure"));
            }));
            assert!(caught.is_err());
        }
        // Every unwound checkout was retired and replaced — the pool
        // stays bounded and usable.
        assert_eq!(pool.solvers_spawned(), 1, "unwinds must not leak checkouts");
        assert_eq!(pool.solvers_retired(), 3);
        assert_eq!(
            pool.solvers_retired_panic(),
            3,
            "panic retirements must be attributed to the unwind path"
        );
        pool.with_solver(|solver| {
            assert_eq!(solver.repivots(), 0, "post-panic checkout is a canonical clone");
            solver.solve().unwrap();
        });
        // A clean checkout after the panics must not move the panic
        // counter; only repivot/topology retirements are reason-neutral.
        assert_eq!(pool.solvers_retired_panic(), 3);
    }
}
