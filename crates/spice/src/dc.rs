//! DC operating-point analysis with `gmin` stepping.

use crate::mna::{newton_solve_with_state, MnaState, MnaTemplate, NewtonOptions, StampContext};
use crate::netlist::{Netlist, NodeId};
use crate::SpiceError;

/// A solved DC operating point.
#[derive(Debug, Clone, PartialEq)]
pub struct OperatingPoint {
    solution: Vec<f64>,
    n_nodes: usize,
}

impl OperatingPoint {
    pub(crate) fn new(solution: Vec<f64>, n_nodes: usize) -> Self {
        Self { solution, n_nodes }
    }

    /// Voltage of `node` (0 V for ground).
    pub fn voltage(&self, node: NodeId) -> f64 {
        if node.is_ground() {
            0.0
        } else {
            self.solution[node.index() - 1]
        }
    }

    /// Branch current of voltage source `branch` (positive into the plus
    /// terminal).
    pub fn branch_current(&self, branch: usize) -> f64 {
        self.solution[self.n_nodes + branch]
    }

    /// The raw MNA solution vector.
    pub fn raw(&self) -> &[f64] {
        &self.solution
    }
}

/// The `gmin` continuation ladder: start heavily regularized, relax to the
/// final operating point.
const GMIN_LADDER: [f64; 5] = [1e-3, 1e-5, 1e-7, 1e-9, 1e-12];

/// A reusable operating-point solver for one netlist topology.
///
/// [`operating_point`] rebuilds the assembly template and solver state on
/// every call; sweep-style callers — corner/mismatch campaigns, parameter
/// sweeps, benchmark loops — solve the *same topology* thousands of
/// times, so this wrapper builds both once and keeps them across
/// [`solve`](Self::solve) calls. On the sparse backend that means the
/// Markowitz pivot order and fill pattern are computed exactly once for
/// the whole sweep; every subsequent factorization anywhere in the
/// ladder is numeric-only.
///
/// The solver is stateful only for performance: each `solve` runs the
/// full `gmin` ladder from the caller's initial guess, so results are
/// identical to [`operating_point_with_options`] on the same inputs.
#[derive(Debug)]
pub struct OpSolver {
    state: MnaState,
    options: NewtonOptions,
    n_nodes: usize,
    unknowns: usize,
    sparse: bool,
}

impl OpSolver {
    /// Builds the template (and resolves the backend) once for `netlist`.
    pub fn new(netlist: &Netlist, options: NewtonOptions) -> Self {
        let ctx = StampContext { time: 0.0, step: None, gmin: GMIN_LADDER[0] };
        let template = MnaTemplate::new(netlist, &ctx, options.backend);
        let sparse = template.is_sparse();
        Self {
            state: template.into_state(),
            options,
            n_nodes: netlist.node_count() - 1,
            unknowns: netlist.unknown_count(),
            sparse,
        }
    }

    /// Whether the sparse backend was selected.
    pub fn is_sparse(&self) -> bool {
        self.sparse
    }

    /// Computes the operating point from an all-zeros initial guess.
    ///
    /// # Errors
    ///
    /// See [`operating_point`].
    pub fn solve(&mut self) -> Result<OperatingPoint, SpiceError> {
        self.solve_from(&vec![0.0; self.unknowns])
    }

    /// Computes the operating point from a caller-provided guess.
    ///
    /// # Errors
    ///
    /// See [`operating_point`].
    pub fn solve_from(&mut self, initial: &[f64]) -> Result<OperatingPoint, SpiceError> {
        ladder_solve(&mut self.state, initial, &self.options, self.n_nodes)
    }
}

/// Computes the DC operating point (capacitors open, sources at `t = 0`).
///
/// Uses `gmin` stepping: each rung of the ladder reuses the previous rung's
/// solution as its Newton starting point, which makes strongly nonlinear
/// (positive-feedback) circuits like latches converge reliably.
///
/// # Errors
///
/// [`SpiceError::NonConvergent`] if even the most regularized rung fails,
/// [`SpiceError::SingularMatrix`] for structurally singular netlists.
pub fn operating_point(netlist: &Netlist) -> Result<OperatingPoint, SpiceError> {
    operating_point_from(netlist, &vec![0.0; netlist.unknown_count()])
}

/// Like [`operating_point`] but starting from a caller-provided guess
/// (e.g. a previous solve of a slightly perturbed netlist).
///
/// # Errors
///
/// See [`operating_point`].
pub fn operating_point_from(
    netlist: &Netlist,
    initial: &[f64],
) -> Result<OperatingPoint, SpiceError> {
    operating_point_with_options(netlist, initial, &NewtonOptions::default())
}

/// Like [`operating_point_from`] with explicit Newton controls — e.g.
/// [`NewtonOptions::full_newton`] to disable the chord-iteration LU reuse
/// when parity-checking the two Jacobian strategies.
///
/// # Errors
///
/// See [`operating_point`].
pub fn operating_point_with_options(
    netlist: &Netlist,
    initial: &[f64],
    options: &NewtonOptions,
) -> Result<OperatingPoint, SpiceError> {
    // One assembly template serves every rung: the ladder varies only
    // gmin, which the template applies per solve — the netlist is walked
    // once for the whole continuation, not once per rung. The shared
    // solver state likewise persists across rungs, so on the sparse
    // backend the Markowitz pivot order and fill pattern are computed
    // once per topology and every later rung pays numeric-only
    // refactorizations.
    let ctx = StampContext { time: 0.0, step: None, gmin: GMIN_LADDER[0] };
    let mut state = MnaTemplate::new(netlist, &ctx, options.backend).into_state();
    ladder_solve(&mut state, initial, options, netlist.node_count() - 1)
}

/// The `gmin` continuation over prebuilt solver state.
fn ladder_solve(
    state: &mut MnaState,
    initial: &[f64],
    options: &NewtonOptions,
    n_nodes: usize,
) -> Result<OperatingPoint, SpiceError> {
    let mut x = initial.to_vec();
    let mut last_err = None;
    let mut converged_any = false;

    for (rung, &gmin) in GMIN_LADDER.iter().enumerate() {
        match newton_solve_with_state(state, &x, gmin, options) {
            Ok(sol) => {
                x = sol;
                converged_any = true;
            }
            // A singular matrix on the *most-regularized* rung (with its
            // large gmin on every node diagonal) is structural — a
            // floating node or V-source loop that every later rung would
            // hit identically, so abort. On later rungs a singular pivot
            // is a numerical event at some wild Newton iterate (e.g. an
            // all-devices-off excursion on a long inverter chain);
            // treat it like non-convergence and let the continuation
            // recover from the best solution so far.
            Err(e @ SpiceError::SingularMatrix) if rung == 0 && !converged_any => return Err(e),
            Err(e) => last_err = Some(e),
        }
    }

    // The final rung must have converged for the result to be meaningful.
    match newton_solve_with_state(state, &x, *GMIN_LADDER.last().unwrap(), options) {
        Ok(sol) => Ok(OperatingPoint::new(sol, n_nodes)),
        Err(e) => {
            if converged_any {
                Err(e)
            } else {
                Err(last_err.unwrap_or(e))
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::MosModel;
    use crate::netlist::GROUND;

    #[test]
    fn resistor_divider() {
        let mut nl = Netlist::new();
        let vin = nl.node("in");
        let mid = nl.node("mid");
        nl.vsource("V1", vin, GROUND, 1.0);
        nl.resistor("R1", vin, mid, 1e3);
        nl.resistor("R2", mid, GROUND, 1e3);
        let op = operating_point(&nl).unwrap();
        assert!((op.voltage(mid) - 0.5).abs() < 1e-8);
        assert!((op.voltage(vin) - 1.0).abs() < 1e-10);
        assert_eq!(op.voltage(GROUND), 0.0);
    }

    #[test]
    fn diode_connected_nmos_sits_above_vth() {
        // Current source into a diode-connected NMOS: V settles at
        // vth + sqrt(2 I / (kp W/L)).
        let mut nl = Netlist::new();
        let d = nl.node("d");
        let model = MosModel::nmos_28nm();
        nl.isource("I1", GROUND, d, 100e-6);
        nl.mosfet("M1", d, d, GROUND, model, 10.0, 0.1);
        let op = operating_point(&nl).unwrap();
        let v = op.voltage(d);
        let expect = model.vth0 + (2.0 * 100e-6 / (model.kp * 100.0)).sqrt();
        assert!((v - expect).abs() < 0.02, "diode voltage {v} vs {expect}");
    }

    #[test]
    fn nmos_inverter_transfer_points() {
        // Resistor-loaded NMOS inverter: input low → output high; input
        // high → output pulled low.
        let build = |vin_v: f64| {
            let mut nl = Netlist::new();
            let vdd = nl.node("vdd");
            let vin = nl.node("vin");
            let out = nl.node("out");
            nl.vsource("VDD", vdd, GROUND, 0.9);
            nl.vsource("VIN", vin, GROUND, vin_v);
            nl.resistor("RL", vdd, out, 10e3);
            nl.mosfet("M1", out, vin, GROUND, MosModel::nmos_28nm(), 2.0, 0.1);
            nl
        };
        let op_low = operating_point(&build(0.0)).unwrap();
        let op_high = operating_point(&build(0.9)).unwrap();
        let out_low = {
            let mut nl = build(0.0);
            let out = nl.node("out");
            op_low.voltage(out)
        };
        let out_high = {
            let mut nl = build(0.9);
            let out = nl.node("out");
            op_high.voltage(out)
        };
        assert!(out_low > 0.85, "output should be high, got {out_low}");
        assert!(out_high < 0.2, "output should be pulled low, got {out_high}");
    }

    #[test]
    fn cmos_inverter_rails() {
        let build = |vin_v: f64| -> (Netlist, NodeId) {
            let mut nl = Netlist::new();
            let vdd = nl.node("vdd");
            let vin = nl.node("vin");
            let out = nl.node("out");
            nl.vsource("VDD", vdd, GROUND, 0.9);
            nl.vsource("VIN", vin, GROUND, vin_v);
            nl.mosfet("MP", out, vin, vdd, MosModel::pmos_28nm(), 2.0, 0.05);
            nl.mosfet("MN", out, vin, GROUND, MosModel::nmos_28nm(), 1.0, 0.05);
            (nl, out)
        };
        let (nl_low, out) = build(0.0);
        let op = operating_point(&nl_low).unwrap();
        assert!(op.voltage(out) > 0.88, "inverter high: {}", op.voltage(out));
        let (nl_high, out) = build(0.9);
        let op = operating_point(&nl_high).unwrap();
        assert!(op.voltage(out) < 0.02, "inverter low: {}", op.voltage(out));
    }

    #[test]
    fn branch_current_measures_supply_draw() {
        let mut nl = Netlist::new();
        let vdd = nl.node("vdd");
        nl.vsource("VDD", vdd, GROUND, 1.0);
        nl.resistor("R", vdd, GROUND, 1e3);
        let op = operating_point(&nl).unwrap();
        let branch = nl.vsource_branch("VDD").unwrap();
        assert!((op.branch_current(branch) + 1e-3).abs() < 1e-9);
    }

    #[test]
    fn empty_netlist_is_trivially_solved() {
        let nl = Netlist::new();
        let op = operating_point(&nl).unwrap();
        assert!(op.raw().is_empty());
    }
}
