//! Fixed-step transient analysis (backward Euler).
//!
//! Backward Euler is A-stable and damps the numerical ringing that trips up
//! regenerative circuits (latches); the fixed step keeps simulation cost
//! strictly proportional to `t_stop / dt`, which the GLOVA harness relies on
//! when counting simulation effort.

use crate::dc::operating_point;
use crate::mna::{newton_solve_with_state, MnaState, MnaTemplate, NewtonOptions, StampContext};
use crate::netlist::{Netlist, NodeId};
use crate::SpiceError;

/// Transient-run parameters.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TransientSpec {
    /// Time step, seconds.
    pub dt: f64,
    /// Stop time, seconds.
    pub t_stop: f64,
    /// Start from the DC operating point (`true`) or from all-zeros
    /// (`false`, e.g. when initial conditions are forced by sources).
    pub start_from_dc: bool,
}

impl TransientSpec {
    /// Creates a spec with DC initialization.
    ///
    /// # Panics
    ///
    /// Panics if `dt` or `t_stop` is non-positive, or `dt > t_stop`.
    pub fn new(dt: f64, t_stop: f64) -> Self {
        assert!(dt > 0.0 && t_stop > 0.0, "dt and t_stop must be positive");
        assert!(dt <= t_stop, "dt must not exceed t_stop");
        Self { dt, t_stop, start_from_dc: true }
    }

    /// Number of steps (excluding the initial point).
    pub fn steps(&self) -> usize {
        (self.t_stop / self.dt).round() as usize
    }
}

/// Result of a transient run: time points and the full solution at each.
#[derive(Debug, Clone, PartialEq)]
pub struct TransientResult {
    times: Vec<f64>,
    solutions: Vec<Vec<f64>>,
    n_nodes: usize,
}

impl TransientResult {
    /// The simulated time points.
    pub fn times(&self) -> &[f64] {
        &self.times
    }

    /// Number of stored points.
    pub fn len(&self) -> usize {
        self.times.len()
    }

    /// Whether the run stored no points.
    pub fn is_empty(&self) -> bool {
        self.times.is_empty()
    }

    /// Voltage waveform of `node` across all time points.
    pub fn voltage_waveform(&self, node: NodeId) -> Vec<f64> {
        if node.is_ground() {
            return vec![0.0; self.len()];
        }
        self.solutions.iter().map(|s| s[node.index() - 1]).collect()
    }

    /// Branch-current waveform of voltage source `branch`.
    pub fn branch_current_waveform(&self, branch: usize) -> Vec<f64> {
        self.solutions.iter().map(|s| s[self.n_nodes + branch]).collect()
    }

    /// Voltage of `node` at time index `idx`.
    ///
    /// # Panics
    ///
    /// Panics if `idx` is out of range.
    pub fn voltage_at(&self, node: NodeId, idx: usize) -> f64 {
        if node.is_ground() {
            0.0
        } else {
            self.solutions[idx][node.index() - 1]
        }
    }
}

/// Runs a transient analysis.
///
/// # Errors
///
/// Propagates DC-initialization and per-step Newton failures.
pub fn transient(netlist: &Netlist, spec: &TransientSpec) -> Result<TransientResult, SpiceError> {
    let n = netlist.unknown_count();
    let initial: Vec<f64> =
        if spec.start_from_dc { operating_point(netlist)?.raw().to_vec() } else { vec![0.0; n] };
    transient_from(netlist, spec, initial)
}

/// Runs a transient analysis from an explicit initial solution (e.g. a
/// pre-charged latch state).
///
/// # Errors
///
/// Propagates per-step Newton failures.
///
/// # Panics
///
/// Panics if `initial.len()` differs from the netlist unknown count.
pub fn transient_from(
    netlist: &Netlist,
    spec: &TransientSpec,
    initial: Vec<f64>,
) -> Result<TransientResult, SpiceError> {
    transient_from_with_options(netlist, spec, initial, &NewtonOptions::default())
}

/// [`transient_from`] with explicit Newton controls — e.g. to force a
/// [`SolverBackend`](crate::mna::SolverBackend) instead of the size-based
/// auto-selection, or to disable the chord LU reuse.
///
/// The assembly template (netlist walk, CSR pattern, stamp maps) is built
/// once at the first step and re-pointed at each later step with a
/// value-only RHS update ([`MnaState::update_context`]): the backward-Euler
/// companion conductances `C/dt` are constant for a fixed step, so only
/// the companion currents and source waveform values change. On the
/// sparse backend this means the **symbolic factorization is computed
/// once for the whole run** and every step pays numeric-only
/// refactorizations — the same reuse structure DC sweeps have.
///
/// # Errors
///
/// Propagates per-step Newton failures.
///
/// # Panics
///
/// Panics if `initial.len()` differs from the netlist unknown count.
pub fn transient_from_with_options(
    netlist: &Netlist,
    spec: &TransientSpec,
    initial: Vec<f64>,
    options: &NewtonOptions,
) -> Result<TransientResult, SpiceError> {
    assert_eq!(initial.len(), netlist.unknown_count(), "initial state dimension mismatch");
    let steps = spec.steps();
    let mut times = Vec::with_capacity(steps + 1);
    let mut solutions = Vec::with_capacity(steps + 1);
    times.push(0.0);
    solutions.push(initial);

    let mut state: Option<MnaState> = None;
    for k in 1..=steps {
        let t = k as f64 * spec.dt;
        let prev = solutions.last().expect("at least the initial point").clone();
        let ctx = StampContext { time: t, step: Some((spec.dt, &prev)), gmin: 1e-12 };
        let state = match state.as_mut() {
            Some(s) => {
                s.update_context(&ctx);
                s
            }
            None => state.insert(MnaTemplate::new(netlist, &ctx, options.backend).into_state()),
        };
        let sol = newton_solve_with_state(state, &prev, ctx.gmin, options)?;
        times.push(t);
        solutions.push(sol);
    }
    Ok(TransientResult { times, solutions, n_nodes: netlist.node_count() - 1 })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::MosModel;
    use crate::netlist::{SourceWaveform, GROUND};

    #[test]
    fn rc_charging_matches_analytic() {
        // Step a 1 V source into R = 1 kΩ, C = 1 nF: v(t) = 1 − e^{−t/RC}.
        let mut nl = Netlist::new();
        let vin = nl.node("in");
        let out = nl.node("out");
        nl.vsource_waveform(
            "V1",
            vin,
            GROUND,
            SourceWaveform::Pulse {
                low: 0.0,
                high: 1.0,
                delay: 0.0,
                rise: 1e-12,
                fall: 1e-12,
                width: 1.0,
            },
        );
        nl.resistor("R1", vin, out, 1e3);
        nl.capacitor("C1", out, GROUND, 1e-9);
        let spec = TransientSpec { dt: 1e-8, t_stop: 5e-6, start_from_dc: false };
        let result = transient(&nl, &spec).unwrap();
        let tau = 1e3 * 1e-9;
        for (i, &t) in result.times().iter().enumerate() {
            if t < 5.0 * 1e-8 {
                continue; // skip the source edge
            }
            let expect = 1.0 - (-t / tau).exp();
            let got = result.voltage_at(out, i);
            assert!((got - expect).abs() < 0.01, "t={t:.2e}: got {got:.4}, expected {expect:.4}");
        }
        // Fully settled at 5 τ.
        let last = result.voltage_at(out, result.len() - 1);
        assert!((last - 1.0).abs() < 1e-2);
    }

    #[test]
    fn inverter_switches_dynamically() {
        // CMOS inverter driving a load cap; input pulse flips the output.
        let mut nl = Netlist::new();
        let vdd = nl.node("vdd");
        let vin = nl.node("vin");
        let out = nl.node("out");
        nl.vsource("VDD", vdd, GROUND, 0.9);
        nl.vsource_waveform(
            "VIN",
            vin,
            GROUND,
            SourceWaveform::Pulse {
                low: 0.0,
                high: 0.9,
                delay: 1e-9,
                rise: 50e-12,
                fall: 50e-12,
                width: 5e-9,
            },
        );
        nl.mosfet("MP", out, vin, vdd, MosModel::pmos_28nm(), 2.0, 0.05);
        nl.mosfet("MN", out, vin, GROUND, MosModel::nmos_28nm(), 1.0, 0.05);
        nl.capacitor("CL", out, GROUND, 10e-15);
        let spec = TransientSpec::new(20e-12, 4e-9);
        let result = transient(&nl, &spec).unwrap();
        // Before the pulse the output is high; well after the input rises it
        // must be low.
        assert!(result.voltage_at(out, 0) > 0.85);
        let last = result.voltage_at(out, result.len() - 1);
        assert!(last < 0.1, "inverter failed to switch: {last}");
    }

    #[test]
    fn energy_conservation_rc() {
        // Energy delivered by the source into an RC equals C·V²: half stored,
        // half dissipated. Check the source integral ≈ C·V².
        let mut nl = Netlist::new();
        let vin = nl.node("in");
        let out = nl.node("out");
        nl.vsource_waveform(
            "V1",
            vin,
            GROUND,
            SourceWaveform::Pulse {
                low: 0.0,
                high: 1.0,
                delay: 0.0,
                rise: 1e-12,
                fall: 1e-12,
                width: 1.0,
            },
        );
        nl.resistor("R1", vin, out, 1e3);
        nl.capacitor("C1", out, GROUND, 1e-9);
        let spec = TransientSpec { dt: 1e-8, t_stop: 10e-6, start_from_dc: false };
        let result = transient(&nl, &spec).unwrap();
        let branch = nl.vsource_branch("V1").unwrap();
        let current = result.branch_current_waveform(branch);
        let voltage = result.voltage_waveform(vin);
        // Source delivers −i·v (branch current flows into plus terminal).
        let mut energy = 0.0;
        for i in 1..result.len() {
            let dt = result.times()[i] - result.times()[i - 1];
            energy += -current[i] * voltage[i] * dt;
        }
        let expect = 1e-9; // C·V² = 1e-9 · 1
        assert!((energy - expect).abs() < 0.05 * expect, "energy {energy:.3e} vs {expect:.3e}");
    }

    #[test]
    fn template_reuse_matches_fresh_assembly_per_step() {
        // The persistent-state path (template built once, value-only RHS
        // update per step) must track a reference that rebuilds the
        // template from the netlist at every step — on both backends, on
        // a nonlinear circuit where the chord iteration actually carries
        // factorization state across steps.
        use crate::mna::{newton_solve, SolverBackend};
        let mut nl = Netlist::new();
        let vdd = nl.node("vdd");
        let vin = nl.node("vin");
        let out = nl.node("out");
        nl.vsource("VDD", vdd, GROUND, 0.9);
        nl.vsource_waveform(
            "VIN",
            vin,
            GROUND,
            SourceWaveform::Pulse {
                low: 0.0,
                high: 0.9,
                delay: 0.2e-9,
                rise: 100e-12,
                fall: 100e-12,
                width: 1e-9,
            },
        );
        nl.mosfet("MP", out, vin, vdd, MosModel::pmos_28nm(), 2.0, 0.05);
        nl.mosfet("MN", out, vin, GROUND, MosModel::nmos_28nm(), 1.0, 0.05);
        nl.capacitor("CL", out, GROUND, 20e-15);
        let spec = TransientSpec { dt: 25e-12, t_stop: 2e-9, start_from_dc: false };
        for backend in [SolverBackend::Dense, SolverBackend::Sparse] {
            let options = NewtonOptions::default().with_backend(backend);
            let reused =
                transient_from_with_options(&nl, &spec, vec![0.0; nl.unknown_count()], &options)
                    .unwrap();
            // Fresh-assembly reference: new template (and, on sparse, a
            // fresh symbolic analysis) every step.
            let mut prev = vec![0.0; nl.unknown_count()];
            for k in 1..=spec.steps() {
                let t = k as f64 * spec.dt;
                let ctx = StampContext { time: t, step: Some((spec.dt, &prev)), gmin: 1e-12 };
                let sol = newton_solve(&nl, &prev, &ctx, &options).unwrap();
                for (r, f) in reused.solutions[k].iter().zip(&sol) {
                    assert!(
                        (r - f).abs() <= 1e-12,
                        "{backend} step {k}: template-reuse {r} vs fresh {f}"
                    );
                }
                prev = sol;
            }
        }
    }

    #[test]
    fn steps_counting() {
        let spec = TransientSpec::new(1e-9, 10e-9);
        assert_eq!(spec.steps(), 10);
    }

    #[test]
    #[should_panic(expected = "dt and t_stop must be positive")]
    fn bad_spec_panics() {
        TransientSpec::new(0.0, 1.0);
    }
}
